// Example: 3D MRI denoising with the bilateral filter — the paper's first
// workload (Sec. III-A) as a runnable pipeline.
//
//   generate noisy phantom -> denoise (array-order vs Z-order source)
//   -> report fidelity + timing -> write BOV volumes and a slice image.
//
// Usage: denoise_mri [--size=64] [--radius=2] [--sigma-range=0.15]
//                    [--threads=4] [--out-dir=.]
#include <cmath>
#include <cstdio>

#include "sfcvis/bench_util/options.hpp"
#include "sfcvis/bench_util/stats.hpp"
#include "sfcvis/data/phantom.hpp"
#include "sfcvis/data/volume_io.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/render/image.hpp"

namespace {

using namespace sfcvis;

double rmse(const core::ArrayVolume& a, const core::ArrayVolume& b) {
  double sum = 0;
  a.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    const double d = a.at(i, j, k) - b.at(i, j, k);
    sum += d * d;
  });
  return std::sqrt(sum / static_cast<double>(a.size()));
}

/// Writes the central z-slice as a grayscale PPM for quick inspection.
void write_slice(const std::filesystem::path& path, const core::ArrayVolume& g) {
  const auto& e = g.extents();
  render::Image img(e.nx, e.ny);
  for (std::uint32_t j = 0; j < e.ny; ++j) {
    for (std::uint32_t i = 0; i < e.nx; ++i) {
      const float v = std::clamp(g.at(i, j, e.nz / 2), 0.0f, 1.0f);
      img.at(i, j) = render::Rgba{v, v, v, 1.0f};
    }
  }
  render::write_ppm(path, img);
}

}  // namespace

int main(int argc, char** argv) {
  const bench_util::Options opts(argc, argv);
  const std::uint32_t size = opts.get_u32("size", 64);
  const unsigned radius = opts.get_u32("radius", 2);
  const float sigma_range = static_cast<float>(opts.get_double("sigma-range", 0.15));
  const unsigned nthreads = opts.get_u32("threads", 4);
  const std::filesystem::path out_dir = opts.get_string("out-dir", ".");

  const core::Extents3D e = core::Extents3D::cube(size);
  std::printf("generating %u^3 phantom (clean + noisy)...\n", size);
  core::ArrayVolume clean(e), noisy(e), denoised(e);
  data::fill_mri_phantom(clean, {.seed = 11, .texture_amplitude = 0.0f, .noise_sigma = 0.0f});
  data::fill_mri_phantom(noisy,
                         {.seed = 11, .texture_amplitude = 0.01f, .noise_sigma = 0.12f});

  const filters::BilateralParams params{radius, 1.5f, sigma_range};
  exec::ExecutionContext pool(nthreads);

  // Same filter, two source layouts — the paper's transparency property.
  // The facade carries the layout at runtime; the driver call is identical.
  const core::AnyVolume noisy_any(noisy);
  const auto noisy_z = noisy_any.convert_to(core::LayoutKind::kZOrder);
  const double t_array = bench_util::min_time_of(
      2, [&] { filters::bilateral_parallel(noisy_any, denoised, params, pool); });
  const double t_z = bench_util::min_time_of(
      2, [&] { filters::bilateral_parallel(noisy_z, denoised, params, pool); });

  std::printf("bilateral r=%u, sigma_range=%.2f, %u threads\n", radius, sigma_range,
              nthreads);
  std::printf("  runtime: array-order source %.3fs, z-order source %.3fs (ds=%.3f)\n",
              t_array, t_z, bench_util::scaled_relative_difference(t_array, t_z));
  std::printf("  fidelity: RMSE vs clean  noisy=%.4f  denoised=%.4f\n", rmse(noisy, clean),
              rmse(denoised, clean));

  data::save_bov(out_dir / "mri_noisy.bov", data::to_raw(noisy));
  data::save_bov(out_dir / "mri_denoised.bov", data::to_raw(denoised));
  write_slice(out_dir / "mri_noisy_slice.ppm", noisy);
  write_slice(out_dir / "mri_denoised_slice.ppm", denoised);
  std::printf("wrote mri_noisy.bov, mri_denoised.bov and slice images to %s\n",
              out_dir.string().c_str());
  return 0;
}
