// Example: an educational tool that makes the layouts visible.
//
//   * prints the linear offsets of a small 2D slice under each layout —
//     the Z-curve's recursive N-shape is directly readable;
//   * prints per-axis cache-line boundary-crossing rates, the locality
//     quantity the paper's counters are a proxy for;
//   * prints how the padded capacity behaves for awkward extents.
//
// Usage: layout_explorer [--n=8]
#include <cstdio>

#include "sfcvis/bench_util/options.hpp"
#include "sfcvis/core/layout.hpp"
#include "sfcvis/core/volume.hpp"

namespace {

using namespace sfcvis;

template <core::Layout3D L>
void print_slice(const L& layout, std::uint32_t n) {
  std::printf("%s: offsets of the k=0 slice (%ux%u)\n",
              std::string(L::name()).c_str(), n, n);
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < n; ++i) {
      std::printf("%5zu", layout.index(i, j, 0));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

template <core::Layout3D L>
void print_crossings(const L& layout, std::uint32_t n) {
  // Fraction of unit steps along each axis that leave a 64-byte line
  // (16 floats). Array order: x rarely, y/z always. Z-order: balanced.
  const std::size_t line_elems = 16;
  const char* axis_names[3] = {"x", "y", "z"};
  std::printf("%-12s", std::string(L::name()).c_str());
  for (unsigned axis = 0; axis < 3; ++axis) {
    std::size_t crossings = 0, steps = 0;
    for (std::uint32_t k = 0; k < n - (axis == 2); ++k) {
      for (std::uint32_t j = 0; j < n - (axis == 1); ++j) {
        for (std::uint32_t i = 0; i < n - (axis == 0); ++i) {
          const auto a = layout.index(i, j, k) / line_elems;
          const auto b =
              layout.index(i + (axis == 0), j + (axis == 1), k + (axis == 2)) / line_elems;
          crossings += (a != b);
          ++steps;
        }
      }
    }
    std::printf("  %s: %5.1f%%", axis_names[axis],
                100.0 * static_cast<double>(crossings) / static_cast<double>(steps));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench_util::Options opts(argc, argv);
  const std::uint32_t n = opts.get_u32("n", 8);
  const core::Extents3D e = core::Extents3D::cube(n);

  // Every layout is reached through the facade: make_volume is the single
  // dispatch point, and visit() hands the concrete layout back to the
  // templated printers.
  const auto for_layout = [](core::LayoutKind kind, const core::Extents3D& ext,
                             std::uint32_t tile, auto&& fn) {
    core::VolumeOpts vopts;
    vopts.tile = tile;
    core::make_volume(kind, ext, vopts).visit([&](const auto& g) {
      // Only in-core grids carry a layout object (the bricked backend is
      // never produced by make_volume, but the visit instantiates it).
      if constexpr (requires { g.layout(); }) {
        fn(g.layout());
      }
    });
  };

  for (const auto kind : core::kAllLayoutKinds) {
    for_layout(kind, e, std::min(n, 4u), [&](const auto& l) { print_slice(l, n); });
  }

  std::printf("fraction of unit steps crossing a 64-byte line boundary (32^3):\n");
  const core::Extents3D big = core::Extents3D::cube(32);
  for (const auto kind : core::kAllLayoutKinds) {
    for_layout(kind, big, 4, [&](const auto& l) { print_crossings(l, 32); });
  }

  std::printf("\npadding behaviour for awkward extents (20 x 7 x 5):\n");
  const core::Extents3D odd{20, 7, 5};
  const auto capacity_of = [&](core::LayoutKind kind) {
    return core::make_volume(kind, odd).capacity();
  };
  std::printf("  logical size: %zu elements\n", odd.size());
  std::printf("  array-order capacity: %zu\n", capacity_of(core::LayoutKind::kArray));
  std::printf("  z-order capacity:     %zu (pads each axis to a power of two;\n"
              "                        the paper's Sec. V limitation)\n",
              capacity_of(core::LayoutKind::kZOrder));
  std::printf("  tiled 8^3 capacity:   %zu\n", capacity_of(core::LayoutKind::kTiled));
  std::printf("  hilbert capacity:     %zu (pads to the enclosing cube)\n",
              capacity_of(core::LayoutKind::kHilbert));
  return 0;
}
