// Example: 2D image denoising with the original Tomasi-Manduchi bilateral
// filter, on the image counterpart of the layout library.
//
// The "photograph" is the central slice of the 3D MRI phantom plus noise.
// Usage: denoise_image [--size=256] [--radius=3] [--sigma-range=0.15]
//                      [--threads=4] [--out-dir=.]
#include <cstdio>

#include "sfcvis/bench_util/options.hpp"
#include "sfcvis/bench_util/stats.hpp"
#include "sfcvis/core/grid2d.hpp"
#include "sfcvis/data/noise.hpp"
#include "sfcvis/data/phantom.hpp"
#include "sfcvis/filters/bilateral2d.hpp"
#include "sfcvis/render/image.hpp"

namespace {

using namespace sfcvis;

void write_gray(const std::filesystem::path& path,
                const core::Grid2D<float, core::ArrayOrderLayout2D>& g) {
  render::Image img(g.extents().nx, g.extents().ny);
  g.for_each_index([&](std::uint32_t i, std::uint32_t j) {
    const float v = std::clamp(g.at(i, j), 0.0f, 1.0f);
    img.at(i, j) = render::Rgba{v, v, v, 1.0f};
  });
  render::write_ppm(path, img);
}

}  // namespace

int main(int argc, char** argv) {
  const bench_util::Options opts(argc, argv);
  const std::uint32_t size = opts.get_u32("size", 256);
  const unsigned radius = opts.get_u32("radius", 3);
  const float sigma_range = static_cast<float>(opts.get_double("sigma-range", 0.15));
  const unsigned nthreads = opts.get_u32("threads", 4);
  const std::filesystem::path out_dir = opts.get_string("out-dir", ".");

  const core::Extents2D e = core::Extents2D::square(size);
  std::printf("rendering a %ux%u phantom slice + noise...\n", size, size);
  const auto model = data::MriPhantom::shepp_logan();
  const data::ValueNoise3D noise(21);
  core::Grid2D<float, core::ArrayOrderLayout2D> image(e), denoised(e);
  image.fill_from([&](std::uint32_t i, std::uint32_t j) {
    const float u = (static_cast<float>(i) + 0.5f) / static_cast<float>(size);
    const float v = (static_cast<float>(j) + 0.5f) / static_cast<float>(size);
    const float n = noise.sample(u * 211.0f, v * 199.0f, 0.0f) +
                    noise.sample(u * 401.0f + 5.0f, v * 409.0f, 1.0f);
    return model.sample(u, v, 0.5f) + 0.06f * n;
  });

  // Same filter on array-order vs Z-order storage of the same pixels.
  const auto image_z = core::convert_layout2d<core::ZOrderLayout2D>(image);
  exec::ExecutionContext pool(nthreads);
  const filters::Bilateral2DParams params{radius, 2.0f, sigma_range,
                                          filters::PencilAxis::kX};
  const double t_a = bench_util::min_time_of(
      3, [&] { filters::bilateral2d_parallel(image, denoised, params, pool); });
  const double t_z = bench_util::min_time_of(
      3, [&] { filters::bilateral2d_parallel(image_z, denoised, params, pool); });

  std::printf("bilateral 2D r=%u: array-order %.4fs, z-order %.4fs (ds=%.3f)\n", radius,
              t_a, t_z, bench_util::scaled_relative_difference(t_a, t_z));
  write_gray(out_dir / "image_noisy.ppm", image);
  write_gray(out_dir / "image_denoised.ppm", denoised);
  std::printf("wrote image_noisy.ppm and image_denoised.ppm to %s\n",
              out_dir.string().c_str());
  return 0;
}
