// Example: orbiting volume rendering of the combustion-like dataset — the
// paper's second workload (Sec. III-B) as a runnable pipeline.
//
// Renders the 8-viewpoint orbit with both memory layouts, writes one PPM
// per viewpoint (from the Z-order pass; images are pixel-identical by
// construction) and prints the per-viewpoint runtimes so the Fig. 4
// alignment effect can be eyeballed directly. With --macrocell=N (on by
// default at N = 8) each render also runs the empty-space-skipping path
// over an N-voxel macrocell grid and reports the skipping runtime and the
// fraction of samples skipped; the skipped render is bit-identical, so
// the PPMs are unaffected.
//
// Usage: render_combustion [--size=64] [--image=256] [--threads=4]
//                          [--macrocell=8]   (0 disables the skip pass)
//                          [--out-dir=.]
#include <cstdio>

#include "sfcvis/bench_util/options.hpp"
#include "sfcvis/bench_util/stats.hpp"
#include "sfcvis/data/combustion.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/render/macrocell.hpp"
#include "sfcvis/render/raycast.hpp"

int main(int argc, char** argv) {
  using namespace sfcvis;
  const bench_util::Options opts(argc, argv);
  const std::uint32_t size = opts.get_u32("size", 64);
  const std::uint32_t image_size = opts.get_u32("image", 256);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const std::uint32_t macrocell = opts.get_u32("macrocell", 8);
  const std::filesystem::path out_dir = opts.get_string("out-dir", ".");

  std::printf("generating %u^3 combustion field...\n", size);
  const core::Extents3D e = core::Extents3D::cube(size);
  core::AnyVolume vol_a = core::make_volume(core::LayoutKind::kArray, e);
  vol_a.visit([](auto& g) { data::fill_combustion(g); });
  const auto vol_z = vol_a.convert_to(core::LayoutKind::kZOrder);

  const auto tf = render::TransferFunction::flame();
  render::RenderConfig config{image_size, image_size, 32, 0.5f, 0.98f};
  exec::ExecutionContext pool(nthreads);
  const auto fsize = static_cast<float>(size);

  render::MacrocellGrid cells_a, cells_z;
  if (macrocell > 0) {
    cells_a = render::MacrocellGrid::build(vol_a, macrocell, &pool);
    cells_z = render::MacrocellGrid::build(vol_z, macrocell, &pool);
  }

  std::printf("rendering 8-viewpoint orbit at %ux%u, %u threads\n", image_size, image_size,
              nthreads);
  if (macrocell > 0) {
    std::printf("empty-space skipping: %u-voxel macrocells (skip pass is bit-identical)\n",
                macrocell);
    std::printf("%-10s %12s %12s %12s %12s %8s\n", "viewpoint", "a-order (s)", "a-skip (s)",
                "z-order (s)", "z-skip (s)", "skip %");
  } else {
    std::printf("%-10s %14s %14s\n", "viewpoint", "a-order (s)", "z-order (s)");
  }
  for (unsigned v = 0; v < 8; ++v) {
    const auto camera = render::orbit_camera(v, 8, fsize, fsize, fsize);
    config.use_macrocells = false;
    const double ta = bench_util::min_time_of(
        2, [&] { (void)render::raycast_parallel(vol_a, camera, tf, config, pool); });
    render::Image img;
    const double tz = bench_util::min_time_of(
        2, [&] { img = render::raycast_parallel(vol_z, camera, tf, config, pool); });
    const auto path = out_dir / ("combustion_view" + std::to_string(v) + ".ppm");
    render::write_ppm(path, img);
    if (macrocell > 0) {
      config.use_macrocells = true;
      config.macrocell_size = macrocell;
      const double tas = bench_util::min_time_of(2, [&] {
        (void)render::raycast_parallel(vol_a, camera, tf, config, pool, &cells_a);
      });
      const double tzs = bench_util::min_time_of(2, [&] {
        (void)render::raycast_parallel(vol_z, camera, tf, config, pool, &cells_z);
      });
      trace::Tracer::instance().reset_metrics();
      (void)render::raycast_parallel(vol_z, camera, tf, config, pool, &cells_z,
                                     /*collect_stats=*/true);
      const auto metrics = trace::Tracer::instance().metrics_snapshot();
      std::printf("%-10u %12.4f %12.4f %12.4f %12.4f %7.1f%%   -> %s\n", v, ta, tas, tz,
                  tzs, 100.0 * render::skip_rate(metrics), path.string().c_str());
    } else {
      std::printf("%-10u %14.4f %14.4f   -> %s\n", v, ta, tz, path.string().c_str());
    }
  }
  std::printf("note: viewpoints 0 and 4 align rays with the array-order fast axis;\n"
              "      2 and 6 are the against-the-grain views (paper Fig. 4).\n");
  return 0;
}
