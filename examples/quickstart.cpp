// Quickstart: the sfcvis public API in ~80 lines.
//
//   1. build a Z-order volume through the runtime facade and fill it,
//   2. use the paper-style runtime Indexer (getIndex) directly,
//   3. run the bilateral filter and the raycaster on it,
//   4. collect memory-system counters with the cache simulator.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "sfcvis/core/indexer.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/data/combustion.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/memsim/platforms.hpp"
#include "sfcvis/render/raycast.hpp"

int main() {
  using namespace sfcvis;

  // -- 1. A 64^3 volume stored along the Z-order space-filling curve. ------
  // make_volume is the one place the layout is chosen; everything below is
  // layout-agnostic and dispatches at runtime through core::AnyVolume.
  const core::Extents3D extents = core::Extents3D::cube(64);
  core::AnyVolume volume = core::make_volume(core::LayoutKind::kZOrder, extents);
  volume.visit([](auto& grid) { data::fill_combustion(grid); });
  std::printf("volume: %ux%ux%u, layout=%s, capacity=%zu elements\n", extents.nx,
              extents.ny, extents.nz, volume.layout_name(), volume.capacity());

  // -- 2. The paper's runtime indexing facade (Sec. III-C). ----------------
  // Both orders cost three table loads + two adds; only the layout differs.
  const core::Indexer a_idx(core::Order::kArray, extents);
  const core::Indexer z_idx(core::Order::kZ, extents);
  std::printf("getIndex(3,5,7): array-order=%zu  z-order=%zu\n",
              a_idx.getIndex(3, 5, 7), z_idx.getIndex(3, 5, 7));

  // -- 3a. Bilateral filter (structured access). ---------------------------
  // The ExecutionContext owns the thread count, backend (pthread pool or
  // OpenMP via SFCVIS_BACKEND=openmp), and scheduling for every kernel.
  core::ArrayVolume denoised(extents);
  exec::ExecutionContext ctx(4);
  const filters::BilateralParams params{/*radius=*/2, /*sigma_spatial=*/1.5f,
                                        /*sigma_range=*/0.1f};
  filters::bilateral_parallel(volume, denoised, params, ctx);
  std::printf("bilateral filter: done (radius %u, %zu voxels)\n", params.radius,
              extents.size());

  // -- 3b. Raycasting volume renderer (semi-structured access). ------------
  const auto camera = render::orbit_camera(/*viewpoint=*/2, /*of=*/8, 64, 64, 64);
  const auto tf = render::TransferFunction::flame();
  const render::RenderConfig config{256, 256, 32, 0.5f, 0.98f};
  const render::Image image = render::raycast_parallel(volume, camera, tf, config, ctx);
  render::write_ppm("quickstart.ppm", image);
  std::printf("renderer: wrote quickstart.ppm (%ux%u)\n", image.width(), image.height());

  // -- 4. Memory-system counters via the cache simulator. ------------------
  // Replay the renderer's exact access stream through a modeled Ivy Bridge
  // node and read the paper's PAPI_L3_TCA metric.
  memsim::Hierarchy hierarchy(memsim::scaled(memsim::ivybridge(), 16), /*threads=*/4);
  const render::RenderConfig small{96, 96, 16, 0.5f, 0.98f};
  (void)render::raycast_traced(volume, camera, tf, small, hierarchy);
  std::printf("traced render: %llu accesses, PAPI_L3_TCA=%llu, mem fills=%llu\n",
              static_cast<unsigned long long>(hierarchy.total_accesses()),
              static_cast<unsigned long long>(hierarchy.counter("PAPI_L3_TCA")),
              static_cast<unsigned long long>(hierarchy.memory_fills()));
  for (const auto& level : hierarchy.level_stats()) {
    std::printf("  %-6s accesses=%-10llu miss-rate=%.3f\n", level.name.c_str(),
                static_cast<unsigned long long>(level.stats.accesses),
                level.stats.miss_rate());
  }
  return 0;
}
