// Example: volumes larger than RAM — the out-of-core bricked workflow.
//
// Packs (or takes) an SFCBRK01 brick file, opens it with a brick-cache
// budget far below the volume size, and runs the two paper workloads —
// bilateral filtering and macrocell-accelerated raycasting — straight off
// disk. Before reporting anything it verifies the bricked outputs are
// bit-identical to the same kernels over the fully in-core volume: the
// cache budget changes *when* bricks are resident, never what the kernels
// compute.
//
// Usage: out_of_core [--in=vol.sfcbrk] [--size=64] [--brick-edge=8]
//                    [--cache-bricks=8] [--threads=4] [--image=64]
//                    [--report-out=report.json]
//
// Without --in, a --size^3 MRI phantom is packed to a temp file first
// (tools/brick_pack does the same for real data). With --report-out, the
// run report carries the brick-cache section that
// tools/trace_summary.py --validate --require-brick-cache checks in CI.
#include <cstdio>
#include <filesystem>

#include "sfcvis/bench_util/options.hpp"
#include "sfcvis/core/brick_file.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/data/phantom.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/render/macrocell.hpp"
#include "sfcvis/render/raycast.hpp"

int main(int argc, char** argv) {
  using namespace sfcvis;
  namespace fs = std::filesystem;
  const bench_util::Options opts(argc, argv);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const std::uint32_t image_size = opts.get_u32("image", 64);
  std::string in = opts.get_string("in", "");

  // Pack a synthetic volume when no brick file was supplied.
  fs::path packed_tmp;
  if (in.empty()) {
    const std::uint32_t size = opts.get_u32("size", 64);
    core::AnyVolume src =
        core::make_volume(core::LayoutKind::kArray, core::Extents3D::cube(size));
    src.visit([](auto& g) { data::fill_mri_phantom(g); });
    core::BrickPackOptions popts;
    popts.brick_edge = opts.get_u32("brick-edge", 8);
    packed_tmp = fs::temp_directory_path() /
                 ("sfcvis_ooc_example_" + std::to_string(::getpid()) + ".sfcbrk");
    in = packed_tmp.string();
    const core::BrickFileInfo packed = core::pack_brick_file(in, src, popts);
    std::printf("packed %u^3 phantom -> %s (%llu bricks of %u^3)\n", size, in.c_str(),
                static_cast<unsigned long long>(packed.brick_count), popts.brick_edge);
  }

  int rc = 0;
  {
    const core::BrickFileInfo info = core::read_brick_file_header(in);
    const std::uint64_t cache_bricks = opts.get_u32("cache-bricks", 8);
    exec::ExecOptions xopts;
    xopts.threads = nthreads;
    xopts.memory.brick_cache_bytes =
        static_cast<std::size_t>(cache_bricks) * info.brick_bytes();
    xopts.report_out = opts.get_string("report-out", "");
    exec::ExecutionContext ctx(xopts);

    core::AnyVolume vol = ctx.open_bricked(in);
    const core::BrickedVolume& bricked = vol.as_bricked();
    const core::Extents3D e = vol.extents();
    std::printf("streaming %ux%ux%u through a %llu-brick cache (%.1f%% of the "
                "%llu-brick working set)\n",
                e.nx, e.ny, e.nz, static_cast<unsigned long long>(cache_bricks),
                100.0 * static_cast<double>(cache_bricks) /
                    static_cast<double>(info.brick_count),
                static_cast<unsigned long long>(info.brick_count));

    // The fully in-core reference for the bit-identity checks.
    const core::AnyVolume in_core = vol.convert_to(core::LayoutKind::kZOrder);

    // Workload 1: bilateral filter, off disk vs in core.
    const filters::BilateralParams params{2, 1.5f, 0.1f};
    core::ArrayVolume out_disk(e);
    core::ArrayVolume out_core(e);
    filters::bilateral_parallel(vol, out_disk, params, ctx);
    filters::bilateral_parallel(in_core, out_core, params, ctx);
    bool identical = true;
    for (std::size_t i = 0; i < out_disk.size() && identical; ++i) {
      identical = out_disk.data()[i] == out_core.data()[i];
    }
    std::printf("bilateral r2: bricked == in-core: %s\n", identical ? "yes" : "NO");

    // Workload 2: raycast with empty-space skipping — the macrocell grid
    // builds per brick through the same views, keyed by the bricked
    // volume's identity + geometry salt in the structure cache.
    const std::uint32_t mc = 8;
    render::MacrocellGrid cells_disk = render::MacrocellGrid::build(vol, mc, &ctx);
    render::MacrocellGrid cells_core = render::MacrocellGrid::build(in_core, mc, &ctx);
    const auto tf = render::TransferFunction::flame();
    render::RenderConfig config{image_size, image_size, 32, 0.5f, 0.98f};
    config.use_macrocells = true;
    config.macrocell_size = mc;
    const auto fx = static_cast<float>(e.nx);
    const auto camera = render::orbit_camera(2, 8, fx, static_cast<float>(e.ny),
                                             static_cast<float>(e.nz));
    const render::Image img_disk =
        render::raycast_parallel(vol, camera, tf, config, ctx, &cells_disk);
    const render::Image img_core =
        render::raycast_parallel(in_core, camera, tf, config, ctx, &cells_core);
    const bool img_identical = img_disk.pixels() == img_core.pixels();
    std::printf("raycast + skip: bricked == in-core: %s\n",
                img_identical ? "yes" : "NO");

    // Flush the cache counters into the metrics registry (and so into the
    // run report when --report-out was given).
    const core::BrickCacheReport delta = exec::publish_brick_cache_metrics(bricked);
    const core::BrickCacheReport rep = bricked.cache_report();
    std::printf("brick cache: %llu hits / %llu misses, %llu evictions, "
                "%llu overflow, prefetch %llu/%llu hit/issued\n",
                static_cast<unsigned long long>(delta.hits),
                static_cast<unsigned long long>(delta.misses),
                static_cast<unsigned long long>(delta.evictions),
                static_cast<unsigned long long>(delta.overflow_bricks),
                static_cast<unsigned long long>(delta.prefetch_hits),
                static_cast<unsigned long long>(delta.prefetch_issued));
    if (!rep.degrade.empty()) {
      std::printf("degraded: %s\n", rep.degrade.c_str());
    }
    if (!rep.io_error.empty()) {
      std::printf("io error: %s\n", rep.io_error.c_str());
      rc = 1;
    }
    if (!identical || !img_identical) {
      rc = 1;
    }
  }  // ~ExecutionContext writes the run report

  if (!packed_tmp.empty()) {
    std::error_code ec;
    fs::remove(packed_tmp, ec);
  }
  return rc;
}
