// Optional OpenMP execution of the same work-assignment shapes the Pool
// provides.
//
// The paper (Sec. III) argues for raw POSIX threads over "compiler-assisted
// approaches, like OpenMP" because (a) the renderer's best strategy is a
// dynamic worker pool and (b) the MIC's thread controls were
// pthreads-only. Point (b) is historical; point (a) is measurable —
// bench/abl_scheduler runs the identical kernels under the Pool's static
// and dynamic schedulers and under OpenMP static/dynamic `for` schedules
// so the claim can be re-examined on current runtimes.
//
// Compiled to runtime no-ops returning false when OpenMP is unavailable;
// callers must check openmp_available().
#pragma once

#include <cstddef>
#include <functional>

namespace sfcvis::threads {

/// True when this build can execute the omp_* entry points.
[[nodiscard]] bool openmp_available() noexcept;

/// Max threads the OpenMP runtime would use.
[[nodiscard]] unsigned openmp_max_threads() noexcept;

/// schedule(static) loop over [0, num_items) with `num_threads` threads;
/// fn(item, thread_num). Returns false when OpenMP is unavailable.
bool parallel_for_omp_static(unsigned num_threads, std::size_t num_items,
                             const std::function<void(std::size_t, unsigned)>& fn);

/// schedule(dynamic, 1): OpenMP's analogue of the worker-pool model.
bool parallel_for_omp_dynamic(unsigned num_threads, std::size_t num_items,
                              const std::function<void(std::size_t, unsigned)>& fn);

}  // namespace sfcvis::threads
