// Work-assignment strategies from the paper (Sec. III):
//
//  * StaticRoundRobin — the bilateral filter hands out voxel "pencils" to
//    threads in round-robin fashion.
//  * WorkQueue        — the raycaster's best strategy: a dynamic worker
//    pool where each thread pops the next image tile when free.
//
// Both strategies also provide a *deterministic replay order* used by the
// memsim counter runs: the items paired with their owning simulated thread,
// interleaved round-by-round, so a single real thread can replay the access
// streams that N logical threads would produce. (For WorkQueue the replay
// assumes uniform progress — the same assumption behind round-robin — which
// is documented in DESIGN.md.)
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "sfcvis/threads/pool.hpp"

namespace sfcvis::threads {

/// A work item paired with the thread that executes it; replay order is the
/// order a counter run feeds items through the simulated hierarchy.
struct Assignment {
  std::size_t item = 0;
  unsigned tid = 0;
  friend constexpr bool operator==(const Assignment&, const Assignment&) = default;
};

/// Round-robin static assignment: thread t owns items t, t+T, t+2T, ...
class StaticRoundRobin {
 public:
  StaticRoundRobin(std::size_t num_items, unsigned num_threads)
      : num_items_(num_items), num_threads_(num_threads) {}

  [[nodiscard]] unsigned owner(std::size_t item) const noexcept {
    return static_cast<unsigned>(item % num_threads_);
  }

  /// Items owned by `tid`, in execution order.
  [[nodiscard]] std::vector<std::size_t> items_for(unsigned tid) const {
    std::vector<std::size_t> items;
    for (std::size_t i = tid; i < num_items_; i += num_threads_) {
      items.push_back(i);
    }
    return items;
  }

  /// Round-by-round interleaved (item, tid) sequence for counter replay.
  [[nodiscard]] std::vector<Assignment> replay_order() const {
    std::vector<Assignment> order;
    order.reserve(num_items_);
    for (std::size_t base = 0; base < num_items_; base += num_threads_) {
      for (unsigned t = 0; t < num_threads_ && base + t < num_items_; ++t) {
        order.push_back(Assignment{base + t, t});
      }
    }
    return order;
  }

  [[nodiscard]] std::size_t num_items() const noexcept { return num_items_; }
  [[nodiscard]] unsigned num_threads() const noexcept { return num_threads_; }

 private:
  std::size_t num_items_;
  unsigned num_threads_;
};

/// Dynamic work queue: threads pop the next unclaimed item. Lock-free; the
/// only shared state is one atomic cursor.
class WorkQueue {
 public:
  explicit WorkQueue(std::size_t num_items) : num_items_(num_items) {}

  /// Claims the next item, or nullopt when the queue is drained.
  [[nodiscard]] std::optional<std::size_t> pop() noexcept {
    const std::size_t item = next_.fetch_add(1, std::memory_order_relaxed);
    if (item < num_items_) {
      return item;
    }
    return std::nullopt;
  }

  void reset() noexcept { next_.store(0, std::memory_order_relaxed); }

  [[nodiscard]] std::size_t num_items() const noexcept { return num_items_; }

 private:
  std::atomic<std::size_t> next_{0};
  std::size_t num_items_;
};

/// Runs fn(item, tid) over all items on the pool using the dynamic queue
/// (the paper's worker-pool model).
void parallel_for_dynamic(Pool& pool, std::size_t num_items,
                          const std::function<void(std::size_t, unsigned)>& fn);

/// Runs fn(item, tid) over all items on the pool with static round-robin
/// ownership (the paper's pencil assignment).
void parallel_for_static(Pool& pool, std::size_t num_items,
                         const std::function<void(std::size_t, unsigned)>& fn);

/// parallel_for_static with per-worker state: `make(tid)` runs once per
/// worker before its first item — scratch buffers are sized once per
/// parallel region, not once per item — then fn(state, item, tid) runs for
/// the worker's items in execution order. Item ownership is identical to
/// parallel_for_static / StaticRoundRobin; workers with no items never
/// construct a state.
template <class MakeState, class Fn>
void parallel_for_static_state(Pool& pool, std::size_t num_items, MakeState&& make,
                               Fn&& fn) {
  const unsigned num_threads = pool.size();
  pool.run([&, num_threads](unsigned tid) {
    if (tid >= num_items) {
      return;
    }
    auto state = make(tid);
    for (std::size_t item = tid; item < num_items; item += num_threads) {
      fn(state, item, tid);
    }
  });
}

}  // namespace sfcvis::threads
