#include "sfcvis/threads/omp_executor.hpp"

#include <cstdint>

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace sfcvis::threads {

#if defined(_OPENMP)

bool openmp_available() noexcept { return true; }

unsigned openmp_max_threads() noexcept {
  return static_cast<unsigned>(omp_get_max_threads());
}

bool parallel_for_omp_static(unsigned num_threads, std::size_t num_items,
                             const std::function<void(std::size_t, unsigned)>& fn) {
  const auto count = static_cast<std::int64_t>(num_items);
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (std::int64_t item = 0; item < count; ++item) {
    fn(static_cast<std::size_t>(item), static_cast<unsigned>(omp_get_thread_num()));
  }
  return true;
}

bool parallel_for_omp_dynamic(unsigned num_threads, std::size_t num_items,
                              const std::function<void(std::size_t, unsigned)>& fn) {
  const auto count = static_cast<std::int64_t>(num_items);
#pragma omp parallel for schedule(dynamic, 1) num_threads(num_threads)
  for (std::int64_t item = 0; item < count; ++item) {
    fn(static_cast<std::size_t>(item), static_cast<unsigned>(omp_get_thread_num()));
  }
  return true;
}

#else

bool openmp_available() noexcept { return false; }
unsigned openmp_max_threads() noexcept { return 0; }
bool parallel_for_omp_static(unsigned, std::size_t,
                             const std::function<void(std::size_t, unsigned)>&) {
  return false;
}
bool parallel_for_omp_dynamic(unsigned, std::size_t,
                              const std::function<void(std::size_t, unsigned)>&) {
  return false;
}

#endif

}  // namespace sfcvis::threads
