#include "sfcvis/threads/pool.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "sfcvis/trace/trace.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sfcvis::threads {

bool Pool::pin_current_thread([[maybe_unused]] unsigned cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

Pool::Pool(unsigned num_threads, Affinity affinity) : num_threads_(num_threads) {
  if (num_threads == 0) {
    throw std::invalid_argument("Pool: num_threads must be >= 1");
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::atomic<unsigned> pinned{0};
  workers_.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this, t, hw, affinity, &pinned] {
      if (affinity == Affinity::kCompact && pin_current_thread(t % hw)) {
        pinned.fetch_add(1, std::memory_order_relaxed);
      }
      worker_main(t);
    });
  }
  if (affinity == Affinity::kCompact) {
    // Workers signal readiness through the first region; pin results are
    // stable once each worker has started. Run an empty region to join on
    // startup so affinity_applied_ is meaningful immediately.
    run([](unsigned) {});
    affinity_applied_ = pinned.load(std::memory_order_relaxed) == num_threads;
  }
}

Pool::~Pool() {
  {
    const std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void Pool::run(const std::function<void(unsigned)>& job) {
  std::unique_lock lock(mutex_);
  job_ = &job;
  running_ = num_threads_;
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return running_ == 0; });
  job_ = nullptr;
}

void Pool::worker_main(unsigned tid) {
  // Attribute this thread's trace spans and metric values to worker
  // `tid` (plain thread-local store, no registration or allocation).
  trace::set_worker_id(tid);
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      job = job_;
    }
    (*job)(tid);
    {
      const std::lock_guard lock(mutex_);
      if (--running_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

}  // namespace sfcvis::threads
