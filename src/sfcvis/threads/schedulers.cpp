#include "sfcvis/threads/schedulers.hpp"

namespace sfcvis::threads {

void parallel_for_dynamic(Pool& pool, std::size_t num_items,
                          const std::function<void(std::size_t, unsigned)>& fn) {
  WorkQueue queue(num_items);
  pool.run([&](unsigned tid) {
    while (auto item = queue.pop()) {
      fn(*item, tid);
    }
  });
}

void parallel_for_static(Pool& pool, std::size_t num_items,
                         const std::function<void(std::size_t, unsigned)>& fn) {
  const unsigned num_threads = pool.size();
  pool.run([&, num_threads](unsigned tid) {
    for (std::size_t item = tid; item < num_items; item += num_threads) {
      fn(item, tid);
    }
  });
}

}  // namespace sfcvis::threads
