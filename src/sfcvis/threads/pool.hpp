// A persistent worker-thread pool with fork/join parallel regions.
//
// The paper's implementations use raw POSIX threads (Sec. III) because (a)
// the raycaster's best-performing work-assignment strategy is a dynamic
// worker pool that "doesn't lend itself to automatic loop parallelization"
// and (b) the MIC platform exposed thread-management controls only through
// pthreads. std::thread is the standard C++ veneer over pthreads on every
// platform we target; this pool keeps the workers alive across parallel
// regions so per-region cost is two synchronizations, not thread churn.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sfcvis::threads {

/// How workers are pinned to hardware CPUs.
enum class Affinity : std::uint8_t {
  kNone,     ///< scheduler decides (default)
  kCompact,  ///< worker t pinned to cpu t % hw_cpus — the "compact" mapping
             ///< the paper used on Ivy Bridge (Sec. IV-B5): up to 12
             ///< threads stay on one socket
};

/// Fixed-size pool executing fork/join parallel regions.
class Pool {
 public:
  /// Spawns `num_threads` workers (>= 1). Thread ids passed to jobs are
  /// 0..num_threads-1. Affinity pinning is best-effort: unsupported
  /// platforms or denied syscalls silently fall back to kNone, reported
  /// by affinity_applied().
  explicit Pool(unsigned num_threads, Affinity affinity = Affinity::kNone);

  /// Joins all workers.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Runs `job(tid)` once on every worker and returns when all have
  /// finished (a fork/join region). Exceptions escaping a job terminate, as
  /// with raw pthreads; kernels report errors through their results.
  void run(const std::function<void(unsigned)>& job);

  [[nodiscard]] unsigned size() const noexcept { return num_threads_; }

  /// True when every worker was successfully pinned.
  [[nodiscard]] bool affinity_applied() const noexcept { return affinity_applied_; }

 private:
  void worker_main(unsigned tid);
  static bool pin_current_thread(unsigned cpu) noexcept;

  unsigned num_threads_;
  bool affinity_applied_ = false;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned running_ = 0;
  bool shutdown_ = false;
};

}  // namespace sfcvis::threads
