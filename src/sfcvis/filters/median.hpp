// 3D median filter — another stencil-based, structured-access kernel from
// the visualization toolbox. Unlike the bilateral filter its per-voxel
// work is a selection (nth_element) rather than weighted accumulation, so
// it stresses the memory system with the same footprint but a different
// compute/access ratio — a useful second data point for the layout study.
#pragma once

#include <algorithm>
#include <vector>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/traced_view.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/kernels_common.hpp"

namespace sfcvis::filters {

/// Median of the (2r+1)^3 neighbourhood (clamp borders). `scratch` must
/// provide (2r+1)^3 floats; passing it in keeps the hot loop free of
/// allocation.
template <core::ReadView3D View>
[[nodiscard]] float median_voxel(const View& src, std::uint32_t i, std::uint32_t j,
                                 std::uint32_t k, unsigned radius,
                                 std::vector<float>& scratch) {
  const int r = static_cast<int>(radius);
  scratch.clear();
  for (int dz = -r; dz <= r; ++dz) {
    for (int dy = -r; dy <= r; ++dy) {
      for (int dx = -r; dx <= r; ++dx) {
        scratch.push_back(src.at_clamped(static_cast<std::int64_t>(i) + dx,
                                         static_cast<std::int64_t>(j) + dy,
                                         static_cast<std::int64_t>(k) + dz));
      }
    }
  }
  const auto mid = scratch.begin() + static_cast<std::ptrdiff_t>(scratch.size() / 2);
  std::nth_element(scratch.begin(), mid, scratch.end());
  return *mid;
}

/// Builds the median-filter job (x-pencil decomposition). The job's
/// closures reference `src`/`dst`, which must outlive its run.
template <core::VolumeBackend VolT>
[[nodiscard]] exec::KernelJob median_job(const VolT& src, core::ArrayVolume& dst,
                                         unsigned radius) {
  const core::Extents3D e = src.extents();
  const std::size_t pencils = static_cast<std::size_t>(e.ny) * e.nz;
  const std::size_t taps = static_cast<std::size_t>(2 * radius + 1);
  const VolT* src_p = &src;
  core::ArrayVolume* dst_p = &dst;
  // One read view per worker: out-of-core views carry per-worker brick
  // pins and must not be shared across threads (a PlainView is free).
  return detail::make_state_job(
      "median", pencils, dst.data(),
      [src_p](unsigned) { return core::make_read_view(*src_p); },
      [dst_p, e, radius, taps](const auto& view, std::size_t p, unsigned) {
        std::vector<float> scratch;
        scratch.reserve(taps * taps * taps);
        const auto j = static_cast<std::uint32_t>(p % e.ny);
        const auto k = static_cast<std::uint32_t>(p / e.ny);
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          dst_p->at(i, j, k) = median_voxel(view, i, j, k, radius, scratch);
        }
      },
      "median.parallel");
}

/// Parallel 3D median filter over x-pencils.
template <core::VolumeBackend VolT>
void median_filter(const VolT& src, core::ArrayVolume& dst,
                   unsigned radius, exec::ExecutionContext& ctx) {
  detail::run_job(ctx, median_job(src, dst, radius));
}

/// Facade driver: dispatches on the source volume's runtime layout.
inline void median_filter(const core::AnyVolume& src, core::ArrayVolume& dst,
                          unsigned radius, exec::ExecutionContext& ctx) {
  src.visit([&](const auto& grid) { median_filter(grid, dst, radius, ctx); });
}

/// Facade job builder.
[[nodiscard]] inline exec::KernelJob median_job(const core::AnyVolume& src,
                                                core::ArrayVolume& dst, unsigned radius) {
  return src.visit([&](const auto& grid) { return median_job(grid, dst, radius); });
}

}  // namespace sfcvis::filters
