// Plain Gaussian smoothing — the non-edge-preserving baseline the bilateral
// filter is contrasted with (paper Sec. III-A calls the bilateral filter
// "more computationally intensive than a simple convolution kernel"; the
// examples and the ablation benches quantify that).
//
// Two forms:
//  * gaussian_convolve: direct (2r+1)^3 stencil — the same access pattern
//    as the bilateral filter minus the data-dependent term, usable with
//    any layout / pencil / loop-order configuration.
//  * gaussian_separable: the classic three-pass separable implementation —
//    the algorithmic optimization that data-dependent filters cannot use.
#pragma once

#include <cstdint>
#include <vector>

#include "sfcvis/core/gather.hpp"
#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/simd.hpp"
#include "sfcvis/core/traced_view.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/kernels_common.hpp"

namespace sfcvis::filters {

/// Normalized 1D Gaussian taps for offsets [-radius, radius].
[[nodiscard]] std::vector<float> gaussian_kernel_1d(unsigned radius, float sigma);

/// Direct dense 3D Gaussian convolution of one voxel (clamp borders).
template <core::ReadView3D View>
[[nodiscard]] float gaussian_voxel(const View& src, std::uint32_t i, std::uint32_t j,
                                   std::uint32_t k, const std::vector<float>& taps) {
  const int r = static_cast<int>(taps.size() / 2);
  float sum = 0.0f;
  for (int dz = -r; dz <= r; ++dz) {
    for (int dy = -r; dy <= r; ++dy) {
      for (int dx = -r; dx <= r; ++dx) {
        const float w = taps[static_cast<std::size_t>(dx + r)] *
                        taps[static_cast<std::size_t>(dy + r)] *
                        taps[static_cast<std::size_t>(dz + r)];
        sum += w * src.at_clamped(static_cast<std::int64_t>(i) + dx,
                                  static_cast<std::int64_t>(j) + dy,
                                  static_cast<std::int64_t>(k) + dz);
      }
    }
  }
  return sum;
}

/// Per-worker scratch of the Gaussian gather fast path — same ring idea as
/// BilateralGatherScratch: the footprint of an advancing x-pencil changes
/// by one (2r+1)^2 plane per voxel, so W = 2r+1 dense scratch planes plus a
/// pre-multiplied weight cube turn the W^3 layout lookups per voxel into
/// one W^2 plane gather and a dense multiply-accumulate.
struct GaussianGatherScratch {
  void prepare(const std::vector<float>& taps) {
    width = static_cast<std::uint32_t>(taps.size());
    plane_size = width * width;
    ring.assign(static_cast<std::size_t>(width) * plane_size, 0.0f);
    wperm.resize(static_cast<std::size_t>(width) * plane_size);
    // [dp][du][dv] = taps[dp] * taps[du] * taps[dv], matching the ring's
    // plane-major sample order (dp = dx plane, du = dy row, dv = dz column).
    std::size_t q = 0;
    for (std::uint32_t dp = 0; dp < width; ++dp) {
      for (std::uint32_t du = 0; du < width; ++du) {
        for (std::uint32_t dv = 0; dv < width; ++dv) {
          wperm[q++] = taps[dp] * taps[du] * taps[dv];
        }
      }
    }
  }
  std::uint32_t width = 0;       ///< W = 2r + 1
  std::uint32_t plane_size = 0;  ///< W * W
  std::vector<float> ring;       ///< W planes of W*W samples, slot = s % W
  std::vector<float> wperm;      ///< pre-multiplied 3D tap weights
};

/// Gather-based convolution of one x-pencil: interior voxels run an
/// explicit-SIMD multiply-accumulate over the ring planes (core/simd.hpp,
/// masked tails contribute exactly +0 because the weight slice reads 0);
/// border voxels — and whole pencils without a full (y, z) stencil — fall
/// back to the clamped gaussian_voxel. Differs from the direct path only
/// by float reassociation of the tap sum and of the precomputed weight
/// products (well inside the kernels' 1e-5 test tolerance); the per-pencil
/// result does not depend on the source layout.
template <core::VolumeBackend VolT>
void gaussian_pencil_gather(const VolT& src, core::ArrayVolume& dst,
                            const std::vector<float>& taps, std::size_t p,
                            GaussianGatherScratch& scratch) {
  const auto& e = src.extents();
  const auto j = static_cast<std::uint32_t>(p % e.ny);
  const auto k = static_cast<std::uint32_t>(p / e.ny);
  const auto view = core::make_read_view(src);
  const auto r = static_cast<std::uint32_t>(taps.size() / 2);
  const std::uint32_t W = scratch.width;
  const std::uint32_t plane_sz = scratch.plane_size;
  if (j < r || j + r >= e.ny || k < r || k + r >= e.nz || e.nx <= 2 * r) {
    for (std::uint32_t i = 0; i < e.nx; ++i) {
      dst.at(i, j, k) = gaussian_voxel(view, i, j, k, taps);
    }
    return;
  }
  for (std::uint32_t i = 0; i < r; ++i) {
    dst.at(i, j, k) = gaussian_voxel(view, i, j, k, taps);
  }
  const auto gather_plane = [&](std::uint32_t s) {
    float* plane = scratch.ring.data() + (s % W) * plane_sz;
    for (std::uint32_t du = 0; du < W; ++du) {
      core::gather_row(src, core::Axis3::kZ, s, j - r + du, k - r, W,
                       plane + du * W, nullptr);
    }
  };
  for (std::uint32_t s = 0; s <= 2 * r; ++s) {
    gather_plane(s);
  }
  constexpr int N = simd::kNativeLanes;
  using VF = simd::vfloat<N>;
  const float* ring = scratch.ring.data();
  const float* wperm = scratch.wperm.data();
  for (std::uint32_t t = r; t < e.nx - r; ++t) {
    if (t > r) {
      gather_plane(t + r);
    }
    VF v_sum = VF::zero();
    for (std::uint32_t dpi = 0; dpi < W; ++dpi) {
      const float* plane = ring + ((t - r + dpi) % W) * plane_sz;
      const float* wplane = wperm + dpi * plane_sz;
      std::uint32_t q = 0;
      for (; q + N <= plane_sz; q += N) {
        v_sum = v_sum + VF::loadu(wplane + q) * VF::loadu(plane + q);
      }
      if (q < plane_sz) {
        const int tail = static_cast<int>(plane_sz - q);
        v_sum = v_sum + VF::loadu_masked(wplane + q, tail) *
                            VF::loadu_masked(plane + q, tail);
      }
    }
    dst.at(t, j, k) = simd::reduce_add(v_sum);
  }
  for (std::uint32_t i = e.nx - r; i < e.nx; ++i) {
    dst.at(i, j, k) = gaussian_voxel(view, i, j, k, taps);
  }
}

/// Builds the Gaussian-convolution job (x-pencil decomposition). The
/// job's closures reference `src`/`dst`, which must outlive its run.
template <core::VolumeBackend VolT>
[[nodiscard]] exec::KernelJob gaussian_job(const VolT& src, core::ArrayVolume& dst,
                                           unsigned radius, float sigma,
                                           bool use_gather = false) {
  auto taps = std::make_shared<const std::vector<float>>(gaussian_kernel_1d(radius, sigma));
  const core::Extents3D e = src.extents();
  const std::size_t pencils = static_cast<std::size_t>(e.ny) * e.nz;
  const VolT* src_p = &src;
  core::ArrayVolume* dst_p = &dst;
  if (use_gather) {
    return detail::make_state_job(
        "gaussian", pencils, dst.data(),
        [taps](unsigned) {
          GaussianGatherScratch scratch;
          scratch.prepare(*taps);
          return scratch;
        },
        [src_p, dst_p, taps](GaussianGatherScratch& scratch, std::size_t p, unsigned) {
          gaussian_pencil_gather(*src_p, *dst_p, *taps, p, scratch);
        },
        "gaussian.parallel", "gather");
  }
  // One read view per worker: out-of-core views carry per-worker brick
  // pins and must not be shared across threads (a PlainView is free).
  return detail::make_state_job(
      "gaussian", pencils, dst.data(),
      [src_p](unsigned) { return core::make_read_view(*src_p); },
      [dst_p, taps, e](const auto& view, std::size_t p, unsigned) {
        const auto j = static_cast<std::uint32_t>(p % e.ny);
        const auto k = static_cast<std::uint32_t>(p / e.ny);
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          dst_p->at(i, j, k) = gaussian_voxel(view, i, j, k, *taps);
        }
      },
      "gaussian.parallel", "direct");
}

/// Parallel dense Gaussian convolution over x-pencils. With use_gather the
/// pencils run the sliding-window gather + explicit-SIMD fast path on
/// per-worker scratch (bench/abl_simd quantifies the speedup); off keeps
/// the per-voxel access stream the layout study measures.
template <core::VolumeBackend VolT>
void gaussian_convolve(const VolT& src, core::ArrayVolume& dst, unsigned radius,
                       float sigma, exec::ExecutionContext& ctx, bool use_gather = false) {
  detail::run_job(ctx, gaussian_job(src, dst, radius, sigma, use_gather));
}

/// Facade driver: dispatches on the source volume's runtime layout.
inline void gaussian_convolve(const core::AnyVolume& src, core::ArrayVolume& dst,
                              unsigned radius, float sigma, exec::ExecutionContext& ctx,
                              bool use_gather = false) {
  src.visit([&](const auto& grid) {
    gaussian_convolve(grid, dst, radius, sigma, ctx, use_gather);
  });
}

/// Facade job builder.
[[nodiscard]] inline exec::KernelJob gaussian_job(const core::AnyVolume& src,
                                                  core::ArrayVolume& dst, unsigned radius,
                                                  float sigma, bool use_gather = false) {
  return src.visit(
      [&](const auto& grid) { return gaussian_job(grid, dst, radius, sigma, use_gather); });
}

/// Serial three-pass separable Gaussian (array-order only); numerically
/// equivalent to gaussian_convolve up to float rounding, ~ (2r+1)^2 / 3 x
/// cheaper in taps.
void gaussian_separable(const core::ArrayVolume& src, core::ArrayVolume& dst,
                        unsigned radius, float sigma);

}  // namespace sfcvis::filters
