// Plain Gaussian smoothing — the non-edge-preserving baseline the bilateral
// filter is contrasted with (paper Sec. III-A calls the bilateral filter
// "more computationally intensive than a simple convolution kernel"; the
// examples and the ablation benches quantify that).
//
// Two forms:
//  * gaussian_convolve: direct (2r+1)^3 stencil — the same access pattern
//    as the bilateral filter minus the data-dependent term, usable with
//    any layout / pencil / loop-order configuration.
//  * gaussian_separable: the classic three-pass separable implementation —
//    the algorithmic optimization that data-dependent filters cannot use.
#pragma once

#include <cstdint>
#include <vector>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/traced_view.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/kernels_common.hpp"

namespace sfcvis::filters {

/// Normalized 1D Gaussian taps for offsets [-radius, radius].
[[nodiscard]] std::vector<float> gaussian_kernel_1d(unsigned radius, float sigma);

/// Direct dense 3D Gaussian convolution of one voxel (clamp borders).
template <core::ReadView3D View>
[[nodiscard]] float gaussian_voxel(const View& src, std::uint32_t i, std::uint32_t j,
                                   std::uint32_t k, const std::vector<float>& taps) {
  const int r = static_cast<int>(taps.size() / 2);
  float sum = 0.0f;
  for (int dz = -r; dz <= r; ++dz) {
    for (int dy = -r; dy <= r; ++dy) {
      for (int dx = -r; dx <= r; ++dx) {
        const float w = taps[static_cast<std::size_t>(dx + r)] *
                        taps[static_cast<std::size_t>(dy + r)] *
                        taps[static_cast<std::size_t>(dz + r)];
        sum += w * src.at_clamped(static_cast<std::int64_t>(i) + dx,
                                  static_cast<std::int64_t>(j) + dy,
                                  static_cast<std::int64_t>(k) + dz);
      }
    }
  }
  return sum;
}

/// Parallel dense Gaussian convolution over x-pencils.
template <core::Layout3D L>
void gaussian_convolve(const core::Grid3D<float, L>& src, core::ArrayVolume& dst,
                       unsigned radius, float sigma, exec::ExecutionContext& ctx) {
  const auto taps = gaussian_kernel_1d(radius, sigma);
  const core::PlainView<float, L> view(src);
  const auto& e = src.extents();
  const std::size_t pencils = static_cast<std::size_t>(e.ny) * e.nz;
  ctx.parallel_static(pencils, [&](std::size_t p, unsigned) {
    const auto j = static_cast<std::uint32_t>(p % e.ny);
    const auto k = static_cast<std::uint32_t>(p / e.ny);
    for (std::uint32_t i = 0; i < e.nx; ++i) {
      dst.at(i, j, k) = gaussian_voxel(view, i, j, k, taps);
    }
  });
}

/// Facade driver: dispatches on the source volume's runtime layout.
inline void gaussian_convolve(const core::AnyVolume& src, core::ArrayVolume& dst,
                              unsigned radius, float sigma, exec::ExecutionContext& ctx) {
  src.visit([&](const auto& grid) { gaussian_convolve(grid, dst, radius, sigma, ctx); });
}

/// Serial three-pass separable Gaussian (array-order only); numerically
/// equivalent to gaussian_convolve up to float rounding, ~ (2r+1)^2 / 3 x
/// cheaper in taps.
void gaussian_separable(const core::ArrayVolume& src, core::ArrayVolume& dst,
                        unsigned radius, float sigma);

}  // namespace sfcvis::filters
