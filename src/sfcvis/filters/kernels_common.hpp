// Shared vocabulary of the stencil kernels: pencil (voxel-row) assignment
// axes and stencil iteration orders, named as in the paper's figures
// ("px", "pz", "xyz", "zyx"; Sec. III-A and IV-B3).
#pragma once

#include <cstdint>
#include <string_view>

namespace sfcvis::filters {

/// Which axis a work "pencil" (row of voxels handed to one thread) runs
/// along. px = width rows, py = height rows, pz = depth rows.
enum class PencilAxis : std::uint8_t { kX, kY, kZ };

/// Stencil iteration order: which axis the innermost loop walks. xyz walks
/// x innermost (with the array-order grain); zyx walks z innermost
/// (deliberately against it).
enum class LoopOrder : std::uint8_t { kXYZ, kZYX };

[[nodiscard]] constexpr std::string_view to_string(PencilAxis a) noexcept {
  switch (a) {
    case PencilAxis::kX:
      return "px";
    case PencilAxis::kY:
      return "py";
    case PencilAxis::kZ:
      return "pz";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(LoopOrder o) noexcept {
  return o == LoopOrder::kXYZ ? "xyz" : "zyx";
}

}  // namespace sfcvis::filters
