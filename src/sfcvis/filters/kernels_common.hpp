// Shared vocabulary of the stencil kernels: pencil (voxel-row) assignment
// axes and stencil iteration orders, named as in the paper's figures
// ("px", "pz", "xyz", "zyx"; Sec. III-A and IV-B3) — plus the job-builder
// helpers every kernel driver assembles its exec::KernelJob with. The
// drivers themselves are thin: build a job (decomposition happens in the
// builder), submit it to the context's JobGraph, run it to completion.
// This file is where the per-kernel ExecutionContext& overload
// boilerplate the drivers used to repeat now lives once.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/exec/job.hpp"

namespace sfcvis::filters {

/// Which axis a work "pencil" (row of voxels handed to one thread) runs
/// along. px = width rows, py = height rows, pz = depth rows.
enum class PencilAxis : std::uint8_t { kX, kY, kZ };

/// Stencil iteration order: which axis the innermost loop walks. xyz walks
/// x innermost (with the array-order grain); zyx walks z innermost
/// (deliberately against it).
enum class LoopOrder : std::uint8_t { kXYZ, kZYX };

[[nodiscard]] constexpr std::string_view to_string(PencilAxis a) noexcept {
  switch (a) {
    case PencilAxis::kX:
      return "px";
    case PencilAxis::kY:
      return "py";
    case PencilAxis::kZ:
      return "pz";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(LoopOrder o) noexcept {
  return o == LoopOrder::kXYZ ? "xyz" : "zyx";
}

namespace detail {

/// Builds the common shape of a stateless kernel job: `tiles` items under
/// `dispatch`, each running fn(item, tid). `output` is the identity of
/// the written buffer (JobGraph's double-submit guard keys on it);
/// `span_name`/`span_tag` keep the kernel's historical trace phase names
/// and must be string literals.
template <class Fn>
[[nodiscard]] exec::KernelJob make_job(std::string kernel, exec::JobDispatch dispatch,
                                       std::size_t tiles, const void* output, Fn fn,
                                       const char* span_name,
                                       const char* span_tag = nullptr) {
  exec::KernelJob job;
  job.kernel = std::move(kernel);
  job.dispatch = dispatch;
  job.tiles = tiles;
  job.output = output;
  job.span_name = span_name;
  job.span_tag = span_tag;
  job.tile = [fn = std::move(fn)](void*, std::size_t item, unsigned tid) { fn(item, tid); };
  return job;
}

/// make_job with per-worker state (the scratch/read-view slot the
/// parallel_static_state dispatch owns): make(tid) -> State once per
/// worker, then fn(state, item, tid) for each of its items. Always
/// static-dispatched, matching the round-robin pencil model.
template <class Make, class Fn>
[[nodiscard]] exec::KernelJob make_state_job(std::string kernel, std::size_t tiles,
                                             const void* output, Make make, Fn fn,
                                             const char* span_name,
                                             const char* span_tag = nullptr) {
  using State = std::decay_t<decltype(make(0U))>;
  exec::KernelJob job;
  job.kernel = std::move(kernel);
  job.dispatch = exec::JobDispatch::kStatic;
  job.tiles = tiles;
  job.output = output;
  job.span_name = span_name;
  job.span_tag = span_tag;
  job.make_state = [make = std::move(make)](unsigned tid) -> std::shared_ptr<void> {
    return std::make_shared<State>(make(tid));
  };
  job.tile = [fn = std::move(fn)](void* state, std::size_t item, unsigned tid) {
    fn(*static_cast<State*>(state), item, tid);
  };
  return job;
}

/// exec::run_job / exec::make_replay_context under the filters spelling
/// the kernel drivers use (they live in the exec layer so render/ can
/// share them without depending on filters/).
using exec::make_replay_context;
using exec::run_job;

}  // namespace detail

}  // namespace sfcvis::filters
