// 3D bilateral filter (paper Sec. III-A).
//
// The output voxel D(i) is the normalized, weighted average of its
// (2r+1)^3 stencil neighbourhood, where the weight of neighbour i-bar is
// the product of
//   g(i, i-bar) = exp(-1/2 (d_spatial / sigma_s)^2)   — geometric term, and
//   c(i, i-bar) = exp(-1/2 (|S(i)-S(i-bar)| / sigma_r)^2) — photometric term
// (Tomasi & Manduchi 1998, Eqs. 1-3 of the paper). The geometric term is
// precomputed per stencil offset; the photometric term is data-dependent
// and evaluated per sample, which is what makes the bilateral filter more
// expensive than a plain convolution and gives it its edge-preserving
// behaviour.
//
// Parallelization follows the paper: the volume is decomposed into
// "pencils" (voxel rows along a configurable axis) handed to threads in
// round-robin fashion; the stencil iteration order is configurable so the
// against-the-grain configurations of Fig. 2/3 (pz zyx) can be reproduced.
//
// Kernels are templated on a core::ReadView3D so one implementation serves
// native timed runs (PlainView) and simulated-counter runs (TracedView).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/traced_view.hpp"
#include "sfcvis/core/zquery.hpp"
#include "sfcvis/filters/kernels_common.hpp"
#include "sfcvis/memsim/hierarchy.hpp"
#include "sfcvis/threads/pool.hpp"
#include "sfcvis/threads/schedulers.hpp"

namespace sfcvis::filters {

/// Bilateral filter configuration. Stencil is (2*radius+1)^3; the paper's
/// r1/r3/r5 labels correspond to radius 1, 3, 5 (3^3, 7^3, 11^3 stencils).
struct BilateralParams {
  unsigned radius = 1;
  float sigma_spatial = 1.5f;  ///< geometric falloff, in voxels
  float sigma_range = 0.1f;    ///< photometric falloff, in intensity units
  PencilAxis pencil = PencilAxis::kX;
  LoopOrder order = LoopOrder::kXYZ;
};

/// Precomputed geometric weights for one stencil radius/sigma: the g(i,ibar)
/// table of the paper's Eq. 3, indexed by stencil offset.
class BilateralWeights {
 public:
  BilateralWeights(unsigned radius, float sigma_spatial);

  [[nodiscard]] unsigned radius() const noexcept { return radius_; }

  /// Weight of offset (dx, dy, dz), each in [-radius, radius].
  [[nodiscard]] float spatial(int dx, int dy, int dz) const noexcept {
    const auto width = static_cast<std::size_t>(2 * radius_ + 1);
    const auto ix = static_cast<std::size_t>(dx + static_cast<int>(radius_));
    const auto iy = static_cast<std::size_t>(dy + static_cast<int>(radius_));
    const auto iz = static_cast<std::size_t>(dz + static_cast<int>(radius_));
    return table_[ix + width * (iy + width * iz)];
  }

  /// Photometric weight c(i, ibar) for an intensity difference.
  [[nodiscard]] static float range(float diff, float inv_two_sigma_r_sq) noexcept {
    return std::exp(-diff * diff * inv_two_sigma_r_sq);
  }

 private:
  unsigned radius_;
  std::vector<float> table_;
};

/// Number of pencils a volume decomposes into along `axis`.
[[nodiscard]] std::size_t pencil_count(const core::Extents3D& e, PencilAxis axis) noexcept;

/// Length of one pencil along `axis`.
[[nodiscard]] std::uint32_t pencil_length(const core::Extents3D& e, PencilAxis axis) noexcept;

/// Decomposes pencil index -> the two fixed coordinates; the voxel at
/// position t along the pencil is obtained via pencil_voxel().
struct PencilCoords {
  std::uint32_t a = 0, b = 0;
};
[[nodiscard]] PencilCoords pencil_coords(const core::Extents3D& e, PencilAxis axis,
                                         std::size_t pencil) noexcept;

/// (i, j, k) of position `t` along pencil `pc` on `axis`.
[[nodiscard]] core::Coord3D pencil_voxel(PencilAxis axis, PencilCoords pc,
                                         std::uint32_t t) noexcept;

// ---------------------------------------------------------------------------
// Kernel (header template: shared by native and traced drivers)
// ---------------------------------------------------------------------------

/// Filters a single voxel. Border handling: clamp-to-edge.
template <core::ReadView3D View>
[[nodiscard]] float bilateral_voxel(const View& src, std::uint32_t i, std::uint32_t j,
                                    std::uint32_t k, const BilateralWeights& weights,
                                    float sigma_range, LoopOrder order) {
  const int r = static_cast<int>(weights.radius());
  const float inv2sr2 = 1.0f / (2.0f * sigma_range * sigma_range);
  const float center = src.at(i, j, k);
  float sum = 0.0f;
  float norm = 0.0f;

  auto tap = [&](int dx, int dy, int dz) {
    const float sample = src.at_clamped(static_cast<std::int64_t>(i) + dx,
                                        static_cast<std::int64_t>(j) + dy,
                                        static_cast<std::int64_t>(k) + dz);
    const float w = weights.spatial(dx, dy, dz) *
                    BilateralWeights::range(sample - center, inv2sr2);
    sum += w * sample;
    norm += w;
  };

  if (order == LoopOrder::kXYZ) {
    for (int dz = -r; dz <= r; ++dz) {
      for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
          tap(dx, dy, dz);
        }
      }
    }
  } else {  // zyx: innermost loop walks z, against the array-order grain
    for (int dx = -r; dx <= r; ++dx) {
      for (int dy = -r; dy <= r; ++dy) {
        for (int dz = -r; dz <= r; ++dz) {
          tap(dx, dy, dz);
        }
      }
    }
  }
  // norm >= spatial(0,0,0) * range(0) > 0 always: the center tap.
  return sum / norm;
}

/// Interior variant of bilateral_voxel: every stencil tap is known to be
/// in bounds, so neighbours index the view directly — no per-tap clamp
/// branches. Tap order and arithmetic match bilateral_voxel exactly, so
/// the result is bit-identical; callers must guarantee the whole stencil
/// fits (each coordinate in [r, n-1-r] on its axis).
template <core::ReadView3D View>
[[nodiscard]] float bilateral_voxel_interior(const View& src, std::uint32_t i,
                                             std::uint32_t j, std::uint32_t k,
                                             const BilateralWeights& weights,
                                             float sigma_range, LoopOrder order) {
  const int r = static_cast<int>(weights.radius());
  const float inv2sr2 = 1.0f / (2.0f * sigma_range * sigma_range);
  const float center = src.at(i, j, k);
  float sum = 0.0f;
  float norm = 0.0f;

  auto tap = [&](int dx, int dy, int dz) {
    const float sample = src.at(static_cast<std::uint32_t>(static_cast<int>(i) + dx),
                                static_cast<std::uint32_t>(static_cast<int>(j) + dy),
                                static_cast<std::uint32_t>(static_cast<int>(k) + dz));
    const float w = weights.spatial(dx, dy, dz) *
                    BilateralWeights::range(sample - center, inv2sr2);
    sum += w * sample;
    norm += w;
  };

  if (order == LoopOrder::kXYZ) {
    for (int dz = -r; dz <= r; ++dz) {
      for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
          tap(dx, dy, dz);
        }
      }
    }
  } else {
    for (int dx = -r; dx <= r; ++dx) {
      for (int dy = -r; dy <= r; ++dy) {
        for (int dz = -r; dz <= r; ++dz) {
          tap(dx, dy, dz);
        }
      }
    }
  }
  return sum / norm;
}

/// Filters every voxel of one pencil into `dst` (array-order output).
///
/// Pencils whose two fixed coordinates sit at least `radius` away from
/// their borders split into three segments: clamped heads/tails of
/// `radius` voxels each, and a branch-free interior that takes the
/// bilateral_voxel_interior fast path. Border pencils (and pencils
/// shorter than one full stencil) stay on the clamped kernel throughout.
/// Output is bit-identical either way.
template <core::ReadView3D View>
void bilateral_pencil(const View& src, core::Grid3D<float, core::ArrayOrderLayout>& dst,
                      const BilateralWeights& weights, const BilateralParams& params,
                      std::size_t pencil) {
  const auto& e = src.extents();
  const PencilCoords pc = pencil_coords(e, params.pencil, pencil);
  const std::uint32_t len = pencil_length(e, params.pencil);
  const std::uint32_t r = weights.radius();

  // Extents of the two fixed axes (the varying axis is bounded by `len`).
  std::uint32_t na = 0, nb = 0;
  switch (params.pencil) {
    case PencilAxis::kX: na = e.ny; nb = e.nz; break;
    case PencilAxis::kY: na = e.nx; nb = e.nz; break;
    case PencilAxis::kZ: na = e.nx; nb = e.ny; break;
  }
  const bool fixed_interior = pc.a >= r && pc.a + r < na && pc.b >= r && pc.b + r < nb;
  const std::uint32_t interior_begin = fixed_interior && len > 2 * r ? r : len;
  const std::uint32_t interior_end = fixed_interior && len > 2 * r ? len - r : len;

  const auto clamped_run = [&](std::uint32_t t0, std::uint32_t t1) {
    for (std::uint32_t t = t0; t < t1; ++t) {
      const core::Coord3D v = pencil_voxel(params.pencil, pc, t);
      dst.at(v.i, v.j, v.k) =
          bilateral_voxel(src, v.i, v.j, v.k, weights, params.sigma_range, params.order);
    }
  };
  clamped_run(0, interior_begin);
  for (std::uint32_t t = interior_begin; t < interior_end; ++t) {
    const core::Coord3D v = pencil_voxel(params.pencil, pc, t);
    dst.at(v.i, v.j, v.k) = bilateral_voxel_interior(src, v.i, v.j, v.k, weights,
                                                     params.sigma_range, params.order);
  }
  clamped_run(interior_end, len);
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Serial reference implementation (array-order input, xyz order); the
/// oracle the test suite checks every configuration against.
void bilateral_reference(const core::Grid3D<float, core::ArrayOrderLayout>& src,
                         core::Grid3D<float, core::ArrayOrderLayout>& dst,
                         unsigned radius, float sigma_spatial, float sigma_range);

/// Shared-memory parallel bilateral filter: pencils are assigned to pool
/// threads round-robin (paper Sec. III-A). Works with any source layout.
template <core::Layout3D L>
void bilateral_parallel(const core::Grid3D<float, L>& src,
                        core::Grid3D<float, core::ArrayOrderLayout>& dst,
                        const BilateralParams& params, threads::Pool& pool) {
  const BilateralWeights weights(params.radius, params.sigma_spatial);
  const core::PlainView<float, L> view(src);
  const std::size_t pencils = pencil_count(src.extents(), params.pencil);
  threads::parallel_for_static(pool, pencils, [&](std::size_t pencil, unsigned) {
    bilateral_pencil(view, dst, weights, params, pencil);
  });
}

/// Curve-order sweep: processes voxels in Z-curve order instead of
/// pencils, partitioning the curve into `num_chunks` contiguous ranges
/// handed to threads round-robin. With a Z-order source layout the sweep
/// visits storage in monotonically increasing order — the traversal the
/// layout is optimal for. This is the "traversal matched to layout"
/// extension the paper's related work (Bader 2013) describes for matrix
/// codes; bench/abl_traversal quantifies it for the bilateral filter.
template <core::Layout3D L>
void bilateral_zsweep(const core::Grid3D<float, L>& src,
                      core::Grid3D<float, core::ArrayOrderLayout>& dst,
                      const BilateralParams& params, threads::Pool& pool,
                      std::size_t chunks_per_thread = 8) {
  const BilateralWeights weights(params.radius, params.sigma_spatial);
  const core::PlainView<float, L> view(src);
  const auto& e = src.extents();

  // Materialize the curve-ordered voxel list once (12 bytes/voxel); chunks
  // are contiguous curve ranges so each work item is a compact brick.
  std::vector<core::Coord3D> order;
  order.reserve(e.size());
  core::for_each_zorder(e, [&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    order.push_back(core::Coord3D{i, j, k});
  });

  const std::size_t num_chunks = std::max<std::size_t>(1, pool.size() * chunks_per_thread);
  const std::size_t chunk_len = (order.size() + num_chunks - 1) / num_chunks;
  threads::parallel_for_static(pool, num_chunks, [&](std::size_t chunk, unsigned) {
    const std::size_t begin = chunk * chunk_len;
    const std::size_t end = std::min(order.size(), begin + chunk_len);
    for (std::size_t n = begin; n < end; ++n) {
      const core::Coord3D v = order[n];
      dst.at(v.i, v.j, v.k) =
          bilateral_voxel(view, v.i, v.j, v.k, weights, params.sigma_range, params.order);
    }
  });
}

/// Counter-collection variant of the curve-order sweep.
template <core::Layout3D L>
void bilateral_zsweep_traced(const core::Grid3D<float, L>& src,
                             core::Grid3D<float, core::ArrayOrderLayout>& dst,
                             const BilateralParams& params, memsim::Hierarchy& hierarchy,
                             std::size_t max_items = SIZE_MAX,
                             std::size_t chunks_per_thread = 8) {
  const BilateralWeights weights(params.radius, params.sigma_spatial);
  const auto& e = src.extents();
  std::vector<core::Coord3D> order;
  order.reserve(e.size());
  core::for_each_zorder(e, [&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    order.push_back(core::Coord3D{i, j, k});
  });
  const std::size_t num_chunks =
      std::max<std::size_t>(1, hierarchy.num_threads() * chunks_per_thread);
  const std::size_t chunk_len = (order.size() + num_chunks - 1) / num_chunks;
  const threads::StaticRoundRobin rr(num_chunks, hierarchy.num_threads());
  std::vector<memsim::ThreadSink> sinks;
  sinks.reserve(hierarchy.num_threads());
  for (unsigned t = 0; t < hierarchy.num_threads(); ++t) {
    sinks.push_back(hierarchy.sink(t));
  }
  std::size_t done = 0;
  for (const auto& assignment : rr.replay_order()) {
    if (done++ >= max_items) {
      break;
    }
    const core::TracedView<float, L, memsim::ThreadSink> view(src, sinks[assignment.tid]);
    const std::size_t begin = assignment.item * chunk_len;
    const std::size_t end = std::min(order.size(), begin + chunk_len);
    for (std::size_t n = begin; n < end; ++n) {
      const core::Coord3D v = order[n];
      dst.at(v.i, v.j, v.k) =
          bilateral_voxel(view, v.i, v.j, v.k, weights, params.sigma_range, params.order);
    }
  }
}

/// Counter-collection variant: replays the exact access stream that
/// `num_threads` round-robin threads would produce through the modeled
/// hierarchy (single real thread; deterministic).
///
/// `max_items` caps the replay at a prefix of the schedule: the benches use
/// it to bound simulation cost on large volumes. Both layouts replay the
/// identical voxel set, so the scaled relative difference stays well
/// defined (see DESIGN.md Sec. 4).
template <core::Layout3D L>
void bilateral_traced(const core::Grid3D<float, L>& src,
                      core::Grid3D<float, core::ArrayOrderLayout>& dst,
                      const BilateralParams& params, memsim::Hierarchy& hierarchy,
                      std::size_t max_items = SIZE_MAX) {
  const BilateralWeights weights(params.radius, params.sigma_spatial);
  const std::size_t pencils = pencil_count(src.extents(), params.pencil);
  const threads::StaticRoundRobin rr(pencils, hierarchy.num_threads());
  std::vector<memsim::ThreadSink> sinks;
  sinks.reserve(hierarchy.num_threads());
  for (unsigned t = 0; t < hierarchy.num_threads(); ++t) {
    sinks.push_back(hierarchy.sink(t));
  }
  std::size_t done = 0;
  for (const auto& assignment : rr.replay_order()) {
    if (done++ >= max_items) {
      break;
    }
    const core::TracedView<float, L, memsim::ThreadSink> view(src, sinks[assignment.tid]);
    bilateral_pencil(view, dst, weights, params, assignment.item);
  }
}

}  // namespace sfcvis::filters
