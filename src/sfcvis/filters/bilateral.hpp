// 3D bilateral filter (paper Sec. III-A).
//
// The output voxel D(i) is the normalized, weighted average of its
// (2r+1)^3 stencil neighbourhood, where the weight of neighbour i-bar is
// the product of
//   g(i, i-bar) = exp(-1/2 (d_spatial / sigma_s)^2)   — geometric term, and
//   c(i, i-bar) = exp(-1/2 (|S(i)-S(i-bar)| / sigma_r)^2) — photometric term
// (Tomasi & Manduchi 1998, Eqs. 1-3 of the paper). The geometric term is
// precomputed per stencil offset; the photometric term is data-dependent
// and evaluated per sample, which is what makes the bilateral filter more
// expensive than a plain convolution and gives it its edge-preserving
// behaviour.
//
// Parallelization follows the paper: the volume is decomposed into
// "pencils" (voxel rows along a configurable axis) handed to threads in
// round-robin fashion; the stencil iteration order is configurable so the
// against-the-grain configurations of Fig. 2/3 (pz zyx) can be reproduced.
//
// Kernels are templated on a core::ReadView3D so one implementation serves
// native timed runs (PlainView) and simulated-counter runs (TracedView).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sfcvis/core/gather.hpp"
#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/simd.hpp"
#include "sfcvis/core/traced_view.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/core/zquery.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/fastmath.hpp"
#include "sfcvis/filters/kernels_common.hpp"
#include "sfcvis/memsim/hierarchy.hpp"
#include "sfcvis/threads/schedulers.hpp"
#include "sfcvis/trace/trace.hpp"

namespace sfcvis::filters {

/// Bilateral filter configuration. Stencil is (2*radius+1)^3; the paper's
/// r1/r3/r5 labels correspond to radius 1, 3, 5 (3^3, 7^3, 11^3 stencils).
struct BilateralParams {
  unsigned radius = 1;
  float sigma_spatial = 1.5f;  ///< geometric falloff, in voxels
  float sigma_range = 0.1f;    ///< photometric falloff, in intensity units
  PencilAxis pencil = PencilAxis::kX;
  LoopOrder order = LoopOrder::kXYZ;
  /// Sliding-window gather fast path (bilateral_parallel only): stencil
  /// planes are gathered once into contiguous per-worker scratch and the
  /// tap loops run dense. Off by default so the paper-figure drivers and
  /// the traced counter runs keep the per-voxel access stream the study
  /// measures; bench/abl_stencil_gather quantifies the speedup.
  bool use_gather = false;
  /// Gather path only: evaluate the photometric exp with the vectorizable
  /// fast_exp_neg approximation (output within 1e-5 of exact). With
  /// fast_exp = false and use_range_lut = false the gather path performs
  /// tap arithmetic in the exact kernels' order — bit-identical output.
  bool fast_exp = true;
  /// Gather path only: replace the photometric exp with the quantized LUT
  /// in BilateralWeights (1024 bins, linear interpolation). Cheaper than
  /// fast_exp on hardware without SIMD exp throughput; looser error bound
  /// (see BilateralWeights::build_range_lut).
  bool use_range_lut = false;
  /// Gather path, fast_exp/LUT modes only: run the tap loops as explicit
  /// SIMD over the scratch planes (core/simd.hpp — width simd::kNativeLanes,
  /// masked tails, vector fast_exp_neg / LUT gathers) instead of relying on
  /// autovectorization of the `#pragma omp simd` loops. Per-tap arithmetic
  /// is unchanged; only the tap-sum accumulation order differs (lane-strided
  /// partial sums reduced once per voxel), which stays well inside the fast
  /// path's existing 1e-5 output tolerance. The exact mode ignores this knob
  /// — its bit-identity contract requires the scalar loop. Off leaves the
  /// autovectorized loops as the measured baseline (bench/abl_simd).
  bool simd_taps = true;
};

/// Precomputed geometric weights for one stencil radius/sigma: the g(i,ibar)
/// table of the paper's Eq. 3, indexed by stencil offset. Optionally also
/// carries the quantized photometric LUT of BilateralParams::use_range_lut.
class BilateralWeights {
 public:
  BilateralWeights(unsigned radius, float sigma_spatial);

  /// Builds weights for a full parameter set: spatial table always, range
  /// LUT when params.use_range_lut is set.
  explicit BilateralWeights(const BilateralParams& params);

  [[nodiscard]] unsigned radius() const noexcept { return radius_; }

  /// Weight of offset (dx, dy, dz), each in [-radius, radius].
  [[nodiscard]] float spatial(int dx, int dy, int dz) const noexcept {
    const auto width = static_cast<std::size_t>(2 * radius_ + 1);
    const auto ix = static_cast<std::size_t>(dx + static_cast<int>(radius_));
    const auto iy = static_cast<std::size_t>(dy + static_cast<int>(radius_));
    const auto iz = static_cast<std::size_t>(dz + static_cast<int>(radius_));
    return table_[ix + width * (iy + width * iz)];
  }

  /// Raw spatial table, offset (dx, dy, dz) -> ((dz+r)*W + (dy+r))*W + dx+r.
  [[nodiscard]] const std::vector<float>& spatial_table() const noexcept { return table_; }

  /// Photometric weight c(i, ibar) for an intensity difference.
  [[nodiscard]] static float range(float diff, float inv_two_sigma_r_sq) noexcept {
    return std::exp(-diff * diff * inv_two_sigma_r_sq);
  }

  /// Builds the quantized photometric LUT: exp(-u) sampled at `bins`+1
  /// points of u = diff^2 / (2 sigma_r^2) over [0, kRangeLutMaxU], linearly
  /// interpolated between samples and clamped to the tail value beyond.
  /// Worst-case weight error is the interpolation bound (du^2)/8 ~ 3.1e-5
  /// at 1024 bins plus the 1.1e-7 tail clamp; the output-level bound is
  /// pinned by tests/test_bilateral_gather.cpp.
  void build_range_lut(float sigma_range, unsigned bins = 1024);

  [[nodiscard]] bool has_range_lut() const noexcept { return !range_lut_.empty(); }

  /// LUT photometric weight; requires has_range_lut().
  [[nodiscard]] float range_lut(float diff) const noexcept {
    float x = diff * diff * lut_u_scale_;
    x = x > lut_max_x_ ? lut_max_x_ : x;
    const auto b = static_cast<std::uint32_t>(x);
    const float f = x - static_cast<float>(b);
    return range_lut_[b] + f * (range_lut_[b + 1] - range_lut_[b]);
  }

  /// Upper end of the quantized u = diff^2/(2 sigma_r^2) domain; weights
  /// beyond it clamp to exp(-kRangeLutMaxU) ~ 1.1e-7.
  static constexpr float kRangeLutMaxU = 16.0f;

  /// Raw LUT pieces for the explicit-SIMD tap loop (vector twin of
  /// range_lut(): clamp, truncate, two gathers, lerp). Require has_range_lut().
  [[nodiscard]] const float* range_lut_data() const noexcept { return range_lut_.data(); }
  [[nodiscard]] float range_lut_u_scale() const noexcept { return lut_u_scale_; }
  [[nodiscard]] float range_lut_max_x() const noexcept { return lut_max_x_; }

 private:
  unsigned radius_;
  std::vector<float> table_;
  std::vector<float> range_lut_;  ///< bins + 2 entries (interpolation pad)
  float lut_u_scale_ = 0.0f;      ///< (1 / (2 sigma_r^2)) * bins / kRangeLutMaxU
  float lut_max_x_ = 0.0f;        ///< bins, as float
};

/// Number of pencils a volume decomposes into along `axis`.
[[nodiscard]] std::size_t pencil_count(const core::Extents3D& e, PencilAxis axis) noexcept;

/// Length of one pencil along `axis`.
[[nodiscard]] std::uint32_t pencil_length(const core::Extents3D& e, PencilAxis axis) noexcept;

/// Decomposes pencil index -> the two fixed coordinates; the voxel at
/// position t along the pencil is obtained via pencil_voxel().
struct PencilCoords {
  std::uint32_t a = 0, b = 0;
};
[[nodiscard]] PencilCoords pencil_coords(const core::Extents3D& e, PencilAxis axis,
                                         std::size_t pencil) noexcept;

/// (i, j, k) of position `t` along pencil `pc` on `axis`.
[[nodiscard]] core::Coord3D pencil_voxel(PencilAxis axis, PencilCoords pc,
                                         std::uint32_t t) noexcept;

// ---------------------------------------------------------------------------
// Kernel (header template: shared by native and traced drivers)
// ---------------------------------------------------------------------------

/// Filters a single voxel. Border handling: clamp-to-edge.
template <core::ReadView3D View>
[[nodiscard]] float bilateral_voxel(const View& src, std::uint32_t i, std::uint32_t j,
                                    std::uint32_t k, const BilateralWeights& weights,
                                    float sigma_range, LoopOrder order) {
  const int r = static_cast<int>(weights.radius());
  const float inv2sr2 = 1.0f / (2.0f * sigma_range * sigma_range);
  const float center = src.at(i, j, k);
  float sum = 0.0f;
  float norm = 0.0f;

  auto tap = [&](int dx, int dy, int dz) {
    const float sample = src.at_clamped(static_cast<std::int64_t>(i) + dx,
                                        static_cast<std::int64_t>(j) + dy,
                                        static_cast<std::int64_t>(k) + dz);
    const float w = weights.spatial(dx, dy, dz) *
                    BilateralWeights::range(sample - center, inv2sr2);
    sum += w * sample;
    norm += w;
  };

  if (order == LoopOrder::kXYZ) {
    for (int dz = -r; dz <= r; ++dz) {
      for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
          tap(dx, dy, dz);
        }
      }
    }
  } else {  // zyx: innermost loop walks z, against the array-order grain
    for (int dx = -r; dx <= r; ++dx) {
      for (int dy = -r; dy <= r; ++dy) {
        for (int dz = -r; dz <= r; ++dz) {
          tap(dx, dy, dz);
        }
      }
    }
  }
  // norm >= spatial(0,0,0) * range(0) > 0 always: the center tap.
  return sum / norm;
}

/// Interior variant of bilateral_voxel: every stencil tap is known to be
/// in bounds, so neighbours index the view directly — no per-tap clamp
/// branches. Tap order and arithmetic match bilateral_voxel exactly, so
/// the result is bit-identical; callers must guarantee the whole stencil
/// fits (each coordinate in [r, n-1-r] on its axis).
template <core::ReadView3D View>
[[nodiscard]] float bilateral_voxel_interior(const View& src, std::uint32_t i,
                                             std::uint32_t j, std::uint32_t k,
                                             const BilateralWeights& weights,
                                             float sigma_range, LoopOrder order) {
  const int r = static_cast<int>(weights.radius());
  const float inv2sr2 = 1.0f / (2.0f * sigma_range * sigma_range);
  const float center = src.at(i, j, k);
  float sum = 0.0f;
  float norm = 0.0f;

  auto tap = [&](int dx, int dy, int dz) {
    const float sample = src.at(static_cast<std::uint32_t>(static_cast<int>(i) + dx),
                                static_cast<std::uint32_t>(static_cast<int>(j) + dy),
                                static_cast<std::uint32_t>(static_cast<int>(k) + dz));
    const float w = weights.spatial(dx, dy, dz) *
                    BilateralWeights::range(sample - center, inv2sr2);
    sum += w * sample;
    norm += w;
  };

  if (order == LoopOrder::kXYZ) {
    for (int dz = -r; dz <= r; ++dz) {
      for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
          tap(dx, dy, dz);
        }
      }
    }
  } else {
    for (int dx = -r; dx <= r; ++dx) {
      for (int dy = -r; dy <= r; ++dy) {
        for (int dz = -r; dz <= r; ++dz) {
          tap(dx, dy, dz);
        }
      }
    }
  }
  return sum / norm;
}

/// Filters every voxel of one pencil into `dst` (array-order output).
///
/// Pencils whose two fixed coordinates sit at least `radius` away from
/// their borders split into three segments: clamped heads/tails of
/// `radius` voxels each, and a branch-free interior that takes the
/// bilateral_voxel_interior fast path. Border pencils (and pencils
/// shorter than one full stencil) stay on the clamped kernel throughout.
/// Output is bit-identical either way.
template <core::ReadView3D View>
void bilateral_pencil(const View& src, core::ArrayVolume& dst,
                      const BilateralWeights& weights, const BilateralParams& params,
                      std::size_t pencil) {
  const auto& e = src.extents();
  const PencilCoords pc = pencil_coords(e, params.pencil, pencil);
  const std::uint32_t len = pencil_length(e, params.pencil);
  const std::uint32_t r = weights.radius();

  // Extents of the two fixed axes (the varying axis is bounded by `len`).
  std::uint32_t na = 0, nb = 0;
  switch (params.pencil) {
    case PencilAxis::kX: na = e.ny; nb = e.nz; break;
    case PencilAxis::kY: na = e.nx; nb = e.nz; break;
    case PencilAxis::kZ: na = e.nx; nb = e.ny; break;
  }
  const bool fixed_interior = pc.a >= r && pc.a + r < na && pc.b >= r && pc.b + r < nb;
  const std::uint32_t interior_begin = fixed_interior && len > 2 * r ? r : len;
  const std::uint32_t interior_end = fixed_interior && len > 2 * r ? len - r : len;

  // Axis dispatch hoisted out of the hot loops: the pencil's voxel at t is
  // v0 + t * unit(axis), so the per-voxel switch inside pencil_voxel never
  // runs per tap-loop iteration. Coordinates (and therefore output and
  // traced access streams) are identical to calling pencil_voxel(t).
  const core::Coord3D v0 = pencil_voxel(params.pencil, pc, 0);
  const std::uint32_t di = params.pencil == PencilAxis::kX ? 1u : 0u;
  const std::uint32_t dj = params.pencil == PencilAxis::kY ? 1u : 0u;
  const std::uint32_t dk = params.pencil == PencilAxis::kZ ? 1u : 0u;

  const auto clamped_run = [&](std::uint32_t t0, std::uint32_t t1) {
    for (std::uint32_t t = t0; t < t1; ++t) {
      const core::Coord3D v{v0.i + t * di, v0.j + t * dj, v0.k + t * dk};
      dst.at(v.i, v.j, v.k) =
          bilateral_voxel(src, v.i, v.j, v.k, weights, params.sigma_range, params.order);
    }
  };
  clamped_run(0, interior_begin);
  for (std::uint32_t t = interior_begin; t < interior_end; ++t) {
    const core::Coord3D v{v0.i + t * di, v0.j + t * dj, v0.k + t * dk};
    dst.at(v.i, v.j, v.k) = bilateral_voxel_interior(src, v.i, v.j, v.k, weights,
                                                     params.sigma_range, params.order);
  }
  clamped_run(interior_end, len);
}

// ---------------------------------------------------------------------------
// Sliding-window gather fast path
// ---------------------------------------------------------------------------
// As the pencil advances one voxel, the (2r+1)^3 stencil footprint changes
// by exactly one (2r+1)^2 plane, so a ring of W = 2r+1 contiguous scratch
// planes turns W^3 layout lookups per voxel into one W^2 plane gather —
// amortizing index cost by ~1/W — and the tap loops run over dense
// unit-stride rows the compiler can vectorize. The plane gathers are the
// only layout-aware step (core/gather.hpp: memcpy rows on array order,
// incremental Morton stepping with run copies on Z-order).

/// Per-worker scratch of the gather fast path; allocate once per parallel
/// region (threads::parallel_for_static_state), reuse across pencils.
struct BilateralGatherScratch {
  /// Sizes the ring for `weights`' radius and permutes the spatial table
  /// to [dp][du][dv] for `axis` so the innermost tap loop walks both the
  /// samples and the weights with unit stride.
  void prepare(const BilateralWeights& weights, PencilAxis axis);

  std::uint32_t width = 0;       ///< W = 2r + 1
  std::uint32_t plane_size = 0;  ///< W * W
  PencilAxis axis = PencilAxis::kX;
  std::vector<float> ring;   ///< W planes of W*W samples, slot = s % W
  std::vector<float> wperm;  ///< spatial weights permuted to [dp][du][dv]
  /// Contiguous-run accounting of the plane gathers, merged into the
  /// trace metrics registry per pencil. Collected only when span tracing
  /// was runtime-enabled at prepare() time, so untraced runs pay nothing.
  bool collect_run_stats = false;
  core::GatherRunStats run_stats;
};

namespace detail {

/// Merges and resets one pencil's gather-run stats ("bilateral.gather_*"
/// metrics: run-length histogram plus run/element counters).
inline void fold_gather_run_stats(core::GatherRunStats& rs) {
  if (rs.runs == 0) {
    return;
  }
  auto& tracer = trace::Tracer::instance();
  static const trace::HistogramId k_len = tracer.histogram_id("bilateral.gather_run_len");
  static const trace::CounterId k_runs = tracer.counter_id("bilateral.gather_runs");
  static const trace::CounterId k_elems = tracer.counter_id("bilateral.gather_elements");
  tracer.merge_histogram(k_len, rs.len_log2.data(), core::GatherRunStats::kBuckets,
                         rs.runs, rs.elements, rs.min_run, rs.max_run);
  tracer.add(k_runs, rs.runs);
  tracer.add(k_elems, rs.elements);
  rs = core::GatherRunStats{};
}

/// Explicit-SIMD tap loops over one voxel's W ring planes (the vectorized
/// twin of the `#pragma omp simd` loops in bilateral_pencil_gather). One
/// vector accumulator pair is carried across all planes and reduced once;
/// tails load via masked lanes whose weight slice reads exactly 0, so a
/// masked lane contributes +0 to both sums — processing the tail wide is
/// arithmetically identical to processing only the valid lanes. kLut
/// selects the quantized-LUT photometric term (clamped before the index
/// truncation, so masked-lane garbage can never gather out of bounds);
/// otherwise the vector fast_exp_neg (lane-exact twin of the scalar one).
template <bool kLut>
[[nodiscard]] inline std::pair<float, float> simd_tap_planes(
    const float* ring, const float* wperm, std::uint32_t t, std::uint32_t r,
    std::uint32_t W, std::uint32_t plane_sz, float center, float inv2sr2,
    const BilateralWeights& weights) {
  constexpr int N = simd::kNativeLanes;
  using VF = simd::vfloat<N>;
  using VI = simd::vint<N>;
  const VF v_center = VF::broadcast(center);
  const VF v_inv2sr2 = VF::broadcast(inv2sr2);
  const float* lut = kLut ? weights.range_lut_data() : nullptr;
  const VF v_lut_scale = VF::broadcast(kLut ? weights.range_lut_u_scale() : 0.0f);
  const VF v_lut_max = VF::broadcast(kLut ? weights.range_lut_max_x() : 0.0f);
  VF v_sum = VF::zero();
  VF v_norm = VF::zero();
  const auto taps = [&](VF sample, VF wspatial) {
    const VF d = sample - v_center;
    VF w;
    if constexpr (kLut) {
      VF x = d * d * v_lut_scale;
      x = select(gt(x, v_lut_max), v_lut_max, x);
      const VI b = trunc_to_int(x);
      const VF f = x - to_float(b);
      const VF lo = gather(lut, b);
      const VF hi = gather(lut, b + VI::broadcast(1));
      w = wspatial * (lo + f * (hi - lo));
    } else {
      w = wspatial * simd::fast_exp_neg(d * d * v_inv2sr2);
    }
    v_sum = v_sum + w * sample;
    v_norm = v_norm + w;
  };
  for (std::uint32_t dpi = 0; dpi < W; ++dpi) {
    const float* plane = ring + ((t - r + dpi) % W) * plane_sz;
    const float* wplane = wperm + dpi * plane_sz;
    std::uint32_t q = 0;
    for (; q + N <= plane_sz; q += N) {
      taps(VF::loadu(plane + q), VF::loadu(wplane + q));
    }
    if (q < plane_sz) {
      const int tail = static_cast<int>(plane_sz - q);
      taps(VF::loadu_masked(plane + q, tail), VF::loadu_masked(wplane + q, tail));
    }
  }
  return {simd::reduce_add(v_sum), simd::reduce_add(v_norm)};
}

}  // namespace detail

/// Gather-based bilateral_pencil. Interior voxels of interior pencils take
/// the ring-buffer fast path; border voxels (and whole pencils too short
/// or too close to a face for a full stencil) fall back to the clamped
/// per-voxel kernel. Tap order is plane-major ([dp][du][dv]); with
/// params.fast_exp and params.use_range_lut both off the arithmetic per
/// tap matches the exact kernels', so output is bit-identical to
/// bilateral_reference for (pz, xyz) and to bilateral_voxel's zyx order
/// for (px, zyx); other configurations differ only by float reassociation
/// of the tap sum (well under the 1e-5 test tolerance).
template <core::VolumeBackend VolT>
void bilateral_pencil_gather(const VolT& src, core::ArrayVolume& dst,
                             const BilateralWeights& weights,
                             const BilateralParams& params, std::size_t pencil,
                             BilateralGatherScratch& scratch) {
  const auto& e = src.extents();
  const PencilCoords pc = pencil_coords(e, params.pencil, pencil);
  const std::uint32_t len = pencil_length(e, params.pencil);
  const std::uint32_t r = weights.radius();
  const std::uint32_t W = scratch.width;
  const std::uint32_t plane_sz = scratch.plane_size;
  const auto view = core::make_read_view(src);

  std::uint32_t na = 0, nb = 0;
  switch (params.pencil) {
    case PencilAxis::kX: na = e.ny; nb = e.nz; break;
    case PencilAxis::kY: na = e.nx; nb = e.nz; break;
    case PencilAxis::kZ: na = e.nx; nb = e.ny; break;
  }
  const bool fixed_interior = pc.a >= r && pc.a + r < na && pc.b >= r && pc.b + r < nb;
  if (!fixed_interior || len <= 2 * r) {
    bilateral_pencil(view, dst, weights, params, pencil);
    return;
  }

  const core::Coord3D v0 = pencil_voxel(params.pencil, pc, 0);
  const std::uint32_t di = params.pencil == PencilAxis::kX ? 1u : 0u;
  const std::uint32_t dj = params.pencil == PencilAxis::kY ? 1u : 0u;
  const std::uint32_t dk = params.pencil == PencilAxis::kZ ? 1u : 0u;
  const auto clamped_run = [&](std::uint32_t t0, std::uint32_t t1) {
    for (std::uint32_t t = t0; t < t1; ++t) {
      const core::Coord3D v{v0.i + t * di, v0.j + t * dj, v0.k + t * dk};
      dst.at(v.i, v.j, v.k) =
          bilateral_voxel(view, v.i, v.j, v.k, weights, params.sigma_range, params.order);
    }
  };
  clamped_run(0, r);

  const std::uint32_t a0 = pc.a - r;
  const std::uint32_t b0 = pc.b - r;
  core::GatherRunStats* rs = scratch.collect_run_stats ? &scratch.run_stats : nullptr;
  const auto gather_plane = [&](std::uint32_t s) {
    float* plane = scratch.ring.data() + (s % W) * plane_sz;
    for (std::uint32_t du = 0; du < W; ++du) {
      switch (params.pencil) {
        case PencilAxis::kX:  // plane spans (y, z): rows along z
          core::gather_row(src, core::Axis3::kZ, s, a0 + du, b0, W, plane + du * W, rs);
          break;
        case PencilAxis::kY:  // plane spans (z, x): rows along x
          core::gather_row(src, core::Axis3::kX, a0, s, b0 + du, W, plane + du * W, rs);
          break;
        case PencilAxis::kZ:  // plane spans (y, x): rows along x
          core::gather_row(src, core::Axis3::kX, a0, b0 + du, s, W, plane + du * W, rs);
          break;
      }
    }
  };
  for (std::uint32_t s = 0; s <= 2 * r; ++s) {
    gather_plane(s);
  }

  const float inv2sr2 = 1.0f / (2.0f * params.sigma_range * params.sigma_range);
  const bool lut = params.use_range_lut && weights.has_range_lut();
  const bool fast = params.fast_exp && !lut;
  // Explicit SIMD applies to the approximate modes only; the exact mode's
  // bit-identity contract needs the scalar tap order below.
  const bool simd_taps = params.simd_taps && (fast || lut);
  const float* ring = scratch.ring.data();
  const float* wperm = scratch.wperm.data();
  for (std::uint32_t t = r; t < len - r; ++t) {
    if (t > r) {
      gather_plane(t + r);
    }
    const float center = ring[(t % W) * plane_sz + r * W + r];
    if (simd_taps) {
      const auto [sum, norm] =
          lut ? detail::simd_tap_planes<true>(ring, wperm, t, r, W, plane_sz,
                                              center, inv2sr2, weights)
              : detail::simd_tap_planes<false>(ring, wperm, t, r, W, plane_sz,
                                               center, inv2sr2, weights);
      const core::Coord3D v{v0.i + t * di, v0.j + t * dj, v0.k + t * dk};
      dst.at(v.i, v.j, v.k) = sum / norm;
      continue;
    }
    float sum = 0.0f;
    float norm = 0.0f;
    // One flat loop per plane: scratch planes and their weight slices are
    // both contiguous, so [du][dv] collapses to plane_sz iterations — same
    // tap order (bit-identity preserved), ~W times fewer vector epilogues.
    for (std::uint32_t dpi = 0; dpi < W; ++dpi) {
      const float* plane = ring + ((t - r + dpi) % W) * plane_sz;
      const float* wplane = wperm + dpi * plane_sz;
      if (fast) {
#pragma omp simd reduction(+ : sum, norm)
        for (std::uint32_t q = 0; q < plane_sz; ++q) {
          const float sample = plane[q];
          const float d = sample - center;
          const float w = wplane[q] * fast_exp_neg(d * d * inv2sr2);
          sum += w * sample;
          norm += w;
        }
      } else if (lut) {
#pragma omp simd reduction(+ : sum, norm)
        for (std::uint32_t q = 0; q < plane_sz; ++q) {
          const float sample = plane[q];
          const float w = wplane[q] * weights.range_lut(sample - center);
          sum += w * sample;
          norm += w;
        }
      } else {  // exact: same per-tap expressions as bilateral_voxel
        for (std::uint32_t q = 0; q < plane_sz; ++q) {
          const float sample = plane[q];
          const float w = wplane[q] * BilateralWeights::range(sample - center, inv2sr2);
          sum += w * sample;
          norm += w;
        }
      }
    }
    const core::Coord3D v{v0.i + t * di, v0.j + t * dj, v0.k + t * dk};
    dst.at(v.i, v.j, v.k) = sum / norm;
  }
  clamped_run(len - r, len);
  if (rs != nullptr) {
    detail::fold_gather_run_stats(*rs);
  }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Serial reference implementation (array-order input, xyz order); the
/// oracle the test suite checks every configuration against.
void bilateral_reference(const core::ArrayVolume& src, core::ArrayVolume& dst,
                         unsigned radius, float sigma_spatial, float sigma_range);

/// Builds the pencil-decomposed bilateral job. The job's closures
/// reference `src`/`dst`, which must outlive its run; the weights are
/// built here (decomposition/prep happens in the builder, not per tile).
template <core::VolumeBackend VolT>
[[nodiscard]] exec::KernelJob bilateral_job(const VolT& src, core::ArrayVolume& dst,
                                            const BilateralParams& params) {
  auto weights = std::make_shared<const BilateralWeights>(params);
  const std::size_t pencils = pencil_count(src.extents(), params.pencil);
  const VolT* src_p = &src;
  core::ArrayVolume* dst_p = &dst;
  if (params.use_gather) {
    return detail::make_state_job(
        "bilateral", pencils, dst.data(),
        [weights, params](unsigned) {
          BilateralGatherScratch scratch;
          scratch.prepare(*weights, params.pencil);
          return scratch;
        },
        [src_p, dst_p, weights, params](BilateralGatherScratch& scratch, std::size_t pencil,
                                        unsigned) {
          SFCVIS_TRACE_SPAN("bilateral.pencil", "gather", pencil);
          bilateral_pencil_gather(*src_p, *dst_p, *weights, params, pencil, scratch);
        },
        "bilateral.parallel", "gather");
  }
  // One read view per worker: out-of-core views carry per-worker brick
  // pins and must not be shared across threads (a PlainView is free).
  return detail::make_state_job(
      "bilateral", pencils, dst.data(),
      [src_p](unsigned) { return core::make_read_view(*src_p); },
      [dst_p, weights, params](const auto& view, std::size_t pencil, unsigned) {
        SFCVIS_TRACE_SPAN("bilateral.pencil", "exact", pencil);
        bilateral_pencil(view, *dst_p, *weights, params, pencil);
      },
      "bilateral.parallel", "exact");
}

/// Shared-memory parallel bilateral filter: pencils are statically
/// assigned to the context's workers (paper Sec. III-A). Works with any
/// source layout. With params.use_gather the pencils run the
/// sliding-window gather fast path on per-worker scratch sized once per
/// parallel region.
template <core::VolumeBackend VolT>
void bilateral_parallel(const VolT& src, core::ArrayVolume& dst,
                        const BilateralParams& params, exec::ExecutionContext& ctx) {
  detail::run_job(ctx, bilateral_job(src, dst, params));
}

/// Facade driver: dispatches on the source volume's runtime layout.
inline void bilateral_parallel(const core::AnyVolume& src, core::ArrayVolume& dst,
                               const BilateralParams& params, exec::ExecutionContext& ctx) {
  src.visit([&](const auto& grid) { bilateral_parallel(grid, dst, params, ctx); });
}

/// Facade job builder.
[[nodiscard]] inline exec::KernelJob bilateral_job(const core::AnyVolume& src,
                                                   core::ArrayVolume& dst,
                                                   const BilateralParams& params) {
  return src.visit([&](const auto& grid) { return bilateral_job(grid, dst, params); });
}

namespace detail {

/// Invokes fn(i, j, k) for every logical voxel of `e` whose padded-curve
/// index lies in [begin, end), in curve (storage) order. `cubic` selects
/// the branch-free magic-bits decode, valid whenever the padded curve is
/// plain Morton (all padded axes equal); otherwise the anisotropic table
/// curve decodes through `tables`.
template <class Fn>
void zsweep_range(const core::ZOrderTables& tables, const core::Extents3D& e,
                  bool cubic, std::size_t begin, std::size_t end, Fn&& fn) {
  if (cubic) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      const core::MortonCoord3D c = core::morton_decode_3d(idx);
      if (e.contains(c.x, c.y, c.z)) {
        fn(c.x, c.y, c.z);
      }
    }
    return;
  }
  for (std::size_t idx = begin; idx < end; ++idx) {
    const core::Coord3D c = tables.decode(idx);
    if (e.contains(c.i, c.j, c.k)) {
      fn(c.i, c.j, c.k);
    }
  }
}

}  // namespace detail

/// Curve-order sweep: processes voxels in Z-curve order instead of
/// pencils, partitioning the curve into `num_chunks` contiguous ranges
/// handed to threads round-robin. With a Z-order source layout the sweep
/// visits storage in monotonically increasing order — the traversal the
/// layout is optimal for. This is the "traversal matched to layout"
/// extension the paper's related work (Bader 2013) describes for matrix
/// codes; bench/abl_traversal quantifies it for the bilateral filter.
template <core::VolumeBackend VolT>
[[nodiscard]] exec::KernelJob bilateral_zsweep_job(const VolT& src, core::ArrayVolume& dst,
                                                   const BilateralParams& params,
                                                   const exec::ExecutionContext& ctx) {
  auto weights =
      std::make_shared<const BilateralWeights>(params.radius, params.sigma_spatial);
  const core::Extents3D e = src.extents();

  // Chunks are contiguous ranges of the *padded* curve index space, decoded
  // on the fly — the former materialized 12-byte/voxel order vector (1.6 GB
  // of peak RSS at 512^3) is gone; padded positions decode-and-skip. Each
  // work item is still a compact curve brick. The chunk decomposition is
  // the context's (curve_chunks scales by the padding ratio so the
  // *logical* voxels per chunk stays at roughly size / (threads *
  // chunks_per_thread) even when much of the padded curve is holes —
  // 48^3 pads to 64^3: 58% padding).
  auto tables = std::make_shared<const core::ZOrderTables>(e);
  const bool cubic = tables->padded().nx == tables->padded().ny &&
                     tables->padded().ny == tables->padded().nz;
  const std::size_t cap = tables->capacity();
  const std::size_t num_chunks = ctx.curve_chunks(e.size(), cap);
  const std::size_t chunk_len = (cap + num_chunks - 1) / num_chunks;
  const VolT* src_p = &src;
  core::ArrayVolume* dst_p = &dst;
  // One read view per worker: out-of-core views carry per-worker brick
  // pins and must not be shared across threads (a PlainView is free).
  return detail::make_state_job(
      "bilateral.zsweep", num_chunks, dst.data(),
      [src_p](unsigned) { return core::make_read_view(*src_p); },
      [dst_p, weights, tables, params, e, cubic, cap, chunk_len](
          const auto& view, std::size_t chunk, unsigned) {
        SFCVIS_TRACE_SPAN("bilateral.zsweep.chunk", nullptr, chunk);
        const std::size_t begin = chunk * chunk_len;
        const std::size_t end = std::min(cap, begin + chunk_len);
        detail::zsweep_range(*tables, e, cubic, std::min(begin, end), end,
                             [&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
                               dst_p->at(i, j, k) =
                                   bilateral_voxel(view, i, j, k, *weights,
                                                   params.sigma_range, params.order);
                             });
      },
      "bilateral.zsweep");
}

/// Curve-order sweep driver (see bilateral_zsweep_job for the chunking).
template <core::VolumeBackend VolT>
void bilateral_zsweep(const VolT& src, core::ArrayVolume& dst,
                      const BilateralParams& params, exec::ExecutionContext& ctx) {
  detail::run_job(ctx, bilateral_zsweep_job(src, dst, params, ctx));
}

/// Facade driver: dispatches on the source volume's runtime layout.
inline void bilateral_zsweep(const core::AnyVolume& src, core::ArrayVolume& dst,
                             const BilateralParams& params, exec::ExecutionContext& ctx) {
  src.visit([&](const auto& grid) { bilateral_zsweep(grid, dst, params, ctx); });
}

/// Facade job builder.
[[nodiscard]] inline exec::KernelJob bilateral_zsweep_job(const core::AnyVolume& src,
                                                          core::ArrayVolume& dst,
                                                          const BilateralParams& params,
                                                          const exec::ExecutionContext& ctx) {
  return src.visit(
      [&](const auto& grid) { return bilateral_zsweep_job(grid, dst, params, ctx); });
}

/// Counter-collection variant of the curve-order sweep. Runs as a serial
/// replay job (kSerial dispatch) on a private single-threaded graph; the
/// chunk-count formula matches exec::ExecutionContext::curve_chunks so
/// traced and untraced sweeps decompose identically for the same thread
/// count and chunks_per_thread (tests/test_jobs.cpp pins this).
template <core::VolumeBackend VolT, core::SinkProvider ProviderT>
void bilateral_zsweep_traced(const VolT& src, core::ArrayVolume& dst,
                             const BilateralParams& params, ProviderT& provider,
                             std::size_t max_items = SIZE_MAX,
                             std::size_t chunks_per_thread = 8) {
  auto weights =
      std::make_shared<const BilateralWeights>(params.radius, params.sigma_spatial);
  const core::Extents3D e = src.extents();
  // Same padded-curve chunking as bilateral_zsweep (chunk ranges are
  // layout-independent, so capped replays compare identical voxel sets
  // across layouts), decoded on the fly — no materialized order vector.
  auto tables = std::make_shared<const core::ZOrderTables>(e);
  const bool cubic = tables->padded().nx == tables->padded().ny &&
                     tables->padded().ny == tables->padded().nz;
  const std::size_t cap = tables->capacity();
  const unsigned num_threads = provider.num_threads();
  const std::size_t num_chunks = std::max<std::size_t>(
      1, num_threads * chunks_per_thread * cap / std::max<std::size_t>(1, e.size()));
  const std::size_t chunk_len = (cap + num_chunks - 1) / num_chunks;
  const threads::StaticRoundRobin rr(num_chunks, num_threads);
  auto order = std::make_shared<const std::vector<threads::Assignment>>(rr.replay_order());
  using Sink = decltype(provider.sink(0u));
  auto sinks = std::make_shared<std::vector<Sink>>();
  sinks->reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    sinks->push_back(provider.sink(t));
  }
  const VolT* src_p = &src;
  core::ArrayVolume* dst_p = &dst;
  exec::KernelJob job;
  job.kernel = "bilateral.zsweep.traced";
  job.dispatch = exec::JobDispatch::kSerial;
  job.tiles = std::min(max_items, order->size());
  job.output = dst.data();
  job.span_name = "bilateral.zsweep.traced";
  job.tile = [src_p, dst_p, weights, tables, params, e, cubic, cap, chunk_len, order,
              sinks](void*, std::size_t t, unsigned) {
    const auto& assignment = (*order)[t];
    const auto view = core::make_traced_view(*src_p, (*sinks)[assignment.tid]);
    const std::size_t begin = assignment.item * chunk_len;
    const std::size_t end = std::min(cap, begin + chunk_len);
    detail::zsweep_range(*tables, e, cubic, std::min(begin, end), end,
                         [&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
                           dst_p->at(i, j, k) = bilateral_voxel(
                               view, i, j, k, *weights, params.sigma_range, params.order);
                         });
  };
  exec::ExecutionContext replay_ctx = detail::make_replay_context();
  detail::run_job(replay_ctx, std::move(job));
}

/// Counter-collection variant: replays the exact access stream that
/// `num_threads` round-robin threads would produce through the modeled
/// hierarchy (single real thread; deterministic).
///
/// `max_items` caps the replay at a prefix of the schedule: the benches use
/// it to bound simulation cost on large volumes. Both layouts replay the
/// identical voxel set, so the scaled relative difference stays well
/// defined (see DESIGN.md Sec. 4).
template <core::VolumeBackend VolT, core::SinkProvider ProviderT>
void bilateral_traced(const VolT& src, core::ArrayVolume& dst,
                      const BilateralParams& params, ProviderT& provider,
                      std::size_t max_items = SIZE_MAX) {
  auto weights =
      std::make_shared<const BilateralWeights>(params.radius, params.sigma_spatial);
  const std::size_t pencils = pencil_count(src.extents(), params.pencil);
  const unsigned num_threads = provider.num_threads();
  const threads::StaticRoundRobin rr(pencils, num_threads);
  auto order = std::make_shared<const std::vector<threads::Assignment>>(rr.replay_order());
  using Sink = decltype(provider.sink(0u));
  auto sinks = std::make_shared<std::vector<Sink>>();
  sinks->reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    sinks->push_back(provider.sink(t));
  }
  const VolT* src_p = &src;
  core::ArrayVolume* dst_p = &dst;
  exec::KernelJob job;
  job.kernel = "bilateral.traced";
  job.dispatch = exec::JobDispatch::kSerial;
  job.tiles = std::min(max_items, order->size());
  job.output = dst.data();
  job.span_name = "bilateral.traced";
  job.tile = [src_p, dst_p, weights, params, order, sinks](void*, std::size_t t,
                                                           unsigned) {
    const auto& assignment = (*order)[t];
    const auto view = core::make_traced_view(*src_p, (*sinks)[assignment.tid]);
    bilateral_pencil(view, *dst_p, *weights, params, assignment.item);
  };
  exec::ExecutionContext replay_ctx = detail::make_replay_context();
  detail::run_job(replay_ctx, std::move(job));
}

/// Facade drivers for the traced variants (replay stays single-threaded
/// and deterministic; any SinkProvider — memsim::Hierarchy for modeled
/// counters, locality::LocalityProfiler for reuse distances — plugs in).
template <core::SinkProvider ProviderT>
void bilateral_traced(const core::AnyVolume& src, core::ArrayVolume& dst,
                      const BilateralParams& params, ProviderT& provider,
                      std::size_t max_items = SIZE_MAX) {
  src.visit([&](const auto& grid) {
    bilateral_traced(grid, dst, params, provider, max_items);
  });
}

template <core::SinkProvider ProviderT>
void bilateral_zsweep_traced(const core::AnyVolume& src, core::ArrayVolume& dst,
                             const BilateralParams& params, ProviderT& provider,
                             std::size_t max_items = SIZE_MAX,
                             std::size_t chunks_per_thread = 8) {
  src.visit([&](const auto& grid) {
    bilateral_zsweep_traced(grid, dst, params, provider, max_items, chunks_per_thread);
  });
}

}  // namespace sfcvis::filters
