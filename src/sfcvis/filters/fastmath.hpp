// Vectorizable transcendental approximations for the filter fast paths.
//
// The bilateral filter's photometric term costs one exp per stencil tap; a
// scalar std::exp call there defeats SIMD and dominates the tap loop. The
// approximation below is branch-free, uses only +,*,float<->int moves, and
// rounds via the float magic-number trick, so compilers vectorize it inside
// `#pragma omp simd` loops at any SIMD baseline (no SSE4.1 rounding insn
// needed). Accuracy is driven by the gather fast path's contract: filter
// output within 1e-5 of the exact kernel (tests/test_bilateral_gather.cpp
// pins both the <1e-6 relative error here and the end-to-end bound).
#pragma once

#include <bit>
#include <cstdint>

namespace sfcvis::filters {

/// exp(-u) for u >= 0. Relative error < ~2e-6 for u < 8 (where bilateral
/// weights are non-negligible), growing like u * 2^-24 beyond that from
/// single-precision argument reduction (~7e-6 at u ~ 80); inputs
/// beyond the underflow knee (-u * log2 e < -125) clamp to 2^-125 * p
/// (~1e-38) instead of producing denormals. Do not pass negative or NaN u.
[[nodiscard]] inline float fast_exp_neg(float u) noexcept {
  constexpr float kLog2e = 1.44269504088896341f;
  constexpr float kLn2 = 0.69314718055994531f;
  constexpr float kRoundMagic = 12582912.0f;  // 1.5 * 2^23: adds round-to-nearest
  float t = -u * kLog2e;
  t = t < -125.0f ? -125.0f : t;
  const float n = (t + kRoundMagic) - kRoundMagic;  // nearest integer to t
  const float g = (t - n) * kLn2;                   // |g| <= ln2 / 2
  // exp(g) on [-ln2/2, ln2/2]: degree-6 Taylor, truncation < 1.3e-7 rel.
  float p = 1.0f / 720.0f;
  p = p * g + 1.0f / 120.0f;
  p = p * g + 1.0f / 24.0f;
  p = p * g + 1.0f / 6.0f;
  p = p * g + 0.5f;
  p = p * g + 1.0f;
  p = p * g + 1.0f;
  // 2^n by exponent-field construction; n is in [-125, 0] after the clamp.
  const auto ni = static_cast<std::int32_t>(n);
  const float scale = std::bit_cast<float>(static_cast<std::uint32_t>(ni + 127) << 23);
  return p * scale;
}

}  // namespace sfcvis::filters
