#include "sfcvis/filters/bilateral.hpp"

#include <cmath>

namespace sfcvis::filters {

BilateralWeights::BilateralWeights(unsigned radius, float sigma_spatial)
    : radius_(radius) {
  const int r = static_cast<int>(radius);
  const std::size_t width = 2 * static_cast<std::size_t>(radius) + 1;
  table_.resize(width * width * width);
  const float inv2ss2 = 1.0f / (2.0f * sigma_spatial * sigma_spatial);
  std::size_t n = 0;
  for (int dz = -r; dz <= r; ++dz) {
    for (int dy = -r; dy <= r; ++dy) {
      for (int dx = -r; dx <= r; ++dx) {
        const auto d2 = static_cast<float>(dx * dx + dy * dy + dz * dz);
        table_[n++] = std::exp(-d2 * inv2ss2);
      }
    }
  }
}

BilateralWeights::BilateralWeights(const BilateralParams& params)
    : BilateralWeights(params.radius, params.sigma_spatial) {
  if (params.use_range_lut) {
    build_range_lut(params.sigma_range);
  }
}

void BilateralWeights::build_range_lut(float sigma_range, unsigned bins) {
  const float inv2sr2 = 1.0f / (2.0f * sigma_range * sigma_range);
  range_lut_.resize(bins + 2);
  for (unsigned b = 0; b <= bins; ++b) {
    const float u = kRangeLutMaxU * static_cast<float>(b) / static_cast<float>(bins);
    range_lut_[b] = std::exp(-u);
  }
  range_lut_[bins + 1] = range_lut_[bins];  // pad so clamped x = bins interpolates
  lut_u_scale_ = inv2sr2 * static_cast<float>(bins) / kRangeLutMaxU;
  lut_max_x_ = static_cast<float>(bins);
}

void BilateralGatherScratch::prepare(const BilateralWeights& weights, PencilAxis pencil) {
  const int r = static_cast<int>(weights.radius());
  width = 2 * weights.radius() + 1;
  plane_size = width * width;
  axis = pencil;
  // Latch the tracing flag once per parallel region: the per-gather check
  // stays a cached bool and untraced runs take the nullptr path.
  collect_run_stats = trace::span_tracing_enabled();
  run_stats = core::GatherRunStats{};
  ring.resize(static_cast<std::size_t>(width) * plane_size);
  wperm.resize(static_cast<std::size_t>(width) * plane_size);
  // [dp][du][dv] -> (dx, dy, dz): dp walks the pencil axis, dv the plane's
  // contiguous row axis (z for x-pencils, x otherwise), du the remaining
  // axis — matching the row orientation bilateral_pencil_gather gathers.
  std::size_t n = 0;
  for (int dp = -r; dp <= r; ++dp) {
    for (int du = -r; du <= r; ++du) {
      for (int dv = -r; dv <= r; ++dv) {
        int dx = 0, dy = 0, dz = 0;
        switch (pencil) {
          case PencilAxis::kX: dx = dp; dy = du; dz = dv; break;
          case PencilAxis::kY: dx = dv; dy = dp; dz = du; break;
          case PencilAxis::kZ: dx = dv; dy = du; dz = dp; break;
        }
        wperm[n++] = weights.spatial(dx, dy, dz);
      }
    }
  }
}

std::size_t pencil_count(const core::Extents3D& e, PencilAxis axis) noexcept {
  switch (axis) {
    case PencilAxis::kX:
      return static_cast<std::size_t>(e.ny) * e.nz;
    case PencilAxis::kY:
      return static_cast<std::size_t>(e.nx) * e.nz;
    case PencilAxis::kZ:
      return static_cast<std::size_t>(e.nx) * e.ny;
  }
  return 0;
}

std::uint32_t pencil_length(const core::Extents3D& e, PencilAxis axis) noexcept {
  switch (axis) {
    case PencilAxis::kX:
      return e.nx;
    case PencilAxis::kY:
      return e.ny;
    case PencilAxis::kZ:
      return e.nz;
  }
  return 0;
}

PencilCoords pencil_coords(const core::Extents3D& e, PencilAxis axis,
                           std::size_t pencil) noexcept {
  PencilCoords pc;
  switch (axis) {
    case PencilAxis::kX:  // fixed (j, k)
      pc.a = static_cast<std::uint32_t>(pencil % e.ny);
      pc.b = static_cast<std::uint32_t>(pencil / e.ny);
      break;
    case PencilAxis::kY:  // fixed (i, k)
      pc.a = static_cast<std::uint32_t>(pencil % e.nx);
      pc.b = static_cast<std::uint32_t>(pencil / e.nx);
      break;
    case PencilAxis::kZ:  // fixed (i, j)
      pc.a = static_cast<std::uint32_t>(pencil % e.nx);
      pc.b = static_cast<std::uint32_t>(pencil / e.nx);
      break;
  }
  return pc;
}

core::Coord3D pencil_voxel(PencilAxis axis, PencilCoords pc, std::uint32_t t) noexcept {
  switch (axis) {
    case PencilAxis::kX:
      return core::Coord3D{t, pc.a, pc.b};
    case PencilAxis::kY:
      return core::Coord3D{pc.a, t, pc.b};
    case PencilAxis::kZ:
      return core::Coord3D{pc.a, pc.b, t};
  }
  return {};
}

void bilateral_reference(const core::ArrayVolume& src,
                         core::ArrayVolume& dst,
                         unsigned radius, float sigma_spatial, float sigma_range) {
  // Straight-line transcription of Eqs. 1-3; no pencils, no loop-order
  // options, no views — deliberately boring so it can serve as the oracle.
  const auto& e = src.extents();
  const int r = static_cast<int>(radius);
  const float inv2ss2 = 1.0f / (2.0f * sigma_spatial * sigma_spatial);
  const float inv2sr2 = 1.0f / (2.0f * sigma_range * sigma_range);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        const float center = src.at(i, j, k);
        float sum = 0.0f, norm = 0.0f;
        for (int dz = -r; dz <= r; ++dz) {
          for (int dy = -r; dy <= r; ++dy) {
            for (int dx = -r; dx <= r; ++dx) {
              const float sample = src.at_clamped(static_cast<std::int64_t>(i) + dx,
                                                  static_cast<std::int64_t>(j) + dy,
                                                  static_cast<std::int64_t>(k) + dz);
              const auto d2 = static_cast<float>(dx * dx + dy * dy + dz * dz);
              const float diff = sample - center;
              const float w = std::exp(-d2 * inv2ss2) * std::exp(-diff * diff * inv2sr2);
              sum += w * sample;
              norm += w;
            }
          }
        }
        dst.at(i, j, k) = sum / norm;
      }
    }
  }
}

}  // namespace sfcvis::filters
