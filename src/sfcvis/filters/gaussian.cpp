#include "sfcvis/filters/gaussian.hpp"

#include <cmath>

namespace sfcvis::filters {

std::vector<float> gaussian_kernel_1d(unsigned radius, float sigma) {
  std::vector<float> taps(2 * static_cast<std::size_t>(radius) + 1);
  const float inv2s2 = 1.0f / (2.0f * sigma * sigma);
  float norm = 0.0f;
  for (std::size_t n = 0; n < taps.size(); ++n) {
    const auto d = static_cast<float>(static_cast<int>(n) - static_cast<int>(radius));
    taps[n] = std::exp(-d * d * inv2s2);
    norm += taps[n];
  }
  for (auto& t : taps) {
    t /= norm;
  }
  return taps;
}

void gaussian_separable(const core::ArrayVolume& src,
                        core::ArrayVolume& dst, unsigned radius,
                        float sigma) {
  const auto taps = gaussian_kernel_1d(radius, sigma);
  const int r = static_cast<int>(radius);
  const auto& e = src.extents();
  core::ArrayVolume tmp1(e), tmp2(e);

  auto pass = [&](const auto& in, auto& out, int axis) {
    for (std::uint32_t k = 0; k < e.nz; ++k) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          float sum = 0.0f;
          for (int d = -r; d <= r; ++d) {
            sum += taps[static_cast<std::size_t>(d + r)] *
                   in.at_clamped(static_cast<std::int64_t>(i) + (axis == 0 ? d : 0),
                                 static_cast<std::int64_t>(j) + (axis == 1 ? d : 0),
                                 static_cast<std::int64_t>(k) + (axis == 2 ? d : 0));
          }
          out.at(i, j, k) = sum;
        }
      }
    }
  };
  pass(src, tmp1, 0);
  pass(tmp1, tmp2, 1);
  pass(tmp2, dst, 2);
}

}  // namespace sfcvis::filters
