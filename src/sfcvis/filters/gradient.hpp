// Central-difference gradient and gradient magnitude — the smallest
// structured-access kernel in the toolbox (6 reads per voxel) and the
// building block the renderer's gradient shading reuses.
#pragma once

#include <array>
#include <cmath>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/traced_view.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/kernels_common.hpp"

namespace sfcvis::filters {

/// Central-difference gradient at (i, j, k); borders clamp, so boundary
/// gradients degrade to one-sided differences scaled by 1/2.
template <core::ReadView3D View>
[[nodiscard]] std::array<float, 3> gradient_voxel(const View& src, std::uint32_t i,
                                                  std::uint32_t j, std::uint32_t k) {
  const auto si = static_cast<std::int64_t>(i);
  const auto sj = static_cast<std::int64_t>(j);
  const auto sk = static_cast<std::int64_t>(k);
  return {0.5f * (src.at_clamped(si + 1, sj, sk) - src.at_clamped(si - 1, sj, sk)),
          0.5f * (src.at_clamped(si, sj + 1, sk) - src.at_clamped(si, sj - 1, sk)),
          0.5f * (src.at_clamped(si, sj, sk + 1) - src.at_clamped(si, sj, sk - 1))};
}

/// Builds the gradient-magnitude job (x-pencil decomposition). The job's
/// closures reference `src`/`dst`, which must outlive its run.
template <core::VolumeBackend VolT>
[[nodiscard]] exec::KernelJob gradient_job(const VolT& src, core::ArrayVolume& dst) {
  const core::Extents3D e = src.extents();
  const std::size_t pencils = static_cast<std::size_t>(e.ny) * e.nz;
  const VolT* src_p = &src;
  core::ArrayVolume* dst_p = &dst;
  // One read view per worker: out-of-core views carry per-worker brick
  // pins and must not be shared across threads (a PlainView is free).
  return detail::make_state_job(
      "gradient", pencils, dst.data(),
      [src_p](unsigned) { return core::make_read_view(*src_p); },
      [dst_p, e](const auto& view, std::size_t p, unsigned) {
        const auto j = static_cast<std::uint32_t>(p % e.ny);
        const auto k = static_cast<std::uint32_t>(p / e.ny);
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          const auto g = gradient_voxel(view, i, j, k);
          dst_p->at(i, j, k) = std::sqrt(g[0] * g[0] + g[1] * g[1] + g[2] * g[2]);
        }
      },
      "gradient.parallel");
}

/// Parallel gradient-magnitude field over x-pencils.
template <core::VolumeBackend VolT>
void gradient_magnitude(const VolT& src, core::ArrayVolume& dst,
                        exec::ExecutionContext& ctx) {
  detail::run_job(ctx, gradient_job(src, dst));
}

/// Facade driver: dispatches on the source volume's runtime layout.
inline void gradient_magnitude(const core::AnyVolume& src, core::ArrayVolume& dst,
                               exec::ExecutionContext& ctx) {
  src.visit([&](const auto& grid) { gradient_magnitude(grid, dst, ctx); });
}

/// Facade job builder.
[[nodiscard]] inline exec::KernelJob gradient_job(const core::AnyVolume& src,
                                                  core::ArrayVolume& dst) {
  return src.visit([&](const auto& grid) { return gradient_job(grid, dst); });
}

}  // namespace sfcvis::filters
