// 2D bilateral filter — the original Tomasi & Manduchi (1998) formulation
// the paper's 3D filter extends. Included so the layout study can be run
// on images, and used by the denoise_image example.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "sfcvis/core/grid2d.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/kernels_common.hpp"

namespace sfcvis::filters {

/// 2D bilateral parameters; stencil is (2*radius+1)^2.
struct Bilateral2DParams {
  unsigned radius = 2;
  float sigma_spatial = 1.5f;
  float sigma_range = 0.1f;
  /// Row assignment: rows along x handed to threads round-robin ("px"),
  /// or columns along y ("py") — the 2D analogue of the pencil choice.
  PencilAxis pencil = PencilAxis::kX;
};

/// Filters a single pixel (clamp borders).
template <class T, core::Layout2D L>
[[nodiscard]] float bilateral2d_pixel(const core::Grid2D<T, L>& src, std::uint32_t i,
                                      std::uint32_t j, const Bilateral2DParams& params) {
  const int r = static_cast<int>(params.radius);
  const float inv2ss2 = 1.0f / (2.0f * params.sigma_spatial * params.sigma_spatial);
  const float inv2sr2 = 1.0f / (2.0f * params.sigma_range * params.sigma_range);
  const float center = src.at(i, j);
  float sum = 0.0f, norm = 0.0f;
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      const float sample = src.at_clamped(static_cast<std::int64_t>(i) + dx,
                                          static_cast<std::int64_t>(j) + dy);
      const auto d2 = static_cast<float>(dx * dx + dy * dy);
      const float diff = sample - center;
      const float w = std::exp(-d2 * inv2ss2) * std::exp(-diff * diff * inv2sr2);
      sum += w * sample;
      norm += w;
    }
  }
  return sum / norm;
}

/// Builds the 2D bilateral job (row/column decomposition per
/// params.pencil). The job's closures reference `src`/`dst`, which must
/// outlive its run.
template <core::Layout2D L>
[[nodiscard]] exec::KernelJob bilateral2d_job(
    const core::Grid2D<float, L>& src, core::Grid2D<float, core::ArrayOrderLayout2D>& dst,
    const Bilateral2DParams& params) {
  const auto e = src.extents();
  const core::Grid2D<float, L>* src_p = &src;
  auto* dst_p = &dst;
  if (params.pencil == PencilAxis::kX) {
    return detail::make_job(
        "bilateral2d", exec::JobDispatch::kStatic, e.ny, dst.data(),
        [src_p, dst_p, params, e](std::size_t j, unsigned) {
          for (std::uint32_t i = 0; i < e.nx; ++i) {
            dst_p->at(i, static_cast<std::uint32_t>(j)) =
                bilateral2d_pixel(*src_p, i, static_cast<std::uint32_t>(j), params);
          }
        },
        "bilateral2d.parallel", "px");
  }
  return detail::make_job(
      "bilateral2d", exec::JobDispatch::kStatic, e.nx, dst.data(),
      [src_p, dst_p, params, e](std::size_t i, unsigned) {
        for (std::uint32_t j = 0; j < e.ny; ++j) {
          dst_p->at(static_cast<std::uint32_t>(i), j) =
              bilateral2d_pixel(*src_p, static_cast<std::uint32_t>(i), j, params);
        }
      },
      "bilateral2d.parallel", "py");
}

/// Shared-memory parallel 2D bilateral filter; output is array-order.
template <core::Layout2D L>
void bilateral2d_parallel(const core::Grid2D<float, L>& src,
                          core::Grid2D<float, core::ArrayOrderLayout2D>& dst,
                          const Bilateral2DParams& params, exec::ExecutionContext& ctx) {
  detail::run_job(ctx, bilateral2d_job(src, dst, params));
}

}  // namespace sfcvis::filters
