// Multi-level, multi-thread cache-hierarchy model.
//
// Each simulated thread owns private copies of the per-core levels (L1, L2);
// an optional last-level cache is shared by all threads. Access streams are
// replayed deterministically (the schedulers in sfcvis/threads interleave
// work items round-robin), so counter values are exactly reproducible — an
// improvement over hardware PAPI counts for regression purposes.
//
// Named counters follow the paper's two metrics:
//   "PAPI_L3_TCA"                 — total accesses arriving at the shared
//                                   LLC (= private-hierarchy misses);
//                                   meaningful only when an LLC exists.
//   "L2_DATA_READ_MISS_MEM_FILL"  — L2 misses filled from memory; on the
//                                   MIC model (no L3) every L2 miss goes to
//                                   memory, matching the paper's usage.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sfcvis/memsim/cache.hpp"

namespace sfcvis::memsim {

/// Full description of a platform's memory system.
struct PlatformSpec {
  std::string name;                         ///< e.g. "ivybridge"
  std::vector<CacheConfig> private_levels;  ///< per-thread, nearest first
  std::optional<CacheConfig> shared_llc;    ///< shared last-level cache
  std::uint32_t memory_latency = 200;       ///< cycles for a fill from DRAM
  /// Adjacent-line prefetcher model: on a miss in the last private level,
  /// also install the next line there. Off by default — the paper's
  /// platforms have stream prefetchers, but the study measures demand
  /// locality; bench/abl_prefetch quantifies how much a next-line
  /// prefetcher narrows the array-order gap.
  bool prefetch_next_line = false;
  /// Per-core data-TLB model (fully associative, LRU). 0 disables. The
  /// paper's own example of the array-order problem — A[i,j] and A[i,j+1]
  /// lying 4 KB apart — is a TLB-reach problem as much as a cache one:
  /// against-the-grain sweeps touch a new page almost every access.
  std::uint32_t tlb_entries = 0;
  std::uint32_t page_bytes = 4096;
  std::uint32_t tlb_miss_latency = 30;  ///< page-walk cycles added on a miss
};

/// Aggregated per-level statistics across all simulated threads.
struct LevelStats {
  std::string name;
  CacheStats stats;
};

class Hierarchy;

/// Binds (hierarchy, thread id) into an AccessSink for core::TracedView.
class ThreadSink {
 public:
  ThreadSink(Hierarchy& hierarchy, unsigned tid) : hierarchy_(&hierarchy), tid_(tid) {}
  inline void access(std::uint64_t addr, std::uint32_t bytes);
  [[nodiscard]] unsigned tid() const noexcept { return tid_; }

 private:
  Hierarchy* hierarchy_;
  unsigned tid_;
};

/// The modeled memory system for `num_threads` simulated threads.
class Hierarchy {
 public:
  /// Builds the private stacks plus the shared LLC (if any).
  ///
  /// `threads_per_core` models SMT: that many consecutive thread ids share
  /// one private-stack instance (one core's L1/L2). The paper's MIC runs
  /// place up to 4 hardware threads per core, and its Fig. 6 discussion
  /// attributes the drop in L2_DATA_READ_MISS at higher concurrency to
  /// exactly this sharing.
  Hierarchy(const PlatformSpec& spec, unsigned num_threads, unsigned threads_per_core = 1);

  /// Replays one data access of `bytes` bytes at byte address `addr` issued
  /// by simulated thread `tid`. Straddling accesses touch every covered
  /// line.
  void access(unsigned tid, std::uint64_t addr, std::uint32_t bytes) noexcept;

  /// Sink for core::TracedView bound to one simulated thread.
  [[nodiscard]] ThreadSink sink(unsigned tid) noexcept { return ThreadSink(*this, tid); }

  /// Named counter lookup (see file comment). Throws std::out_of_range for
  /// unknown names so misspelled metrics fail loudly in benches.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  /// Total accesses that fell through every modeled level to memory.
  [[nodiscard]] std::uint64_t memory_fills() const noexcept { return memory_fills_; }

  /// Aggregate dTLB statistics across cores (zeros when the model is off).
  [[nodiscard]] CacheStats tlb_stats() const noexcept;

  /// Total accesses replayed (across threads, before line splitting).
  [[nodiscard]] std::uint64_t total_accesses() const noexcept { return total_accesses_; }

  /// Modeled memory-stall cycles of one simulated thread: the sum of hit
  /// latencies down to the level that served each access (memory_latency
  /// for fills from DRAM). A simple in-order cost model — not a timing
  /// simulator — whose purpose is to expose the memory-bound runtime
  /// *shape* the paper measured at 512^3, which compute-bound native runs
  /// at container-scale volumes cannot show (DESIGN.md Sec. 4).
  [[nodiscard]] std::uint64_t modeled_cycles(unsigned tid) const noexcept {
    return cycles_[tid];
  }

  /// Modeled parallel makespan: the maximum per-thread cycle count.
  [[nodiscard]] std::uint64_t modeled_cycles_max() const noexcept;

  /// Modeled total work: the sum of per-thread cycle counts.
  [[nodiscard]] std::uint64_t modeled_cycles_total() const noexcept;

  /// Per-level stats, private levels aggregated over threads, LLC last.
  [[nodiscard]] std::vector<LevelStats> level_stats() const;

  /// Invalidates all modeled caches and zeroes all counters.
  void reset() noexcept;

  /// Zeroes counters, keeping cache contents warm.
  void reset_stats() noexcept;

  [[nodiscard]] const PlatformSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] unsigned num_threads() const noexcept { return num_threads_; }
  [[nodiscard]] unsigned num_cores() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

 private:
  PlatformSpec spec_;
  unsigned num_threads_ = 0;
  unsigned threads_per_core_ = 1;
  unsigned line_shift_ = 6;
  std::uint32_t line_bytes_ = 64;
  // threads_[c] holds the private levels of core c; thread t uses core
  // t / threads_per_core_.
  std::vector<std::vector<Cache>> threads_;
  std::vector<Cache> tlbs_;  ///< per-core dTLB models (empty when disabled)
  unsigned page_shift_ = 12;
  std::optional<Cache> llc_;
  std::vector<std::uint64_t> cycles_;  ///< per-thread modeled stall cycles
  std::uint64_t memory_fills_ = 0;
  std::uint64_t total_accesses_ = 0;
};

inline void ThreadSink::access(std::uint64_t addr, std::uint32_t bytes) {
  hierarchy_->access(tid_, addr, bytes);
}

}  // namespace sfcvis::memsim
