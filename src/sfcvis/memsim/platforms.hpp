// The two memory systems of the paper's test platforms (Sec. IV-A), plus a
// tiny teaching configuration for unit tests and quick demos.
#pragma once

#include "sfcvis/memsim/hierarchy.hpp"

namespace sfcvis::memsim {

/// edison.nersc.gov node model: Intel Ivy Bridge. Per-core 64 KB L1 and
/// 256 KB L2 (capacities as stated in the paper), 30 MB shared L3,
/// 64-byte lines.
[[nodiscard]] PlatformSpec ivybridge();

/// babbage.nersc.gov accelerator model: Intel MIC / Knights Corner 5110P.
/// Per-core 32 KB L1 and 512 KB L2, no L3, 64-byte lines — the two-level
/// hierarchy the paper calls out when explaining the MIC counter choice.
[[nodiscard]] PlatformSpec mic_knc();

/// Deliberately tiny two-level hierarchy (1 KB L1 / 4 KB L2 / 16 KB LLC)
/// so unit tests can provoke capacity behaviour with small footprints.
[[nodiscard]] PlatformSpec tiny_test_platform();

/// Looks a spec up by name ("ivybridge", "mic", "tiny"); throws
/// std::invalid_argument for unknown names.
[[nodiscard]] PlatformSpec platform_by_name(std::string_view name);

/// Divides every cache capacity by `divisor` (a power of two), preserving
/// line size and associativity — i.e. the set counts shrink. The benches
/// use this to keep the paper's hierarchy *shape* while matching the
/// cache:working-set ratio of the paper's 512^3 runs at container-friendly
/// volume sizes (see DESIGN.md Sec. 4). Levels that would drop below one
/// set are clamped to one set. Throws on non-power-of-two divisors.
[[nodiscard]] PlatformSpec scaled(PlatformSpec spec, std::uint32_t divisor);

}  // namespace sfcvis::memsim
