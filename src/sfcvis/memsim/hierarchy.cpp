#include "sfcvis/memsim/hierarchy.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace sfcvis::memsim {

Hierarchy::Hierarchy(const PlatformSpec& spec, unsigned num_threads,
                     unsigned threads_per_core)
    : spec_(spec), num_threads_(num_threads), threads_per_core_(threads_per_core) {
  if (num_threads == 0) {
    throw std::invalid_argument("Hierarchy: num_threads must be nonzero");
  }
  if (threads_per_core == 0) {
    throw std::invalid_argument("Hierarchy: threads_per_core must be nonzero");
  }
  if (spec.private_levels.empty() && !spec.shared_llc) {
    throw std::invalid_argument("Hierarchy: at least one cache level is required");
  }
  // All levels must agree on the line size; mixed-line hierarchies are not
  // modeled (neither paper platform needs them).
  line_bytes_ = spec.private_levels.empty() ? spec.shared_llc->line_bytes
                                            : spec.private_levels.front().line_bytes;
  for (const auto& level : spec.private_levels) {
    if (level.line_bytes != line_bytes_) {
      throw std::invalid_argument("Hierarchy: all levels must share one line size");
    }
  }
  if (spec.shared_llc && spec.shared_llc->line_bytes != line_bytes_) {
    throw std::invalid_argument("Hierarchy: all levels must share one line size");
  }
  line_shift_ = static_cast<unsigned>(std::bit_width(line_bytes_) - 1);

  const unsigned num_cores = (num_threads + threads_per_core - 1) / threads_per_core;
  threads_.reserve(num_cores);
  for (unsigned t = 0; t < num_cores; ++t) {
    std::vector<Cache> stack;
    stack.reserve(spec.private_levels.size());
    for (const auto& level : spec.private_levels) {
      stack.emplace_back(level);
    }
    threads_.push_back(std::move(stack));
  }
  if (spec.shared_llc) {
    llc_.emplace(*spec.shared_llc);
  }
  if (spec.tlb_entries > 0) {
    if (!std::has_single_bit(spec.page_bytes)) {
      throw std::invalid_argument("Hierarchy: page_bytes must be a power of two");
    }
    page_shift_ = static_cast<unsigned>(std::bit_width(spec.page_bytes) - 1);
    // A TLB is a fully associative cache over page numbers: one set,
    // tlb_entries ways, "line size" = one page.
    const CacheConfig tlb_config{"dTLB",
                                 static_cast<std::uint64_t>(spec.page_bytes) * spec.tlb_entries,
                                 spec.page_bytes, spec.tlb_entries, 0};
    tlbs_.reserve(num_cores);
    for (unsigned c = 0; c < num_cores; ++c) {
      tlbs_.emplace_back(tlb_config);
    }
  }
  cycles_.assign(num_threads, 0);
}

CacheStats Hierarchy::tlb_stats() const noexcept {
  CacheStats agg;
  for (const auto& tlb : tlbs_) {
    agg.accesses += tlb.stats().accesses;
    agg.misses += tlb.stats().misses;
  }
  return agg;
}

void Hierarchy::access(unsigned tid, std::uint64_t addr, std::uint32_t bytes) noexcept {
  ++total_accesses_;
  const std::uint64_t first_line = addr >> line_shift_;
  const std::uint64_t last_line = (addr + (bytes == 0 ? 0 : bytes - 1)) >> line_shift_;
  const unsigned core = tid / threads_per_core_;
  auto& stack = threads_[core];
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    bool hit = false;
    std::uint64_t latency = 0;
    if (!tlbs_.empty() &&
        !tlbs_[core].access(line >> (page_shift_ - line_shift_))) {
      latency += spec_.tlb_miss_latency;
    }
    for (auto& level : stack) {
      latency += level.config().hit_latency;
      if (level.access(line)) {
        hit = true;
        break;
      }
    }
    if (!hit && spec_.prefetch_next_line && !stack.empty()) {
      stack.back().install(line + 1);
    }
    if (!hit && llc_) {
      latency += llc_->config().hit_latency;
      hit = llc_->access(line);
    }
    if (!hit) {
      latency += spec_.memory_latency;
      ++memory_fills_;
    }
    cycles_[tid] += latency;
  }
}

std::uint64_t Hierarchy::modeled_cycles_max() const noexcept {
  std::uint64_t best = 0;
  for (const auto c : cycles_) {
    best = std::max(best, c);
  }
  return best;
}

std::uint64_t Hierarchy::modeled_cycles_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto c : cycles_) {
    total += c;
  }
  return total;
}

std::uint64_t Hierarchy::counter(std::string_view name) const {
  if (name == "PAPI_L3_TCA") {
    if (!llc_) {
      throw std::out_of_range("PAPI_L3_TCA requested on a platform without an L3");
    }
    return llc_->stats().accesses;
  }
  if (name == "L2_DATA_READ_MISS_MEM_FILL") {
    // Misses of the last *private* level that had to be filled from beyond
    // it. Without an LLC this equals memory_fills(); with one it is the
    // LLC's access count — both reflect "reads escaping the private stack".
    if (threads_.front().empty()) {
      throw std::out_of_range("L2_DATA_READ_MISS_MEM_FILL requires private levels");
    }
    std::uint64_t total = 0;
    for (const auto& stack : threads_) {
      total += stack.back().stats().misses;
    }
    return total;
  }
  if (name == "MEM_FILLS") {
    return memory_fills_;
  }
  if (name == "DTLB_MISS") {
    if (tlbs_.empty()) {
      throw std::out_of_range("DTLB_MISS requested but the TLB model is disabled");
    }
    return tlb_stats().misses;
  }
  throw std::out_of_range("unknown memsim counter: " + std::string(name));
}

std::vector<LevelStats> Hierarchy::level_stats() const {
  std::vector<LevelStats> out;
  const std::size_t levels = threads_.front().size();
  for (std::size_t l = 0; l < levels; ++l) {
    LevelStats agg;
    agg.name = threads_.front()[l].config().name;
    for (const auto& stack : threads_) {
      agg.stats.accesses += stack[l].stats().accesses;
      agg.stats.misses += stack[l].stats().misses;
    }
    out.push_back(std::move(agg));
  }
  if (llc_) {
    out.push_back(LevelStats{llc_->config().name, llc_->stats()});
  }
  return out;
}

void Hierarchy::reset() noexcept {
  for (auto& stack : threads_) {
    for (auto& level : stack) {
      level.reset();
    }
  }
  for (auto& tlb : tlbs_) {
    tlb.reset();
  }
  if (llc_) {
    llc_->reset();
  }
  std::fill(cycles_.begin(), cycles_.end(), 0);
  memory_fills_ = 0;
  total_accesses_ = 0;
}

void Hierarchy::reset_stats() noexcept {
  for (auto& stack : threads_) {
    for (auto& level : stack) {
      level.reset_stats();
    }
  }
  for (auto& tlb : tlbs_) {
    tlb.reset_stats();
  }
  if (llc_) {
    llc_->reset_stats();
  }
  std::fill(cycles_.begin(), cycles_.end(), 0);
  memory_fills_ = 0;
  total_accesses_ = 0;
}

}  // namespace sfcvis::memsim
