#include "sfcvis/memsim/cache.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace sfcvis::memsim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (config.line_bytes == 0 || !std::has_single_bit(config.line_bytes)) {
    throw std::invalid_argument("Cache: line_bytes must be a power of two");
  }
  if (config.associativity == 0) {
    throw std::invalid_argument("Cache: associativity must be nonzero");
  }
  const std::uint32_t nsets = config.sets();
  if (nsets == 0) {
    throw std::invalid_argument("Cache '" + config.name +
                                "': size too small for line size * associativity");
  }
  if (!std::has_single_bit(nsets)) {
    throw std::invalid_argument("Cache '" + config.name +
                                "': geometry implies a non-power-of-two set count");
  }
  set_mask_ = nsets - 1;
  ways_ = config.associativity;
  const std::size_t slots = static_cast<std::size_t>(nsets) * ways_;
  tags_.assign(slots, 0);
  stamps_.assign(slots, 0);
  valid_.assign(slots, 0);
}

bool Cache::access(std::uint64_t line_addr) noexcept {
  ++stats_.accesses;
  ++tick_;
  const std::uint32_t set = static_cast<std::uint32_t>(line_addr) & set_mask_;
  const std::size_t base = static_cast<std::size_t>(set) * ways_;

  std::size_t victim = base;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t slot = base; slot < base + ways_; ++slot) {
    if (valid_[slot] && tags_[slot] == line_addr) {
      stamps_[slot] = tick_;
      return true;
    }
    // Track the LRU (or first invalid) way as the eviction candidate.
    const std::uint64_t age = valid_[slot] ? stamps_[slot] : 0;
    if (age < oldest) {
      oldest = age;
      victim = slot;
    }
  }
  ++stats_.misses;
  tags_[victim] = line_addr;
  stamps_[victim] = tick_;
  valid_[victim] = 1;
  return false;
}

bool Cache::contains(std::uint64_t line_addr) const noexcept {
  const std::uint32_t set = static_cast<std::uint32_t>(line_addr) & set_mask_;
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  for (std::size_t slot = base; slot < base + ways_; ++slot) {
    if (valid_[slot] && tags_[slot] == line_addr) {
      return true;
    }
  }
  return false;
}

void Cache::install(std::uint64_t line_addr) noexcept {
  ++tick_;
  const std::uint32_t set = static_cast<std::uint32_t>(line_addr) & set_mask_;
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  std::size_t victim = base;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t slot = base; slot < base + ways_; ++slot) {
    if (valid_[slot] && tags_[slot] == line_addr) {
      return;  // already resident; do not disturb recency
    }
    const std::uint64_t age = valid_[slot] ? stamps_[slot] : 0;
    if (age < oldest) {
      oldest = age;
      victim = slot;
    }
  }
  ++stats_.prefetch_installs;
  tags_[victim] = line_addr;
  stamps_[victim] = tick_;
  valid_[victim] = 1;
}

void Cache::reset() noexcept {
  std::fill(valid_.begin(), valid_.end(), std::uint8_t{0});
  reset_stats();
}

void Cache::reset_stats() noexcept { stats_ = CacheStats{}; }

}  // namespace sfcvis::memsim
