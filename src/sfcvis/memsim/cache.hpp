// Single-level set-associative cache model with true-LRU replacement.
//
// Part of the memsim substrate that substitutes for PAPI hardware counters
// (see DESIGN.md Sec. 4): kernels replay their exact data-access streams
// through a modeled hierarchy and the hit/miss totals play the role of the
// paper's PAPI_L3_TCA / L2_DATA_READ_MISS_MEM_FILL measurements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sfcvis::memsim {

/// Geometry of one cache level.
struct CacheConfig {
  std::string name;                 ///< e.g. "L1d"
  std::uint64_t size_bytes = 0;     ///< total capacity
  std::uint32_t line_bytes = 64;    ///< line (block) size
  std::uint32_t associativity = 8;  ///< ways per set
  std::uint32_t hit_latency = 4;    ///< cycles to serve a hit at this level

  /// Number of sets implied by the geometry.
  [[nodiscard]] std::uint32_t sets() const noexcept {
    return static_cast<std::uint32_t>(size_bytes / (static_cast<std::uint64_t>(line_bytes) *
                                                    associativity));
  }
};

/// Hit/miss totals of one cache instance.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t prefetch_installs = 0;

  [[nodiscard]] std::uint64_t hits() const noexcept { return accesses - misses; }
  [[nodiscard]] double miss_rate() const noexcept {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

/// A set-associative LRU cache. Accessed by *line address* (byte address
/// already shifted down by log2(line_bytes)); splitting byte ranges into
/// lines is the hierarchy's job.
class Cache {
 public:
  /// Throws std::invalid_argument on non-power-of-two geometry or when the
  /// configuration implies zero sets.
  explicit Cache(const CacheConfig& config);

  /// Touches `line_addr`; returns true on hit. On miss the line is filled,
  /// evicting the set's LRU way.
  bool access(std::uint64_t line_addr) noexcept;

  /// True when `line_addr` is currently resident (no state change, no
  /// counter update).
  [[nodiscard]] bool contains(std::uint64_t line_addr) const noexcept;

  /// Installs a line without touching the access/miss statistics — the
  /// primitive the hierarchy's prefetcher model uses. Counted separately
  /// in stats().prefetch_installs. No-op when the line is already
  /// resident.
  void install(std::uint64_t line_addr) noexcept;

  /// Invalidates all lines and zeroes the statistics.
  void reset() noexcept;

  /// Zeroes statistics only (contents stay warm) — used to exclude warm-up
  /// phases from measurement, as PAPI's counter start/stop does.
  void reset_stats() noexcept;

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

 private:
  CacheConfig config_;
  std::uint32_t set_mask_ = 0;
  std::uint32_t ways_ = 0;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
  // Structure-of-arrays per way-slot: index = set * ways + way.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> stamps_;
  std::vector<std::uint8_t> valid_;
};

}  // namespace sfcvis::memsim
