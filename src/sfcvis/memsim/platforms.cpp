#include "sfcvis/memsim/platforms.hpp"

#include <algorithm>
#include <stdexcept>

namespace sfcvis::memsim {

PlatformSpec ivybridge() {
  PlatformSpec spec;
  spec.name = "ivybridge";
  spec.private_levels = {
      CacheConfig{"L1d", 64 * 1024, 64, 8, 4},
      CacheConfig{"L2", 256 * 1024, 64, 8, 12},
  };
  // 30 MB is not a power-of-two set count at 20 ways; model 32 MB / 16-way
  // which keeps sets a power of two while preserving the paper's "large
  // shared LLC" role.
  spec.shared_llc = CacheConfig{"L3", 32ull * 1024 * 1024, 64, 16, 36};
  spec.memory_latency = 200;
  spec.tlb_entries = 64;  // L1 dTLB reach: 256 KB of 4 KB pages
  return spec;
}

PlatformSpec mic_knc() {
  PlatformSpec spec;
  spec.name = "mic";
  spec.private_levels = {
      CacheConfig{"L1d", 32 * 1024, 64, 8, 3},
      CacheConfig{"L2", 512 * 1024, 64, 8, 24},
  };
  spec.shared_llc = std::nullopt;  // two-level hierarchy (paper Sec. IV-B1)
  spec.memory_latency = 300;
  spec.tlb_entries = 64;
  return spec;
}

PlatformSpec tiny_test_platform() {
  PlatformSpec spec;
  spec.name = "tiny";
  spec.private_levels = {
      CacheConfig{"L1d", 1024, 64, 2, 4},
      CacheConfig{"L2", 4096, 64, 4, 12},
  };
  spec.shared_llc = CacheConfig{"LLC", 16 * 1024, 64, 4, 36};
  return spec;
}

PlatformSpec scaled(PlatformSpec spec, std::uint32_t divisor) {
  if (divisor == 0 || (divisor & (divisor - 1)) != 0) {
    throw std::invalid_argument("scaled: divisor must be a power of two");
  }
  auto shrink = [divisor](CacheConfig& level) {
    const std::uint64_t min_size =
        static_cast<std::uint64_t>(level.line_bytes) * level.associativity;
    level.size_bytes = std::max<std::uint64_t>(level.size_bytes / divisor, min_size);
    if (divisor > 1) {
      level.name += "/" + std::to_string(divisor);
    }
  };
  for (auto& level : spec.private_levels) {
    shrink(level);
  }
  if (spec.shared_llc) {
    shrink(*spec.shared_llc);
  }
  if (divisor > 1) {
    spec.name += "-scaled" + std::to_string(divisor);
    if (spec.tlb_entries > 0) {
      // Keep TLB reach proportional to the cache scaling, floored so the
      // model stays meaningful.
      spec.tlb_entries = std::max<std::uint32_t>(spec.tlb_entries / divisor, 8);
    }
  }
  return spec;
}

PlatformSpec platform_by_name(std::string_view name) {
  if (name == "ivybridge") {
    return ivybridge();
  }
  if (name == "mic") {
    return mic_knc();
  }
  if (name == "tiny") {
    return tiny_test_platform();
  }
  throw std::invalid_argument("unknown platform: " + std::string(name));
}

}  // namespace sfcvis::memsim
