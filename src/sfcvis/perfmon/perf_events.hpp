// Hardware performance counters via Linux perf_event_open.
//
// The paper collects PAPI counters on real hardware; this module is the
// real-hardware counterpart to the memsim substitute. Containers and many
// shared hosts deny perf_event_open, so availability is probed at runtime
// and every bench falls back to memsim counters when the probe fails —
// that decision is reported, never silent.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sfcvis::perfmon {

/// Counters the benches know how to interpret.
enum class Event : std::uint8_t {
  kCacheReferences,  ///< LLC accesses: the closest kin of PAPI_L3_TCA
  kCacheMisses,      ///< LLC misses
  kInstructions,
  kCycles,
};

[[nodiscard]] const char* to_string(Event e) noexcept;

/// One hardware counter. Move-only (owns a file descriptor).
class PerfCounter {
 public:
  /// Opens a counter for the calling thread (+ its children). Returns
  /// nullopt when the kernel refuses (no permission, no PMU, seccomp...).
  [[nodiscard]] static std::optional<PerfCounter> open(Event event);

  /// True when at least kCacheReferences can be opened in this process —
  /// the probe benches use to pick the hardware or memsim path.
  [[nodiscard]] static bool available();

  PerfCounter(PerfCounter&& other) noexcept;
  PerfCounter& operator=(PerfCounter&& other) noexcept;
  PerfCounter(const PerfCounter&) = delete;
  PerfCounter& operator=(const PerfCounter&) = delete;
  ~PerfCounter();

  /// Zeroes and enables the counter.
  void start();

  /// Disables the counter and returns the accumulated count.
  [[nodiscard]] std::uint64_t stop();

  [[nodiscard]] Event event() const noexcept { return event_; }

 private:
  PerfCounter(int fd, Event event) : fd_(fd), event_(event) {}
  int fd_ = -1;
  Event event_ = Event::kCacheReferences;
};

}  // namespace sfcvis::perfmon
