// Hardware performance counters via Linux perf_event_open.
//
// The paper collects PAPI counters on real hardware; this module is the
// real-hardware counterpart to the memsim substitute. Containers and many
// shared hosts deny perf_event_open, so availability is probed at runtime
// and every bench falls back to memsim counters when the probe fails —
// that decision is reported, never silent: open() takes an optional
// OpenFailure out-param that carries the errno and a human-readable
// explanation (including the /proc/sys/kernel/perf_event_paranoid level
// when that is the likely cause).
//
// Two granularities are provided:
//  * PerfCounter — one event, inherited by child threads; the whole-run
//    counter the benches print next to memsim columns.
//  * PerfGroup   — a multiplexed counter *group* (one leader, three
//    siblings, PERF_FORMAT_GROUP) read in a single syscall; the per-span
//    delta source of the trace subsystem (sfcvis/trace). Groups are
//    per-thread (the kernel refuses PERF_FORMAT_GROUP with inherit), so
//    each tracing thread opens its own.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sfcvis::perfmon {

/// Counters the benches know how to interpret.
enum class Event : std::uint8_t {
  kCacheReferences,  ///< LLC accesses: the closest kin of PAPI_L3_TCA
  kCacheMisses,      ///< LLC misses
  kInstructions,
  kCycles,
  kStalledCyclesFrontend,  ///< cycles with no uops issued (fetch/decode starved)
  kStalledCyclesBackend,   ///< cycles with issue blocked on execution resources
};

[[nodiscard]] const char* to_string(Event e) noexcept;

/// Why a perf_event_open call failed: the errno plus a message a user can
/// act on. A default-constructed value means "no failure recorded".
struct OpenFailure {
  int error = 0;        ///< errno from the failing syscall (0 = none)
  std::string message;  ///< human-readable cause + suggested fix

  [[nodiscard]] bool failed() const noexcept { return error != 0; }
};

/// Maps a perf_event_open errno to an actionable message. EACCES/EPERM
/// report the current perf_event_paranoid sysctl level (the usual culprit
/// on shared hosts and in containers); ENOSYS/ENOENT explain missing
/// kernel/PMU support.
[[nodiscard]] std::string describe_open_error(int error);

/// One hardware counter. Move-only (owns a file descriptor).
class PerfCounter {
 public:
  /// Opens a counter for the calling thread (+ its children). Returns
  /// nullopt when the kernel refuses (no permission, no PMU, seccomp...);
  /// when `failure` is non-null it receives the errno and an explanation.
  [[nodiscard]] static std::optional<PerfCounter> open(Event event,
                                                       OpenFailure* failure = nullptr);

  /// True when at least kCacheReferences can be opened in this process —
  /// the probe benches use to pick the hardware or memsim path.
  [[nodiscard]] static bool available();

  /// The probe, with the reason: why the hardware path is unavailable
  /// (empty string when it is available).
  [[nodiscard]] static std::string unavailable_reason();

  PerfCounter(PerfCounter&& other) noexcept;
  PerfCounter& operator=(PerfCounter&& other) noexcept;
  PerfCounter(const PerfCounter&) = delete;
  PerfCounter& operator=(const PerfCounter&) = delete;
  ~PerfCounter();

  /// Zeroes and enables the counter.
  void start();

  /// Disables the counter and returns the accumulated count.
  [[nodiscard]] std::uint64_t stop();

  [[nodiscard]] Event event() const noexcept { return event_; }

 private:
  PerfCounter(int fd, Event event) : fd_(fd), event_(event) {}
  int fd_ = -1;
  Event event_ = Event::kCacheReferences;
};

/// One consistent reading of the four grouped events.
struct GroupReading {
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
};

/// A perf counter *group* for the calling thread: cache-references leads,
/// cache-misses / instructions / cycles are siblings, and one read() with
/// PERF_FORMAT_GROUP returns all four atomically — the cheap begin/end
/// delta source for trace spans. Move-only (owns four descriptors).
///
/// Thread affinity: the group counts the opening thread only (no inherit —
/// the kernel rejects PERF_FORMAT_GROUP on inherited events), so every
/// thread that wants span counters opens its own group.
class PerfGroup {
 public:
  /// Opens the four-event group for the calling thread, enabled from the
  /// start. nullopt + `failure` on refusal; partial opens are rolled back.
  [[nodiscard]] static std::optional<PerfGroup> open(OpenFailure* failure = nullptr);

  PerfGroup(PerfGroup&& other) noexcept;
  PerfGroup& operator=(PerfGroup&& other) noexcept;
  PerfGroup(const PerfGroup&) = delete;
  PerfGroup& operator=(const PerfGroup&) = delete;
  ~PerfGroup();

  /// Reads all four counters in one syscall. Returns false (zeroed `out`)
  /// on a short or failed read.
  [[nodiscard]] bool read_now(GroupReading& out) const noexcept;

 private:
  PerfGroup() = default;
  void close_all() noexcept;
  static constexpr int kEvents = 4;
  int fds_[kEvents] = {-1, -1, -1, -1};  ///< [0] is the group leader
};

/// One whole-run reading of the top-down analysis events. The stall
/// events are optional at the PMU level (many virtualized or recent PMUs
/// expose only the architectural events); has_stalls records whether the
/// frontend/backend columns carry data or are structurally zero.
struct TopDownReading {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t stalled_frontend = 0;
  std::uint64_t stalled_backend = 0;
  bool has_stalls = false;
};

/// Level-1 top-down slot breakdown (Yasin, "Top-Down Micro-Architecture
/// Analysis Method", approximated with the generic perf events): with an
/// issue width of 4, retiring ~ instructions / (4 * cycles), and the
/// stalled-cycle fractions stand in for frontend-bound / backend-bound.
/// bad_speculation absorbs the remainder (clamped at zero — the stall
/// approximation can overcount). `complete` is false when the stall
/// events were unavailable: retiring is still meaningful on its own
/// (the regression gate uses exactly that), the other three are not.
struct TopDownRatios {
  double retiring = 0.0;
  double frontend_bound = 0.0;
  double backend_bound = 0.0;
  double bad_speculation = 0.0;
  bool complete = false;
};

[[nodiscard]] TopDownRatios topdown_ratios(const TopDownReading& r) noexcept;

/// Whole-run, inherit-enabled counter set for the top-down breakdown:
/// cycles + instructions are mandatory (open fails without them), the two
/// stalled-cycles events are best-effort (see TopDownReading::has_stalls).
/// Inherited counters cover pool workers spawned after open, so one
/// instance on the driver thread measures the whole run — the per-span
/// PerfGroup stays a separate, per-thread concern.
class TopDownCounters {
 public:
  [[nodiscard]] static std::optional<TopDownCounters> open(OpenFailure* failure = nullptr);

  /// Zeroes and enables all opened events.
  void start();

  /// Disables and reads every opened event.
  [[nodiscard]] TopDownReading stop();

  [[nodiscard]] bool has_stalls() const noexcept {
    return stalled_frontend_.has_value() && stalled_backend_.has_value();
  }

 private:
  TopDownCounters() = default;
  std::optional<PerfCounter> cycles_;
  std::optional<PerfCounter> instructions_;
  std::optional<PerfCounter> stalled_frontend_;
  std::optional<PerfCounter> stalled_backend_;
};

/// Difference a - b, per event (for span begin/end deltas). Counters are
/// monotonic while enabled, so the subtraction never wraps in practice.
[[nodiscard]] constexpr GroupReading operator-(const GroupReading& a,
                                               const GroupReading& b) noexcept {
  return GroupReading{a.cache_references - b.cache_references,
                      a.cache_misses - b.cache_misses,
                      a.instructions - b.instructions, a.cycles - b.cycles};
}

/// Per-event sum (for aggregating span deltas across spans and threads).
[[nodiscard]] constexpr GroupReading operator+(const GroupReading& a,
                                               const GroupReading& b) noexcept {
  return GroupReading{a.cache_references + b.cache_references,
                      a.cache_misses + b.cache_misses,
                      a.instructions + b.instructions, a.cycles + b.cycles};
}

}  // namespace sfcvis::perfmon
