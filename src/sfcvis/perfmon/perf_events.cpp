#include "sfcvis/perfmon/perf_events.hpp"

#include <utility>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace sfcvis::perfmon {

const char* to_string(Event e) noexcept {
  switch (e) {
    case Event::kCacheReferences:
      return "cache-references";
    case Event::kCacheMisses:
      return "cache-misses";
    case Event::kInstructions:
      return "instructions";
    case Event::kCycles:
      return "cycles";
  }
  return "?";
}

#if defined(__linux__)

namespace {

std::uint64_t perf_config_for(Event e) noexcept {
  switch (e) {
    case Event::kCacheReferences:
      return PERF_COUNT_HW_CACHE_REFERENCES;
    case Event::kCacheMisses:
      return PERF_COUNT_HW_CACHE_MISSES;
    case Event::kInstructions:
      return PERF_COUNT_HW_INSTRUCTIONS;
    case Event::kCycles:
      return PERF_COUNT_HW_CPU_CYCLES;
  }
  return PERF_COUNT_HW_CACHE_REFERENCES;
}

}  // namespace

std::optional<PerfCounter> PerfCounter::open(Event event) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = perf_config_for(event);
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 1;  // cover pool worker threads spawned after open
  const int fd = static_cast<int>(
      ::syscall(SYS_perf_event_open, &attr, 0 /*this thread*/, -1 /*any cpu*/,
                -1 /*no group*/, 0UL));
  if (fd < 0) {
    return std::nullopt;
  }
  return PerfCounter(fd, event);
}

PerfCounter::~PerfCounter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void PerfCounter::start() {
  ::ioctl(fd_, PERF_EVENT_IOC_RESET, 0);
  ::ioctl(fd_, PERF_EVENT_IOC_ENABLE, 0);
}

std::uint64_t PerfCounter::stop() {
  ::ioctl(fd_, PERF_EVENT_IOC_DISABLE, 0);
  std::uint64_t count = 0;
  if (::read(fd_, &count, sizeof(count)) != static_cast<ssize_t>(sizeof(count))) {
    return 0;
  }
  return count;
}

#else  // non-Linux: never available

std::optional<PerfCounter> PerfCounter::open(Event) { return std::nullopt; }
PerfCounter::~PerfCounter() = default;
void PerfCounter::start() {}
std::uint64_t PerfCounter::stop() { return 0; }

#endif

PerfCounter::PerfCounter(PerfCounter&& other) noexcept
    : fd_(other.fd_), event_(other.event_) {
  other.fd_ = -1;
}

PerfCounter& PerfCounter::operator=(PerfCounter&& other) noexcept {
  // Swap: other's destructor closes the descriptor we held before.
  std::swap(fd_, other.fd_);
  std::swap(event_, other.event_);
  return *this;
}

bool PerfCounter::available() {
  return PerfCounter::open(Event::kCacheReferences).has_value();
}

}  // namespace sfcvis::perfmon
