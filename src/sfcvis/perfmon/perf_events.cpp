#include "sfcvis/perfmon/perf_events.hpp"

#include <algorithm>
#include <utility>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#endif

namespace sfcvis::perfmon {

const char* to_string(Event e) noexcept {
  switch (e) {
    case Event::kCacheReferences:
      return "cache-references";
    case Event::kCacheMisses:
      return "cache-misses";
    case Event::kInstructions:
      return "instructions";
    case Event::kCycles:
      return "cycles";
    case Event::kStalledCyclesFrontend:
      return "stalled-cycles-frontend";
    case Event::kStalledCyclesBackend:
      return "stalled-cycles-backend";
  }
  return "?";
}

TopDownRatios topdown_ratios(const TopDownReading& r) noexcept {
  TopDownRatios out;
  if (r.cycles == 0) {
    return out;
  }
  const double cycles = static_cast<double>(r.cycles);
  const double slots = 4.0 * cycles;  // level-1 TMA issue width
  out.retiring = static_cast<double>(r.instructions) / slots;
  if (r.has_stalls) {
    out.frontend_bound = static_cast<double>(r.stalled_frontend) / cycles;
    out.backend_bound = static_cast<double>(r.stalled_backend) / cycles;
    out.bad_speculation =
        std::max(0.0, 1.0 - out.retiring - out.frontend_bound - out.backend_bound);
    out.complete = true;
  }
  return out;
}

#if defined(__linux__)

namespace {

std::uint64_t perf_config_for(Event e) noexcept {
  switch (e) {
    case Event::kCacheReferences:
      return PERF_COUNT_HW_CACHE_REFERENCES;
    case Event::kCacheMisses:
      return PERF_COUNT_HW_CACHE_MISSES;
    case Event::kInstructions:
      return PERF_COUNT_HW_INSTRUCTIONS;
    case Event::kCycles:
      return PERF_COUNT_HW_CPU_CYCLES;
    case Event::kStalledCyclesFrontend:
      return PERF_COUNT_HW_STALLED_CYCLES_FRONTEND;
    case Event::kStalledCyclesBackend:
      return PERF_COUNT_HW_STALLED_CYCLES_BACKEND;
  }
  return PERF_COUNT_HW_CACHE_REFERENCES;
}

/// Reads /proc/sys/kernel/perf_event_paranoid; -100 when unreadable.
int read_paranoid_level() noexcept {
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "re");
  if (f == nullptr) {
    return -100;
  }
  int level = -100;
  if (std::fscanf(f, "%d", &level) != 1) {
    level = -100;
  }
  std::fclose(f);
  return level;
}

int open_event(Event event, bool group_format, int group_fd, OpenFailure* failure) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = perf_config_for(event);
  attr.disabled = group_format ? (group_fd < 0 ? 1 : 0) : 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  if (group_format) {
    // Group reads return every member in one syscall. The kernel rejects
    // PERF_FORMAT_GROUP on inherited events, so groups are per-thread.
    attr.read_format = PERF_FORMAT_GROUP;
  } else {
    attr.inherit = 1;  // cover pool worker threads spawned after open
  }
  const int fd = static_cast<int>(::syscall(SYS_perf_event_open, &attr, 0 /*this thread*/,
                                            -1 /*any cpu*/, group_fd, 0UL));
  if (fd < 0 && failure != nullptr) {
    failure->error = errno;
    failure->message =
        std::string(to_string(event)) + ": " + describe_open_error(failure->error);
  }
  return fd;
}

}  // namespace

std::string describe_open_error(int error) {
  std::string msg = "perf_event_open failed: ";
  msg += std::strerror(error);
  msg += " (errno " + std::to_string(error) + ")";
  switch (error) {
    case EACCES:
    case EPERM: {
      const int paranoid = read_paranoid_level();
      msg += "; kernel.perf_event_paranoid is ";
      msg += paranoid == -100 ? std::string("unreadable") : std::to_string(paranoid);
      msg +=
          " — unprivileged hardware counters need level <= 2 (try `sysctl "
          "kernel.perf_event_paranoid=1`), and containers additionally need the "
          "perf_event_open syscall allowed by seccomp";
      break;
    }
    case ENOENT:
      msg += "; the PMU does not support this generic hardware event (common in VMs "
             "without vPMU)";
      break;
    case ENOSYS:
      msg += "; this kernel was built without perf-events support";
      break;
    case ENODEV:
      msg += "; no PMU hardware is available to this (virtual) machine";
      break;
    default:
      break;
  }
  return msg;
}

std::optional<PerfCounter> PerfCounter::open(Event event, OpenFailure* failure) {
  const int fd = open_event(event, /*group_format=*/false, /*group_fd=*/-1, failure);
  if (fd < 0) {
    return std::nullopt;
  }
  return PerfCounter(fd, event);
}

PerfCounter::~PerfCounter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void PerfCounter::start() {
  ::ioctl(fd_, PERF_EVENT_IOC_RESET, 0);
  ::ioctl(fd_, PERF_EVENT_IOC_ENABLE, 0);
}

std::uint64_t PerfCounter::stop() {
  ::ioctl(fd_, PERF_EVENT_IOC_DISABLE, 0);
  std::uint64_t count = 0;
  if (::read(fd_, &count, sizeof(count)) != static_cast<ssize_t>(sizeof(count))) {
    return 0;
  }
  return count;
}

std::optional<PerfGroup> PerfGroup::open(OpenFailure* failure) {
  static constexpr Event kOrder[kEvents] = {Event::kCacheReferences, Event::kCacheMisses,
                                            Event::kInstructions, Event::kCycles};
  PerfGroup group;
  for (int i = 0; i < kEvents; ++i) {
    group.fds_[i] = open_event(kOrder[i], /*group_format=*/true,
                               i == 0 ? -1 : group.fds_[0], failure);
    if (group.fds_[i] < 0) {
      group.close_all();
      return std::nullopt;
    }
  }
  ::ioctl(group.fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(group.fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  return group;
}

void PerfGroup::close_all() noexcept {
  for (int& fd : fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

PerfGroup::~PerfGroup() { close_all(); }

PerfGroup::PerfGroup(PerfGroup&& other) noexcept {
  for (int i = 0; i < kEvents; ++i) {
    fds_[i] = std::exchange(other.fds_[i], -1);
  }
}

PerfGroup& PerfGroup::operator=(PerfGroup&& other) noexcept {
  if (this != &other) {
    for (int i = 0; i < kEvents; ++i) {
      std::swap(fds_[i], other.fds_[i]);
    }
  }
  return *this;
}

bool PerfGroup::read_now(GroupReading& out) const noexcept {
  // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; }.
  std::uint64_t buf[1 + kEvents] = {};
  const ssize_t got = ::read(fds_[0], buf, sizeof(buf));
  if (got < static_cast<ssize_t>(sizeof(buf)) || buf[0] != kEvents) {
    out = GroupReading{};
    return false;
  }
  out.cache_references = buf[1];
  out.cache_misses = buf[2];
  out.instructions = buf[3];
  out.cycles = buf[4];
  return true;
}

std::optional<TopDownCounters> TopDownCounters::open(OpenFailure* failure) {
  TopDownCounters counters;
  counters.cycles_ = PerfCounter::open(Event::kCycles, failure);
  if (!counters.cycles_) {
    return std::nullopt;
  }
  counters.instructions_ = PerfCounter::open(Event::kInstructions, failure);
  if (!counters.instructions_) {
    return std::nullopt;
  }
  // Best-effort: a PMU without the generic stall events still yields the
  // retiring fraction; readers check has_stalls / TopDownReading.
  counters.stalled_frontend_ = PerfCounter::open(Event::kStalledCyclesFrontend);
  counters.stalled_backend_ = PerfCounter::open(Event::kStalledCyclesBackend);
  if (!counters.stalled_frontend_ || !counters.stalled_backend_) {
    counters.stalled_frontend_.reset();
    counters.stalled_backend_.reset();
  }
  return counters;
}

void TopDownCounters::start() {
  cycles_->start();
  instructions_->start();
  if (has_stalls()) {
    stalled_frontend_->start();
    stalled_backend_->start();
  }
}

TopDownReading TopDownCounters::stop() {
  TopDownReading r;
  r.cycles = cycles_->stop();
  r.instructions = instructions_->stop();
  if (has_stalls()) {
    r.stalled_frontend = stalled_frontend_->stop();
    r.stalled_backend = stalled_backend_->stop();
    r.has_stalls = true;
  }
  return r;
}

#else  // non-Linux: never available

std::string describe_open_error(int) {
  return "perf_event_open is Linux-only; hardware counters are unavailable on this "
         "platform";
}

std::optional<PerfCounter> PerfCounter::open(Event, OpenFailure* failure) {
  if (failure != nullptr) {
    failure->error = 1;
    failure->message = describe_open_error(1);
  }
  return std::nullopt;
}
PerfCounter::~PerfCounter() = default;
void PerfCounter::start() {}
std::uint64_t PerfCounter::stop() { return 0; }

std::optional<PerfGroup> PerfGroup::open(OpenFailure* failure) {
  if (failure != nullptr) {
    failure->error = 1;
    failure->message = describe_open_error(1);
  }
  return std::nullopt;
}
std::optional<TopDownCounters> TopDownCounters::open(OpenFailure* failure) {
  if (failure != nullptr) {
    failure->error = 1;
    failure->message = describe_open_error(1);
  }
  return std::nullopt;
}
void TopDownCounters::start() {}
TopDownReading TopDownCounters::stop() { return TopDownReading{}; }

void PerfGroup::close_all() noexcept {}
PerfGroup::~PerfGroup() = default;
PerfGroup::PerfGroup(PerfGroup&&) noexcept {}
PerfGroup& PerfGroup::operator=(PerfGroup&&) noexcept { return *this; }
bool PerfGroup::read_now(GroupReading& out) const noexcept {
  out = GroupReading{};
  return false;
}

#endif

PerfCounter::PerfCounter(PerfCounter&& other) noexcept
    : fd_(other.fd_), event_(other.event_) {
  other.fd_ = -1;
}

PerfCounter& PerfCounter::operator=(PerfCounter&& other) noexcept {
  // Swap: other's destructor closes the descriptor we held before.
  std::swap(fd_, other.fd_);
  std::swap(event_, other.event_);
  return *this;
}

bool PerfCounter::available() {
  return PerfCounter::open(Event::kCacheReferences).has_value();
}

std::string PerfCounter::unavailable_reason() {
  OpenFailure failure;
  if (PerfCounter::open(Event::kCacheReferences, &failure).has_value()) {
    return {};
  }
  return failure.message;
}

}  // namespace sfcvis::perfmon
