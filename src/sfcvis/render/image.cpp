#include "sfcvis/render/image.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace sfcvis::render {

void write_ppm(const std::filesystem::path& path, const Image& image) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_ppm: cannot open " + path.string());
  }
  out << "P6\n" << image.width() << " " << image.height() << "\n255\n";
  std::vector<unsigned char> row(static_cast<std::size_t>(image.width()) * 3);
  for (std::uint32_t y = 0; y < image.height(); ++y) {
    for (std::uint32_t x = 0; x < image.width(); ++x) {
      const Rgba& p = image.at(x, y);
      // Premultiplied color over black: the accumulated r/g/b already carry
      // alpha; just clamp and quantize.
      row[3 * x + 0] = static_cast<unsigned char>(std::clamp(p.r, 0.0f, 1.0f) * 255.0f);
      row[3 * x + 1] = static_cast<unsigned char>(std::clamp(p.g, 0.0f, 1.0f) * 255.0f);
      row[3 * x + 2] = static_cast<unsigned char>(std::clamp(p.b, 0.0f, 1.0f) * 255.0f);
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!out) {
    throw std::runtime_error("write_ppm: write failed for " + path.string());
  }
}

TileDecomposition::TileDecomposition(std::uint32_t width, std::uint32_t height,
                                     std::uint32_t tile_size)
    : width_(width), height_(height), tile_size_(tile_size) {
  if (tile_size == 0) {
    throw std::invalid_argument("TileDecomposition: tile_size must be nonzero");
  }
  tiles_x_ = (width + tile_size - 1) / tile_size;
  tiles_y_ = (height + tile_size - 1) / tile_size;
}

Tile TileDecomposition::bounds(std::size_t index) const noexcept {
  const auto tx = static_cast<std::uint32_t>(index % tiles_x_);
  const auto ty = static_cast<std::uint32_t>(index / tiles_x_);
  Tile t;
  t.x0 = tx * tile_size_;
  t.y0 = ty * tile_size_;
  t.x1 = std::min(t.x0 + tile_size_, width_);
  t.y1 = std::min(t.y0 + tile_size_, height_);
  return t;
}

}  // namespace sfcvis::render
