#include "sfcvis/render/camera.hpp"

#include <numbers>

namespace sfcvis::render {

Camera::Camera(Vec3 eye, Vec3 target, Vec3 up, float vfov_deg, Projection projection,
               float ortho_half_height)
    : eye_(eye),
      ortho_half_height_(ortho_half_height),
      projection_(projection) {
  forward_ = normalized(target - eye);
  right_ = normalized(cross(forward_, up));
  up_ = cross(right_, forward_);
  tan_half_fov_ = std::tan(vfov_deg * std::numbers::pi_v<float> / 360.0f);
}

Ray Camera::ray_for_pixel(std::uint32_t px, std::uint32_t py, std::uint32_t width,
                          std::uint32_t height) const noexcept {
  // Pixel centers mapped to [-1, 1] with y flipped (image y grows down).
  const float u =
      (2.0f * (static_cast<float>(px) + 0.5f) / static_cast<float>(width) - 1.0f);
  const float v =
      (1.0f - 2.0f * (static_cast<float>(py) + 0.5f) / static_cast<float>(height));
  const float aspect = static_cast<float>(width) / static_cast<float>(height);

  if (projection_ == Projection::kPerspective) {
    const Vec3 dir = normalized(forward_ + right_ * (u * tan_half_fov_ * aspect) +
                                up_ * (v * tan_half_fov_));
    return Ray{eye_, dir};
  }
  const Vec3 offset =
      right_ * (u * ortho_half_height_ * aspect) + up_ * (v * ortho_half_height_);
  return Ray{eye_ + offset, forward_};
}

Camera orbit_camera(unsigned viewpoint, unsigned num_viewpoints, float nx, float ny,
                    float nz, Projection projection, float distance_factor,
                    float vfov_deg) {
  const Vec3 center{0.5f * nx, 0.5f * ny, 0.5f * nz};
  const float radius = distance_factor * std::max(nx, std::max(ny, nz));
  const float theta = 2.0f * std::numbers::pi_v<float> * static_cast<float>(viewpoint) /
                      static_cast<float>(num_viewpoints);
  // Orbit in the x-z plane, slightly lifted so the up vector is never
  // degenerate. viewpoint 0 sits on +x looking toward -x.
  const Vec3 eye = center + Vec3{radius * std::cos(theta), 0.07f * radius,
                                 radius * std::sin(theta)};
  const float ortho_half = 0.55f * std::max(ny, std::max(nx, nz));
  return Camera(eye, center, Vec3{0, 1, 0}, vfov_deg, projection, ortho_half);
}

}  // namespace sfcvis::render
