// Framebuffer, RGBA color, and the 32x32 image-tile decomposition the
// renderer parallelizes over (paper Sec. III-B: tile size fixed at 32x32,
// the size found consistently good in Bethel & Howison 2012; the tile-size
// ablation bench revisits that choice).
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

namespace sfcvis::render {

/// Linear-space RGBA color with premultiplied-alpha compositing helpers.
struct Rgba {
  float r = 0, g = 0, b = 0, a = 0;

  friend constexpr bool operator==(const Rgba&, const Rgba&) = default;

  /// Front-to-back "over" composite: accumulates `back` under `*this`.
  constexpr void composite_under(const Rgba& back) noexcept {
    const float t = 1.0f - a;
    r += t * back.r * back.a;
    g += t * back.g * back.a;
    b += t * back.b * back.a;
    a += t * back.a;
  }
};

/// Owning 2D RGBA image.
class Image {
 public:
  Image() = default;
  Image(std::uint32_t width, std::uint32_t height)
      : width_(width), height_(height),
        pixels_(static_cast<std::size_t>(width) * height) {}

  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }

  [[nodiscard]] Rgba& at(std::uint32_t x, std::uint32_t y) noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  [[nodiscard]] const Rgba& at(std::uint32_t x, std::uint32_t y) const noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  [[nodiscard]] const std::vector<Rgba>& pixels() const noexcept { return pixels_; }

 private:
  std::uint32_t width_ = 0, height_ = 0;
  std::vector<Rgba> pixels_;
};

/// Writes an 8-bit binary PPM (P6), compositing onto a black background.
/// Throws std::runtime_error on IO failure.
void write_ppm(const std::filesystem::path& path, const Image& image);

/// One rectangular tile of the output image.
struct Tile {
  std::uint32_t x0 = 0, y0 = 0;  ///< inclusive upper-left pixel
  std::uint32_t x1 = 0, y1 = 0;  ///< exclusive lower-right pixel
};

/// Fixed-size tiling of a width x height image; edge tiles are clipped.
class TileDecomposition {
 public:
  TileDecomposition(std::uint32_t width, std::uint32_t height, std::uint32_t tile_size);

  [[nodiscard]] std::size_t count() const noexcept {
    return static_cast<std::size_t>(tiles_x_) * tiles_y_;
  }
  [[nodiscard]] Tile bounds(std::size_t index) const noexcept;
  [[nodiscard]] std::uint32_t tile_size() const noexcept { return tile_size_; }

 private:
  std::uint32_t width_, height_, tile_size_;
  std::uint32_t tiles_x_, tiles_y_;
};

}  // namespace sfcvis::render
