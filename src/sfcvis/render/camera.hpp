// Perspective (and orthographic) camera plus the orbit-viewpoint generator
// of the paper's raycasting experiments (Sec. IV-B4): the viewpoint orbits
// the volume center so that at viewpoints 0 and 4 the rays run parallel to
// the x axis (with the array-order grain) and in between they are
// increasingly misaligned.
#pragma once

#include <cstdint>

#include "sfcvis/render/vec.hpp"

namespace sfcvis::render {

/// Projection mode. The paper's experiments use perspective, whose
/// per-pixel ray slopes make the access pattern "semi-structured";
/// orthographic is provided for the structured-access contrast.
enum class Projection : std::uint8_t { kPerspective, kOrthographic };

/// Pinhole camera.
class Camera {
 public:
  Camera() = default;

  /// Looks from `eye` toward `target` with `up` roughly up; `vfov_deg` is
  /// the vertical field of view (perspective) and `ortho_half_height` the
  /// half-height of the orthographic window.
  Camera(Vec3 eye, Vec3 target, Vec3 up, float vfov_deg, Projection projection,
         float ortho_half_height = 1.0f);

  /// The ray through pixel center (px, py) of a width x height image.
  /// Pixel (0, 0) is the upper-left corner.
  [[nodiscard]] Ray ray_for_pixel(std::uint32_t px, std::uint32_t py, std::uint32_t width,
                                  std::uint32_t height) const noexcept;

  [[nodiscard]] Vec3 eye() const noexcept { return eye_; }
  [[nodiscard]] Vec3 forward() const noexcept { return forward_; }
  [[nodiscard]] Projection projection() const noexcept { return projection_; }

 private:
  Vec3 eye_{};
  Vec3 forward_{0, 0, -1};
  Vec3 right_{1, 0, 0};
  Vec3 up_{0, 1, 0};
  float tan_half_fov_ = 0.5f;
  float ortho_half_height_ = 1.0f;
  Projection projection_ = Projection::kPerspective;
};

/// Camera at orbit position `viewpoint` of `num_viewpoints` equally spaced
/// stops around the center of a volume with the given extents (in voxels).
/// The orbit lies in the x-z plane: viewpoint 0 looks down the -x axis
/// (rays aligned with the array-order fast axis), viewpoint
/// num_viewpoints/2 down +x, and the quarter points look along z (the
/// against-the-grain views).
[[nodiscard]] Camera orbit_camera(unsigned viewpoint, unsigned num_viewpoints, float nx,
                                  float ny, float nz,
                                  Projection projection = Projection::kPerspective,
                                  float distance_factor = 1.8f, float vfov_deg = 38.0f);

}  // namespace sfcvis::render
