// Ray-packet traversal: K rays (one per image-row pixel run) walk the
// volume together, sharing the vectorized trilinear reconstruction,
// shading and compositing arithmetic from core/simd.hpp.
//
// Bit-identity contract (fuzz-gated in verify/): a packet render must be
// bit-identical to K independent trace_ray calls, on every layout, with
// and without macrocells, for composite / MIP / shaded modes. Two rules
// make that hold:
//  * Everything that decides control flow or a sample position is computed
//    per lane with the exact scalar expressions from raycast.hpp — the
//    slab intersection, t = t_enter + n*step, ray.at(t), the macrocell
//    DDA (cell_of / cell_exit / range / max_opacity / skip_samples_past)
//    and the per-lane run bookkeeping. Lanes keep their own sample index,
//    so packets never perturb where a ray samples.
//  * The packed arithmetic (lerp chains, gradient/normal math, the
//    composite-under update) mirrors the scalar expression shapes
//    operator-for-operator, so FP contraction makes the same fuse/no-fuse
//    choices as the scalar build (see core/simd.hpp's determinism notes).
//    Per-lane transcendentals (TransferFunction::sample, std::pow opacity
//    correction, std::max MIP peaks) stay scalar.
// Lanes whose ray missed the box or already terminated are masked out of
// every composite update with select(), so they never see speculative
// arithmetic — inactive-lane garbage cannot leak into live pixels.
//
// This header is internal to the renderer: it is included by raycast.hpp
// (after trace_ray and its helpers) and must not be included directly.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "sfcvis/core/simd.hpp"

namespace sfcvis::render::packet_detail {

/// Trilinear reconstruction of K lanes at once. Positions arrive as
/// per-lane scalars (already computed with the scalar ray.at expression);
/// the 8 clamped lattice loads stay per lane (layout lookups are scalar
/// address math), the lerp chain is packed and mirrors sample_trilinear
/// term for term. Inactive lanes load nothing and reconstruct 0.
template <int K, core::ReadView3D View>
[[nodiscard]] inline simd::vfloat<K> packet_trilinear(const View& view,
                                                      const std::array<float, K>& px,
                                                      const std::array<float, K>& py,
                                                      const std::array<float, K>& pz,
                                                      unsigned active) {
  using VF = simd::vfloat<K>;
  const VF vx = VF::from_array(px);
  const VF vy = VF::from_array(py);
  const VF vz = VF::from_array(pz);
  // vfloor is IEEE floor — bit-equal to the scalar std::floor call.
  const VF fx = vfloor(vx), fy = vfloor(vy), fz = vfloor(vz);
  const VF tx = vx - fx, ty = vy - fy, tz = vz - fz;
  const auto ax = fx.to_array();
  const auto ay = fy.to_array();
  const auto az = fz.to_array();
  std::array<float, K> c000{}, c100{}, c010{}, c110{};
  std::array<float, K> c001{}, c101{}, c011{}, c111{};
  for (int l = 0; l < K; ++l) {
    if (((active >> l) & 1u) == 0) {
      continue;
    }
    const auto i = static_cast<std::int64_t>(ax[l]);
    const auto j = static_cast<std::int64_t>(ay[l]);
    const auto k = static_cast<std::int64_t>(az[l]);
    c000[l] = view.at_clamped(i, j, k);
    c100[l] = view.at_clamped(i + 1, j, k);
    c010[l] = view.at_clamped(i, j + 1, k);
    c110[l] = view.at_clamped(i + 1, j + 1, k);
    c001[l] = view.at_clamped(i, j, k + 1);
    c101[l] = view.at_clamped(i + 1, j, k + 1);
    c011[l] = view.at_clamped(i, j + 1, k + 1);
    c111[l] = view.at_clamped(i + 1, j + 1, k + 1);
  }
  const auto lerp = [](VF a, VF b, VF t) { return a + (b - a) * t; };
  const VF c00 = lerp(VF::from_array(c000), VF::from_array(c100), tx);
  const VF c10 = lerp(VF::from_array(c010), VF::from_array(c110), tx);
  const VF c01 = lerp(VF::from_array(c001), VF::from_array(c101), tx);
  const VF c11 = lerp(VF::from_array(c011), VF::from_array(c111), tx);
  return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz);
}

/// Running front-to-back compositing state of a packet, SoA across lanes.
template <int K>
struct PacketComposite {
  simd::vfloat<K> r = simd::vfloat<K>::zero();
  simd::vfloat<K> g = simd::vfloat<K>::zero();
  simd::vfloat<K> b = simd::vfloat<K>::zero();
  simd::vfloat<K> a = simd::vfloat<K>::zero();
};

/// Composites one sample batch: lane l of `ts` is that ray's own
/// t = t_enter + n_l*step (lanes are free to be at different depths —
/// the macrocell DDA desynchronizes them). Mirrors composite_sample in
/// trace_ray exactly; returns the still-below-early-termination lanes.
template <int K, core::ReadView3D View>
[[nodiscard]] inline unsigned packet_composite_batch(
    const View& view, const std::array<Ray, K>& rays, const TransferFunction& tf,
    const RenderConfig& config, const std::array<float, K>& ts, unsigned active,
    PacketComposite<K>& out) {
  using VF = simd::vfloat<K>;
  std::array<float, K> px{}, py{}, pz{};
  for (int l = 0; l < K; ++l) {
    if (((active >> l) & 1u) != 0) {
      const Vec3 position = detail::sample_position(rays[l], ts[l]);
      px[l] = position.x;
      py[l] = position.y;
      pz[l] = position.z;
    }
  }
  const VF value = packet_trilinear<K>(view, px, py, pz, active);
  // Classification is a per-lane scalar transfer-function lookup, exactly
  // the call the scalar path makes.
  std::array<float, K> sr{}, sg{}, sb{}, sa{};
  const auto va = value.to_array();
  for (int l = 0; l < K; ++l) {
    if (((active >> l) & 1u) != 0) {
      const Rgba sample = tf.sample(va[l]);
      sr[l] = sample.r;
      sg[l] = sample.g;
      sb[l] = sample.b;
      sa[l] = sample.a;
    }
  }
  VF vr = VF::from_array(sr);
  VF vg = VF::from_array(sg);
  VF vb = VF::from_array(sb);
  if (config.shade) {
    // Scalar gate: shade only lanes whose classified alpha is positive
    // (checked before opacity correction, as in composite_sample).
    unsigned shade_mask = 0;
    for (int l = 0; l < K; ++l) {
      if (((active >> l) & 1u) != 0 && sa[l] > 0.0f) {
        shade_mask |= 1u << l;
      }
    }
    if (shade_mask != 0) {
      // Six shifted reconstructions; the +-1 offsets are scalar adds on
      // the lane positions, matching gradient_trilinear's Vec3 arithmetic.
      std::array<float, K> sxp = px, sxm = px, syp = py, sym = py, szp = pz, szm = pz;
      for (int l = 0; l < K; ++l) {
        sxp[l] = px[l] + 1;
        sxm[l] = px[l] - 1;
        syp[l] = py[l] + 1;
        sym[l] = py[l] - 1;
        szp[l] = pz[l] + 1;
        szm[l] = pz[l] - 1;
      }
      const VF half = VF::broadcast(0.5f);
      const VF nx = half * (packet_trilinear<K>(view, sxp, py, pz, shade_mask) -
                            packet_trilinear<K>(view, sxm, py, pz, shade_mask));
      const VF ny = half * (packet_trilinear<K>(view, px, syp, pz, shade_mask) -
                            packet_trilinear<K>(view, px, sym, pz, shade_mask));
      const VF nz = half * (packet_trilinear<K>(view, px, py, szp, shade_mask) -
                            packet_trilinear<K>(view, px, py, szm, shade_mask));
      // The normal lanes are bit-equal to gradient_trilinear's components;
      // the lighting scale itself runs through the shared out-of-line
      // helper so its contraction choices match the scalar path exactly.
      // Unshaded lanes scale by exactly 1.0f — a bitwise no-op.
      const auto nxa = nx.to_array();
      const auto nya = ny.to_array();
      const auto nza = nz.to_array();
      std::array<float, K> lit;
      lit.fill(1.0f);
      for (int l = 0; l < K; ++l) {
        if (((shade_mask >> l) & 1u) != 0) {
          lit[l] = detail::headlight_scale(Vec3{nxa[l], nya[l], nza[l]}, rays[l].dir,
                                           config.ambient);
        }
      }
      const VF vlit = VF::from_array(lit);
      vr = vr * vlit;
      vg = vg * vlit;
      vb = vb * vlit;
    }
  }
  // Opacity correction stays per-lane scalar (std::pow has no vector
  // counterpart with matching rounding).
  for (int l = 0; l < K; ++l) {
    if (((active >> l) & 1u) != 0) {
      sa[l] = 1.0f - std::pow(1.0f - sa[l], config.step);
    }
  }
  const VF va2 = VF::from_array(sa);
  // composite_under, vector form — same shape: out += (1 - out.a) * c * a.
  const auto am = simd::vmask<K>::from_bits(active);
  const VF t1 = VF::broadcast(1.0f) - out.a;
  out.r = select(am, out.r + t1 * vr * va2, out.r);
  out.g = select(am, out.g + t1 * vg * va2, out.g);
  out.b = select(am, out.b + t1 * vb * va2, out.b);
  out.a = select(am, out.a + t1 * va2, out.a);
  return to_bits(lt(out.a, VF::broadcast(config.early_termination))) & active;
}

/// MIP batch: packed reconstruction, scalar per-lane peak update (std::max
/// exactly as in trace_ray — the peak also feeds the DDA skip test).
template <int K, core::ReadView3D View>
inline void packet_mip_batch(const View& view, const std::array<Ray, K>& rays,
                             const std::array<float, K>& ts, unsigned active,
                             std::array<float, K>& peak) {
  std::array<float, K> px{}, py{}, pz{};
  for (int l = 0; l < K; ++l) {
    if (((active >> l) & 1u) != 0) {
      const Vec3 position = detail::sample_position(rays[l], ts[l]);
      px[l] = position.x;
      py[l] = position.y;
      pz[l] = position.z;
    }
  }
  const auto va = packet_trilinear<K>(view, px, py, pz, active).to_array();
  for (int l = 0; l < K; ++l) {
    if (((active >> l) & 1u) != 0) {
      peak[l] = std::max(peak[l], va[l]);
    }
  }
}

/// Casts K rays together; writes one Rgba per lane into `out`. Stats
/// accounting matches K scalar trace_ray calls counter for counter.
template <int K, core::ReadView3D View>
void trace_ray_packet(const View& view, const std::array<Ray, K>& rays,
                      const TransferFunction& tf, const RenderConfig& config,
                      const MacrocellGrid* cells, RayStats* stats,
                      std::array<Rgba, K>& out) {
  const auto& e = view.extents();
  const Vec3 lo{-0.5f, -0.5f, -0.5f};
  const Vec3 hi{static_cast<float>(e.nx) - 0.5f, static_cast<float>(e.ny) - 0.5f,
                static_cast<float>(e.nz) - 0.5f};
  std::array<float, K> t_enter{}, t_exit{};
  unsigned alive = 0;
  for (int l = 0; l < K; ++l) {
    out[l] = Rgba{};
    if (const auto span = intersect_box(rays[l], lo, hi)) {
      alive |= 1u << l;
      t_enter[l] = span->first;
      t_exit[l] = span->second;
    }
  }
  if (alive == 0) {
    return;
  }
  const float step = config.step;
  const auto t_of = [&](int l, std::uint64_t n) {
    return detail::sample_param(t_enter[l], n, step);
  };
  const auto count = [&](unsigned mask) {
    if (stats != nullptr) {
      stats->samples_taken += std::popcount(mask);
    }
  };

  if (config.mode == RenderMode::kMip) {
    std::array<float, K> peak;
    peak.fill(-std::numeric_limits<float>::max());
    const unsigned hit = alive;
    if (cells == nullptr) {
      std::uint64_t n = 0;
      unsigned live = alive;
      while (live != 0) {
        unsigned active = 0;
        std::array<float, K> ts{};
        for (int l = 0; l < K; ++l) {
          if (((live >> l) & 1u) == 0) {
            continue;
          }
          const float t = t_of(l, n);
          if (t > t_exit[l]) {
            live &= ~(1u << l);
          } else {
            active |= 1u << l;
            ts[l] = t;
          }
        }
        if (active == 0) {
          break;
        }
        packet_mip_batch<K>(view, rays, ts, active, peak);
        count(active);
        ++n;
      }
    } else {
      std::array<Vec3, K> inv_dir;
      std::array<std::uint64_t, K> ns{};
      std::array<float, K> run_exit{};
      std::array<bool, K> in_run{};
      for (int l = 0; l < K; ++l) {
        inv_dir[l] =
            Vec3{1.0f / rays[l].dir.x, 1.0f / rays[l].dir.y, 1.0f / rays[l].dir.z};
      }
      unsigned live = alive;
      while (live != 0) {
        // Advance every lane that is between sampling runs through its own
        // scalar DDA until it enters a run or leaves the volume.
        for (int l = 0; l < K; ++l) {
          if (((live >> l) & 1u) == 0 || in_run[l]) {
            continue;
          }
          while (true) {
            const float t = t_of(l, ns[l]);
            if (ns[l] != 0 && t > t_exit[l]) {
              live &= ~(1u << l);
              break;
            }
            const CellCoord c = cells->cell_of(detail::sample_position(rays[l], t));
            const float exit =
                std::min(cells->cell_exit(rays[l].origin, inv_dir[l], c), t_exit[l]);
            if (stats != nullptr) {
              ++stats->cells_visited;
            }
            if (cells->range(c).max <= peak[l]) {
              const std::uint64_t next =
                  detail::skip_samples_past(ns[l], exit, t_enter[l], step);
              if (stats != nullptr) {
                stats->samples_skipped += next - ns[l];
                ++stats->cells_skipped;
              }
              ns[l] = next;
            } else {
              in_run[l] = true;
              run_exit[l] = exit;
              break;
            }
          }
        }
        if (live == 0) {
          break;
        }
        std::array<float, K> ts{};
        for (int l = 0; l < K; ++l) {
          if (((live >> l) & 1u) != 0) {
            ts[l] = t_of(l, ns[l]);
          }
        }
        packet_mip_batch<K>(view, rays, ts, live, peak);
        count(live);
        for (int l = 0; l < K; ++l) {
          if (((live >> l) & 1u) != 0) {
            ++ns[l];
            if (t_of(l, ns[l]) > run_exit[l]) {
              in_run[l] = false;
            }
          }
        }
      }
    }
    for (int l = 0; l < K; ++l) {
      if (((hit >> l) & 1u) != 0) {
        Rgba color = tf.sample(peak[l]);
        color.r *= color.a;
        color.g *= color.a;
        color.b *= color.a;
        out[l] = color;
      }
    }
    return;
  }

  PacketComposite<K> acc;
  if (cells == nullptr) {
    std::uint64_t n = 0;
    unsigned live = alive;
    while (live != 0) {
      unsigned active = 0;
      std::array<float, K> ts{};
      for (int l = 0; l < K; ++l) {
        if (((live >> l) & 1u) == 0) {
          continue;
        }
        const float t = t_of(l, n);
        if (t > t_exit[l]) {
          live &= ~(1u << l);
        } else {
          active |= 1u << l;
          ts[l] = t;
        }
      }
      if (active == 0) {
        break;
      }
      const unsigned keep = packet_composite_batch<K>(view, rays, tf, config, ts, active, acc);
      count(active);
      live &= ~(active & ~keep);
      ++n;
    }
  } else {
    std::array<Vec3, K> inv_dir;
    std::array<std::uint64_t, K> ns{};
    std::array<float, K> run_exit{};
    std::array<bool, K> in_run{};
    for (int l = 0; l < K; ++l) {
      inv_dir[l] = Vec3{1.0f / rays[l].dir.x, 1.0f / rays[l].dir.y, 1.0f / rays[l].dir.z};
    }
    unsigned live = alive;
    while (live != 0) {
      for (int l = 0; l < K; ++l) {
        if (((live >> l) & 1u) == 0 || in_run[l]) {
          continue;
        }
        while (true) {
          const float t = t_of(l, ns[l]);
          if (t > t_exit[l]) {
            live &= ~(1u << l);
            break;
          }
          const CellCoord c = cells->cell_of(detail::sample_position(rays[l], t));
          const float exit =
              std::min(cells->cell_exit(rays[l].origin, inv_dir[l], c), t_exit[l]);
          if (stats != nullptr) {
            ++stats->cells_visited;
          }
          const ValueRange range = cells->range(c);
          if (tf.max_opacity(range.min, range.max) <= 0.0f) {
            const std::uint64_t next =
                detail::skip_samples_past(ns[l], exit, t_enter[l], step);
            if (stats != nullptr) {
              stats->samples_skipped += next - ns[l];
              ++stats->cells_skipped;
            }
            ns[l] = next;
          } else {
            in_run[l] = true;
            run_exit[l] = exit;
            break;
          }
        }
      }
      if (live == 0) {
        break;
      }
      std::array<float, K> ts{};
      for (int l = 0; l < K; ++l) {
        if (((live >> l) & 1u) != 0) {
          ts[l] = t_of(l, ns[l]);
        }
      }
      const unsigned keep = packet_composite_batch<K>(view, rays, tf, config, ts, live, acc);
      count(live);
      for (int l = 0; l < K; ++l) {
        if (((live >> l) & 1u) == 0) {
          continue;
        }
        ++ns[l];
        if (((keep >> l) & 1u) == 0) {
          live &= ~(1u << l);
        } else if (t_of(l, ns[l]) > run_exit[l]) {
          in_run[l] = false;
        }
      }
    }
  }
  const auto rr = acc.r.to_array();
  const auto gg = acc.g.to_array();
  const auto bb = acc.b.to_array();
  const auto aa = acc.a.to_array();
  for (int l = 0; l < K; ++l) {
    out[l] = Rgba{rr[l], gg[l], bb[l], aa[l]};
  }
}

/// Packet form of render_tile: K-pixel runs along each row share a packet;
/// the (tile_width mod K) remainder falls back to scalar trace_ray, which
/// is bit-identical by the contract above.
template <int K, core::ReadView3D View>
void render_tile_packets(const View& view, const Camera& camera, const TransferFunction& tf,
                         const RenderConfig& config, Image& image, const Tile& tile,
                         const MacrocellGrid* cells, RayStats* stats) {
  std::array<Ray, K> rays;
  std::array<Rgba, K> colors;
  for (std::uint32_t y = tile.y0; y < tile.y1; ++y) {
    std::uint32_t x = tile.x0;
    for (; x + K <= tile.x1; x += K) {
      for (int l = 0; l < K; ++l) {
        rays[l] = camera.ray_for_pixel(x + static_cast<std::uint32_t>(l), y, image.width(),
                                       image.height());
      }
      trace_ray_packet<K>(view, rays, tf, config, cells, stats, colors);
      for (int l = 0; l < K; ++l) {
        image.at(x + static_cast<std::uint32_t>(l), y) = colors[l];
      }
    }
    for (; x < tile.x1; ++x) {
      const Ray ray = camera.ray_for_pixel(x, y, image.width(), image.height());
      image.at(x, y) = trace_ray(view, ray, tf, config, cells, stats);
    }
  }
}

}  // namespace sfcvis::render::packet_detail
