// Minimal 3-vector math for the raycaster. Float precision throughout: the
// renderer works in voxel coordinates where float is ample up to 2^21 axes.
#pragma once

#include <cmath>

namespace sfcvis::render {

struct Vec3 {
  float x = 0, y = 0, z = 0;

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) noexcept {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) noexcept {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr Vec3 operator*(Vec3 a, float s) noexcept {
    return {a.x * s, a.y * s, a.z * s};
  }
  friend constexpr Vec3 operator*(float s, Vec3 a) noexcept { return a * s; }
  friend constexpr Vec3 operator-(Vec3 a) noexcept { return {-a.x, -a.y, -a.z}; }
  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;
};

[[nodiscard]] constexpr float dot(Vec3 a, Vec3 b) noexcept {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

[[nodiscard]] constexpr Vec3 cross(Vec3 a, Vec3 b) noexcept {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

[[nodiscard]] inline float length(Vec3 v) noexcept { return std::sqrt(dot(v, v)); }

[[nodiscard]] inline Vec3 normalized(Vec3 v) noexcept {
  const float len = length(v);
  return len > 0.0f ? v * (1.0f / len) : Vec3{};
}

/// A ray: origin plus unit direction.
struct Ray {
  Vec3 origin;
  Vec3 dir;

  [[nodiscard]] constexpr Vec3 at(float t) const noexcept { return origin + dir * t; }
};

}  // namespace sfcvis::render
