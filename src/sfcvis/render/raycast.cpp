#include "sfcvis/render/raycast.hpp"

#include <algorithm>
#include <limits>

namespace sfcvis::render {

std::optional<std::pair<float, float>> intersect_box(const Ray& ray, Vec3 lo,
                                                     Vec3 hi) noexcept {
  float t0 = 0.0f;  // clip to the forward half of the ray
  float t1 = std::numeric_limits<float>::max();
  const float o[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
  const float d[3] = {ray.dir.x, ray.dir.y, ray.dir.z};
  const float lov[3] = {lo.x, lo.y, lo.z};
  const float hiv[3] = {hi.x, hi.y, hi.z};
  for (int axis = 0; axis < 3; ++axis) {
    if (d[axis] == 0.0f) {
      if (o[axis] < lov[axis] || o[axis] > hiv[axis]) {
        return std::nullopt;
      }
      continue;
    }
    const float inv = 1.0f / d[axis];
    float ta = (lov[axis] - o[axis]) * inv;
    float tb = (hiv[axis] - o[axis]) * inv;
    if (ta > tb) {
      std::swap(ta, tb);
    }
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) {
      return std::nullopt;
    }
  }
  return std::make_pair(t0, t1);
}

}  // namespace sfcvis::render
