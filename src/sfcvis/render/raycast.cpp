#include "sfcvis/render/raycast.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace sfcvis::render {

void validate_packet_size(std::uint32_t packet_size) {
  if (packet_size != 1 && packet_size != 4 && packet_size != 8) {
    throw std::invalid_argument("RenderConfig::packet_size must be 1, 4 or 8 (got " +
                                std::to_string(packet_size) + ")");
  }
}

std::optional<std::pair<float, float>> intersect_box(const Ray& ray, Vec3 lo,
                                                     Vec3 hi) noexcept {
  float t0 = 0.0f;  // clip to the forward half of the ray
  float t1 = std::numeric_limits<float>::max();
  const float o[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
  const float d[3] = {ray.dir.x, ray.dir.y, ray.dir.z};
  const float lov[3] = {lo.x, lo.y, lo.z};
  const float hiv[3] = {hi.x, hi.y, hi.z};
  for (int axis = 0; axis < 3; ++axis) {
    if (d[axis] == 0.0f) {
      if (o[axis] < lov[axis] || o[axis] > hiv[axis]) {
        return std::nullopt;
      }
      continue;
    }
    const float inv = 1.0f / d[axis];
    float ta = (lov[axis] - o[axis]) * inv;
    float tb = (hiv[axis] - o[axis]) * inv;
    if (ta > tb) {
      std::swap(ta, tb);
    }
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) {
      return std::nullopt;
    }
  }
  return std::make_pair(t0, t1);
}

namespace detail {

// Out of line on purpose — see the header: one compiled body means the
// scalar and packet traversals see identical FP-contraction choices.
float sample_param(float t_enter, std::uint64_t n, float step) noexcept {
  return t_enter + static_cast<float>(n) * step;
}

Vec3 sample_position(const Ray& ray, float t) noexcept { return ray.at(t); }

float headlight_scale(const Vec3& normal, const Vec3& dir, float ambient) noexcept {
  const float len = length(normal);
  if (len <= 1e-6f) {
    return 1.0f;
  }
  const float diffuse = std::abs(dot(normal, dir)) / len;
  return ambient + (1.0f - ambient) * diffuse;
}

}  // namespace detail

}  // namespace sfcvis::render
