#include "sfcvis/render/macrocell.hpp"

#include <stdexcept>

namespace sfcvis::render {

core::Extents3D macrocell_extents(const core::Extents3D& volume, std::uint32_t block) {
  if (block == 0) {
    throw std::invalid_argument("MacrocellGrid: block size must be nonzero");
  }
  core::validate_extents(volume);
  return core::Extents3D{(volume.nx + block - 1) / block, (volume.ny + block - 1) / block,
                         (volume.nz + block - 1) / block};
}

}  // namespace sfcvis::render
