#include "sfcvis/render/transfer.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace sfcvis::render {

namespace {

/// Bin count of the alpha-envelope table. 256 bins over the control-point
/// range keep the transparency classification tight (a macrocell is only
/// misclassified as non-transparent when the envelope rises within two
/// bins of its value range) at a few KB per transfer function.
constexpr std::size_t kEnvelopeBins = 256;

}  // namespace

TransferFunction::TransferFunction(std::vector<TransferPoint> points)
    : points_(std::move(points)) {
  if (points_.empty()) {
    throw std::invalid_argument("TransferFunction: at least one control point required");
  }
  if (!std::is_sorted(points_.begin(), points_.end(),
                      [](const auto& a, const auto& b) { return a.value < b.value; })) {
    throw std::invalid_argument("TransferFunction: control points must be sorted by value");
  }
  build_opacity_envelope();
}

Rgba TransferFunction::sample(float value) const noexcept {
  if (value <= points_.front().value) {
    return points_.front().color;
  }
  if (value >= points_.back().value) {
    return points_.back().color;
  }
  // Find the bracketing segment (few points: linear scan beats binary
  // search on branch prediction).
  std::size_t hi = 1;
  while (points_[hi].value < value) {
    ++hi;
  }
  const auto& a = points_[hi - 1];
  const auto& b = points_[hi];
  const float t = (value - a.value) / (b.value - a.value);
  return Rgba{a.color.r + t * (b.color.r - a.color.r),
              a.color.g + t * (b.color.g - a.color.g),
              a.color.b + t * (b.color.b - a.color.b),
              a.color.a + t * (b.color.a - a.color.a)};
}

float TransferFunction::alpha_at(float value) const noexcept {
  if (value <= points_.front().value) {
    return points_.front().color.a;
  }
  if (value >= points_.back().value) {
    return points_.back().color.a;
  }
  std::size_t hi = 1;
  while (points_[hi].value < value) {
    ++hi;
  }
  const auto& a = points_[hi - 1];
  const auto& b = points_[hi];
  const float t = (value - a.value) / (b.value - a.value);
  return a.color.a + t * (b.color.a - a.color.a);
}

void TransferFunction::build_opacity_envelope() {
  env_lo_ = points_.front().value;
  const float span = points_.back().value - env_lo_;
  env_.clear();
  if (span <= 0.0f) {
    // Degenerate range: one bin holding the max alpha of all (coincident)
    // control points.
    env_inv_width_ = 0.0f;
    float m = points_.front().color.a;
    for (const auto& p : points_) {
      m = std::max(m, p.color.a);
    }
    env_.push_back({m});
    return;
  }
  const float width = span / static_cast<float>(kEnvelopeBins);
  env_inv_width_ = static_cast<float>(kEnvelopeBins) / span;

  // Level 0: exact piecewise-linear max per bin — the alpha envelope is
  // piecewise linear, so the max over a bin is attained at a bin edge or
  // at a control point inside the bin.
  std::vector<float> bins(kEnvelopeBins);
  for (std::size_t b = 0; b < kEnvelopeBins; ++b) {
    const float lo = env_lo_ + static_cast<float>(b) * width;
    const float hi = (b + 1 == kEnvelopeBins) ? points_.back().value : lo + width;
    bins[b] = std::max(alpha_at(lo), alpha_at(hi));
  }
  for (const auto& p : points_) {
    const auto b = static_cast<std::size_t>(std::clamp(
        (p.value - env_lo_) * env_inv_width_, 0.0f, static_cast<float>(kEnvelopeBins - 1)));
    bins[b] = std::max(bins[b], p.color.a);
  }
  env_.push_back(std::move(bins));

  // Sparse max table: env_[l][b] = max over bins [b, b + 2^l).
  for (std::size_t len = 2; len <= kEnvelopeBins; len *= 2) {
    const auto& prev = env_.back();
    std::vector<float> level(kEnvelopeBins - len + 1);
    for (std::size_t b = 0; b + len <= kEnvelopeBins; ++b) {
      level[b] = std::max(prev[b], prev[b + len / 2]);
    }
    env_.push_back(std::move(level));
  }
}

float TransferFunction::max_opacity(float lo, float hi) const noexcept {
  if (lo > hi) {
    std::swap(lo, hi);
  }
  if (env_inv_width_ == 0.0f) {
    return env_[0][0];
  }
  const auto last = static_cast<float>(kEnvelopeBins - 1);
  // Map to bin indices with one guard bin each side: the guard absorbs the
  // float rounding of the value-to-bin mapping, keeping the bound
  // conservative. Out-of-range values clamp, matching sample().
  const float fb0 = std::floor((lo - env_lo_) * env_inv_width_) - 1.0f;
  const float fb1 = std::floor((hi - env_lo_) * env_inv_width_) + 1.0f;
  const auto b0 = static_cast<std::size_t>(std::clamp(fb0, 0.0f, last));
  const auto b1 = static_cast<std::size_t>(std::clamp(fb1, 0.0f, last));
  // O(1) range max: two power-of-two windows covering [b0, b1].
  const std::size_t len = b1 - b0 + 1;
  const auto level = static_cast<std::size_t>(std::bit_width(len) - 1);
  return std::max(env_[level][b0], env_[level][b1 + 1 - (std::size_t{1} << level)]);
}

TransferFunction TransferFunction::flame() {
  return TransferFunction({
      {0.00f, {0.00f, 0.00f, 0.05f, 0.000f}},  // cold oxidizer: invisible
      {0.15f, {0.05f, 0.02f, 0.30f, 0.000f}},  // fuel haze: tinted, alpha 0
      {0.40f, {0.80f, 0.25f, 0.05f, 0.030f}},  // deep orange
      {0.70f, {1.00f, 0.60f, 0.10f, 0.120f}},  // bright flame sheet
      {1.00f, {1.00f, 0.95f, 0.80f, 0.250f}},  // white-hot core
  });
}

TransferFunction TransferFunction::grayscale(float min_value, float max_value) {
  return TransferFunction({
      {min_value, {0.0f, 0.0f, 0.0f, 0.0f}},
      {max_value, {1.0f, 1.0f, 1.0f, 0.08f}},
  });
}

}  // namespace sfcvis::render
