#include "sfcvis/render/transfer.hpp"

#include <algorithm>
#include <stdexcept>

namespace sfcvis::render {

TransferFunction::TransferFunction(std::vector<TransferPoint> points)
    : points_(std::move(points)) {
  if (points_.empty()) {
    throw std::invalid_argument("TransferFunction: at least one control point required");
  }
  if (!std::is_sorted(points_.begin(), points_.end(),
                      [](const auto& a, const auto& b) { return a.value < b.value; })) {
    throw std::invalid_argument("TransferFunction: control points must be sorted by value");
  }
}

Rgba TransferFunction::sample(float value) const noexcept {
  if (value <= points_.front().value) {
    return points_.front().color;
  }
  if (value >= points_.back().value) {
    return points_.back().color;
  }
  // Find the bracketing segment (few points: linear scan beats binary
  // search on branch prediction).
  std::size_t hi = 1;
  while (points_[hi].value < value) {
    ++hi;
  }
  const auto& a = points_[hi - 1];
  const auto& b = points_[hi];
  const float t = (value - a.value) / (b.value - a.value);
  return Rgba{a.color.r + t * (b.color.r - a.color.r),
              a.color.g + t * (b.color.g - a.color.g),
              a.color.b + t * (b.color.b - a.color.b),
              a.color.a + t * (b.color.a - a.color.a)};
}

TransferFunction TransferFunction::flame() {
  return TransferFunction({
      {0.00f, {0.00f, 0.00f, 0.05f, 0.000f}},  // cold oxidizer: invisible
      {0.15f, {0.05f, 0.02f, 0.30f, 0.004f}},  // faint blue fuel haze
      {0.40f, {0.80f, 0.25f, 0.05f, 0.030f}},  // deep orange
      {0.70f, {1.00f, 0.60f, 0.10f, 0.120f}},  // bright flame sheet
      {1.00f, {1.00f, 0.95f, 0.80f, 0.250f}},  // white-hot core
  });
}

TransferFunction TransferFunction::grayscale(float min_value, float max_value) {
  return TransferFunction({
      {min_value, {0.0f, 0.0f, 0.0f, 0.0f}},
      {max_value, {1.0f, 1.0f, 1.0f, 0.08f}},
  });
}

}  // namespace sfcvis::render
