// Transfer function mapping scalar data values to color and opacity —
// the standard volume-rendering classification stage (Levoy 1988; Drebin
// et al. 1988, both cited by the paper).
#pragma once

#include <vector>

#include "sfcvis/render/image.hpp"

namespace sfcvis::render {

/// One control point of a piecewise-linear transfer function.
struct TransferPoint {
  float value = 0;  ///< scalar data value
  Rgba color;       ///< color + opacity at that value (straight alpha)
};

/// Piecewise-linear color/opacity map over scalar values.
class TransferFunction {
 public:
  /// Control points must be sorted by value (validated; throws
  /// std::invalid_argument otherwise). At least one point is required.
  explicit TransferFunction(std::vector<TransferPoint> points);

  /// Linearly interpolated RGBA at `value`; clamps outside the range.
  [[nodiscard]] Rgba sample(float value) const noexcept;

  /// Flame-style map for combustion-like [0, 1] fields: transparent cold
  /// regions, glowing orange sheet, bright white core.
  [[nodiscard]] static TransferFunction flame();

  /// Grayscale map with linear opacity ramp for MRI-like data.
  [[nodiscard]] static TransferFunction grayscale(float min_value, float max_value);

  [[nodiscard]] const std::vector<TransferPoint>& points() const noexcept { return points_; }

 private:
  std::vector<TransferPoint> points_;
};

}  // namespace sfcvis::render
