// Transfer function mapping scalar data values to color and opacity —
// the standard volume-rendering classification stage (Levoy 1988; Drebin
// et al. 1988, both cited by the paper).
#pragma once

#include <vector>

#include "sfcvis/render/image.hpp"

namespace sfcvis::render {

/// One control point of a piecewise-linear transfer function.
struct TransferPoint {
  float value = 0;  ///< scalar data value
  Rgba color;       ///< color + opacity at that value (straight alpha)
};

/// Piecewise-linear color/opacity map over scalar values.
class TransferFunction {
 public:
  /// Control points must be sorted by value (validated; throws
  /// std::invalid_argument otherwise). At least one point is required.
  explicit TransferFunction(std::vector<TransferPoint> points);

  /// Linearly interpolated RGBA at `value`; clamps outside the range.
  [[nodiscard]] Rgba sample(float value) const noexcept;

  /// Conservative upper bound on the opacity the transfer function assigns
  /// to any value in [lo, hi] (endpoints inclusive, order-insensitive,
  /// clamped to the control-point range like sample()).
  ///
  /// Backed by a binned piecewise-max table over the control-point alpha
  /// envelope plus a sparse max table, so the query is O(1) — it is the
  /// macrocell transparency test on the renderer's per-ray hot path. The
  /// bound is exact up to one guard bin on each side of the interval:
  /// never smaller than the true maximum, and never larger than the
  /// maximum over the interval widened by two bins. In particular it
  /// returns exactly 0 iff the alpha envelope is identically 0 on the
  /// covered bins, which is what makes "max_opacity(min, max) <= 0" a safe
  /// empty-space classification for macrocells.
  [[nodiscard]] float max_opacity(float lo, float hi) const noexcept;

  /// Flame-style map for combustion-like [0, 1] fields: fully transparent
  /// cold regions (alpha exactly 0 below the fuel-haze threshold, so
  /// empty-space skipping can classify them), glowing orange sheet, bright
  /// white core.
  [[nodiscard]] static TransferFunction flame();

  /// Grayscale map with linear opacity ramp for MRI-like data.
  [[nodiscard]] static TransferFunction grayscale(float min_value, float max_value);

  [[nodiscard]] const std::vector<TransferPoint>& points() const noexcept { return points_; }

 private:
  void build_opacity_envelope();
  [[nodiscard]] float alpha_at(float value) const noexcept;

  std::vector<TransferPoint> points_;

  // Binned alpha envelope: env_[level][b] is the max alpha over bins
  // [b, b + 2^level); level 0 holds the per-bin piecewise maxima.
  // Sparse-table layout gives O(1) range-max queries.
  std::vector<std::vector<float>> env_;
  float env_lo_ = 0.0f;        ///< value of the left edge of bin 0
  float env_inv_width_ = 0.0f; ///< 1 / bin width (0 for a degenerate range)
};

}  // namespace sfcvis::render
