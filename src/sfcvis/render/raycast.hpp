// Raycasting volume renderer (paper Sec. III-B).
//
// Image-order method: for every output pixel a ray is cast through the
// volume; scalar samples taken at regular intervals along the ray are
// classified by the transfer function and composited front to back.
// Sampling is trilinear, so every sample reads the 8 surrounding voxels —
// through a core::ReadView3D, which makes the renderer layout-transparent
// and traceable, exactly like the bilateral filter.
//
// Parallelism: the output image is decomposed into tiles (32x32 by
// default) consumed by a dynamic worker pool — the strategy the paper
// reports as best-performing and as the reason for using raw threads.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/traced_view.hpp"
#include "sfcvis/memsim/hierarchy.hpp"
#include "sfcvis/render/camera.hpp"
#include "sfcvis/render/image.hpp"
#include "sfcvis/render/transfer.hpp"
#include "sfcvis/threads/pool.hpp"
#include "sfcvis/threads/schedulers.hpp"

namespace sfcvis::render {

/// Integration mode along the ray.
enum class RenderMode : std::uint8_t {
  kComposite,  ///< front-to-back "over" compositing (the paper's renderer)
  kMip,        ///< maximum-intensity projection
};

/// Renderer configuration (camera and transfer function are passed
/// separately — they are per-experiment state, this is per-run mechanics).
struct RenderConfig {
  std::uint32_t image_width = 256;
  std::uint32_t image_height = 256;
  std::uint32_t tile_size = 32;    ///< paper's fixed choice; see abl_tile_size
  float step = 0.5f;               ///< sample spacing along the ray, in voxels
  float early_termination = 0.98f;  ///< stop compositing past this opacity
  RenderMode mode = RenderMode::kComposite;
  /// Gradient (headlight Lambertian) shading: adds six trilinear gradient
  /// taps per sample — a denser semi-structured access pattern.
  bool shade = false;
  float ambient = 0.25f;  ///< ambient light floor when shading
};

/// Slab-method ray/axis-aligned-box intersection; returns the [t_enter,
/// t_exit] parameter interval clipped to t >= 0, or nullopt on a miss.
[[nodiscard]] std::optional<std::pair<float, float>> intersect_box(const Ray& ray, Vec3 lo,
                                                                   Vec3 hi) noexcept;

/// Trilinear reconstruction at continuous voxel position `p` (voxel-center
/// convention: sample n lies at coordinate n). Out-of-range lattice
/// neighbours clamp to the border.
template <core::ReadView3D View>
[[nodiscard]] float sample_trilinear(const View& view, Vec3 p) {
  const float fx = std::floor(p.x), fy = std::floor(p.y), fz = std::floor(p.z);
  const auto i = static_cast<std::int64_t>(fx);
  const auto j = static_cast<std::int64_t>(fy);
  const auto k = static_cast<std::int64_t>(fz);
  const float tx = p.x - fx, ty = p.y - fy, tz = p.z - fz;

  auto lerp = [](float a, float b, float t) { return a + (b - a) * t; };
  const float c000 = view.at_clamped(i, j, k);
  const float c100 = view.at_clamped(i + 1, j, k);
  const float c010 = view.at_clamped(i, j + 1, k);
  const float c110 = view.at_clamped(i + 1, j + 1, k);
  const float c001 = view.at_clamped(i, j, k + 1);
  const float c101 = view.at_clamped(i + 1, j, k + 1);
  const float c011 = view.at_clamped(i, j + 1, k + 1);
  const float c111 = view.at_clamped(i + 1, j + 1, k + 1);
  const float c00 = lerp(c000, c100, tx);
  const float c10 = lerp(c010, c110, tx);
  const float c01 = lerp(c001, c101, tx);
  const float c11 = lerp(c011, c111, tx);
  return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz);
}

/// Central-difference gradient of the trilinearly reconstructed field at
/// continuous position `p` — the shading normal source (Levoy 1988).
template <core::ReadView3D View>
[[nodiscard]] Vec3 gradient_trilinear(const View& view, Vec3 p) {
  return Vec3{
      0.5f * (sample_trilinear(view, Vec3{p.x + 1, p.y, p.z}) -
              sample_trilinear(view, Vec3{p.x - 1, p.y, p.z})),
      0.5f * (sample_trilinear(view, Vec3{p.x, p.y + 1, p.z}) -
              sample_trilinear(view, Vec3{p.x, p.y - 1, p.z})),
      0.5f * (sample_trilinear(view, Vec3{p.x, p.y, p.z + 1}) -
              sample_trilinear(view, Vec3{p.x, p.y, p.z - 1})),
  };
}

/// Casts one ray. kComposite: classify each sample with the transfer
/// function and composite front to back with opacity correction for the
/// step size (optionally headlight-shaded by the local gradient).
/// kMip: classify the maximum sample along the ray.
template <core::ReadView3D View>
[[nodiscard]] Rgba trace_ray(const View& view, const Ray& ray, const TransferFunction& tf,
                             const RenderConfig& config) {
  const auto& e = view.extents();
  const Vec3 lo{-0.5f, -0.5f, -0.5f};
  const Vec3 hi{static_cast<float>(e.nx) - 0.5f, static_cast<float>(e.ny) - 0.5f,
                static_cast<float>(e.nz) - 0.5f};
  const auto span = intersect_box(ray, lo, hi);
  Rgba out;
  if (!span) {
    return out;
  }
  if (config.mode == RenderMode::kMip) {
    float peak = -std::numeric_limits<float>::max();
    for (float t = span->first; t <= span->second; t += config.step) {
      peak = std::max(peak, sample_trilinear(view, ray.at(t)));
    }
    out = tf.sample(peak);
    // MIP shows the classified peak directly: premultiply and fill alpha.
    out.r *= out.a;
    out.g *= out.a;
    out.b *= out.a;
    return out;
  }
  for (float t = span->first; t <= span->second; t += config.step) {
    const Vec3 position = ray.at(t);
    const float value = sample_trilinear(view, position);
    Rgba sample = tf.sample(value);
    if (config.shade && sample.a > 0.0f) {
      const Vec3 normal = gradient_trilinear(view, position);
      const float len = length(normal);
      if (len > 1e-6f) {
        // Headlight Lambertian: light arrives along the viewing ray.
        const float diffuse = std::abs(dot(normal, ray.dir)) / len;
        const float lit = config.ambient + (1.0f - config.ambient) * diffuse;
        sample.r *= lit;
        sample.g *= lit;
        sample.b *= lit;
      }
    }
    // Opacity correction: transfer-function alphas are per unit length.
    sample.a = 1.0f - std::pow(1.0f - sample.a, config.step);
    out.composite_under(sample);
    if (out.a >= config.early_termination) {
      break;
    }
  }
  return out;
}

/// Renders one image tile.
template <core::ReadView3D View>
void render_tile(const View& view, const Camera& camera, const TransferFunction& tf,
                 const RenderConfig& config, Image& image, const Tile& tile) {
  for (std::uint32_t y = tile.y0; y < tile.y1; ++y) {
    for (std::uint32_t x = tile.x0; x < tile.x1; ++x) {
      const Ray ray = camera.ray_for_pixel(x, y, image.width(), image.height());
      image.at(x, y) = trace_ray(view, ray, tf, config);
    }
  }
}

/// Shared-memory parallel render: tiles consumed by the pool's dynamic
/// worker queue (the paper's best work-assignment strategy).
template <core::Layout3D L>
[[nodiscard]] Image raycast_parallel(const core::Grid3D<float, L>& volume,
                                     const Camera& camera, const TransferFunction& tf,
                                     const RenderConfig& config, threads::Pool& pool) {
  Image image(config.image_width, config.image_height);
  const core::PlainView<float, L> view(volume);
  const TileDecomposition tiles(config.image_width, config.image_height, config.tile_size);
  threads::parallel_for_dynamic(pool, tiles.count(), [&](std::size_t t, unsigned) {
    render_tile(view, camera, tf, config, image, tiles.bounds(t));
  });
  return image;
}

/// Counter-collection render: replays the access streams of
/// hierarchy.num_threads() logical threads (tiles assigned round-robin,
/// interleaved deterministically) through the modeled memory system.
/// `max_items` caps the replay at a prefix of the tile schedule, bounding
/// simulation cost; both layouts replay the identical pixel set.
template <core::Layout3D L>
[[nodiscard]] Image raycast_traced(const core::Grid3D<float, L>& volume,
                                   const Camera& camera, const TransferFunction& tf,
                                   const RenderConfig& config, memsim::Hierarchy& hierarchy,
                                   std::size_t max_items = SIZE_MAX) {
  Image image(config.image_width, config.image_height);
  const TileDecomposition tiles(config.image_width, config.image_height, config.tile_size);
  const threads::StaticRoundRobin rr(tiles.count(), hierarchy.num_threads());
  std::vector<memsim::ThreadSink> sinks;
  sinks.reserve(hierarchy.num_threads());
  for (unsigned t = 0; t < hierarchy.num_threads(); ++t) {
    sinks.push_back(hierarchy.sink(t));
  }
  std::size_t done = 0;
  for (const auto& assignment : rr.replay_order()) {
    if (done++ >= max_items) {
      break;
    }
    const core::TracedView<float, L, memsim::ThreadSink> view(volume, sinks[assignment.tid]);
    render_tile(view, camera, tf, config, image, tiles.bounds(assignment.item));
  }
  return image;
}

}  // namespace sfcvis::render
