// Raycasting volume renderer (paper Sec. III-B).
//
// Image-order method: for every output pixel a ray is cast through the
// volume; scalar samples taken at regular intervals along the ray are
// classified by the transfer function and composited front to back.
// Sampling is trilinear, so every sample reads the 8 surrounding voxels —
// through a core::ReadView3D, which makes the renderer layout-transparent
// and traceable, exactly like the bilateral filter.
//
// Empty-space skipping: with config.use_macrocells the ray integration
// runs as a 3D DDA over a MacrocellGrid (Amanatides & Woo 1987): the ray
// advances macrocell-by-macrocell, and every cell whose [min, max] value
// range classifies to zero opacity (TransferFunction::max_opacity) is
// skipped in O(1) instead of being sampled. MIP rays additionally skip
// cells whose max cannot raise the current peak. Sample positions are the
// same arithmetic expression (t_enter + n*step) on the dense and the
// accelerated path, and skipped samples contribute exactly zero to the
// composite, so accelerated images are bit-identical to dense ones.
//
// Parallelism: the output image is decomposed into tiles (32x32 by
// default) consumed by a dynamic worker pool — the strategy the paper
// reports as best-performing and as the reason for using raw threads.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/traced_view.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/memsim/hierarchy.hpp"
#include "sfcvis/render/camera.hpp"
#include "sfcvis/render/image.hpp"
#include "sfcvis/render/macrocell.hpp"
#include "sfcvis/render/transfer.hpp"
#include "sfcvis/threads/schedulers.hpp"
#include "sfcvis/trace/trace.hpp"

namespace sfcvis::render {

/// Integration mode along the ray.
enum class RenderMode : std::uint8_t {
  kComposite,  ///< front-to-back "over" compositing (the paper's renderer)
  kMip,        ///< maximum-intensity projection
};

/// Renderer configuration (camera and transfer function are passed
/// separately — they are per-experiment state, this is per-run mechanics).
struct RenderConfig {
  std::uint32_t image_width = 256;
  std::uint32_t image_height = 256;
  std::uint32_t tile_size = 32;    ///< paper's fixed choice; see abl_tile_size
  float step = 0.5f;               ///< sample spacing along the ray, in voxels
  float early_termination = 0.98f;  ///< stop compositing past this opacity
  RenderMode mode = RenderMode::kComposite;
  /// Gradient (headlight Lambertian) shading: adds six trilinear gradient
  /// taps per sample — a denser semi-structured access pattern.
  bool shade = false;
  float ambient = 0.25f;  ///< ambient light floor when shading
  /// Empty-space skipping over a macrocell min-max grid (see macrocell.hpp
  /// and bench/abl_empty_space). Off by default so existing experiments
  /// keep their exact access streams; images are identical either way.
  bool use_macrocells = false;
  std::uint32_t macrocell_size = 8;  ///< macrocell edge length, in voxels
  /// Rays traversed together per tile row: 1 (scalar trace_ray), 4 or 8
  /// (explicit-SIMD packets, see raycast_packet.hpp). Packet renders are
  /// bit-identical to scalar ones — per-lane control flow and sample
  /// positions use the scalar expressions, only the reconstruction /
  /// compositing arithmetic is packed (verify/ fuzzes the equivalence).
  /// Other values throw std::invalid_argument from the render drivers.
  std::uint32_t packet_size = 1;
};

/// Throws std::invalid_argument unless `packet_size` is 1, 4 or 8.
void validate_packet_size(std::uint32_t packet_size);

/// Per-ray traversal statistics (skip-rate accounting; plain counters so
/// the hot path stays atomic-free). The parallel drivers keep one of
/// these per tile on the worker's stack and fold it into the trace
/// metrics registry — per-thread accumulate, merge at snapshot time — so
/// render-wide totals involve no shared mutable state at all.
struct RayStats {
  std::uint64_t samples_taken = 0;    ///< samples evaluated (trilinear taps done)
  std::uint64_t samples_skipped = 0;  ///< samples proven irrelevant and skipped
  std::uint64_t cells_visited = 0;    ///< macrocells classified
  std::uint64_t cells_skipped = 0;    ///< macrocells skipped whole

  void add(const RayStats& o) noexcept {
    samples_taken += o.samples_taken;
    samples_skipped += o.samples_skipped;
    cells_visited += o.cells_visited;
    cells_skipped += o.cells_skipped;
  }
};

namespace detail {

/// Folds `tiles` tiles' worth of stats into the calling thread's metric
/// slots under the "raycast.*" names. The ids are resolved once per
/// process.
inline void fold_ray_stats(const RayStats& s, std::uint64_t tiles = 1) {
  auto& tracer = trace::Tracer::instance();
  static const trace::CounterId k_taken = tracer.counter_id("raycast.samples_taken");
  static const trace::CounterId k_skipped = tracer.counter_id("raycast.samples_skipped");
  static const trace::CounterId k_visited = tracer.counter_id("raycast.cells_visited");
  static const trace::CounterId k_cells = tracer.counter_id("raycast.cells_skipped");
  static const trace::CounterId k_tiles = tracer.counter_id("raycast.tiles");
  tracer.add(k_taken, s.samples_taken);
  tracer.add(k_skipped, s.samples_skipped);
  tracer.add(k_visited, s.cells_visited);
  tracer.add(k_cells, s.cells_skipped);
  tracer.add(k_tiles, tiles);
}

}  // namespace detail

/// Fraction of potential samples the macrocell traversal skipped, read
/// from a metrics snapshot taken after a collect_stats render.
[[nodiscard]] inline double skip_rate(const trace::MetricsSnapshot& metrics) noexcept {
  const auto taken = static_cast<double>(metrics.total("raycast.samples_taken"));
  const auto skipped = static_cast<double>(metrics.total("raycast.samples_skipped"));
  const double total = taken + skipped;
  return total > 0.0 ? skipped / total : 0.0;
}

/// Slab-method ray/axis-aligned-box intersection; returns the [t_enter,
/// t_exit] parameter interval clipped to t >= 0, or nullopt on a miss.
[[nodiscard]] std::optional<std::pair<float, float>> intersect_box(const Ray& ray, Vec3 lo,
                                                                   Vec3 hi) noexcept;

/// Trilinear reconstruction at continuous voxel position `p` (voxel-center
/// convention: sample n lies at coordinate n). Out-of-range lattice
/// neighbours clamp to the border.
template <core::ReadView3D View>
[[nodiscard]] float sample_trilinear(const View& view, Vec3 p) {
  const float fx = std::floor(p.x), fy = std::floor(p.y), fz = std::floor(p.z);
  const auto i = static_cast<std::int64_t>(fx);
  const auto j = static_cast<std::int64_t>(fy);
  const auto k = static_cast<std::int64_t>(fz);
  const float tx = p.x - fx, ty = p.y - fy, tz = p.z - fz;

  auto lerp = [](float a, float b, float t) { return a + (b - a) * t; };
  const float c000 = view.at_clamped(i, j, k);
  const float c100 = view.at_clamped(i + 1, j, k);
  const float c010 = view.at_clamped(i, j + 1, k);
  const float c110 = view.at_clamped(i + 1, j + 1, k);
  const float c001 = view.at_clamped(i, j, k + 1);
  const float c101 = view.at_clamped(i + 1, j, k + 1);
  const float c011 = view.at_clamped(i, j + 1, k + 1);
  const float c111 = view.at_clamped(i + 1, j + 1, k + 1);
  const float c00 = lerp(c000, c100, tx);
  const float c10 = lerp(c010, c110, tx);
  const float c01 = lerp(c001, c101, tx);
  const float c11 = lerp(c011, c111, tx);
  return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz);
}

/// Central-difference gradient of the trilinearly reconstructed field at
/// continuous position `p` — the shading normal source (Levoy 1988).
template <core::ReadView3D View>
[[nodiscard]] Vec3 gradient_trilinear(const View& view, Vec3 p) {
  return Vec3{
      0.5f * (sample_trilinear(view, Vec3{p.x + 1, p.y, p.z}) -
              sample_trilinear(view, Vec3{p.x - 1, p.y, p.z})),
      0.5f * (sample_trilinear(view, Vec3{p.x, p.y + 1, p.z}) -
              sample_trilinear(view, Vec3{p.x, p.y - 1, p.z})),
      0.5f * (sample_trilinear(view, Vec3{p.x, p.y, p.z + 1}) -
              sample_trilinear(view, Vec3{p.x, p.y, p.z - 1})),
  };
}

namespace detail {

/// First sample index m > n whose parameter t_enter + m*step lies strictly
/// past `limit`, with a float fixup so no sample past the limit is ever
/// skipped; always returns at least n + 1 so the traversal makes progress.
[[nodiscard]] inline std::uint64_t skip_samples_past(std::uint64_t n, float limit,
                                                     float t_enter, float step) noexcept {
  std::uint64_t m = n + 1;
  if (limit > t_enter) {
    const float f = (limit - t_enter) / step;
    if (f < 9.0e15f) {  // guard the float->integer cast
      const auto cand = static_cast<std::uint64_t>(f) + 1;
      m = std::max(m, cand);
      while (m > n + 1 && t_enter + static_cast<float>(m - 1) * step > limit) {
        --m;
      }
    }
  }
  return m;
}

/// Parameter and world position of sample n, compiled exactly once (out
/// of line in raycast.cpp): with -ffp-contract=fast the compiler may fuse
/// t_enter + n*step (and ray.at's origin + dir*t) into an FMA in one
/// inlining context and not in another, and the scalar and packet
/// traversals must agree bitwise on where a ray samples. One definition
/// means one contraction choice for every caller.
[[nodiscard]] float sample_param(float t_enter, std::uint64_t n, float step) noexcept;
[[nodiscard]] Vec3 sample_position(const Ray& ray, float t) noexcept;

/// Headlight-Lambertian color scale for a shading normal: ambient +
/// (1 - ambient) * |cos|, or exactly 1.0f for degenerate normals (a
/// multiply by 1.0f is a bitwise no-op, so callers can apply it
/// unconditionally). Out of line for the same contraction-determinism
/// reason as sample_param.
[[nodiscard]] float headlight_scale(const Vec3& normal, const Vec3& dir,
                                    float ambient) noexcept;

}  // namespace detail

/// Casts one ray. kComposite: classify each sample with the transfer
/// function and composite front to back with opacity correction for the
/// step size (optionally headlight-shaded by the local gradient).
/// kMip: classify the maximum sample along the ray; at least one sample
/// (at t_enter) is always taken on a hit, so a span shorter than one step
/// still classifies a real field value, never the -FLT_MAX sentinel.
///
/// With `cells` non-null the ray walks the macrocell DDA and skips
/// provably irrelevant cells; the composited sample sequence (positions
/// and float arithmetic) is identical to the dense path.
template <core::ReadView3D View>
[[nodiscard]] Rgba trace_ray(const View& view, const Ray& ray, const TransferFunction& tf,
                             const RenderConfig& config,
                             const MacrocellGrid* cells = nullptr,
                             RayStats* stats = nullptr) {
  const auto& e = view.extents();
  const Vec3 lo{-0.5f, -0.5f, -0.5f};
  const Vec3 hi{static_cast<float>(e.nx) - 0.5f, static_cast<float>(e.ny) - 0.5f,
                static_cast<float>(e.nz) - 0.5f};
  const auto span = intersect_box(ray, lo, hi);
  Rgba out;
  if (!span) {
    return out;
  }
  const float t_enter = span->first;
  const float t_exit = span->second;
  const float step = config.step;
  // Sample n lies at t_enter + n*step — the same expression on every path,
  // which is what makes dense, macrocell and packet renders bit-identical.
  const auto t_of = [&](std::uint64_t n) {
    return detail::sample_param(t_enter, n, step);
  };

  if (config.mode == RenderMode::kMip) {
    float peak = -std::numeric_limits<float>::max();
    if (cells == nullptr) {
      // n = 0 gives t = t_enter <= t_exit: the first sample is structural.
      for (std::uint64_t n = 0;; ++n) {
        const float t = t_of(n);
        if (t > t_exit) {
          break;
        }
        peak = std::max(peak, sample_trilinear(view, detail::sample_position(ray, t)));
        if (stats != nullptr) {
          ++stats->samples_taken;
        }
      }
    } else {
      const Vec3 inv_dir{1.0f / ray.dir.x, 1.0f / ray.dir.y, 1.0f / ray.dir.z};
      std::uint64_t n = 0;
      while (true) {
        const float t = t_of(n);
        if (n != 0 && t > t_exit) {
          break;
        }
        const CellCoord c = cells->cell_of(detail::sample_position(ray, t));
        const float exit = std::min(cells->cell_exit(ray.origin, inv_dir, c), t_exit);
        if (stats != nullptr) {
          ++stats->cells_visited;
        }
        if (cells->range(c).max <= peak) {
          // No sample in this cell can raise the peak: max(peak, v) with
          // v <= peak leaves peak bit-identical, so the whole cell skips.
          const std::uint64_t next = detail::skip_samples_past(n, exit, t_enter, step);
          if (stats != nullptr) {
            stats->samples_skipped += next - n;
            ++stats->cells_skipped;
          }
          n = next;
        } else {
          do {
            peak = std::max(peak, sample_trilinear(view, detail::sample_position(ray, t_of(n))));
            if (stats != nullptr) {
              ++stats->samples_taken;
            }
            ++n;
          } while (t_of(n) <= exit);
        }
      }
    }
    out = tf.sample(peak);
    // MIP shows the classified peak directly: premultiply and fill alpha.
    out.r *= out.a;
    out.g *= out.a;
    out.b *= out.a;
    return out;
  }

  // Front-to-back compositing. Returns false once early termination hits.
  const auto composite_sample = [&](float t) {
    const Vec3 position = detail::sample_position(ray, t);
    const float value = sample_trilinear(view, position);
    Rgba sample = tf.sample(value);
    if (config.shade && sample.a > 0.0f) {
      // Headlight Lambertian: light arrives along the viewing ray.
      const Vec3 normal = gradient_trilinear(view, position);
      const float lit = detail::headlight_scale(normal, ray.dir, config.ambient);
      sample.r *= lit;
      sample.g *= lit;
      sample.b *= lit;
    }
    // Opacity correction: transfer-function alphas are per unit length.
    sample.a = 1.0f - std::pow(1.0f - sample.a, step);
    out.composite_under(sample);
    return out.a < config.early_termination;
  };

  if (cells == nullptr) {
    for (std::uint64_t n = 0;; ++n) {
      const float t = t_of(n);
      if (t > t_exit) {
        break;
      }
      const bool keep_going = composite_sample(t);
      if (stats != nullptr) {
        ++stats->samples_taken;
      }
      if (!keep_going) {
        break;
      }
    }
    return out;
  }

  const Vec3 inv_dir{1.0f / ray.dir.x, 1.0f / ray.dir.y, 1.0f / ray.dir.z};
  std::uint64_t n = 0;
  while (true) {
    const float t = t_of(n);
    if (t > t_exit) {
      break;
    }
    const CellCoord c = cells->cell_of(detail::sample_position(ray, t));
    const float exit = std::min(cells->cell_exit(ray.origin, inv_dir, c), t_exit);
    if (stats != nullptr) {
      ++stats->cells_visited;
    }
    const ValueRange range = cells->range(c);
    if (tf.max_opacity(range.min, range.max) <= 0.0f) {
      // Every sample in the cell classifies to alpha exactly 0 and would
      // composite exactly nothing: skip the cell in O(1).
      const std::uint64_t next = detail::skip_samples_past(n, exit, t_enter, step);
      if (stats != nullptr) {
        stats->samples_skipped += next - n;
        ++stats->cells_skipped;
      }
      n = next;
    } else {
      bool keep_going = true;
      do {
        keep_going = composite_sample(t_of(n));
        if (stats != nullptr) {
          ++stats->samples_taken;
        }
        ++n;
      } while (keep_going && t_of(n) <= exit);
      if (!keep_going) {
        break;
      }
    }
  }
  return out;
}

}  // namespace sfcvis::render

// Internal: packet traversal built on trace_ray's helpers (must follow
// trace_ray — the remainder pixels of a packet row reuse it).
#include "sfcvis/render/raycast_packet.hpp"  // IWYU pragma: keep

namespace sfcvis::render {

/// Renders one image tile, accumulating per-ray stats into `stats` (a
/// tile-local struct on the caller's stack — never shared across threads).
/// config.packet_size routes rows through the K-wide packet traversal.
template <core::ReadView3D View>
void render_tile(const View& view, const Camera& camera, const TransferFunction& tf,
                 const RenderConfig& config, Image& image, const Tile& tile,
                 const MacrocellGrid* cells = nullptr, RayStats* stats = nullptr) {
  if (config.packet_size == 4) {
    packet_detail::render_tile_packets<4>(view, camera, tf, config, image, tile, cells,
                                          stats);
    return;
  }
  if (config.packet_size == 8) {
    packet_detail::render_tile_packets<8>(view, camera, tf, config, image, tile, cells,
                                          stats);
    return;
  }
  for (std::uint32_t y = tile.y0; y < tile.y1; ++y) {
    for (std::uint32_t x = tile.x0; x < tile.x1; ++x) {
      const Ray ray = camera.ray_for_pixel(x, y, image.width(), image.height());
      image.at(x, y) = trace_ray(view, ray, tf, config, cells, stats);
    }
  }
}

namespace detail {

/// Cache key for a volume's macrocell grid: extents + block size +
/// layout salt packed into 64 bits (the volume's identity is the cache's
/// owner pointer; the salt distinguishes generalized-Morton interleave
/// patterns, which the data pointer + extents alone cannot).
[[nodiscard]] inline std::uint64_t macrocell_cache_key(const core::Extents3D& e,
                                                       std::uint32_t block,
                                                       std::uint64_t layout_salt) noexcept {
  std::uint64_t key = e.nx;
  key = key * 0x100000001b3ULL ^ e.ny;
  key = key * 0x100000001b3ULL ^ e.nz;
  key = key * 0x100000001b3ULL ^ block;
  key = key * 0x100000001b3ULL ^ layout_salt;
  return key;
}

}  // namespace detail

/// Builds the render job: image tiles under dynamic dispatch (the paper's
/// best work-assignment strategy). The job's closures reference `volume`,
/// `tf` and `image`, which must outlive its run.
///
/// When config.use_macrocells is set the render takes the empty-space-
/// skipping path: a caller-provided `cells` grid is used as-is, otherwise
/// the running context's StructureCache supplies one — looked up in
/// job.prepare (not at build time), so back-to-back queued renders of one
/// volume share a single grid and every job after the first records a
/// structure-cache hit in its JobRecord. The grid is built on first use,
/// keyed on the volume's storage identity and cell size, and reused by
/// every later render of the same volume (the fig4/fig5 orbit pattern no
/// longer pays a full rebuild per viewpoint). Mutating a volume in place
/// requires ctx.structures().invalidate(volume.data()). With
/// `collect_stats` each worker folds its tile-local RayStats into the
/// metrics registry ("raycast.*" counters; read them via
/// Tracer::metrics_snapshot / render::skip_rate).
template <core::VolumeBackend VolT>
[[nodiscard]] exec::KernelJob raycast_job(const VolT& volume, const Camera& camera,
                                          const TransferFunction& tf,
                                          const RenderConfig& config, Image& image,
                                          const MacrocellGrid* cells = nullptr,
                                          bool collect_stats = false) {
  validate_packet_size(config.packet_size);
  const TileDecomposition tiles(config.image_width, config.image_height, config.tile_size);
  using View = decltype(core::make_read_view(volume));
  // Per-run state resolved in job.prepare: the macrocell grid (cache
  // lookup) and one read view per worker (out-of-core views carry
  // per-worker brick pins and must not be shared across threads; a
  // PlainView is free).
  struct Shared {
    std::shared_ptr<const MacrocellGrid> cached_cells;
    const MacrocellGrid* use_cells = nullptr;
    std::vector<View> views;
  };
  auto shared = std::make_shared<Shared>();
  if (config.use_macrocells && cells != nullptr) {
    shared->use_cells = cells;
  }
  const VolT* vol_p = &volume;
  const TransferFunction* tf_p = &tf;
  Image* img_p = &image;
  exec::KernelJob job;
  job.kernel = "raycast";
  job.dispatch = exec::JobDispatch::kDynamic;
  job.tiles = tiles.count();
  job.output = image.pixels().data();
  job.span_name = "raycast.parallel";
  job.span_tag = config.use_macrocells ? "macrocell" : "dense";
  job.prepare = [shared, vol_p, config](exec::ExecutionContext& ctx) {
    if (config.use_macrocells && shared->use_cells == nullptr) {
      shared->cached_cells = ctx.structures().get_or_build<MacrocellGrid>(
          vol_p->data(),
          detail::macrocell_cache_key(vol_p->extents(), config.macrocell_size,
                                      core::volume_cache_salt(*vol_p)),
          [&] { return MacrocellGrid::build(*vol_p, config.macrocell_size, &ctx); });
      shared->use_cells = shared->cached_cells.get();
    }
    shared->views.clear();
    shared->views.reserve(ctx.size());
    for (unsigned t = 0; t < ctx.size(); ++t) {
      shared->views.push_back(core::make_read_view(*vol_p));
    }
  };
  job.tile = [shared, tf_p, img_p, camera, config, tiles, collect_stats](
                 void*, std::size_t t, unsigned tid) {
    SFCVIS_TRACE_SPAN("raycast.tile", nullptr, t);
    RayStats tile_stats;
    render_tile(shared->views[tid], camera, *tf_p, config, *img_p, tiles.bounds(t),
                shared->use_cells, collect_stats ? &tile_stats : nullptr);
    if (collect_stats) {
      detail::fold_ray_stats(tile_stats);
    }
  };
  return job;
}

/// Shared-memory parallel render (see raycast_job for the macrocell and
/// stats semantics).
template <core::VolumeBackend VolT>
[[nodiscard]] Image raycast_parallel(const VolT& volume,
                                     const Camera& camera, const TransferFunction& tf,
                                     const RenderConfig& config, exec::ExecutionContext& ctx,
                                     const MacrocellGrid* cells = nullptr,
                                     bool collect_stats = false) {
  Image image(config.image_width, config.image_height);
  exec::run_job(ctx, raycast_job(volume, camera, tf, config, image, cells, collect_stats));
  return image;
}

/// Facade driver: dispatches on the volume's runtime layout.
[[nodiscard]] inline Image raycast_parallel(const core::AnyVolume& volume,
                                            const Camera& camera,
                                            const TransferFunction& tf,
                                            const RenderConfig& config,
                                            exec::ExecutionContext& ctx,
                                            const MacrocellGrid* cells = nullptr,
                                            bool collect_stats = false) {
  return volume.visit([&](const auto& grid) {
    return raycast_parallel(grid, camera, tf, config, ctx, cells, collect_stats);
  });
}

/// Facade job builder.
[[nodiscard]] inline exec::KernelJob raycast_job(const core::AnyVolume& volume,
                                                 const Camera& camera,
                                                 const TransferFunction& tf,
                                                 const RenderConfig& config, Image& image,
                                                 const MacrocellGrid* cells = nullptr,
                                                 bool collect_stats = false) {
  return volume.visit([&](const auto& grid) {
    return raycast_job(grid, camera, tf, config, image, cells, collect_stats);
  });
}

/// Counter-collection render: replays the access streams of
/// hierarchy.num_threads() logical threads (tiles assigned round-robin,
/// interleaved deterministically) through the modeled memory system.
/// `max_items` caps the replay at a prefix of the tile schedule, bounding
/// simulation cost; both layouts replay the identical pixel set.
///
/// config.use_macrocells takes the same skipping path as the native
/// render, so the modeled counters measure the reduced access stream; the
/// macrocell summary itself is metadata and is not traced (it is built
/// once, not read per-frame in proportion to the volume).
template <core::VolumeBackend VolT, core::SinkProvider ProviderT>
[[nodiscard]] Image raycast_traced(const VolT& volume,
                                   const Camera& camera, const TransferFunction& tf,
                                   const RenderConfig& config, ProviderT& provider,
                                   std::size_t max_items = SIZE_MAX,
                                   const MacrocellGrid* cells = nullptr,
                                   bool collect_stats = false) {
  validate_packet_size(config.packet_size);
  Image image(config.image_width, config.image_height);
  // The replay builds its grid locally and serially (deterministic, no
  // context in scope). tests/test_jobs.cpp pins that the serial build
  // matches the context-parallel build the native render caches, so
  // traced and untraced skipping paths stay bit-identical.
  auto local_cells = std::make_shared<MacrocellGrid>();
  const MacrocellGrid* use_cells = nullptr;
  if (config.use_macrocells) {
    if (cells == nullptr) {
      *local_cells = MacrocellGrid::build(volume, config.macrocell_size);
      cells = local_cells.get();
    }
    use_cells = cells;
  }
  const TileDecomposition tiles(config.image_width, config.image_height, config.tile_size);
  const unsigned num_threads = provider.num_threads();
  const threads::StaticRoundRobin rr(tiles.count(), num_threads);
  auto order = std::make_shared<const std::vector<threads::Assignment>>(rr.replay_order());
  using Sink = decltype(provider.sink(0u));
  auto sinks = std::make_shared<std::vector<Sink>>();
  sinks->reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    sinks->push_back(provider.sink(t));
  }
  struct ReplayStats {
    RayStats run_stats;
    std::uint64_t rendered = 0;
  };
  auto stats = std::make_shared<ReplayStats>();
  const VolT* vol_p = &volume;
  const TransferFunction* tf_p = &tf;
  Image* img_p = &image;
  exec::KernelJob job;
  job.kernel = "raycast.traced";
  job.dispatch = exec::JobDispatch::kSerial;
  job.tiles = std::min(max_items, order->size());
  job.output = image.pixels().data();
  job.span_name = "raycast.traced";
  job.span_tag = use_cells != nullptr ? "macrocell" : "dense";
  job.tile = [vol_p, tf_p, img_p, camera, config, tiles, local_cells, use_cells, order,
              sinks, stats, collect_stats](void*, std::size_t t, unsigned) {
    const auto& assignment = (*order)[t];
    const auto view = core::make_traced_view(*vol_p, (*sinks)[assignment.tid]);
    RayStats tile_stats;
    render_tile(view, camera, *tf_p, config, *img_p, tiles.bounds(assignment.item),
                use_cells, collect_stats ? &tile_stats : nullptr);
    stats->run_stats.add(tile_stats);
    ++stats->rendered;
  };
  exec::ExecutionContext replay_ctx = exec::make_replay_context();
  exec::run_job(replay_ctx, std::move(job));
  if (collect_stats) {
    // Replay is single-threaded: all logical threads fold on this one.
    detail::fold_ray_stats(stats->run_stats, stats->rendered);
  }
  return image;
}

/// Facade driver for the counter-collection render (replay stays
/// single-threaded and deterministic; any SinkProvider — memsim::Hierarchy
/// or locality::LocalityProfiler — plugs in).
template <core::SinkProvider ProviderT>
[[nodiscard]] Image raycast_traced(const core::AnyVolume& volume,
                                   const Camera& camera, const TransferFunction& tf,
                                   const RenderConfig& config, ProviderT& provider,
                                   std::size_t max_items = SIZE_MAX,
                                   const MacrocellGrid* cells = nullptr,
                                   bool collect_stats = false) {
  return volume.visit([&](const auto& grid) {
    return raycast_traced(grid, camera, tf, config, provider, max_items, cells,
                          collect_stats);
  });
}

}  // namespace sfcvis::render
