// Macrocell min-max grid: the renderer's empty-space-skipping acceleration
// structure.
//
// The volume is summarized at block granularity: one macrocell per B^3
// voxel block stores the [min, max] of every voxel a trilinear sample
// taken inside the cell can touch. trace_ray (raycast.hpp) walks rays
// macrocell-by-macrocell and skips, in O(1), every cell whose value range
// classifies to zero opacity — the dominant cost of the paper's raycaster
// on mostly-transparent data is exactly those wasted taps.
//
// The build is layout-aware, which is the Z-order payoff this subsystem
// showcases: for a ZOrderLayout volume with B = 2^b (and every padded axis
// >= B), each macrocell's core block is one *contiguous* run of storage
// (core::zorder_blocks_contiguous), so the bulk of the build is a linear
// scan — the cache-friendliest sweep the layout admits. Array-order (and
// any other layout) builds through a blocked triple loop instead. Both
// paths produce identical grids; cells are independent, so the build
// parallelizes over the threads::Pool with the dynamic work queue.
//
// Footprint: a sample at continuous position p inside cell c reads lattice
// neighbours floor(p) and floor(p)+1, which reach one voxel past the
// block's upper face; the traversal in raycast.hpp additionally attributes
// samples to cells from positions that can sit an ulp past a cell face.
// Each cell's [min, max] therefore covers the block widened by one voxel
// on every side (clamped to the volume), making the classification robust
// to any sub-voxel rounding of the ray marcher.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/core/zquery.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/render/vec.hpp"
#include "sfcvis/trace/trace.hpp"

namespace sfcvis::render {

/// Inclusive scalar value range of one macrocell's footprint.
struct ValueRange {
  float min = 0.0f;
  float max = 0.0f;
};

/// Macrocell coordinate triple (block-grid space).
struct CellCoord {
  std::uint32_t i = 0, j = 0, k = 0;
};

/// Number of macrocells covering `volume` at block size `block` per axis.
[[nodiscard]] core::Extents3D macrocell_extents(const core::Extents3D& volume,
                                                std::uint32_t block);

/// Min-max summary grid over B^3 voxel blocks of one float volume.
class MacrocellGrid {
 public:
  MacrocellGrid() = default;

  /// Builds the grid for `volume`. Throws std::invalid_argument when
  /// `block` is zero. When `ctx` is non-null the cells are computed in
  /// parallel on its dynamic dispatch; the result is identical either
  /// way (each cell is written exactly once).
  template <core::VolumeBackend VolT>
  [[nodiscard]] static MacrocellGrid build(const VolT& volume,
                                           std::uint32_t block = 8,
                                           exec::ExecutionContext* ctx = nullptr);

  /// Facade build: dispatches on the volume's runtime layout.
  [[nodiscard]] static MacrocellGrid build(const core::AnyVolume& volume,
                                           std::uint32_t block = 8,
                                           exec::ExecutionContext* ctx = nullptr) {
    return volume.visit([&](const auto& grid) { return build(grid, block, ctx); });
  }

  [[nodiscard]] bool empty() const noexcept { return block_ == 0; }
  [[nodiscard]] std::uint32_t block_size() const noexcept { return block_; }
  [[nodiscard]] const core::Extents3D& cell_extents() const noexcept { return cells_; }
  [[nodiscard]] const core::Extents3D& volume_extents() const noexcept { return volume_; }

  /// Value range of cell (cx, cy, cz); coordinates must be in
  /// cell_extents().
  [[nodiscard]] ValueRange range(std::uint32_t cx, std::uint32_t cy,
                                 std::uint32_t cz) const noexcept {
    const std::size_t idx =
        cx + static_cast<std::size_t>(cells_.nx) *
                 (cy + static_cast<std::size_t>(cells_.ny) * cz);
    return ValueRange{min_[idx], max_[idx]};
  }

  [[nodiscard]] ValueRange range(const CellCoord& c) const noexcept {
    return range(c.i, c.j, c.k);
  }

  /// Cell containing continuous voxel position `p`, clamped to the grid —
  /// positions in the half-voxel apron around the volume (the renderer's
  /// bounding box extends 0.5 voxels past the lattice) map to the border
  /// cells whose clamped footprint covers the apron samples.
  [[nodiscard]] CellCoord cell_of(const Vec3& p) const noexcept {
    const auto clamp_axis = [](float v, float inv_b, std::uint32_t n) {
      const float c = std::floor(v * inv_b);
      return static_cast<std::uint32_t>(
          std::clamp(c, 0.0f, static_cast<float>(n - 1)));
    };
    return CellCoord{clamp_axis(p.x, inv_block_, cells_.nx),
                     clamp_axis(p.y, inv_block_, cells_.ny),
                     clamp_axis(p.z, inv_block_, cells_.nz)};
  }

  /// Ray parameter at which the ray leaves cell `c`, computed per-axis
  /// from the ray origin (no accumulated DDA state, so it cannot drift).
  /// `inv_dir` holds 1/dir per component (+-inf where dir is 0). May be
  /// smaller than the current parameter for positions that were clamped
  /// into a border cell; the traversal guarantees progress regardless.
  [[nodiscard]] float cell_exit(const Vec3& origin, const Vec3& inv_dir,
                                const CellCoord& c) const noexcept {
    const float b = static_cast<float>(block_);
    float t = std::numeric_limits<float>::max();
    const auto axis = [&](float o, float inv, std::uint32_t cell) {
      const float lo = static_cast<float>(cell) * b;
      const float bound = inv >= 0.0f ? lo + b : lo;
      t = std::min(t, (bound - o) * inv);
    };
    axis(origin.x, inv_dir.x, c.i);
    axis(origin.y, inv_dir.y, c.j);
    axis(origin.z, inv_dir.z, c.k);
    return t;
  }

 private:
  template <core::VolumeBackend VolT, core::ReadView3D ViewT>
  static void compute_cell(const VolT& volume, const ViewT& view, std::uint32_t block,
                           const CellCoord& c, float& out_min, float& out_max);

  core::Extents3D volume_{};
  core::Extents3D cells_{};
  std::uint32_t block_ = 0;
  float inv_block_ = 0.0f;
  std::vector<float> min_, max_;
};

// ---------------------------------------------------------------------------
// Build
// ---------------------------------------------------------------------------

template <core::VolumeBackend VolT, core::ReadView3D ViewT>
void MacrocellGrid::compute_cell(const VolT& volume, const ViewT& view, std::uint32_t block,
                                 const CellCoord& c, float& out_min, float& out_max) {
  const auto& e = volume.extents();
  const std::int64_t b = block;
  // Inclusive footprint box: block widened by one voxel per side, clamped.
  const auto fp_lo = [&](std::uint32_t cell) { return std::max<std::int64_t>(0, cell * b - 1); };
  const auto fp_hi = [&](std::uint32_t cell, std::uint32_t n) {
    return std::min<std::int64_t>(n - 1, (cell + std::int64_t{1}) * b + 1);
  };
  const std::int64_t x0 = fp_lo(c.i), x1 = fp_hi(c.i, e.nx);
  const std::int64_t y0 = fp_lo(c.j), y1 = fp_hi(c.j, e.ny);
  const std::int64_t z0 = fp_lo(c.k), z1 = fp_hi(c.k, e.nz);

  float mn = std::numeric_limits<float>::max();
  float mx = std::numeric_limits<float>::lowest();
  const auto scan = [&](std::int64_t i0, std::int64_t i1, std::int64_t j0, std::int64_t j1,
                        std::int64_t k0, std::int64_t k1) {
    for (std::int64_t k = k0; k <= k1; ++k) {
      for (std::int64_t j = j0; j <= j1; ++j) {
        for (std::int64_t i = i0; i <= i1; ++i) {
          const float v = view.at(static_cast<std::uint32_t>(i),
                                  static_cast<std::uint32_t>(j),
                                  static_cast<std::uint32_t>(k));
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
      }
    }
  };

  bool core_done = false;
  // Layout-aware fast path only exists for in-core grids (out-of-core
  // backends have no layout()/contiguous storage to scan linearly).
  if constexpr (requires { typename VolT::layout_type; }) {
    if constexpr (std::is_same_v<typename VolT::layout_type, core::ZOrderLayout>) {
      // Layout-aware path: a 2^b-aligned block that lies fully inside the
      // logical extents is one contiguous run of storage — scan it linearly
      // and sweep only the one-voxel footprint shell through the indexer.
      const std::int64_t cx0 = c.i * b, cy0 = c.j * b, cz0 = c.k * b;
      const std::int64_t cx1 = cx0 + b - 1, cy1 = cy0 + b - 1, cz1 = cz0 + b - 1;
      if (std::has_single_bit(block) && cx1 < e.nx && cy1 < e.ny && cz1 < e.nz &&
          core::zorder_blocks_contiguous(volume.layout().tables(),
                                         core::log2_pow2(block))) {
        const std::size_t base = volume.layout().index(static_cast<std::uint32_t>(cx0),
                                                       static_cast<std::uint32_t>(cy0),
                                                       static_cast<std::uint32_t>(cz0));
        const float* p = volume.data() + base;
        const std::size_t n = static_cast<std::size_t>(block) * block * block;
        for (std::size_t v = 0; v < n; ++v) {
          mn = std::min(mn, p[v]);
          mx = std::max(mx, p[v]);
        }
        // Shell = footprint minus core, as six disjoint slabs.
        scan(x0, cx0 - 1, y0, y1, z0, z1);
        scan(cx1 + 1, x1, y0, y1, z0, z1);
        scan(cx0, cx1, y0, cy0 - 1, z0, z1);
        scan(cx0, cx1, cy1 + 1, y1, z0, z1);
        scan(cx0, cx1, cy0, cy1, z0, cz0 - 1);
        scan(cx0, cx1, cy0, cy1, cz1 + 1, z1);
        core_done = true;
      }
    }
  }
  if (!core_done) {
    scan(x0, x1, y0, y1, z0, z1);
  }
  out_min = mn;
  out_max = mx;
}

template <core::VolumeBackend VolT>
MacrocellGrid MacrocellGrid::build(const VolT& volume, std::uint32_t block,
                                   exec::ExecutionContext* ctx) {
  MacrocellGrid grid;
  SFCVIS_TRACE_SPAN("macrocell.build", ctx != nullptr ? "parallel" : "serial");
  grid.volume_ = volume.extents();
  grid.cells_ = macrocell_extents(grid.volume_, block);
  grid.block_ = block;
  grid.inv_block_ = 1.0f / static_cast<float>(block);
  const std::size_t n = grid.cells_.size();
  grid.min_.resize(n);
  grid.max_.resize(n);

  const auto cell_at = [&](std::size_t idx) {
    const std::uint32_t cx = static_cast<std::uint32_t>(idx % grid.cells_.nx);
    const std::uint32_t cy = static_cast<std::uint32_t>((idx / grid.cells_.nx) % grid.cells_.ny);
    const std::uint32_t cz = static_cast<std::uint32_t>(idx / (static_cast<std::size_t>(grid.cells_.nx) * grid.cells_.ny));
    return CellCoord{cx, cy, cz};
  };
  if (ctx != nullptr) {
    // One read view per worker: out-of-core views carry per-worker brick
    // pins and must not be shared across threads (a PlainView is free).
    std::vector<decltype(core::make_read_view(volume))> views;
    views.reserve(ctx->size());
    for (unsigned t = 0; t < ctx->size(); ++t) {
      views.push_back(core::make_read_view(volume));
    }
    ctx->parallel_dynamic(n, [&](std::size_t idx, unsigned tid) {
      compute_cell(volume, views[tid], block, cell_at(idx), grid.min_[idx],
                   grid.max_[idx]);
    });
  } else {
    const auto view = core::make_read_view(volume);
    for (std::size_t idx = 0; idx < n; ++idx) {
      compute_cell(volume, view, block, cell_at(idx), grid.min_[idx], grid.max_[idx]);
    }
  }
  return grid;
}

}  // namespace sfcvis::render
