#include "sfcvis/data/noise.hpp"

#include <cmath>

namespace sfcvis::data {
namespace {

/// 32-bit integer mix (finalizer of MurmurHash3); avalanche-quality hashing
/// keeps the lattice free of visible axis artifacts.
std::uint32_t mix(std::uint32_t h) noexcept {
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

float smoothstep(float t) noexcept { return t * t * (3.0f - 2.0f * t); }

}  // namespace

float ValueNoise3D::lattice(std::int32_t ix, std::int32_t iy, std::int32_t iz) const noexcept {
  std::uint32_t h = seed_;
  h = mix(h ^ static_cast<std::uint32_t>(ix));
  h = mix(h ^ static_cast<std::uint32_t>(iy));
  h = mix(h ^ static_cast<std::uint32_t>(iz));
  // Map to [-1, 1].
  return static_cast<float>(h) * (2.0f / 4294967295.0f) - 1.0f;
}

float ValueNoise3D::sample(float x, float y, float z) const noexcept {
  const float fx = std::floor(x), fy = std::floor(y), fz = std::floor(z);
  const auto ix = static_cast<std::int32_t>(fx);
  const auto iy = static_cast<std::int32_t>(fy);
  const auto iz = static_cast<std::int32_t>(fz);
  const float tx = smoothstep(x - fx);
  const float ty = smoothstep(y - fy);
  const float tz = smoothstep(z - fz);

  auto lerp = [](float a, float b, float t) { return a + (b - a) * t; };
  const float c00 = lerp(lattice(ix, iy, iz), lattice(ix + 1, iy, iz), tx);
  const float c10 = lerp(lattice(ix, iy + 1, iz), lattice(ix + 1, iy + 1, iz), tx);
  const float c01 = lerp(lattice(ix, iy, iz + 1), lattice(ix + 1, iy, iz + 1), tx);
  const float c11 = lerp(lattice(ix, iy + 1, iz + 1), lattice(ix + 1, iy + 1, iz + 1), tx);
  return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz);
}

float fbm(const ValueNoise3D& noise, float x, float y, float z,
          const FbmParams& params) noexcept {
  float sum = 0.0f;
  float amplitude = 1.0f;
  float norm = 0.0f;
  float freq = params.base_frequency;
  for (unsigned o = 0; o < params.octaves; ++o) {
    sum += amplitude * noise.sample(x * freq, y * freq, z * freq);
    norm += amplitude;
    amplitude *= params.gain;
    freq *= params.lacunarity;
  }
  return norm > 0.0f ? sum / norm : 0.0f;
}

}  // namespace sfcvis::data
