// The Marschner-Lobb test signal (Marschner & Lobb, "An evaluation of
// reconstruction filters for volume rendering", Vis '94) — the standard
// analytic benchmark dataset for volume-rendering reconstruction quality.
// Included as the third synthetic dataset: its high-frequency ripples near
// the Nyquist rate make reconstruction errors (and transfer-function
// ringing) visible at a glance.
#pragma once

#include <cmath>
#include <numbers>

#include "sfcvis/core/grid.hpp"

namespace sfcvis::data {

/// Marschner-Lobb parameters; the canonical values are the defaults.
struct MarschnerLobbParams {
  float fm = 6.0f;      ///< ripple frequency
  float alpha = 0.25f;  ///< ripple amplitude
};

/// Signal value at normalized position (u, v, w) in [0, 1]^3, remapped to
/// the canonical [-1, 1]^3 domain; range is [0, 1].
[[nodiscard]] inline float marschner_lobb(float u, float v, float w,
                                          const MarschnerLobbParams& params = {}) noexcept {
  const float x = 2.0f * u - 1.0f;
  const float y = 2.0f * v - 1.0f;
  const float z = 2.0f * w - 1.0f;
  const float r = std::sqrt(x * x + y * y);
  const float pi = std::numbers::pi_v<float>;
  const float rho =
      std::cos(2.0f * pi * params.fm * std::cos(pi * r / 2.0f));
  return ((1.0f - std::sin(pi * z / 2.0f)) + params.alpha * (1.0f + rho)) /
         (2.0f * (1.0f + params.alpha));
}

/// Fills `grid` with the sampled Marschner-Lobb signal. Any writable
/// volume backend works (a read-only backend, e.g. an opened bricked
/// volume, throws from its own fill_from).
template <class VolumeT>
void fill_marschner_lobb(VolumeT& grid,
                         const MarschnerLobbParams& params = {}) {
  const auto& e = grid.extents();
  grid.fill_from([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    const float u = (static_cast<float>(i) + 0.5f) / static_cast<float>(e.nx);
    const float v = (static_cast<float>(j) + 0.5f) / static_cast<float>(e.ny);
    const float w = (static_cast<float>(k) + 0.5f) / static_cast<float>(e.nz);
    return marschner_lobb(u, v, w, params);
  });
}

}  // namespace sfcvis::data
