// Synthetic MRI-like volume: a 3D analytic head phantom.
//
// Stands in for the paper's 512^3 MRI dataset from the UC Davis instrument
// (DESIGN.md Sec. 4). The phantom is a superposition of ellipsoids with
// Shepp-Logan-style intensities (smooth regions separated by sharp tissue
// boundaries — exactly the structure the edge-preserving bilateral filter
// is designed for), plus fine anatomical texture and additive measurement
// noise so the filter's photometric term has realistic work to do.
#pragma once

#include <cstdint>
#include <vector>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/data/noise.hpp"

namespace sfcvis::data {

/// One ellipsoid of the phantom; coordinates in [-1, 1]^3, `phi` rotates
/// about the z axis, `value` is added to enclosed voxels.
struct Ellipsoid {
  float cx = 0, cy = 0, cz = 0;  ///< center
  float ax = 1, ay = 1, az = 1;  ///< semi-axes
  float phi = 0;                 ///< rotation about z (radians)
  float value = 0;               ///< additive intensity
};

/// Analytic phantom model, sampled in normalized [0, 1]^3 coordinates.
class MriPhantom {
 public:
  /// The classic 10-ellipsoid head phantom (3D Shepp-Logan variant with
  /// soft-tissue contrast boosted, as is standard for visualization use).
  [[nodiscard]] static MriPhantom shepp_logan();

  /// A phantom from a custom ellipsoid list.
  explicit MriPhantom(std::vector<Ellipsoid> ellipsoids)
      : ellipsoids_(std::move(ellipsoids)) {}

  /// Noiseless tissue intensity at normalized position (u, v, w) in [0,1]^3.
  [[nodiscard]] float sample(float u, float v, float w) const noexcept;

  [[nodiscard]] const std::vector<Ellipsoid>& ellipsoids() const noexcept {
    return ellipsoids_;
  }

 private:
  std::vector<Ellipsoid> ellipsoids_;
};

/// Generation parameters for a discrete phantom volume.
struct PhantomParams {
  std::uint32_t seed = 1;
  float texture_amplitude = 0.02f;  ///< fine fBm tissue texture
  float noise_sigma = 0.03f;        ///< additive Gaussian measurement noise
};

/// Fills `grid` with the phantom at its own resolution. Works with any
/// layout: generation is layout-agnostic by construction. Any writable
/// volume backend works (a read-only backend, e.g. an opened bricked
/// volume, throws from its own fill_from).
template <class VolumeT>
void fill_mri_phantom(VolumeT& grid, const PhantomParams& params = {}) {
  const MriPhantom model = MriPhantom::shepp_logan();
  const ValueNoise3D texture(params.seed);
  const ValueNoise3D noise(params.seed ^ 0x9e3779b9u);
  const auto& e = grid.extents();
  grid.fill_from([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    const float u = (static_cast<float>(i) + 0.5f) / static_cast<float>(e.nx);
    const float v = (static_cast<float>(j) + 0.5f) / static_cast<float>(e.ny);
    const float w = (static_cast<float>(k) + 0.5f) / static_cast<float>(e.nz);
    float value = model.sample(u, v, w);
    value += params.texture_amplitude * fbm(texture, u, v, w, FbmParams{4, 2.0f, 0.5f, 24.0f});
    // Cheap deterministic Gaussian-ish noise: sum of three value-noise taps
    // at high incommensurate frequencies (CLT) — keeps generation hashable
    // and reproducible without a per-voxel RNG stream.
    const float n = noise.sample(u * 97.0f, v * 89.0f, w * 83.0f) +
                    noise.sample(u * 211.0f + 7.0f, v * 199.0f, w * 193.0f) +
                    noise.sample(u * 409.0f, v * 401.0f + 3.0f, w * 397.0f);
    value += params.noise_sigma * n * 0.577f;
    return value;
  });
}

}  // namespace sfcvis::data
