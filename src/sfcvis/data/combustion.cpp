#include "sfcvis/data/combustion.hpp"

#include <algorithm>
#include <cmath>

namespace sfcvis::data {

float CombustionField::mixture_fraction(float u, float v, float w) const noexcept {
  // Round fuel jet along +y with a Gaussian radial profile, decaying
  // downstream, wrinkled by fBm turbulence that grows with distance from
  // the nozzle (v = 0 plane).
  const float rx = u - 0.5f;
  const float rz = w - 0.5f;
  const float r2 = rx * rx + rz * rz;
  const float jet_radius = 0.10f + 0.25f * v;  // spreading jet
  const float core = std::exp(-r2 / (jet_radius * jet_radius)) * std::exp(-1.1f * v);
  const float wrinkle =
      params_.turbulence * (0.3f + v) * fbm(noise_, u, v, w, params_.fbm);
  return std::clamp(core + wrinkle * core * 2.0f + 0.15f * wrinkle, 0.0f, 1.0f);
}

float CombustionField::sample(float u, float v, float w) const noexcept {
  const float z = mixture_fraction(u, v, w);
  // Flame-sheet response: bright where Z crosses stoichiometric, plus a
  // small fraction of Z itself so the cold fuel core is faintly visible.
  const float d = (z - params_.stoichiometric) / params_.sheet_width;
  const float sheet = std::exp(-d * d);
  return std::clamp(0.85f * sheet + 0.15f * z, 0.0f, 1.0f);
}

}  // namespace sfcvis::data
