#include "sfcvis/data/volume_io.hpp"

#include <fstream>
#include <sstream>

namespace sfcvis::data {
namespace {

std::filesystem::path payload_path_for(const std::filesystem::path& header_path) {
  std::filesystem::path p = header_path;
  p.replace_extension(".raw");
  return p;
}

}  // namespace

void save_bov(const std::filesystem::path& header_path, const RawVolume& volume) {
  if (volume.samples.size() != volume.extents.size()) {
    throw std::runtime_error("save_bov: sample count does not match extents");
  }
  const auto payload = payload_path_for(header_path);

  std::ofstream raw(payload, std::ios::binary);
  if (!raw) {
    throw std::runtime_error("save_bov: cannot open " + payload.string());
  }
  raw.write(reinterpret_cast<const char*>(volume.samples.data()),
            static_cast<std::streamsize>(volume.samples.size() * sizeof(float)));
  if (!raw) {
    throw std::runtime_error("save_bov: write failed for " + payload.string());
  }

  std::ofstream header(header_path);
  if (!header) {
    throw std::runtime_error("save_bov: cannot open " + header_path.string());
  }
  header << "DATA_FILE: " << payload.filename().string() << "\n"
         << "DATA_SIZE: " << volume.extents.nx << " " << volume.extents.ny << " "
         << volume.extents.nz << "\n"
         << "DATA_FORMAT: FLOAT\n"
         << "VARIABLE: value\n"
         << "DATA_ENDIAN: LITTLE\n"
         << "CENTERING: zonal\n";
  if (!header) {
    throw std::runtime_error("save_bov: write failed for " + header_path.string());
  }
}

RawVolume load_bov(const std::filesystem::path& header_path) {
  std::ifstream header(header_path);
  if (!header) {
    throw std::runtime_error("load_bov: cannot open " + header_path.string());
  }
  RawVolume out;
  std::string data_file;
  std::string line;
  while (std::getline(header, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "DATA_FILE:") {
      ls >> data_file;
    } else if (key == "DATA_SIZE:") {
      ls >> out.extents.nx >> out.extents.ny >> out.extents.nz;
    } else if (key == "DATA_FORMAT:") {
      std::string fmt;
      ls >> fmt;
      if (fmt != "FLOAT") {
        throw std::runtime_error("load_bov: unsupported DATA_FORMAT " + fmt);
      }
    }
  }
  if (data_file.empty() || out.extents.empty()) {
    throw std::runtime_error("load_bov: missing DATA_FILE or DATA_SIZE in " +
                             header_path.string());
  }

  const auto payload = header_path.parent_path() / data_file;
  std::ifstream raw(payload, std::ios::binary);
  if (!raw) {
    throw std::runtime_error("load_bov: cannot open " + payload.string());
  }
  out.samples.resize(out.extents.size());
  raw.read(reinterpret_cast<char*>(out.samples.data()),
           static_cast<std::streamsize>(out.samples.size() * sizeof(float)));
  if (raw.gcount() !=
      static_cast<std::streamsize>(out.samples.size() * sizeof(float))) {
    throw std::runtime_error("load_bov: payload truncated: " + payload.string());
  }
  return out;
}

}  // namespace sfcvis::data
