// Volume file IO in the BOV ("brick of values") convention common to the
// visualization tools the paper's workloads come from: a small text header
// describing extents plus a raw little-endian float payload, x fastest.
//
// Serialization is always array-order regardless of the in-memory layout,
// so files are interchangeable between layout configurations.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "sfcvis/core/grid.hpp"

namespace sfcvis::data {

/// A volume loaded from disk: extents plus array-order samples.
struct RawVolume {
  core::Extents3D extents;
  std::vector<float> samples;  ///< size = extents.size(), x fastest
};

/// Writes `header_path` (BOV text header) and its sibling .raw payload.
/// The header references the payload by filename. Throws std::runtime_error
/// on IO failure.
void save_bov(const std::filesystem::path& header_path, const RawVolume& volume);

/// Reads a BOV header + payload written by save_bov (a compatible subset of
/// the general format: float32, x-fastest). Throws std::runtime_error on
/// parse or IO failure.
[[nodiscard]] RawVolume load_bov(const std::filesystem::path& header_path);

/// Serializes any-layout grid contents into array order.
template <core::Layout3D L>
[[nodiscard]] RawVolume to_raw(const core::Grid3D<float, L>& grid) {
  RawVolume out;
  out.extents = grid.extents();
  out.samples.reserve(out.extents.size());
  grid.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    out.samples.push_back(grid.at(i, j, k));
  });
  return out;
}

/// Fills any-layout grid from an array-order payload; extents must match.
template <core::Layout3D L>
void from_raw(const RawVolume& volume, core::Grid3D<float, L>& grid) {
  if (!(grid.extents() == volume.extents)) {
    throw std::invalid_argument("from_raw: extents mismatch");
  }
  std::size_t cursor = 0;
  grid.fill_from([&](std::uint32_t, std::uint32_t, std::uint32_t) {
    return volume.samples[cursor++];
  });
}

}  // namespace sfcvis::data
