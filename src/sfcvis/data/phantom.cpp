#include "sfcvis/data/phantom.hpp"

#include <cmath>

namespace sfcvis::data {

MriPhantom MriPhantom::shepp_logan() {
  // 3D Shepp-Logan after Kak & Slaney, with the soft-tissue contrast
  // raised (the "modified" variant) so interior structures are visible to
  // a renderer without windowing.
  return MriPhantom({
      {0.00f, 0.000f, 0.00f, 0.690f, 0.920f, 0.810f, 0.0f, 1.00f},   // skull
      {0.00f, -0.0184f, 0.00f, 0.6624f, 0.874f, 0.780f, 0.0f, -0.80f},  // brain
      {0.22f, 0.000f, 0.00f, 0.110f, 0.310f, 0.220f, -0.31416f, -0.20f},  // right ventricle
      {-0.22f, 0.000f, 0.00f, 0.160f, 0.410f, 0.280f, 0.31416f, -0.20f},  // left ventricle
      {0.00f, 0.350f, -0.15f, 0.210f, 0.250f, 0.410f, 0.0f, 0.10f},  // upper blob
      {0.00f, 0.100f, 0.25f, 0.046f, 0.046f, 0.050f, 0.0f, 0.10f},
      {0.00f, -0.100f, 0.25f, 0.046f, 0.046f, 0.050f, 0.0f, 0.10f},
      {-0.08f, -0.605f, 0.00f, 0.046f, 0.023f, 0.050f, 0.0f, 0.10f},
      {0.00f, -0.606f, 0.00f, 0.023f, 0.023f, 0.020f, 0.0f, 0.10f},
      {0.06f, -0.605f, 0.00f, 0.023f, 0.046f, 0.020f, 0.0f, 0.10f},
  });
}

float MriPhantom::sample(float u, float v, float w) const noexcept {
  // Map [0, 1]^3 to the phantom's [-1, 1]^3 frame.
  const float x = 2.0f * u - 1.0f;
  const float y = 2.0f * v - 1.0f;
  const float z = 2.0f * w - 1.0f;
  float value = 0.0f;
  for (const auto& e : ellipsoids_) {
    const float dx = x - e.cx;
    const float dy = y - e.cy;
    const float dz = z - e.cz;
    const float c = std::cos(e.phi), s = std::sin(e.phi);
    const float rx = c * dx + s * dy;
    const float ry = -s * dx + c * dy;
    const float q = (rx * rx) / (e.ax * e.ax) + (ry * ry) / (e.ay * e.ay) +
                    (dz * dz) / (e.az * e.az);
    if (q <= 1.0f) {
      value += e.value;
    }
  }
  return value;
}

}  // namespace sfcvis::data
