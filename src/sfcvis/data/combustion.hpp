// Synthetic combustion-like scalar field.
//
// Stands in for the paper's 512^3 combustion-simulation dataset (DESIGN.md
// Sec. 4). The model is the classic flamelet picture: a turbulent mixture
// fraction Z(x) built from fBm noise advected around a fuel-jet core, fed
// through a flame-sheet response centered at the stoichiometric value so
// the rendered field shows a thin, wrinkled, high-intensity sheet embedded
// in smooth large-scale structure — the feature mix a volume renderer's
// transfer function keys on.
#pragma once

#include <cstdint>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/data/noise.hpp"

namespace sfcvis::data {

/// Parameters of the flamelet model.
struct CombustionParams {
  std::uint32_t seed = 7;
  float stoichiometric = 0.35f;  ///< mixture fraction of the flame sheet
  float sheet_width = 0.08f;     ///< flame-sheet thickness in Z-space
  float turbulence = 0.45f;      ///< fBm amplitude wrinkling the jet
  FbmParams fbm{5, 2.1f, 0.55f, 3.0f};
};

/// Analytic combustion field sampled in normalized [0, 1]^3 coordinates;
/// returns values in [0, 1] (temperature-like: flame sheet bright).
class CombustionField {
 public:
  explicit CombustionField(const CombustionParams& params = {})
      : params_(params), noise_(params.seed) {}

  [[nodiscard]] float sample(float u, float v, float w) const noexcept;

  /// The underlying mixture fraction before the flame-sheet response.
  [[nodiscard]] float mixture_fraction(float u, float v, float w) const noexcept;

  [[nodiscard]] const CombustionParams& params() const noexcept { return params_; }

 private:
  CombustionParams params_;
  ValueNoise3D noise_;
};

/// Fills `grid` with the combustion field at its own resolution. Any
/// writable volume backend works (a read-only backend, e.g. an opened
/// bricked volume, throws from its own fill_from).
template <class VolumeT>
void fill_combustion(VolumeT& grid, const CombustionParams& params = {}) {
  const CombustionField model(params);
  const auto& e = grid.extents();
  grid.fill_from([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    const float u = (static_cast<float>(i) + 0.5f) / static_cast<float>(e.nx);
    const float v = (static_cast<float>(j) + 0.5f) / static_cast<float>(e.ny);
    const float w = (static_cast<float>(k) + 0.5f) / static_cast<float>(e.nz);
    return model.sample(u, v, w);
  });
}

}  // namespace sfcvis::data
