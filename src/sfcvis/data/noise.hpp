// Deterministic 3D value noise and fractal Brownian motion.
//
// Substrate for the synthetic datasets that stand in for the paper's MRI
// and combustion volumes (DESIGN.md Sec. 4): both generators need smooth,
// band-limited, seedable structure.
#pragma once

#include <cstdint>

namespace sfcvis::data {

/// Lattice value noise: smooth pseudo-random field in [-1, 1], C1 via
/// smoothstep-interpolated trilinear blending of hashed lattice values.
class ValueNoise3D {
 public:
  explicit ValueNoise3D(std::uint32_t seed) : seed_(seed) {}

  /// Noise value at continuous position (x, y, z); period-free within
  /// double precision, deterministic per seed.
  [[nodiscard]] float sample(float x, float y, float z) const noexcept;

  [[nodiscard]] std::uint32_t seed() const noexcept { return seed_; }

 private:
  [[nodiscard]] float lattice(std::int32_t ix, std::int32_t iy, std::int32_t iz) const noexcept;
  std::uint32_t seed_;
};

/// Parameters of a fractal Brownian motion sum of noise octaves.
struct FbmParams {
  unsigned octaves = 5;
  float lacunarity = 2.0f;  ///< frequency multiplier per octave
  float gain = 0.5f;        ///< amplitude multiplier per octave
  float base_frequency = 4.0f;
};

/// fBm sum of `params.octaves` noise octaves, renormalized to ~[-1, 1].
[[nodiscard]] float fbm(const ValueNoise3D& noise, float x, float y, float z,
                        const FbmParams& params) noexcept;

}  // namespace sfcvis::data
