// KernelJob: the schedulable unit of kernel work.
//
// Every kernel driver used to be a bespoke free function that privately
// spelled its own decomposition and parallel_for call — nothing above the
// driver could queue, interleave, or cancel kernel work, and ROADMAP's
// serve layer had no unit of work to shard. A KernelJob captures one
// kernel invocation *after* decomposition: a registered kernel id, the
// tile count its decomposer produced (pencils, curve chunks, image tiles,
// replay assignments), the tile body as a type-erased closure, and an
// optional job-prep stage where StructureCache lookups are hoisted so two
// queued jobs over one volume share derived structures (macrocell grids).
//
// Jobs are built by the kernel layers (filters/kernels_common.hpp,
// render/raycast.hpp) and executed by exec::JobGraph, which owns the
// FIFO + priority-lane scheduling, cooperative cancellation, per-job
// deadline accounting, and the per-job trace/metrics attribution.
//
// Lifetime contract: a job's closures reference the kernel operands
// (source/destination volumes, images) by pointer — the operands must
// outlive the job's run. The synchronous driver wrappers trivially
// guarantee this; code that queues jobs for later must keep the operands
// alive until the graph drains.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace sfcvis::exec {

class ExecutionContext;

/// Scheduling lane: the high lane drains before the normal lane.
enum class JobPriority : std::uint8_t {
  kNormal = 0,
  kHigh,
};

/// How a job's tiles map onto the backend.
enum class JobDispatch : std::uint8_t {
  kStatic = 0,  ///< round-robin static assignment (pencil/chunk kernels)
  kDynamic,     ///< work-queue dynamic assignment (raycast image tiles)
  kSerial,      ///< in-order on the calling thread (traced replay drivers)
};

/// Where a job ended up (records only ever hold kDone or kCancelled).
enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning,
  kDone,
  kCancelled,
};

[[nodiscard]] const char* to_string(JobPriority priority) noexcept;
[[nodiscard]] const char* to_string(JobDispatch dispatch) noexcept;
[[nodiscard]] const char* to_string(JobState state) noexcept;

using JobId = std::uint64_t;

/// Cooperative cancellation handle. Copies share one flag; request_cancel
/// is sticky and safe from any thread. The graph checks it once before a
/// job starts and once per tile — tiles already running complete, so
/// outputs are never torn mid-tile.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const noexcept { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// One decomposed kernel invocation, ready to submit to JobGraph.
struct KernelJob {
  std::string kernel;  ///< registered kernel id (KernelRegistry validates)
  JobPriority priority = JobPriority::kNormal;
  JobDispatch dispatch = JobDispatch::kStatic;
  /// Completion deadline relative to submit time; 0 = none. Purely an
  /// accounting device (records/metrics flag misses); nothing is killed.
  std::uint64_t deadline_ns = 0;
  CancelToken cancel;
  /// Identity of the written output (volume storage / image pixels).
  /// JobGraph rejects a second queued job writing the same output.
  const void* output = nullptr;
  std::size_t tiles = 0;  ///< decomposer's tile count; 0 is a valid no-op job

  /// Kernel-level trace span emitted inside the per-job "exec.job" span,
  /// so reports keep the historical phase names ("bilateral.parallel").
  /// Must be string literals (spans store the pointers only).
  const char* span_name = nullptr;
  const char* span_tag = nullptr;

  /// Job-prep stage, run once at dequeue before any tile: StructureCache
  /// lookups belong here so queued jobs over one volume share structures.
  std::function<void(ExecutionContext&)> prepare;
  /// Optional per-worker state factory (the scratch/read-view slot the
  /// static_state dispatch used to own); null for stateless kernels.
  std::function<std::shared_ptr<void>(unsigned tid)> make_state;
  /// Tile body. `state` is the worker's make_state result (null when no
  /// make_state); disjoint writes across tiles are the caller's contract,
  /// exactly as with the parallel_* dispatch this replaces.
  std::function<void(void* state, std::size_t tile, unsigned tid)> tile;
};

/// What the graph recorded about one finished (or cancelled) job.
struct JobRecord {
  JobId id = 0;
  std::string kernel;
  JobState state = JobState::kQueued;
  std::size_t tiles = 0;
  std::size_t tiles_run = 0;          ///< < tiles when cancelled mid-run
  std::uint64_t queue_wait_ns = 0;    ///< submit -> dequeue
  std::uint64_t run_ns = 0;           ///< dequeue -> completion (prep + tiles)
  std::uint64_t deadline_ns = 0;
  bool deadline_missed = false;       ///< queue_wait + run exceeded deadline
  std::uint64_t structure_cache_hits = 0;    ///< attributed to this job's prep+run
  std::uint64_t structure_cache_misses = 0;
};

}  // namespace sfcvis::exec
