// ExecutionContext: the single dispatch point for how a kernel runs.
//
// Every kernel driver used to take a raw threads::Pool& and carry its own
// copy of backend choice, chunk decomposition, and stats plumbing. The
// context owns those decisions instead:
//
//   * backend   — the paper's pthread worker pool (Sec. III) or the OpenMP
//                 executor (bench/abl_scheduler re-examines the paper's
//                 pthreads-over-OpenMP claim); selectable per context or
//                 process-wide via the SFCVIS_BACKEND environment variable.
//                 Falls back to the pool, with a recorded reason, when the
//                 build has no OpenMP runtime.
//   * threads   — worker count and affinity (compact pinning per the
//                 paper's Ivy Bridge setup).
//   * chunking  — the curve-sweep chunk decomposition shared by the
//                 zsweep drivers.
//   * memory    — the core::MemoryPolicy volumes allocated through the
//                 context get, plus the first-touch hook that faults pages
//                 in on the worker set.
//   * caches    — a StructureCache of derived acceleration structures
//                 (macrocell grids), so repeated renders of one volume
//                 stop rebuilding them per call.
//   * tracing   — an optional owned TraceSession when constructed with
//                 trace outputs.
//
// Outputs are backend-invariant: both backends run the same per-item
// work with disjoint writes, so pool and OpenMP runs are bit-identical
// (tests/test_parity.cpp pins this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/job_graph.hpp"
#include "sfcvis/exec/layout_registry.hpp"
#include "sfcvis/exec/structure_cache.hpp"
#include "sfcvis/exec/trace_session.hpp"
#include "sfcvis/threads/omp_executor.hpp"
#include "sfcvis/threads/pool.hpp"
#include "sfcvis/threads/schedulers.hpp"

namespace sfcvis::exec {

/// Which runtime executes parallel regions.
enum class Backend : std::uint8_t {
  kPool = 0,  ///< persistent pthread worker pool (threads::Pool)
  kOpenMP,    ///< OpenMP parallel-for executor (threads/omp_executor.hpp)
};

[[nodiscard]] const char* to_string(Backend backend) noexcept;

/// Parses "pool" / "openmp" (also "omp"); throws std::invalid_argument.
[[nodiscard]] Backend parse_backend(std::string_view name);

/// Process default: SFCVIS_BACKEND=pool|openmp when set (unknown values
/// are ignored with a warning to stderr, once), else kPool.
[[nodiscard]] Backend default_backend() noexcept;

/// Full construction knobs; the common cases use the two-argument
/// ExecutionContext constructors instead.
struct ExecOptions {
  unsigned threads = 0;  ///< worker count; 0 = hardware concurrency
  Backend backend = default_backend();
  threads::Affinity affinity = threads::Affinity::kNone;
  std::size_t chunks_per_thread = 8;  ///< curve-sweep decomposition factor
  core::MemoryPolicy memory{};        ///< policy for make_volume()
  std::string trace_out;              ///< Chrome trace JSON path ("" = off)
  std::string report_out;             ///< run-report JSON path ("" = off)
  bool trace = false;                 ///< enable spans without export files
  /// Tuned-layout registry JSON path; "" = $SFCVIS_LAYOUT_REGISTRY (and
  /// when that is unset too, resolve_layout always reports a fallback).
  std::string layout_registry = default_layout_registry_path();

  /// $SFCVIS_LAYOUT_REGISTRY when set, else "".
  [[nodiscard]] static std::string default_layout_registry_path();
};

/// resolve_layout()'s answer: which layout a workload should run with,
/// and why. `tuned` distinguishes a registry hit from the canonical
/// fallback; `note` always explains the decision (entry provenance on a
/// hit, the miss/load-failure reason otherwise).
struct ResolvedLayout {
  core::LayoutKind kind = core::LayoutKind::kZOrder;
  std::string interleave;  ///< gmorton pattern when kind == kGMorton
  bool tuned = false;
  std::string note;
};

class ExecutionContext {
 public:
  /// Pool-vs-OpenMP per the process default, no pinning.
  explicit ExecutionContext(unsigned num_threads);
  ExecutionContext(unsigned num_threads, threads::Affinity affinity);
  explicit ExecutionContext(const ExecOptions& opts);
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;
  ~ExecutionContext();

  [[nodiscard]] unsigned size() const noexcept { return num_threads_; }
  [[nodiscard]] Backend backend() const noexcept { return requested_backend_; }
  /// Backend actually in use after availability fallback.
  [[nodiscard]] Backend active_backend() const noexcept { return active_backend_; }
  /// Why active_backend() differs from backend(); empty when it doesn't.
  [[nodiscard]] const std::string& backend_note() const noexcept { return backend_note_; }
  [[nodiscard]] threads::Affinity affinity() const noexcept { return affinity_; }
  /// True when the pool backend pinned every worker (false before the pool
  /// is first used, and always false under OpenMP).
  [[nodiscard]] bool affinity_applied() const noexcept {
    return pool_ != nullptr && pool_->affinity_applied();
  }
  [[nodiscard]] std::size_t chunks_per_thread() const noexcept { return chunks_per_thread_; }
  [[nodiscard]] const core::MemoryPolicy& memory_policy() const noexcept { return memory_; }

  /// The underlying pthread pool, created on first use (also serves as the
  /// fallback when an OpenMP dispatch reports unavailable at runtime).
  [[nodiscard]] threads::Pool& pool();

  /// Cache of derived structures (macrocell grids) keyed on volume identity.
  [[nodiscard]] StructureCache& structures() noexcept { return structures_; }

  /// The job queue every kernel driver dispatches through (created on
  /// first use): drivers build an exec::KernelJob and submit it here, and
  /// the graph schedules curve-ordered tiles onto this context's backend
  /// with per-job trace/metrics attribution (see exec/job_graph.hpp).
  [[nodiscard]] JobGraph& jobs();

  /// The owned trace session, when the context was constructed with trace
  /// options (nullptr otherwise).
  [[nodiscard]] TraceSession* trace_session() noexcept { return trace_session_.get(); }

  // -- Parallel dispatch ----------------------------------------------------
  // fn(item, tid) with tid < size(); items are executed exactly once with
  // disjoint-write semantics expected from callers, so results do not
  // depend on the backend's item-to-thread assignment.

  /// Static assignment (the paper's round-robin pencil model on the pool;
  /// schedule(static) under OpenMP).
  void parallel_static(std::size_t num_items,
                       const std::function<void(std::size_t, unsigned)>& fn);

  /// Dynamic work queue (the paper's raycaster worker pool; schedule
  /// (dynamic, 1) under OpenMP).
  void parallel_dynamic(std::size_t num_items,
                        const std::function<void(std::size_t, unsigned)>& fn);

  /// parallel_static with per-worker state: make(tid) runs once per worker
  /// before its first item, then fn(state, item, tid) for each owned item.
  template <class MakeState, class Fn>
  void parallel_static_state(std::size_t num_items, MakeState&& make, Fn&& fn) {
    if (active_backend_ == Backend::kOpenMP) {
      using State = std::decay_t<decltype(make(0U))>;
      // One slot per OpenMP thread number; each slot is only ever touched
      // by its own thread within the single parallel region, lazily
      // constructed before that thread's first item.
      std::vector<std::optional<State>> states(num_threads_);
      const bool ran = threads::parallel_for_omp_static(
          num_threads_, num_items, [&](std::size_t item, unsigned tid) {
            auto& slot = states[tid];
            if (!slot) {
              slot.emplace(make(tid));
            }
            fn(*slot, item, tid);
          });
      if (ran) {
        return;
      }
    }
    threads::parallel_for_static_state(pool(), num_items, make, fn);
  }

  // -- Decomposition & memory ----------------------------------------------

  /// Chunk count for a curve sweep over a padded index space: targets
  /// roughly size()/chunks_per_thread() *logical* voxels per chunk even
  /// when much of the padded curve is holes.
  [[nodiscard]] std::size_t curve_chunks(std::size_t logical_size,
                                         std::size_t padded_capacity) const noexcept;

  /// First-touch hook for core::AlignedBuffer: splits [0, count) into one
  /// contiguous range per worker and touches each from that worker. The
  /// returned function captures `this` and must not outlive the context.
  [[nodiscard]] core::FirstTouchFn first_touch_fn();

  /// Allocates a volume under this context's memory policy, with
  /// first-touch initialization on this context's workers when the policy
  /// asks for it. `interleave` selects the generalized-Morton pattern when
  /// kind == kGMorton (empty = canonical).
  [[nodiscard]] core::AnyVolume make_volume(core::LayoutKind kind,
                                            const core::Extents3D& extents,
                                            std::uint32_t tile = 8,
                                            std::string_view interleave = {});

  /// make_volume for a resolve_layout() answer.
  [[nodiscard]] core::AnyVolume make_volume(const ResolvedLayout& resolved,
                                            const core::Extents3D& extents,
                                            std::uint32_t tile = 8) {
    return make_volume(resolved.kind, extents, tile, resolved.interleave);
  }

  /// Opens a packed brick file (core::pack_brick_file / tools/brick_pack)
  /// as an out-of-core volume under this context's memory policy:
  /// memory_policy().brick_cache_bytes == 0 maps the file, > 0 streams it
  /// through an LRU brick cache of that byte budget. `prefetch_depth`
  /// bricks ahead of each demand miss are loaded asynchronously along the
  /// file's Morton order (0 disables the prefetch thread). Throws
  /// std::runtime_error on a missing/corrupt file; resource shortfalls
  /// degrade into the volume's cache_report() instead.
  [[nodiscard]] core::AnyVolume open_bricked(const std::string& path,
                                             std::uint32_t prefetch_depth = 2);

  // -- Tuned layouts ---------------------------------------------------------

  /// The layout this workload should use: the registry's tuned
  /// generalized-Morton entry for (kernel, extents, platform) when one
  /// exists, else canonical Z-order with a note reporting the fallback
  /// reason. An empty `platform` accepts an entry for any platform.
  [[nodiscard]] ResolvedLayout resolve_layout(std::string_view kernel,
                                              const core::Extents3D& extents,
                                              std::string_view platform = {}) const;

  /// The loaded registry (empty when no path was configured or the load
  /// failed; layout_registry_note() reports which).
  [[nodiscard]] const LayoutRegistry& layout_registry() const noexcept {
    return layout_registry_;
  }
  /// Where the registry came from, or why it is empty.
  [[nodiscard]] const std::string& layout_registry_note() const noexcept {
    return layout_registry_note_;
  }

 private:
  unsigned num_threads_;
  Backend requested_backend_;
  Backend active_backend_;
  std::string backend_note_;
  threads::Affinity affinity_;
  std::size_t chunks_per_thread_;
  core::MemoryPolicy memory_{};
  std::unique_ptr<threads::Pool> pool_;
  StructureCache structures_;
  std::unique_ptr<JobGraph> jobs_;
  std::unique_ptr<TraceSession> trace_session_;
  LayoutRegistry layout_registry_;
  std::string layout_registry_note_;
};

/// The synchronous driver path every kernel entry point keeps: submit on
/// the context's graph and drain the queue up to this job.
inline void run_job(ExecutionContext& ctx, KernelJob job) {
  auto& graph = ctx.jobs();
  graph.run(graph.submit(std::move(job)));
}

/// A single-threaded context for the traced replay drivers, which take a
/// SinkProvider instead of an ExecutionContext but still dispatch through
/// a JobGraph (as serial jobs) for per-job attribution. No pool is ever
/// spawned (serial dispatch never touches it) and no layout registry is
/// loaded.
[[nodiscard]] inline ExecutionContext make_replay_context() {
  ExecOptions opts;
  opts.threads = 1;
  opts.backend = Backend::kPool;
  opts.layout_registry.clear();
  return ExecutionContext(opts);
}

/// Publishes a bricked volume's cache-counter deltas since the previous
/// call (per volume) into the trace metrics registry as "bricked.*"
/// counters — cache_hit, cache_miss, evictions, overflow_bricks,
/// prefetch_issued, prefetch_hits — so run reports carry a brick-cache
/// section alongside the kernel counters (tools/trace_summary.py renders
/// and validates it). Core stays leaf: the volume only exposes the drained
/// deltas; the registry write happens here in the exec layer. Returns the
/// drained delta report (fallback strings ride along) for direct
/// inspection.
core::BrickCacheReport publish_brick_cache_metrics(const core::BrickedVolume& volume);

}  // namespace sfcvis::exec
