#include "sfcvis/exec/trace_session.hpp"

#include <cstdio>

#include "sfcvis/trace/trace.hpp"

namespace sfcvis::exec {

TraceSession::TraceSession(std::string trace_out, std::string report_out, bool force_enable)
    : trace_out_(std::move(trace_out)),
      report_out_(std::move(report_out)),
      active_(force_enable || !trace_out_.empty() || !report_out_.empty()) {
  if (active_) {
    current() = this;
    trace::Tracer::instance().enable();
    perfmon::OpenFailure failure;
    topdown_ = perfmon::TopDownCounters::open(&failure);
    if (topdown_) {
      topdown_source_ = "perf_events";
      topdown_->start();
    } else {
      topdown_source_ = failure.message;
    }
  }
}

TraceSession::~TraceSession() { finish(); }

TraceSession*& TraceSession::current() noexcept {
  static TraceSession* session = nullptr;
  return session;
}

void TraceSession::finish() {
  if (!active_) {
    return;
  }
  active_ = false;
  if (current() == this) {
    current() = nullptr;
  }
  auto& tracer = trace::Tracer::instance();
  // Snapshot before disabling so the report records that spans were live.
  // Quiescent here: the run's parallel regions have all joined.
  const trace::TraceSnapshot snap = tracer.snapshot();
  const trace::MetricsSnapshot metrics = tracer.metrics_snapshot();
  tracer.disable();
  trace::TopDownReport topdown;
  topdown.source = topdown_source_;
  if (topdown_) {
    topdown.available = true;
    topdown.reading = topdown_->stop();
    topdown_.reset();
  }
  if (!trace_out_.empty()) {
    if (trace::write_text_file(trace_out_, trace::chrome_trace_json(snap))) {
      std::printf("[trace] %s (%llu spans, %s)\n", trace_out_.c_str(),
                  static_cast<unsigned long long>(snap.total_spans()),
                  snap.counter_source.c_str());
    } else {
      std::fprintf(stderr, "[trace] failed to write %s\n", trace_out_.c_str());
    }
  }
  if (!report_out_.empty()) {
    if (trace::write_text_file(report_out_,
                               trace::run_report_json(snap, metrics, tables_, &topdown))) {
      std::printf("[trace] %s (%zu tables)\n", report_out_.c_str(), tables_.size());
    } else {
      std::fprintf(stderr, "[trace] failed to write %s\n", report_out_.c_str());
    }
  }
}

}  // namespace sfcvis::exec
