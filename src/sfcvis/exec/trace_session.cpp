#include "sfcvis/exec/trace_session.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "sfcvis/trace/trace.hpp"

namespace sfcvis::exec {

namespace {

// Abnormal-exit flush: a run killed by Ctrl-C or a std::exit deep in a
// library would otherwise drop every buffered span and table — the trace
// file simply never gets written. The atexit hook covers std::exit; the
// signal hooks cover termination signals on a best-effort basis (finish()
// allocates and formats JSON, which is not async-signal-safe, so the
// handler first restores the default disposition: a second fault during
// the flush terminates the process instead of looping). Handlers are only
// installed over SIG_DFL — a host that set its own handler keeps it.
std::atomic<bool> g_flush_hooks_installed{false};
std::atomic<bool> g_flushing{false};

void flush_current_session() noexcept {
  if (g_flushing.exchange(true)) {
    return;  // a flush is already running (or already ran) on this path
  }
  if (TraceSession* session = TraceSession::current()) {
    session->finish();
  }
  g_flushing.store(false);
}

extern "C" void sfcvis_trace_atexit_flush() { flush_current_session(); }

extern "C" void sfcvis_trace_signal_flush(int signo) {
  std::signal(signo, SIG_DFL);
  flush_current_session();
  std::raise(signo);
}

void install_flush_hooks() {
  if (g_flush_hooks_installed.exchange(true)) {
    return;
  }
  std::atexit(&sfcvis_trace_atexit_flush);
  const int signals[] = {
      SIGINT,
      SIGTERM,
#ifdef SIGHUP
      SIGHUP,
#endif
  };
  for (const int signo : signals) {
    const auto prev = std::signal(signo, &sfcvis_trace_signal_flush);
    if (prev != SIG_DFL && prev != SIG_ERR) {
      std::signal(signo, prev);
    }
  }
}

}  // namespace

TraceSession::TraceSession(std::string trace_out, std::string report_out, bool force_enable)
    : trace_out_(std::move(trace_out)),
      report_out_(std::move(report_out)),
      active_(force_enable || !trace_out_.empty() || !report_out_.empty()) {
  if (active_) {
    current() = this;
    install_flush_hooks();
    g_flushing.store(false);  // re-arm for this session (tests run several)
    trace::Tracer::instance().enable();
    perfmon::OpenFailure failure;
    topdown_ = perfmon::TopDownCounters::open(&failure);
    if (topdown_) {
      topdown_source_ = "perf_events";
      topdown_->start();
    } else {
      topdown_source_ = failure.message;
    }
  }
}

TraceSession::~TraceSession() { finish(); }

TraceSession*& TraceSession::current() noexcept {
  static TraceSession* session = nullptr;
  return session;
}

void TraceSession::finish() {
  if (!active_) {
    return;
  }
  active_ = false;
  if (current() == this) {
    current() = nullptr;
  }
  auto& tracer = trace::Tracer::instance();
  // Snapshot before disabling so the report records that spans were live.
  // Quiescent here: the run's parallel regions have all joined.
  const trace::TraceSnapshot snap = tracer.snapshot();
  const trace::MetricsSnapshot metrics = tracer.metrics_snapshot();
  tracer.disable();
  trace::TopDownReport topdown;
  topdown.source = topdown_source_;
  if (topdown_) {
    topdown.available = true;
    topdown.reading = topdown_->stop();
    topdown_.reset();
  }
  trace::LocalityReport locality;
  locality.available = !locality_profiles_.empty();
  locality.source = locality.available
                        ? "locality profiler (traced replay)"
                        : "no locality profiles published by this run";
  locality.profiles = std::move(locality_profiles_);
  locality_profiles_.clear();
  trace::JobsReport jobs;
  jobs.available = !job_entries_.empty();
  jobs.source = jobs.available ? "exec::JobGraph dispatch accounting"
                               : "no KernelJob ran while this session was active";
  jobs.jobs = std::move(job_entries_);
  job_entries_.clear();
  if (!trace_out_.empty()) {
    if (trace::write_text_file(trace_out_, trace::chrome_trace_json(snap))) {
      std::printf("[trace] %s (%llu spans, %s)\n", trace_out_.c_str(),
                  static_cast<unsigned long long>(snap.total_spans()),
                  snap.counter_source.c_str());
    } else {
      std::fprintf(stderr, "[trace] failed to write %s\n", trace_out_.c_str());
    }
  }
  if (!report_out_.empty()) {
    if (trace::write_text_file(
            report_out_,
            trace::run_report_json(snap, metrics, tables_, &topdown, &locality, &jobs))) {
      std::printf("[trace] %s (%zu tables, %zu locality profiles, %zu jobs)\n",
                  report_out_.c_str(), tables_.size(), locality.profiles.size(),
                  jobs.jobs.size());
    } else {
      std::fprintf(stderr, "[trace] failed to write %s\n", report_out_.c_str());
    }
  }
}

}  // namespace sfcvis::exec
