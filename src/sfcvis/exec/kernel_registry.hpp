// KernelRegistry: the process-wide catalog of schedulable kernels.
//
// One registration per kernel names its decomposer (how calls become
// tiles), its dispatch kind, and its structure-cache dependencies — the
// metadata JobGraph validates against at submit time, and the single
// place the "what can this system run" question is answered (the serve
// layer will enumerate it). The built-in kernels are seeded here in the
// exec layer as pure metadata — strings, not function pointers — so
// registration cannot depend on link order of the kernel TUs; the tile
// bodies themselves travel inside each KernelJob, built per call by the
// kernel layer's job builders.
//
// register_kernel() extends the catalog at runtime for out-of-tree
// kernels (tests exercise this); entries are never removed, so pointers
// returned by find() are stable for the life of the process — stable
// enough to use entry names as trace span tags.
#pragma once

#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sfcvis/exec/job.hpp"

namespace sfcvis::exec {

/// Registered metadata of one kernel.
struct KernelInfo {
  std::string name;        ///< stable id, e.g. "bilateral.zsweep"
  std::string decomposer;  ///< "pencils" | "curve-chunks" | "rows" | "image-tiles" | "replay"
  JobDispatch dispatch = JobDispatch::kStatic;
  bool uses_structure_cache = false;
  std::string structures;  ///< cached structure names ("macrocell"); "" = none
};

class KernelRegistry {
 public:
  /// The process-wide registry, seeded with the built-in kernels.
  [[nodiscard]] static KernelRegistry& instance();

  /// Adds a kernel; throws std::invalid_argument on an empty or duplicate
  /// name.
  void register_kernel(KernelInfo info);

  /// The registered entry, or nullptr. The pointer stays valid for the
  /// process lifetime (entries are append-only).
  [[nodiscard]] const KernelInfo* find(std::string_view name) const;

  /// All registered kernel names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  KernelRegistry(const KernelRegistry&) = delete;
  KernelRegistry& operator=(const KernelRegistry&) = delete;

 private:
  KernelRegistry();  ///< seeds the built-in kernel catalog

  mutable std::mutex mutex_;
  std::deque<KernelInfo> kernels_;  ///< deque: stable entry addresses
};

}  // namespace sfcvis::exec
