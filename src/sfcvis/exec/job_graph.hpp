// JobGraph: the queue that turns KernelJobs into backend dispatches.
//
// Scheduling model: two FIFO lanes (high before normal). run_all() /
// run(id) drain the queue one job at a time on the calling thread — each
// job is internally parallel (its tiles go to the context's pool/OpenMP
// backend), so draining serially preserves the bit-identity contract of
// the direct driver calls this replaces while still letting queued jobs
// share StructureCache entries hoisted into their prep stages.
//
// Per job the graph records queue-wait vs run time, tiles run (cooperative
// cancellation can cut a job short between tiles), deadline misses, and
// the StructureCache hit/miss delta attributed to its prep+run window.
// Records flow three ways: the bounded records() buffer here, aggregate
// "exec.job*" metrics counters, and — when a TraceSession is active — the
// run report's always-present "jobs" section (trace_summary.py validates
// it; --require-jobs gates on it).
//
// Double-submit policy (pinned, tests/test_jobs.cpp): a second job
// writing the same output while one is queued is REJECTED at submit
// (std::invalid_argument), not serialized — silently reordering writes
// behind the caller's back is how bit-identity dies.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "sfcvis/exec/job.hpp"

namespace sfcvis::exec {

class ExecutionContext;
struct KernelInfo;

class JobGraph {
 public:
  /// Bound on kept records; the oldest are dropped past it (the trace
  /// session, if any, has already received them).
  static constexpr std::size_t kMaxRecords = 4096;

  explicit JobGraph(ExecutionContext& ctx) : ctx_(ctx) {}
  JobGraph(const JobGraph&) = delete;
  JobGraph& operator=(const JobGraph&) = delete;

  /// Enqueues a job. Throws std::invalid_argument when the kernel id is
  /// not registered, when tiles > 0 with no tile body, or when another
  /// queued job writes the same output (see header comment).
  JobId submit(KernelJob job);

  /// Drains the whole queue (high lane first, FIFO within a lane).
  /// Synchronous: returns with the queue empty.
  void run_all();

  /// Runs queued jobs in scheduled order until `id` has finished; a no-op
  /// when `id` is not queued (already ran or never submitted).
  void run(JobId id);

  [[nodiscard]] std::size_t pending() const;

  /// Copies of the kept records, completion order (thread-safe snapshot).
  [[nodiscard]] std::vector<JobRecord> records() const;

  /// The record of job `id`, if still kept.
  [[nodiscard]] std::optional<JobRecord> find_record(JobId id) const;

  void clear_records();

 private:
  struct Pending {
    KernelJob job;
    JobId id = 0;
    const KernelInfo* info = nullptr;  ///< registry entry (process-stable)
    std::uint64_t submit_ns = 0;
  };

  [[nodiscard]] std::optional<Pending> pop_next();
  void run_one(Pending& pending);
  void finish_record(JobRecord record);

  ExecutionContext& ctx_;
  mutable std::mutex mutex_;  ///< guards queue_/records_
  std::deque<Pending> queue_;
  std::deque<JobRecord> records_;
};

}  // namespace sfcvis::exec
