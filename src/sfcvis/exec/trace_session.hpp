// Scoped tracing for one run: enables the span tracer on construction and,
// on finish()/destruction, snapshots it and writes the requested export
// files (Chrome trace-event JSON and/or the machine-readable run report).
// Tables registered through add_table and locality profiles registered
// through add_locality ride along in the run report.
//
// Abnormal exits flush too: the first active session installs an atexit
// hook plus best-effort SIGINT/SIGTERM/SIGHUP handlers that finish() the
// current session, so a run cut short still leaves a loadable trace and
// report on disk instead of nothing.
//
// This is the execution layer's half of what used to live in
// bench/common.hpp; bench::TraceSession derives from it and only adds the
// command-line-option plumbing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sfcvis/perfmon/perf_events.hpp"
#include "sfcvis/trace/export.hpp"

namespace sfcvis::exec {

class TraceSession {
 public:
  /// Activates when either output path is non-empty or `force_enable` is
  /// set; a no-op session otherwise.
  TraceSession(std::string trace_out, std::string report_out, bool force_enable);
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
  ~TraceSession();

  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Records a table for the run report.
  void add_table(trace::ReportTable table) { tables_.push_back(std::move(table)); }

  /// Records a locality profile (reuse-distance histograms + MRCs) for
  /// the run report's always-present "locality" section.
  void add_locality(trace::LocalityProfile profile) {
    locality_profiles_.push_back(std::move(profile));
  }

  /// Records one finished job for the run report's always-present "jobs"
  /// section (exec::JobGraph publishes every completed job here while a
  /// session is active).
  void add_job(trace::JobReportEntry entry) { job_entries_.push_back(std::move(entry)); }

  /// Stops tracing and writes the export files once (also run by the
  /// destructor; calling early lets a run flush before its exit path).
  void finish();

  /// The active session, if any (set for the lifetime of a tracing run).
  static TraceSession*& current() noexcept;

 private:
  std::string trace_out_;
  std::string report_out_;
  bool active_ = false;
  std::vector<trace::ReportTable> tables_;
  std::vector<trace::LocalityProfile> locality_profiles_;
  std::vector<trace::JobReportEntry> job_entries_;
  /// Whole-run top-down counters, opened (inherit-enabled, so pool
  /// workers spawned later are covered) while the session is active;
  /// the open failure is reported in the run report otherwise.
  std::optional<perfmon::TopDownCounters> topdown_;
  std::string topdown_source_;
};

}  // namespace sfcvis::exec
