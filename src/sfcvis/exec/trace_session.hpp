// Scoped tracing for one run: enables the span tracer on construction and,
// on finish()/destruction, snapshots it and writes the requested export
// files (Chrome trace-event JSON and/or the machine-readable run report).
// Tables registered through add_table ride along in the run report.
//
// This is the execution layer's half of what used to live in
// bench/common.hpp; bench::TraceSession derives from it and only adds the
// command-line-option plumbing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sfcvis/perfmon/perf_events.hpp"
#include "sfcvis/trace/export.hpp"

namespace sfcvis::exec {

class TraceSession {
 public:
  /// Activates when either output path is non-empty or `force_enable` is
  /// set; a no-op session otherwise.
  TraceSession(std::string trace_out, std::string report_out, bool force_enable);
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
  ~TraceSession();

  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Records a table for the run report.
  void add_table(trace::ReportTable table) { tables_.push_back(std::move(table)); }

  /// Stops tracing and writes the export files once (also run by the
  /// destructor; calling early lets a run flush before its exit path).
  void finish();

  /// The active session, if any (set for the lifetime of a tracing run).
  static TraceSession*& current() noexcept;

 private:
  std::string trace_out_;
  std::string report_out_;
  bool active_ = false;
  std::vector<trace::ReportTable> tables_;
  /// Whole-run top-down counters, opened (inherit-enabled, so pool
  /// workers spawned later are covered) while the session is active;
  /// the open failure is reported in the run report otherwise.
  std::optional<perfmon::TopDownCounters> topdown_;
  std::string topdown_source_;
};

}  // namespace sfcvis::exec
