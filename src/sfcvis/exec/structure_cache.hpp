// Type-erased cache for derived acceleration structures (macrocell grids,
// and whatever future subsystems summarize a volume), owned by the
// ExecutionContext so repeated kernel calls over the same volume stop
// rebuilding their metadata per call.
//
// Keys are (owner pointer, 64-bit parameter key, structure type). The
// owner is the identity of the summarized data — callers pass the
// volume's storage pointer — so the cache is correct as long as a cached
// entry's source buffer is neither freed nor mutated; call invalidate()
// after mutating a volume in place.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <typeindex>
#include <unordered_map>
#include <utility>

namespace sfcvis::exec {

class StructureCache {
 public:
  StructureCache() = default;
  StructureCache(const StructureCache&) = delete;
  StructureCache& operator=(const StructureCache&) = delete;

  /// Returns the cached T for (owner, key), building it via `build()` on a
  /// miss. The returned shared_ptr keeps the entry alive even across a
  /// concurrent invalidate(). Concurrent misses may build twice; the first
  /// insert wins (builds must be deterministic, which macrocell builds are).
  template <class T, class BuildFn>
  [[nodiscard]] std::shared_ptr<const T> get_or_build(const void* owner, std::uint64_t key,
                                                      BuildFn&& build) {
    const Key k{owner, key, std::type_index(typeid(T))};
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = entries_.find(k); it != entries_.end()) {
        ++hits_;
        return std::static_pointer_cast<const T>(it->second);
      }
    }
    auto built = std::make_shared<const T>(build());
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = entries_.emplace(k, built);
    if (inserted) {
      ++misses_;
    }
    return std::static_pointer_cast<const T>(it->second);
  }

  /// Drops every entry derived from `owner` (call after mutating the data
  /// it summarizes). Outstanding shared_ptrs stay valid.
  void invalidate(const void* owner) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      it = it->first.owner == owner ? entries_.erase(it) : std::next(it);
    }
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }
  [[nodiscard]] std::uint64_t hits() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

 private:
  struct Key {
    const void* owner;
    std::uint64_t key;
    std::type_index type;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = std::hash<const void*>{}(k.owner);
      h ^= std::hash<std::uint64_t>{}(k.key) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= k.type.hash_code() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return h;
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const void>, KeyHash> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sfcvis::exec
