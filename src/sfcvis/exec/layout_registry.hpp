// On-disk registry of tuned generalized-Morton layouts.
//
// tools/layout_tuner searches the interleave-pattern family per (kernel,
// volume shape, machine) and records each winner here; ExecutionContext::
// resolve_layout() consults the registry so workloads pick up their tuned
// layout automatically, falling back (with a reported note) to the
// canonical layouts when no entry matches. The file format is a small
// versioned JSON document:
//
//   {
//     "sfcvis_layout_registry": 1,
//     "entries": [
//       {
//         "kernel": "bilateral",             // kernel / workload name
//         "shape": "256x256x256",            // logical extents key
//         "platform": "ivybridge",           // memsim platform ("any" = wildcard)
//         "interleave": "zyxzyx...",         // winning MSB-first pattern
//         "fitness": 1234.5,                 // memsim cost of the winner
//         "baseline_fitness": 2345.6,        // memsim cost of canonical Z
//         "generations": 12, "seed": 1,      // search provenance
//         "note": "..."                      // free-form provenance
//       }, ...
//     ]
//   }
//
// The reader is a deliberately tiny recursive-descent JSON parser (the
// repo ships no JSON dependency; trace/json.hpp only writes): it accepts
// exactly the subset the writer emits plus whitespace, and unknown object
// keys are skipped so the format can grow.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sfcvis/core/extents.hpp"

namespace sfcvis::exec {

/// One tuned-layout record: the winning interleave pattern for a
/// (kernel, shape, platform) workload key, with search provenance.
struct TunedLayout {
  std::string kernel;
  std::string shape;     ///< "NXxNYxNZ" logical extents key (see shape_key)
  std::string platform;  ///< memsim platform name; "any" matches everything
  std::string interleave;
  double fitness = 0.0;           ///< memsim cost of the winner (lower is better)
  double baseline_fitness = 0.0;  ///< memsim cost of canonical Z-order
  std::uint64_t seed = 0;
  std::uint32_t generations = 0;
  std::string note;
};

/// Canonical shape key for registry lookups: "256x256x256".
[[nodiscard]] std::string shape_key(const core::Extents3D& extents);

/// In-memory registry with JSON load/save. Lookup prefers an exact
/// platform match, then an "any"-platform entry.
class LayoutRegistry {
 public:
  /// Inserts or replaces the entry with the same (kernel, shape, platform).
  void add(TunedLayout entry);

  /// Best entry for the workload key, or nullptr. An empty `platform`
  /// matches the first (kernel, shape) entry of any platform.
  [[nodiscard]] const TunedLayout* find(std::string_view kernel, std::string_view shape,
                                        std::string_view platform = {}) const noexcept;
  [[nodiscard]] const TunedLayout* find(std::string_view kernel,
                                        const core::Extents3D& extents,
                                        std::string_view platform = {}) const noexcept {
    return find(kernel, shape_key(extents), platform);
  }

  [[nodiscard]] const std::vector<TunedLayout>& entries() const noexcept { return entries_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Parses a registry document. Throws std::runtime_error with a byte
  /// offset on malformed input or a version mismatch.
  [[nodiscard]] static LayoutRegistry from_json(std::string_view json);

  /// Loads `path`. Throws std::runtime_error when the file is unreadable
  /// or malformed.
  [[nodiscard]] static LayoutRegistry load(const std::string& path);

  /// Serializes the registry document (stable field order, 2-space indent
  /// friendly single-line entries).
  [[nodiscard]] std::string to_json() const;

  /// Writes to `path` (truncates). Throws std::runtime_error on I/O error.
  void save(const std::string& path) const;

 private:
  std::vector<TunedLayout> entries_;
};

}  // namespace sfcvis::exec
