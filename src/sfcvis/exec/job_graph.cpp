#include "sfcvis/exec/job_graph.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/exec/kernel_registry.hpp"
#include "sfcvis/exec/trace_session.hpp"
#include "sfcvis/trace/trace.hpp"

namespace sfcvis::exec {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// Aggregate job metrics (per-job attribution lives in the records and
/// the run report's "jobs" section; these make job activity visible in
/// untraced metrics snapshots too).
struct JobCounters {
  trace::CounterId jobs_run;
  trace::CounterId jobs_cancelled;
  trace::CounterId jobs_deadline_missed;
  trace::CounterId tiles;
  trace::CounterId queue_wait_ns;
  trace::CounterId run_ns;
};

const JobCounters& job_counters() {
  static const JobCounters counters = [] {
    auto& tracer = trace::Tracer::instance();
    JobCounters c;
    c.jobs_run = tracer.counter_id("exec.jobs_run");
    c.jobs_cancelled = tracer.counter_id("exec.jobs_cancelled");
    c.jobs_deadline_missed = tracer.counter_id("exec.jobs_deadline_missed");
    c.tiles = tracer.counter_id("exec.job_tiles_run");
    c.queue_wait_ns = tracer.counter_id("exec.job_queue_wait_ns");
    c.run_ns = tracer.counter_id("exec.job_run_ns");
    return c;
  }();
  return counters;
}

}  // namespace

JobId JobGraph::submit(KernelJob job) {
  const KernelInfo* info = KernelRegistry::instance().find(job.kernel);
  if (info == nullptr) {
    throw std::invalid_argument("JobGraph::submit: unregistered kernel '" + job.kernel +
                                "' (see exec::KernelRegistry)");
  }
  if (job.tiles > 0 && !job.tile) {
    throw std::invalid_argument("JobGraph::submit: job '" + job.kernel +
                                "' has tiles but no tile body");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (job.output != nullptr) {
    for (const Pending& p : queue_) {
      if (p.job.output == job.output) {
        throw std::invalid_argument(
            "JobGraph::submit: output already written by queued job id " +
            std::to_string(p.id) + " (kernel '" + p.job.kernel +
            "'); drain the queue before resubmitting");
      }
    }
  }
  // Process-wide id sequence: a run report aggregates jobs from every
  // context (driver contexts, replay contexts), so per-graph numbering
  // would collide in the report's "jobs" section.
  static std::atomic<JobId> g_next_id{1};
  const JobId id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  queue_.push_back(Pending{std::move(job), id, info, now_ns()});
  return id;
}

std::optional<JobGraph::Pending> JobGraph::pop_next() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) {
    return std::nullopt;
  }
  auto it = std::find_if(queue_.begin(), queue_.end(), [](const Pending& p) {
    return p.job.priority == JobPriority::kHigh;
  });
  if (it == queue_.end()) {
    it = queue_.begin();
  }
  Pending p = std::move(*it);
  queue_.erase(it);
  return p;
}

void JobGraph::run_all() {
  while (auto next = pop_next()) {
    run_one(*next);
  }
}

void JobGraph::run(JobId id) {
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const bool queued = std::any_of(queue_.begin(), queue_.end(),
                                      [&](const Pending& p) { return p.id == id; });
      if (!queued) {
        return;
      }
    }
    auto next = pop_next();
    if (!next) {
      return;
    }
    const JobId ran = next->id;
    run_one(*next);
    if (ran == id) {
      return;
    }
  }
}

void JobGraph::run_one(Pending& pending) {
  KernelJob& job = pending.job;
  JobRecord record;
  record.id = pending.id;
  record.kernel = job.kernel;
  record.tiles = job.tiles;
  record.deadline_ns = job.deadline_ns;
  const std::uint64_t start_ns = now_ns();
  record.queue_wait_ns = start_ns - pending.submit_ns;
  if (job.cancel.cancelled()) {
    record.state = JobState::kCancelled;
    finish_record(std::move(record));
    return;
  }
  const std::uint64_t hits_before = ctx_.structures().hits();
  const std::uint64_t misses_before = ctx_.structures().misses();
  std::atomic<std::size_t> tiles_run{0};
  {
    // Per-job span, with the kernel's historical phase span nested inside
    // so reports keep their pre-job-system phase names.
    trace::ScopedSpan job_span("exec.job", pending.info->name.c_str(), pending.id);
    if (job.prepare) {
      job.prepare(ctx_);
    }
    trace::ScopedSpan kernel_span(job.span_name != nullptr ? job.span_name : "exec.job.tiles",
                                  job.span_tag, job.tiles);
    const CancelToken cancel = job.cancel;
    if (job.tiles > 0) {
      switch (job.dispatch) {
        case JobDispatch::kSerial: {
          std::size_t done = 0;
          for (std::size_t t = 0; t < job.tiles && !cancel.cancelled(); ++t) {
            job.tile(nullptr, t, 0U);
            ++done;
          }
          tiles_run.store(done, std::memory_order_relaxed);
          break;
        }
        case JobDispatch::kDynamic:
          ctx_.parallel_dynamic(job.tiles, [&](std::size_t t, unsigned tid) {
            if (cancel.cancelled()) {
              return;
            }
            job.tile(nullptr, t, tid);
            tiles_run.fetch_add(1, std::memory_order_relaxed);
          });
          break;
        case JobDispatch::kStatic:
          if (job.make_state) {
            ctx_.parallel_static_state(
                job.tiles, [&](unsigned tid) { return job.make_state(tid); },
                [&](const std::shared_ptr<void>& state, std::size_t t, unsigned tid) {
                  if (cancel.cancelled()) {
                    return;
                  }
                  job.tile(state.get(), t, tid);
                  tiles_run.fetch_add(1, std::memory_order_relaxed);
                });
          } else {
            ctx_.parallel_static(job.tiles, [&](std::size_t t, unsigned tid) {
              if (cancel.cancelled()) {
                return;
              }
              job.tile(nullptr, t, tid);
              tiles_run.fetch_add(1, std::memory_order_relaxed);
            });
          }
          break;
      }
    }
  }
  record.tiles_run = tiles_run.load(std::memory_order_relaxed);
  record.run_ns = now_ns() - start_ns;
  record.structure_cache_hits = ctx_.structures().hits() - hits_before;
  record.structure_cache_misses = ctx_.structures().misses() - misses_before;
  record.state = (job.cancel.cancelled() && record.tiles_run < record.tiles)
                     ? JobState::kCancelled
                     : JobState::kDone;
  record.deadline_missed =
      record.deadline_ns != 0 && record.queue_wait_ns + record.run_ns > record.deadline_ns;
  finish_record(std::move(record));
}

void JobGraph::finish_record(JobRecord record) {
  const JobCounters& c = job_counters();
  auto& tracer = trace::Tracer::instance();
  tracer.add(record.state == JobState::kCancelled ? c.jobs_cancelled : c.jobs_run, 1);
  tracer.add(c.tiles, record.tiles_run);
  tracer.add(c.queue_wait_ns, record.queue_wait_ns);
  tracer.add(c.run_ns, record.run_ns);
  if (record.deadline_missed) {
    tracer.add(c.jobs_deadline_missed, 1);
  }
  if (TraceSession* session = TraceSession::current()) {
    trace::JobReportEntry entry;
    entry.id = record.id;
    entry.kernel = record.kernel;
    entry.state = to_string(record.state);
    entry.tiles = record.tiles;
    entry.tiles_run = record.tiles_run;
    entry.queue_wait_ns = record.queue_wait_ns;
    entry.run_ns = record.run_ns;
    entry.deadline_ns = record.deadline_ns;
    entry.deadline_missed = record.deadline_missed;
    entry.structure_cache_hits = record.structure_cache_hits;
    entry.structure_cache_misses = record.structure_cache_misses;
    session->add_job(std::move(entry));
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
  while (records_.size() > kMaxRecords) {
    records_.pop_front();
  }
}

std::size_t JobGraph::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::vector<JobRecord> JobGraph::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {records_.begin(), records_.end()};
}

std::optional<JobRecord> JobGraph::find_record(JobId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const JobRecord& r : records_) {
    if (r.id == id) {
      return r;
    }
  }
  return std::nullopt;
}

void JobGraph::clear_records() {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

}  // namespace sfcvis::exec
