#include "sfcvis/exec/execution_context.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "sfcvis/trace/trace.hpp"

namespace sfcvis::exec {

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::kPool:
      return "pool";
    case Backend::kOpenMP:
      return "openmp";
  }
  return "?";
}

Backend parse_backend(std::string_view name) {
  if (name == "pool" || name == "pthread" || name == "pthreads") {
    return Backend::kPool;
  }
  if (name == "openmp" || name == "omp") {
    return Backend::kOpenMP;
  }
  throw std::invalid_argument("unknown backend: " + std::string(name));
}

Backend default_backend() noexcept {
  static const Backend backend = [] {
    const char* env = std::getenv("SFCVIS_BACKEND");
    if (env != nullptr && *env != '\0') {
      try {
        return parse_backend(env);
      } catch (const std::invalid_argument&) {
        std::fprintf(stderr,
                     "[exec] ignoring unknown SFCVIS_BACKEND=%s (want pool|openmp)\n", env);
      }
    }
    return Backend::kPool;
  }();
  return backend;
}

namespace {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1U;
}

}  // namespace

std::string ExecOptions::default_layout_registry_path() {
  const char* env = std::getenv("SFCVIS_LAYOUT_REGISTRY");
  return env != nullptr ? std::string(env) : std::string();
}

ExecutionContext::ExecutionContext(unsigned num_threads)
    : ExecutionContext(num_threads, threads::Affinity::kNone) {}

ExecutionContext::ExecutionContext(unsigned num_threads, threads::Affinity affinity)
    : ExecutionContext([&] {
        ExecOptions opts;
        opts.threads = num_threads;
        opts.affinity = affinity;
        return opts;
      }()) {}

ExecutionContext::ExecutionContext(const ExecOptions& opts)
    : num_threads_(resolve_threads(opts.threads)),
      requested_backend_(opts.backend),
      active_backend_(opts.backend),
      affinity_(opts.affinity),
      chunks_per_thread_(std::max<std::size_t>(1, opts.chunks_per_thread)),
      memory_(opts.memory) {
  if (opts.threads == 0 && num_threads_ == 1 && std::thread::hardware_concurrency() == 0) {
    backend_note_ = "hardware concurrency unknown; using 1 thread";
  }
  if (requested_backend_ == Backend::kOpenMP && !threads::openmp_available()) {
    active_backend_ = Backend::kPool;
    backend_note_ = "OpenMP requested but this build has no OpenMP runtime; "
                    "falling back to the pthread pool";
  }
  if (!opts.trace_out.empty() || !opts.report_out.empty() || opts.trace) {
    trace_session_ =
        std::make_unique<TraceSession>(opts.trace_out, opts.report_out, opts.trace);
  }
  if (opts.layout_registry.empty()) {
    layout_registry_note_ =
        "no layout registry configured (set SFCVIS_LAYOUT_REGISTRY or "
        "ExecOptions::layout_registry)";
  } else {
    try {
      layout_registry_ = LayoutRegistry::load(opts.layout_registry);
      layout_registry_note_ = "loaded " + std::to_string(layout_registry_.size()) +
                              " tuned layout(s) from " + opts.layout_registry;
    } catch (const std::runtime_error& ex) {
      layout_registry_note_ = std::string("layout registry unavailable: ") + ex.what();
    }
  }
}

ExecutionContext::~ExecutionContext() = default;

threads::Pool& ExecutionContext::pool() {
  if (!pool_) {
    pool_ = std::make_unique<threads::Pool>(num_threads_, affinity_);
  }
  return *pool_;
}

JobGraph& ExecutionContext::jobs() {
  if (!jobs_) {
    jobs_ = std::make_unique<JobGraph>(*this);
  }
  return *jobs_;
}

void ExecutionContext::parallel_static(
    std::size_t num_items, const std::function<void(std::size_t, unsigned)>& fn) {
  if (active_backend_ == Backend::kOpenMP &&
      threads::parallel_for_omp_static(num_threads_, num_items, fn)) {
    return;
  }
  threads::parallel_for_static(pool(), num_items, fn);
}

void ExecutionContext::parallel_dynamic(
    std::size_t num_items, const std::function<void(std::size_t, unsigned)>& fn) {
  if (active_backend_ == Backend::kOpenMP &&
      threads::parallel_for_omp_dynamic(num_threads_, num_items, fn)) {
    return;
  }
  threads::parallel_for_dynamic(pool(), num_items, fn);
}

std::size_t ExecutionContext::curve_chunks(std::size_t logical_size,
                                           std::size_t padded_capacity) const noexcept {
  return std::max<std::size_t>(
      1, num_threads_ * chunks_per_thread_ * padded_capacity /
             std::max<std::size_t>(1, logical_size));
}

core::FirstTouchFn ExecutionContext::first_touch_fn() {
  return [this](std::size_t count,
                const std::function<void(std::size_t, std::size_t)>& touch) {
    if (count == 0) {
      return;
    }
    const std::size_t per = (count + num_threads_ - 1) / num_threads_;
    parallel_static(num_threads_, [&](std::size_t t, unsigned) {
      const std::size_t begin = t * per;
      const std::size_t end = std::min(count, begin + per);
      if (begin < end) {
        touch(begin, end);
      }
    });
  };
}

core::AnyVolume ExecutionContext::make_volume(core::LayoutKind kind,
                                              const core::Extents3D& extents,
                                              std::uint32_t tile,
                                              std::string_view interleave) {
  core::VolumeOpts opts;
  opts.tile = tile;
  opts.interleave = std::string(interleave);
  opts.memory = memory_;
  if (memory_.first_touch) {
    opts.first_touch = first_touch_fn();
  }
  return core::make_volume(kind, extents, opts);
}

ResolvedLayout ExecutionContext::resolve_layout(std::string_view kernel,
                                                const core::Extents3D& extents,
                                                std::string_view platform) const {
  ResolvedLayout out;
  const std::string shape = shape_key(extents);
  if (const TunedLayout* entry = layout_registry_.find(kernel, shape, platform)) {
    out.kind = core::LayoutKind::kGMorton;
    out.interleave = entry->interleave;
    out.tuned = true;
    out.note = "tuned layout for (" + entry->kernel + ", " + entry->shape + ", " +
               entry->platform + "): \"" + entry->interleave + "\"";
    return out;
  }
  out.kind = core::LayoutKind::kZOrder;
  out.tuned = false;
  out.note = "no tuned entry for (" + std::string(kernel) + ", " + shape + ", " +
             (platform.empty() ? "any" : std::string(platform)) +
             "); falling back to canonical z-order — " + layout_registry_note_;
  return out;
}

core::AnyVolume ExecutionContext::open_bricked(const std::string& path,
                                               std::uint32_t prefetch_depth) {
  core::BrickOpenOptions opts;
  opts.cache_bytes = memory_.brick_cache_bytes;
  opts.force_stream = memory_.brick_cache_bytes != 0;
  opts.prefetch_depth = prefetch_depth;
  SFCVIS_TRACE_SPAN("exec.open_bricked", opts.cache_bytes != 0 ? "stream" : "mmap");
  return core::AnyVolume(core::BrickedVolume::open(path, opts));
}

core::BrickCacheReport publish_brick_cache_metrics(const core::BrickedVolume& volume) {
  const core::BrickCacheReport delta = volume.drain_cache_deltas();
  auto& tracer = trace::Tracer::instance();
  static const trace::CounterId k_hit = tracer.counter_id("bricked.cache_hit");
  static const trace::CounterId k_miss = tracer.counter_id("bricked.cache_miss");
  static const trace::CounterId k_evict = tracer.counter_id("bricked.evictions");
  static const trace::CounterId k_overflow = tracer.counter_id("bricked.overflow_bricks");
  static const trace::CounterId k_pf_issued = tracer.counter_id("bricked.prefetch_issued");
  static const trace::CounterId k_pf_hits = tracer.counter_id("bricked.prefetch_hits");
  tracer.add(k_hit, delta.hits);
  tracer.add(k_miss, delta.misses);
  tracer.add(k_evict, delta.evictions);
  tracer.add(k_overflow, delta.overflow_bricks);
  tracer.add(k_pf_issued, delta.prefetch_issued);
  tracer.add(k_pf_hits, delta.prefetch_hits);
  return delta;
}

}  // namespace sfcvis::exec
