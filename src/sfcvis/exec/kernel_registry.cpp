#include "sfcvis/exec/kernel_registry.hpp"

#include <stdexcept>

namespace sfcvis::exec {

const char* to_string(JobPriority priority) noexcept {
  switch (priority) {
    case JobPriority::kNormal:
      return "normal";
    case JobPriority::kHigh:
      return "high";
  }
  return "?";
}

const char* to_string(JobDispatch dispatch) noexcept {
  switch (dispatch) {
    case JobDispatch::kStatic:
      return "static";
    case JobDispatch::kDynamic:
      return "dynamic";
    case JobDispatch::kSerial:
      return "serial";
  }
  return "?";
}

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry registry;
  return registry;
}

KernelRegistry::KernelRegistry() {
  // The built-in catalog. Decomposers are the shapes the drivers have
  // always used; "replay" kernels re-run a recorded static round-robin
  // assignment in order on one thread (the traced memsim/locality path).
  const KernelInfo builtins[] = {
      {"bilateral", "pencils", JobDispatch::kStatic, false, ""},
      {"bilateral.zsweep", "curve-chunks", JobDispatch::kStatic, false, ""},
      {"bilateral.traced", "replay", JobDispatch::kSerial, false, ""},
      {"bilateral.zsweep.traced", "replay", JobDispatch::kSerial, false, ""},
      {"bilateral2d", "rows", JobDispatch::kStatic, false, ""},
      {"gaussian", "pencils", JobDispatch::kStatic, false, ""},
      {"median", "pencils", JobDispatch::kStatic, false, ""},
      {"gradient", "pencils", JobDispatch::kStatic, false, ""},
      {"raycast", "image-tiles", JobDispatch::kDynamic, true, "macrocell"},
      {"raycast.traced", "replay", JobDispatch::kSerial, false, ""},
  };
  for (const KernelInfo& info : builtins) {
    kernels_.push_back(info);
  }
}

void KernelRegistry::register_kernel(KernelInfo info) {
  if (info.name.empty()) {
    throw std::invalid_argument("KernelRegistry::register_kernel: empty kernel name");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const KernelInfo& existing : kernels_) {
    if (existing.name == info.name) {
      throw std::invalid_argument("KernelRegistry::register_kernel: duplicate kernel '" +
                                  info.name + "'");
    }
  }
  kernels_.push_back(std::move(info));
}

const KernelInfo* KernelRegistry::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const KernelInfo& info : kernels_) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

std::vector<std::string> KernelRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(kernels_.size());
  for (const KernelInfo& info : kernels_) {
    out.push_back(info.name);
  }
  return out;
}

}  // namespace sfcvis::exec
