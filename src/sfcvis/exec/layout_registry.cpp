#include "sfcvis/exec/layout_registry.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "sfcvis/trace/json.hpp"

namespace sfcvis::exec {

std::string shape_key(const core::Extents3D& extents) {
  return std::to_string(extents.nx) + "x" + std::to_string(extents.ny) + "x" +
         std::to_string(extents.nz);
}

void LayoutRegistry::add(TunedLayout entry) {
  for (TunedLayout& existing : entries_) {
    if (existing.kernel == entry.kernel && existing.shape == entry.shape &&
        existing.platform == entry.platform) {
      existing = std::move(entry);
      return;
    }
  }
  entries_.push_back(std::move(entry));
}

const TunedLayout* LayoutRegistry::find(std::string_view kernel, std::string_view shape,
                                        std::string_view platform) const noexcept {
  const TunedLayout* wildcard = nullptr;
  for (const TunedLayout& e : entries_) {
    if (e.kernel != kernel || e.shape != shape) {
      continue;
    }
    if (e.platform == platform) {
      return &e;
    }
    if (wildcard == nullptr && (platform.empty() || e.platform == "any")) {
      wildcard = &e;
    }
  }
  return wildcard;
}

namespace {

/// Recursive-descent parser for the registry's JSON subset: objects,
/// arrays, strings (no \u escapes — the writer never emits them), numbers,
/// bools, null. Tracks a byte offset for error messages.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(std::string_view text) : text_(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("layout registry JSON: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "' but found '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default: fail(std::string("unsupported escape '\\") + esc + "'");
        }
        continue;
      }
      out += c;
    }
  }

  [[nodiscard]] double parse_number() {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (begin == pos_) {
      fail("expected a number");
    }
    try {
      return std::stod(std::string(text_.substr(begin, pos_ - begin)));
    } catch (const std::exception&) {
      fail("malformed number \"" + std::string(text_.substr(begin, pos_ - begin)) + "\"");
    }
  }

  /// Skips any value (used for unknown object keys).
  void skip_value() {
    const char c = peek();
    if (c == '"') {
      (void)parse_string();
      return;
    }
    if (c == '{') {
      ++pos_;
      if (!consume('}')) {
        do {
          (void)parse_string();
          expect(':');
          skip_value();
        } while (consume(','));
        expect('}');
      }
      return;
    }
    if (c == '[') {
      ++pos_;
      if (!consume(']')) {
        do {
          skip_value();
        } while (consume(','));
        expect(']');
      }
      return;
    }
    if (c == 't' || c == 'f' || c == 'n') {
      const std::string_view word = c == 't' ? "true" : c == 'f' ? "false" : "null";
      if (text_.substr(pos_, word.size()) != word) {
        fail("malformed literal");
      }
      pos_ += word.size();
      return;
    }
    (void)parse_number();
  }

  [[nodiscard]] TunedLayout parse_entry() {
    TunedLayout e;
    expect('{');
    if (!consume('}')) {
      do {
        const std::string key = parse_string();
        expect(':');
        if (key == "kernel") {
          e.kernel = parse_string();
        } else if (key == "shape") {
          e.shape = parse_string();
        } else if (key == "platform") {
          e.platform = parse_string();
        } else if (key == "interleave") {
          e.interleave = parse_string();
        } else if (key == "fitness") {
          e.fitness = parse_number();
        } else if (key == "baseline_fitness") {
          e.baseline_fitness = parse_number();
        } else if (key == "generations") {
          e.generations = static_cast<std::uint32_t>(parse_number());
        } else if (key == "seed") {
          e.seed = static_cast<std::uint64_t>(parse_number());
        } else if (key == "note") {
          e.note = parse_string();
        } else {
          skip_value();
        }
      } while (consume(','));
      expect('}');
    }
    if (e.kernel.empty() || e.shape.empty() || e.interleave.empty()) {
      fail("entry missing required key (kernel, shape, interleave)");
    }
    return e;
  }

  [[nodiscard]] LayoutRegistry parse_document() {
    LayoutRegistry reg;
    bool version_seen = false;
    expect('{');
    if (!consume('}')) {
      do {
        const std::string key = parse_string();
        expect(':');
        if (key == "sfcvis_layout_registry") {
          const double version = parse_number();
          if (version != 1.0) {
            fail("unsupported registry version " + std::to_string(version));
          }
          version_seen = true;
        } else if (key == "entries") {
          expect('[');
          if (!consume(']')) {
            do {
              reg.add(parse_entry());
            } while (consume(','));
            expect(']');
          }
        } else {
          skip_value();
        }
      } while (consume(','));
      expect('}');
    }
    if (!version_seen) {
      fail("missing \"sfcvis_layout_registry\" version key");
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after document");
    }
    return reg;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

LayoutRegistry LayoutRegistry::from_json(std::string_view json) {
  return MiniJsonParser(json).parse_document();
}

LayoutRegistry LayoutRegistry::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("layout registry: cannot open " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  try {
    return from_json(text);
  } catch (const std::runtime_error& ex) {
    throw std::runtime_error(std::string(ex.what()) + " (" + path + ")");
  }
}

std::string LayoutRegistry::to_json() const {
  trace::JsonWriter w;
  w.begin_object();
  w.key("sfcvis_layout_registry");
  w.value(std::uint64_t{1});
  w.key("entries");
  w.begin_array();
  for (const TunedLayout& e : entries_) {
    w.begin_object();
    w.key("kernel");
    w.value(e.kernel);
    w.key("shape");
    w.value(e.shape);
    w.key("platform");
    w.value(e.platform);
    w.key("interleave");
    w.value(e.interleave);
    w.key("fitness");
    w.value(e.fitness);
    w.key("baseline_fitness");
    w.value(e.baseline_fitness);
    w.key("generations");
    w.value(static_cast<std::uint64_t>(e.generations));
    w.key("seed");
    w.value(e.seed);
    w.key("note");
    w.value(e.note);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take() + "\n";
}

void LayoutRegistry::save(const std::string& path) const {
  const std::string text = to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("layout registry: cannot write " + path);
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    throw std::runtime_error("layout registry: short write to " + path);
  }
}

}  // namespace sfcvis::exec
