#include "sfcvis/bench_util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sfcvis::bench_util {

ResultTable::ResultTable(std::string title, std::vector<std::string> row_labels,
                         std::vector<std::string> col_labels)
    : title_(std::move(title)),
      row_labels_(std::move(row_labels)),
      col_labels_(std::move(col_labels)),
      cells_(row_labels_.size() * col_labels_.size(), 0.0) {}

void ResultTable::set(std::size_t row, std::size_t col, double value) {
  if (row >= rows() || col >= cols()) {
    throw std::out_of_range("ResultTable::set: index out of range");
  }
  cells_[row * cols() + col] = value;
}

double ResultTable::at(std::size_t row, std::size_t col) const {
  if (row >= rows() || col >= cols()) {
    throw std::out_of_range("ResultTable::at: index out of range");
  }
  return cells_[row * cols() + col];
}

std::string ResultTable::to_text(int precision) const {
  // Column widths: max of label and rendered cells, padded by 2.
  std::size_t label_width = 0;
  for (const auto& r : row_labels_) {
    label_width = std::max(label_width, r.size());
  }
  auto render = [precision](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  };
  std::vector<std::size_t> widths(cols());
  for (std::size_t c = 0; c < cols(); ++c) {
    widths[c] = col_labels_[c].size();
    for (std::size_t r = 0; r < rows(); ++r) {
      widths[c] = std::max(widths[c], render(at(r, c)).size());
    }
  }

  std::ostringstream os;
  os << title_ << "\n";
  os << std::string(label_width, ' ');
  for (std::size_t c = 0; c < cols(); ++c) {
    os << "  " << std::setw(static_cast<int>(widths[c])) << col_labels_[c];
  }
  os << "\n";
  for (std::size_t r = 0; r < rows(); ++r) {
    os << std::setw(static_cast<int>(label_width)) << std::left << row_labels_[r]
       << std::right;
    for (std::size_t c = 0; c < cols(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << render(at(r, c));
    }
    os << "\n";
  }
  return os.str();
}

std::string ResultTable::to_csv(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  os << "row";
  for (const auto& c : col_labels_) {
    os << "," << c;
  }
  os << "\n";
  for (std::size_t r = 0; r < rows(); ++r) {
    os << row_labels_[r];
    for (std::size_t c = 0; c < cols(); ++c) {
      os << "," << at(r, c);
    }
    os << "\n";
  }
  return os.str();
}

void ResultTable::write_csv(const std::filesystem::path& path, int precision) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("ResultTable::write_csv: cannot open " + path.string());
  }
  out << to_csv(precision);
  if (!out) {
    throw std::runtime_error("ResultTable::write_csv: write failed: " + path.string());
  }
}

}  // namespace sfcvis::bench_util
