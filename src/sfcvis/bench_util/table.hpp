// Figure-style result tables: labeled rows x columns of doubles, rendered
// as aligned text (the shape of the paper's Figs. 2, 3, 5, 6) and as CSV
// for downstream plotting.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

namespace sfcvis::bench_util {

/// A labeled 2D table of measurements.
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> row_labels,
              std::vector<std::string> col_labels);

  /// Sets cell (row, col); throws std::out_of_range on bad indices.
  void set(std::size_t row, std::size_t col, double value);

  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  [[nodiscard]] std::size_t rows() const noexcept { return row_labels_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return col_labels_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<std::string>& row_labels() const noexcept {
    return row_labels_;
  }
  [[nodiscard]] const std::vector<std::string>& col_labels() const noexcept {
    return col_labels_;
  }

  /// Aligned fixed-point text rendering (`precision` fractional digits).
  [[nodiscard]] std::string to_text(int precision = 2) const;

  /// CSV rendering: header row of column labels, one line per row.
  [[nodiscard]] std::string to_csv(int precision = 6) const;

  /// Writes to_csv() to `path`; throws std::runtime_error on IO failure.
  void write_csv(const std::filesystem::path& path, int precision = 6) const;

 private:
  std::string title_;
  std::vector<std::string> row_labels_;
  std::vector<std::string> col_labels_;
  std::vector<double> cells_;
};

}  // namespace sfcvis::bench_util
