// Measurement helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace sfcvis::bench_util {

/// The paper's Eq. 4: scaled relative difference ds = (a - z) / z, where
/// `a` is the array-order measurement and `z` the Z-order one. Positive
/// values mean Z-order is better (smaller); ds = 1.0 is a 100% difference.
[[nodiscard]] constexpr double scaled_relative_difference(double a, double z) noexcept {
  return z == 0.0 ? 0.0 : (a - z) / z;
}

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  /// Seconds since construction / last restart.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn` `reps` times and returns the fastest wall-clock seconds —
/// min-of-N, the standard noise-rejection discipline for runtime reporting.
template <class Fn>
[[nodiscard]] double min_time_of(unsigned reps, Fn&& fn) {
  double best = std::numeric_limits<double>::max();
  for (unsigned r = 0; r < reps; ++r) {
    const Timer timer;
    fn();
    const double elapsed = timer.seconds();
    if (elapsed < best) {
      best = elapsed;
    }
  }
  return best;
}

}  // namespace sfcvis::bench_util
