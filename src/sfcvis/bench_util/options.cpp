#include "sfcvis/bench_util/options.hpp"

#include <sstream>
#include <stdexcept>

namespace sfcvis::bench_util {

Options::Options(int argc, const char* const* argv) {
  for (int n = 1; n < argc; ++n) {
    const std::string token = argv[n];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw std::invalid_argument("Options: expected --key[=value], got '" + token + "'");
    }
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      values_[token.substr(2)] = "";  // bare flag
    } else {
      values_[token.substr(2, eq - 2)] = token.substr(eq + 1);
    }
  }
}

bool Options::has(const std::string& key) const { return values_.count(key) != 0; }

std::string Options::get_string(const std::string& key, const std::string& fallback) const {
  const auto found = values_.find(key);
  return found == values_.end() ? fallback : found->second;
}

std::uint32_t Options::get_u32(const std::string& key, std::uint32_t fallback) const {
  const auto found = values_.find(key);
  if (found == values_.end()) {
    return fallback;
  }
  std::size_t consumed = 0;
  const unsigned long value = std::stoul(found->second, &consumed);
  if (consumed != found->second.size()) {
    throw std::invalid_argument("Options: --" + key + " is not an unsigned integer");
  }
  return static_cast<std::uint32_t>(value);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto found = values_.find(key);
  if (found == values_.end()) {
    return fallback;
  }
  std::size_t consumed = 0;
  const double value = std::stod(found->second, &consumed);
  if (consumed != found->second.size()) {
    throw std::invalid_argument("Options: --" + key + " is not a number");
  }
  return value;
}

bool Options::get_flag(const std::string& key) const {
  const auto found = values_.find(key);
  if (found == values_.end()) {
    return false;
  }
  if (!found->second.empty() && found->second != "1" && found->second != "true") {
    throw std::invalid_argument("Options: --" + key + " is a flag; drop the value");
  }
  return true;
}

std::vector<std::uint32_t> Options::get_u32_list(
    const std::string& key, const std::vector<std::uint32_t>& fallback) const {
  const auto found = values_.find(key);
  if (found == values_.end()) {
    return fallback;
  }
  std::vector<std::uint32_t> out;
  std::istringstream stream(found->second);
  std::string item;
  while (std::getline(stream, item, ',')) {
    std::size_t consumed = 0;
    out.push_back(static_cast<std::uint32_t>(std::stoul(item, &consumed)));
    if (consumed != item.size()) {
      throw std::invalid_argument("Options: --" + key + " has a malformed element '" +
                                  item + "'");
    }
  }
  if (out.empty()) {
    throw std::invalid_argument("Options: --" + key + " list is empty");
  }
  return out;
}

}  // namespace sfcvis::bench_util
