// Minimal --key=value command-line options for the bench binaries, so
// every figure harness exposes the same knobs (--size, --threads, --reps,
// --csv-dir, --quick) without a dependency on a CLI library.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sfcvis::bench_util {

/// Parsed --key=value (or --flag) command line.
class Options {
 public:
  /// Accepts "--key=value" and bare "--flag" tokens; anything else throws
  /// std::invalid_argument (bench binaries take no positional arguments).
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters with defaults; malformed values throw.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::uint32_t get_u32(const std::string& key, std::uint32_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_flag(const std::string& key) const;

  /// Comma-separated unsigned list, e.g. --threads=2,4,8.
  [[nodiscard]] std::vector<std::uint32_t> get_u32_list(
      const std::string& key, const std::vector<std::uint32_t>& fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace sfcvis::bench_util
