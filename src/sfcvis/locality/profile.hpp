// Workload drivers for the locality observatory: run a kernel's
// deterministic traced replay with a LocalityProfiler as the sink provider
// and publish the resulting profile into the active exec::TraceSession's
// always-present "locality" run-report section.
//
// The workloads are the same capped replays the layout tuner evaluates
// (against-the-grain bilateral pencils, orbit-camera raycast), so a
// locality profile and a tuner fitness over the same volume describe the
// identical access stream.
#pragma once

#include <cstdint>
#include <string>

#include "sfcvis/core/volume.hpp"
#include "sfcvis/locality/reuse.hpp"

namespace sfcvis::locality {

/// One traced-replay workload.
struct WorkloadConfig {
  std::string kernel = "bilateral";  ///< "bilateral" | "raycast"
  unsigned threads = 4;              ///< simulated round-robin threads
  std::size_t trace_items = 64;      ///< replay cap (pencils / tiles)
  std::uint32_t trace_image = 32;    ///< raycast traced image edge
};

/// Fills `volume` with the workload's dataset (MRI phantom for bilateral,
/// combustion for raycast) — the same master data the tuner evaluates on.
void fill_workload_volume(core::AnyVolume& volume, const std::string& kernel);

/// Runs the workload's traced replay over `volume` (already filled) and
/// returns the finished profile. `layout` labels the profile (pass e.g.
/// the layout spec the volume was built from); workload.threads overrides
/// config.threads so the replay interleaving matches the modeled machine.
[[nodiscard]] trace::LocalityProfile profile_workload(const core::AnyVolume& volume,
                                                      const std::string& layout,
                                                      const WorkloadConfig& workload,
                                                      LocalityConfig config = {});

/// Posts a finished profile to the active exec::TraceSession; returns
/// false (and drops the profile) when no session is active.
bool publish_profile(trace::LocalityProfile profile);

}  // namespace sfcvis::locality
