// Online reuse-distance (LRU stack-distance) profiling over the TracedView
// address streams.
//
// The repo's memsim answers "how many cycles does this layout cost on this
// modeled machine?"; this module answers *why*: per kernel x layout it
// measures how soon each cache line / page is touched again (reuse
// distance = number of distinct granules touched since the previous access
// to the same granule), folds those distances into miss-ratio curves at a
// pinned ladder of modeled cache sizes, and tracks how much of every
// fetched line the kernel actually consumed. Because TracedView rebases
// addresses to a synthetic origin, every number here is a pure function of
// (layout, kernel) — bit-stable across machines, so CI can gate it.
//
// Two engines share the accounting:
//  * ReuseStack        — exact distances: hash map (granule -> last access
//                        time) + Fenwick tree over timestamps, O(log n)
//                        per access, with periodic timestamp compaction so
//                        memory stays O(working set).
//  * SampledReuseStack — SHARDS-style fixed-rate spatial sampling (Waldspurger
//                        et al., FAST'15): only granules whose hash passes a
//                        1/2^k filter are tracked, distances and counts are
//                        scaled by 2^k. Hash-based, therefore deterministic —
//                        the cheap fitness signal the layout tuner uses.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sfcvis/trace/export.hpp"

namespace sfcvis::locality {

/// Modeled cache capacities (bytes) the line-granularity miss-ratio curve
/// is evaluated at: 4 KiB .. 64 MiB, one point per power of two. Pinned so
/// reports from different runs/machines are cell-for-cell comparable.
[[nodiscard]] const std::vector<std::uint64_t>& line_capacity_ladder();

/// Modeled TLB reaches (entry counts) for the page-granularity curve:
/// 8 .. 1024 entries, one point per power of two. Reported as
/// capacity_bytes = entries * page_bytes.
[[nodiscard]] const std::vector<std::uint64_t>& page_entry_ladder();

/// Exact LRU stack-distance tracker over one granule size.
class ReuseStack {
 public:
  /// Returned for a first-touch (infinite-distance) access.
  static constexpr std::uint64_t kCold = ~0ull;

  /// Records an access to `granule` and returns its reuse distance: the
  /// number of distinct granules touched since the previous access to it,
  /// or kCold on first touch. An LRU cache holding C granules hits iff
  /// the distance is finite and < C.
  std::uint64_t touch(std::uint64_t granule);

  [[nodiscard]] std::uint64_t distinct() const noexcept { return last_.size(); }

 private:
  void fenwick_add(std::size_t pos, std::int64_t delta);
  [[nodiscard]] std::uint64_t fenwick_prefix(std::size_t pos) const;
  void compact();

  std::unordered_map<std::uint64_t, std::uint64_t> last_;  ///< granule -> time (1-based)
  std::vector<std::int32_t> fenwick_;  ///< 1-indexed over time; 1 = live position
  std::uint64_t time_ = 0;             ///< last assigned timestamp
};

/// SHARDS fixed-rate sampled stack: tracks the subset of granules whose
/// mixed hash passes a 1/2^rate_log2 filter and reports distances scaled
/// back to the full stream.
class SampledReuseStack {
 public:
  explicit SampledReuseStack(std::uint32_t rate_log2) : rate_log2_(rate_log2) {}

  struct Sample {
    bool sampled = false;           ///< granule passed the hash filter
    std::uint64_t distance = 0;     ///< estimated full-stream distance
    bool cold = false;              ///< first touch of a sampled granule
  };

  [[nodiscard]] Sample touch(std::uint64_t granule);

  [[nodiscard]] std::uint64_t weight() const noexcept { return 1ull << rate_log2_; }
  [[nodiscard]] std::uint32_t rate_log2() const noexcept { return rate_log2_; }
  [[nodiscard]] std::uint64_t sampled_distinct() const noexcept { return stack_.distinct(); }

 private:
  std::uint32_t rate_log2_;
  ReuseStack stack_;
};

/// Distance accounting for one granularity: log2 histogram plus exact
/// per-ladder miss counters (misses are counted directly at each pinned
/// capacity, not re-derived from the coarse histogram).
class GranularityCounters {
 public:
  static constexpr unsigned kHistBuckets = 40;

  /// `ladder_granules` must be ascending, deduplicated, and nonzero.
  explicit GranularityCounters(std::vector<std::uint64_t> ladder_granules);

  /// Records one access of weight `weight` (1 exact, 2^k sampled) with
  /// reuse distance `distance` in granules; pass ReuseStack::kCold for a
  /// first touch.
  void record(std::uint64_t distance, std::uint64_t weight);

  /// Folds the counters into the report slice. `granule_bytes` sizes the
  /// ladder capacities; `distinct` is the working set; `utilization` < 0
  /// means "not tracked".
  [[nodiscard]] trace::LocalityGranularity finish(std::uint32_t granule_bytes,
                                                  std::uint64_t distinct,
                                                  double utilization) const;

  /// Misses at one pinned capacity (in granules; must be a ladder entry).
  [[nodiscard]] std::uint64_t misses_at(std::uint64_t capacity_granules) const;

  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }
  [[nodiscard]] std::uint64_t cold() const noexcept { return cold_; }

 private:
  std::vector<std::uint64_t> ladder_;  ///< capacities in granules, ascending
  /// miss_rank_[j]: accesses whose distance reaches exactly the first j
  /// ladder entries (suffix-summed into per-entry misses at finish()).
  std::vector<std::uint64_t> miss_rank_;
  std::array<std::uint64_t, kHistBuckets> hist_{};
  std::uint64_t accesses_ = 0;
  std::uint64_t cold_ = 0;
};

/// Configuration for LocalityProfiler. Defaults match the modeled
/// platforms (64 B lines, 4 KiB pages) and the report ladders.
struct LocalityConfig {
  std::uint32_t line_bytes = 64;    ///< power of two in [8, 64]
  std::uint32_t page_bytes = 4096;  ///< power of two, >= line_bytes
  std::uint32_t sample_rate_log2 = 6;  ///< SHARDS rate 1/2^k
  bool exact = true;    ///< exact line+page stacks and line utilization
  bool sampled = true;  ///< SHARDS sampled line stack
  unsigned threads = 1; ///< simulated thread count (SinkProvider surface)
  /// Extra line-MRC capacities (bytes) evaluated exactly in addition to
  /// the pinned ladder — the tuner adds the scaled platform's last
  /// private level here so its fitness reads straight off the curve.
  std::vector<std::uint64_t> extra_line_capacities;
};

/// The locality observatory's front end: an AccessSink (feed it a traced
/// replay directly) and a SinkProvider (drop-in replacement for
/// memsim::Hierarchy in the *_traced kernel drivers). Replays are
/// single-threaded, so all simulated threads funnel into one merged
/// stream — exactly the interleaving the round-robin schedule defines.
class LocalityProfiler {
 public:
  explicit LocalityProfiler(LocalityConfig config = {});

  // AccessSink.
  void access(std::uint64_t addr, std::uint32_t bytes);

  // SinkProvider: cheap per-thread handles that forward to the profiler.
  class Sink {
   public:
    explicit Sink(LocalityProfiler* profiler) : profiler_(profiler) {}
    void access(std::uint64_t addr, std::uint32_t bytes) { profiler_->access(addr, bytes); }

   private:
    LocalityProfiler* profiler_;
  };
  [[nodiscard]] unsigned num_threads() const noexcept { return config_.threads; }
  [[nodiscard]] Sink sink(unsigned /*tid*/) noexcept { return Sink(this); }

  /// Estimated miss count of a fully-associative LRU cache of
  /// `capacity_bytes` at line granularity, read from the sampled (if
  /// enabled) or exact curve. `capacity_bytes` must be on the pinned
  /// ladder or in config.extra_line_capacities.
  [[nodiscard]] std::uint64_t miss_estimate(std::uint64_t capacity_bytes) const;

  /// Folds everything into the report slice; `kernel`/`layout` label it.
  [[nodiscard]] trace::LocalityProfile profile(std::string kernel,
                                               std::string layout) const;

  [[nodiscard]] const LocalityConfig& config() const noexcept { return config_; }

 private:
  LocalityConfig config_;
  std::uint64_t accesses_ = 0;
  std::uint64_t bytes_ = 0;
  // exact engines
  ReuseStack line_stack_;
  ReuseStack page_stack_;
  GranularityCounters line_counters_;
  GranularityCounters page_counters_;
  std::unordered_map<std::uint64_t, std::uint64_t> line_use_;  ///< line -> byte mask
  // sampled engine
  SampledReuseStack sampled_stack_;
  GranularityCounters sampled_counters_;
};

}  // namespace sfcvis::locality
