#include "sfcvis/locality/reuse.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace sfcvis::locality {

namespace {

/// SplitMix64 finalizer as a stateless hash — the SHARDS sampling filter
/// must be a pure function of the granule id so sampling is deterministic.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;

}  // namespace

const std::vector<std::uint64_t>& line_capacity_ladder() {
  static const std::vector<std::uint64_t> ladder = {
      4 * kKiB,   8 * kKiB,   16 * kKiB,  32 * kKiB, 64 * kKiB,
      128 * kKiB, 256 * kKiB, 512 * kKiB, 1 * kMiB,  2 * kMiB,
      4 * kMiB,   8 * kMiB,   16 * kMiB,  32 * kMiB, 64 * kMiB,
  };
  return ladder;
}

const std::vector<std::uint64_t>& page_entry_ladder() {
  static const std::vector<std::uint64_t> ladder = {8, 16, 32, 64, 128, 256, 512, 1024};
  return ladder;
}

// ---------------------------------------------------------------------------
// ReuseStack
// ---------------------------------------------------------------------------
// The Fenwick tree marks, for every live granule, the timestamp of its most
// recent access with a 1. The reuse distance of an access at time t whose
// previous access was at time t0 is then the number of 1s in (t0, t] minus
// the granule's own mark — i.e. live-count minus prefix(t0). Timestamps
// grow with every access, so the tree is periodically compacted: live
// entries are re-stamped 1..n in order, which preserves every distance.

void ReuseStack::fenwick_add(std::size_t pos, std::int64_t delta) {
  for (; pos < fenwick_.size(); pos += pos & (~pos + 1)) {
    fenwick_[pos] = static_cast<std::int32_t>(fenwick_[pos] + delta);
  }
}

std::uint64_t ReuseStack::fenwick_prefix(std::size_t pos) const {
  std::int64_t sum = 0;
  for (; pos > 0; pos -= pos & (~pos + 1)) {
    sum += fenwick_[pos];
  }
  return static_cast<std::uint64_t>(sum);
}

void ReuseStack::compact() {
  const std::size_t n = last_.size();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> by_time;  // (time, granule)
  by_time.reserve(n);
  for (const auto& [granule, time] : last_) {
    by_time.emplace_back(time, granule);
  }
  std::sort(by_time.begin(), by_time.end());
  const std::size_t capacity = std::max<std::size_t>(1024, 4 * n + 16);
  fenwick_.assign(capacity, 0);
  for (std::size_t i = 0; i < n; ++i) {
    last_[by_time[i].second] = i + 1;
    fenwick_[i + 1] = 1;
  }
  // O(capacity) Fenwick build over the all-ones prefix.
  for (std::size_t i = 1; i < capacity; ++i) {
    const std::size_t parent = i + (i & (~i + 1));
    if (parent < capacity) {
      fenwick_[parent] = static_cast<std::int32_t>(fenwick_[parent] + fenwick_[i]);
    }
  }
  time_ = n;
}

std::uint64_t ReuseStack::touch(std::uint64_t granule) {
  std::uint64_t distance = kCold;
  if (const auto it = last_.find(granule); it != last_.end()) {
    distance = last_.size() - fenwick_prefix(it->second);
    fenwick_add(it->second, -1);
    last_.erase(it);
  }
  if (time_ + 1 >= fenwick_.size()) {
    compact();
  }
  ++time_;
  fenwick_add(time_, +1);
  last_.emplace(granule, time_);
  return distance;
}

// ---------------------------------------------------------------------------
// SampledReuseStack
// ---------------------------------------------------------------------------

SampledReuseStack::Sample SampledReuseStack::touch(std::uint64_t granule) {
  Sample s;
  if ((mix64(granule) & (weight() - 1)) != 0) {
    return s;
  }
  s.sampled = true;
  const std::uint64_t raw = stack_.touch(granule);
  if (raw == ReuseStack::kCold) {
    s.cold = true;
  } else {
    // SHARDS: a distance of d among the 1/2^k sampled granules estimates
    // d * 2^k distinct granules in the full stream.
    s.distance = raw * weight();
  }
  return s;
}

// ---------------------------------------------------------------------------
// GranularityCounters
// ---------------------------------------------------------------------------

GranularityCounters::GranularityCounters(std::vector<std::uint64_t> ladder_granules)
    : ladder_(std::move(ladder_granules)), miss_rank_(ladder_.size() + 1, 0) {}

void GranularityCounters::record(std::uint64_t distance, std::uint64_t weight) {
  accesses_ += weight;
  if (distance == ReuseStack::kCold) {
    cold_ += weight;
    return;
  }
  const unsigned bucket = std::min<unsigned>(
      kHistBuckets - 1, distance == 0 ? 0u : static_cast<unsigned>(std::bit_width(distance)));
  hist_[bucket] += weight;
  // Entry i (capacity c_i granules) misses iff distance >= c_i; rank j is
  // how many ladder entries this access defeats.
  const std::size_t rank = static_cast<std::size_t>(
      std::upper_bound(ladder_.begin(), ladder_.end(), distance) - ladder_.begin());
  miss_rank_[rank] += weight;
}

std::uint64_t GranularityCounters::misses_at(std::uint64_t capacity_granules) const {
  const auto it = std::lower_bound(ladder_.begin(), ladder_.end(), capacity_granules);
  if (it == ladder_.end() || *it != capacity_granules) {
    throw std::invalid_argument("locality: capacity is not on the pinned MRC ladder");
  }
  const std::size_t i = static_cast<std::size_t>(it - ladder_.begin());
  std::uint64_t misses = cold_;
  for (std::size_t j = i + 1; j < miss_rank_.size(); ++j) {
    misses += miss_rank_[j];
  }
  return misses;
}

trace::LocalityGranularity GranularityCounters::finish(std::uint32_t granule_bytes,
                                                       std::uint64_t distinct,
                                                       double utilization) const {
  trace::LocalityGranularity g;
  g.granule_bytes = granule_bytes;
  g.accesses = accesses_;
  g.distinct = distinct;
  g.cold = cold_;
  g.utilization = utilization;
  unsigned last = 0;
  for (unsigned b = 0; b < kHistBuckets; ++b) {
    if (hist_[b] != 0) {
      last = b + 1;
    }
  }
  g.reuse_log2.assign(hist_.begin(), hist_.begin() + last);
  // Suffix-sum the rank counters into per-capacity misses (cold misses at
  // every size).
  std::uint64_t suffix = 0;
  std::vector<std::uint64_t> misses(ladder_.size(), 0);
  for (std::size_t i = ladder_.size(); i-- > 0;) {
    suffix += miss_rank_[i + 1];
    misses[i] = cold_ + suffix;
  }
  g.mrc.reserve(ladder_.size());
  for (std::size_t i = 0; i < ladder_.size(); ++i) {
    trace::LocalityMissPoint p;
    p.capacity_bytes = ladder_[i] * granule_bytes;
    p.miss_ratio = accesses_ == 0
                       ? 0.0
                       : static_cast<double>(misses[i]) / static_cast<double>(accesses_);
    g.mrc.push_back(p);
  }
  return g;
}

// ---------------------------------------------------------------------------
// LocalityProfiler
// ---------------------------------------------------------------------------

namespace {

/// Ladder of byte capacities -> deduplicated ascending granule counts.
std::vector<std::uint64_t> granule_ladder(const std::vector<std::uint64_t>& capacities,
                                          std::uint64_t granule_bytes) {
  if (granule_bytes == 0) {
    throw std::invalid_argument("locality: granule size must be nonzero");
  }
  std::vector<std::uint64_t> granules;
  granules.reserve(capacities.size());
  for (const std::uint64_t c : capacities) {
    granules.push_back(std::max<std::uint64_t>(1, c / granule_bytes));
  }
  std::sort(granules.begin(), granules.end());
  granules.erase(std::unique(granules.begin(), granules.end()), granules.end());
  return granules;
}

std::vector<std::uint64_t> line_ladder_for(const LocalityConfig& config) {
  std::vector<std::uint64_t> capacities = line_capacity_ladder();
  capacities.insert(capacities.end(), config.extra_line_capacities.begin(),
                    config.extra_line_capacities.end());
  return granule_ladder(capacities, config.line_bytes);
}

}  // namespace

LocalityProfiler::LocalityProfiler(LocalityConfig config)
    : config_(std::move(config)),
      line_counters_(line_ladder_for(config_)),
      page_counters_(page_entry_ladder()),
      sampled_stack_(config_.sample_rate_log2),
      sampled_counters_(line_ladder_for(config_)) {
  if (!std::has_single_bit(config_.line_bytes) || config_.line_bytes < 8 ||
      config_.line_bytes > 64) {
    throw std::invalid_argument("locality: line_bytes must be a power of two in [8, 64]");
  }
  if (!std::has_single_bit(config_.page_bytes) || config_.page_bytes < config_.line_bytes) {
    throw std::invalid_argument("locality: page_bytes must be a power of two >= line_bytes");
  }
  if (config_.threads == 0) {
    throw std::invalid_argument("locality: threads must be >= 1");
  }
}

void LocalityProfiler::access(std::uint64_t addr, std::uint32_t bytes) {
  if (bytes == 0) {
    return;
  }
  ++accesses_;
  bytes_ += bytes;
  const std::uint64_t line_bytes = config_.line_bytes;
  const std::uint64_t first_line = addr / line_bytes;
  const std::uint64_t last_line = (addr + bytes - 1) / line_bytes;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    if (config_.exact) {
      line_counters_.record(line_stack_.touch(line), 1);
      const std::uint64_t line_base = line * line_bytes;
      const std::uint64_t begin = std::max<std::uint64_t>(addr, line_base) - line_base;
      const std::uint64_t end =
          std::min<std::uint64_t>(addr + bytes, line_base + line_bytes) - line_base;
      const std::uint64_t span = end - begin;
      const std::uint64_t mask =
          (span >= 64 ? ~0ull : ((1ull << span) - 1)) << begin;
      line_use_[line] |= mask;
    }
    if (config_.sampled) {
      const SampledReuseStack::Sample s = sampled_stack_.touch(line);
      if (s.sampled) {
        sampled_counters_.record(s.cold ? ReuseStack::kCold : s.distance,
                                 sampled_stack_.weight());
      }
    }
  }
  if (config_.exact) {
    const std::uint64_t first_page = addr / config_.page_bytes;
    const std::uint64_t last_page = (addr + bytes - 1) / config_.page_bytes;
    for (std::uint64_t page = first_page; page <= last_page; ++page) {
      page_counters_.record(page_stack_.touch(page), 1);
    }
  }
}

std::uint64_t LocalityProfiler::miss_estimate(std::uint64_t capacity_bytes) const {
  const std::uint64_t granules =
      std::max<std::uint64_t>(1, capacity_bytes / config_.line_bytes);
  return config_.sampled ? sampled_counters_.misses_at(granules)
                         : line_counters_.misses_at(granules);
}

trace::LocalityProfile LocalityProfiler::profile(std::string kernel,
                                                 std::string layout) const {
  trace::LocalityProfile p;
  p.kernel = std::move(kernel);
  p.layout = std::move(layout);
  p.accesses = accesses_;
  p.bytes = bytes_;
  double utilization = -1.0;
  if (config_.exact && !line_use_.empty()) {
    std::uint64_t used = 0;
    for (const auto& [line, mask] : line_use_) {
      used += static_cast<std::uint64_t>(std::popcount(mask));
    }
    utilization = static_cast<double>(used) /
                  (static_cast<double>(line_use_.size()) *
                   static_cast<double>(config_.line_bytes));
  }
  p.line = line_counters_.finish(config_.line_bytes, line_stack_.distinct(), utilization);
  p.page = page_counters_.finish(config_.page_bytes, page_stack_.distinct(), -1.0);
  p.sampled_available = config_.sampled;
  p.sample_rate_log2 = config_.sample_rate_log2;
  if (config_.sampled) {
    // The sampled working set is itself an estimate: each sampled granule
    // stands for 2^k granules of the full stream.
    p.sampled = sampled_counters_.finish(
        config_.line_bytes, sampled_stack_.sampled_distinct() * sampled_stack_.weight(),
        -1.0);
  }
  return p;
}

}  // namespace sfcvis::locality
