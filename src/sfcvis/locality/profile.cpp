#include "sfcvis/locality/profile.hpp"

#include <stdexcept>
#include <utility>

#include "sfcvis/data/combustion.hpp"
#include "sfcvis/data/phantom.hpp"
#include "sfcvis/exec/trace_session.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/render/raycast.hpp"

namespace sfcvis::locality {

namespace {

// The tuner's workload definitions (tuner/tuner.cpp): against-the-grain
// radius-3 z-pencils in zyx order for the filter, an orbit camera with the
// flame transfer function for the renderer.
filters::BilateralParams bilateral_params() {
  return filters::BilateralParams{3, 1.5f, 0.1f, filters::PencilAxis::kZ,
                                  filters::LoopOrder::kZYX};
}

render::RenderConfig raycast_config(std::uint32_t image) {
  return render::RenderConfig{image, image, 16, 0.5f, 0.98f};
}

render::Camera raycast_camera(const core::Extents3D& e) {
  return render::orbit_camera(2, 8, static_cast<float>(e.nx), static_cast<float>(e.ny),
                              static_cast<float>(e.nz));
}

}  // namespace

void fill_workload_volume(core::AnyVolume& volume, const std::string& kernel) {
  if (kernel == "bilateral") {
    volume.visit([](auto& g) { data::fill_mri_phantom(g); });
  } else if (kernel == "raycast") {
    volume.visit([](auto& g) { data::fill_combustion(g); });
  } else {
    throw std::invalid_argument("locality: unknown kernel \"" + kernel +
                                "\" (want bilateral or raycast)");
  }
}

trace::LocalityProfile profile_workload(const core::AnyVolume& volume,
                                        const std::string& layout,
                                        const WorkloadConfig& workload,
                                        LocalityConfig config) {
  config.threads = workload.threads;
  LocalityProfiler profiler(std::move(config));
  if (workload.kernel == "bilateral") {
    core::ArrayVolume dst(volume.extents());
    filters::bilateral_traced(volume, dst, bilateral_params(), profiler,
                              workload.trace_items);
  } else if (workload.kernel == "raycast") {
    (void)render::raycast_traced(volume, raycast_camera(volume.extents()),
                                 render::TransferFunction::flame(),
                                 raycast_config(workload.trace_image), profiler,
                                 workload.trace_items);
  } else {
    throw std::invalid_argument("locality: unknown kernel \"" + workload.kernel +
                                "\" (want bilateral or raycast)");
  }
  return profiler.profile(workload.kernel, layout);
}

bool publish_profile(trace::LocalityProfile profile) {
  exec::TraceSession* session = exec::TraceSession::current();
  if (session == nullptr) {
    return false;
  }
  session->add_locality(std::move(profile));
  return true;
}

}  // namespace sfcvis::locality
