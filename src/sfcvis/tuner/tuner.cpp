#include "sfcvis/tuner/tuner.hpp"

#include <algorithm>
#include <stdexcept>

#include "sfcvis/bench_util/stats.hpp"
#include "sfcvis/data/combustion.hpp"
#include "sfcvis/data/phantom.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/locality/reuse.hpp"
#include "sfcvis/memsim/hierarchy.hpp"
#include "sfcvis/render/raycast.hpp"
#include "sfcvis/verify/rng.hpp"

namespace sfcvis::tuner {

namespace {

/// The counter both benches report as "L2 escapes": reads the private
/// stack could not serve.
constexpr std::string_view kEscapeCounter = "L2_DATA_READ_MISS_MEM_FILL";

filters::BilateralParams bilateral_params() {
  // The bench's against-the-grain configuration (abl_layout_compare):
  // radius-3 z-pencils in zyx order, where layout matters most.
  return filters::BilateralParams{3, 1.5f, 0.1f, filters::PencilAxis::kZ,
                                  filters::LoopOrder::kZYX};
}

render::RenderConfig raycast_config(std::uint32_t image) {
  return render::RenderConfig{image, image, 16, 0.5f, 0.98f};
}

render::Camera raycast_camera(const core::Extents3D& e) {
  const auto fsize = static_cast<float>(e.nx);
  return render::orbit_camera(2, 8, fsize, static_cast<float>(e.ny),
                              static_cast<float>(e.nz));
}

void fill_master(core::AnyVolume& volume, const std::string& kernel) {
  if (kernel == "bilateral") {
    volume.visit([](auto& g) { data::fill_mri_phantom(g); });
  } else {
    volume.visit([](auto& g) { data::fill_combustion(g); });
  }
}

/// Mutates `pattern` in place: `swaps` random swaps of two positions that
/// hold different characters (a same-character swap is the identity).
void mutate(std::string& pattern, verify::SplitMix64& rng, unsigned swaps) {
  const std::size_t n = pattern.size();
  if (n < 2) {
    return;
  }
  for (unsigned s = 0; s < swaps; ++s) {
    for (unsigned attempt = 0; attempt < 8; ++attempt) {
      const std::size_t a = rng.below(n);
      const std::size_t b = rng.below(n);
      if (pattern[a] != pattern[b]) {
        std::swap(pattern[a], pattern[b]);
        break;
      }
    }
  }
}

/// A uniformly random valid pattern: Fisher-Yates over the canonical
/// multiset.
std::string random_pattern(const core::Extents3D& extents, verify::SplitMix64& rng) {
  std::string s = core::InterleavePattern::canonical(extents).str();
  for (std::size_t i = s.size(); i > 1; --i) {
    std::swap(s[i - 1], s[rng.below(i)]);
  }
  return s;
}

/// Runs the configured kernel's capped traced replay through any
/// SinkProvider (the hierarchy or the locality profiler).
template <core::SinkProvider ProviderT>
void run_traced(const TunerConfig& config, const core::AnyVolume& volume,
                ProviderT& provider) {
  if (config.kernel == "bilateral") {
    core::ArrayVolume dst(config.extents);
    filters::bilateral_traced(volume, dst, bilateral_params(), provider,
                              config.trace_items);
  } else {
    (void)render::raycast_traced(volume, raycast_camera(config.extents),
                                 render::TransferFunction::flame(),
                                 raycast_config(config.trace_image), provider,
                                 config.trace_items);
  }
}

}  // namespace

FitnessEvaluator::FitnessEvaluator(const TunerConfig& config)
    : config_(config),
      platform_(memsim::scaled(memsim::platform_by_name(config.platform_name),
                               config.cache_scale)),
      master_(core::make_volume(core::LayoutKind::kArray, config.extents)) {
  if (config_.kernel != "bilateral" && config_.kernel != "raycast") {
    throw std::invalid_argument("layout tuner: unknown kernel \"" + config_.kernel +
                                "\" (want bilateral or raycast)");
  }
  if (config_.fitness != "memsim" && config_.fitness != "sampled-mrc") {
    throw std::invalid_argument("layout tuner: unknown fitness \"" + config_.fitness +
                                "\" (want memsim or sampled-mrc)");
  }
  if (config_.fitness == "sampled-mrc" && platform_.private_levels.empty()) {
    throw std::invalid_argument(
        "layout tuner: sampled-mrc fitness needs a platform with private cache levels");
  }
  fill_master(master_, config_.kernel);
}

const Candidate& FitnessEvaluator::evaluate(const std::string& pattern) {
  if (const auto it = cache_.find(pattern); it != cache_.end()) {
    return it->second;
  }
  core::VolumeOpts opts;
  opts.interleave = pattern;
  core::AnyVolume volume =
      core::make_volume(core::LayoutKind::kGMorton, config_.extents, opts);
  volume.copy_from(master_);
  Candidate c;
  c.pattern = pattern;
  if (config_.fitness == "sampled-mrc") {
    // Cheap signal: SHARDS-sampled reuse distances only — no cache model.
    // Fitness is the estimated miss count at the scaled platform's last
    // private level, i.e. the sampled MRC read at the capacity whose
    // escapes the memsim fitness charges memory latency for.
    const memsim::CacheConfig& last_private = platform_.private_levels.back();
    locality::LocalityConfig lconfig;
    lconfig.exact = false;
    lconfig.sampled = true;
    lconfig.threads = config_.threads;
    lconfig.line_bytes = last_private.line_bytes;
    lconfig.extra_line_capacities = {last_private.size_bytes};
    locality::LocalityProfiler profiler(std::move(lconfig));
    run_traced(config_, volume, profiler);
    const std::uint64_t misses = profiler.miss_estimate(last_private.size_bytes);
    c.fitness = static_cast<double>(misses);
    c.escapes = misses;
  } else {
    memsim::Hierarchy hierarchy(platform_, config_.threads);
    run_traced(config_, volume, hierarchy);
    c.fitness = static_cast<double>(hierarchy.modeled_cycles_max());
    c.escapes = hierarchy.counter(kEscapeCounter);
  }
  return cache_.emplace(pattern, std::move(c)).first->second;
}

TunerResult search(const TunerConfig& config,
                   const std::function<void(const std::string&)>& progress) {
  FitnessEvaluator fitness(config);
  verify::SplitMix64 rng(config.seed * 0x9e3779b97f4a7c15ULL + 1);

  // Seed population: the classic degenerate family members first (the
  // search must never do worse than the best canonical layout), then
  // random permutations up to `population`.
  const core::Extents3D& e = config.extents;
  std::vector<std::string> seeds = {
      core::InterleavePattern::canonical(e).str(),
      core::InterleavePattern::array_order(e).str(),
      core::InterleavePattern::tiled(e, 8, 8, 8).str(),
      core::InterleavePattern::tiled(e, 4, 4, 4).str(),
  };
  std::vector<Candidate> population;
  auto add = [&](const std::string& pattern) {
    for (const Candidate& c : population) {
      if (c.pattern == pattern) {
        return;
      }
    }
    population.push_back(fitness.evaluate(pattern));
  };
  for (const std::string& s : seeds) {
    add(s);
  }
  while (population.size() < config.population) {
    add(random_pattern(e, rng));
  }
  auto by_fitness = [](const Candidate& a, const Candidate& b) {
    return a.fitness != b.fitness ? a.fitness < b.fitness : a.pattern < b.pattern;
  };
  std::sort(population.begin(), population.end(), by_fitness);

  TunerResult result;
  result.canonical_z = fitness.evaluate(seeds[0]);
  result.best_canonical = result.canonical_z;
  for (std::size_t s = 1; s < seeds.size(); ++s) {
    const Candidate& c = fitness.evaluate(seeds[s]);
    if (c.fitness < result.best_canonical.fitness) {
      result.best_canonical = c;
    }
  }

  const std::uint32_t mu = std::max<std::uint32_t>(1, config.survivors);
  for (std::uint32_t gen = 0; gen < config.generations; ++gen) {
    // mu elites survive; children are mutated copies of random elites
    // (1-3 swaps, biased toward small moves near convergence).
    std::vector<Candidate> next(population.begin(),
                                population.begin() +
                                    std::min<std::size_t>(mu, population.size()));
    auto contains = [&](const std::string& pattern) {
      return std::any_of(next.begin(), next.end(), [&](const Candidate& c) {
        return c.pattern == pattern;
      });
    };
    unsigned stale = 0;
    while (next.size() < config.population && stale < 4 * config.population) {
      std::string child = next[rng.below(std::min<std::size_t>(mu, next.size()))].pattern;
      mutate(child, rng, 1 + static_cast<unsigned>(rng.below(3)));
      if (contains(child)) {
        ++stale;
        continue;
      }
      next.push_back(fitness.evaluate(child));
    }
    std::sort(next.begin(), next.end(), by_fitness);
    population = std::move(next);
    result.generation_best.push_back(population.front());
    if (progress) {
      progress("gen " + std::to_string(gen + 1) + "/" +
               std::to_string(config.generations) + ": best \"" +
               population.front().pattern + "\" fitness " +
               std::to_string(population.front().fitness) + " (" +
               std::to_string(fitness.evaluations()) + " evals)");
    }
  }

  result.best = population.front();
  result.evaluations = fitness.evaluations();
  return result;
}

TunerResult quick_search(const std::string& kernel, const core::Extents3D& extents) {
  TunerConfig config;
  config.kernel = kernel;
  config.extents = extents;
  config.population = 10;
  config.survivors = 3;
  config.generations = 5;
  config.trace_items = 48;
  config.trace_image = 24;
  config.seed = 7;
  return search(config);
}

double measure_wallclock(const TunerConfig& config, core::LayoutKind kind,
                         const std::string& interleave, unsigned threads, unsigned reps) {
  core::VolumeOpts opts;
  opts.interleave = interleave;
  core::AnyVolume volume = core::make_volume(kind, config.extents, opts);
  fill_master(volume, config.kernel);
  exec::ExecutionContext ctx(threads);
  if (config.kernel == "bilateral") {
    core::ArrayVolume dst(config.extents);
    return bench_util::min_time_of(reps, [&] {
      filters::bilateral_parallel(volume, dst, bilateral_params(), ctx);
    });
  }
  const render::Camera camera = raycast_camera(config.extents);
  const auto tf = render::TransferFunction::flame();
  // Wall-clock validation renders a real image (4x the traced edge, at
  // least 64) so the measurement is not dominated by setup.
  const std::uint32_t image = std::max<std::uint32_t>(64, config.trace_image * 4);
  const render::RenderConfig rc = raycast_config(image);
  return bench_util::min_time_of(reps, [&] {
    (void)render::raycast_parallel(volume, camera, tf, rc, ctx);
  });
}

exec::TunedLayout to_registry_entry(const TunerConfig& config, const TunerResult& result) {
  exec::TunedLayout entry;
  entry.kernel = config.kernel;
  entry.shape = exec::shape_key(config.extents);
  entry.platform = config.platform_name;
  entry.interleave = result.best.pattern;
  entry.fitness = result.best.fitness;
  entry.baseline_fitness = result.canonical_z.fitness;
  entry.generations = config.generations;
  entry.seed = config.seed;
  entry.note = config.fitness + " " + config.platform_name + "/" +
               std::to_string(config.cache_scale) + "x-scaled, " +
               std::to_string(config.threads) + " modeled threads, " +
               std::to_string(result.evaluations) + " evaluations";
  return entry;
}

}  // namespace sfcvis::tuner
