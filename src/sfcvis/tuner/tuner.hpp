// Evolutionary layout auto-tuner over the generalized-Morton family.
//
// Answers the paper's core question — "which memory layout makes this
// kernel fastest on this machine?" — per workload instead of globally, the
// way Swatman et al. (arXiv:2309.07002) search generalized Morton layouts
// with a genetic algorithm. The genome is the interleave string itself (a
// permutation of the padded shape's multiset of 'x'/'y'/'z' bit
// characters); mutation swaps two positions holding different characters,
// which preserves validity by construction.
//
// Fitness is the deterministic memsim replay (memsim::Hierarchy modeled
// stall cycles on a capped trace prefix) — cheap, machine-independent, and
// bit-reproducible, so CI can re-run a search and get the identical
// winner. Hardware validation (wall clock of the native parallel kernel)
// is a separate, optional step on the finalists only; tools/layout_tuner
// orchestrates both and writes winners into exec::LayoutRegistry.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/layout_registry.hpp"
#include "sfcvis/memsim/platforms.hpp"

namespace sfcvis::tuner {

/// Everything one search run needs. The defaults match the CI smoke
/// configuration; tools/layout_tuner maps its flags onto this.
struct TunerConfig {
  std::string kernel = "bilateral";  ///< "bilateral" | "raycast"
  core::Extents3D extents = core::Extents3D::cube(32);
  std::string platform_name = "ivybridge";  ///< memsim::platform_by_name key
  std::uint32_t cache_scale = 16;  ///< memsim::scaled divisor (small volumes)
  unsigned threads = 4;            ///< modeled thread count for the replay
  std::size_t trace_items = 64;    ///< replay cap (pencils / tiles) per eval
  std::uint32_t trace_image = 32;  ///< raycast traced image edge
  std::uint32_t population = 12;   ///< lambda: candidates per generation
  std::uint32_t survivors = 4;     ///< mu: elites kept between generations
  std::uint32_t generations = 8;
  std::uint64_t seed = 1;  ///< SplitMix64 search seed (fully deterministic)
  /// Fitness signal: "memsim" replays through the full modeled hierarchy
  /// (fitness = modeled stall cycles); "sampled-mrc" replays through the
  /// SHARDS-sampled reuse-distance profiler only (fitness = estimated
  /// misses at the scaled platform's last private level) — the same
  /// ranking signal at a fraction of the per-candidate cost, since only
  /// ~1/64 of the lines are tracked. Both are deterministic.
  std::string fitness = "memsim";
};

/// One evaluated interleave pattern.
struct Candidate {
  std::string pattern;
  /// Lower is better: modeled stall cycles ("memsim") or estimated
  /// last-private-level misses ("sampled-mrc").
  double fitness = 0.0;
  /// Reads the private stack could not serve: L2_DATA_READ_MISS_MEM_FILL
  /// ("memsim") or the sampled miss estimate itself ("sampled-mrc").
  std::uint64_t escapes = 0;
};

/// Search outcome: the winner plus the canonical reference points the
/// acceptance criteria compare against.
struct TunerResult {
  Candidate best;
  Candidate canonical_z;              ///< canonical Z member, same evaluation
  Candidate best_canonical;           ///< best of {canonical Z, array, tiled 8/4}
  std::vector<Candidate> generation_best;  ///< per-generation winner trail
  std::size_t evaluations = 0;             ///< distinct patterns evaluated
};

/// Deterministic memsim fitness for one workload: owns the filled master
/// volume and memoizes per-pattern results so the search never pays for a
/// duplicate genome.
class FitnessEvaluator {
 public:
  explicit FitnessEvaluator(const TunerConfig& config);

  /// Modeled cost of running the configured kernel on a volume laid out
  /// with `pattern`. Memoized; identical calls are free.
  [[nodiscard]] const Candidate& evaluate(const std::string& pattern);

  [[nodiscard]] std::size_t evaluations() const noexcept { return cache_.size(); }
  [[nodiscard]] const TunerConfig& config() const noexcept { return config_; }

 private:
  TunerConfig config_;
  memsim::PlatformSpec platform_;
  core::AnyVolume master_;  ///< array-order, filled once; candidates copy from it
  std::map<std::string, Candidate> cache_;
};

/// Runs the (mu + lambda) evolutionary search. Seeded with the canonical,
/// array-order, and tiled family members plus random permutations;
/// deterministic for a fixed config. `progress` (optional) receives one
/// line per generation.
[[nodiscard]] TunerResult search(
    const TunerConfig& config,
    const std::function<void(const std::string&)>& progress = {});

/// A small deterministic search preset for benches and CI smoke: few
/// generations, capped trace, fixed seed. Same result every run.
[[nodiscard]] TunerResult quick_search(const std::string& kernel,
                                       const core::Extents3D& extents);

/// Wall-clock seconds (min over `reps`) of the native parallel kernel on a
/// volume of `kind`/`interleave` — the hardware-validation step for
/// finalists. Uses `threads` real threads.
[[nodiscard]] double measure_wallclock(const TunerConfig& config, core::LayoutKind kind,
                                       const std::string& interleave, unsigned threads,
                                       unsigned reps);

/// Packages a search result as a registry entry for (kernel, shape,
/// platform).
[[nodiscard]] exec::TunedLayout to_registry_entry(const TunerConfig& config,
                                                  const TunerResult& result);

}  // namespace sfcvis::tuner
