// Deterministic, platform-independent pseudo-random generator for the
// differential fuzz harness.
//
// std::mt19937 engines are bit-reproducible, but the standard library's
// *distributions* are not specified bit-exactly across implementations —
// and a fuzz seed that reproduces on the CI runner but not on a developer
// laptop is worthless. SplitMix64 (Steele, Lea & Flood 2014; the seeding
// engine of java.util.SplittableRandom and xoshiro) is five integer ops
// per draw with a fully specified output sequence, and the derived helpers
// below use only integer arithmetic plus exact power-of-two float scaling,
// so `fuzz_layouts --seed=N` generates the identical case everywhere.
#pragma once

#include <cstdint>
#include <span>

namespace sfcvis::verify {

/// SplitMix64: 64-bit state, 64-bit output, period 2^64.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniform bits.
  constexpr std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); bound must be >= 1. Uses 64 fresh bits
  /// per draw, so the modulo bias is < 2^-32 for any bound the harness uses.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform integer in [lo, hi] (inclusive).
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform float in [0, 1): the high 24 bits scaled by 2^-24 (exact).
  constexpr float unit_float() noexcept {
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
  }

  /// Uniform float in [lo, hi).
  constexpr float uniform(float lo, float hi) noexcept {
    return lo + (hi - lo) * unit_float();
  }

  /// True with probability `percent` / 100.
  constexpr bool chance(unsigned percent) noexcept { return below(100) < percent; }

  /// Uniformly picks one element of a non-empty span.
  template <class T>
  constexpr const T& pick(std::span<const T> options) noexcept {
    return options[below(options.size())];
  }
  template <class T, std::size_t N>
  constexpr const T& pick(const T (&options)[N]) noexcept {
    return options[below(N)];
  }

 private:
  std::uint64_t state_;
};

/// Stateless coordinate hash for deterministic, layout-independent volume
/// contents: the value at (i, j, k) depends only on (seed, i, j, k), never
/// on fill order, so every layout's grid is guaranteed identical by
/// construction. SplitMix64's finalizer doubles as the mixer.
[[nodiscard]] constexpr std::uint64_t hash_coord(std::uint64_t seed, std::uint32_t i,
                                                 std::uint32_t j, std::uint32_t k) noexcept {
  std::uint64_t z = seed ^ (static_cast<std::uint64_t>(i) |
                            (static_cast<std::uint64_t>(j) << 21) |
                            (static_cast<std::uint64_t>(k) << 42));
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// hash_coord reduced to a float in [0, 1).
[[nodiscard]] constexpr float hash_unit(std::uint64_t seed, std::uint32_t i,
                                        std::uint32_t j, std::uint32_t k) noexcept {
  return static_cast<float>(hash_coord(seed, i, j, k) >> 40) * 0x1.0p-24f;
}

}  // namespace sfcvis::verify
