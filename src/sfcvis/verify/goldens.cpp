#include "sfcvis/verify/goldens.hpp"

#include <utility>

#include "sfcvis/core/layout.hpp"
#include "sfcvis/core/morton.hpp"
#include "sfcvis/data/combustion.hpp"
#include "sfcvis/data/marschner_lobb.hpp"
#include "sfcvis/data/phantom.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/filters/gaussian.hpp"
#include "sfcvis/filters/median.hpp"
#include "sfcvis/render/camera.hpp"
#include "sfcvis/render/raycast.hpp"
#include "sfcvis/render/transfer.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/verify/rng.hpp"

namespace sfcvis::verify {

std::uint64_t image_checksum(const render::Image& img) {
  Fnv fnv;
  for (const auto& p : img.pixels()) {
    fnv.feed(p.r);
    fnv.feed(p.g);
    fnv.feed(p.b);
    fnv.feed(p.a);
  }
  return fnv.value();
}

namespace {

using core::ArrayOrderLayout;
using core::Extents3D;
using ArrayGrid = core::ArrayVolume;

/// Integer-only checksums first: these pin the SplitMix64 fill hash and the
/// Morton codec bit-for-bit and are portable across toolchains (no floats
/// were summed in their making).
std::uint64_t golden_fill_hash() {
  Fnv fnv;
  for (std::uint32_t k = 0; k < 9; ++k) {
    for (std::uint32_t j = 0; j < 10; ++j) {
      for (std::uint32_t i = 0; i < 12; ++i) {
        fnv.feed(hash_coord(42, i, j, k));
      }
    }
  }
  return fnv.value();
}

std::uint64_t golden_morton_codec() {
  Fnv fnv;
  // Encode a coordinate lattice, then walk steps in every direction from
  // each code — pins encode/decode and the dilated ripple-add increments.
  static constexpr std::uint32_t kCoords[] = {0, 1, 7, 8, 21, 255, (1u << 21) - 1};
  for (const std::uint32_t x : kCoords) {
    for (const std::uint32_t y : kCoords) {
      for (const std::uint32_t z : kCoords) {
        const std::uint64_t m = core::morton_encode_3d(x, y, z);
        fnv.feed(m);
        fnv.feed(core::morton_step_x(m, 1));
        fnv.feed(core::morton_step_y(m, 1));
        fnv.feed(core::morton_step_z(m, 1));
        fnv.feed(core::morton_step_x(m, -1));
        fnv.feed(core::morton_step_y(m, -1));
        fnv.feed(core::morton_step_z(m, -1));
      }
    }
  }
  return fnv.value();
}

}  // namespace

std::vector<GoldenEntry> compute_goldens() {
  std::vector<GoldenEntry> goldens;
  const auto add = [&](std::string name, std::uint64_t value) {
    goldens.push_back({std::move(name), value});
  };

  add("verify/fill-hash-12x10x9", golden_fill_hash());
  add("core/morton-codec", golden_morton_codec());

  const Extents3D e = Extents3D::cube(16);
  exec::ExecutionContext pool(3);

  ArrayGrid phantom(e);
  data::fill_mri_phantom(phantom,
                         {.seed = 1, .texture_amplitude = 0.02f, .noise_sigma = 0.03f});
  add("dataset/phantom-16", grid_checksum(phantom));

  ArrayGrid combustion(e);
  data::fill_combustion(combustion);
  add("dataset/combustion-16", grid_checksum(combustion));

  ArrayGrid lobb(e);
  data::fill_marschner_lobb(lobb);
  add("dataset/marschner-lobb-16", grid_checksum(lobb));

  ArrayGrid src(e);
  data::fill_mri_phantom(src, {.seed = 4, .texture_amplitude = 0.0f, .noise_sigma = 0.05f});
  ArrayGrid dst(e);

  {
    const filters::BilateralParams params{2, 1.5f, 0.15f};
    filters::bilateral_parallel(src, dst, params, pool);
    add("filters/bilateral-r2-exact-16", grid_checksum(dst));
  }
  {
    filters::BilateralParams params{1, 1.5f, 0.15f, filters::PencilAxis::kZ,
                                    filters::LoopOrder::kXYZ};
    params.use_gather = true;
    params.fast_exp = true;
    filters::bilateral_parallel(src, dst, params, pool);
    add("filters/bilateral-r1-gather-fastexp-16", grid_checksum(dst));
  }
  {
    filters::BilateralParams params{1, 1.5f, 0.15f, filters::PencilAxis::kZ,
                                    filters::LoopOrder::kXYZ};
    params.use_gather = true;
    params.use_range_lut = true;
    filters::bilateral_parallel(src, dst, params, pool);
    add("filters/bilateral-r1-gather-lut-16", grid_checksum(dst));
  }
  {
    filters::gaussian_convolve(src, dst, 2, 1.2f, pool);
    add("filters/gaussian-r2-16", grid_checksum(dst));
  }
  {
    filters::median_filter(src, dst, 1, pool);
    add("filters/median-r1-16", grid_checksum(dst));
  }

  const auto tf = render::TransferFunction::flame();
  {
    const auto cam = render::orbit_camera(3, 8, 16, 16, 16);
    const render::RenderConfig config{48, 48, 16, 0.6f, 0.98f};
    add("render/flame-vp3-48",
        image_checksum(render::raycast_parallel(combustion, cam, tf, config, pool)));
  }
  {
    const auto cam = render::orbit_camera(5, 8, 16, 16, 16);
    render::RenderConfig config{48, 48, 16, 0.6f, 0.98f};
    config.shade = true;
    config.use_macrocells = true;
    config.macrocell_size = 4;
    add("render/flame-shaded-mc-vp5-48",
        image_checksum(render::raycast_parallel(combustion, cam, tf, config, pool)));
  }
  {
    const auto cam = render::orbit_camera(1, 8, 16, 16, 16);
    render::RenderConfig config{48, 48, 16, 0.6f, 0.98f};
    config.mode = render::RenderMode::kMip;
    add("render/mip-vp1-48",
        image_checksum(render::raycast_parallel(combustion, cam, tf, config, pool)));
  }

  return goldens;
}

}  // namespace sfcvis::verify
