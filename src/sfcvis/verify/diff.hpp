// The differential-testing oracle: compare two kernel outputs under an
// explicit tolerance tier and report the *first* divergence with enough
// context to reproduce it — the (i, j, k) voxel or (x, y, channel) pixel,
// both values, their ULP distance, and the comparison's own description.
//
// Tolerance tiers (DESIGN.md Sec. 6) encode the library's accuracy
// contracts rather than an arbitrary epsilon:
//
//  * bit_identical — layouts and acceleration structures must never change
//    the answer (paper Sec. III-C; macrocell skipping; exact gather mode).
//  * ulps(n)       — reassociation-only differences (same taps, different
//    summation order): a handful of ULPs, scale-free.
//  * absolute(eps) — documented approximations (fast_exp_neg 1e-5, range
//    LUT 5e-4) and geometry-perturbing metamorphic checks.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/render/image.hpp"

namespace sfcvis::verify {

/// Order-preserving ULP distance between two floats: the number of
/// representable values between them (0 = bit-identical up to -0/+0).
/// Any NaN on either side maps to the maximum distance.
[[nodiscard]] std::uint64_t ulp_distance(float a, float b) noexcept;

/// How strictly two outputs must agree.
struct Tolerance {
  enum class Kind : std::uint8_t { kBitIdentical, kUlps, kAbsolute };

  Kind kind = Kind::kBitIdentical;
  std::uint64_t max_ulps = 0;
  float max_abs = 0.0f;

  [[nodiscard]] static constexpr Tolerance bit_identical() noexcept { return {}; }
  [[nodiscard]] static constexpr Tolerance ulps(std::uint64_t n) noexcept {
    return Tolerance{Kind::kUlps, n, 0.0f};
  }
  [[nodiscard]] static constexpr Tolerance absolute(float eps) noexcept {
    return Tolerance{Kind::kAbsolute, 0, eps};
  }

  /// True when `expected` and `actual` agree under this tier.
  [[nodiscard]] bool accepts(float expected, float actual) const noexcept {
    switch (kind) {
      case Kind::kBitIdentical:
        return ulp_distance(expected, actual) == 0;
      case Kind::kUlps:
        return ulp_distance(expected, actual) <= max_ulps;
      case Kind::kAbsolute:
        return std::abs(expected - actual) <= max_abs &&
               !std::isnan(expected - actual);
    }
    return false;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Result of one oracle comparison. On failure, coordinates pin the first
/// divergent element in comparison order (grids: array-order i fastest;
/// images: x fastest, channel = 0..3 for r/g/b/a).
struct DiffReport {
  bool ok = true;
  std::string context;        ///< what was compared (kernel, config, layouts)
  Tolerance tolerance;        ///< the tier the comparison ran under
  std::uint64_t mismatches = 0;  ///< total elements outside tolerance
  std::uint64_t compared = 0;    ///< total elements compared

  // First divergence only:
  std::uint32_t i = 0, j = 0, k = 0;  ///< voxel (i,j,k) or pixel (x, y, channel)
  float expected = 0.0f;
  float actual = 0.0f;
  std::uint64_t ulps = 0;

  /// One-line human-readable verdict, e.g.
  /// "FAIL bilateral r2 pz xyz gather [z-order vs array-order]: first
  ///  divergence at (3,7,1): expected 0.52 actual 0.53 (ulps=...,
  ///  |diff|=...), 17/4096 mismatched, tier=bit-identical".
  [[nodiscard]] std::string to_string() const;
};

namespace detail {

/// Element-wise comparison core shared by the grid and image overloads:
/// `fetch(n)` returns the n-th (expected, actual) pair, `coord(n)` its
/// coordinates for the report.
template <class FetchFn, class CoordFn>
[[nodiscard]] DiffReport compare_elements(std::uint64_t count, const Tolerance& tol,
                                          std::string context, FetchFn&& fetch,
                                          CoordFn&& coord) {
  DiffReport report;
  report.context = std::move(context);
  report.tolerance = tol;
  report.compared = count;
  for (std::uint64_t n = 0; n < count; ++n) {
    const auto [expected, actual] = fetch(n);
    if (tol.accepts(expected, actual)) {
      continue;
    }
    if (report.ok) {
      report.ok = false;
      const auto [ci, cj, ck] = coord(n);
      report.i = ci;
      report.j = cj;
      report.k = ck;
      report.expected = expected;
      report.actual = actual;
      report.ulps = ulp_distance(expected, actual);
    }
    ++report.mismatches;
  }
  return report;
}

}  // namespace detail

/// Compares the logical contents of two grids (any layout pair; extents
/// must match — mismatched extents report as a failure, not UB).
template <class T, core::Layout3D LA, core::Layout3D LB>
[[nodiscard]] DiffReport compare_grids(const core::Grid3D<T, LA>& expected,
                                       const core::Grid3D<T, LB>& actual,
                                       const Tolerance& tol, std::string context) {
  const core::Extents3D e = expected.extents();
  if (!(e == actual.extents())) {
    DiffReport report;
    report.ok = false;
    report.context = std::move(context) + " [extents mismatch]";
    report.tolerance = tol;
    report.mismatches = 1;
    return report;
  }
  return detail::compare_elements(
      e.size(), tol, std::move(context),
      [&](std::uint64_t n) {
        const auto i = static_cast<std::uint32_t>(n % e.nx);
        const auto j = static_cast<std::uint32_t>((n / e.nx) % e.ny);
        const auto k = static_cast<std::uint32_t>(n / (static_cast<std::uint64_t>(e.nx) * e.ny));
        return std::pair<float, float>(expected.at(i, j, k), actual.at(i, j, k));
      },
      [&](std::uint64_t n) {
        return std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>(
            static_cast<std::uint32_t>(n % e.nx),
            static_cast<std::uint32_t>((n / e.nx) % e.ny),
            static_cast<std::uint32_t>(n / (static_cast<std::uint64_t>(e.nx) * e.ny)));
      });
}

/// Compares two images channel-wise; the report's (i, j, k) is the pixel
/// (x, y) and channel index 0..3 (r, g, b, a).
[[nodiscard]] DiffReport compare_images(const render::Image& expected,
                                        const render::Image& actual, const Tolerance& tol,
                                        std::string context);

/// compare_images against a horizontally mirrored `actual`: pixel (x, y) of
/// `expected` is checked against pixel (width-1-x, y) of `actual` — the
/// oracle of the mirror-flip metamorphic raycaster invariant.
[[nodiscard]] DiffReport compare_images_mirrored_x(const render::Image& expected,
                                                   const render::Image& actual,
                                                   const Tolerance& tol,
                                                   std::string context);

}  // namespace sfcvis::verify
