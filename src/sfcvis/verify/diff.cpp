#include "sfcvis/verify/diff.hpp"

#include <cstring>
#include <limits>
#include <sstream>

namespace sfcvis::verify {

std::uint64_t ulp_distance(float a, float b) noexcept {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  // Map the float bit pattern to a monotone integer line: non-negative
  // floats keep their pattern, negative floats mirror below zero, so the
  // integer difference counts representable values between a and b
  // (treating -0 and +0 as the same point).
  const auto to_line = [](float v) {
    std::int32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits >= 0 ? static_cast<std::int64_t>(bits)
                     : -static_cast<std::int64_t>(bits & 0x7fffffff);
  };
  const std::int64_t la = to_line(a);
  const std::int64_t lb = to_line(b);
  return static_cast<std::uint64_t>(la > lb ? la - lb : lb - la);
}

std::string Tolerance::to_string() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kBitIdentical:
      out << "bit-identical";
      break;
    case Kind::kUlps:
      out << "ulps<=" << max_ulps;
      break;
    case Kind::kAbsolute:
      out << "|diff|<=" << max_abs;
      break;
  }
  return out.str();
}

std::string DiffReport::to_string() const {
  std::ostringstream out;
  if (ok) {
    out << "OK   " << context << ": " << compared << " elements, tier "
        << tolerance.to_string();
    return out.str();
  }
  out << "FAIL " << context << ": first divergence at (" << i << "," << j << "," << k
      << "): expected " << std::hexfloat << expected << " actual " << actual
      << std::defaultfloat << " (ulps=" << ulps << ", |diff|=" << std::abs(expected - actual)
      << "), " << mismatches << "/" << compared << " mismatched, tier "
      << tolerance.to_string();
  return out.str();
}

DiffReport compare_images(const render::Image& expected, const render::Image& actual,
                          const Tolerance& tol, std::string context) {
  if (expected.width() != actual.width() || expected.height() != actual.height()) {
    DiffReport report;
    report.ok = false;
    report.context = std::move(context) + " [image size mismatch]";
    report.tolerance = tol;
    report.mismatches = 1;
    return report;
  }
  const std::uint64_t w = expected.width();
  const std::uint64_t count = w * expected.height() * 4;
  const auto channel = [](const render::Rgba& p, std::uint32_t c) {
    return c == 0 ? p.r : c == 1 ? p.g : c == 2 ? p.b : p.a;
  };
  return detail::compare_elements(
      count, tol, std::move(context),
      [&](std::uint64_t n) {
        const auto c = static_cast<std::uint32_t>(n & 3);
        const auto x = static_cast<std::uint32_t>((n >> 2) % w);
        const auto y = static_cast<std::uint32_t>((n >> 2) / w);
        return std::pair<float, float>(channel(expected.at(x, y), c),
                                       channel(actual.at(x, y), c));
      },
      [&](std::uint64_t n) {
        return std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>(
            static_cast<std::uint32_t>((n >> 2) % w),
            static_cast<std::uint32_t>((n >> 2) / w), static_cast<std::uint32_t>(n & 3));
      });
}

DiffReport compare_images_mirrored_x(const render::Image& expected,
                                     const render::Image& actual, const Tolerance& tol,
                                     std::string context) {
  if (expected.width() != actual.width() || expected.height() != actual.height()) {
    DiffReport report;
    report.ok = false;
    report.context = std::move(context) + " [image size mismatch]";
    report.tolerance = tol;
    report.mismatches = 1;
    return report;
  }
  const std::uint64_t w = expected.width();
  const std::uint64_t count = w * expected.height() * 4;
  const auto channel = [](const render::Rgba& p, std::uint32_t c) {
    return c == 0 ? p.r : c == 1 ? p.g : c == 2 ? p.b : p.a;
  };
  return detail::compare_elements(
      count, tol, std::move(context),
      [&](std::uint64_t n) {
        const auto c = static_cast<std::uint32_t>(n & 3);
        const auto x = static_cast<std::uint32_t>((n >> 2) % w);
        const auto y = static_cast<std::uint32_t>((n >> 2) / w);
        const auto mx = static_cast<std::uint32_t>(w - 1) - x;
        return std::pair<float, float>(channel(expected.at(x, y), c),
                                       channel(actual.at(mx, y), c));
      },
      [&](std::uint64_t n) {
        return std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>(
            static_cast<std::uint32_t>((n >> 2) % w),
            static_cast<std::uint32_t>((n >> 2) / w), static_cast<std::uint32_t>(n & 3));
      });
}

}  // namespace sfcvis::verify
