// The golden-checksum registry: one place that computes every pinned
// end-to-end checksum, shared by tests/test_regression.cpp (which compares
// against the committed table in tests/goldens.inc) and tools/regen_goldens
// (which recomputes the table, rewrites the file, and prints the diff).
//
// Keeping computation in one translation unit means the test and the regen
// tool can never drift apart: a legitimate algorithm change updates the
// table by running the tool, not by hand-editing hex.
//
// The checksums are FNV-1a over output *bit patterns*, so they pin results
// to the exact float. They are toolchain-sensitive by design (the build
// uses -march=native; FMA contraction and libm differences legally change
// low bits): regenerate on the machine whose results you mean to pin.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/render/image.hpp"

namespace sfcvis::verify {

/// FNV-1a over bit patterns (floats and integers alike).
class Fnv {
 public:
  void feed(float value) noexcept {
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    feed_bytes(bits, 4);
  }

  void feed(std::uint64_t bits) noexcept { feed_bytes(bits, 8); }

  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  void feed_bytes(std::uint64_t bits, int count) noexcept {
    for (int b = 0; b < count; ++b) {
      hash_ ^= (bits >> (8 * b)) & 0xffu;
      hash_ *= 0x100000001b3ULL;
    }
  }

  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Checksum of a grid's logical contents in array-order (layout-blind).
template <class GridT>
[[nodiscard]] std::uint64_t grid_checksum(const GridT& g) {
  Fnv fnv;
  g.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    fnv.feed(g.at(i, j, k));
  });
  return fnv.value();
}

/// Checksum of an image's RGBA channels in pixel order.
[[nodiscard]] std::uint64_t image_checksum(const render::Image& img);

/// One pinned checksum.
struct GoldenEntry {
  std::string name;
  std::uint64_t value = 0;
};

/// Computes every golden checksum the regression suite pins: datasets,
/// bilateral configurations (exact and gather fast paths), renders (dense
/// and macrocell), and the integer-only codec/fuzz-field checksums that are
/// portable across toolchains.
[[nodiscard]] std::vector<GoldenEntry> compute_goldens();

}  // namespace sfcvis::verify
