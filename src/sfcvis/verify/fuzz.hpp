// Differential layout-oracle fuzzing (the verify subsystem's driver).
//
// One fuzz case = one seed. The seed deterministically generates a volume
// shape (power-of-two, non-power-of-two, or degenerate 1xNxM), contents,
// and a set of kernel configurations; every selected kernel then runs
// across all four layouts (array order, Z-order, tiled, Hilbert) and the
// results are checked through the DiffReport oracle:
//
//  * cross-layout: bit-identical, always — the paper's Sec. III-C claim
//    that layout is observationally transparent, now enforced on shapes
//    golden tests never visit (cf. Walker & Skjellum, arXiv:2307.07828,
//    on layout bugs at irregular shapes and block boundaries);
//  * acceleration structures (macrocell DDA on/off): bit-identical;
//  * explicit-SIMD paths — 4/8-wide ray packets against the scalar
//    traversal (bit-identical, dense and macrocell) and the bilateral
//    SIMD tap loops against their scalar twins (reassociation-only ulp
//    tier);
//  * approximate kernel modes (gather fast-exp, range LUT) against the
//    serial reference: the documented absolute tiers.
//
// run_metamorphic_case adds raycaster invariants that need no reference
// implementation at all: mirroring the volume and the camera about the
// x-midplane must mirror the image (within a geometry tier — mirrored
// float arithmetic agrees only to rounding), and macrocell skipping must
// be an identity at every orbit viewpoint.
//
// Everything is reproducible from (seed, quick flag) alone; the committed
// CI gate runs seeds [0, N) and any failing seed is a standalone repro.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sfcvis/core/extents.hpp"
#include "sfcvis/verify/diff.hpp"

namespace sfcvis::verify {

/// Knobs of the fuzz driver (not part of the seed: changing them changes
/// which cases a seed generates).
struct FuzzOptions {
  /// Small shapes and configs (CI budget); full mode (nightly) draws
  /// larger volumes, bigger radii, and more configurations per seed.
  bool quick = true;
};

/// Outcome of one fuzz case: every comparison that ran, failures first.
struct FuzzSummary {
  std::uint64_t seed = 0;
  core::Extents3D extents{};
  std::string description;  ///< shape + kernel configs the seed generated
  unsigned checks = 0;      ///< oracle comparisons performed
  std::vector<DiffReport> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Runs one differential fuzz case: kernels x layouts x modes on a
/// seed-generated volume.
[[nodiscard]] FuzzSummary run_fuzz_case(std::uint64_t seed, const FuzzOptions& opts);

/// Runs one metamorphic raycaster case: the mirror-flip invariant between
/// the paper's aligned viewpoints (0 and 4) plus macrocell on/off
/// bit-identity at every orbit viewpoint.
[[nodiscard]] FuzzSummary run_metamorphic_case(std::uint64_t seed, const FuzzOptions& opts);

}  // namespace sfcvis::verify
