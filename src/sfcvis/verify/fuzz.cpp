#include "sfcvis/verify/fuzz.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sfcvis/core/brick_file.hpp"
#include "sfcvis/core/bricked.hpp"
#include "sfcvis/core/gather.hpp"
#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/layout.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/filters/gaussian.hpp"
#include "sfcvis/filters/median.hpp"
#include "sfcvis/render/camera.hpp"
#include "sfcvis/render/image.hpp"
#include "sfcvis/render/raycast.hpp"
#include "sfcvis/render/transfer.hpp"
#include "sfcvis/verify/rng.hpp"

namespace sfcvis::verify {
namespace {

using core::AnyVolume;
using core::ArrayOrderLayout;
using core::Extents3D;
using core::Grid3D;
using core::LayoutKind;
using core::ZOrderLayout;
using ArrayGrid = core::ArrayVolume;

void record(FuzzSummary& summary, DiffReport report) {
  ++summary.checks;
  if (!report.ok) {
    summary.failures.push_back(std::move(report));
  }
}

// ---------------------------------------------------------------------------
// Case generation
// ---------------------------------------------------------------------------

/// Draws a volume shape from one of four classes: power-of-two cube (the
/// layouts' sweet spot), non-power-of-two cube-ish (padding and partial
/// blocks everywhere), anisotropic (per-axis padding of the Z-order tables),
/// and degenerate (an axis of length 1-2: every voxel is a border voxel).
Extents3D draw_extents(SplitMix64& rng, bool quick, std::ostringstream& desc) {
  Extents3D e;
  switch (rng.below(4)) {
    case 0: {
      const std::uint32_t n = quick ? (rng.chance(50) ? 8u : 16u)
                                    : (rng.chance(50) ? 16u : 32u);
      e = Extents3D::cube(n);
      desc << "shape=pow2-cube";
      break;
    }
    case 1: {
      const std::uint32_t lo = quick ? 5u : 9u;
      const std::uint32_t hi = quick ? 19u : 37u;
      e = {static_cast<std::uint32_t>(rng.range(lo, hi)),
           static_cast<std::uint32_t>(rng.range(lo, hi)),
           static_cast<std::uint32_t>(rng.range(lo, hi))};
      desc << "shape=non-pow2";
      break;
    }
    case 2: {
      static constexpr std::uint32_t kAxes[] = {3, 4, 5, 8, 12, 16, 21, 24};
      const std::uint32_t cap = quick ? 16u : 24u;
      e = {std::min(cap, rng.pick(kAxes)), std::min(cap, rng.pick(kAxes)),
           std::min(cap, rng.pick(kAxes))};
      desc << "shape=aniso";
      break;
    }
    default: {
      const auto thin = static_cast<std::uint32_t>(rng.range(1, 2));
      const auto a = static_cast<std::uint32_t>(rng.range(3, quick ? 17 : 33));
      const auto b = static_cast<std::uint32_t>(rng.range(3, quick ? 17 : 33));
      switch (rng.below(3)) {
        case 0: e = {thin, a, b}; break;
        case 1: e = {a, thin, b}; break;
        default: e = {a, b, thin}; break;
      }
      desc << "shape=degenerate";
      break;
    }
  }
  desc << " " << e.nx << "x" << e.ny << "x" << e.nz;
  return e;
}

/// Deterministic, layout-independent field value at (i, j, k): pure
/// coordinate hash (kind 0), a centered blob with genuinely zero exterior
/// so the flame transfer function has empty space to skip (kind 1), or
/// sparse noise (kind 2). Only IEEE basic operations — exact everywhere.
float field_value(std::uint64_t content_seed, unsigned kind, const Extents3D& e,
                  std::uint32_t i, std::uint32_t j, std::uint32_t k) {
  const float n = hash_unit(content_seed, i, j, k);
  switch (kind) {
    case 0:
      return n;
    case 1: {
      const auto half = [](std::uint32_t dim) {
        return 0.5f * static_cast<float>(dim < 2 ? 2 : dim);
      };
      const float dx = (static_cast<float>(i) - 0.5f * static_cast<float>(e.nx - 1)) / half(e.nx);
      const float dy = (static_cast<float>(j) - 0.5f * static_cast<float>(e.ny - 1)) / half(e.ny);
      const float dz = (static_cast<float>(k) - 0.5f * static_cast<float>(e.nz - 1)) / half(e.nz);
      const float base = 1.0f - (dx * dx + dy * dy + dz * dz) * 1.8f;
      return base <= 0.0f ? 0.0f : base * (0.7f + 0.3f * n);
    }
    default:
      return n > 0.8f ? n : 0.0f;
  }
}

/// The five layout variants of one logical volume, all filled from the same
/// coordinate function — identical logical contents by construction. The
/// gmorton member uses a fresh random interleave pattern per case, so over a
/// fuzz run the whole generalized-Morton family gets differential coverage,
/// not just the canonical degenerate points.
struct VolumeSet {
  AnyVolume array;
  AnyVolume zorder;
  AnyVolume tiled;
  AnyVolume hilbert;
  AnyVolume gmorton;
  /// Out-of-core mirror of the same contents: the array volume packed to a
  /// temporary brick file (random brick edge / inner layout) and re-opened,
  /// usually through the streamed LRU cache with a budget below the working
  /// set so eviction and re-fault paths run on every case.
  AnyVolume bricked;
};

/// A uniformly random valid interleave string for `e`: Fisher-Yates over the
/// canonical multiset, so per-axis bit counts are preserved by construction.
std::string random_interleave(const Extents3D& e, SplitMix64& rng) {
  std::string s = core::InterleavePattern::canonical(e).str();
  for (std::size_t i = s.size(); i > 1; --i) {
    std::swap(s[i - 1], s[rng.below(i)]);
  }
  return s;
}

/// Packs `src` to a temporary brick file with randomized geometry and
/// re-opens it. The temp file is removed right after open — on POSIX the
/// open descriptor / mapping keeps the payload readable, so no case leaves
/// files behind even when a check fails.
AnyVolume make_bricked_mirror(const AnyVolume& src, SplitMix64& rng,
                              std::ostringstream& desc) {
  namespace fs = std::filesystem;
  core::BrickPackOptions popts;
  static constexpr std::uint32_t kEdges[] = {8, 16, 32};
  popts.brick_edge = rng.pick(kEdges);
  popts.inner_kind = static_cast<LayoutKind>(rng.below(5));
  static constexpr std::uint32_t kInnerTiles[] = {2, 4, 8};
  popts.inner_tile = rng.pick(kInnerTiles);
  if (popts.inner_kind == LayoutKind::kGMorton && rng.chance(60)) {
    popts.interleave = random_interleave(Extents3D::cube(popts.brick_edge), rng);
  }
  const fs::path path =
      fs::temp_directory_path() /
      ("sfcvis_fuzz_" + std::to_string(rng.next()) + "_" + std::to_string(rng.next()) +
       ".sfcbrk");
  const core::BrickFileInfo info = core::pack_brick_file(path.string(), src, popts);

  core::BrickOpenOptions oopts;
  oopts.prefetch_depth = static_cast<std::uint32_t>(rng.below(4));
  if (rng.chance(75)) {
    // Streamed LRU cache with a budget below the working set whenever the
    // file has more than one brick, so demand faults and evictions happen.
    const std::uint64_t resident =
        info.brick_count > 1 ? rng.range(1, info.brick_count - 1) : 1;
    oopts.cache_bytes = static_cast<std::size_t>(resident) * info.brick_bytes();
    oopts.force_stream = true;
  }
  core::BrickedVolume vol = core::BrickedVolume::open(path.string(), oopts);
  std::error_code ec;
  fs::remove(path, ec);
  desc << " bricked=e" << popts.brick_edge << ":" << core::to_string(popts.inner_kind)
       << (vol.mmapped() ? ":mmap" : ":stream") << ":pf" << oopts.prefetch_depth;
  return AnyVolume(std::move(vol));
}

VolumeSet make_volumes(const Extents3D& e, std::uint64_t content_seed, unsigned kind,
                       std::uint32_t tile, SplitMix64& rng, std::ostringstream& desc) {
  core::VolumeOpts opts;
  opts.tile = tile;
  opts.interleave = random_interleave(e, rng);
  VolumeSet v{core::make_volume(LayoutKind::kArray, e, opts),
              core::make_volume(LayoutKind::kZOrder, e, opts),
              core::make_volume(LayoutKind::kTiled, e, opts),
              core::make_volume(LayoutKind::kHilbert, e, opts),
              core::make_volume(LayoutKind::kGMorton, e, opts),
              AnyVolume{}};
  const auto fill = [&](auto& grid) {
    grid.fill_from([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
      return field_value(content_seed, kind, e, i, j, k);
    });
  };
  fill(v.array);
  fill(v.zorder);
  fill(v.tiled);
  fill(v.hilbert);
  fill(v.gmorton);
  desc << " fill=" << kind << " tile=" << tile << " gmorton=" << opts.interleave;
  v.bricked = make_bricked_mirror(v.array, rng, desc);
  return v;
}

// ---------------------------------------------------------------------------
// gather_row spot checks
// ---------------------------------------------------------------------------

/// Checks a few random gather_row calls (random axis, start, length —
/// including starts inside blocks and runs crossing block boundaries)
/// against a plain at() walk. This is the primitive the sliding-window
/// bilateral path trusts; the ZOrderLayout overload walks the curve
/// incrementally, so misbehaviour shows up here before it smears into a
/// whole filtered volume.
template <core::VolumeBackend VolT>
void spot_check_gather(FuzzSummary& summary, const VolT& grid,
                       SplitMix64& rng, unsigned rows) {
  const char* backend_name = "bricked";
  if constexpr (requires { typename VolT::layout_type; }) {
    backend_name = VolT::layout_type::name().data();
  }
  const Extents3D& e = grid.extents();
  for (unsigned rep = 0; rep < rows; ++rep) {
    const auto axis = static_cast<core::Axis3>(rng.below(3));
    std::uint32_t i = static_cast<std::uint32_t>(rng.below(e.nx));
    std::uint32_t j = static_cast<std::uint32_t>(rng.below(e.ny));
    std::uint32_t k = static_cast<std::uint32_t>(rng.below(e.nz));
    const std::uint32_t len = axis == core::Axis3::kX ? e.nx
                              : axis == core::Axis3::kY ? e.ny
                                                        : e.nz;
    std::uint32_t& along = axis == core::Axis3::kX ? i : axis == core::Axis3::kY ? j : k;
    along = static_cast<std::uint32_t>(rng.below(len));
    const auto count = static_cast<std::uint32_t>(rng.range(1, len - along));

    std::vector<float> out(count);
    core::gather_row(grid, axis, i, j, k, count, out.data());

    std::ostringstream ctx;
    ctx << "gather_row [" << backend_name << "] axis=" << static_cast<int>(axis) << " start=("
        << i << "," << j << "," << k << ") count=" << count;
    const std::uint32_t start = along;
    record(summary, detail::compare_elements(
                        count, Tolerance::bit_identical(), ctx.str(),
                        [&](std::uint64_t t) {
                          const auto d = static_cast<std::uint32_t>(t);
                          const std::uint32_t ti = axis == core::Axis3::kX ? start + d : i;
                          const std::uint32_t tj = axis == core::Axis3::kY ? start + d : j;
                          const std::uint32_t tk = axis == core::Axis3::kZ ? start + d : k;
                          return std::pair<float, float>(grid.at(ti, tj, tk), out[t]);
                        },
                        [&](std::uint64_t t) {
                          const auto d = static_cast<std::uint32_t>(t);
                          return std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>(
                              axis == core::Axis3::kX ? start + d : i,
                              axis == core::Axis3::kY ? start + d : j,
                              axis == core::Axis3::kZ ? start + d : k);
                        }));
  }
}

// ---------------------------------------------------------------------------
// Bilateral
// ---------------------------------------------------------------------------

filters::BilateralParams draw_bilateral(SplitMix64& rng, bool quick) {
  filters::BilateralParams p;
  p.radius = quick ? (rng.chance(75) ? 1u : 2u) : static_cast<unsigned>(rng.range(1, 3));
  p.sigma_spatial = rng.uniform(1.0f, 2.5f);
  p.sigma_range = rng.uniform(0.08f, 0.25f);
  p.pencil = static_cast<filters::PencilAxis>(rng.below(3));
  p.order = rng.chance(50) ? filters::LoopOrder::kXYZ : filters::LoopOrder::kZYX;
  p.use_gather = rng.chance(60);
  p.fast_exp = rng.chance(50);
  p.use_range_lut = rng.chance(40);
  p.simd_taps = rng.chance(50);
  return p;
}

/// Accuracy tier of a configuration against bilateral_reference (serial,
/// array-order, xyz tap order), per the contracts in bilateral.hpp:
///
///  * non-gather, xyz order: the same per-voxel expression — bit-identical.
///  * non-gather, zyx order: tap-sum reassociation only.
///  * exact gather (no fast_exp, no LUT), (pz, xyz): plane-major tap order
///    coincides with xyz — bit-identical; other axes/orders reassociate.
///  * gather + fast_exp: fast_exp_neg approximation on the range weight.
///  * gather + LUT (LUT wins when both are set): per-weight error is the
///    interpolation bound ~3.2e-5; with the normalizer >= the center tap's
///    weight of 1 the output error is bounded by weight-error x taps.
Tolerance bilateral_tier(const filters::BilateralParams& p) {
  const float taps = static_cast<float>((2 * p.radius + 1) * (2 * p.radius + 1) *
                                        (2 * p.radius + 1));
  if (p.use_gather) {
    if (p.use_range_lut) {
      return Tolerance::absolute(4.0e-5f * taps);
    }
    if (p.fast_exp) {
      return Tolerance::absolute(5.0e-5f);
    }
    if (p.pencil == filters::PencilAxis::kZ && p.order == filters::LoopOrder::kXYZ) {
      return Tolerance::bit_identical();
    }
    return Tolerance::absolute(1.0e-5f);
  }
  return p.order == filters::LoopOrder::kXYZ ? Tolerance::bit_identical()
                                             : Tolerance::absolute(1.0e-5f);
}

std::string bilateral_label(const filters::BilateralParams& p) {
  std::ostringstream out;
  out << "bilateral r" << p.radius << " p"
      << (p.pencil == filters::PencilAxis::kX   ? "x"
          : p.pencil == filters::PencilAxis::kY ? "y"
                                                : "z")
      << (p.order == filters::LoopOrder::kXYZ ? " xyz" : " zyx");
  if (p.use_gather) {
    out << " gather";
    if (p.use_range_lut) {
      out << "+lut";
    } else if (p.fast_exp) {
      out << "+fastexp";
    }
    if (p.simd_taps && (p.fast_exp || p.use_range_lut)) {
      out << "+simd";
    }
  }
  return out.str();
}

ArrayGrid run_bilateral(const AnyVolume& src, const filters::BilateralParams& p,
                        exec::ExecutionContext& pool) {
  ArrayGrid dst(ArrayOrderLayout(src.extents()));
  filters::bilateral_parallel(src, dst, p, pool);
  return dst;
}

void fuzz_bilateral(FuzzSummary& summary, const VolumeSet& vols, SplitMix64& rng,
                    bool quick, exec::ExecutionContext& pool, std::ostringstream& desc) {
  const unsigned configs = quick ? 2 : 3;
  for (unsigned c = 0; c < configs; ++c) {
    const filters::BilateralParams p = draw_bilateral(rng, quick);
    const std::string label = bilateral_label(p);
    desc << " | " << label;

    const ArrayGrid oracle = run_bilateral(vols.array, p, pool);
    record(summary, compare_grids(oracle, run_bilateral(vols.zorder, p, pool),
                                  Tolerance::bit_identical(), label + " [z-order vs array]"));
    record(summary, compare_grids(oracle, run_bilateral(vols.tiled, p, pool),
                                  Tolerance::bit_identical(), label + " [tiled vs array]"));
    record(summary, compare_grids(oracle, run_bilateral(vols.hilbert, p, pool),
                                  Tolerance::bit_identical(), label + " [hilbert vs array]"));
    record(summary, compare_grids(oracle, run_bilateral(vols.gmorton, p, pool),
                                  Tolerance::bit_identical(), label + " [gmorton vs array]"));
    record(summary, compare_grids(oracle, run_bilateral(vols.bricked, p, pool),
                                  Tolerance::bit_identical(), label + " [bricked vs array]"));

    ArrayGrid reference(ArrayOrderLayout(vols.array.extents()));
    filters::bilateral_reference(vols.array.as<ArrayOrderLayout>(), reference, p.radius,
                                 p.sigma_spatial, p.sigma_range);
    record(summary, compare_grids(reference, oracle, bilateral_tier(p),
                                  label + " [vs serial reference]"));

    if (p.use_gather && (p.fast_exp || p.use_range_lut)) {
      // SIMD tap loops against their scalar twins: identical weights and
      // taps, vector partial sums — reassociation only, so a tight ulp
      // tier rather than the looser approximation tiers above.
      filters::BilateralParams scalar_p = p;
      scalar_p.simd_taps = false;
      filters::BilateralParams simd_p = p;
      simd_p.simd_taps = true;
      record(summary,
             compare_grids(run_bilateral(vols.array, scalar_p, pool),
                           run_bilateral(vols.array, simd_p, pool), Tolerance::ulps(32),
                           label + " [simd vs scalar taps]"));
    }
  }

  if (rng.chance(40)) {
    // Curve-order sweep: xyz tap order makes the per-voxel expression match
    // the reference exactly; only the traversal (and thus nothing visible)
    // differs.
    filters::BilateralParams p;
    p.radius = 1;
    p.sigma_spatial = rng.uniform(1.0f, 2.5f);
    p.sigma_range = rng.uniform(0.08f, 0.25f);
    p.order = filters::LoopOrder::kXYZ;
    desc << " | zsweep";
    ArrayGrid reference(ArrayOrderLayout(vols.array.extents()));
    filters::bilateral_reference(vols.array.as<ArrayOrderLayout>(), reference, p.radius,
                                 p.sigma_spatial, p.sigma_range);
    ArrayGrid swept(ArrayOrderLayout(vols.array.extents()));
    filters::bilateral_zsweep(vols.zorder, swept, p, pool);
    record(summary, compare_grids(reference, swept, Tolerance::bit_identical(),
                                  "bilateral zsweep r1 xyz [z-order vs serial reference]"));
  }
}

// ---------------------------------------------------------------------------
// Gaussian / median
// ---------------------------------------------------------------------------

void fuzz_smoother(FuzzSummary& summary, const VolumeSet& vols, SplitMix64& rng,
                   exec::ExecutionContext& pool, std::ostringstream& desc) {
  const Extents3D& e = vols.array.extents();
  ArrayGrid oracle{ArrayOrderLayout(e)};
  ArrayGrid out{ArrayOrderLayout(e)};
  if (rng.chance(50)) {
    const auto radius = static_cast<unsigned>(rng.range(1, 2));
    const float sigma = rng.uniform(0.8f, 2.0f);
    desc << " | gaussian r" << radius;
    filters::gaussian_convolve(vols.array, oracle, radius, sigma, pool);
    const auto check = [&](const auto& src, const char* name) {
      filters::gaussian_convolve(src, out, radius, sigma, pool);
      record(summary, compare_grids(oracle, out, Tolerance::bit_identical(),
                                    std::string("gaussian [") + name + " vs array]"));
    };
    check(vols.zorder, "z-order");
    check(vols.tiled, "tiled");
    check(vols.hilbert, "hilbert");
    check(vols.gmorton, "gmorton");
    check(vols.bricked, "bricked");
  } else {
    desc << " | median r1";
    filters::median_filter(vols.array, oracle, 1, pool);
    const auto check = [&](const auto& src, const char* name) {
      filters::median_filter(src, out, 1, pool);
      record(summary, compare_grids(oracle, out, Tolerance::bit_identical(),
                                    std::string("median [") + name + " vs array]"));
    };
    check(vols.zorder, "z-order");
    check(vols.tiled, "tiled");
    check(vols.hilbert, "hilbert");
    check(vols.gmorton, "gmorton");
    check(vols.bricked, "bricked");
  }
}

// ---------------------------------------------------------------------------
// Raycast
// ---------------------------------------------------------------------------

void fuzz_raycast(FuzzSummary& summary, const VolumeSet& vols, SplitMix64& rng,
                  bool quick, exec::ExecutionContext& pool, std::ostringstream& desc) {
  const Extents3D& e = vols.array.extents();
  render::RenderConfig cfg;
  cfg.image_width = quick ? 48 : 96;
  cfg.image_height = quick ? 40 : 80;  // non-square: catches u/v transposition
  cfg.tile_size = 16;
  cfg.step = rng.uniform(0.4f, 0.9f);
  cfg.mode = rng.chance(50) ? render::RenderMode::kComposite : render::RenderMode::kMip;
  cfg.shade = rng.chance(30);
  cfg.macrocell_size = rng.chance(50) ? 4u : 8u;
  const auto viewpoint = static_cast<unsigned>(rng.below(8));
  const bool flame = rng.chance(50);
  const render::TransferFunction tf =
      flame ? render::TransferFunction::flame() : render::TransferFunction::grayscale(0.0f, 1.0f);
  const render::Camera camera =
      render::orbit_camera(viewpoint, 8, static_cast<float>(e.nx), static_cast<float>(e.ny),
                           static_cast<float>(e.nz));

  std::ostringstream label;
  label << "raycast vp" << viewpoint
        << (cfg.mode == render::RenderMode::kMip ? " mip" : " composite")
        << (cfg.shade ? " shaded" : "") << (flame ? " flame" : " gray") << " mc"
        << cfg.macrocell_size;
  desc << " | " << label.str();

  const render::Image base = render::raycast_parallel(vols.array, camera, tf, cfg, pool);
  record(summary, compare_images(base, render::raycast_parallel(vols.zorder, camera, tf, cfg, pool),
                                 Tolerance::bit_identical(), label.str() + " [z-order vs array]"));
  record(summary, compare_images(base, render::raycast_parallel(vols.tiled, camera, tf, cfg, pool),
                                 Tolerance::bit_identical(), label.str() + " [tiled vs array]"));
  record(summary,
         compare_images(base, render::raycast_parallel(vols.hilbert, camera, tf, cfg, pool),
                        Tolerance::bit_identical(), label.str() + " [hilbert vs array]"));
  record(summary,
         compare_images(base, render::raycast_parallel(vols.gmorton, camera, tf, cfg, pool),
                        Tolerance::bit_identical(), label.str() + " [gmorton vs array]"));
  record(summary,
         compare_images(base, render::raycast_parallel(vols.bricked, camera, tf, cfg, pool),
                        Tolerance::bit_identical(), label.str() + " [bricked vs array]"));

  cfg.use_macrocells = true;
  record(summary, compare_images(base, render::raycast_parallel(vols.array, camera, tf, cfg, pool),
                                 Tolerance::bit_identical(),
                                 label.str() + " [macrocells on vs off, array]"));
  record(summary, compare_images(base, render::raycast_parallel(vols.zorder, camera, tf, cfg, pool),
                                 Tolerance::bit_identical(),
                                 label.str() + " [macrocells on vs off, z-order]"));
  // gmorton through the macrocell path also exercises the layout-salted
  // StructureCache key: a stale grid cached under another interleave pattern
  // would corrupt the skip structure and show up here.
  record(summary,
         compare_images(base, render::raycast_parallel(vols.gmorton, camera, tf, cfg, pool),
                        Tolerance::bit_identical(),
                        label.str() + " [macrocells on vs off, gmorton]"));
  // The bricked backend through the macrocell path also exercises per-brick
  // structure caching (owner = the backend's stable data() sentinel, salt =
  // its brick/inner-layout hash) and empty-space skipping over a streamed
  // cache smaller than the working set.
  record(summary,
         compare_images(base, render::raycast_parallel(vols.bricked, camera, tf, cfg, pool),
                        Tolerance::bit_identical(),
                        label.str() + " [macrocells on vs off, bricked]"));

  // Ray packets must reproduce the scalar traversal bit-for-bit in every
  // mode drawn above (composite/MIP, shaded or not): per-lane control flow
  // and sample positions reuse the scalar expressions (raycast_packet.hpp),
  // so any divergence — dense or through the macrocell DDA — is a bug.
  for (const std::uint32_t packet : {4u, 8u}) {
    cfg.packet_size = packet;
    std::ostringstream plabel;
    plabel << label.str() << " packet" << packet;
    cfg.use_macrocells = false;
    record(summary,
           compare_images(base, render::raycast_parallel(vols.array, camera, tf, cfg, pool),
                          Tolerance::bit_identical(), plabel.str() + " [dense, array]"));
    record(summary,
           compare_images(base, render::raycast_parallel(vols.hilbert, camera, tf, cfg, pool),
                          Tolerance::bit_identical(), plabel.str() + " [dense, hilbert]"));
    cfg.use_macrocells = true;
    record(summary,
           compare_images(base, render::raycast_parallel(vols.zorder, camera, tf, cfg, pool),
                          Tolerance::bit_identical(), plabel.str() + " [macrocell, z-order]"));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

FuzzSummary run_fuzz_case(std::uint64_t seed, const FuzzOptions& opts) {
  FuzzSummary summary;
  summary.seed = seed;
  SplitMix64 rng(seed);
  std::ostringstream desc;

  const Extents3D e = draw_extents(rng, opts.quick, desc);
  summary.extents = e;
  const std::uint64_t content_seed = rng.next();
  const auto fill_kind = static_cast<unsigned>(rng.below(3));
  static constexpr std::uint32_t kTiles[] = {2, 4, 8};
  const VolumeSet vols = make_volumes(e, content_seed, fill_kind, rng.pick(kTiles), rng, desc);

  const auto nthreads = static_cast<unsigned>(rng.range(1, 4));
  exec::ExecutionContext pool(nthreads);
  desc << " threads=" << nthreads;

  const auto spot = [&](const AnyVolume& v, unsigned rows) {
    v.visit([&](const auto& grid) { spot_check_gather(summary, grid, rng, rows); });
  };
  spot(vols.array, 2);
  spot(vols.zorder, 3);
  spot(vols.tiled, 3);
  spot(vols.hilbert, 3);
  spot(vols.gmorton, 3);
  spot(vols.bricked, 3);

  fuzz_bilateral(summary, vols, rng, opts.quick, pool, desc);
  fuzz_smoother(summary, vols, rng, pool, desc);
  if (rng.chance(60)) {
    fuzz_raycast(summary, vols, rng, opts.quick, pool, desc);
  }

  summary.description = desc.str();
  return summary;
}

FuzzSummary run_metamorphic_case(std::uint64_t seed, const FuzzOptions& opts) {
  FuzzSummary summary;
  summary.seed = seed;
  SplitMix64 rng(seed);
  std::ostringstream desc;

  // The mirror invariant needs the volume's x mirror plane (nx-1)/2 and the
  // mirrored eye positions to be exactly representable, so nx is drawn even
  // and the cameras are built from halves and integers only.
  const std::uint32_t nx = rng.chance(50) ? 8u : 16u;
  const std::uint32_t hi = opts.quick ? 14u : 24u;
  const Extents3D e{nx, static_cast<std::uint32_t>(rng.range(6, hi)),
                    static_cast<std::uint32_t>(rng.range(6, hi))};
  summary.extents = e;
  desc << "metamorphic " << e.nx << "x" << e.ny << "x" << e.nz;

  const std::uint64_t content_seed = rng.next();
  const auto fill_kind = static_cast<unsigned>(rng.below(3));
  desc << " fill=" << fill_kind;
  ArrayGrid volume{ArrayOrderLayout(e)};
  volume.fill_from([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return field_value(content_seed, fill_kind, e, i, j, k);
  });
  ArrayGrid mirrored{ArrayOrderLayout(e)};
  mirrored.fill_from([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return field_value(content_seed, fill_kind, e, e.nx - 1 - i, j, k);
  });

  const auto nthreads = static_cast<unsigned>(rng.range(1, 4));
  exec::ExecutionContext pool(nthreads);
  desc << " threads=" << nthreads;

  render::RenderConfig cfg;
  cfg.image_width = 64;  // powers of two: pixel u/v offsets are exactly
  cfg.image_height = 32;  // sign-symmetric about the image center
  cfg.tile_size = 16;
  cfg.step = rng.uniform(0.4f, 0.9f);
  cfg.mode = rng.chance(50) ? render::RenderMode::kComposite : render::RenderMode::kMip;
  const bool flame = rng.chance(50);
  const render::TransferFunction tf =
      flame ? render::TransferFunction::flame() : render::TransferFunction::grayscale(0.0f, 1.0f);
  desc << (cfg.mode == render::RenderMode::kMip ? " mip" : " composite")
       << (flame ? " flame" : " gray");

  {
    // Mirror-flip invariant: viewing the volume from +x and its x-mirror
    // from -x (mirrored eyes, same target) must produce x-mirrored images.
    // The camera geometry below is exactly mirror-symmetric (halves and
    // integers only), so the slab t-ranges — and with them the per-ray
    // sample counts — are bit-identical; the residual is ray.at(t) double
    // rounding of ~1 ulp per coordinate accumulated over the samples, which
    // is why this check runs under an absolute tier rather than
    // bit-identity. Early termination is disabled (a threshold crossing on
    // a 1-ulp difference would change the sample count discontinuously),
    // and shading stays off (its degenerate-gradient branch is equally
    // discontinuous).
    render::RenderConfig mcfg = cfg;
    mcfg.shade = false;
    mcfg.early_termination = 2.0f;
    const float cx = 0.5f * static_cast<float>(e.nx - 1);
    const float cy = 0.5f * static_cast<float>(e.ny - 1);
    const float cz = 0.5f * static_cast<float>(e.nz - 1);
    const float orbit =
        static_cast<float>(2 * std::max(e.nx, std::max(e.ny, e.nz)) + 8);
    const float lift = 0.25f * orbit;
    const render::Vec3 target{cx, cy, cz};
    const render::Camera cam_pos_x({cx + orbit, cy + lift, cz}, target, {0, 1, 0}, 38.0f,
                                   render::Projection::kPerspective);
    const render::Camera cam_neg_x({cx - orbit, cy + lift, cz}, target, {0, 1, 0}, 38.0f,
                                   render::Projection::kPerspective);
    const render::Image from_pos = render::raycast_parallel(volume, cam_pos_x, tf, mcfg, pool);
    const render::Image from_neg =
        render::raycast_parallel(mirrored, cam_neg_x, tf, mcfg, pool);
    record(summary, compare_images_mirrored_x(from_pos, from_neg, Tolerance::absolute(1.0e-3f),
                                              "metamorphic mirror-flip raycast"));
  }

  // Macrocell skipping must be an identity at every orbit viewpoint — the
  // skip geometry changes with the view direction, the image must not.
  // Half the seeds run this loop through the packet raycaster, so the
  // identity is also exercised lane-desynchronized.
  cfg.shade = rng.chance(30);
  cfg.macrocell_size = rng.chance(50) ? 4u : 8u;
  cfg.packet_size = rng.chance(50) ? (rng.chance(50) ? 4u : 8u) : 1u;
  desc << " packet=" << cfg.packet_size;
  const auto zvolume = core::convert_layout<ZOrderLayout>(volume);
  for (unsigned vp = 0; vp < 8; ++vp) {
    const render::Camera camera = render::orbit_camera(
        vp, 8, static_cast<float>(e.nx), static_cast<float>(e.ny), static_cast<float>(e.nz));
    cfg.use_macrocells = false;
    const render::Image dense = render::raycast_parallel(zvolume, camera, tf, cfg, pool);
    cfg.use_macrocells = true;
    const render::Image skipped = render::raycast_parallel(zvolume, camera, tf, cfg, pool);
    std::ostringstream ctx;
    ctx << "metamorphic macrocell identity vp" << vp << " mc" << cfg.macrocell_size;
    record(summary, compare_images(dense, skipped, Tolerance::bit_identical(), ctx.str()));
  }

  summary.description = desc.str();
  return summary;
}

}  // namespace sfcvis::verify
