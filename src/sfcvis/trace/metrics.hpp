// Merged-at-report-time view of the metrics registry (see trace.hpp).
//
// Kernels accumulate into thread-private slots; MetricsSnapshot is the
// reduce step: per-thread values survive (that is the load-imbalance
// signal) alongside totals and the (max - mean) / mean imbalance figure
// the run report prints per metric and per phase.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sfcvis::trace {

/// Typed metric handles (indices into the registry; see Tracer).
enum class CounterId : std::uint32_t {};
enum class HistogramId : std::uint32_t {};

/// One thread's contribution to a metric. `worker_id` is the pool worker
/// id when the thread announced one via set_worker_id (~0u otherwise).
struct ThreadValue {
  unsigned trace_tid = 0;
  unsigned worker_id = ~0u;
  std::uint64_t value = 0;
};

/// A named counter, merged across threads.
struct CounterMetric {
  std::string name;
  std::uint64_t total = 0;
  std::vector<ThreadValue> per_thread;  ///< threads that touched the slot
  /// (max - mean) / mean over per_thread values; 0 when fewer than two
  /// threads contributed. 0 = perfectly balanced, 1 = the busiest thread
  /// did double its fair share.
  double imbalance = 0.0;
};

/// A named log2 histogram, merged across threads. bucket[i] counts
/// observations in [2^i, 2^(i+1)) (bucket 0 additionally holds zeros;
/// the last bucket holds everything above its lower bound).
struct HistogramMetric {
  static constexpr unsigned kBuckets = 32;
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Everything the registry knows, merged. Take while quiescent.
struct MetricsSnapshot {
  std::vector<CounterMetric> counters;
  std::vector<HistogramMetric> histograms;

  /// Lookup by name; nullptr when absent.
  [[nodiscard]] const CounterMetric* find_counter(std::string_view name) const noexcept;
  [[nodiscard]] const HistogramMetric* find_histogram(std::string_view name) const noexcept;

  /// Merged total of a counter; 0 when the counter was never registered.
  [[nodiscard]] std::uint64_t total(std::string_view name) const noexcept;
};

/// (max - mean) / mean of `values`; 0 for fewer than two values or an
/// all-zero set. The scheduler-imbalance figure of the run report.
[[nodiscard]] double load_imbalance(const std::vector<ThreadValue>& values) noexcept;

}  // namespace sfcvis::trace
