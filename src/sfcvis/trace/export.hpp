// Exporters for trace + metrics snapshots.
//
// Two formats, two audiences:
//  * chrome_trace_json — Chrome trace-event JSON ("X" duration events
//    with ph/ts/dur/pid/tid/name), loadable in Perfetto or
//    chrome://tracing for a visual timeline; per-span hardware counter
//    deltas ride along in each event's "args".
//  * run_report_json — the machine-readable run report consumed by
//    tools/trace_summary.py and tools/bench_gate.py: per-phase span
//    aggregates with per-thread breakdown and load imbalance, the merged
//    metrics registry, and any bench result tables. This replaces the
//    bespoke per-bench stats printers as the diffable artifact of a run.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sfcvis/trace/metrics.hpp"
#include "sfcvis/trace/trace.hpp"

namespace sfcvis::trace {

/// A bench result table carried verbatim into the run report (the JSON
/// twin of bench_util::ResultTable, kept dependency-free on purpose).
struct ReportTable {
  std::string name;   ///< machine key, e.g. the CSV basename "abl_empty_skiprate"
  std::string title;  ///< human title as printed by the bench
  std::vector<std::string> rows;
  std::vector<std::string> cols;
  std::vector<std::vector<double>> cells;  ///< [row][col]
};

/// Whole-run top-down microarchitecture result for the run report. The
/// report always carries a "topdown" section; when the counters could not
/// be opened `available` is false and `source` names the reason (the
/// reported-fallback idiom — absence is a recorded fact, never silence).
struct TopDownReport {
  bool available = false;
  std::string source;  ///< "perf_events" or the open-failure explanation
  perfmon::TopDownReading reading{};
};

/// One point of a miss-ratio curve: the modeled LRU miss ratio of a
/// fully-associative cache holding `capacity_bytes` of this granule size.
struct LocalityMissPoint {
  std::uint64_t capacity_bytes = 0;
  double miss_ratio = 0.0;
};

/// One granularity slice (cache lines or pages) of a locality profile —
/// plain data, produced by locality::LocalityProfiler and kept
/// dependency-free here like ReportTable.
struct LocalityGranularity {
  std::uint32_t granule_bytes = 0;
  std::uint64_t accesses = 0;  ///< granule touches (straddles split per granule)
  std::uint64_t distinct = 0;  ///< working set, in granules
  std::uint64_t cold = 0;      ///< first-touch accesses (infinite reuse distance)
  /// bytes-used / bytes-fetched over the whole run; negative when not
  /// tracked at this granularity (emitted as JSON null).
  double utilization = -1.0;
  /// Finite reuse distances, log2-bucketed: bucket 0 counts distance 0,
  /// bucket b >= 1 counts distances in [2^(b-1), 2^b). Trimmed to the
  /// last nonzero bucket; cold accesses are counted separately above.
  std::vector<std::uint64_t> reuse_log2;
  std::vector<LocalityMissPoint> mrc;  ///< ascending capacities
};

/// Locality profile of one traced kernel replay over one layout.
struct LocalityProfile {
  std::string kernel;
  std::string layout;
  std::uint64_t accesses = 0;  ///< raw view accesses fed to the profiler
  std::uint64_t bytes = 0;     ///< bytes those accesses requested
  LocalityGranularity line;
  LocalityGranularity page;
  /// SHARDS-sampled estimate at line granularity (counts pre-scaled by
  /// the sampling rate 2^sample_rate_log2); absent when sampling was off.
  bool sampled_available = false;
  std::uint32_t sample_rate_log2 = 0;
  LocalityGranularity sampled;
};

/// The run report's always-present "locality" section (reported-fallback
/// idiom, like TopDownReport): when no profiler ran, `available` is false
/// and `source` says why.
struct LocalityReport {
  bool available = false;
  std::string source;
  std::vector<LocalityProfile> profiles;
};

/// One finished (or cancelled) kernel job as attributed in the run
/// report's "jobs" section — plain data, produced by exec::JobGraph and
/// kept dependency-free here like ReportTable.
struct JobReportEntry {
  std::uint64_t id = 0;
  std::string kernel;
  std::string state;  ///< "done" or "cancelled"
  std::uint64_t tiles = 0;
  std::uint64_t tiles_run = 0;
  std::uint64_t queue_wait_ns = 0;
  std::uint64_t run_ns = 0;
  std::uint64_t deadline_ns = 0;  ///< 0 = no deadline
  bool deadline_missed = false;
  std::uint64_t structure_cache_hits = 0;
  std::uint64_t structure_cache_misses = 0;
};

/// The run report's always-present "jobs" section (reported-fallback
/// idiom): when no JobGraph ran, `available` is false and `source` says
/// why.
struct JobsReport {
  bool available = false;
  std::string source;
  std::vector<JobReportEntry> jobs;
};

/// Chrome trace-event JSON (Perfetto-loadable). Spans become "X" events;
/// threads are named via "M" metadata events ("worker N" or "thread N").
[[nodiscard]] std::string chrome_trace_json(const TraceSnapshot& snap);

/// The run report: versioned JSON with hw-counter provenance, per-phase
/// aggregates (phase = span name + tag), per-thread values, the metrics
/// registry, `tables`, the top-down slot breakdown, the locality section,
/// and the per-job dispatch section (`topdown` / `locality` / `jobs` may
/// be null — the sections are then emitted as unavailable).
[[nodiscard]] std::string run_report_json(const TraceSnapshot& snap,
                                          const MetricsSnapshot& metrics,
                                          const std::vector<ReportTable>& tables = {},
                                          const TopDownReport* topdown = nullptr,
                                          const LocalityReport* locality = nullptr,
                                          const JobsReport* jobs = nullptr);

/// Writes `contents` to `path`; false (with intact errno) on failure.
bool write_text_file(const std::string& path, std::string_view contents);

}  // namespace sfcvis::trace
