// Exporters for trace + metrics snapshots.
//
// Two formats, two audiences:
//  * chrome_trace_json — Chrome trace-event JSON ("X" duration events
//    with ph/ts/dur/pid/tid/name), loadable in Perfetto or
//    chrome://tracing for a visual timeline; per-span hardware counter
//    deltas ride along in each event's "args".
//  * run_report_json — the machine-readable run report consumed by
//    tools/trace_summary.py and tools/bench_gate.py: per-phase span
//    aggregates with per-thread breakdown and load imbalance, the merged
//    metrics registry, and any bench result tables. This replaces the
//    bespoke per-bench stats printers as the diffable artifact of a run.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sfcvis/trace/metrics.hpp"
#include "sfcvis/trace/trace.hpp"

namespace sfcvis::trace {

/// A bench result table carried verbatim into the run report (the JSON
/// twin of bench_util::ResultTable, kept dependency-free on purpose).
struct ReportTable {
  std::string name;   ///< machine key, e.g. the CSV basename "abl_empty_skiprate"
  std::string title;  ///< human title as printed by the bench
  std::vector<std::string> rows;
  std::vector<std::string> cols;
  std::vector<std::vector<double>> cells;  ///< [row][col]
};

/// Whole-run top-down microarchitecture result for the run report. The
/// report always carries a "topdown" section; when the counters could not
/// be opened `available` is false and `source` names the reason (the
/// reported-fallback idiom — absence is a recorded fact, never silence).
struct TopDownReport {
  bool available = false;
  std::string source;  ///< "perf_events" or the open-failure explanation
  perfmon::TopDownReading reading{};
};

/// Chrome trace-event JSON (Perfetto-loadable). Spans become "X" events;
/// threads are named via "M" metadata events ("worker N" or "thread N").
[[nodiscard]] std::string chrome_trace_json(const TraceSnapshot& snap);

/// The run report: versioned JSON with hw-counter provenance, per-phase
/// aggregates (phase = span name + tag), per-thread values, the metrics
/// registry, `tables`, and the top-down slot breakdown (`topdown` may be
/// null — the section is then emitted as unavailable).
[[nodiscard]] std::string run_report_json(const TraceSnapshot& snap,
                                          const MetricsSnapshot& metrics,
                                          const std::vector<ReportTable>& tables = {},
                                          const TopDownReport* topdown = nullptr);

/// Writes `contents` to `path`; false (with intact errno) on failure.
bool write_text_file(const std::string& path, std::string_view contents);

}  // namespace sfcvis::trace
