// Low-overhead tracing + metrics subsystem (the observability layer).
//
// The paper's argument is built on memory-system counters correlated with
// runtime; this module makes that evidence *attributable*: which pencil,
// which tile, which traversal phase — on which worker thread — spent the
// time and the cache misses. Three cooperating pieces:
//
//  * Scoped spans. `SFCVIS_TRACE_SPAN("bilateral.pencil", tag, index)`
//    records a begin/end interval into a per-thread ring buffer — no locks
//    and no allocation on the hot path (threads register once, under a
//    mutex, on their first span). A compile-time kill switch (CMake option
//    SFCVIS_TRACE, macro SFCVIS_TRACE_ENABLED) makes the macros expand to
//    nothing; with it on, a runtime flag gates recording and the disabled
//    path is one relaxed atomic load.
//
//  * Per-span hardware counter deltas. Each tracing thread lazily opens a
//    perfmon::PerfGroup (cache-refs / cache-misses / instructions /
//    cycles, one PERF_FORMAT_GROUP read syscall) and every span stores the
//    begin/end delta. When the kernel refuses, spans degrade to
//    timing-only and the snapshot reports *why* (perf_event_paranoid
//    level etc.) — the fallback is never silent.
//
//  * A metrics registry: named per-thread counters and log2 histograms,
//    merged at report time. Kernels accumulate into thread-private slots
//    (no sharing, no atomics — the TSan-clean replacement for the old
//    atomic RenderStats) and the per-thread values expose scheduler load
//    imbalance directly. Metrics work independently of span tracing so
//    deterministic stats (e.g. skip rates) are available in untraced runs.
//
// Concurrency contract: recording is wait-free per thread; enable() /
// disable() / reset() / snapshot() must run while no other thread is
// recording (quiescence — e.g. outside Pool::run regions, whose join
// establishes the needed happens-before). Exporters live in export.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sfcvis/perfmon/perf_events.hpp"
#include "sfcvis/trace/metrics.hpp"

// Compile-time kill switch; CMake passes 0 via SFCVIS_TRACE=OFF. Default
// on so non-CMake consumers of the headers get working macros.
#ifndef SFCVIS_TRACE_ENABLED
#define SFCVIS_TRACE_ENABLED 1
#endif

namespace sfcvis::trace {

/// One completed span. `name` and `tag` must be string literals (or other
/// storage outliving the tracer) — records store the pointers only.
struct SpanRecord {
  const char* name = nullptr;
  const char* tag = nullptr;  ///< optional variant label (e.g. "gather"); may be null
  std::uint64_t arg = 0;      ///< numeric payload: pencil/tile/chunk index
  std::uint64_t start_ns = 0; ///< steady-clock; snapshot-relative via epoch_ns
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;    ///< nesting depth on the recording thread
  bool have_counters = false; ///< whether `delta` holds hardware deltas
  perfmon::GroupReading delta{};
};

/// Everything one thread recorded.
struct ThreadTrace {
  unsigned trace_tid = 0;   ///< registration order, stable within a process
  unsigned worker_id = ~0u; ///< pool worker id when known (~0u: not a pool worker)
  std::uint64_t dropped = 0; ///< spans overwritten by ring wraparound
  bool hw_counters = false;  ///< this thread has a live perf group
  perfmon::GroupReading run_total{};  ///< whole-enabled-window counter totals
  std::vector<SpanRecord> spans;      ///< oldest to newest
};

/// A coherent copy of all recorded state (take while quiescent).
struct TraceSnapshot {
  std::uint64_t epoch_ns = 0;  ///< steady-clock ns at enable(); span origin
  bool span_tracing = false;   ///< runtime flag state at snapshot time
  bool hw_counters = false;    ///< any thread had per-span hardware counters
  /// "perf-group" when hardware counters work; otherwise the reported
  /// reason for the timing-only fallback (errno + actionable hint).
  std::string counter_source;
  std::vector<ThreadTrace> threads;

  [[nodiscard]] std::uint64_t total_spans() const noexcept {
    std::uint64_t n = 0;
    for (const auto& t : threads) {
      n += t.spans.size();
    }
    return n;
  }
};

/// Runtime knobs of enable().
struct TraceOptions {
  /// Spans per thread before the ring wraps (oldest records are dropped
  /// and counted). ~96 B per slot.
  std::size_t ring_capacity = 1u << 15;
  /// Open a per-thread perf counter group and attach per-span deltas.
  /// Fallback to timing-only is automatic and reported.
  bool with_hw_counters = true;
};

namespace detail {
/// Hot-path gate: one relaxed load decides whether a span records.
extern std::atomic<bool> g_span_enabled;
/// Per-thread recording state (ring, counter group, metric slots).
struct ThreadState;
}  // namespace detail

/// True when span recording is runtime-enabled.
[[nodiscard]] inline bool span_tracing_enabled() noexcept {
  return detail::g_span_enabled.load(std::memory_order_relaxed);
}

class Tracer {
 public:
  /// The process-wide tracer (spans and metrics share thread registry).
  [[nodiscard]] static Tracer& instance();

  /// Starts a fresh tracing epoch: clears all rings and metric values,
  /// re-arms per-thread counter groups, sets the span origin, and turns
  /// recording on. Requires quiescence.
  void enable(const TraceOptions& options = {});

  /// Turns span recording off (records are kept for snapshot()).
  void disable();

  /// Drops all recorded spans and metric values. Requires quiescence.
  void reset();

  /// Copies out everything recorded. Requires quiescence.
  [[nodiscard]] TraceSnapshot snapshot();

  // --- metrics registry (usable with span tracing off) -------------------

  /// Registers (or looks up) a named counter / histogram. `name` must
  /// outlive the process (string literal). Cheap but locking: call once
  /// and cache the id (function-local static in kernels).
  [[nodiscard]] CounterId counter_id(const char* name);
  [[nodiscard]] HistogramId histogram_id(const char* name);

  /// Adds to the calling thread's private slot. Wait-free after the first
  /// call on a thread.
  void add(CounterId id, std::uint64_t delta);

  /// Records one histogram observation (log2 bucket + count/sum/min/max).
  void observe(HistogramId id, std::uint64_t value);

  /// Merges pre-bucketed observations (e.g. core::GatherRunStats) into
  /// the calling thread's slot. `buckets[i]` counts values in [2^i,
  /// 2^(i+1)); `count`/`sum`/`min_value`/`max_value` describe the batch.
  void merge_histogram(HistogramId id, const std::uint64_t* buckets, unsigned n,
                       std::uint64_t count, std::uint64_t sum, std::uint64_t min_value,
                       std::uint64_t max_value);

  /// Merged view of every registered metric. Requires quiescence.
  [[nodiscard]] MetricsSnapshot metrics_snapshot();

  /// Clears metric values (registrations survive). Requires quiescence.
  void reset_metrics();

  // --- introspection ------------------------------------------------------

  /// Threads that have registered (test hook: the disabled span path must
  /// never register one).
  [[nodiscard]] std::size_t registered_threads();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer() = default;
  friend class ScopedSpan;
  [[nodiscard]] detail::ThreadState& thread_state();
};

/// Tags the calling thread as pool worker `tid` for attribution in
/// snapshots. Plain thread-local store: never registers or allocates, so
/// Pool workers call it unconditionally at startup.
void set_worker_id(unsigned tid);

/// RAII span. Prefer the SFCVIS_TRACE_SPAN macro, which the compile-time
/// kill switch can erase entirely.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* tag = nullptr,
                      std::uint64_t arg = 0) noexcept {
    if (span_tracing_enabled()) {
      begin(name, tag, arg);
    }
  }
  ~ScopedSpan() {
    if (state_ != nullptr) {
      end();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* name, const char* tag, std::uint64_t arg) noexcept;
  void end() noexcept;

  detail::ThreadState* state_ = nullptr;  ///< null: span is inactive
  const char* name_ = nullptr;
  const char* tag_ = nullptr;
  std::uint64_t arg_ = 0;
  std::uint64_t start_ns_ = 0;
  bool have_counters_ = false;
  perfmon::GroupReading begin_counters_{};
};

}  // namespace sfcvis::trace

#if SFCVIS_TRACE_ENABLED
#define SFCVIS_TRACE_CONCAT_IMPL(a, b) a##b
#define SFCVIS_TRACE_CONCAT(a, b) SFCVIS_TRACE_CONCAT_IMPL(a, b)
/// Declares a scoped span: SFCVIS_TRACE_SPAN("name"[, tag[, arg]]).
#define SFCVIS_TRACE_SPAN(...) \
  ::sfcvis::trace::ScopedSpan SFCVIS_TRACE_CONCAT(sfcvis_trace_span_, __LINE__)(__VA_ARGS__)
#else
#define SFCVIS_TRACE_SPAN(...) \
  do {                         \
  } while (false)
#endif
