// Minimal streaming JSON writer for the trace exporters. Deliberately
// tiny (no DOM, no parsing): the repo ships no JSON dependency and the
// exporters only ever append. Correctness cared about: string escaping,
// comma placement, non-finite doubles become null.
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace sfcvis::trace {

class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Object key; follow with exactly one value or container.
  void key(std::string_view k) {
    comma();
    quote(k);
    out_ += ':';
    pending_key_ = true;
  }

  void value(std::string_view v) {
    comma();
    quote(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    comma();
    out_ += v ? "true" : "false";
  }
  void value(std::uint64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
  }
  void value(int v) { value(static_cast<std::uint64_t>(v < 0 ? 0 : v)); }
  void null() {
    comma();
    out_ += "null";
  }
  /// `decimals` fixed digits (timestamps want ns resolution at µs scale).
  void value(double v, int decimals = 6) {
    comma();
    if (!std::isfinite(v)) {
      out_ += "null";
      return;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    out_ += buf;
  }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void open(char c) {
    comma();
    out_ += c;
    first_in_.push_back(true);
  }
  void close(char c) {
    out_ += c;
    first_in_.pop_back();
  }
  /// Emits the separating comma unless this is a key's value or the
  /// container's first entry.
  void comma() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!first_in_.empty()) {
      if (!first_in_.back()) {
        out_ += ',';
      }
      first_in_.back() = false;
    }
  }
  void quote(std::string_view s) {
    out_ += '"';
    for (const char ch : s) {
      const auto u = static_cast<unsigned char>(ch);
      switch (ch) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", u);
            out_ += buf;
          } else {
            out_ += ch;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> first_in_;
  bool pending_key_ = false;
};

}  // namespace sfcvis::trace
