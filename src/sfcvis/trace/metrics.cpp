#include "sfcvis/trace/metrics.hpp"

#include <algorithm>

namespace sfcvis::trace {

const CounterMetric* MetricsSnapshot::find_counter(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

const HistogramMetric* MetricsSnapshot::find_histogram(
    std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) {
      return &h;
    }
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::total(std::string_view name) const noexcept {
  const CounterMetric* c = find_counter(name);
  return c == nullptr ? 0 : c->total;
}

double load_imbalance(const std::vector<ThreadValue>& values) noexcept {
  if (values.size() < 2) {
    return 0.0;
  }
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  for (const auto& v : values) {
    sum += v.value;
    max = std::max(max, v.value);
  }
  if (sum == 0) {
    return 0.0;
  }
  const double mean = static_cast<double>(sum) / static_cast<double>(values.size());
  return (static_cast<double>(max) - mean) / mean;
}

}  // namespace sfcvis::trace
