#include "sfcvis/trace/trace.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>

namespace sfcvis::trace {

namespace detail {

std::atomic<bool> g_span_enabled{false};

/// One thread's histogram slot (merged into HistogramMetric at snapshot).
struct HistSlot {
  std::array<std::uint64_t, HistogramMetric::kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max = 0;
};

struct ThreadState {
  unsigned trace_tid = 0;
  unsigned worker_id = ~0u;

  // Span ring. `pushed` is the monotone record count; the live window is
  // the last min(pushed, ring.size()) entries, so dropped = pushed - kept.
  std::vector<SpanRecord> ring;
  std::uint64_t pushed = 0;
  std::uint32_t depth = 0;

  // Per-thread counter group. Opening must happen on the owning thread
  // (perf groups have no inherit), so enable() only flags the request and
  // the first span begin() on the thread performs the open.
  bool counters_on = false;
  bool try_open_group = false;
  std::optional<perfmon::PerfGroup> group;
  perfmon::GroupReading at_enable{};
  bool have_at_enable = false;

  // Metric slots, indexed by CounterId / HistogramId, grown on demand.
  std::vector<std::uint64_t> counters;
  std::vector<HistSlot> hists;
};

}  // namespace detail

namespace {

using detail::ThreadState;

thread_local ThreadState* t_state = nullptr;
thread_local unsigned t_worker_id = ~0u;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// All cross-thread tracer state. Intentionally leaked so spans on
/// late-exiting threads stay safe during static destruction.
struct TracerImpl {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadState>> threads;
  TraceOptions options;
  std::uint64_t epoch_ns = 0;
  std::string hw_failure;  ///< first PerfGroup::open failure this epoch
  std::vector<const char*> counter_names;
  std::vector<const char*> histogram_names;
};

TracerImpl& impl() {
  static TracerImpl* instance = new TracerImpl();
  return *instance;
}

/// Owning-thread half of enable(): open the perf group and take the
/// enabled-window baseline reading.
void open_group_on_this_thread(ThreadState& st) {
  st.try_open_group = false;
  perfmon::OpenFailure failure;
  st.group = perfmon::PerfGroup::open(&failure);
  if (st.group.has_value()) {
    perfmon::GroupReading reading;
    if (st.group->read_now(reading)) {
      st.at_enable = reading;
      st.have_at_enable = true;
    }
  } else {
    auto& ti = impl();
    std::lock_guard<std::mutex> lock(ti.mutex);
    if (ti.hw_failure.empty()) {
      ti.hw_failure = failure.message;
    }
  }
}

void clear_metric_slots(ThreadState& st) {
  std::fill(st.counters.begin(), st.counters.end(), 0);
  std::fill(st.hists.begin(), st.hists.end(), detail::HistSlot{});
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

ThreadState& Tracer::thread_state() {
  if (t_state == nullptr) {
    auto& ti = impl();
    std::lock_guard<std::mutex> lock(ti.mutex);
    auto st = std::make_unique<ThreadState>();
    st->trace_tid = static_cast<unsigned>(ti.threads.size());
    st->worker_id = t_worker_id;
    st->counters_on = ti.options.with_hw_counters;
    if (detail::g_span_enabled.load(std::memory_order_relaxed)) {
      st->ring.resize(ti.options.ring_capacity);
      st->try_open_group = ti.options.with_hw_counters;
    }
    t_state = st.get();
    ti.threads.push_back(std::move(st));
  }
  return *t_state;
}

void Tracer::enable(const TraceOptions& options) {
  auto& ti = impl();
  std::lock_guard<std::mutex> lock(ti.mutex);
  ti.options = options;
  ti.options.ring_capacity = std::max<std::size_t>(1, ti.options.ring_capacity);
  ti.hw_failure.clear();
  ti.epoch_ns = now_ns();
  for (auto& st : ti.threads) {
    st->pushed = 0;
    st->depth = 0;
    st->ring.assign(ti.options.ring_capacity, SpanRecord{});
    st->counters_on = ti.options.with_hw_counters;
    st->have_at_enable = false;
    if (ti.options.with_hw_counters) {
      if (st->group.has_value()) {
        // Reading a foreign thread's group fd is fine; only the open is
        // bound to the owning thread.
        perfmon::GroupReading reading;
        if (st->group->read_now(reading)) {
          st->at_enable = reading;
          st->have_at_enable = true;
        }
      } else {
        st->try_open_group = true;
      }
    } else {
      st->try_open_group = false;
    }
    clear_metric_slots(*st);
  }
  detail::g_span_enabled.store(true, std::memory_order_release);
}

void Tracer::disable() {
  detail::g_span_enabled.store(false, std::memory_order_release);
}

void Tracer::reset() {
  auto& ti = impl();
  std::lock_guard<std::mutex> lock(ti.mutex);
  for (auto& st : ti.threads) {
    st->pushed = 0;
    st->depth = 0;
    clear_metric_slots(*st);
  }
}

TraceSnapshot Tracer::snapshot() {
  auto& ti = impl();
  std::lock_guard<std::mutex> lock(ti.mutex);
  TraceSnapshot snap;
  snap.epoch_ns = ti.epoch_ns;
  snap.span_tracing = detail::g_span_enabled.load(std::memory_order_acquire);
  for (const auto& stp : ti.threads) {
    const ThreadState& st = *stp;
    ThreadTrace tt;
    tt.trace_tid = st.trace_tid;
    tt.worker_id = st.worker_id;
    const std::uint64_t cap = st.ring.size();
    const std::uint64_t kept = cap == 0 ? 0 : std::min(st.pushed, cap);
    tt.dropped = st.pushed - kept;
    tt.spans.reserve(kept);
    for (std::uint64_t i = st.pushed - kept; i < st.pushed; ++i) {
      tt.spans.push_back(st.ring[i % cap]);
    }
    tt.hw_counters = st.counters_on && st.group.has_value();
    if (tt.hw_counters && st.have_at_enable) {
      perfmon::GroupReading current;
      if (st.group->read_now(current)) {
        tt.run_total = current - st.at_enable;
      }
    }
    snap.hw_counters = snap.hw_counters || tt.hw_counters;
    snap.threads.push_back(std::move(tt));
  }
  if (snap.hw_counters) {
    snap.counter_source = "perf-group";
  } else if (!ti.options.with_hw_counters) {
    snap.counter_source = "timing-only: hardware counters not requested";
  } else if (!ti.hw_failure.empty()) {
    snap.counter_source = "timing-only: " + ti.hw_failure;
  } else {
    snap.counter_source = "timing-only: no thread attempted to open a counter group";
  }
  return snap;
}

CounterId Tracer::counter_id(const char* name) {
  auto& ti = impl();
  std::lock_guard<std::mutex> lock(ti.mutex);
  for (std::size_t i = 0; i < ti.counter_names.size(); ++i) {
    if (std::strcmp(ti.counter_names[i], name) == 0) {
      return CounterId{static_cast<std::uint32_t>(i)};
    }
  }
  ti.counter_names.push_back(name);
  return CounterId{static_cast<std::uint32_t>(ti.counter_names.size() - 1)};
}

HistogramId Tracer::histogram_id(const char* name) {
  auto& ti = impl();
  std::lock_guard<std::mutex> lock(ti.mutex);
  for (std::size_t i = 0; i < ti.histogram_names.size(); ++i) {
    if (std::strcmp(ti.histogram_names[i], name) == 0) {
      return HistogramId{static_cast<std::uint32_t>(i)};
    }
  }
  ti.histogram_names.push_back(name);
  return HistogramId{static_cast<std::uint32_t>(ti.histogram_names.size() - 1)};
}

void Tracer::add(CounterId id, std::uint64_t delta) {
  ThreadState& st = thread_state();
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= st.counters.size()) {
    st.counters.resize(idx + 1, 0);
  }
  st.counters[idx] += delta;
}

void Tracer::observe(HistogramId id, std::uint64_t value) {
  ThreadState& st = thread_state();
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= st.hists.size()) {
    st.hists.resize(idx + 1);
  }
  detail::HistSlot& h = st.hists[idx];
  ++h.count;
  h.sum += value;
  h.min = std::min(h.min, value);
  h.max = std::max(h.max, value);
  const unsigned bucket =
      value == 0 ? 0
                 : std::min<unsigned>(static_cast<unsigned>(std::bit_width(value)) - 1,
                                      HistogramMetric::kBuckets - 1);
  ++h.buckets[bucket];
}

void Tracer::merge_histogram(HistogramId id, const std::uint64_t* buckets, unsigned n,
                             std::uint64_t count, std::uint64_t sum,
                             std::uint64_t min_value, std::uint64_t max_value) {
  if (count == 0) {
    return;
  }
  ThreadState& st = thread_state();
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= st.hists.size()) {
    st.hists.resize(idx + 1);
  }
  detail::HistSlot& h = st.hists[idx];
  h.count += count;
  h.sum += sum;
  h.min = std::min(h.min, min_value);
  h.max = std::max(h.max, max_value);
  for (unsigned i = 0; i < n; ++i) {
    h.buckets[std::min(i, HistogramMetric::kBuckets - 1)] += buckets[i];
  }
}

MetricsSnapshot Tracer::metrics_snapshot() {
  auto& ti = impl();
  std::lock_guard<std::mutex> lock(ti.mutex);
  MetricsSnapshot snap;
  snap.counters.resize(ti.counter_names.size());
  for (std::size_t i = 0; i < ti.counter_names.size(); ++i) {
    snap.counters[i].name = ti.counter_names[i];
  }
  snap.histograms.resize(ti.histogram_names.size());
  for (std::size_t i = 0; i < ti.histogram_names.size(); ++i) {
    snap.histograms[i].name = ti.histogram_names[i];
  }
  for (const auto& stp : ti.threads) {
    const ThreadState& st = *stp;
    for (std::size_t i = 0; i < st.counters.size() && i < snap.counters.size(); ++i) {
      // Only contributing threads appear: a slot can exist with value 0
      // purely because a higher id forced the resize.
      if (st.counters[i] == 0) {
        continue;
      }
      snap.counters[i].total += st.counters[i];
      snap.counters[i].per_thread.push_back(
          ThreadValue{st.trace_tid, st.worker_id, st.counters[i]});
    }
    for (std::size_t i = 0; i < st.hists.size() && i < snap.histograms.size(); ++i) {
      const detail::HistSlot& h = st.hists[i];
      if (h.count == 0) {
        continue;
      }
      HistogramMetric& out = snap.histograms[i];
      const bool first = out.count == 0;
      out.count += h.count;
      out.sum += h.sum;
      out.min = first ? h.min : std::min(out.min, h.min);
      out.max = std::max(out.max, h.max);
      for (unsigned b = 0; b < HistogramMetric::kBuckets; ++b) {
        out.buckets[b] += h.buckets[b];
      }
    }
  }
  for (auto& c : snap.counters) {
    c.imbalance = load_imbalance(c.per_thread);
  }
  return snap;
}

void Tracer::reset_metrics() {
  auto& ti = impl();
  std::lock_guard<std::mutex> lock(ti.mutex);
  for (auto& st : ti.threads) {
    clear_metric_slots(*st);
  }
}

std::size_t Tracer::registered_threads() {
  auto& ti = impl();
  std::lock_guard<std::mutex> lock(ti.mutex);
  return ti.threads.size();
}

void set_worker_id(unsigned tid) {
  t_worker_id = tid;
  if (t_state != nullptr) {
    t_state->worker_id = tid;
  }
}

void ScopedSpan::begin(const char* name, const char* tag, std::uint64_t arg) noexcept {
  ThreadState& st = Tracer::instance().thread_state();
  if (st.try_open_group) {
    open_group_on_this_thread(st);
  }
  if (st.ring.empty()) {
    return;  // raced with enable() before this thread's ring was sized
  }
  state_ = &st;
  name_ = name;
  tag_ = tag;
  arg_ = arg;
  ++st.depth;
  if (st.counters_on && st.group.has_value()) {
    have_counters_ = st.group->read_now(begin_counters_);
  }
  start_ns_ = now_ns();
}

void ScopedSpan::end() noexcept {
  ThreadState& st = *state_;
  const std::uint64_t end_ns = now_ns();
  perfmon::GroupReading end_counters{};
  bool have = false;
  if (have_counters_ && st.group.has_value()) {
    have = st.group->read_now(end_counters);
  }
  --st.depth;
  SpanRecord& rec = st.ring[st.pushed % st.ring.size()];
  ++st.pushed;
  rec.name = name_;
  rec.tag = tag_;
  rec.arg = arg_;
  rec.start_ns = start_ns_;
  rec.dur_ns = end_ns - start_ns_;
  rec.depth = st.depth;
  rec.have_counters = have;
  rec.delta = have ? end_counters - begin_counters_ : perfmon::GroupReading{};
}

}  // namespace sfcvis::trace
