#include "sfcvis/trace/export.hpp"

#include <cstdio>
#include <map>
#include <string>

#include "sfcvis/trace/json.hpp"

namespace sfcvis::trace {

namespace {

std::string thread_display_name(const ThreadTrace& t) {
  if (t.worker_id != ~0u) {
    return "worker " + std::to_string(t.worker_id);
  }
  // Registration order makes the first-registered thread almost always the
  // driver; name it for readable timelines.
  return t.trace_tid == 0 ? "main" : "thread " + std::to_string(t.trace_tid);
}

void counters_object(JsonWriter& w, const perfmon::GroupReading& r) {
  w.begin_object();
  w.key("cache_references");
  w.value(r.cache_references);
  w.key("cache_misses");
  w.value(r.cache_misses);
  w.key("instructions");
  w.value(r.instructions);
  w.key("cycles");
  w.value(r.cycles);
  w.end_object();
}

void locality_granularity_object(JsonWriter& w, const LocalityGranularity& g) {
  w.begin_object();
  w.key("granule_bytes");
  w.value(std::uint64_t{g.granule_bytes});
  w.key("accesses");
  w.value(g.accesses);
  w.key("distinct");
  w.value(g.distinct);
  w.key("cold");
  w.value(g.cold);
  w.key("utilization");
  if (g.utilization < 0.0) {
    w.null();
  } else {
    w.value(g.utilization, 6);
  }
  w.key("reuse_log2");
  w.begin_array();
  for (const std::uint64_t b : g.reuse_log2) {
    w.value(b);
  }
  w.end_array();
  w.key("mrc");
  w.begin_array();
  for (const LocalityMissPoint& p : g.mrc) {
    w.begin_object();
    w.key("capacity_bytes");
    w.value(p.capacity_bytes);
    w.key("miss_ratio");
    w.value(p.miss_ratio, 9);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

/// One aggregation bucket: every span sharing (name, tag).
struct Phase {
  const char* name = nullptr;
  const char* tag = nullptr;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  bool have_counters = false;
  perfmon::GroupReading counters{};
  std::map<unsigned, std::pair<std::uint64_t, std::uint64_t>>
      per_thread;  ///< tid -> (count, total_ns)
};

}  // namespace

std::string chrome_trace_json(const TraceSnapshot& snap) {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& t : snap.threads) {
    if (t.spans.empty()) {
      continue;
    }
    w.begin_object();
    w.key("name");
    w.value("thread_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(std::uint64_t{t.trace_tid});
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value(thread_display_name(t));
    w.end_object();
    w.end_object();
    for (const auto& s : t.spans) {
      w.begin_object();
      w.key("name");
      w.value(s.name == nullptr ? "?" : s.name);
      w.key("cat");
      w.value("sfcvis");
      w.key("ph");
      w.value("X");
      w.key("ts");
      w.value(static_cast<double>(s.start_ns - snap.epoch_ns) / 1000.0, 3);
      w.key("dur");
      w.value(static_cast<double>(s.dur_ns) / 1000.0, 3);
      w.key("pid");
      w.value(std::uint64_t{1});
      w.key("tid");
      w.value(std::uint64_t{t.trace_tid});
      w.key("args");
      w.begin_object();
      w.key("arg");
      w.value(s.arg);
      if (s.tag != nullptr) {
        w.key("tag");
        w.value(s.tag);
      }
      if (s.have_counters) {
        w.key("cache_references");
        w.value(s.delta.cache_references);
        w.key("cache_misses");
        w.value(s.delta.cache_misses);
        w.key("instructions");
        w.value(s.delta.instructions);
        w.key("cycles");
        w.value(s.delta.cycles);
      }
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("otherData");
  w.begin_object();
  w.key("counter_source");
  w.value(snap.counter_source);
  w.end_object();
  w.end_object();
  return w.take();
}

std::string run_report_json(const TraceSnapshot& snap, const MetricsSnapshot& metrics,
                            const std::vector<ReportTable>& tables,
                            const TopDownReport* topdown, const LocalityReport* locality,
                            const JobsReport* jobs) {
  // Aggregate spans into phases (ordered by name, then tag, for a stable
  // report) and sum depth-0 deltas: nested spans are contained in their
  // parents, so only top-level spans sum to the whole-run totals.
  std::map<std::string, Phase> phases;
  perfmon::GroupReading top_level_sum{};
  bool have_top_level = false;
  std::uint64_t dropped = 0;
  for (const auto& t : snap.threads) {
    dropped += t.dropped;
    for (const auto& s : t.spans) {
      std::string key = s.name == nullptr ? "?" : s.name;
      key += '\x1f';
      if (s.tag != nullptr) {
        key += s.tag;
      }
      Phase& p = phases[key];
      p.name = s.name;
      p.tag = s.tag;
      ++p.count;
      p.total_ns += s.dur_ns;
      p.max_ns = std::max(p.max_ns, s.dur_ns);
      auto& pt = p.per_thread[t.trace_tid];
      ++pt.first;
      pt.second += s.dur_ns;
      if (s.have_counters) {
        p.have_counters = true;
        p.counters = p.counters + s.delta;
        if (s.depth == 0) {
          have_top_level = true;
          top_level_sum = top_level_sum + s.delta;
        }
      }
    }
  }

  // worker ids per tid, for attributing phase threads in the report
  std::map<unsigned, unsigned> worker_of;
  for (const auto& t : snap.threads) {
    worker_of[t.trace_tid] = t.worker_id;
  }

  JsonWriter w;
  w.begin_object();
  w.key("sfcvis_run_report");
  w.value(std::uint64_t{1});
  w.key("span_tracing");
  w.value(snap.span_tracing);
  w.key("dropped_spans");
  w.value(dropped);
  w.key("hw_counters");
  w.begin_object();
  w.key("available");
  w.value(snap.hw_counters);
  w.key("source");
  w.value(snap.counter_source);
  w.end_object();

  // Top-down slot breakdown — always present; unavailable runs record why
  // (the reported-fallback idiom), so consumers can rely on the key.
  w.key("topdown");
  w.begin_object();
  w.key("available");
  w.value(topdown != nullptr && topdown->available);
  w.key("source");
  w.value(topdown == nullptr ? "top-down counters not requested by this run"
                             : topdown->source);
  if (topdown != nullptr && topdown->available) {
    const auto& r = topdown->reading;
    w.key("cycles");
    w.value(r.cycles);
    w.key("instructions");
    w.value(r.instructions);
    w.key("has_stalls");
    w.value(r.has_stalls);
    if (r.has_stalls) {
      w.key("stalled_cycles_frontend");
      w.value(r.stalled_frontend);
      w.key("stalled_cycles_backend");
      w.value(r.stalled_backend);
    }
    const perfmon::TopDownRatios ratios = perfmon::topdown_ratios(r);
    w.key("retiring");
    w.value(ratios.retiring, 4);
    if (ratios.complete) {
      w.key("frontend_bound");
      w.value(ratios.frontend_bound, 4);
      w.key("backend_bound");
      w.value(ratios.backend_bound, 4);
      w.key("bad_speculation");
      w.value(ratios.bad_speculation, 4);
    }
  }
  w.end_object();

  // Reuse-distance / miss-ratio-curve profiles — always present, like
  // topdown; runs without a locality profiler record why.
  w.key("locality");
  w.begin_object();
  w.key("available");
  w.value(locality != nullptr && locality->available);
  w.key("source");
  w.value(locality == nullptr
              ? "no locality profiler ran (see tools/locality_report or bench/abl_locality)"
              : locality->source);
  w.key("profiles");
  w.begin_array();
  if (locality != nullptr) {
    for (const LocalityProfile& p : locality->profiles) {
      w.begin_object();
      w.key("kernel");
      w.value(p.kernel);
      w.key("layout");
      w.value(p.layout);
      w.key("accesses");
      w.value(p.accesses);
      w.key("bytes");
      w.value(p.bytes);
      w.key("line");
      locality_granularity_object(w, p.line);
      w.key("page");
      locality_granularity_object(w, p.page);
      w.key("sample_rate_log2");
      w.value(std::uint64_t{p.sample_rate_log2});
      w.key("sampled");
      if (p.sampled_available) {
        locality_granularity_object(w, p.sampled);
      } else {
        w.null();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();

  // Per-job dispatch accounting (exec::JobGraph) — always present, like
  // topdown/locality; runs that never submitted a KernelJob record why.
  w.key("jobs");
  w.begin_object();
  w.key("available");
  w.value(jobs != nullptr && jobs->available);
  w.key("source");
  w.value(jobs == nullptr ? "no job graph ran while tracing (exec::JobGraph)" : jobs->source);
  w.key("jobs");
  w.begin_array();
  if (jobs != nullptr) {
    for (const JobReportEntry& j : jobs->jobs) {
      w.begin_object();
      w.key("id");
      w.value(j.id);
      w.key("kernel");
      w.value(j.kernel);
      w.key("state");
      w.value(j.state);
      w.key("tiles");
      w.value(j.tiles);
      w.key("tiles_run");
      w.value(j.tiles_run);
      w.key("queue_wait_ns");
      w.value(j.queue_wait_ns);
      w.key("run_ns");
      w.value(j.run_ns);
      w.key("deadline_ns");
      w.value(j.deadline_ns);
      w.key("deadline_missed");
      w.value(j.deadline_missed);
      w.key("structure_cache_hits");
      w.value(j.structure_cache_hits);
      w.key("structure_cache_misses");
      w.value(j.structure_cache_misses);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();

  // Whole-enabled-window totals summed across threads (null without hw).
  if (snap.hw_counters) {
    perfmon::GroupReading run_total{};
    for (const auto& t : snap.threads) {
      if (t.hw_counters) {
        run_total = run_total + t.run_total;
      }
    }
    w.key("run_totals");
    counters_object(w, run_total);
  } else {
    w.key("run_totals");
    w.null();
  }
  if (have_top_level) {
    w.key("span_totals");
    counters_object(w, top_level_sum);
  } else {
    w.key("span_totals");
    w.null();
  }

  w.key("threads");
  w.begin_array();
  for (const auto& t : snap.threads) {
    w.begin_object();
    w.key("tid");
    w.value(std::uint64_t{t.trace_tid});
    w.key("worker");
    if (t.worker_id == ~0u) {
      w.null();
    } else {
      w.value(std::uint64_t{t.worker_id});
    }
    w.key("spans");
    w.value(std::uint64_t{t.spans.size()});
    w.key("dropped");
    w.value(t.dropped);
    w.key("run_total");
    if (t.hw_counters) {
      counters_object(w, t.run_total);
    } else {
      w.null();
    }
    w.end_object();
  }
  w.end_array();

  w.key("phases");
  w.begin_array();
  for (const auto& [key, p] : phases) {
    (void)key;
    w.begin_object();
    w.key("name");
    w.value(p.name == nullptr ? "?" : p.name);
    w.key("tag");
    if (p.tag == nullptr) {
      w.null();
    } else {
      w.value(p.tag);
    }
    w.key("count");
    w.value(p.count);
    w.key("total_ms");
    w.value(static_cast<double>(p.total_ns) / 1e6, 3);
    w.key("mean_us");
    w.value(p.count == 0 ? 0.0
                         : static_cast<double>(p.total_ns) / 1e3 /
                               static_cast<double>(p.count),
            3);
    w.key("max_us");
    w.value(static_cast<double>(p.max_ns) / 1e3, 3);
    std::vector<ThreadValue> busy;
    busy.reserve(p.per_thread.size());
    for (const auto& [tid, ct] : p.per_thread) {
      busy.push_back(ThreadValue{tid, worker_of[tid], ct.second});
    }
    w.key("imbalance");
    w.value(load_imbalance(busy), 4);
    w.key("counters");
    if (p.have_counters) {
      counters_object(w, p.counters);
    } else {
      w.null();
    }
    w.key("per_thread");
    w.begin_array();
    for (const auto& [tid, ct] : p.per_thread) {
      w.begin_object();
      w.key("tid");
      w.value(std::uint64_t{tid});
      w.key("worker");
      if (worker_of[tid] == ~0u) {
        w.null();
      } else {
        w.value(std::uint64_t{worker_of[tid]});
      }
      w.key("count");
      w.value(ct.first);
      w.key("total_ms");
      w.value(static_cast<double>(ct.second) / 1e6, 3);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("metrics");
  w.begin_array();
  for (const auto& c : metrics.counters) {
    if (c.total == 0 && c.per_thread.empty()) {
      continue;  // registered but never incremented this run
    }
    w.begin_object();
    w.key("name");
    w.value(c.name);
    w.key("total");
    w.value(c.total);
    w.key("imbalance");
    w.value(c.imbalance, 4);
    w.key("per_thread");
    w.begin_array();
    for (const auto& v : c.per_thread) {
      w.begin_object();
      w.key("tid");
      w.value(std::uint64_t{v.trace_tid});
      w.key("worker");
      if (v.worker_id == ~0u) {
        w.null();
      } else {
        w.value(std::uint64_t{v.worker_id});
      }
      w.key("value");
      w.value(v.value);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("histograms");
  w.begin_array();
  for (const auto& h : metrics.histograms) {
    if (h.count == 0) {
      continue;
    }
    w.begin_object();
    w.key("name");
    w.value(h.name);
    w.key("count");
    w.value(h.count);
    w.key("sum");
    w.value(h.sum);
    w.key("mean");
    w.value(h.mean(), 3);
    w.key("min");
    w.value(h.min);
    w.key("max");
    w.value(h.max);
    // log2 buckets, trimmed to the last nonzero: bucket i counts values
    // in [2^i, 2^(i+1)).
    unsigned last = 0;
    for (unsigned b = 0; b < HistogramMetric::kBuckets; ++b) {
      if (h.buckets[b] != 0) {
        last = b;
      }
    }
    w.key("log2_buckets");
    w.begin_array();
    for (unsigned b = 0; b <= last; ++b) {
      w.value(h.buckets[b]);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("tables");
  w.begin_array();
  for (const auto& t : tables) {
    w.begin_object();
    w.key("name");
    w.value(t.name);
    w.key("title");
    w.value(t.title);
    w.key("rows");
    w.begin_array();
    for (const auto& r : t.rows) {
      w.value(r);
    }
    w.end_array();
    w.key("cols");
    w.begin_array();
    for (const auto& c : t.cols) {
      w.value(c);
    }
    w.end_array();
    w.key("cells");
    w.begin_array();
    for (const auto& row : t.cells) {
      w.begin_array();
      for (const double cell : row) {
        w.value(cell, 9);
      }
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.take();
}

bool write_text_file(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const std::size_t wrote = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = wrote == contents.size() && std::fclose(f) == 0;
  if (!ok && wrote != contents.size()) {
    std::fclose(f);
  }
  return ok;
}

}  // namespace sfcvis::trace
