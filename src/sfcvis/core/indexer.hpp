// The paper's runtime indexing facade (Sec. III-C): after one-time
// construction of static offset tables, the application calls
// getIndex(i, j, k) and receives the array-order or Z-order offset without
// knowing which layout is active.
//
// Equal-footing property: both orders are served by the *same* arithmetic —
// three table loads and two additions.
//
//  * array order: xtab[i] = i, ytab[j] = j*nx, ztab[k] = k*nx*ny
//    (the paper's yoffset/zoffset tables, plus an identity x table);
//  * Z order:     per-axis pre-interleaved bit patterns, whose bit sets are
//    disjoint, so addition is exactly bitwise OR.
//
// The measured cost of index computation is therefore identical for the two
// layouts, and any performance difference is attributable to memory layout
// alone — the paper's central methodological requirement.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sfcvis/core/extents.hpp"
#include "sfcvis/core/zorder_tables.hpp"

namespace sfcvis::core {

/// Which in-memory order an Indexer (or a bench configuration) uses.
enum class Order : std::uint8_t {
  kArray,  ///< row-major ("a-order" in the paper's figures)
  kZ,      ///< Z-order / Morton ("z-order")
};

/// Human-readable name matching the paper's figure labels.
[[nodiscard]] constexpr std::string_view to_string(Order o) noexcept {
  return o == Order::kArray ? "a-order" : "z-order";
}

/// Runtime-selected array-/Z-order indexer with precomputed tables.
class Indexer {
 public:
  Indexer() = default;

  /// Builds the static tables for `order` over `extents`. O(nx+ny+nz) space.
  Indexer(Order order, const Extents3D& extents);

  /// The linear offset of (i, j, k): three loads and two adds regardless of
  /// the active order. Precondition: (i, j, k) inside extents().
  [[nodiscard]] std::size_t getIndex(std::uint32_t i, std::uint32_t j,
                                     std::uint32_t k) const noexcept {
    return xtab_[i] + ytab_[j] + ztab_[k];
  }

  [[nodiscard]] Order order() const noexcept { return order_; }
  [[nodiscard]] const Extents3D& extents() const noexcept { return extents_; }

  /// Buffer size the indexed data must have (padded for Z-order).
  [[nodiscard]] std::size_t required_capacity() const noexcept { return capacity_; }

 private:
  Order order_ = Order::kArray;
  Extents3D extents_{};
  std::size_t capacity_ = 0;
  std::vector<std::size_t> xtab_, ytab_, ztab_;
};

}  // namespace sfcvis::core
