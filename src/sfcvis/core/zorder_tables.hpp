// Per-axis Z-order index tables after Pascucci & Frank (2001), the scheme
// the paper adopts in Sec. III-C: one table per axis whose i-th entry holds
// the bits of coordinate i already deposited at their interleaved positions,
// so a full 3D index is three loads combined with two ORs (or, because the
// deposited bit sets are disjoint, two ADDs).
//
// For anisotropic extents the generator interleaves bit-planes only while
// every axis still has bits left at that level and then concatenates the
// surplus high bits, so the index space is exactly the padded volume
// px*py*pz rather than the cube of the largest axis.
#pragma once

#include <cstdint>
#include <vector>

#include "sfcvis/core/extents.hpp"

namespace sfcvis::core {

/// Integer coordinate triple recovered from a Z-order index.
struct Coord3D {
  std::uint32_t i = 0, j = 0, k = 0;
  friend constexpr bool operator==(const Coord3D&, const Coord3D&) = default;
};

/// Precomputed per-axis deposit tables for one padded extent.
class ZOrderTables {
 public:
  ZOrderTables() = default;

  /// Builds tables for `logical` extents; the addressable space is the
  /// power-of-two padding of each axis. Throws on invalid extents.
  explicit ZOrderTables(const Extents3D& logical);

  /// Combined Z-order index of (i, j, k). Precondition: coordinates are
  /// inside the padded extents. The three per-axis patterns are disjoint,
  /// so addition and bitwise OR are interchangeable here.
  [[nodiscard]] std::size_t index(std::uint32_t i, std::uint32_t j,
                                  std::uint32_t k) const noexcept {
    return static_cast<std::size_t>(xtab_[i] + ytab_[j] + ztab_[k]);
  }

  /// Padded (power-of-two per axis) extents.
  [[nodiscard]] const Extents3D& padded() const noexcept { return padded_; }

  /// Total addressable index-space size: padded().size().
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Inverse mapping: recovers (i, j, k) from a Z-order index.
  [[nodiscard]] Coord3D decode(std::size_t index) const noexcept;

  /// Deposited bit pattern of coordinate `c` on `axis` (0 = x): the
  /// per-axis summand of index(). Exposed so row walks along one axis can
  /// hold the other two axes' contribution fixed and step a single table —
  /// one load + one add per voxel instead of a full index() (and the basis
  /// of contiguous-run detection in core/gather.hpp).
  [[nodiscard]] std::uint64_t axis_entry(unsigned axis, std::uint32_t c) const noexcept {
    const std::vector<std::uint64_t>& tab = axis == 0 ? xtab_ : axis == 1 ? ytab_ : ztab_;
    return tab[c];
  }

  /// Bit position assigned to bit-plane `bit` of axis `axis` (0 = x).
  /// Exposed for tests and the layout-visualization tools.
  [[nodiscard]] unsigned bit_position(unsigned axis, unsigned bit) const noexcept {
    return bitpos_[axis][bit];
  }

  /// Number of index bits consumed by `axis`.
  [[nodiscard]] unsigned axis_bits(unsigned axis) const noexcept { return bits_[axis]; }

 private:
  Extents3D padded_{};
  std::size_t capacity_ = 0;
  std::vector<std::uint64_t> xtab_, ytab_, ztab_;
  unsigned bits_[3] = {0, 0, 0};
  unsigned bitpos_[3][22] = {};
};

}  // namespace sfcvis::core
