#include "sfcvis/core/hilbert.hpp"

namespace sfcvis::core {
namespace {

// Skilling's algorithm works on the "transposed" representation: the Hilbert
// index's bits distributed across the n coordinates, one bit-plane at a time.

/// Converts axes values into transposed Hilbert form, in place.
void axes_to_transpose(std::uint32_t (&x)[3], unsigned bits) noexcept {
  const std::uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (unsigned i = 0; i < 3; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (unsigned i = 1; i < 3; ++i) {
    x[i] ^= x[i - 1];
  }
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[2] & q) {
      t ^= q - 1;
    }
  }
  for (unsigned i = 0; i < 3; ++i) {
    x[i] ^= t;
  }
}

/// Converts transposed Hilbert form back into axes values, in place.
void transpose_to_axes(std::uint32_t (&x)[3], unsigned bits) noexcept {
  const std::uint32_t n = 1u << bits;
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[2] >> 1;
  for (unsigned i = 2; i > 0; --i) {
    x[i] ^= x[i - 1];
  }
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != n; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (unsigned i = 3; i-- > 0;) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t t2 = (x[0] ^ x[i]) & p;
        x[0] ^= t2;
        x[i] ^= t2;
      }
    }
  }
}

}  // namespace

std::uint64_t hilbert_encode_3d(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                                unsigned bits) noexcept {
  if (bits == 0) {
    return 0;
  }
  std::uint32_t t[3] = {x, y, z};
  axes_to_transpose(t, bits);
  // The transposed form interleaves with axis 0 most significant per plane.
  std::uint64_t h = 0;
  for (unsigned plane = bits; plane-- > 0;) {
    for (unsigned axis = 0; axis < 3; ++axis) {
      h = (h << 1) | ((t[axis] >> plane) & 1u);
    }
  }
  return h;
}

Coord3D hilbert_decode_3d(std::uint64_t h, unsigned bits) noexcept {
  if (bits == 0) {
    return {};
  }
  std::uint32_t t[3] = {0, 0, 0};
  // Bit for (plane, axis) sits at position 3*plane + (2 - axis) of h.
  for (unsigned plane = 0; plane < bits; ++plane) {
    for (unsigned axis = 0; axis < 3; ++axis) {
      t[axis] |= static_cast<std::uint32_t>((h >> (3 * plane + (2 - axis))) & 1u) << plane;
    }
  }
  transpose_to_axes(t, bits);
  return Coord3D{t[0], t[1], t[2]};
}

}  // namespace sfcvis::core
