// BrickedVolume: the out-of-core AnyVolume backend.
//
// A bricked volume is an SFCBRK01 brick file (core/brick_file.hpp) opened
// read-only. Bricks live on disk in ascending brick-grid Morton order;
// reads go through either
//
//  * an mmap of the whole file (cache_bytes == 0, the default): the OS
//    page cache is the brick cache, every access is lock-free; or
//  * a streamed LRU brick cache of a configurable byte budget: bricks are
//    pread into a fixed slot arena, pinned while a view holds them, and
//    evicted least-recently-used. An optional prefetch thread loads the
//    next bricks along the file's curve order behind every demand miss.
//
// Degrade-don't-fail throughout, mirroring AllocReport / perfmon::
// OpenFailure: an mmap refusal falls back to streaming with the reason
// recorded, a budget below one brick still runs (one slot + a recorded
// degrade message), an IO error mid-stream yields a zeroed brick and a
// sticky io_error string — never a crash. Only a structurally corrupt
// file (bad magic/size) throws, at open(), with the path and the defect.
//
// Stencil and gather paths that cross brick boundaries locate the
// neighbouring brick with the constant-amortized masked ripple-add SFC
// steps of core/morton.hpp (Holzmüller, arXiv:1710.06384) applied to the
// *brick-grid* Morton code — one add per hop instead of a decode +
// re-encode of the full coordinate.
//
// BrickedVolume is NOT a Layout3D grid: it has no layout() and no single
// contiguous data() storage. It opts into the VolumeBackend concept, and
// kernels reach it through make_read_view / make_traced_view / gather_row
// overloads defined here.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sfcvis/core/align.hpp"
#include "sfcvis/core/brick_file.hpp"
#include "sfcvis/core/gather.hpp"
#include "sfcvis/core/morton.hpp"
#include "sfcvis/core/traced_view.hpp"

namespace sfcvis::core {

/// Open-time knobs for BrickedVolume::open.
struct BrickOpenOptions {
  /// Brick-cache budget in bytes. 0 = mmap the whole file (stream fallback
  /// with a recorded reason when the OS refuses); > 0 = streamed LRU cache
  /// of floor(cache_bytes / brick_bytes) slots, minimum one slot (a budget
  /// below one brick degrades to one slot with a recorded message).
  std::size_t cache_bytes = 0;
  /// Bricks to prefetch ahead (in file curve order) behind each demand
  /// miss, on a background thread. 0 = no prefetch thread. Stream mode
  /// only; under mmap the OS readahead plays this role.
  std::uint32_t prefetch_depth = 0;
  /// Skip the mmap attempt even when cache_bytes == 0 (fault-injection
  /// tests and IO-path benchmarks use this).
  bool force_stream = false;
};

/// Brick-cache observability snapshot (see BrickedVolume::cache_report).
/// Counters follow the degrade-don't-fail idiom: io_error / degrade record
/// the first reason something fell back, and stay set.
struct BrickCacheReport {
  std::uint64_t hits = 0;             ///< demand acquires served resident
  std::uint64_t misses = 0;           ///< demand acquires that loaded from disk
  std::uint64_t evictions = 0;        ///< bricks displaced by LRU choice
  std::uint64_t overflow_bricks = 0;  ///< loads outside the arena (all slots pinned)
  std::uint64_t prefetch_issued = 0;  ///< bricks loaded by the prefetch thread
  std::uint64_t prefetch_hits = 0;    ///< demand acquires served by a prefetch
  std::uint32_t slot_count = 0;       ///< arena slots (0 in mmap mode)
  bool mmapped = false;               ///< file is memory-mapped
  std::string io_error;               ///< first read failure, sticky ("" = none)
  std::string degrade;                ///< first budget/mmap fallback, sticky
  std::vector<std::uint64_t> eviction_log;  ///< evicted brick codes, oldest first (capped)
};

/// Read-only out-of-core volume over an SFCBRK01 brick file. Value
/// semantics via a shared immutable backend: copies share the file handle,
/// the brick cache, and the counters (exactly what AnyVolume's variant
/// copying wants — a copied volume is the same volume).
class BrickedVolume {
 public:
  using value_type = float;
  using is_volume_backend_tag = void;

  /// Slot id meaning "nothing to release" (mmap mode, empty gathers).
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  BrickedVolume() = default;

  /// Opens a packed brick file. Throws std::runtime_error for a missing or
  /// corrupt file (see read_brick_file_header); never throws for policy
  /// reasons — those degrade into cache_report().
  [[nodiscard]] static BrickedVolume open(const std::string& path,
                                          const BrickOpenOptions& opts = {});

  [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }

  // --- Grid3D-facade surface (what AnyVolume forwards) -------------------
  [[nodiscard]] const Extents3D& extents() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return extents().size(); }
  /// Resident float capacity: the arena (stream) or the whole payload
  /// (mmap) — what this backend can hold in memory, not the file size.
  [[nodiscard]] std::size_t capacity() const noexcept;
  /// Stable per-backend identity pointer (StructureCache owner key via the
  /// AnyVolume facade). NOT element storage: a bricked volume has no
  /// single contiguous buffer, so this points at a one-float sentinel.
  [[nodiscard]] float* data() noexcept;
  [[nodiscard]] const float* data() const noexcept;
  /// The open-time placement outcome (mmap fallback, degraded budget), in
  /// the same reported-fallback shape as grid allocations.
  [[nodiscard]] const AllocReport& alloc_report() const noexcept;

  /// Serial-convenience element access (spot checks, copy_from, the
  /// AnyVolume facade). Never fails: an IO error yields the recorded-error
  /// zero value. The returned reference is only guaranteed while the next
  /// few at() calls stay within the last 8 distinct bricks — kernels and
  /// anything concurrent must use a BrickedView (make_read_view), which
  /// pins bricks per worker. Writes through the non-const overload are
  /// writes into cache and are discarded; the backend is read-only.
  [[nodiscard]] float& at(std::uint32_t i, std::uint32_t j, std::uint32_t k) noexcept;
  [[nodiscard]] const float& at(std::uint32_t i, std::uint32_t j,
                                std::uint32_t k) const noexcept;
  [[nodiscard]] const float& at_clamped(std::int64_t i, std::int64_t j,
                                        std::int64_t k) const noexcept;

  /// Read-only backend: filling/copying into it is a reported logic error.
  /// (Compiled for every AnyVolume::visit lambda; throwing keeps the
  /// variant facade total without pretending writes work.)
  template <class Fn>
  void fill_from(Fn&&) {
    throw_read_only("fill_from");
  }
  template <class SrcT>
  void copy_from(const SrcT&) {
    throw_read_only("copy_from");
  }

  // --- bricked-specific surface ------------------------------------------
  [[nodiscard]] const BrickFileInfo& info() const noexcept;
  [[nodiscard]] bool mmapped() const noexcept;
  /// Snapshot of the cache counters + fallback reasons.
  [[nodiscard]] BrickCacheReport cache_report() const;
  /// Counter deltas since the previous drain (fallback strings and
  /// slot_count ride along unchanged; eviction_log is not drained). The
  /// metrics-registry publisher (exec::publish_brick_cache_metrics) uses
  /// this so repeated publishes never double-count.
  [[nodiscard]] BrickCacheReport drain_cache_deltas() const;

  // --- internal surface for views and gather_row -------------------------
  // (stable within the library; not part of the user-facing facade)

  /// A pinned (stream) or mapped (mmap) resident brick.
  struct BrickRef {
    const float* data = nullptr;  ///< brick_elems() floats in inner-layout order
    std::uint32_t slot = kNoSlot; ///< pass to release_brick when done
    std::uint64_t rank = 0;       ///< position in file curve order (synthetic addrs)
  };

  /// Pins + returns the brick holding brick-grid Morton code `code`.
  /// Never fails: IO errors record themselves and return a zeroed brick.
  [[nodiscard]] BrickRef acquire_brick(std::uint64_t code) const noexcept;
  /// Releases a pin taken by acquire_brick (no-op for kNoSlot).
  void release_brick(std::uint32_t slot) const noexcept;
  /// The shared local-voxel -> inner-storage-offset LUT (edge^3 entries,
  /// entry [li + (lj << s) + (lk << 2s)]).
  [[nodiscard]] const std::uint32_t* inner_offsets() const noexcept;
  [[nodiscard]] unsigned edge_shift() const noexcept;
  /// Structure-cache salt: hash of brick edge + inner layout spelling, so
  /// cached macrocell grids never cross brick geometries.
  [[nodiscard]] std::uint64_t cache_salt() const noexcept;

 private:
  [[noreturn]] static void throw_read_only(const char* op);
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Per-worker read view over a BrickedVolume (the PlainView counterpart).
/// Keeps a small ring of pinned bricks and reaches neighbouring bricks by
/// constant-amortized SFC steps on the brick-grid code — consecutive
/// stencil taps almost never pay a full Morton encode. A view is cheap to
/// construct, must not outlive its volume, and must not be shared between
/// threads (each worker builds its own; the pins make the underlying
/// bricks safe against concurrent eviction).
class BrickedView {
 public:
  explicit BrickedView(const BrickedVolume& volume)
      : vol_(&volume),
        lut_(volume.inner_offsets()),
        extents_(volume.extents()),
        shift_(volume.edge_shift()),
        mask_((1u << volume.edge_shift()) - 1) {}
  /// Copying yields a fresh view over the same volume (pins are per-view).
  BrickedView(const BrickedView& other) : BrickedView(*other.vol_) {}
  BrickedView& operator=(const BrickedView& other) {
    if (this != &other) {
      reset();
      vol_ = other.vol_;
      lut_ = other.lut_;
      extents_ = other.extents_;
      shift_ = other.shift_;
      mask_ = other.mask_;
    }
    return *this;
  }
  ~BrickedView() { reset(); }

  [[nodiscard]] const Extents3D& extents() const noexcept { return extents_; }

  [[nodiscard]] const float& at(std::uint32_t i, std::uint32_t j,
                                std::uint32_t k) const noexcept {
    return *fetch(i, j, k, nullptr);
  }
  [[nodiscard]] const float& at_clamped(std::int64_t i, std::int64_t j,
                                        std::int64_t k) const noexcept {
    return *fetch(clamp_axis(i, extents_.nx), clamp_axis(j, extents_.ny),
                  clamp_axis(k, extents_.nz), nullptr);
  }

  /// Releases every pinned brick (also run by the destructor).
  void reset() noexcept {
    for (Entry& e : entries_) {
      if (e.valid) {
        vol_->release_brick(e.slot);
        e.valid = false;
      }
    }
    have_last_ = false;
  }

 protected:
  /// Resolves one voxel; when `synth` is non-null also yields the
  /// *synthetic* element index rank * edge^3 + inner_offset — a pure
  /// function of the file geometry, which the traced view turns into
  /// rebased byte addresses (bit-stable across runs and cache states).
  [[nodiscard]] const float* fetch(std::uint32_t i, std::uint32_t j, std::uint32_t k,
                                   std::uint64_t* synth) const noexcept {
    assert(extents_.contains(i, j, k));
    const std::uint32_t bi = i >> shift_;
    const std::uint32_t bj = j >> shift_;
    const std::uint32_t bk = k >> shift_;
    std::uint64_t code;
    if (have_last_) {
      // Constant-amortized SFC neighbour-finding on the brick grid: hop
      // from the previous brick's code with one masked ripple-add per
      // changed axis instead of re-encoding (bi, bj, bk).
      code = last_code_;
      const auto dx = static_cast<std::int32_t>(bi) - static_cast<std::int32_t>(last_bx_);
      const auto dy = static_cast<std::int32_t>(bj) - static_cast<std::int32_t>(last_by_);
      const auto dz = static_cast<std::int32_t>(bk) - static_cast<std::int32_t>(last_bz_);
      if (dx != 0) {
        code = morton_step_x(code, dx);
      }
      if (dy != 0) {
        code = morton_step_y(code, dy);
      }
      if (dz != 0) {
        code = morton_step_z(code, dz);
      }
    } else {
      code = morton_encode_3d(bi, bj, bk);
      have_last_ = true;
    }
    last_bx_ = bi;
    last_by_ = bj;
    last_bz_ = bk;
    last_code_ = code;

    const Entry* e = &entries_[cur_];
    if (!e->valid || e->code != code) {
      e = find_or_pin(code);
    }
    const std::size_t off =
        lut_[(i & mask_) + (static_cast<std::size_t>(j & mask_) << shift_) +
             (static_cast<std::size_t>(k & mask_) << (2 * shift_))];
    if (synth != nullptr) {
      *synth = e->rank * (std::size_t{1} << (3 * shift_)) + off;
    }
    return e->data + off;
  }

 private:
  struct Entry {
    std::uint64_t code = 0;
    const float* data = nullptr;
    std::uint32_t slot = BrickedVolume::kNoSlot;
    std::uint64_t rank = 0;
    bool valid = false;
  };
  static constexpr unsigned kEntries = 8;  ///< covers a 2x2x2 brick stencil corner

  [[nodiscard]] const Entry* find_or_pin(std::uint64_t code) const noexcept {
    for (unsigned n = 0; n < kEntries; ++n) {
      if (entries_[n].valid && entries_[n].code == code) {
        cur_ = n;
        return &entries_[n];
      }
    }
    rr_ = (rr_ + 1) % kEntries;
    Entry& e = entries_[rr_];
    if (e.valid) {
      vol_->release_brick(e.slot);
    }
    const BrickedVolume::BrickRef ref = vol_->acquire_brick(code);
    e = Entry{code, ref.data, ref.slot, ref.rank, true};
    cur_ = rr_;
    return &e;
  }

  static std::uint32_t clamp_axis(std::int64_t v, std::uint32_t n) noexcept {
    const std::int64_t hi = static_cast<std::int64_t>(n) - 1;
    return static_cast<std::uint32_t>(v < 0 ? 0 : (v > hi ? hi : v));
  }

  const BrickedVolume* vol_;
  const std::uint32_t* lut_;
  Extents3D extents_;
  unsigned shift_;
  std::uint32_t mask_;
  mutable Entry entries_[kEntries]{};
  mutable unsigned cur_ = 0;
  mutable unsigned rr_ = 0;
  mutable std::uint32_t last_bx_ = 0, last_by_ = 0, last_bz_ = 0;
  mutable std::uint64_t last_code_ = 0;
  mutable bool have_last_ = false;
};

/// Traced counterpart of BrickedView: reports each element read to the
/// AccessSink at kTracedBase + synthetic element index * sizeof(float),
/// where the synthetic index is the element's position in the *file's*
/// layout (brick rank x brick size + inner offset). Like TracedView's
/// rebasing, this makes modeled counters a pure function of (file
/// geometry, kernel) — independent of cache state, heap, or machine.
template <AccessSink SinkT>
class BrickedTracedView : private BrickedView {
 public:
  static constexpr std::uint64_t kTracedBase = 1ull << 30;

  BrickedTracedView(const BrickedVolume& volume, SinkT& sink)
      : BrickedView(volume), sink_(&sink) {}

  using BrickedView::extents;

  [[nodiscard]] const float& at(std::uint32_t i, std::uint32_t j,
                                std::uint32_t k) const {
    std::uint64_t synth = 0;
    const float* p = fetch(i, j, k, &synth);
    sink_->access(kTracedBase + synth * sizeof(float), sizeof(float));
    return *p;
  }
  [[nodiscard]] const float& at_clamped(std::int64_t i, std::int64_t j,
                                        std::int64_t k) const {
    const auto& e = extents();
    const auto ci = clamp_to(i, e.nx);
    const auto cj = clamp_to(j, e.ny);
    const auto ck = clamp_to(k, e.nz);
    return at(ci, cj, ck);
  }

  [[nodiscard]] SinkT& sink() const noexcept { return *sink_; }

 private:
  static std::uint32_t clamp_to(std::int64_t v, std::uint32_t n) noexcept {
    const std::int64_t hi = static_cast<std::int64_t>(n) - 1;
    return static_cast<std::uint32_t>(v < 0 ? 0 : (v > hi ? hi : v));
  }
  SinkT* sink_;
};

// ---------------------------------------------------------------------------
// Backend customization points (see core/traced_view.hpp for the grid ones)
// ---------------------------------------------------------------------------

[[nodiscard]] inline BrickedView make_read_view(const BrickedVolume& volume) {
  return BrickedView(volume);
}

template <AccessSink SinkT>
[[nodiscard]] inline BrickedTracedView<SinkT> make_traced_view(const BrickedVolume& volume,
                                                               SinkT& sink) {
  return BrickedTracedView<SinkT>(volume, sink);
}

[[nodiscard]] inline std::uint64_t volume_cache_salt(const BrickedVolume& volume) {
  return volume.cache_salt();
}

/// Bricked row gather: walks the row brick segment by brick segment,
/// hopping to the next brick along the axis with one SFC increment of the
/// brick-grid code (never a re-encode), and flushes maximal contiguous
/// inner-offset runs with the shared copy_run — so the sliding-window
/// kernels keep their dense-scratch fast path out-of-core.
inline void gather_row(const BrickedVolume& g, Axis3 axis, std::uint32_t i,
                       std::uint32_t j, std::uint32_t k, std::uint32_t n, float* out,
                       GatherRunStats* rs = nullptr) {
  if (n == 0) {
    return;
  }
  const unsigned s = g.edge_shift();
  const std::uint32_t edge = 1u << s;
  const std::uint32_t mask = edge - 1;
  const std::uint32_t* lut = g.inner_offsets();
  std::uint32_t ci = i, cj = j, ck = k;
  std::uint32_t* walk = axis == Axis3::kX ? &ci : axis == Axis3::kY ? &cj : &ck;
  const std::size_t lstride = axis == Axis3::kX
                                  ? std::size_t{1}
                                  : axis == Axis3::kY ? std::size_t{edge}
                                                      : std::size_t{edge} * edge;
  std::uint64_t code = morton_encode_3d(ci >> s, cj >> s, ck >> s);
  std::uint32_t done = 0;
  while (done < n) {
    const BrickedVolume::BrickRef ref = g.acquire_brick(code);
    const std::uint32_t local = *walk & mask;
    const std::uint32_t seg = std::min(n - done, edge - local);
    const std::size_t lbase = (ci & mask) + (static_cast<std::size_t>(cj & mask) << s) +
                              (static_cast<std::size_t>(ck & mask) << (2 * s));
    std::uint32_t l = 0;
    while (l < seg) {
      const std::uint32_t begin = lut[lbase + l * lstride];
      std::uint32_t run = 1;
      while (l + run < seg && lut[lbase + (l + run) * lstride] == begin + run) {
        ++run;
      }
      detail::copy_run(ref.data + begin, out + done + l, run);
      if (rs != nullptr) {
        rs->note(run);
      }
      l += run;
    }
    g.release_brick(ref.slot);
    done += seg;
    *walk += seg;
    if (done < n) {
      // SFC hop to the next brick along the axis.
      code = axis == Axis3::kX ? morton_inc_x(code)
                               : axis == Axis3::kY ? morton_inc_y(code) : morton_inc_z(code);
    }
  }
}

}  // namespace sfcvis::core
