// Read views over a Grid3D.
//
// Kernels (bilateral filter, raycaster) are templated on a *view* type so a
// single kernel implementation serves both production runs and
// counter-collection runs:
//
//  * PlainView      — zero-overhead forwarding; what benchmarks time.
//  * TracedView     — additionally reports every element read, as a byte
//                     address, to a memory-model sink (memsim::* or any
//                     type with `void access(std::uint64_t addr,
//                     std::uint32_t bytes)`). This is how the library
//                     stands in for PAPI hardware counters.
//
// Views are read-only: layout effects the paper measures come from reads of
// the source volume; kernel outputs are written once, streaming, to an
// array-order buffer in both configurations.
#pragma once

#include <concepts>
#include <cstdint>
#include <utility>

#include "sfcvis/core/gmorton.hpp"
#include "sfcvis/core/grid.hpp"

namespace sfcvis::core {

/// Any type usable as a volume backend by the kernels: opts in via the
/// member tag (Grid3D for in-core storage, BrickedVolume for out-of-core
/// brick files). Kernels templated on a VolumeBackend obtain their read
/// view through make_read_view / make_traced_view below instead of naming
/// PlainView/TracedView directly — the factories are overloaded per
/// backend, so one kernel body serves both worlds. The tag (rather than a
/// structural requires-clause) keeps AnyVolume itself, which forwards much
/// of the same surface, from ever matching.
template <class V>
concept VolumeBackend = requires { typename V::is_volume_backend_tag; };

/// A sink consuming the byte-level read trace of a kernel.
template <class S>
concept AccessSink = requires(S sink, std::uint64_t addr, std::uint32_t bytes) {
  sink.access(addr, bytes);
};

/// Provides one AccessSink per simulated thread of a traced replay. The
/// traced kernel drivers (bilateral_traced, raycast_traced, ...) are
/// templated on this instead of naming a concrete consumer, so the same
/// deterministic replay feeds either the modeled cache hierarchy
/// (memsim::Hierarchy) or the reuse-distance profiler
/// (locality::LocalityProfiler). Sinks returned by sink() are cheap value
/// types bound to the provider; the replay itself stays single-threaded,
/// so providers need no internal synchronization.
template <class P>
concept SinkProvider = requires(P provider, unsigned tid) {
  { provider.num_threads() } -> std::convertible_to<unsigned>;
  { provider.sink(tid) };
} && AccessSink<decltype(std::declval<P&>().sink(0u))>;

/// Zero-overhead read view; simply forwards to the grid.
template <class T, Layout3D LayoutT>
class PlainView {
 public:
  explicit PlainView(const Grid3D<T, LayoutT>& grid) : grid_(&grid) {}

  [[nodiscard]] const T& at(std::uint32_t i, std::uint32_t j, std::uint32_t k) const noexcept {
    return grid_->at(i, j, k);
  }
  [[nodiscard]] const T& at_clamped(std::int64_t i, std::int64_t j,
                                    std::int64_t k) const noexcept {
    return grid_->at_clamped(i, j, k);
  }
  [[nodiscard]] const Extents3D& extents() const noexcept { return grid_->extents(); }

 private:
  const Grid3D<T, LayoutT>* grid_;
};

/// Read view that reports every element access to an AccessSink, as a byte
/// address rebased to a fixed synthetic origin: the reported address is
/// kTracedBase plus the element's byte offset inside the grid's storage.
/// Offsets carry the layout's entire byte-level locality (that is what the
/// paper measures); discarding the allocation's real base makes the modeled
/// counters a pure function of (layout, kernel, platform) — bit-identical
/// across runs, machines, and heap states, which the perf gate and the
/// layout auto-tuner's fitness both rely on. Each traced kernel traces
/// exactly one grid per sink, so rebasing cannot alias two arrays.
template <class T, Layout3D LayoutT, AccessSink SinkT>
class TracedView {
 public:
  /// The synthetic base every trace starts at — aligned far beyond any page
  /// or cache-set stride, so the model sees a clean placement.
  static constexpr std::uint64_t kTracedBase = 1ull << 30;

  TracedView(const Grid3D<T, LayoutT>& grid, SinkT& sink)
      : grid_(&grid), sink_(&sink),
        base_(reinterpret_cast<std::uint64_t>(grid.data())) {}

  [[nodiscard]] const T& at(std::uint32_t i, std::uint32_t j, std::uint32_t k) const {
    const T& ref = grid_->at(i, j, k);
    sink_->access(kTracedBase + (reinterpret_cast<std::uint64_t>(&ref) - base_), sizeof(T));
    return ref;
  }
  [[nodiscard]] const T& at_clamped(std::int64_t i, std::int64_t j, std::int64_t k) const {
    const T& ref = grid_->at_clamped(i, j, k);
    sink_->access(kTracedBase + (reinterpret_cast<std::uint64_t>(&ref) - base_), sizeof(T));
    return ref;
  }
  [[nodiscard]] const Extents3D& extents() const noexcept { return grid_->extents(); }

  [[nodiscard]] SinkT& sink() const noexcept { return *sink_; }

 private:
  const Grid3D<T, LayoutT>* grid_;
  SinkT* sink_;
  std::uint64_t base_;
};

/// A read view usable by the kernels.
template <class V>
concept ReadView3D = requires(const V view, std::uint32_t c, std::int64_t s) {
  { view.at(c, c, c) };
  { view.at_clamped(s, s, s) };
  { view.extents() } -> std::convertible_to<Extents3D>;
};

// ---------------------------------------------------------------------------
// Backend view factories (customization points)
// ---------------------------------------------------------------------------
// Kernels write `const auto view = make_read_view(src);` against any
// VolumeBackend; core/bricked.hpp adds the BrickedVolume overloads.

/// Zero-overhead read view over an in-core grid.
template <class T, Layout3D LayoutT>
[[nodiscard]] inline PlainView<T, LayoutT> make_read_view(const Grid3D<T, LayoutT>& grid) {
  return PlainView<T, LayoutT>(grid);
}

/// Memsim-reporting read view over an in-core grid.
template <class T, Layout3D LayoutT, AccessSink SinkT>
[[nodiscard]] inline TracedView<T, LayoutT, SinkT> make_traced_view(
    const Grid3D<T, LayoutT>& grid, SinkT& sink) {
  return TracedView<T, LayoutT, SinkT>(grid, sink);
}

/// Structure-cache salt of a backend: cached derived structures (macrocell
/// grids) must not be reused across backends that place the same logical
/// data differently. Grids delegate to their layout's salt; BrickedVolume
/// (core/bricked.hpp) hashes its brick geometry.
template <class T, Layout3D LayoutT>
[[nodiscard]] inline std::uint64_t volume_cache_salt(const Grid3D<T, LayoutT>& grid) {
  return layout_cache_salt(grid.layout());
}

}  // namespace sfcvis::core
