// Dense row gathers: copy a 1D run of voxels along one axis into contiguous
// scratch storage.
//
// Stencil kernels that re-read the same neighbourhood many times (the
// bilateral filter's sliding window, filters/bilateral.hpp) amortize layout
// indexing by gathering each stencil plane once into dense scratch and then
// iterating the scratch with unit stride. The gather itself is the only
// place that pays layout cost, so it is specialized per layout:
//
//  * generic         — one layout.index() per element (tiled, Hilbert, …).
//  * ArrayOrderLayout— x rows are a single memcpy; y/z rows are fixed-stride
//                      walks (the stride is hoisted out of the loop).
//  * ZOrderLayout    — incremental Morton stepping (core/morton.hpp masked
//                      ripple-add; Holzmüller, arXiv:1710.06384) on cubic
//                      curves, per-axis table stepping on anisotropic ones.
//                      Either way the walk detects maximal contiguous index
//                      runs and flushes each with one memcpy, so a row load
//                      becomes a handful of run copies instead of per-voxel
//                      table lookups (the same contiguity zorder_blocks_
//                      contiguous exploits at block granularity).
//
// Precondition for all overloads: the whole row [start, start + n) lies
// inside the grid's logical extents.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>

#include "sfcvis/core/gmorton.hpp"
#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/morton.hpp"

namespace sfcvis::core {

/// Axis selector for row-oriented operations on 3D grids.
enum class Axis3 : std::uint8_t { kX, kY, kZ };

/// Contiguous-run statistics of gather_row calls: how long the memcpy-able
/// index runs actually are per layout — the micro-level contiguity signal
/// behind the paper's data-movement argument. Plain accumulator (no trace
/// dependency; core stays leaf): callers merge it into the trace metrics
/// registry (filters do, under "bilateral.gather_run_len").
struct GatherRunStats {
  static constexpr unsigned kBuckets = 16;
  std::uint64_t runs = 0;
  std::uint64_t elements = 0;
  std::uint64_t min_run = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_run = 0;
  std::array<std::uint64_t, kBuckets> len_log2{};  ///< [i]: runs in [2^i, 2^(i+1))

  void note(std::uint64_t run) noexcept { note_runs(1, run); }

  /// Records `count` runs of identical length `len` at once (the strided
  /// paths produce exactly that shape without iterating).
  void note_runs(std::uint64_t count, std::uint64_t len) noexcept {
    runs += count;
    elements += count * len;
    min_run = len < min_run ? len : min_run;
    max_run = len > max_run ? len : max_run;
    const unsigned b = len == 0 ? 0 : static_cast<unsigned>(std::bit_width(len)) - 1;
    len_log2[b < kBuckets ? b : kBuckets - 1] += count;
  }
};

namespace detail {

/// Copies a contiguous run into `out`. Morton runs are usually short (the
/// x-axis pairs elements two by two), where a variable-size memcpy is all
/// call overhead — copy short runs element-wise, long runs in bulk.
template <class T>
inline void copy_run(const T* src, T* out, std::uint32_t run) {
  if (run <= 8) {
    for (std::uint32_t c = 0; c < run; ++c) {
      out[c] = src[c];
    }
    return;
  }
  std::memcpy(out, src, run * sizeof(T));
}

/// Walks `n` voxels from Morton index `m`, advancing with `step`, and
/// flushes every maximal contiguous index run with one copy.
template <class T, class StepFn>
void gather_morton_runs(const T* data, std::uint64_t m, std::uint32_t n, T* out,
                        StepFn step, GatherRunStats* rs) {
  std::uint32_t l = 0;
  while (l < n) {
    const std::uint64_t run_begin = m;
    std::uint32_t run = 1;
    while (l + run < n) {
      m = step(m);  // index of element l + run
      if (m != run_begin + run) {
        break;
      }
      ++run;
    }
    copy_run(data + run_begin, out + l, run);
    if (rs != nullptr) {
      rs->note(run);
    }
    l += run;
  }
}

}  // namespace detail

/// Generic gather: one layout.index() per element. Works for every layout.
/// Run stats (optional trailing `rs` on every overload) account what is
/// memcpy-able: this path exploits no contiguity, so n runs of 1.
template <class T, Layout3D L>
void gather_row(const Grid3D<T, L>& g, Axis3 axis, std::uint32_t i, std::uint32_t j,
                std::uint32_t k, std::uint32_t n, T* out, GatherRunStats* rs = nullptr) {
  const L& layout = g.layout();
  const T* data = g.data();
  switch (axis) {
    case Axis3::kX:
      for (std::uint32_t l = 0; l < n; ++l) {
        out[l] = data[layout.index(i + l, j, k)];
      }
      break;
    case Axis3::kY:
      for (std::uint32_t l = 0; l < n; ++l) {
        out[l] = data[layout.index(i, j + l, k)];
      }
      break;
    case Axis3::kZ:
      for (std::uint32_t l = 0; l < n; ++l) {
        out[l] = data[layout.index(i, j, k + l)];
      }
      break;
  }
  if (rs != nullptr && n > 0) {
    rs->note_runs(n, 1);
  }
}

/// Array-order gather: x rows are one memcpy, y/z rows one hoisted stride.
template <class T>
void gather_row(const Grid3D<T, ArrayOrderLayout>& g, Axis3 axis, std::uint32_t i,
                std::uint32_t j, std::uint32_t k, std::uint32_t n, T* out,
                GatherRunStats* rs = nullptr) {
  const auto& e = g.extents();
  const T* base = g.data() + g.layout().index(i, j, k);
  if (axis == Axis3::kX) {
    std::memcpy(out, base, n * sizeof(T));
    if (rs != nullptr && n > 0) {
      rs->note(n);
    }
    return;
  }
  const std::size_t stride =
      axis == Axis3::kY ? e.nx : static_cast<std::size_t>(e.nx) * e.ny;
  for (std::uint32_t l = 0; l < n; ++l) {
    out[l] = base[l * stride];
  }
  if (rs != nullptr && n > 0) {
    rs->note_runs(n, 1);
  }
}

/// Z-order gather: incremental Morton/table stepping with contiguous-run
/// memcpy. On the (common) cubic padded curve the per-voxel step is pure
/// bit arithmetic; anisotropic curves step the per-axis deposit table.
template <class T>
void gather_row(const Grid3D<T, ZOrderLayout>& g, Axis3 axis, std::uint32_t i,
                std::uint32_t j, std::uint32_t k, std::uint32_t n, T* out,
                GatherRunStats* rs = nullptr) {
  const ZOrderTables& tables = g.layout().tables();
  const T* data = g.data();
  const Extents3D& padded = tables.padded();
  if (padded.nx == padded.ny && padded.ny == padded.nz) {
    // Cubic padded curve == plain Morton: O(1) neighbour steps, no loads.
    const std::uint64_t m = morton_encode_3d(i, j, k);
    switch (axis) {
      case Axis3::kX:
        detail::gather_morton_runs(
            data, m, n, out, [](std::uint64_t z) { return morton_inc_x(z); }, rs);
        return;
      case Axis3::kY:
        detail::gather_morton_runs(
            data, m, n, out, [](std::uint64_t z) { return morton_inc_y(z); }, rs);
        return;
      case Axis3::kZ:
        detail::gather_morton_runs(
            data, m, n, out, [](std::uint64_t z) { return morton_inc_z(z); }, rs);
        return;
    }
  }
  // Anisotropic table curve: fix the two off-axis summands, step one table.
  const auto ax = static_cast<unsigned>(axis);
  const std::uint32_t c0 = axis == Axis3::kX ? i : axis == Axis3::kY ? j : k;
  const std::uint64_t base = tables.index(i, j, k) - tables.axis_entry(ax, c0);
  std::uint32_t l = 0;
  while (l < n) {
    const std::uint64_t begin = base + tables.axis_entry(ax, c0 + l);
    std::uint32_t run = 1;
    while (l + run < n &&
           tables.axis_entry(ax, c0 + l + run) == tables.axis_entry(ax, c0 + l) + run) {
      ++run;
    }
    detail::copy_run(data + begin, out + l, run);
    if (rs != nullptr) {
      rs->note(run);
    }
    l += run;
  }
}

/// Generalized-Morton gather: the masked ripple-add neighbour step works
/// for every interleave pattern (each axis's bit-planes sit in increasing
/// output position), so any family member gets the same incremental
/// run-detecting walk as the canonical Z curve — no per-voxel table loads.
template <class T>
void gather_row(const Grid3D<T, GeneralizedMortonLayout>& g, Axis3 axis, std::uint32_t i,
                std::uint32_t j, std::uint32_t k, std::uint32_t n, T* out,
                GatherRunStats* rs = nullptr) {
  const GMortonTables& tables = g.layout().tables();
  const T* data = g.data();
  const std::uint64_t m = tables.index(i, j, k);
  const auto ax = static_cast<unsigned>(axis);
  detail::gather_morton_runs(
      data, m, n, out, [&tables, ax](std::uint64_t z) { return tables.inc_axis(z, ax); },
      rs);
}

}  // namespace sfcvis::core
