#include "sfcvis/core/indexer.hpp"

namespace sfcvis::core {

Indexer::Indexer(Order order, const Extents3D& extents)
    : order_(order), extents_(extents) {
  validate_extents(extents);
  if (order == Order::kArray) {
    capacity_ = extents.size();
    xtab_.resize(extents.nx);
    ytab_.resize(extents.ny);
    ztab_.resize(extents.nz);
    for (std::uint32_t i = 0; i < extents.nx; ++i) {
      xtab_[i] = i;
    }
    for (std::uint32_t j = 0; j < extents.ny; ++j) {
      ytab_[j] = static_cast<std::size_t>(j) * extents.nx;
    }
    for (std::uint32_t k = 0; k < extents.nz; ++k) {
      ztab_[k] = static_cast<std::size_t>(k) * extents.nx * extents.ny;
    }
  } else {
    const ZOrderTables tables(extents);
    capacity_ = tables.capacity();
    xtab_.resize(extents.nx);
    ytab_.resize(extents.ny);
    ztab_.resize(extents.nz);
    for (std::uint32_t i = 0; i < extents.nx; ++i) {
      xtab_[i] = tables.index(i, 0, 0);
    }
    for (std::uint32_t j = 0; j < extents.ny; ++j) {
      ytab_[j] = tables.index(0, j, 0);
    }
    for (std::uint32_t k = 0; k < extents.nz; ++k) {
      ztab_[k] = tables.index(0, 0, k);
    }
  }
}

}  // namespace sfcvis::core
