// 3D Hilbert curve codec (Skilling's transposed-coordinate algorithm,
// "Programming the Hilbert curve", AIP Conf. Proc. 707, 2004).
//
// Included as the SFC baseline the paper's related work compares against
// (Reissmann et al. 2014 found Hilbert's locality gains are offset by its
// higher indexing cost; bench/abl_layout_compare reproduces that trade-off).
#pragma once

#include <cstdint>

#include "sfcvis/core/zorder_tables.hpp"  // Coord3D

namespace sfcvis::core {

/// Encodes (x, y, z) on a 2^bits cube into a Hilbert index.
/// Precondition: each coordinate < 2^bits, bits <= 21.
[[nodiscard]] std::uint64_t hilbert_encode_3d(std::uint32_t x, std::uint32_t y,
                                              std::uint32_t z, unsigned bits) noexcept;

/// Decodes a Hilbert index on a 2^bits cube back to coordinates.
[[nodiscard]] Coord3D hilbert_decode_3d(std::uint64_t h, unsigned bits) noexcept;

}  // namespace sfcvis::core
