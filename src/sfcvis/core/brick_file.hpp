// SFCBRK01: the on-disk brick-file format behind core::BrickedVolume.
//
// A brick file is a volume cut into cubic pow2-edge bricks, the bricks
// ordered on disk by the Morton code of their brick-grid coordinate (so a
// Z-order traversal of the volume reads the file forward), and each brick
// stored internally in any in-core LayoutKind — including a generalized-
// Morton interleave pattern. Edge bricks are zero-padded to the full brick
// shape; the logical extents in the header say where data ends.
//
// Layout (little-endian, offsets in bytes):
//   [ 0,  8)  magic "SFCBRK01"
//   [ 8, 12)  u32 version (currently 1)
//   [12, 16)  u32 nx   --+
//   [16, 20)  u32 ny     +-- logical volume extents
//   [20, 24)  u32 nz   --+
//   [24, 28)  u32 brick_edge          (power of two, 2..64)
//   [28, 32)  u32 inner LayoutKind    (in-core kinds only, 0..4)
//   [32, 36)  u32 inner tile edge     (tiled bricks; clamped to brick_edge)
//   [36, 40)  u32 interleave length   (gmorton bricks; 0 = canonical)
//   [40, 48)  u64 brick count
//   [48, ..)  interleave pattern chars, then zero padding to a 64-byte
//             boundary (payload_offset)
//   payload:  brick_count bricks, ascending brick-grid Morton code, each
//             brick_edge^3 floats in the inner layout's index order.
//
// Every validation failure (bad magic, impossible field, file size not
// matching the header's promise) throws std::runtime_error naming the path
// and the reason — a corrupt file is a reported error, never UB.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sfcvis/core/extents.hpp"
#include "sfcvis/core/layout_kind.hpp"

namespace sfcvis::core {

class AnyVolume;  // volume.hpp; brick_file.cpp sees the full type

/// Parsed + validated SFCBRK01 header, plus derived brick-grid geometry.
struct BrickFileInfo {
  Extents3D extents{};                          ///< logical volume extents
  std::uint32_t brick_edge = 0;                 ///< cubic brick edge (pow2)
  LayoutKind inner_kind = LayoutKind::kZOrder;  ///< layout inside each brick
  std::uint32_t inner_tile = 0;                 ///< tile edge for tiled bricks
  std::string interleave;                       ///< gmorton pattern; empty = canonical
  std::uint64_t brick_count = 0;                ///< bricks in the payload
  std::uint64_t payload_offset = 0;             ///< first brick's byte offset

  /// Brick-grid extents: ceil(extents / brick_edge) per axis.
  [[nodiscard]] Extents3D brick_grid() const noexcept {
    return Extents3D{(extents.nx + brick_edge - 1) / brick_edge,
                     (extents.ny + brick_edge - 1) / brick_edge,
                     (extents.nz + brick_edge - 1) / brick_edge};
  }
  [[nodiscard]] std::size_t brick_elems() const noexcept {
    return static_cast<std::size_t>(brick_edge) * brick_edge * brick_edge;
  }
  [[nodiscard]] std::size_t brick_bytes() const noexcept {
    return brick_elems() * sizeof(float);
  }
  /// Exact file size the header promises; open() rejects any other.
  [[nodiscard]] std::uint64_t expected_file_size() const noexcept {
    return payload_offset + brick_count * brick_bytes();
  }
};

/// Packing knobs for pack_brick_file.
struct BrickPackOptions {
  std::uint32_t brick_edge = 16;                ///< pow2, 2..64
  LayoutKind inner_kind = LayoutKind::kZOrder;  ///< in-core kinds only
  std::uint32_t inner_tile = 8;                 ///< tiled bricks (clamped to edge)
  std::string interleave;                       ///< gmorton pattern; empty = canonical
};

/// Writes `src` to `path` as an SFCBRK01 brick file and returns the header
/// that was written. Throws std::runtime_error on IO failure and
/// std::invalid_argument on impossible options (non-pow2 edge, kBricked as
/// the inner kind, an interleave that does not cover the brick cube).
BrickFileInfo pack_brick_file(const std::string& path, const AnyVolume& src,
                              const BrickPackOptions& opts = {});

/// Reads + validates the header of an existing brick file, including the
/// exact-file-size check (a truncated or padded file is rejected here, so
/// later pread/mmap accesses can never run off the end). Throws
/// std::runtime_error naming the path and the defect.
BrickFileInfo read_brick_file_header(const std::string& path);

namespace detail {

/// Offset LUT for one brick: entry [li + (lj << s) + (lk << 2s)] (s =
/// log2(edge)) is the inner layout's storage index of local voxel
/// (li, lj, lk). One table serves every brick of a file; building it is
/// the only place the inner layout's index function runs, so brick access
/// is a single load regardless of inner kind. For a pow2 cube every
/// in-core layout's required_capacity is exactly edge^3 (asserted), so the
/// LUT is a permutation of [0, edge^3).
[[nodiscard]] std::vector<std::uint32_t> brick_inner_offsets(std::uint32_t edge,
                                                             LayoutKind inner_kind,
                                                             std::uint32_t inner_tile,
                                                             const std::string& interleave);

/// Ascending Morton codes of every brick-grid coordinate in `grid` —
/// the on-disk brick order. codes[rank] is the rank'th brick's code.
[[nodiscard]] std::vector<std::uint64_t> brick_codes(const Extents3D& grid);

}  // namespace detail

}  // namespace sfcvis::core
