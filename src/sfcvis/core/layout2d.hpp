// 2D memory-layout policies — the image-processing counterpart of
// layout.hpp. The bilateral filter was introduced for 2D images (Tomasi &
// Manduchi 1998) and the paper's Fig. 1 makes its alignment argument in
// 2D; this module lets the same study be run on images.
#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "sfcvis/core/extents.hpp"
#include "sfcvis/core/morton.hpp"

namespace sfcvis::core {

/// Logical size of a 2D image; x varies fastest in the array-order sense.
struct Extents2D {
  std::uint32_t nx = 0;
  std::uint32_t ny = 0;

  friend constexpr bool operator==(const Extents2D&, const Extents2D&) = default;

  [[nodiscard]] constexpr std::size_t size() const noexcept {
    return static_cast<std::size_t>(nx) * ny;
  }
  [[nodiscard]] constexpr bool contains(std::uint32_t i, std::uint32_t j) const noexcept {
    return i < nx && j < ny;
  }
  [[nodiscard]] static constexpr Extents2D square(std::uint32_t n) noexcept {
    return Extents2D{n, n};
  }
};

/// Throws std::invalid_argument on zero or over-large extents.
inline void validate_extents(const Extents2D& e) {
  if (e.nx == 0 || e.ny == 0) {
    throw std::invalid_argument("Extents2D: extents must be nonzero");
  }
  constexpr std::uint32_t kMax = 1u << 16;  // 2x16 bits fit one 32-bit code half
  if (e.nx > kMax || e.ny > kMax) {
    throw std::invalid_argument("Extents2D: extents above 2^16 are not supported");
  }
}

/// A 2D layout maps in-bounds (i, j) to a unique offset in
/// [0, required_capacity()).
template <class L>
concept Layout2D = requires(const L layout, std::uint32_t c) {
  { layout.index(c, c) } -> std::same_as<std::size_t>;
  { layout.extents() } -> std::convertible_to<Extents2D>;
  { layout.required_capacity() } -> std::same_as<std::size_t>;
  { L::name() } -> std::convertible_to<std::string_view>;
};

/// Row-major image layout: index = i + nx * j.
class ArrayOrderLayout2D {
 public:
  ArrayOrderLayout2D() = default;
  explicit ArrayOrderLayout2D(const Extents2D& e) : extents_(e) { validate_extents(e); }

  [[nodiscard]] std::size_t index(std::uint32_t i, std::uint32_t j) const noexcept {
    return i + static_cast<std::size_t>(extents_.nx) * j;
  }
  [[nodiscard]] const Extents2D& extents() const noexcept { return extents_; }
  [[nodiscard]] std::size_t required_capacity() const noexcept { return extents_.size(); }
  [[nodiscard]] static constexpr std::string_view name() noexcept { return "array-order"; }

 private:
  Extents2D extents_{};
};

/// Z-order image layout via per-axis tables (anisotropic-compact, exactly
/// as the 3D ZOrderTables: interleave bit-planes while both axes still
/// have them, then concatenate the surplus).
class ZOrderLayout2D {
 public:
  ZOrderLayout2D() = default;
  explicit ZOrderLayout2D(const Extents2D& e) : extents_(e) {
    validate_extents(e);
    const std::uint32_t px = next_pow2(e.nx);
    const std::uint32_t py = next_pow2(e.ny);
    capacity_ = static_cast<std::size_t>(px) * py;
    const unsigned bx = log2_pow2(px), by = log2_pow2(py);
    unsigned pos[2][17] = {};
    unsigned out = 0;
    for (unsigned plane = 0; plane < std::max(bx, by); ++plane) {
      if (plane < bx) {
        pos[0][plane] = out++;
      }
      if (plane < by) {
        pos[1][plane] = out++;
      }
    }
    auto tables = std::make_shared<Tables>();
    tables->x.resize(px);
    tables->y.resize(py);
    for (std::uint32_t v = 0; v < px; ++v) {
      std::uint64_t d = 0;
      for (unsigned plane = 0; plane < bx; ++plane) {
        if ((v >> plane) & 1u) {
          d |= std::uint64_t{1} << pos[0][plane];
        }
      }
      tables->x[v] = d;
    }
    for (std::uint32_t v = 0; v < py; ++v) {
      std::uint64_t d = 0;
      for (unsigned plane = 0; plane < by; ++plane) {
        if ((v >> plane) & 1u) {
          d |= std::uint64_t{1} << pos[1][plane];
        }
      }
      tables->y[v] = d;
    }
    tables_ = std::move(tables);
  }

  [[nodiscard]] std::size_t index(std::uint32_t i, std::uint32_t j) const noexcept {
    return static_cast<std::size_t>(tables_->x[i] + tables_->y[j]);
  }
  [[nodiscard]] const Extents2D& extents() const noexcept { return extents_; }
  [[nodiscard]] std::size_t required_capacity() const noexcept { return capacity_; }
  [[nodiscard]] static constexpr std::string_view name() noexcept { return "z-order"; }

 private:
  struct Tables {
    std::vector<std::uint64_t> x, y;
  };
  Extents2D extents_{};
  std::size_t capacity_ = 0;
  std::shared_ptr<const Tables> tables_;
};

/// Blocked image layout (bx * by power-of-two tiles, row-major tiles and
/// intra-tile order).
class TiledLayout2D {
 public:
  TiledLayout2D() = default;
  explicit TiledLayout2D(const Extents2D& e, std::uint32_t b = 8) : TiledLayout2D(e, b, b) {}
  TiledLayout2D(const Extents2D& e, std::uint32_t bx, std::uint32_t by)
      : extents_(e), bx_(bx), by_(by) {
    validate_extents(e);
    if (!std::has_single_bit(bx) || !std::has_single_bit(by)) {
      throw std::invalid_argument("TiledLayout2D: tile dims must be powers of two");
    }
    lbx_ = log2_pow2(bx);
    lby_ = log2_pow2(by);
    tiles_x_ = (e.nx + bx - 1) >> lbx_;
    tiles_y_ = (e.ny + by - 1) >> lby_;
  }

  [[nodiscard]] std::size_t index(std::uint32_t i, std::uint32_t j) const noexcept {
    const std::uint32_t ti = i >> lbx_, tj = j >> lby_;
    const std::uint32_t li = i & (bx_ - 1), lj = j & (by_ - 1);
    const std::size_t tile = ti + static_cast<std::size_t>(tiles_x_) * tj;
    return (tile << (lbx_ + lby_)) + li + (static_cast<std::size_t>(lj) << lbx_);
  }
  [[nodiscard]] const Extents2D& extents() const noexcept { return extents_; }
  [[nodiscard]] std::size_t required_capacity() const noexcept {
    return (static_cast<std::size_t>(tiles_x_) * tiles_y_) << (lbx_ + lby_);
  }
  [[nodiscard]] static constexpr std::string_view name() noexcept { return "tiled"; }

 private:
  Extents2D extents_{};
  std::uint32_t bx_ = 1, by_ = 1;
  unsigned lbx_ = 0, lby_ = 0;
  std::uint32_t tiles_x_ = 0, tiles_y_ = 0;
};

static_assert(Layout2D<ArrayOrderLayout2D>);
static_assert(Layout2D<ZOrderLayout2D>);
static_assert(Layout2D<TiledLayout2D>);

}  // namespace sfcvis::core
