// Cache-line constants, an aligned allocator, and the allocation policy
// grid storage is placed with.
//
// The policy layer exists because layout is only half of the memory story
// on multi-core platforms: at 512^3 a volume spans hundreds of megabytes,
// where TLB reach (transparent huge pages) and page placement (first-touch
// NUMA policy) both move the needle. Grid3D allocates through
// AlignedBuffer, which applies a MemoryPolicy and records what actually
// happened in an AllocReport — requesting huge pages on a kernel with THP
// disabled is a *reported* fallback, never an error, mirroring the
// perfmon::OpenFailure pattern.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>

#if defined(__linux__)
#include <cerrno>
#include <sys/mman.h>
#endif

namespace sfcvis::core {

/// Cache-line size assumed throughout the library (both paper platforms —
/// Ivy Bridge and KNC — use 64-byte lines, as does the memsim default).
inline constexpr std::size_t kCacheLineBytes = 64;

/// Transparent-huge-page size the policy aligns to (x86-64 / AArch64 2 MiB
/// PMD pages — the granularity madvise(MADV_HUGEPAGE) promotes at).
inline constexpr std::size_t kHugePageBytes = std::size_t{2} << 20;

/// Minimal std-compatible allocator returning storage aligned to `Align`.
template <class T, std::size_t Align>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");
  static_assert(Align >= alignof(T));

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    void* p = ::operator new(n * sizeof(T), std::align_val_t{Align});
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
};

/// How a buffer's pages are obtained and initialized. Both knobs are
/// requests: what actually happened is recorded in the AllocReport.
struct MemoryPolicy {
  /// Align to 2 MiB and madvise(MADV_HUGEPAGE) the range, so the kernel
  /// backs it with transparent huge pages where it can (fewer TLB misses
  /// on the multi-hundred-megabyte volumes of the paper's scale).
  bool huge_pages = false;
  /// Value-initialize the storage from the executing thread set instead of
  /// the allocating thread, so on NUMA systems each worker's pages land on
  /// its own node (classic first-touch placement). Requires a
  /// FirstTouchFn; without one the request falls back to serial init.
  bool first_touch = false;
  /// Byte budget for out-of-core brick caches opened through this policy
  /// (exec::ExecutionContext::open_bricked). 0 = mmap the brick file and
  /// let the page cache decide; > 0 = a streamed LRU cache of that many
  /// bytes. Ignored by in-core grid allocations.
  std::size_t brick_cache_bytes = 0;
};

/// Parallel initialization hook: invoked as fn(count, touch) and must call
/// touch(begin, end) exactly once for a set of disjoint ranges covering
/// [0, count) — each from whichever thread should own those pages.
/// exec::ExecutionContext::first_touch_fn() supplies the standard
/// implementation (one contiguous range per worker).
using FirstTouchFn =
    std::function<void(std::size_t, const std::function<void(std::size_t, std::size_t)>&)>;

/// What an AlignedBuffer allocation actually did, mirroring the perfmon
/// OpenFailure idiom: requests that cannot be honoured degrade with a
/// recorded reason instead of failing.
struct AllocReport {
  bool huge_pages_requested = false;
  bool huge_pages_applied = false;
  bool first_touch_requested = false;
  bool first_touch_applied = false;
  int error = 0;        ///< errno from madvise when it failed, else 0
  std::string message;  ///< human-readable fallback reason, empty if none

  /// True when huge pages were asked for but could not be applied.
  [[nodiscard]] bool huge_page_fallback() const noexcept {
    return huge_pages_requested && !huge_pages_applied;
  }
};

/// Human-readable reason for a failed madvise(MADV_HUGEPAGE), following
/// perfmon::describe_open_error.
[[nodiscard]] inline std::string describe_madvise_error(int error) {
  switch (error) {
    case 0:
      return "";
#if defined(__linux__)
    case EINVAL:
      return "madvise(MADV_HUGEPAGE) rejected (EINVAL): transparent huge pages "
             "are disabled in this kernel (check /sys/kernel/mm/transparent_hugepage/enabled)";
    case ENOMEM:
      return "madvise(MADV_HUGEPAGE) rejected (ENOMEM): address range not mapped";
#endif
    default:
      return "madvise(MADV_HUGEPAGE) failed (errno " + std::to_string(error) + ")";
  }
}

/// Owning aligned storage with MemoryPolicy placement — the allocation
/// backend of Grid3D. Elements are value-initialized (zeroed for floats),
/// either serially or through the policy's first-touch hook; the
/// constructor never throws for policy reasons (see AllocReport).
template <class T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count, const MemoryPolicy& policy = {},
                         const FirstTouchFn& first_touch = {}) {
    allocate(count, policy, first_touch);
  }

  AlignedBuffer(const AlignedBuffer& other) {
    allocate(other.size_, other.policy_, {});
    if (size_ != 0) {
      std::memcpy(static_cast<void*>(data_), static_cast<const void*>(other.data_),
                  size_ * sizeof(T));
    }
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        align_(std::exchange(other.align_, kCacheLineBytes)),
        policy_(std::exchange(other.policy_, {})),
        report_(std::move(other.report_)) {
    other.report_ = AllocReport{};
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      *this = std::move(tmp);
    }
    return *this;
  }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      align_ = std::exchange(other.align_, kCacheLineBytes);
      policy_ = std::exchange(other.policy_, {});
      report_ = std::move(other.report_);
      other.report_ = AllocReport{};
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] const MemoryPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] const AllocReport& report() const noexcept { return report_; }

 private:
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer holds grid scalars (no per-element destruction)");

  void allocate(std::size_t count, const MemoryPolicy& policy,
                const FirstTouchFn& first_touch) {
    policy_ = policy;
    report_ = AllocReport{};
    report_.huge_pages_requested = policy.huge_pages;
    report_.first_touch_requested = policy.first_touch;
    if (count == 0) {
      return;
    }
    if (count > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    const std::size_t bytes = count * sizeof(T);
    const bool want_huge = policy.huge_pages && bytes >= kHugePageBytes;
    align_ = want_huge ? kHugePageBytes : kCacheLineBytes;
    data_ = static_cast<T*>(::operator new(bytes, std::align_val_t{align_}));
    size_ = count;
    if (policy.huge_pages) {
      apply_huge_pages(bytes, want_huge);
    }
    // Value-initialize every element, from the worker set when the policy
    // asks for first-touch and a hook is available (so the pages fault in
    // on the threads that will use them), serially otherwise. Padding is
    // part of the range either way — a grid's padding stays zeroed.
    if (policy.first_touch && first_touch) {
      first_touch(count, [this](std::size_t begin, std::size_t end) {
        std::uninitialized_value_construct(data_ + begin, data_ + end);
      });
      report_.first_touch_applied = true;
    } else {
      std::uninitialized_value_construct_n(data_, count);
    }
  }

  void apply_huge_pages(std::size_t bytes, bool want_huge) {
    if (!want_huge) {
      report_.message = "buffer smaller than one huge page (" +
                        std::to_string(bytes) + " bytes); using cache-line alignment";
      return;
    }
#if defined(__linux__)
    if (::madvise(static_cast<void*>(data_), bytes, MADV_HUGEPAGE) == 0) {
      report_.huge_pages_applied = true;
    } else {
      report_.error = errno;
      report_.message = describe_madvise_error(report_.error);
    }
#else
    report_.message = "transparent huge pages unavailable on this platform";
#endif
  }

  void release() noexcept {
    if (data_ != nullptr) {
      ::operator delete(static_cast<void*>(data_), std::align_val_t{align_});
      data_ = nullptr;
      size_ = 0;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t align_ = kCacheLineBytes;
  MemoryPolicy policy_{};
  AllocReport report_{};
};

}  // namespace sfcvis::core
