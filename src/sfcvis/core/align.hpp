// Cache-line constants and an aligned allocator for grid storage.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>

namespace sfcvis::core {

/// Cache-line size assumed throughout the library (both paper platforms —
/// Ivy Bridge and KNC — use 64-byte lines, as does the memsim default).
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal std-compatible allocator returning storage aligned to `Align`.
template <class T, std::size_t Align>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");
  static_assert(Align >= alignof(T));

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    void* p = ::operator new(n * sizeof(T), std::align_val_t{Align});
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
};

}  // namespace sfcvis::core
