#include "sfcvis/core/bricked.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iterator>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define SFCVIS_BRICKED_POSIX 1
#include <cerrno>
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#else
#define SFCVIS_BRICKED_POSIX 0
#endif

namespace sfcvis::core {

namespace {

constexpr std::uint64_t kInvalidCode = ~std::uint64_t{0};
constexpr std::uint32_t kInvalidRank = 0xffffffffu;
constexpr std::uint32_t kOverflowBit = 0x80000000u;
constexpr std::size_t kEvictionLogCap = 1024;
constexpr std::size_t kDenseRankLimit = std::size_t{1} << 22;
/// Stream-fallback budget when an mmap was requested but refused.
constexpr std::size_t kFallbackCacheBytes = std::size_t{64} << 20;

[[nodiscard]] std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

/// Shared immutable-file backend: geometry tables, the file handle, and
/// (in stream mode) the pinned-LRU slot arena. All mutable state is behind
/// mu_ except the monotonically-increasing counters (atomics, so the
/// lock-free mmap path can count too).
struct BrickedVolume::Impl {
  // --- immutable after open ---
  BrickFileInfo info;
  std::string path;
  std::vector<std::uint32_t> lut;     ///< local voxel -> inner storage offset
  std::vector<std::uint64_t> codes;   ///< rank -> brick code (ascending)
  std::vector<std::uint32_t> rank_dense;           ///< code -> rank (small codespaces)
  std::unordered_map<std::uint64_t, std::uint32_t> rank_map;  ///< (large codespaces)
  bool dense_ranks = true;
  unsigned shift = 0;
  std::size_t elems = 0;
  std::uint64_t salt = 0;
  AllocReport report;  ///< open-time outcome (mmap fallback, degraded budget)
  float origin = 0.0f; ///< data() sentinel — identity, not storage

  // --- file ---
#if SFCVIS_BRICKED_POSIX
  int fd = -1;
  const unsigned char* map = nullptr;
  std::size_t map_len = 0;
#else
  std::FILE* file = nullptr;
  std::mutex io_mu;  ///< stdio seek+read must be atomic
#endif
  bool use_mmap = false;

  // --- stream cache (unused in mmap mode) ---
  enum class SlotState : std::uint8_t { kEmpty, kLoading, kReady };
  struct Slot {
    std::uint64_t code = kInvalidCode;
    std::uint64_t stamp = 0;
    int pins = 0;
    SlotState state = SlotState::kEmpty;
    bool prefetched = false;
  };
  std::unique_ptr<float[]> arena;
  std::uint32_t slot_count = 0;
  std::vector<Slot> slots;
  std::unordered_map<std::uint64_t, std::uint32_t> resident;  ///< code -> slot
  struct Overflow {
    std::unique_ptr<float[]> data;
    int pins = 0;
  };
  std::unordered_map<std::uint32_t, Overflow> overflow;
  std::uint32_t next_overflow_id = 0;
  std::uint64_t clock = 0;
  mutable std::mutex mu;
  std::condition_variable slot_cv;  ///< signalled when a Loading slot turns Ready

  // --- counters (relaxed atomics; snapshot needs no lock) ---
  std::atomic<std::uint64_t> hits{0}, misses{0}, evictions{0}, overflow_bricks{0};
  std::atomic<std::uint64_t> prefetch_issued{0}, prefetch_hits{0};
  // drain watermarks (guarded by mu)
  std::uint64_t drained[6] = {0, 0, 0, 0, 0, 0};
  std::string io_error;  ///< guarded by mu; first failure, sticky
  std::string degrade;   ///< guarded by mu; first budget/mmap fallback
  std::vector<std::uint64_t> eviction_log;  ///< guarded by mu; capped

  // --- at() convenience pin ring (guarded by ring_mu; lock order
  // ring_mu -> mu, never the reverse) ---
  struct RingEntry {
    std::uint64_t code = kInvalidCode;
    const float* data = nullptr;
    std::uint32_t slot = kNoSlot;
    bool valid = false;
  };
  mutable std::mutex ring_mu;
  mutable RingEntry ring[8];
  mutable unsigned ring_rr = 0;

  // --- prefetch thread ---
  std::thread prefetcher;
  std::deque<std::uint64_t> pf_queue;  ///< guarded by mu
  std::condition_variable pf_cv;
  bool stop = false;  ///< guarded by mu
  std::uint32_t prefetch_depth = 0;

  ~Impl() {
    if (prefetcher.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu);
        stop = true;
      }
      pf_cv.notify_all();
      prefetcher.join();
    }
#if SFCVIS_BRICKED_POSIX
    if (map != nullptr) {
      ::munmap(const_cast<unsigned char*>(map), map_len);
    }
    if (fd >= 0) {
      ::close(fd);
    }
#else
    if (file != nullptr) {
      std::fclose(file);
    }
#endif
  }

  [[nodiscard]] std::uint32_t rank_of(std::uint64_t code) const noexcept {
    if (dense_ranks) {
      return code < rank_dense.size() ? rank_dense[code] : kInvalidRank;
    }
    const auto it = rank_map.find(code);
    return it == rank_map.end() ? kInvalidRank : it->second;
  }

  void note_io_error(const std::string& what) {
    std::lock_guard<std::mutex> lock(mu);
    if (io_error.empty()) {
      io_error = what;
    }
  }

  /// Reads brick `rank` into `dst` (elems floats). A failed or short read
  /// zero-fills and records the first error — degrade, never crash.
  void read_brick(std::uint64_t rank, float* dst) noexcept {
    const std::size_t bytes = elems * sizeof(float);
    const std::uint64_t off = info.payload_offset + rank * bytes;
    std::size_t got = 0;
#if SFCVIS_BRICKED_POSIX
    while (got < bytes) {
      const ::ssize_t r = ::pread(fd, reinterpret_cast<char*>(dst) + got, bytes - got,
                                  static_cast<::off_t>(off + got));
      if (r <= 0) {
        if (r < 0 && errno == EINTR) {
          continue;
        }
        break;
      }
      got += static_cast<std::size_t>(r);
    }
#else
    {
      std::lock_guard<std::mutex> lock(io_mu);
      if (std::fseek(file, static_cast<long>(off), SEEK_SET) == 0) {
        got = std::fread(dst, 1, bytes, file) ;
      }
    }
#endif
    if (got != bytes) {
      std::memset(reinterpret_cast<char*>(dst) + got, 0, bytes - got);
      note_io_error("short read of brick " + std::to_string(rank) + " (got " +
                    std::to_string(got) + " of " + std::to_string(bytes) +
                    " bytes); brick zero-filled");
    }
  }

  /// LRU victim under mu: an Empty slot, else the least-recently-stamped
  /// Ready slot with no pins. kNoSlot when everything is pinned/loading.
  [[nodiscard]] std::uint32_t pick_victim_locked() const noexcept {
    std::uint32_t best = kNoSlot;
    std::uint64_t best_stamp = ~std::uint64_t{0};
    for (std::uint32_t n = 0; n < slot_count; ++n) {
      const Slot& s = slots[n];
      if (s.state == SlotState::kEmpty) {
        return n;
      }
      if (s.state == SlotState::kReady && s.pins == 0 && s.stamp < best_stamp) {
        best_stamp = s.stamp;
        best = n;
      }
    }
    return best;
  }

  void evict_locked(std::uint32_t slot) {
    Slot& s = slots[slot];
    if (s.state != SlotState::kEmpty) {
      resident.erase(s.code);
      evictions.fetch_add(1, std::memory_order_relaxed);
      if (eviction_log.size() < kEvictionLogCap) {
        eviction_log.push_back(s.code);
      }
    }
    s = Slot{};
  }

  /// Demand acquire in stream mode (mmap handled by the caller).
  [[nodiscard]] BrickRef acquire_stream(std::uint64_t code, std::uint32_t rank) noexcept {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      const auto it = resident.find(code);
      if (it != resident.end()) {
        Slot& s = slots[it->second];
        if (s.state == SlotState::kLoading) {
          // Another thread is streaming this brick in; wait, then re-find
          // (the slot can be repurposed between wake-ups).
          slot_cv.wait(lock);
          continue;
        }
        s.pins++;
        s.stamp = ++clock;
        hits.fetch_add(1, std::memory_order_relaxed);
        if (s.prefetched) {
          s.prefetched = false;
          prefetch_hits.fetch_add(1, std::memory_order_relaxed);
        }
        return BrickRef{arena.get() + std::size_t{it->second} * elems, it->second, rank};
      }

      misses.fetch_add(1, std::memory_order_relaxed);
      enqueue_prefetch_locked(rank);
      const std::uint32_t victim = pick_victim_locked();
      if (victim == kNoSlot) {
        // Every slot is pinned or loading: the budget cannot hold this
        // traversal's working set. Degrade to a one-off heap brick with a
        // recorded reason instead of failing or deadlocking.
        if (degrade.empty()) {
          degrade = "brick cache budget too small for the concurrent working set (" +
                    std::to_string(slot_count) +
                    " slots all pinned); overflowing to heap bricks";
        }
        const std::uint32_t id = next_overflow_id++;
        overflow_bricks.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
        std::unique_ptr<float[]> buf;
        try {
          buf.reset(new float[elems]);
        } catch (const std::bad_alloc&) {
          note_io_error("allocation of an overflow brick failed; serving zeros");
          std::lock_guard<std::mutex> relock(mu);
          return BrickRef{zero_brick(), kNoSlot, rank};
        }
        read_brick(rank, buf.get());
        lock.lock();
        const float* data = buf.get();
        overflow[id] = Overflow{std::move(buf), 1};
        return BrickRef{data, kOverflowBit | id, rank};
      }

      evict_locked(victim);
      Slot& s = slots[victim];
      s.code = code;
      s.state = SlotState::kLoading;
      s.pins = 1;
      s.prefetched = false;
      resident.emplace(code, victim);
      float* dst = arena.get() + std::size_t{victim} * elems;
      lock.unlock();
      read_brick(rank, dst);
      lock.lock();
      s.state = SlotState::kReady;
      s.stamp = ++clock;
      slot_cv.notify_all();
      return BrickRef{dst, victim, rank};
    }
  }

  void release(std::uint32_t slot) noexcept {
    if (slot == kNoSlot) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu);
    if ((slot & kOverflowBit) != 0) {
      const auto it = overflow.find(slot & ~kOverflowBit);
      if (it != overflow.end() && --it->second.pins == 0) {
        overflow.erase(it);
      }
      return;
    }
    if (slot < slot_count && slots[slot].pins > 0) {
      slots[slot].pins--;
    }
  }

  /// Queues the next prefetch_depth bricks (file curve order) behind a
  /// demand miss. Caller holds mu.
  void enqueue_prefetch_locked(std::uint64_t rank) {
    if (prefetch_depth == 0) {
      return;
    }
    bool queued = false;
    for (std::uint32_t d = 1; d <= prefetch_depth; ++d) {
      const std::uint64_t next = rank + d;
      if (next >= codes.size()) {
        break;
      }
      if (pf_queue.size() >= 64) {
        break;
      }
      pf_queue.push_back(codes[next]);
      queued = true;
    }
    if (queued) {
      pf_cv.notify_one();
    }
  }

  void prefetch_loop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      pf_cv.wait(lock, [&] { return stop || !pf_queue.empty(); });
      if (stop) {
        return;
      }
      const std::uint64_t code = pf_queue.front();
      pf_queue.pop_front();
      if (resident.count(code) != 0) {
        continue;  // already in (or on its way in)
      }
      const std::uint32_t rank = rank_of(code);
      if (rank == kInvalidRank) {
        continue;
      }
      const std::uint32_t victim = pick_victim_locked();
      if (victim == kNoSlot) {
        continue;  // fully pinned: never overflow for speculation
      }
      evict_locked(victim);
      Slot& s = slots[victim];
      s.code = code;
      s.state = SlotState::kLoading;
      s.pins = 0;
      resident.emplace(code, victim);
      float* dst = arena.get() + std::size_t{victim} * elems;
      lock.unlock();
      read_brick(rank, dst);
      lock.lock();
      s.state = SlotState::kReady;
      s.stamp = ++clock;
      s.prefetched = true;
      prefetch_issued.fetch_add(1, std::memory_order_relaxed);
      slot_cv.notify_all();
    }
  }

  /// All-zero brick served when even the degrade paths cannot produce
  /// data; allocated once at open so the pointer is always valid.
  [[nodiscard]] const float* zero_brick() const noexcept { return zeros.data(); }
  std::vector<float> zeros;
};

BrickedVolume BrickedVolume::open(const std::string& path, const BrickOpenOptions& opts) {
  BrickedVolume v;
  auto impl = std::make_shared<Impl>();
  impl->info = read_brick_file_header(path);  // throws on corrupt/truncated
  impl->path = path;
  try {
    impl->lut = detail::brick_inner_offsets(impl->info.brick_edge, impl->info.inner_kind,
                                            impl->info.inner_tile, impl->info.interleave);
  } catch (const std::exception& ex) {
    throw std::runtime_error("brick file \"" + path +
                             "\": invalid inner layout: " + ex.what());
  }
  impl->codes = detail::brick_codes(impl->info.brick_grid());
  impl->shift = log2_pow2(impl->info.brick_edge);
  impl->elems = impl->info.brick_elems();
  impl->zeros.assign(impl->elems, 0.0f);

  const std::uint64_t max_code = impl->codes.back();
  impl->dense_ranks = max_code + 1 <= kDenseRankLimit;
  if (impl->dense_ranks) {
    impl->rank_dense.assign(static_cast<std::size_t>(max_code) + 1, kInvalidRank);
    for (std::size_t r = 0; r < impl->codes.size(); ++r) {
      impl->rank_dense[impl->codes[r]] = static_cast<std::uint32_t>(r);
    }
  } else {
    impl->rank_map.reserve(impl->codes.size());
    for (std::size_t r = 0; r < impl->codes.size(); ++r) {
      impl->rank_map.emplace(impl->codes[r], static_cast<std::uint32_t>(r));
    }
  }

  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, &impl->info.brick_edge, sizeof(impl->info.brick_edge));
  h = fnv1a(h, &impl->info.inner_kind, sizeof(impl->info.inner_kind));
  h = fnv1a(h, &impl->info.inner_tile, sizeof(impl->info.inner_tile));
  h = fnv1a(h, impl->info.interleave.data(), impl->info.interleave.size());
  impl->salt = h | 1;  // never 0: distinguishes bricked from fixed layouts

#if SFCVIS_BRICKED_POSIX
  impl->fd = ::open(path.c_str(), O_RDONLY);
  if (impl->fd < 0) {
    throw std::runtime_error("brick file \"" + path + "\": cannot open for reading");
  }
#else
  impl->file = std::fopen(path.c_str(), "rb");
  if (impl->file == nullptr) {
    throw std::runtime_error("brick file \"" + path + "\": cannot open for reading");
  }
#endif

  const std::size_t payload_bytes =
      impl->codes.size() * impl->elems * sizeof(float);
  std::size_t budget = opts.cache_bytes;
  if (budget == 0 && !opts.force_stream) {
#if SFCVIS_BRICKED_POSIX
    const std::size_t len =
        static_cast<std::size_t>(impl->info.expected_file_size());
    void* m = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, impl->fd, 0);
    if (m != MAP_FAILED) {
      impl->map = static_cast<const unsigned char*>(m);
      impl->map_len = len;
      impl->use_mmap = true;
    } else {
      impl->degrade = "mmap failed (errno " + std::to_string(errno) +
                      "); falling back to a streamed brick cache";
      impl->report.message = impl->degrade;
      budget = std::min(kFallbackCacheBytes, payload_bytes);
    }
#else
    impl->degrade = "mmap unavailable on this platform; using a streamed brick cache";
    impl->report.message = impl->degrade;
    budget = std::min(kFallbackCacheBytes, payload_bytes);
#endif
  } else if (budget == 0) {
    budget = std::min(kFallbackCacheBytes, payload_bytes);
  }

  if (!impl->use_mmap) {
    const std::size_t brick_bytes = impl->elems * sizeof(float);
    std::size_t slot_count = budget / brick_bytes;
    if (slot_count == 0) {
      slot_count = 1;
      impl->degrade = "brick cache budget (" + std::to_string(budget) +
                      " bytes) below one brick (" + std::to_string(brick_bytes) +
                      " bytes); degraded to a single slot";
      impl->report.message = impl->degrade;
    }
    slot_count = std::min(slot_count, impl->codes.size());
    impl->slot_count = static_cast<std::uint32_t>(slot_count);
    impl->slots.assign(slot_count, Impl::Slot{});
    impl->arena.reset(new float[slot_count * impl->elems]);
    impl->resident.reserve(slot_count * 2);
    impl->prefetch_depth = opts.prefetch_depth;
    if (impl->prefetch_depth > 0) {
      Impl* raw = impl.get();
      impl->prefetcher = std::thread([raw] { raw->prefetch_loop(); });
    }
  }

  v.impl_ = std::move(impl);
  return v;
}

const Extents3D& BrickedVolume::extents() const noexcept {
  assert(impl_ != nullptr);
  return impl_->info.extents;
}

std::size_t BrickedVolume::capacity() const noexcept {
  assert(impl_ != nullptr);
  return impl_->use_mmap ? impl_->codes.size() * impl_->elems
                         : std::size_t{impl_->slot_count} * impl_->elems;
}

float* BrickedVolume::data() noexcept {
  assert(impl_ != nullptr);
  return &impl_->origin;
}

const float* BrickedVolume::data() const noexcept {
  assert(impl_ != nullptr);
  return &impl_->origin;
}

const AllocReport& BrickedVolume::alloc_report() const noexcept {
  assert(impl_ != nullptr);
  return impl_->report;
}

const BrickFileInfo& BrickedVolume::info() const noexcept {
  assert(impl_ != nullptr);
  return impl_->info;
}

bool BrickedVolume::mmapped() const noexcept {
  assert(impl_ != nullptr);
  return impl_->use_mmap;
}

const std::uint32_t* BrickedVolume::inner_offsets() const noexcept {
  assert(impl_ != nullptr);
  return impl_->lut.data();
}

unsigned BrickedVolume::edge_shift() const noexcept {
  assert(impl_ != nullptr);
  return impl_->shift;
}

std::uint64_t BrickedVolume::cache_salt() const noexcept {
  assert(impl_ != nullptr);
  return impl_->salt;
}

BrickedVolume::BrickRef BrickedVolume::acquire_brick(std::uint64_t code) const noexcept {
  Impl& im = *impl_;
  const std::uint32_t rank = im.rank_of(code);
  if (rank == kInvalidRank) {
    assert(false && "brick code outside the brick grid");
    return BrickRef{im.zero_brick(), kNoSlot, 0};
  }
  if (im.use_mmap) {
#if SFCVIS_BRICKED_POSIX
    im.hits.fetch_add(1, std::memory_order_relaxed);
    const unsigned char* p =
        im.map + im.info.payload_offset + std::uint64_t{rank} * im.elems * sizeof(float);
    return BrickRef{static_cast<const float*>(static_cast<const void*>(p)), kNoSlot, rank};
#endif
  }
  return im.acquire_stream(code, rank);
}

void BrickedVolume::release_brick(std::uint32_t slot) const noexcept {
  if (slot == kNoSlot) {
    return;
  }
  impl_->release(slot);
}

float& BrickedVolume::at(std::uint32_t i, std::uint32_t j, std::uint32_t k) noexcept {
  return const_cast<float&>(std::as_const(*this).at(i, j, k));
}

const float& BrickedVolume::at(std::uint32_t i, std::uint32_t j,
                               std::uint32_t k) const noexcept {
  Impl& im = *impl_;
  assert(im.info.extents.contains(i, j, k));
  const unsigned s = im.shift;
  const std::uint32_t mask = (1u << s) - 1;
  const std::uint64_t code = morton_encode_3d(i >> s, j >> s, k >> s);
  const std::size_t off =
      im.lut[(i & mask) + (static_cast<std::size_t>(j & mask) << s) +
             (static_cast<std::size_t>(k & mask) << (2 * s))];
  if (im.use_mmap) {
    return acquire_brick(code).data[off];
  }
  // Streamed: serve from the convenience pin ring (lock order ring_mu ->
  // mu; acquire/release below take mu internally).
  std::lock_guard<std::mutex> lock(im.ring_mu);
  for (const Impl::RingEntry& e : im.ring) {
    if (e.valid && e.code == code) {
      return e.data[off];
    }
  }
  const BrickRef ref = acquire_brick(code);
  Impl::RingEntry& e = im.ring[im.ring_rr];
  im.ring_rr = (im.ring_rr + 1) % std::size(im.ring);
  if (e.valid) {
    impl_->release(e.slot);
  }
  e = Impl::RingEntry{code, ref.data, ref.slot, true};
  return e.data[off];
}

const float& BrickedVolume::at_clamped(std::int64_t i, std::int64_t j,
                                       std::int64_t k) const noexcept {
  const Extents3D& e = extents();
  const auto ci = static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(i, 0, static_cast<std::int64_t>(e.nx) - 1));
  const auto cj = static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(j, 0, static_cast<std::int64_t>(e.ny) - 1));
  const auto ck = static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(k, 0, static_cast<std::int64_t>(e.nz) - 1));
  return at(ci, cj, ck);
}

BrickCacheReport BrickedVolume::cache_report() const {
  Impl& im = *impl_;
  BrickCacheReport r;
  r.hits = im.hits.load(std::memory_order_relaxed);
  r.misses = im.misses.load(std::memory_order_relaxed);
  r.evictions = im.evictions.load(std::memory_order_relaxed);
  r.overflow_bricks = im.overflow_bricks.load(std::memory_order_relaxed);
  r.prefetch_issued = im.prefetch_issued.load(std::memory_order_relaxed);
  r.prefetch_hits = im.prefetch_hits.load(std::memory_order_relaxed);
  r.slot_count = im.slot_count;
  r.mmapped = im.use_mmap;
  std::lock_guard<std::mutex> lock(im.mu);
  r.io_error = im.io_error;
  r.degrade = im.degrade;
  r.eviction_log = im.eviction_log;
  return r;
}

BrickCacheReport BrickedVolume::drain_cache_deltas() const {
  Impl& im = *impl_;
  BrickCacheReport r;
  std::lock_guard<std::mutex> lock(im.mu);
  const std::uint64_t now[6] = {
      im.hits.load(std::memory_order_relaxed),
      im.misses.load(std::memory_order_relaxed),
      im.evictions.load(std::memory_order_relaxed),
      im.overflow_bricks.load(std::memory_order_relaxed),
      im.prefetch_issued.load(std::memory_order_relaxed),
      im.prefetch_hits.load(std::memory_order_relaxed),
  };
  r.hits = now[0] - im.drained[0];
  r.misses = now[1] - im.drained[1];
  r.evictions = now[2] - im.drained[2];
  r.overflow_bricks = now[3] - im.drained[3];
  r.prefetch_issued = now[4] - im.drained[4];
  r.prefetch_hits = now[5] - im.drained[5];
  for (int n = 0; n < 6; ++n) {
    im.drained[n] = now[n];
  }
  r.slot_count = im.slot_count;
  r.mmapped = im.use_mmap;
  r.io_error = im.io_error;
  r.degrade = im.degrade;
  return r;
}

void BrickedVolume::throw_read_only(const char* op) {
  throw std::logic_error(std::string("BrickedVolume::") + op +
                         ": a bricked volume is a read-only view of its brick file; "
                         "convert_to an in-core layout to get writable storage, or "
                         "re-pack the file with pack_brick_file");
}

}  // namespace sfcvis::core
