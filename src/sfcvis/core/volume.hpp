// Runtime volume facade: one value type over the five float Grid3D layout
// instantiations plus the out-of-core BrickedVolume backend.
//
// The paper's Sec. III-C requirement is that swapping the memory layout be
// transparent to the application. The Layout3D templates deliver that at
// compile time; AnyVolume extends it to runtime so drivers, benches, and
// tools can pick a layout from a flag without spelling the 5-way template
// cross-product. make_volume() (volume.cpp) is the ONLY place in the
// library where the per-layout Grid3D instantiations are written out —
// a CI grep gate (tools/check_layout_gate.sh) keeps it that way.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "sfcvis/core/bricked.hpp"
#include "sfcvis/core/gmorton.hpp"
#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/layout.hpp"
#include "sfcvis/core/layout_kind.hpp"

namespace sfcvis::core {

/// Inverse of to_string (also accepts "array" and "zorder" shorthands).
/// Throws std::invalid_argument for unknown names; the message lists the
/// valid names and the "gmorton:<pattern>" spec syntax.
[[nodiscard]] LayoutKind parse_layout_kind(std::string_view name);

/// A layout selection as it appears on a command line: a kind plus, for
/// generalized Morton, an optional interleave string.
struct LayoutSpec {
  LayoutKind kind = LayoutKind::kArray;
  std::string interleave;  ///< gmorton pattern; empty = canonical
};

/// Parses "array-order", "z-order", ..., "gmorton" (canonical pattern), or
/// "gmorton:zyxzyxzzyyxx" (explicit pattern; validated against the extents
/// at make_volume time). Throws std::invalid_argument for unknown names.
[[nodiscard]] LayoutSpec parse_layout_spec(std::string_view spec);

/// Named aliases for the five concrete volumes. Kernel drivers spell their
/// array-order outputs with ArrayVolume; the per-layout spellings
/// themselves stay confined to core/ (enforced by the CI grep gate).
using ArrayVolume = Grid3D<float, ArrayOrderLayout>;
using ZOrderVolume = Grid3D<float, ZOrderLayout>;
using TiledVolume = Grid3D<float, TiledLayout>;
using HilbertVolume = Grid3D<float, HilbertLayout>;
using GMortonVolume = Grid3D<float, GeneralizedMortonLayout>;

/// Construction knobs for make_volume.
struct VolumeOpts {
  std::uint32_t tile = 8;        ///< tiled-layout block edge (pow2)
  std::string interleave;        ///< gmorton pattern; empty = canonical
  MemoryPolicy memory{};         ///< placement policy (huge pages, first-touch)
  FirstTouchFn first_touch{};    ///< parallel-init hook when memory.first_touch
};

/// A float volume in any of the five in-core layouts or the out-of-core
/// bricked backend — std::variant underneath, so it is a value type
/// (copy/move work; a copied bricked volume shares its cache) and visit()
/// recovers the static type for kernels.
class AnyVolume {
 public:
  // Alternative order must track the LayoutKind enum: kind() is the
  // variant index.
  using Variant = std::variant<ArrayVolume, ZOrderVolume, TiledVolume, HilbertVolume,
                               GMortonVolume, BrickedVolume>;

  AnyVolume() = default;

  /// Wraps (moves in) a concrete grid.
  template <Layout3D L>
  AnyVolume(Grid3D<float, L> grid) : v_(std::move(grid)) {}  // NOLINT(google-explicit-constructor)

  /// Wraps an opened out-of-core bricked volume.
  AnyVolume(BrickedVolume bricked) : v_(std::move(bricked)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] LayoutKind kind() const noexcept {
    return static_cast<LayoutKind>(v_.index());
  }

  /// Layout name of the held grid (same strings as to_string(kind())).
  [[nodiscard]] const char* layout_name() const noexcept { return to_string(kind()); }

  /// Invokes fn with the concrete Grid3D&; returns fn's result.
  template <class Fn>
  decltype(auto) visit(Fn&& fn) {
    return std::visit(std::forward<Fn>(fn), v_);
  }
  template <class Fn>
  decltype(auto) visit(Fn&& fn) const {
    return std::visit(std::forward<Fn>(fn), v_);
  }

  /// The held grid as its concrete type; throws std::bad_variant_access
  /// when the kind does not match.
  template <Layout3D L>
  [[nodiscard]] Grid3D<float, L>& as() {
    return std::get<Grid3D<float, L>>(v_);
  }
  template <Layout3D L>
  [[nodiscard]] const Grid3D<float, L>& as() const {
    return std::get<Grid3D<float, L>>(v_);
  }
  [[nodiscard]] BrickedVolume& as_bricked() { return std::get<BrickedVolume>(v_); }
  [[nodiscard]] const BrickedVolume& as_bricked() const {
    return std::get<BrickedVolume>(v_);
  }

  // Common Grid3D surface, forwarded through the variant.
  [[nodiscard]] const Extents3D& extents() const noexcept {
    return visit([](const auto& g) -> const Extents3D& { return g.extents(); });
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return visit([](const auto& g) { return g.size(); });
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return visit([](const auto& g) { return g.capacity(); });
  }
  [[nodiscard]] float* data() noexcept {
    return visit([](auto& g) { return g.data(); });
  }
  [[nodiscard]] const float* data() const noexcept {
    return visit([](const auto& g) { return g.data(); });
  }
  [[nodiscard]] const AllocReport& alloc_report() const noexcept {
    return visit([](const auto& g) -> const AllocReport& { return g.alloc_report(); });
  }
  [[nodiscard]] float& at(std::uint32_t i, std::uint32_t j, std::uint32_t k) noexcept {
    return visit([&](auto& g) -> float& { return g.at(i, j, k); });
  }
  [[nodiscard]] const float& at(std::uint32_t i, std::uint32_t j,
                                std::uint32_t k) const noexcept {
    return visit([&](const auto& g) -> const float& { return g.at(i, j, k); });
  }

  /// Fills every logical element from fn(i, j, k) -> float.
  template <class Fn>
  void fill_from(Fn&& fn) {
    visit([&](auto& g) { g.fill_from(fn); });
  }

  /// Copies logical contents from another volume (any layout pair).
  /// Extents must match.
  void copy_from(const AnyVolume& other) {
    visit([&](auto& dst) {
      other.visit([&](const auto& src) { dst.copy_from(src); });
    });
  }

  /// Same contents re-laid-out as `kind` (layout conversion through the
  /// facade); opts supplies the tile size and placement policy.
  [[nodiscard]] AnyVolume convert_to(LayoutKind kind, const VolumeOpts& opts = {}) const;

 private:
  Variant v_;
};

/// Allocates a zeroed volume of the given layout kind — the single place
/// the five Grid3D instantiations are spelled. For kGMorton,
/// opts.interleave selects the pattern (empty = canonical Z-equivalent).
/// kBricked throws std::invalid_argument: a bricked volume is opened from
/// a packed file (pack_brick_file + BrickedVolume::open), never allocated.
[[nodiscard]] AnyVolume make_volume(LayoutKind kind, const Extents3D& extents,
                                    const VolumeOpts& opts = {});

}  // namespace sfcvis::core
