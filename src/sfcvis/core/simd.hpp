// One width-agnostic SIMD vector abstraction for the explicit kernels.
//
// The hot loops (bilateral/gaussian tap loops over gather-ring scratch,
// the ray-packet raycaster) used to lean on autovectorization via
// `#pragma omp simd`; this header gives them explicit lanes instead. The
// instruction set is selected at configure time from the compiler's
// target macros and reported at runtime through active_isa() — the same
// "reported fallback" idiom as perfmon (perf counters) and alloc (THP):
// every build works, and tells you which path it took.
//
//   AVX-512F  -> native 16-lane (widths 4/8 ride on SSE/AVX registers)
//   AVX2+FMA  -> native 8-lane  (width 4 on SSE, width 16 as two 8s)
//   NEON(A64) -> native 4-lane  (widths 8/16 composed from 4s)
//   otherwise -> scalar lane loops (also forced by SFCVIS_SIMD_FORCE_SCALAR,
//                the CMake option CI uses to keep the fallback green)
//
// Three types per width N in {4, 8, 16}: vfloat<N> (f32 lanes), vint<N>
// (i32 lanes, conversions + the exponent-field shift fast_exp_neg needs),
// vmask<N> (per-lane booleans from comparisons; blends, movemask bits).
// Widths the ISA lacks are composed from two half-width vectors, so every
// width exists on every build and kernels pick lanes per call site
// (kNativeLanes for throughput loops, the packet size for ray packets).
//
// Determinism contract (what the differential fuzz relies on):
//  * Arithmetic ops use the compiler's built-in vector operators, NOT
//    explicit FMA intrinsics: GCC/Clang apply the same -ffp-contract
//    decisions to vector-extension expressions as to scalar ones, so
//    `a + b * c` contracts (or not) exactly like the scalar kernels it
//    mirrors — per-lane results are bit-identical to scalar code of the
//    same expression shape, on every ISA. fmadd() is the explicitly
//    fused op for call sites that *want* FMA regardless of flags.
//  * vmin/vmax mirror std::min/std::max semantics — select on (a < b) —
//    instead of the x86 minps/maxps NaN/-0 quirks.
//  * vfloor/vsqrt are the IEEE operations (bit-equal to std::floor /
//    std::sqrt); reduce_add sums lanes sequentially 0..N-1.
//  * fast_exp_neg reproduces filters::fast_exp_neg lane-exactly (same
//    constants, same expression shapes; pinned by tests/test_simd.cpp).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(SFCVIS_SIMD_FORCE_SCALAR)
#define SFCVIS_SIMD_ISA_SCALAR 1
#elif defined(__AVX512F__)
#define SFCVIS_SIMD_ISA_AVX512 1
#elif defined(__AVX2__) && defined(__FMA__)
#define SFCVIS_SIMD_ISA_AVX2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define SFCVIS_SIMD_ISA_NEON 1
#else
#define SFCVIS_SIMD_ISA_SCALAR 1
#endif

#if defined(SFCVIS_SIMD_ISA_AVX512) || defined(SFCVIS_SIMD_ISA_AVX2)
#define SFCVIS_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(SFCVIS_SIMD_ISA_NEON)
#include <arm_neon.h>
#endif

namespace sfcvis::simd {

/// Lane count of the widest native vector on this build — the width the
/// throughput loops (filter taps) should instantiate.
#if defined(SFCVIS_SIMD_ISA_AVX512)
inline constexpr int kNativeLanes = 16;
#elif defined(SFCVIS_SIMD_ISA_AVX2)
inline constexpr int kNativeLanes = 8;
#else
inline constexpr int kNativeLanes = 4;
#endif

/// Which backend the configure-time selection picked (runtime-reported,
/// like perfmon's counter source / alloc's THP decision).
[[nodiscard]] inline const char* active_isa() noexcept {
#if defined(SFCVIS_SIMD_ISA_AVX512)
  return "avx512";
#elif defined(SFCVIS_SIMD_ISA_AVX2)
  return "avx2";
#elif defined(SFCVIS_SIMD_ISA_NEON)
  return "neon";
#elif defined(SFCVIS_SIMD_FORCE_SCALAR)
  return "scalar (forced)";
#else
  return "scalar";
#endif
}

template <int N>
struct vfloat;
template <int N>
struct vint;
template <int N>
struct vmask;

#if defined(SFCVIS_SIMD_X86)
namespace detail {
/// -1/0 staircase for building tail masks: &kTailMask32[16 - n] reads n
/// all-ones lanes followed by zeros (n <= 8 consumers: SSE/AVX maskload).
alignas(64) inline constexpr std::int32_t kTailMask32[24] = {
    -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
    -1, -1, -1, -1, 0,  0,  0,  0,  0,  0,  0,  0};
}  // namespace detail
#endif

// ---------------------------------------------------------------------------
// Width 4 — SSE / NEON / scalar lane loops
// ---------------------------------------------------------------------------

#if defined(SFCVIS_SIMD_X86)

template <>
struct vmask<4> {
  __m128 raw;
  [[nodiscard]] static vmask from_bits(unsigned b) noexcept {
    const __m128i bit = _mm_setr_epi32(1, 2, 4, 8);
    const __m128i v = _mm_set1_epi32(static_cast<int>(b));
    return {_mm_castsi128_ps(
        _mm_cmpeq_epi32(_mm_and_si128(v, bit), bit))};
  }
  friend unsigned to_bits(vmask m) noexcept {
    return static_cast<unsigned>(_mm_movemask_ps(m.raw));
  }
  friend bool any(vmask m) noexcept { return to_bits(m) != 0; }
  friend bool all(vmask m) noexcept { return to_bits(m) == 0xFu; }
  friend vmask operator&(vmask a, vmask b) noexcept { return {_mm_and_ps(a.raw, b.raw)}; }
  friend vmask operator|(vmask a, vmask b) noexcept { return {_mm_or_ps(a.raw, b.raw)}; }
  /// a & ~b
  friend vmask andnot(vmask a, vmask b) noexcept { return {_mm_andnot_ps(b.raw, a.raw)}; }
};

template <>
struct vint<4> {
  __m128i raw;
  [[nodiscard]] static vint broadcast(std::int32_t v) noexcept { return {_mm_set1_epi32(v)}; }
  [[nodiscard]] std::array<std::int32_t, 4> to_array() const noexcept {
    alignas(16) std::array<std::int32_t, 4> out;
    _mm_store_si128(reinterpret_cast<__m128i*>(out.data()), raw);
    return out;
  }
  friend vint operator+(vint a, vint b) noexcept { return {_mm_add_epi32(a.raw, b.raw)}; }
  friend vint operator<<(vint a, int count) noexcept {
    return {_mm_sll_epi32(a.raw, _mm_cvtsi32_si128(count))};
  }
};

template <>
struct vfloat<4> {
  __m128 raw;
  static constexpr int kLanes = 4;
  [[nodiscard]] static vfloat zero() noexcept { return {_mm_setzero_ps()}; }
  [[nodiscard]] static vfloat broadcast(float v) noexcept { return {_mm_set1_ps(v)}; }
  [[nodiscard]] static vfloat loadu(const float* p) noexcept { return {_mm_loadu_ps(p)}; }
  /// Lanes [0, n) from p, remaining lanes zero (n in [0, 4]).
  [[nodiscard]] static vfloat loadu_masked(const float* p, int n) noexcept {
    const __m128i m = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(detail::kTailMask32 + (16 - n)));
    return {_mm_maskload_ps(p, m)};
  }
  [[nodiscard]] static vfloat from_array(const std::array<float, 4>& a) noexcept {
    return loadu(a.data());
  }
  void storeu(float* p) const noexcept { _mm_storeu_ps(p, raw); }
  [[nodiscard]] std::array<float, 4> to_array() const noexcept {
    alignas(16) std::array<float, 4> out;
    _mm_store_ps(out.data(), raw);
    return out;
  }
  // Built-in vector operators: contraction-consistent with scalar code.
  friend vfloat operator+(vfloat a, vfloat b) noexcept { return {a.raw + b.raw}; }
  friend vfloat operator-(vfloat a, vfloat b) noexcept { return {a.raw - b.raw}; }
  friend vfloat operator*(vfloat a, vfloat b) noexcept { return {a.raw * b.raw}; }
  friend vfloat operator/(vfloat a, vfloat b) noexcept { return {a.raw / b.raw}; }
  friend vfloat operator-(vfloat a) noexcept {
    return {_mm_xor_ps(a.raw, _mm_set1_ps(-0.0f))};
  }
  friend vmask<4> lt(vfloat a, vfloat b) noexcept { return {_mm_cmplt_ps(a.raw, b.raw)}; }
  friend vmask<4> le(vfloat a, vfloat b) noexcept { return {_mm_cmple_ps(a.raw, b.raw)}; }
  friend vmask<4> gt(vfloat a, vfloat b) noexcept { return {_mm_cmpgt_ps(a.raw, b.raw)}; }
  friend vmask<4> ge(vfloat a, vfloat b) noexcept { return {_mm_cmpge_ps(a.raw, b.raw)}; }
  /// m ? a : b, per lane.
  friend vfloat select(vmask<4> m, vfloat a, vfloat b) noexcept {
    return {_mm_blendv_ps(b.raw, a.raw, m.raw)};
  }
  friend vfloat vabs(vfloat a) noexcept {
    return {_mm_andnot_ps(_mm_set1_ps(-0.0f), a.raw)};
  }
  friend vfloat vsqrt(vfloat a) noexcept { return {_mm_sqrt_ps(a.raw)}; }
  friend vfloat vfloor(vfloat a) noexcept { return {_mm_floor_ps(a.raw)}; }
  /// Explicitly fused a*b + c (use mul_add for contraction-following).
  friend vfloat fmadd(vfloat a, vfloat b, vfloat c) noexcept {
    return {_mm_fmadd_ps(a.raw, b.raw, c.raw)};
  }
  friend vint<4> trunc_to_int(vfloat a) noexcept { return {_mm_cvttps_epi32(a.raw)}; }
};

inline vfloat<4> to_float(vint<4> v) noexcept { return {_mm_cvtepi32_ps(v.raw)}; }
inline vfloat<4> float_bits(vint<4> v) noexcept { return {_mm_castsi128_ps(v.raw)}; }
inline vfloat<4> gather(const float* base, vint<4> idx) noexcept {
  return {_mm_i32gather_ps(base, idx.raw, 4)};
}
/// m ? base[idx] : src, per lane; masked-off lanes perform no load.
inline vfloat<4> gather_masked(const float* base, vint<4> idx, vmask<4> m,
                               vfloat<4> src) noexcept {
  return {_mm_mask_i32gather_ps(src.raw, base, idx.raw, m.raw, 4)};
}

#elif defined(SFCVIS_SIMD_ISA_NEON)

template <>
struct vmask<4> {
  uint32x4_t raw;
  [[nodiscard]] static vmask from_bits(unsigned b) noexcept {
    const uint32x4_t bit = {1u, 2u, 4u, 8u};
    return {vtstq_u32(vdupq_n_u32(b), bit)};
  }
  friend unsigned to_bits(vmask m) noexcept {
    const uint32x4_t bit = {1u, 2u, 4u, 8u};
    return vaddvq_u32(vandq_u32(m.raw, bit));
  }
  friend bool any(vmask m) noexcept { return vmaxvq_u32(m.raw) != 0; }
  friend bool all(vmask m) noexcept { return vminvq_u32(m.raw) != 0; }
  friend vmask operator&(vmask a, vmask b) noexcept { return {vandq_u32(a.raw, b.raw)}; }
  friend vmask operator|(vmask a, vmask b) noexcept { return {vorrq_u32(a.raw, b.raw)}; }
  friend vmask andnot(vmask a, vmask b) noexcept { return {vbicq_u32(a.raw, b.raw)}; }
};

template <>
struct vint<4> {
  int32x4_t raw;
  [[nodiscard]] static vint broadcast(std::int32_t v) noexcept { return {vdupq_n_s32(v)}; }
  [[nodiscard]] std::array<std::int32_t, 4> to_array() const noexcept {
    std::array<std::int32_t, 4> out;
    vst1q_s32(out.data(), raw);
    return out;
  }
  friend vint operator+(vint a, vint b) noexcept { return {vaddq_s32(a.raw, b.raw)}; }
  friend vint operator<<(vint a, int count) noexcept {
    return {vshlq_s32(a.raw, vdupq_n_s32(count))};
  }
};

template <>
struct vfloat<4> {
  float32x4_t raw;
  static constexpr int kLanes = 4;
  [[nodiscard]] static vfloat zero() noexcept { return {vdupq_n_f32(0.0f)}; }
  [[nodiscard]] static vfloat broadcast(float v) noexcept { return {vdupq_n_f32(v)}; }
  [[nodiscard]] static vfloat loadu(const float* p) noexcept { return {vld1q_f32(p)}; }
  [[nodiscard]] static vfloat loadu_masked(const float* p, int n) noexcept {
    std::array<float, 4> tmp{};
    for (int i = 0; i < n; ++i) {
      tmp[static_cast<std::size_t>(i)] = p[i];
    }
    return loadu(tmp.data());
  }
  [[nodiscard]] static vfloat from_array(const std::array<float, 4>& a) noexcept {
    return loadu(a.data());
  }
  void storeu(float* p) const noexcept { vst1q_f32(p, raw); }
  [[nodiscard]] std::array<float, 4> to_array() const noexcept {
    std::array<float, 4> out;
    vst1q_f32(out.data(), raw);
    return out;
  }
  friend vfloat operator+(vfloat a, vfloat b) noexcept { return {a.raw + b.raw}; }
  friend vfloat operator-(vfloat a, vfloat b) noexcept { return {a.raw - b.raw}; }
  friend vfloat operator*(vfloat a, vfloat b) noexcept { return {a.raw * b.raw}; }
  friend vfloat operator/(vfloat a, vfloat b) noexcept { return {a.raw / b.raw}; }
  friend vfloat operator-(vfloat a) noexcept { return {vnegq_f32(a.raw)}; }
  friend vmask<4> lt(vfloat a, vfloat b) noexcept { return {vcltq_f32(a.raw, b.raw)}; }
  friend vmask<4> le(vfloat a, vfloat b) noexcept { return {vcleq_f32(a.raw, b.raw)}; }
  friend vmask<4> gt(vfloat a, vfloat b) noexcept { return {vcgtq_f32(a.raw, b.raw)}; }
  friend vmask<4> ge(vfloat a, vfloat b) noexcept { return {vcgeq_f32(a.raw, b.raw)}; }
  friend vfloat select(vmask<4> m, vfloat a, vfloat b) noexcept {
    return {vbslq_f32(m.raw, a.raw, b.raw)};
  }
  friend vfloat vabs(vfloat a) noexcept { return {vabsq_f32(a.raw)}; }
  friend vfloat vsqrt(vfloat a) noexcept { return {vsqrtq_f32(a.raw)}; }
  friend vfloat vfloor(vfloat a) noexcept { return {vrndmq_f32(a.raw)}; }
  friend vfloat fmadd(vfloat a, vfloat b, vfloat c) noexcept {
    return {vfmaq_f32(c.raw, a.raw, b.raw)};
  }
  friend vint<4> trunc_to_int(vfloat a) noexcept { return {vcvtq_s32_f32(a.raw)}; }
};

inline vfloat<4> to_float(vint<4> v) noexcept { return {vcvtq_f32_s32(v.raw)}; }
inline vfloat<4> float_bits(vint<4> v) noexcept { return {vreinterpretq_f32_s32(v.raw)}; }
inline vfloat<4> gather(const float* base, vint<4> idx) noexcept {
  const auto ia = idx.to_array();
  const std::array<float, 4> out{base[ia[0]], base[ia[1]], base[ia[2]], base[ia[3]]};
  return vfloat<4>::from_array(out);
}
inline vfloat<4> gather_masked(const float* base, vint<4> idx, vmask<4> m,
                               vfloat<4> src) noexcept {
  const auto ia = idx.to_array();
  auto out = src.to_array();
  const unsigned bits = to_bits(m);
  for (int l = 0; l < 4; ++l) {
    if ((bits >> l) & 1u) {
      out[static_cast<std::size_t>(l)] = base[ia[static_cast<std::size_t>(l)]];
    }
  }
  return vfloat<4>::from_array(out);
}

#else  // scalar lane loops

template <>
struct vmask<4> {
  std::array<std::uint32_t, 4> raw;  ///< 0 or ~0 per lane
  [[nodiscard]] static vmask from_bits(unsigned b) noexcept {
    vmask m{};
    for (int i = 0; i < 4; ++i) {
      m.raw[static_cast<std::size_t>(i)] = ((b >> i) & 1u) != 0 ? ~0u : 0u;
    }
    return m;
  }
  friend unsigned to_bits(vmask m) noexcept {
    unsigned b = 0;
    for (int i = 0; i < 4; ++i) {
      b |= (m.raw[static_cast<std::size_t>(i)] != 0 ? 1u : 0u) << i;
    }
    return b;
  }
  friend bool any(vmask m) noexcept { return to_bits(m) != 0; }
  friend bool all(vmask m) noexcept { return to_bits(m) == 0xFu; }
  friend vmask operator&(vmask a, vmask b) noexcept {
    vmask r{};
    for (int i = 0; i < 4; ++i) {
      const auto s = static_cast<std::size_t>(i);
      r.raw[s] = a.raw[s] & b.raw[s];
    }
    return r;
  }
  friend vmask operator|(vmask a, vmask b) noexcept {
    vmask r{};
    for (int i = 0; i < 4; ++i) {
      const auto s = static_cast<std::size_t>(i);
      r.raw[s] = a.raw[s] | b.raw[s];
    }
    return r;
  }
  friend vmask andnot(vmask a, vmask b) noexcept {
    vmask r{};
    for (int i = 0; i < 4; ++i) {
      const auto s = static_cast<std::size_t>(i);
      r.raw[s] = a.raw[s] & ~b.raw[s];
    }
    return r;
  }
};

template <>
struct vint<4> {
  std::array<std::int32_t, 4> raw;
  [[nodiscard]] static vint broadcast(std::int32_t v) noexcept {
    return {{v, v, v, v}};
  }
  [[nodiscard]] std::array<std::int32_t, 4> to_array() const noexcept { return raw; }
  friend vint operator+(vint a, vint b) noexcept {
    vint r{};
    for (int i = 0; i < 4; ++i) {
      const auto s = static_cast<std::size_t>(i);
      r.raw[s] = a.raw[s] + b.raw[s];
    }
    return r;
  }
  friend vint operator<<(vint a, int count) noexcept {
    vint r{};
    for (int i = 0; i < 4; ++i) {
      const auto s = static_cast<std::size_t>(i);
      r.raw[s] = a.raw[s] << count;
    }
    return r;
  }
};

#define SFCVIS_SIMD_LANEWISE(result, expr)            \
  vfloat result{};                                    \
  for (std::size_t q_ = 0; q_ < 4; ++q_) {            \
    result.raw[q_] = (expr);                          \
  }                                                   \
  return result

template <>
struct vfloat<4> {
  std::array<float, 4> raw;
  static constexpr int kLanes = 4;
  [[nodiscard]] static vfloat zero() noexcept { return {{0.0f, 0.0f, 0.0f, 0.0f}}; }
  [[nodiscard]] static vfloat broadcast(float v) noexcept { return {{v, v, v, v}}; }
  [[nodiscard]] static vfloat loadu(const float* p) noexcept {
    return {{p[0], p[1], p[2], p[3]}};
  }
  [[nodiscard]] static vfloat loadu_masked(const float* p, int n) noexcept {
    vfloat r = zero();
    for (int i = 0; i < n; ++i) {
      r.raw[static_cast<std::size_t>(i)] = p[i];
    }
    return r;
  }
  [[nodiscard]] static vfloat from_array(const std::array<float, 4>& a) noexcept {
    return {a};
  }
  void storeu(float* p) const noexcept {
    for (std::size_t i = 0; i < 4; ++i) {
      p[i] = raw[i];
    }
  }
  [[nodiscard]] std::array<float, 4> to_array() const noexcept { return raw; }
  friend vfloat operator+(vfloat a, vfloat b) noexcept {
    SFCVIS_SIMD_LANEWISE(r, a.raw[q_] + b.raw[q_]);
  }
  friend vfloat operator-(vfloat a, vfloat b) noexcept {
    SFCVIS_SIMD_LANEWISE(r, a.raw[q_] - b.raw[q_]);
  }
  friend vfloat operator*(vfloat a, vfloat b) noexcept {
    SFCVIS_SIMD_LANEWISE(r, a.raw[q_] * b.raw[q_]);
  }
  friend vfloat operator/(vfloat a, vfloat b) noexcept {
    SFCVIS_SIMD_LANEWISE(r, a.raw[q_] / b.raw[q_]);
  }
  friend vfloat operator-(vfloat a) noexcept { SFCVIS_SIMD_LANEWISE(r, -a.raw[q_]); }
  friend vmask<4> lt(vfloat a, vfloat b) noexcept {
    vmask<4> m{};
    for (std::size_t i = 0; i < 4; ++i) {
      m.raw[i] = a.raw[i] < b.raw[i] ? ~0u : 0u;
    }
    return m;
  }
  friend vmask<4> le(vfloat a, vfloat b) noexcept {
    vmask<4> m{};
    for (std::size_t i = 0; i < 4; ++i) {
      m.raw[i] = a.raw[i] <= b.raw[i] ? ~0u : 0u;
    }
    return m;
  }
  friend vmask<4> gt(vfloat a, vfloat b) noexcept { return lt(b, a); }
  friend vmask<4> ge(vfloat a, vfloat b) noexcept { return le(b, a); }
  friend vfloat select(vmask<4> m, vfloat a, vfloat b) noexcept {
    SFCVIS_SIMD_LANEWISE(r, m.raw[q_] != 0 ? a.raw[q_] : b.raw[q_]);
  }
  friend vfloat vabs(vfloat a) noexcept { SFCVIS_SIMD_LANEWISE(r, std::fabs(a.raw[q_])); }
  friend vfloat vsqrt(vfloat a) noexcept {
    SFCVIS_SIMD_LANEWISE(r, std::sqrt(a.raw[q_]));
  }
  friend vfloat vfloor(vfloat a) noexcept {
    SFCVIS_SIMD_LANEWISE(r, std::floor(a.raw[q_]));
  }
  friend vfloat fmadd(vfloat a, vfloat b, vfloat c) noexcept {
    SFCVIS_SIMD_LANEWISE(r, std::fma(a.raw[q_], b.raw[q_], c.raw[q_]));
  }
  friend vint<4> trunc_to_int(vfloat a) noexcept {
    vint<4> r{};
    for (std::size_t i = 0; i < 4; ++i) {
      r.raw[i] = static_cast<std::int32_t>(a.raw[i]);
    }
    return r;
  }
};

#undef SFCVIS_SIMD_LANEWISE

inline vfloat<4> to_float(vint<4> v) noexcept {
  vfloat<4> r{};
  for (std::size_t i = 0; i < 4; ++i) {
    r.raw[i] = static_cast<float>(v.raw[i]);
  }
  return r;
}
inline vfloat<4> float_bits(vint<4> v) noexcept {
  vfloat<4> r{};
  std::memcpy(r.raw.data(), v.raw.data(), sizeof(r.raw));
  return r;
}
inline vfloat<4> gather(const float* base, vint<4> idx) noexcept {
  vfloat<4> r{};
  for (std::size_t i = 0; i < 4; ++i) {
    r.raw[i] = base[idx.raw[i]];
  }
  return r;
}
inline vfloat<4> gather_masked(const float* base, vint<4> idx, vmask<4> m,
                               vfloat<4> src) noexcept {
  vfloat<4> r = src;
  for (std::size_t i = 0; i < 4; ++i) {
    if (m.raw[i] != 0) {
      r.raw[i] = base[idx.raw[i]];
    }
  }
  return r;
}

#endif  // width-4 backends

// ---------------------------------------------------------------------------
// Width 8 — AVX native, else two width-4 halves
// ---------------------------------------------------------------------------

#if defined(SFCVIS_SIMD_X86)

template <>
struct vmask<8> {
  __m256 raw;
  [[nodiscard]] static vmask from_bits(unsigned b) noexcept {
    const __m256i bit = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    const __m256i v = _mm256_set1_epi32(static_cast<int>(b));
    return {_mm256_castsi256_ps(
        _mm256_cmpeq_epi32(_mm256_and_si256(v, bit), bit))};
  }
  friend unsigned to_bits(vmask m) noexcept {
    return static_cast<unsigned>(_mm256_movemask_ps(m.raw));
  }
  friend bool any(vmask m) noexcept { return to_bits(m) != 0; }
  friend bool all(vmask m) noexcept { return to_bits(m) == 0xFFu; }
  friend vmask operator&(vmask a, vmask b) noexcept { return {_mm256_and_ps(a.raw, b.raw)}; }
  friend vmask operator|(vmask a, vmask b) noexcept { return {_mm256_or_ps(a.raw, b.raw)}; }
  friend vmask andnot(vmask a, vmask b) noexcept { return {_mm256_andnot_ps(b.raw, a.raw)}; }
};

template <>
struct vint<8> {
  __m256i raw;
  [[nodiscard]] static vint broadcast(std::int32_t v) noexcept {
    return {_mm256_set1_epi32(v)};
  }
  [[nodiscard]] std::array<std::int32_t, 8> to_array() const noexcept {
    alignas(32) std::array<std::int32_t, 8> out;
    _mm256_store_si256(reinterpret_cast<__m256i*>(out.data()), raw);
    return out;
  }
  friend vint operator+(vint a, vint b) noexcept { return {_mm256_add_epi32(a.raw, b.raw)}; }
  friend vint operator<<(vint a, int count) noexcept {
    return {_mm256_sll_epi32(a.raw, _mm_cvtsi32_si128(count))};
  }
};

template <>
struct vfloat<8> {
  __m256 raw;
  static constexpr int kLanes = 8;
  [[nodiscard]] static vfloat zero() noexcept { return {_mm256_setzero_ps()}; }
  [[nodiscard]] static vfloat broadcast(float v) noexcept { return {_mm256_set1_ps(v)}; }
  [[nodiscard]] static vfloat loadu(const float* p) noexcept { return {_mm256_loadu_ps(p)}; }
  [[nodiscard]] static vfloat loadu_masked(const float* p, int n) noexcept {
    const __m256i m = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(detail::kTailMask32 + (16 - n)));
    return {_mm256_maskload_ps(p, m)};
  }
  [[nodiscard]] static vfloat from_array(const std::array<float, 8>& a) noexcept {
    return loadu(a.data());
  }
  void storeu(float* p) const noexcept { _mm256_storeu_ps(p, raw); }
  [[nodiscard]] std::array<float, 8> to_array() const noexcept {
    alignas(32) std::array<float, 8> out;
    _mm256_store_ps(out.data(), raw);
    return out;
  }
  friend vfloat operator+(vfloat a, vfloat b) noexcept { return {a.raw + b.raw}; }
  friend vfloat operator-(vfloat a, vfloat b) noexcept { return {a.raw - b.raw}; }
  friend vfloat operator*(vfloat a, vfloat b) noexcept { return {a.raw * b.raw}; }
  friend vfloat operator/(vfloat a, vfloat b) noexcept { return {a.raw / b.raw}; }
  friend vfloat operator-(vfloat a) noexcept {
    return {_mm256_xor_ps(a.raw, _mm256_set1_ps(-0.0f))};
  }
  friend vmask<8> lt(vfloat a, vfloat b) noexcept {
    return {_mm256_cmp_ps(a.raw, b.raw, _CMP_LT_OQ)};
  }
  friend vmask<8> le(vfloat a, vfloat b) noexcept {
    return {_mm256_cmp_ps(a.raw, b.raw, _CMP_LE_OQ)};
  }
  friend vmask<8> gt(vfloat a, vfloat b) noexcept {
    return {_mm256_cmp_ps(a.raw, b.raw, _CMP_GT_OQ)};
  }
  friend vmask<8> ge(vfloat a, vfloat b) noexcept {
    return {_mm256_cmp_ps(a.raw, b.raw, _CMP_GE_OQ)};
  }
  friend vfloat select(vmask<8> m, vfloat a, vfloat b) noexcept {
    return {_mm256_blendv_ps(b.raw, a.raw, m.raw)};
  }
  friend vfloat vabs(vfloat a) noexcept {
    return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.raw)};
  }
  friend vfloat vsqrt(vfloat a) noexcept { return {_mm256_sqrt_ps(a.raw)}; }
  friend vfloat vfloor(vfloat a) noexcept { return {_mm256_floor_ps(a.raw)}; }
  friend vfloat fmadd(vfloat a, vfloat b, vfloat c) noexcept {
    return {_mm256_fmadd_ps(a.raw, b.raw, c.raw)};
  }
  friend vint<8> trunc_to_int(vfloat a) noexcept { return {_mm256_cvttps_epi32(a.raw)}; }
};

inline vfloat<8> to_float(vint<8> v) noexcept { return {_mm256_cvtepi32_ps(v.raw)}; }
inline vfloat<8> float_bits(vint<8> v) noexcept { return {_mm256_castsi256_ps(v.raw)}; }
inline vfloat<8> gather(const float* base, vint<8> idx) noexcept {
  return {_mm256_i32gather_ps(base, idx.raw, 4)};
}
inline vfloat<8> gather_masked(const float* base, vint<8> idx, vmask<8> m,
                               vfloat<8> src) noexcept {
  return {_mm256_mask_i32gather_ps(src.raw, base, idx.raw, m.raw, 4)};
}

#endif  // AVX-native width 8

// ---------------------------------------------------------------------------
// Composed widths: pairs of half-width vectors. The primary templates
// cover every width the active ISA does not provide natively (8 and 16 on
// NEON/scalar, 16 on AVX2); lane semantics are inherited from the halves.
// ---------------------------------------------------------------------------

template <int N>
struct vmask {
  static_assert(N == 8 || N == 16, "supported widths: 4, 8, 16");
  using half = vmask<N / 2>;
  half lo, hi;
  [[nodiscard]] static vmask from_bits(unsigned b) noexcept {
    return {half::from_bits(b & ((1u << (N / 2)) - 1u)), half::from_bits(b >> (N / 2))};
  }
  friend unsigned to_bits(vmask m) noexcept {
    return to_bits(m.lo) | (to_bits(m.hi) << (N / 2));
  }
  friend bool any(vmask m) noexcept { return any(m.lo) || any(m.hi); }
  friend bool all(vmask m) noexcept { return all(m.lo) && all(m.hi); }
  friend vmask operator&(vmask a, vmask b) noexcept {
    return {a.lo & b.lo, a.hi & b.hi};
  }
  friend vmask operator|(vmask a, vmask b) noexcept {
    return {a.lo | b.lo, a.hi | b.hi};
  }
  friend vmask andnot(vmask a, vmask b) noexcept {
    return {andnot(a.lo, b.lo), andnot(a.hi, b.hi)};
  }
};

template <int N>
struct vint {
  static_assert(N == 8 || N == 16, "supported widths: 4, 8, 16");
  using half = vint<N / 2>;
  half lo, hi;
  [[nodiscard]] static vint broadcast(std::int32_t v) noexcept {
    return {half::broadcast(v), half::broadcast(v)};
  }
  [[nodiscard]] std::array<std::int32_t, N> to_array() const noexcept {
    std::array<std::int32_t, N> out;
    const auto a = lo.to_array();
    const auto b = hi.to_array();
    for (std::size_t i = 0; i < N / 2; ++i) {
      out[i] = a[i];
      out[i + N / 2] = b[i];
    }
    return out;
  }
  friend vint operator+(vint a, vint b) noexcept {
    return {a.lo + b.lo, a.hi + b.hi};
  }
  friend vint operator<<(vint a, int count) noexcept {
    return {a.lo << count, a.hi << count};
  }
};

template <int N>
struct vfloat {
  static_assert(N == 8 || N == 16, "supported widths: 4, 8, 16");
  using half = vfloat<N / 2>;
  half lo, hi;
  static constexpr int kLanes = N;
  [[nodiscard]] static vfloat zero() noexcept { return {half::zero(), half::zero()}; }
  [[nodiscard]] static vfloat broadcast(float v) noexcept {
    return {half::broadcast(v), half::broadcast(v)};
  }
  [[nodiscard]] static vfloat loadu(const float* p) noexcept {
    return {half::loadu(p), half::loadu(p + N / 2)};
  }
  [[nodiscard]] static vfloat loadu_masked(const float* p, int n) noexcept {
    if (n <= N / 2) {
      return {half::loadu_masked(p, n), half::zero()};
    }
    return {half::loadu(p), half::loadu_masked(p + N / 2, n - N / 2)};
  }
  [[nodiscard]] static vfloat from_array(const std::array<float, N>& a) noexcept {
    return loadu(a.data());
  }
  void storeu(float* p) const noexcept {
    lo.storeu(p);
    hi.storeu(p + N / 2);
  }
  [[nodiscard]] std::array<float, N> to_array() const noexcept {
    std::array<float, N> out;
    storeu(out.data());
    return out;
  }
  friend vfloat operator+(vfloat a, vfloat b) noexcept {
    return {a.lo + b.lo, a.hi + b.hi};
  }
  friend vfloat operator-(vfloat a, vfloat b) noexcept {
    return {a.lo - b.lo, a.hi - b.hi};
  }
  friend vfloat operator*(vfloat a, vfloat b) noexcept {
    return {a.lo * b.lo, a.hi * b.hi};
  }
  friend vfloat operator/(vfloat a, vfloat b) noexcept {
    return {a.lo / b.lo, a.hi / b.hi};
  }
  friend vfloat operator-(vfloat a) noexcept { return {-a.lo, -a.hi}; }
  friend vmask<N> lt(vfloat a, vfloat b) noexcept {
    return {lt(a.lo, b.lo), lt(a.hi, b.hi)};
  }
  friend vmask<N> le(vfloat a, vfloat b) noexcept {
    return {le(a.lo, b.lo), le(a.hi, b.hi)};
  }
  friend vmask<N> gt(vfloat a, vfloat b) noexcept {
    return {gt(a.lo, b.lo), gt(a.hi, b.hi)};
  }
  friend vmask<N> ge(vfloat a, vfloat b) noexcept {
    return {ge(a.lo, b.lo), ge(a.hi, b.hi)};
  }
  friend vfloat select(vmask<N> m, vfloat a, vfloat b) noexcept {
    return {select(m.lo, a.lo, b.lo), select(m.hi, a.hi, b.hi)};
  }
  friend vfloat vabs(vfloat a) noexcept { return {vabs(a.lo), vabs(a.hi)}; }
  friend vfloat vsqrt(vfloat a) noexcept { return {vsqrt(a.lo), vsqrt(a.hi)}; }
  friend vfloat vfloor(vfloat a) noexcept { return {vfloor(a.lo), vfloor(a.hi)}; }
  friend vfloat fmadd(vfloat a, vfloat b, vfloat c) noexcept {
    return {fmadd(a.lo, b.lo, c.lo), fmadd(a.hi, b.hi, c.hi)};
  }
  friend vint<N> trunc_to_int(vfloat a) noexcept {
    return {trunc_to_int(a.lo), trunc_to_int(a.hi)};
  }
};

// Composed-width overloads of the vint-argument free functions. Plain
// function templates (not hidden friends): without a vfloat argument ADL
// could never find them inside the struct, and for native widths the
// non-template overloads above win overload resolution, so these only
// instantiate for genuinely composed widths.
template <int N>
[[nodiscard]] inline vfloat<N> to_float(vint<N> v) noexcept {
  return {to_float(v.lo), to_float(v.hi)};
}
template <int N>
[[nodiscard]] inline vfloat<N> float_bits(vint<N> v) noexcept {
  return {float_bits(v.lo), float_bits(v.hi)};
}
template <int N>
[[nodiscard]] inline vfloat<N> gather(const float* base, vint<N> idx) noexcept {
  return {gather(base, idx.lo), gather(base, idx.hi)};
}
template <int N>
[[nodiscard]] inline vfloat<N> gather_masked(const float* base, vint<N> idx,
                                             vmask<N> m, vfloat<N> src) noexcept {
  return {gather_masked(base, idx.lo, m.lo, src.lo),
          gather_masked(base, idx.hi, m.hi, src.hi)};
}

// ---------------------------------------------------------------------------
// Width 16 — AVX-512F native (otherwise the composed primary above)
// ---------------------------------------------------------------------------

#if defined(SFCVIS_SIMD_ISA_AVX512)

template <>
struct vmask<16> {
  __mmask16 raw;
  [[nodiscard]] static vmask from_bits(unsigned b) noexcept {
    return {static_cast<__mmask16>(b)};
  }
  friend unsigned to_bits(vmask m) noexcept { return m.raw; }
  friend bool any(vmask m) noexcept { return m.raw != 0; }
  friend bool all(vmask m) noexcept { return m.raw == 0xFFFFu; }
  friend vmask operator&(vmask a, vmask b) noexcept {
    return {static_cast<__mmask16>(a.raw & b.raw)};
  }
  friend vmask operator|(vmask a, vmask b) noexcept {
    return {static_cast<__mmask16>(a.raw | b.raw)};
  }
  friend vmask andnot(vmask a, vmask b) noexcept {
    return {static_cast<__mmask16>(a.raw & static_cast<__mmask16>(~b.raw))};
  }
};

template <>
struct vint<16> {
  __m512i raw;
  [[nodiscard]] static vint broadcast(std::int32_t v) noexcept {
    return {_mm512_set1_epi32(v)};
  }
  [[nodiscard]] std::array<std::int32_t, 16> to_array() const noexcept {
    alignas(64) std::array<std::int32_t, 16> out;
    _mm512_store_si512(out.data(), raw);
    return out;
  }
  friend vint operator+(vint a, vint b) noexcept { return {_mm512_add_epi32(a.raw, b.raw)}; }
  friend vint operator<<(vint a, int count) noexcept {
    return {_mm512_maskz_sll_epi32(static_cast<__mmask16>(0xFFFF), a.raw,
                                   _mm_cvtsi32_si128(count))};
  }
};

template <>
struct vfloat<16> {
  __m512 raw;
  static constexpr int kLanes = 16;
  [[nodiscard]] static vfloat zero() noexcept { return {_mm512_setzero_ps()}; }
  [[nodiscard]] static vfloat broadcast(float v) noexcept { return {_mm512_set1_ps(v)}; }
  [[nodiscard]] static vfloat loadu(const float* p) noexcept { return {_mm512_loadu_ps(p)}; }
  [[nodiscard]] static vfloat loadu_masked(const float* p, int n) noexcept {
    const auto m = static_cast<__mmask16>((1u << n) - 1u);
    return {_mm512_maskz_loadu_ps(m, p)};
  }
  [[nodiscard]] static vfloat from_array(const std::array<float, 16>& a) noexcept {
    return loadu(a.data());
  }
  void storeu(float* p) const noexcept { _mm512_storeu_ps(p, raw); }
  [[nodiscard]] std::array<float, 16> to_array() const noexcept {
    alignas(64) std::array<float, 16> out;
    _mm512_store_ps(out.data(), raw);
    return out;
  }
  friend vfloat operator+(vfloat a, vfloat b) noexcept { return {a.raw + b.raw}; }
  friend vfloat operator-(vfloat a, vfloat b) noexcept { return {a.raw - b.raw}; }
  friend vfloat operator*(vfloat a, vfloat b) noexcept { return {a.raw * b.raw}; }
  friend vfloat operator/(vfloat a, vfloat b) noexcept { return {a.raw / b.raw}; }
  friend vfloat operator-(vfloat a) noexcept {
    return {_mm512_castsi512_ps(_mm512_xor_si512(
        _mm512_castps_si512(a.raw), _mm512_set1_epi32(INT32_C(0x80000000))))};
  }
  friend vmask<16> lt(vfloat a, vfloat b) noexcept {
    return {_mm512_cmp_ps_mask(a.raw, b.raw, _CMP_LT_OQ)};
  }
  friend vmask<16> le(vfloat a, vfloat b) noexcept {
    return {_mm512_cmp_ps_mask(a.raw, b.raw, _CMP_LE_OQ)};
  }
  friend vmask<16> gt(vfloat a, vfloat b) noexcept {
    return {_mm512_cmp_ps_mask(a.raw, b.raw, _CMP_GT_OQ)};
  }
  friend vmask<16> ge(vfloat a, vfloat b) noexcept {
    return {_mm512_cmp_ps_mask(a.raw, b.raw, _CMP_GE_OQ)};
  }
  friend vfloat select(vmask<16> m, vfloat a, vfloat b) noexcept {
    return {_mm512_mask_blend_ps(m.raw, b.raw, a.raw)};
  }
  friend vfloat vabs(vfloat a) noexcept {
    // Explicit sign-bit clear; _mm512_abs_ps & friends route through
    // undefined-passthrough builtins that trip -Wmaybe-uninitialized.
    return {_mm512_castsi512_ps(_mm512_and_si512(
        _mm512_castps_si512(a.raw), _mm512_set1_epi32(INT32_C(0x7FFFFFFF))))};
  }
  friend vfloat vsqrt(vfloat a) noexcept {
    return {_mm512_maskz_sqrt_ps(static_cast<__mmask16>(0xFFFF), a.raw)};
  }
  friend vfloat vfloor(vfloat a) noexcept {
    return {_mm512_maskz_roundscale_ps(static_cast<__mmask16>(0xFFFF), a.raw,
                                       _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC)};
  }
  friend vfloat fmadd(vfloat a, vfloat b, vfloat c) noexcept {
    return {_mm512_fmadd_ps(a.raw, b.raw, c.raw)};
  }
  friend vint<16> trunc_to_int(vfloat a) noexcept {
    return {_mm512_maskz_cvttps_epi32(static_cast<__mmask16>(0xFFFF), a.raw)};
  }
};

inline vfloat<16> to_float(vint<16> v) noexcept {
  return {_mm512_maskz_cvtepi32_ps(static_cast<__mmask16>(0xFFFF), v.raw)};
}
inline vfloat<16> float_bits(vint<16> v) noexcept { return {_mm512_castsi512_ps(v.raw)}; }
inline vfloat<16> gather(const float* base, vint<16> idx) noexcept {
  return {_mm512_mask_i32gather_ps(_mm512_setzero_ps(),
                                   static_cast<__mmask16>(0xFFFF), idx.raw,
                                   base, 4)};
}
inline vfloat<16> gather_masked(const float* base, vint<16> idx, vmask<16> m,
                                vfloat<16> src) noexcept {
  return {_mm512_mask_i32gather_ps(src.raw, m.raw, idx.raw, base, 4)};
}

#endif  // AVX-512 width 16

// ---------------------------------------------------------------------------
// Width-agnostic helpers
// ---------------------------------------------------------------------------

/// std::min semantics per lane: (b < a) ? b : a (not x86 minps).
template <class VF>
[[nodiscard]] inline VF vmin(VF a, VF b) noexcept {
  return select(lt(b, a), b, a);
}

/// std::max semantics per lane: (a < b) ? b : a (not x86 maxps).
template <class VF>
[[nodiscard]] inline VF vmax(VF a, VF b) noexcept {
  return select(lt(a, b), b, a);
}

/// a*b + c with the compiler's contraction rules (fuses exactly when the
/// equivalent scalar expression would) — the op bit-identical kernels use.
template <class VF>
[[nodiscard]] inline VF mul_add(VF a, VF b, VF c) noexcept {
  return a * b + c;
}

/// Sequential lane sum (lane 0 first — one documented order on every ISA).
template <int N>
[[nodiscard]] inline float reduce_add(const vfloat<N>& v) noexcept {
  const auto a = v.to_array();
  float sum = 0.0f;
  for (std::size_t i = 0; i < static_cast<std::size_t>(N); ++i) {
    sum += a[i];
  }
  return sum;
}

/// exp(-u) for u >= 0 — the vector twin of filters::fast_exp_neg, same
/// constants and expression shapes, so every lane is bit-identical to the
/// scalar call (tests/test_simd.cpp pins this across the LUT domain).
/// Do not pass negative or NaN u.
template <int N>
[[nodiscard]] inline vfloat<N> fast_exp_neg(vfloat<N> u) noexcept {
  using VF = vfloat<N>;
  const VF k_log2e = VF::broadcast(1.44269504088896341f);
  const VF k_ln2 = VF::broadcast(0.69314718055994531f);
  const VF k_magic = VF::broadcast(12582912.0f);  // 1.5 * 2^23: round-to-nearest
  VF t = (-u) * k_log2e;
  const VF k_knee = VF::broadcast(-125.0f);
  t = select(lt(t, k_knee), k_knee, t);
  const VF n = (t + k_magic) - k_magic;
  const VF g = (t - n) * k_ln2;
  VF p = VF::broadcast(1.0f / 720.0f);
  p = p * g + VF::broadcast(1.0f / 120.0f);
  p = p * g + VF::broadcast(1.0f / 24.0f);
  p = p * g + VF::broadcast(1.0f / 6.0f);
  p = p * g + VF::broadcast(0.5f);
  p = p * g + VF::broadcast(1.0f);
  p = p * g + VF::broadcast(1.0f);
  const vint<N> ni = trunc_to_int(n);
  const VF scale = float_bits((ni + vint<N>::broadcast(127)) << 23);
  return p * scale;
}

}  // namespace sfcvis::simd
