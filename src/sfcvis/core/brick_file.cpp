#include "sfcvis/core/brick_file.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>

#include "sfcvis/core/gmorton.hpp"
#include "sfcvis/core/layout.hpp"
#include "sfcvis/core/morton.hpp"
#include "sfcvis/core/volume.hpp"

namespace sfcvis::core {

namespace {

constexpr char kMagic[8] = {'S', 'F', 'C', 'B', 'R', 'K', '0', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kFixedHeaderBytes = 48;
constexpr std::size_t kPayloadAlign = 64;

[[noreturn]] void fail(const std::string& path, const std::string& reason) {
  throw std::runtime_error("brick file \"" + path + "\": " + reason);
}

/// RAII stdio handle (keeps every early-throw path leak-free).
struct File {
  std::FILE* f = nullptr;
  File(const std::string& path, const char* mode) : f(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
};

void put_u32(unsigned char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(unsigned char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

[[nodiscard]] std::uint64_t payload_offset_for(std::size_t interleave_len) {
  const std::size_t raw = kFixedHeaderBytes + interleave_len;
  return (raw + kPayloadAlign - 1) / kPayloadAlign * kPayloadAlign;
}

void validate_brick_edge(std::uint32_t edge) {
  if (edge < 2 || edge > 64 || !std::has_single_bit(edge)) {
    throw std::invalid_argument("brick_edge must be a power of two in [2, 64], got " +
                                std::to_string(edge));
  }
}

}  // namespace

namespace detail {

std::vector<std::uint32_t> brick_inner_offsets(std::uint32_t edge, LayoutKind inner_kind,
                                               std::uint32_t inner_tile,
                                               const std::string& interleave) {
  validate_brick_edge(edge);
  const Extents3D cube = Extents3D::cube(edge);
  const std::size_t elems = static_cast<std::size_t>(edge) * edge * edge;
  const unsigned s = log2_pow2(edge);

  std::vector<std::uint32_t> lut(elems);
  const auto fill = [&](const auto& layout) {
    if (layout.required_capacity() != elems) {
      // Cannot happen for a pow2 cube (every in-core layout's padded space
      // is then exactly the cube); kept as a hard check because the LUT
      // indexes raw brick storage.
      throw std::runtime_error("brick inner layout capacity mismatch");
    }
    for (std::uint32_t lk = 0; lk < edge; ++lk) {
      for (std::uint32_t lj = 0; lj < edge; ++lj) {
        for (std::uint32_t li = 0; li < edge; ++li) {
          lut[li + (static_cast<std::size_t>(lj) << s) +
              (static_cast<std::size_t>(lk) << (2 * s))] =
              static_cast<std::uint32_t>(layout.index(li, lj, lk));
        }
      }
    }
  };

  switch (inner_kind) {
    case LayoutKind::kArray:
      fill(ArrayOrderLayout(cube));
      return lut;
    case LayoutKind::kZOrder:
      fill(ZOrderLayout(cube));
      return lut;
    case LayoutKind::kTiled: {
      std::uint32_t tile = inner_tile == 0 ? 8 : inner_tile;
      tile = std::min(std::bit_floor(tile), edge);
      fill(TiledLayout(cube, tile));
      return lut;
    }
    case LayoutKind::kHilbert:
      fill(HilbertLayout(cube));
      return lut;
    case LayoutKind::kGMorton: {
      const InterleavePattern pattern = interleave.empty()
                                            ? InterleavePattern::canonical(cube)
                                            : InterleavePattern(interleave, cube);
      fill(GeneralizedMortonLayout(cube, pattern));
      return lut;
    }
    case LayoutKind::kBricked:
      break;
  }
  throw std::invalid_argument("brick inner layout must be an in-core LayoutKind");
}

std::vector<std::uint64_t> brick_codes(const Extents3D& grid) {
  std::vector<std::uint64_t> codes;
  codes.reserve(grid.size());
  for (std::uint32_t bk = 0; bk < grid.nz; ++bk) {
    for (std::uint32_t bj = 0; bj < grid.ny; ++bj) {
      for (std::uint32_t bi = 0; bi < grid.nx; ++bi) {
        codes.push_back(morton_encode_3d(bi, bj, bk));
      }
    }
  }
  std::sort(codes.begin(), codes.end());
  return codes;
}

}  // namespace detail

BrickFileInfo pack_brick_file(const std::string& path, const AnyVolume& src,
                              const BrickPackOptions& opts) {
  validate_brick_edge(opts.brick_edge);
  BrickFileInfo info;
  info.extents = src.extents();
  validate_extents(info.extents);
  info.brick_edge = opts.brick_edge;
  info.inner_kind = opts.inner_kind;
  info.inner_tile =
      std::min(std::bit_floor(opts.inner_tile == 0 ? 8u : opts.inner_tile), opts.brick_edge);
  info.interleave = opts.interleave;
  info.payload_offset = payload_offset_for(info.interleave.size());

  // Validates the inner kind + interleave before any byte is written.
  const std::vector<std::uint32_t> lut = detail::brick_inner_offsets(
      info.brick_edge, info.inner_kind, info.inner_tile, info.interleave);
  const Extents3D grid = info.brick_grid();
  const std::vector<std::uint64_t> codes = detail::brick_codes(grid);
  info.brick_count = codes.size();

  File file(path, "wb");
  if (file.f == nullptr) {
    fail(path, "cannot open for writing");
  }

  std::vector<unsigned char> header(info.payload_offset, 0);
  std::memcpy(header.data(), kMagic, sizeof(kMagic));
  put_u32(header.data() + 8, kVersion);
  put_u32(header.data() + 12, info.extents.nx);
  put_u32(header.data() + 16, info.extents.ny);
  put_u32(header.data() + 20, info.extents.nz);
  put_u32(header.data() + 24, info.brick_edge);
  put_u32(header.data() + 28, static_cast<std::uint32_t>(info.inner_kind));
  put_u32(header.data() + 32, info.inner_tile);
  put_u32(header.data() + 36, static_cast<std::uint32_t>(info.interleave.size()));
  put_u64(header.data() + 40, info.brick_count);
  std::memcpy(header.data() + kFixedHeaderBytes, info.interleave.data(),
              info.interleave.size());
  if (std::fwrite(header.data(), 1, header.size(), file.f) != header.size()) {
    fail(path, "header write failed");
  }

  const std::uint32_t edge = info.brick_edge;
  const unsigned s = log2_pow2(edge);
  const Extents3D& e = info.extents;
  std::vector<float> scratch(info.brick_elems());
  bool ok = true;
  src.visit([&](const auto& g) {
    for (const std::uint64_t code : codes) {
      const MortonCoord3D b = morton_decode_3d(code);
      const std::uint32_t i0 = b.x * edge;
      const std::uint32_t j0 = b.y * edge;
      const std::uint32_t k0 = b.z * edge;
      for (std::uint32_t lk = 0; lk < edge; ++lk) {
        for (std::uint32_t lj = 0; lj < edge; ++lj) {
          for (std::uint32_t li = 0; li < edge; ++li) {
            const std::uint32_t i = i0 + li;
            const std::uint32_t j = j0 + lj;
            const std::uint32_t k = k0 + lk;
            const float v = e.contains(i, j, k) ? g.at(i, j, k) : 0.0f;
            scratch[lut[li + (static_cast<std::size_t>(lj) << s) +
                        (static_cast<std::size_t>(lk) << (2 * s))]] = v;
          }
        }
      }
      if (std::fwrite(scratch.data(), sizeof(float), scratch.size(), file.f) !=
          scratch.size()) {
        ok = false;
        return;
      }
    }
  });
  if (!ok || std::fflush(file.f) != 0) {
    fail(path, "payload write failed (disk full?)");
  }
  return info;
}

BrickFileInfo read_brick_file_header(const std::string& path) {
  File file(path, "rb");
  if (file.f == nullptr) {
    fail(path, "cannot open for reading");
  }
  unsigned char fixed[kFixedHeaderBytes];
  if (std::fread(fixed, 1, sizeof(fixed), file.f) != sizeof(fixed)) {
    fail(path, "truncated header (file shorter than " +
                   std::to_string(kFixedHeaderBytes) + " bytes)");
  }
  if (std::memcmp(fixed, kMagic, sizeof(kMagic)) != 0) {
    fail(path, "bad magic (not an SFCBRK01 brick file)");
  }
  if (get_u32(fixed + 8) != kVersion) {
    fail(path, "unsupported version " + std::to_string(get_u32(fixed + 8)));
  }

  BrickFileInfo info;
  info.extents = Extents3D{get_u32(fixed + 12), get_u32(fixed + 16), get_u32(fixed + 20)};
  info.brick_edge = get_u32(fixed + 24);
  const std::uint32_t inner = get_u32(fixed + 28);
  info.inner_tile = get_u32(fixed + 32);
  const std::uint32_t interleave_len = get_u32(fixed + 36);
  info.brick_count = get_u64(fixed + 40);

  try {
    validate_extents(info.extents);
    validate_brick_edge(info.brick_edge);
  } catch (const std::invalid_argument& ex) {
    fail(path, std::string("corrupt header: ") + ex.what());
  }
  if (inner > static_cast<std::uint32_t>(LayoutKind::kGMorton)) {
    fail(path, "corrupt header: inner layout kind " + std::to_string(inner) +
                   " is not an in-core LayoutKind");
  }
  info.inner_kind = static_cast<LayoutKind>(inner);
  if (info.inner_tile == 0 || info.inner_tile > info.brick_edge ||
      !std::has_single_bit(info.inner_tile)) {
    fail(path, "corrupt header: inner tile " + std::to_string(info.inner_tile) +
                   " (must be a pow2 <= brick edge)");
  }
  if (interleave_len > 3 * kMortonMaxBits3D) {
    fail(path, "corrupt header: interleave length " + std::to_string(interleave_len));
  }
  info.interleave.resize(interleave_len);
  if (interleave_len != 0 &&
      std::fread(info.interleave.data(), 1, interleave_len, file.f) != interleave_len) {
    fail(path, "truncated header (interleave pattern cut short)");
  }
  info.payload_offset = payload_offset_for(interleave_len);

  const std::uint64_t expected_bricks = info.brick_grid().size();
  if (info.brick_count != expected_bricks) {
    fail(path, "corrupt header: brick count " + std::to_string(info.brick_count) +
                   " does not match the brick grid (" + std::to_string(expected_bricks) +
                   " bricks)");
  }
  if (info.brick_count >
      (std::numeric_limits<std::uint64_t>::max() - info.payload_offset) /
          info.brick_bytes()) {
    fail(path, "corrupt header: payload size overflows");
  }

  if (std::fseek(file.f, 0, SEEK_END) != 0) {
    fail(path, "seek failed");
  }
  const long end = std::ftell(file.f);
  if (end < 0) {
    fail(path, "tell failed");
  }
  const auto actual = static_cast<std::uint64_t>(end);
  const std::uint64_t expected = info.expected_file_size();
  if (actual != expected) {
    fail(path, "file size " + std::to_string(actual) + " does not match header (expected " +
                   std::to_string(expected) + (actual < expected ? "; truncated?)" : ")"));
  }
  return info;
}

}  // namespace sfcvis::core
