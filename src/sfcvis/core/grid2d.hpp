// Grid2D: owning 2D image container with layout-policy-controlled element
// placement — the image counterpart of Grid3D.
#pragma once

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "sfcvis/core/align.hpp"
#include "sfcvis/core/layout2d.hpp"

namespace sfcvis::core {

/// Owning 2D image grid; see Grid3D for the contract (64-byte aligned,
/// padding value-initialized and never visited).
template <class T, Layout2D LayoutT>
class Grid2D {
 public:
  using value_type = T;
  using layout_type = LayoutT;

  Grid2D() = default;
  explicit Grid2D(LayoutT layout)
      : layout_(std::move(layout)), data_(layout_.required_capacity()) {}
  explicit Grid2D(const Extents2D& e) : Grid2D(LayoutT(e)) {}

  [[nodiscard]] T& at(std::uint32_t i, std::uint32_t j) noexcept {
    assert(layout_.extents().contains(i, j));
    return data_[layout_.index(i, j)];
  }
  [[nodiscard]] const T& at(std::uint32_t i, std::uint32_t j) const noexcept {
    assert(layout_.extents().contains(i, j));
    return data_[layout_.index(i, j)];
  }

  /// Border-clamped access.
  [[nodiscard]] const T& at_clamped(std::int64_t i, std::int64_t j) const noexcept {
    const auto& e = layout_.extents();
    const auto ci = static_cast<std::uint32_t>(std::clamp<std::int64_t>(i, 0, e.nx - 1));
    const auto cj = static_cast<std::uint32_t>(std::clamp<std::int64_t>(j, 0, e.ny - 1));
    return data_[layout_.index(ci, cj)];
  }

  [[nodiscard]] const LayoutT& layout() const noexcept { return layout_; }
  [[nodiscard]] const Extents2D& extents() const noexcept { return layout_.extents(); }
  [[nodiscard]] std::size_t size() const noexcept { return layout_.extents().size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return data_.size(); }
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  /// fn(i, j) over logical pixels, row-major order (layout-independent).
  template <class Fn>
  void for_each_index(Fn&& fn) const {
    const auto& e = layout_.extents();
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        fn(i, j);
      }
    }
  }

  template <class Fn>
  void fill_from(Fn&& fn) {
    for_each_index([&](std::uint32_t i, std::uint32_t j) { at(i, j) = fn(i, j); });
  }

  template <Layout2D OtherLayoutT>
  void copy_from(const Grid2D<T, OtherLayoutT>& other) {
    assert(extents() == other.extents());
    for_each_index([&](std::uint32_t i, std::uint32_t j) { at(i, j) = other.at(i, j); });
  }

 private:
  LayoutT layout_{};
  std::vector<T, AlignedAllocator<T, kCacheLineBytes>> data_;
};

/// Builds a grid of `DstLayoutT` with the same logical contents as `src`.
template <Layout2D DstLayoutT, class T, Layout2D SrcLayoutT>
[[nodiscard]] Grid2D<T, DstLayoutT> convert_layout2d(const Grid2D<T, SrcLayoutT>& src) {
  Grid2D<T, DstLayoutT> dst{DstLayoutT(src.extents())};
  dst.copy_from(src);
  return dst;
}

}  // namespace sfcvis::core
