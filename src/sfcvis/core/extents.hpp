// Basic 3D extent arithmetic shared by every layout and kernel.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace sfcvis::core {

/// Logical size of a 3D structured grid. X is the fastest-varying axis in
/// the array-order sense throughout the library.
struct Extents3D {
  std::uint32_t nx = 0;
  std::uint32_t ny = 0;
  std::uint32_t nz = 0;

  friend constexpr bool operator==(const Extents3D&, const Extents3D&) = default;

  /// Number of logical elements (not counting any layout padding).
  [[nodiscard]] constexpr std::size_t size() const noexcept {
    return static_cast<std::size_t>(nx) * ny * nz;
  }

  [[nodiscard]] constexpr bool empty() const noexcept { return size() == 0; }

  /// True when (i, j, k) addresses a logical element.
  [[nodiscard]] constexpr bool contains(std::uint32_t i, std::uint32_t j,
                                        std::uint32_t k) const noexcept {
    return i < nx && j < ny && k < nz;
  }

  /// True when all three extents are powers of two (the sweet spot for SFC
  /// layouts, per the paper's Sec. V discussion).
  [[nodiscard]] constexpr bool is_pow2() const noexcept {
    return std::has_single_bit(nx) && std::has_single_bit(ny) && std::has_single_bit(nz);
  }

  /// Returns a cube extent n*n*n.
  [[nodiscard]] static constexpr Extents3D cube(std::uint32_t n) noexcept {
    return Extents3D{n, n, n};
  }
};

/// Smallest power of two >= v (v = 0 maps to 1).
[[nodiscard]] constexpr std::uint32_t next_pow2(std::uint32_t v) noexcept {
  return v <= 1 ? 1u : std::bit_ceil(v);
}

/// Per-axis power-of-two padding of an extent.
[[nodiscard]] constexpr Extents3D padded_pow2(const Extents3D& e) noexcept {
  return Extents3D{next_pow2(e.nx), next_pow2(e.ny), next_pow2(e.nz)};
}

/// log2 of a power of two.
[[nodiscard]] constexpr unsigned log2_pow2(std::uint32_t v) noexcept {
  return static_cast<unsigned>(std::bit_width(v) - 1);
}

/// Throws std::invalid_argument when an extent is zero or exceeds what a
/// 64-bit SFC index can address (2^21 per axis).
inline void validate_extents(const Extents3D& e) {
  if (e.nx == 0 || e.ny == 0 || e.nz == 0) {
    throw std::invalid_argument("Extents3D: all extents must be nonzero, got " +
                                std::to_string(e.nx) + "x" + std::to_string(e.ny) + "x" +
                                std::to_string(e.nz));
  }
  constexpr std::uint32_t kMax = 1u << 21;
  if (e.nx > kMax || e.ny > kMax || e.nz > kMax) {
    throw std::invalid_argument("Extents3D: extents above 2^21 are not addressable");
  }
}

}  // namespace sfcvis::core
