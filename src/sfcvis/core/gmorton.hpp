// Generalized Morton layouts: arbitrary per-axis bit-interleave patterns.
//
// A canonical Z-order index interleaves the coordinate bits round-robin
// (x0 y0 z0 x1 y1 z1 ...). Swatman et al. (arXiv:2309.07002) observe that
// this is one point in a much larger family: ANY assignment of the padded
// extents' coordinate bit-planes to output bit positions yields a valid
// bijective layout, and which member of the family is fastest depends on
// the kernel's access pattern, the volume shape, and the machine. This
// header provides that family:
//
//  * InterleavePattern — a validated interleave string such as
//    "zyxzyxzzyyxx". The string is read most-significant-bit first
//    (leftmost character = highest output bit), so canonical Z-order over
//    a cube is "zyxzyx...zyx", row-major array order is "zz..yy..xx"
//    (x fastest), and a pow2 tiled layout groups the low bits of each
//    axis at the bottom. Those three classic layouts are exactly the
//    degenerate points the generators below produce (pinned by
//    tests/test_gmorton.cpp).
//  * GeneralizedMortonLayout — the Layout3D policy: per-axis deposit
//    tables exactly like zorder_tables.hpp (index = xtab[i] + ytab[j] +
//    ztab[k], three loads and two adds regardless of the pattern — the
//    paper's equal-footing property holds for every family member), plus
//    per-axis bit masks so neighbour stepping reuses the masked
//    ripple-add idiom of core/morton.hpp on arbitrary patterns.
//
// tools/layout_tuner searches this family per (kernel, shape, machine);
// exec::LayoutRegistry persists the winners.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sfcvis/core/extents.hpp"
#include "sfcvis/core/zorder_tables.hpp"

namespace sfcvis::core {

/// A validated generalized-Morton interleave pattern for one padded
/// extent. The string is most-significant-bit first; within one axis the
/// n-th occurrence of its character counted from the RIGHT carries
/// coordinate bit-plane n, so every axis's bit-planes appear in
/// increasing output position — the property the ripple-add stepping
/// relies on.
class InterleavePattern {
 public:
  InterleavePattern() = default;

  /// Parses and validates `pattern` against `extents`: the string must
  /// contain only 'x', 'y', 'z' and exactly log2(padded axis) characters
  /// per axis. Throws std::invalid_argument with a message naming the
  /// expected per-axis counts otherwise.
  InterleavePattern(std::string_view pattern, const Extents3D& extents);

  /// Canonical Z-order member: round-robin x, y, z from the least
  /// significant bit while an axis still has bits left — bit-identical to
  /// ZOrderTables (zorder_tables.cpp uses the same assignment).
  [[nodiscard]] static InterleavePattern canonical(const Extents3D& extents);

  /// Row-major member: all x bits lowest, then y, then z — array order
  /// over the padded extents ("zz..yy..xx").
  [[nodiscard]] static InterleavePattern array_order(const Extents3D& extents);

  /// Pow2-tiled member: row-major within a (bx, by, bz) tile, then
  /// row-major over the tile grid. Matches TiledLayout bit-for-bit on
  /// power-of-two extents.
  [[nodiscard]] static InterleavePattern tiled(const Extents3D& extents, std::uint32_t bx,
                                               std::uint32_t by, std::uint32_t bz);

  /// The MSB-first string ("zyxzyx..." style).
  [[nodiscard]] const std::string& str() const noexcept { return str_; }

  /// Padded (power-of-two per axis) extents the pattern addresses.
  [[nodiscard]] const Extents3D& padded() const noexcept { return padded_; }

  /// Number of bit-planes of `axis` (0 = x).
  [[nodiscard]] unsigned axis_bits(unsigned axis) const noexcept { return bits_[axis]; }

  /// Output bit position of bit-plane `plane` of `axis`.
  [[nodiscard]] unsigned bit_position(unsigned axis, unsigned plane) const noexcept {
    return bitpos_[axis][plane];
  }

  /// Total output bits (== sum of axis_bits).
  [[nodiscard]] unsigned total_bits() const noexcept {
    return bits_[0] + bits_[1] + bits_[2];
  }

  friend bool operator==(const InterleavePattern& a, const InterleavePattern& b) {
    return a.str_ == b.str_ && a.padded_ == b.padded_;
  }

 private:
  struct Trusted {};  // disambiguates from the validating public ctor
  InterleavePattern(Trusted, std::string str, const Extents3D& padded);

  std::string str_;
  Extents3D padded_{};
  unsigned bits_[3] = {0, 0, 0};
  unsigned bitpos_[3][22] = {};
};

/// Stable 64-bit FNV-1a hash of an interleave string — the per-layout
/// salt StructureCache keys and registry lookups mix in so two
/// generalized-Morton volumes with different patterns never share a
/// derived-structure entry.
[[nodiscard]] constexpr std::uint64_t interleave_hash(std::string_view pattern) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : pattern) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  }
  return h;
}

/// Precomputed per-axis deposit tables for one interleave pattern —
/// the generalized twin of ZOrderTables (same index arithmetic, arbitrary
/// bit placement) plus the per-axis masks neighbour stepping needs.
class GMortonTables {
 public:
  GMortonTables() = default;
  explicit GMortonTables(const Extents3D& logical, const InterleavePattern& pattern);

  /// Combined index of (i, j, k): three loads, two adds. Precondition:
  /// coordinates inside the padded extents. The per-axis patterns are
  /// disjoint, so + and | are interchangeable.
  [[nodiscard]] std::size_t index(std::uint32_t i, std::uint32_t j,
                                  std::uint32_t k) const noexcept {
    return static_cast<std::size_t>(xtab_[i] + ytab_[j] + ztab_[k]);
  }

  [[nodiscard]] const Extents3D& padded() const noexcept { return pattern_.padded(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const InterleavePattern& pattern() const noexcept { return pattern_; }

  /// Inverse mapping: recovers (i, j, k) from a linear index.
  [[nodiscard]] Coord3D decode(std::size_t index) const noexcept;

  /// Deposited bit pattern of coordinate `c` on `axis` (0 = x) — the
  /// per-axis summand of index(), for row walks that hold the other two
  /// axes fixed.
  [[nodiscard]] std::uint64_t axis_entry(unsigned axis, std::uint32_t c) const noexcept {
    const std::vector<std::uint64_t>& tab = axis == 0 ? xtab_ : axis == 1 ? ytab_ : ztab_;
    return tab[c];
  }

  /// Bit mask of the output positions `axis` occupies.
  [[nodiscard]] std::uint64_t axis_mask(unsigned axis) const noexcept { return mask_[axis]; }

  /// Index of the +1 neighbour along `axis` — the masked ripple-add of
  /// core/morton.hpp with the pattern's axis mask: force the other axes'
  /// bits to 1 so the carry ripples straight through them, add the
  /// dilated unit (the mask's lowest set bit), re-mask. Axis arithmetic
  /// wraps modulo the padded axis; stepping inside the grid never wraps.
  [[nodiscard]] std::uint64_t inc_axis(std::uint64_t m, unsigned axis) const noexcept {
    const std::uint64_t mask = mask_[axis];
    return (((m | ~mask) + (mask & (~mask + 1))) & mask) | (m & ~mask);
  }

  /// Index of the (coordinate + d) neighbour along `axis` (d may be
  /// negative): the delta is reduced modulo the padded axis, dilated into
  /// the axis' bit positions, and ripple-added — one add regardless of
  /// |d|, no decode/re-encode.
  [[nodiscard]] std::uint64_t step_axis(std::uint64_t m, unsigned axis,
                                        std::int32_t d) const noexcept {
    const unsigned bits = pattern_.axis_bits(axis);
    const std::uint32_t wrapped =
        static_cast<std::uint32_t>(d) & ((bits >= 32 ? 0u : (1u << bits)) - 1u);
    const std::uint64_t mask = mask_[axis];
    const std::uint64_t dd = deposit(wrapped, mask);
    return (((m | ~mask) + dd) & mask) | (m & ~mask);
  }

  /// Scatters the low bits of `v` onto the set bits of `mask` (portable
  /// PDEP): bit n of `v` lands on the n-th set bit of `mask`.
  [[nodiscard]] static std::uint64_t deposit(std::uint64_t v, std::uint64_t mask) noexcept {
    std::uint64_t out = 0;
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      if ((v & 1u) != 0) {
        out |= m & (~m + 1);
      }
      v >>= 1;
    }
    return out;
  }

 private:
  InterleavePattern pattern_;
  std::size_t capacity_ = 0;
  std::uint64_t mask_[3] = {0, 0, 0};
  std::vector<std::uint64_t> xtab_, ytab_, ztab_;
};

/// Generalized-Morton layout policy: any interleave pattern, served by the
/// same three-loads-two-adds arithmetic as the fixed layouts. Tables are
/// shared_ptr-held so layout objects are cheap to copy into per-thread
/// kernel state (same discipline as ZOrderLayout).
class GeneralizedMortonLayout {
 public:
  GeneralizedMortonLayout() = default;

  /// Canonical-pattern member (degenerate Z-order): what extents-only
  /// construction (conversion helpers, default make_volume) yields.
  explicit GeneralizedMortonLayout(const Extents3D& e)
      : GeneralizedMortonLayout(e, InterleavePattern::canonical(e)) {}

  GeneralizedMortonLayout(const Extents3D& e, const InterleavePattern& pattern)
      : extents_(e), tables_(std::make_shared<GMortonTables>(e, pattern)) {}

  /// Convenience: parse + validate the string form.
  GeneralizedMortonLayout(const Extents3D& e, std::string_view pattern)
      : GeneralizedMortonLayout(e, InterleavePattern(pattern, e)) {}

  [[nodiscard]] std::size_t index(std::uint32_t i, std::uint32_t j,
                                  std::uint32_t k) const noexcept {
    return tables_->index(i, j, k);
  }

  [[nodiscard]] const Extents3D& extents() const noexcept { return extents_; }
  [[nodiscard]] std::size_t required_capacity() const noexcept {
    return tables_ ? tables_->capacity() : 0;
  }
  [[nodiscard]] static constexpr std::string_view name() noexcept { return "gmorton"; }

  /// Inverse mapping (layout explorer, conversion checks).
  [[nodiscard]] Coord3D decode(std::size_t idx) const noexcept { return tables_->decode(idx); }

  [[nodiscard]] const GMortonTables& tables() const noexcept { return *tables_; }
  [[nodiscard]] const InterleavePattern& pattern() const noexcept {
    return tables_->pattern();
  }

 private:
  Extents3D extents_{};
  std::shared_ptr<const GMortonTables> tables_;
};

/// Per-layout salt for derived-structure cache keys: 0 for the fixed
/// layouts (their identity is fully captured by the volume's storage
/// pointer + extents), the interleave hash for generalized Morton (two
/// patterns over one shape must never share an entry).
template <class L>
[[nodiscard]] constexpr std::uint64_t layout_cache_salt(const L&) noexcept {
  return 0;
}
[[nodiscard]] inline std::uint64_t layout_cache_salt(
    const GeneralizedMortonLayout& layout) noexcept {
  return interleave_hash(layout.pattern().str());
}

}  // namespace sfcvis::core
