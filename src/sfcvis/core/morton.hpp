// Morton (Z-order) encoding and decoding for 2D and 3D coordinates.
//
// The Z-order curve maps a d-dimensional coordinate to a 1-D index by
// interleaving the bits of each coordinate component.  Points that are close
// in index space land close in the 1-D address space at every power-of-two
// scale, which is the spatial-locality property the library is built around
// (Bethel et al., HPDIC 2015, Sec. II-B).
//
// Three interchangeable codec strategies are provided; all produce identical
// indices and are cross-checked by the test suite:
//
//  * magic-bits:  branch-free parallel bit deposit via shift/mask ladders.
//    The portable default.
//  * lut:         byte-at-a-time lookup tables (256 entries per table).
//  * bmi2:        single-instruction PDEP/PEXT when compiled with -mbmi2.
//
// The per-axis table scheme used by layouts (one table per axis holding the
// pre-interleaved bit pattern of every possible coordinate value, after
// Pascucci & Frank 2001) lives in zorder_tables.hpp / layout.hpp.
#pragma once

#include <cstdint>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

namespace sfcvis::core {

/// Maximum bits per axis representable in a 64-bit 3D Morton index.
inline constexpr unsigned kMortonMaxBits3D = 21;
/// Maximum bits per axis representable in a 64-bit 2D Morton index.
inline constexpr unsigned kMortonMaxBits2D = 32;

// ---------------------------------------------------------------------------
// Magic-bits codecs
// ---------------------------------------------------------------------------

/// Spreads the low 21 bits of `v` so bit i moves to bit 3*i.
[[nodiscard]] constexpr std::uint64_t part_bits_3(std::uint64_t v) noexcept {
  v &= 0x1fffff;  // 21 bits
  v = (v | (v << 32)) & 0x001f00000000ffffULL;
  v = (v | (v << 16)) & 0x001f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

/// Inverse of part_bits_3: gathers every third bit back into the low 21 bits.
[[nodiscard]] constexpr std::uint64_t compact_bits_3(std::uint64_t v) noexcept {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x001f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x001f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffff;
  return v;
}

/// Spreads the low 32 bits of `v` so bit i moves to bit 2*i.
[[nodiscard]] constexpr std::uint64_t part_bits_2(std::uint64_t v) noexcept {
  v &= 0xffffffffULL;
  v = (v | (v << 16)) & 0x0000ffff0000ffffULL;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

/// Inverse of part_bits_2: gathers every second bit back into the low 32 bits.
[[nodiscard]] constexpr std::uint64_t compact_bits_2(std::uint64_t v) noexcept {
  v &= 0x5555555555555555ULL;
  v = (v ^ (v >> 1)) & 0x3333333333333333ULL;
  v = (v ^ (v >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v ^ (v >> 4)) & 0x00ff00ff00ff00ffULL;
  v = (v ^ (v >> 8)) & 0x0000ffff0000ffffULL;
  v = (v ^ (v >> 16)) & 0x00000000ffffffffULL;
  return v;
}

/// Encodes (x, y, z) into a 3D Morton index; x occupies the least
/// significant interleave slot (bit 0), matching the z-major curve the
/// layouts use. Coordinates above 21 bits are truncated.
[[nodiscard]] constexpr std::uint64_t morton_encode_3d(std::uint32_t x,
                                                       std::uint32_t y,
                                                       std::uint32_t z) noexcept {
  return part_bits_3(x) | (part_bits_3(y) << 1) | (part_bits_3(z) << 2);
}

/// Decoded 3D coordinate triple.
struct MortonCoord3D {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t z = 0;
  friend constexpr bool operator==(const MortonCoord3D&, const MortonCoord3D&) = default;
};

/// Decodes a 3D Morton index back into its coordinate triple.
[[nodiscard]] constexpr MortonCoord3D morton_decode_3d(std::uint64_t m) noexcept {
  return MortonCoord3D{static_cast<std::uint32_t>(compact_bits_3(m)),
                       static_cast<std::uint32_t>(compact_bits_3(m >> 1)),
                       static_cast<std::uint32_t>(compact_bits_3(m >> 2))};
}

/// Encodes (x, y) into a 2D Morton index; x occupies bit 0.
[[nodiscard]] constexpr std::uint64_t morton_encode_2d(std::uint32_t x,
                                                       std::uint32_t y) noexcept {
  return part_bits_2(x) | (part_bits_2(y) << 1);
}

/// Decoded 2D coordinate pair.
struct MortonCoord2D {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  friend constexpr bool operator==(const MortonCoord2D&, const MortonCoord2D&) = default;
};

/// Decodes a 2D Morton index back into its coordinate pair.
[[nodiscard]] constexpr MortonCoord2D morton_decode_2d(std::uint64_t m) noexcept {
  return MortonCoord2D{static_cast<std::uint32_t>(compact_bits_2(m)),
                       static_cast<std::uint32_t>(compact_bits_2(m >> 1))};
}

// ---------------------------------------------------------------------------
// Byte-LUT codecs
// ---------------------------------------------------------------------------

/// Encodes (x, y, z) using 256-entry byte-interleave tables. Identical
/// output to morton_encode_3d; exists as an alternative strategy for the
/// codec ablation (bench/abl_morton_codec).
[[nodiscard]] std::uint64_t morton_encode_3d_lut(std::uint32_t x, std::uint32_t y,
                                                 std::uint32_t z) noexcept;

/// LUT-based 3D decode; identical output to morton_decode_3d.
[[nodiscard]] MortonCoord3D morton_decode_3d_lut(std::uint64_t m) noexcept;

/// LUT-based 2D encode; identical output to morton_encode_2d.
[[nodiscard]] std::uint64_t morton_encode_2d_lut(std::uint32_t x, std::uint32_t y) noexcept;

// ---------------------------------------------------------------------------
// BMI2 codecs (compiled only when the target supports PDEP/PEXT)
// ---------------------------------------------------------------------------

/// True when this build can execute the *_bmi2 codecs.
[[nodiscard]] constexpr bool morton_has_bmi2() noexcept {
#if defined(__BMI2__)
  return true;
#else
  return false;
#endif
}

#if defined(__BMI2__)
[[nodiscard]] inline std::uint64_t morton_encode_3d_bmi2(std::uint32_t x, std::uint32_t y,
                                                         std::uint32_t z) noexcept {
  return _pdep_u64(x, 0x1249249249249249ULL) | _pdep_u64(y, 0x2492492492492492ULL) |
         _pdep_u64(z, 0x4924924924924924ULL);
}

[[nodiscard]] inline MortonCoord3D morton_decode_3d_bmi2(std::uint64_t m) noexcept {
  return MortonCoord3D{static_cast<std::uint32_t>(_pext_u64(m, 0x1249249249249249ULL)),
                       static_cast<std::uint32_t>(_pext_u64(m, 0x2492492492492492ULL)),
                       static_cast<std::uint32_t>(_pext_u64(m, 0x4924924924924924ULL))};
}
#endif

// ---------------------------------------------------------------------------
// Aligned-block ranges
// ---------------------------------------------------------------------------
// A 2^b-aligned cube of side 2^b occupies one contiguous run of the Morton
// curve: its low 3b index bits enumerate the block interior and the high
// bits are fixed. This is what makes block-granular summaries (min-max
// macrocells, per-block statistics) linear scans over a Z-order grid.

/// Contiguous Morton index range of one aligned block: [base, base+length).
struct MortonBlockRange3D {
  std::uint64_t base = 0;
  std::uint64_t length = 0;
};

/// Range of the aligned 2^b cube block with block coordinates (bx, by, bz)
/// — i.e. voxels [bx*2^b, (bx+1)*2^b) per axis — on the plain (cubic)
/// Morton curve. length is always 2^(3b).
[[nodiscard]] constexpr MortonBlockRange3D morton_block_range_3d(std::uint32_t bx,
                                                                 std::uint32_t by,
                                                                 std::uint32_t bz,
                                                                 unsigned b) noexcept {
  return MortonBlockRange3D{morton_encode_3d(bx << b, by << b, bz << b),
                            std::uint64_t{1} << (3 * b)};
}

// ---------------------------------------------------------------------------
// Neighbour stepping without full decode/re-encode
// ---------------------------------------------------------------------------
// Adding 1 to one axis of a Morton index can be done directly on the
// interleaved form: force the other axes' bit positions to 1, add the unit
// for this axis, then mask.  See Bader 2013, Sec. 4. Used by stencil sweeps
// that walk the Z-curve without maintaining (i, j, k).

inline constexpr std::uint64_t kMortonMaskX3D = 0x1249249249249249ULL;
inline constexpr std::uint64_t kMortonMaskY3D = 0x2492492492492492ULL;
inline constexpr std::uint64_t kMortonMaskZ3D = 0x4924924924924924ULL;

/// Returns the Morton index of the +1 neighbour along X.
[[nodiscard]] constexpr std::uint64_t morton_inc_x(std::uint64_t m) noexcept {
  return (((m | ~kMortonMaskX3D) + 1) & kMortonMaskX3D) | (m & ~kMortonMaskX3D);
}

/// Returns the Morton index of the +1 neighbour along Y.
[[nodiscard]] constexpr std::uint64_t morton_inc_y(std::uint64_t m) noexcept {
  return (((m | ~kMortonMaskY3D) + 2) & kMortonMaskY3D) | (m & ~kMortonMaskY3D);
}

/// Returns the Morton index of the +1 neighbour along Z.
[[nodiscard]] constexpr std::uint64_t morton_inc_z(std::uint64_t m) noexcept {
  return (((m | ~kMortonMaskZ3D) + 4) & kMortonMaskZ3D) | (m & ~kMortonMaskZ3D);
}

/// Returns the Morton index of the -1 neighbour along X.
[[nodiscard]] constexpr std::uint64_t morton_dec_x(std::uint64_t m) noexcept {
  return (((m & kMortonMaskX3D) - 1) & kMortonMaskX3D) | (m & ~kMortonMaskX3D);
}

/// Returns the Morton index of the -1 neighbour along Y.
[[nodiscard]] constexpr std::uint64_t morton_dec_y(std::uint64_t m) noexcept {
  return (((m & kMortonMaskY3D) - 2) & kMortonMaskY3D) | (m & ~kMortonMaskY3D);
}

/// Returns the Morton index of the -1 neighbour along Z.
[[nodiscard]] constexpr std::uint64_t morton_dec_z(std::uint64_t m) noexcept {
  return (((m & kMortonMaskZ3D) - 4) & kMortonMaskZ3D) | (m & ~kMortonMaskZ3D);
}

// Arbitrary-delta axis steps: dilated-integer addition (Raman & Wise;
// Holzmüller, arXiv:1710.06384). The delta is reduced to 21-bit two's
// complement, dilated into the axis' bit positions, and added with the
// other axes' bits forced to 1 so carries ripple straight through them —
// one add regardless of |delta|, no decode/re-encode. Axis arithmetic is
// modulo 2^21 (matching the inc/dec helpers above); stepping a stencil
// window that stays inside the grid never wraps.

/// Morton index of the (x + d) neighbour (d may be negative).
[[nodiscard]] constexpr std::uint64_t morton_step_x(std::uint64_t m, std::int32_t d) noexcept {
  const std::uint64_t dd = part_bits_3(static_cast<std::uint32_t>(d) & 0x1fffff);
  return (((m | ~kMortonMaskX3D) + dd) & kMortonMaskX3D) | (m & ~kMortonMaskX3D);
}

/// Morton index of the (y + d) neighbour (d may be negative).
[[nodiscard]] constexpr std::uint64_t morton_step_y(std::uint64_t m, std::int32_t d) noexcept {
  const std::uint64_t dd = part_bits_3(static_cast<std::uint32_t>(d) & 0x1fffff) << 1;
  return (((m | ~kMortonMaskY3D) + dd) & kMortonMaskY3D) | (m & ~kMortonMaskY3D);
}

/// Morton index of the (z + d) neighbour (d may be negative).
[[nodiscard]] constexpr std::uint64_t morton_step_z(std::uint64_t m, std::int32_t d) noexcept {
  const std::uint64_t dd = part_bits_3(static_cast<std::uint32_t>(d) & 0x1fffff) << 2;
  return (((m | ~kMortonMaskZ3D) + dd) & kMortonMaskZ3D) | (m & ~kMortonMaskZ3D);
}

}  // namespace sfcvis::core
