#include "sfcvis/core/zquery.hpp"

namespace sfcvis::core {
namespace {

/// Axis interleave mask for the axis owning bit position `pos` (pos % 3).
constexpr std::uint64_t axis_mask(unsigned pos) noexcept {
  switch (pos % 3) {
    case 0:
      return kMortonMaskX3D;
    case 1:
      return kMortonMaskY3D;
    default:
      return kMortonMaskZ3D;
  }
}

/// Tropf-Herzog "load" operations: rewrite the bits that the axis owning
/// `pos` contributes to `v`, at and below `pos`.
///
/// load_10: bit at pos := 1, lower same-axis bits := 0  (pattern "1000..")
constexpr std::uint64_t load_10(std::uint64_t v, unsigned pos) noexcept {
  const std::uint64_t below = axis_mask(pos) & ((std::uint64_t{1} << pos) - 1);
  return (v & ~below) | (std::uint64_t{1} << pos);
}

/// load_01: bit at pos := 0, lower same-axis bits := 1  (pattern "0111..")
constexpr std::uint64_t load_01(std::uint64_t v, unsigned pos) noexcept {
  const std::uint64_t below = axis_mask(pos) & ((std::uint64_t{1} << pos) - 1);
  return (v & ~(std::uint64_t{1} << pos)) | below;
}

}  // namespace

bool zorder_blocks_contiguous(const ZOrderTables& tables, unsigned block_log2) noexcept {
  for (unsigned axis = 0; axis < 3; ++axis) {
    if (tables.axis_bits(axis) < block_log2) {
      return false;
    }
    for (unsigned bit = 0; bit < block_log2; ++bit) {
      if (tables.bit_position(axis, bit) >= 3 * block_log2) {
        return false;
      }
    }
  }
  return true;
}

bool morton_in_box_3d(std::uint64_t z, const Coord3D& lo, const Coord3D& hi) noexcept {
  const auto c = morton_decode_3d(z);
  return c.x >= lo.i && c.x <= hi.i && c.y >= lo.j && c.y <= hi.j && c.z >= lo.k &&
         c.z <= hi.k;
}

std::uint64_t morton_bigmin_3d(std::uint64_t z, std::uint64_t zmin,
                               std::uint64_t zmax) noexcept {
  std::uint64_t bigmin = 0;
  for (unsigned pos = 63; pos-- > 0;) {  // bits 62..0 (63 usable morton bits)
    const std::uint64_t bit = std::uint64_t{1} << pos;
    const unsigned zb = (z & bit) ? 1u : 0u;
    const unsigned minb = (zmin & bit) ? 1u : 0u;
    const unsigned maxb = (zmax & bit) ? 1u : 0u;
    const unsigned code = (zb << 2) | (minb << 1) | maxb;
    switch (code) {
      case 0b000:
        break;  // all zero: descend
      case 0b001:  // z=0, min=0, max=1: split
        bigmin = load_10(zmin, pos);
        zmax = load_01(zmax, pos);
        break;
      case 0b011:  // z=0, min=1, max=1: whole remaining box above z
        return zmin;
      case 0b100:  // z=1, min=0, max=0: box entirely below z
        return bigmin;
      case 0b101:  // z=1, min=0, max=1: restrict min to the upper half
        zmin = load_10(zmin, pos);
        break;
      case 0b111:
        break;  // all one: descend
      default:
        // 0b010 / 0b110 would mean zmin > zmax: not a box.
        return bigmin;
    }
  }
  return bigmin;
}

std::uint64_t morton_litmax_3d(std::uint64_t z, std::uint64_t zmin,
                               std::uint64_t zmax) noexcept {
  std::uint64_t litmax = 0;
  for (unsigned pos = 63; pos-- > 0;) {
    const std::uint64_t bit = std::uint64_t{1} << pos;
    const unsigned zb = (z & bit) ? 1u : 0u;
    const unsigned minb = (zmin & bit) ? 1u : 0u;
    const unsigned maxb = (zmax & bit) ? 1u : 0u;
    const unsigned code = (zb << 2) | (minb << 1) | maxb;
    switch (code) {
      case 0b000:
        break;
      case 0b001:  // z=0, min=0, max=1: box's upper half is above z
        zmax = load_01(zmax, pos);
        break;
      case 0b011:  // box entirely above z
        return litmax;
      case 0b100:  // z=1, min=0, max=0: whole remaining box below z
        return zmax;
      case 0b101:  // split: candidate is the lower half's max
        litmax = load_01(zmax, pos);
        zmin = load_10(zmin, pos);
        break;
      case 0b111:
        break;
      default:
        return litmax;
    }
  }
  return litmax;
}

}  // namespace sfcvis::core
