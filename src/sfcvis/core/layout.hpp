// Memory-layout policies mapping logical (i, j, k) coordinates to linear
// storage offsets.
//
// The study design (paper Sec. III-C) requires that swapping the layout is
// transparent to the kernels: all four policies satisfy the Layout3D
// concept below, and kernels are templated on the policy (or use the
// runtime Indexer facade in indexer.hpp).
//
//  * ArrayOrderLayout — classic row-major: the control.
//  * ZOrderLayout     — Morton/Z space-filling curve: the paper's subject.
//  * TiledLayout      — blocked/tiled layout: the blocking baseline
//                       (Pascucci & Frank's "3D blocking" comparator).
//  * HilbertLayout    — Hilbert space-filling curve: SFC baseline with
//                       better locality but costlier indexing
//                       (Reissmann et al. 2014).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <memory>
#include <string_view>

#include "sfcvis/core/extents.hpp"
#include "sfcvis/core/hilbert.hpp"
#include "sfcvis/core/zorder_tables.hpp"

namespace sfcvis::core {

/// A 3D layout maps in-bounds (i, j, k) to a unique offset inside
/// [0, required_capacity()).
template <class L>
concept Layout3D = requires(const L layout, std::uint32_t c) {
  { layout.index(c, c, c) } -> std::same_as<std::size_t>;
  { layout.extents() } -> std::convertible_to<Extents3D>;
  { layout.required_capacity() } -> std::same_as<std::size_t>;
  { L::name() } -> std::convertible_to<std::string_view>;
};

// ---------------------------------------------------------------------------
// Array order (row-major)
// ---------------------------------------------------------------------------

/// Row-major layout: index = i + nx*(j + ny*k). X is fastest-varying.
class ArrayOrderLayout {
 public:
  ArrayOrderLayout() = default;
  explicit ArrayOrderLayout(const Extents3D& e) : extents_(e) { validate_extents(e); }

  [[nodiscard]] std::size_t index(std::uint32_t i, std::uint32_t j,
                                  std::uint32_t k) const noexcept {
    return i + static_cast<std::size_t>(extents_.nx) *
                   (j + static_cast<std::size_t>(extents_.ny) * k);
  }

  [[nodiscard]] const Extents3D& extents() const noexcept { return extents_; }
  [[nodiscard]] std::size_t required_capacity() const noexcept { return extents_.size(); }
  [[nodiscard]] static constexpr std::string_view name() noexcept { return "array-order"; }

 private:
  Extents3D extents_{};
};

// ---------------------------------------------------------------------------
// Z order (Morton)
// ---------------------------------------------------------------------------

/// Z-order (Morton) layout via the per-axis tables of zorder_tables.hpp.
/// Non-power-of-two extents are padded per axis (paper Sec. V limitation);
/// required_capacity() reflects the padding.
///
/// The tables are shared_ptr-held so layout objects are cheap to copy into
/// per-thread kernel state.
class ZOrderLayout {
 public:
  ZOrderLayout() = default;
  explicit ZOrderLayout(const Extents3D& e)
      : extents_(e), tables_(std::make_shared<ZOrderTables>(e)) {}

  [[nodiscard]] std::size_t index(std::uint32_t i, std::uint32_t j,
                                  std::uint32_t k) const noexcept {
    return tables_->index(i, j, k);
  }

  [[nodiscard]] const Extents3D& extents() const noexcept { return extents_; }
  [[nodiscard]] std::size_t required_capacity() const noexcept {
    return tables_ ? tables_->capacity() : 0;
  }
  [[nodiscard]] static constexpr std::string_view name() noexcept { return "z-order"; }

  /// Inverse mapping (used by conversion and the layout explorer example).
  [[nodiscard]] Coord3D decode(std::size_t idx) const noexcept { return tables_->decode(idx); }

  [[nodiscard]] const ZOrderTables& tables() const noexcept { return *tables_; }

 private:
  Extents3D extents_{};
  std::shared_ptr<const ZOrderTables> tables_;
};

// ---------------------------------------------------------------------------
// Tiled / blocked
// ---------------------------------------------------------------------------

/// Blocked layout: the volume is split into bx*by*bz tiles stored
/// contiguously; tiles are ordered row-major over the tile grid and voxels
/// row-major within a tile. Tile dims must be powers of two.
class TiledLayout {
 public:
  TiledLayout() = default;

  TiledLayout(const Extents3D& e, std::uint32_t bx, std::uint32_t by, std::uint32_t bz)
      : extents_(e), bx_(bx), by_(by), bz_(bz) {
    validate_extents(e);
    if (!std::has_single_bit(bx) || !std::has_single_bit(by) || !std::has_single_bit(bz)) {
      throw std::invalid_argument("TiledLayout: tile dims must be powers of two");
    }
    lbx_ = log2_pow2(bx);
    lby_ = log2_pow2(by);
    lbz_ = log2_pow2(bz);
    tiles_x_ = (e.nx + bx - 1) >> lbx_;
    tiles_y_ = (e.ny + by - 1) >> lby_;
    tiles_z_ = (e.nz + bz - 1) >> lbz_;
  }

  /// Cubic-tile convenience constructor (default 8^3 tiles: one 4-byte tile
  /// is then two cache lines wide in x).
  explicit TiledLayout(const Extents3D& e, std::uint32_t b = 8) : TiledLayout(e, b, b, b) {}

  [[nodiscard]] std::size_t index(std::uint32_t i, std::uint32_t j,
                                  std::uint32_t k) const noexcept {
    const std::uint32_t ti = i >> lbx_, tj = j >> lby_, tk = k >> lbz_;
    const std::uint32_t li = i & (bx_ - 1), lj = j & (by_ - 1), lk = k & (bz_ - 1);
    const std::size_t tile =
        ti + static_cast<std::size_t>(tiles_x_) * (tj + static_cast<std::size_t>(tiles_y_) * tk);
    const std::size_t within =
        li + (static_cast<std::size_t>(lj) << lbx_) + (static_cast<std::size_t>(lk) << (lbx_ + lby_));
    return (tile << (lbx_ + lby_ + lbz_)) + within;
  }

  [[nodiscard]] const Extents3D& extents() const noexcept { return extents_; }
  [[nodiscard]] std::size_t required_capacity() const noexcept {
    return (static_cast<std::size_t>(tiles_x_) * tiles_y_ * tiles_z_) << (lbx_ + lby_ + lbz_);
  }
  [[nodiscard]] static constexpr std::string_view name() noexcept { return "tiled"; }

  [[nodiscard]] std::uint32_t tile_x() const noexcept { return bx_; }
  [[nodiscard]] std::uint32_t tile_y() const noexcept { return by_; }
  [[nodiscard]] std::uint32_t tile_z() const noexcept { return bz_; }

 private:
  Extents3D extents_{};
  std::uint32_t bx_ = 1, by_ = 1, bz_ = 1;
  unsigned lbx_ = 0, lby_ = 0, lbz_ = 0;
  std::uint32_t tiles_x_ = 0, tiles_y_ = 0, tiles_z_ = 0;
};

// ---------------------------------------------------------------------------
// Hilbert order
// ---------------------------------------------------------------------------

/// Hilbert-curve layout over the enclosing power-of-two cube. Indexing is
/// computed per access (the curve is not separable into per-axis tables),
/// which is exactly the cost asymmetry Reissmann et al. observed; see
/// bench/abl_layout_compare.
class HilbertLayout {
 public:
  HilbertLayout() = default;
  explicit HilbertLayout(const Extents3D& e) : extents_(e) {
    validate_extents(e);
    const Extents3D p = padded_pow2(e);
    bits_ = log2_pow2(std::max(p.nx, std::max(p.ny, p.nz)));
  }

  [[nodiscard]] std::size_t index(std::uint32_t i, std::uint32_t j,
                                  std::uint32_t k) const noexcept {
    return static_cast<std::size_t>(hilbert_encode_3d(i, j, k, bits_));
  }

  [[nodiscard]] const Extents3D& extents() const noexcept { return extents_; }
  [[nodiscard]] std::size_t required_capacity() const noexcept {
    return std::size_t{1} << (3 * bits_);
  }
  [[nodiscard]] static constexpr std::string_view name() noexcept { return "hilbert"; }

  [[nodiscard]] unsigned bits() const noexcept { return bits_; }

 private:
  Extents3D extents_{};
  unsigned bits_ = 0;
};

static_assert(Layout3D<ArrayOrderLayout>);
static_assert(Layout3D<ZOrderLayout>);
static_assert(Layout3D<TiledLayout>);
static_assert(Layout3D<HilbertLayout>);

}  // namespace sfcvis::core
