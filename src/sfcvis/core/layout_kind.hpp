// LayoutKind: the runtime tag naming every AnyVolume backend.
//
// Split out of volume.hpp so leaf headers (the brick-file codec, the
// bricked backend) can name layout kinds without pulling in the variant
// facade — volume.hpp includes bricked.hpp, so the include arrow must
// point this way.
#pragma once

#include <cstdint>

namespace sfcvis::core {

/// The storage layouts under study, as a runtime tag.
enum class LayoutKind : std::uint8_t {
  kArray = 0,  ///< row-major array order (the baseline)
  kZOrder,     ///< Morton / Z-order curve (the paper's layout)
  kTiled,      ///< pow2-block tiling (the classic bricking alternative)
  kHilbert,    ///< Hilbert curve (related-work SFC variant)
  kGMorton,    ///< generalized Morton: arbitrary interleave pattern (tuner family)
  kBricked,    ///< out-of-core Morton-ordered brick file (core/bricked.hpp)
};

/// The five *in-core* layouts — the cross-product the fuzz matrix and the
/// ablation benches sweep, and the set make_volume can allocate. kBricked
/// is deliberately absent: a bricked volume is opened from a packed file
/// (BrickedVolume::open), never allocated blank.
inline constexpr LayoutKind kAllLayoutKinds[] = {LayoutKind::kArray, LayoutKind::kZOrder,
                                                 LayoutKind::kTiled, LayoutKind::kHilbert,
                                                 LayoutKind::kGMorton};

/// Stable lowercase name ("array-order", "z-order", "tiled", "hilbert",
/// "gmorton", "bricked") — matches the static Layout3D::name() strings.
[[nodiscard]] const char* to_string(LayoutKind kind) noexcept;

}  // namespace sfcvis::core
