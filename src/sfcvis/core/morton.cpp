#include "sfcvis/core/morton.hpp"

#include <array>

namespace sfcvis::core {
namespace {

// 256-entry byte-interleave tables, generated at static-init time from the
// magic-bits codecs so the two strategies cannot drift apart.
struct Lut3D {
  std::array<std::uint32_t, 256> spread{};   // byte -> bits at stride 3 (24 bits)
  std::array<std::uint8_t, 512> compact{};   // 9 interleaved bits -> 3 source bits
  Lut3D() {
    for (unsigned b = 0; b < 256; ++b) {
      spread[b] = static_cast<std::uint32_t>(part_bits_3(b));
    }
    for (unsigned m = 0; m < 512; ++m) {
      compact[m] = static_cast<std::uint8_t>(compact_bits_3(m));
    }
  }
};

struct Lut2D {
  std::array<std::uint32_t, 256> spread{};  // byte -> bits at stride 2 (16 bits)
  Lut2D() {
    for (unsigned b = 0; b < 256; ++b) {
      spread[b] = static_cast<std::uint32_t>(part_bits_2(b));
    }
  }
};

const Lut3D& lut3d() {
  static const Lut3D t;
  return t;
}

const Lut2D& lut2d() {
  static const Lut2D t;
  return t;
}

std::uint64_t spread3_lut(std::uint32_t v) {
  const auto& t = lut3d().spread;
  // 21 usable bits -> three bytes (the top byte contributes 5 bits).
  return static_cast<std::uint64_t>(t[v & 0xff]) |
         (static_cast<std::uint64_t>(t[(v >> 8) & 0xff]) << 24) |
         (static_cast<std::uint64_t>(t[(v >> 16) & 0x1f]) << 48);
}

}  // namespace

std::uint64_t morton_encode_3d_lut(std::uint32_t x, std::uint32_t y,
                                   std::uint32_t z) noexcept {
  return spread3_lut(x) | (spread3_lut(y) << 1) | (spread3_lut(z) << 2);
}

MortonCoord3D morton_decode_3d_lut(std::uint64_t m) noexcept {
  const auto& t = lut3d().compact;
  MortonCoord3D c;
  // Process nine interleaved bits (three per axis) per round.
  for (unsigned round = 0; round < 7; ++round) {
    const unsigned shift = round * 9;
    const auto chunk = static_cast<std::uint32_t>((m >> shift) & 0x1ff);
    c.x |= static_cast<std::uint32_t>(t[chunk]) << (round * 3);
    c.y |= static_cast<std::uint32_t>(t[chunk >> 1]) << (round * 3);
    c.z |= static_cast<std::uint32_t>(t[chunk >> 2]) << (round * 3);
  }
  return c;
}

std::uint64_t morton_encode_2d_lut(std::uint32_t x, std::uint32_t y) noexcept {
  const auto& t = lut2d().spread;
  auto spread = [&t](std::uint32_t v) {
    return static_cast<std::uint64_t>(t[v & 0xff]) |
           (static_cast<std::uint64_t>(t[(v >> 8) & 0xff]) << 16) |
           (static_cast<std::uint64_t>(t[(v >> 16) & 0xff]) << 32) |
           (static_cast<std::uint64_t>(t[(v >> 24) & 0xff]) << 48);
  };
  return spread(x) | (spread(y) << 1);
}

}  // namespace sfcvis::core
