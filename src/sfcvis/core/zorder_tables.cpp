#include "sfcvis/core/zorder_tables.hpp"

#include <algorithm>

namespace sfcvis::core {

ZOrderTables::ZOrderTables(const Extents3D& logical) {
  validate_extents(logical);
  padded_ = padded_pow2(logical);
  capacity_ = padded_.size();

  bits_[0] = log2_pow2(padded_.nx);
  bits_[1] = log2_pow2(padded_.ny);
  bits_[2] = log2_pow2(padded_.nz);

  // Assign an output bit position to every (axis, bit-plane) pair: walk the
  // bit-planes from least significant upward; at each plane the axes that
  // still have bits left claim consecutive output slots in x, y, z order.
  // For cubic power-of-two extents this reproduces classic Morton
  // interleaving; for anisotropic extents the surplus high bits of the
  // larger axes end up contiguous at the top, keeping the index space
  // exactly px*py*pz.
  unsigned out = 0;
  const unsigned max_bits = std::max(bits_[0], std::max(bits_[1], bits_[2]));
  for (unsigned plane = 0; plane < max_bits; ++plane) {
    for (unsigned axis = 0; axis < 3; ++axis) {
      if (plane < bits_[axis]) {
        bitpos_[axis][plane] = out++;
      }
    }
  }

  auto build = [this](unsigned axis, std::uint32_t n) {
    std::vector<std::uint64_t> tab(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      std::uint64_t deposited = 0;
      for (unsigned plane = 0; plane < bits_[axis]; ++plane) {
        if ((v >> plane) & 1u) {
          deposited |= std::uint64_t{1} << bitpos_[axis][plane];
        }
      }
      tab[v] = deposited;
    }
    return tab;
  };
  xtab_ = build(0, padded_.nx);
  ytab_ = build(1, padded_.ny);
  ztab_ = build(2, padded_.nz);
}

Coord3D ZOrderTables::decode(std::size_t index) const noexcept {
  Coord3D c;
  std::uint32_t* comp[3] = {&c.i, &c.j, &c.k};
  for (unsigned axis = 0; axis < 3; ++axis) {
    std::uint32_t v = 0;
    for (unsigned plane = 0; plane < bits_[axis]; ++plane) {
      v |= static_cast<std::uint32_t>((index >> bitpos_[axis][plane]) & 1u) << plane;
    }
    *comp[axis] = v;
  }
  return c;
}

}  // namespace sfcvis::core
