// Grid3D: an owning 3D container whose element placement is controlled by a
// Layout3D policy. This is the "single block of 3D data accessed via an
// interface that encapsulates the Z-order or array-order indexing in a way
// transparent to the application" of the paper's Sec. III.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "sfcvis/core/align.hpp"
#include "sfcvis/core/layout.hpp"

namespace sfcvis::core {

/// Owning 3D grid with layout-policy-controlled element placement.
///
/// Storage is 64-byte aligned and sized to layout.required_capacity(),
/// which for padded layouts (Z-order, Hilbert, tiled) exceeds
/// extents().size(); padding elements are value-initialized and are never
/// visited by for_each_* or exposed by at().
template <class T, Layout3D LayoutT>
class Grid3D {
 public:
  using value_type = T;
  using layout_type = LayoutT;
  /// Opts into the VolumeBackend concept (core/traced_view.hpp): kernels
  /// templated on a backend accept Grid3D and BrickedVolume alike.
  using is_volume_backend_tag = void;

  Grid3D() = default;

  /// Allocates a zero-initialized grid with the given layout.
  explicit Grid3D(LayoutT layout)
      : layout_(std::move(layout)), data_(layout_.required_capacity()) {}

  /// Allocates with an explicit placement policy (huge pages, first-touch
  /// initialization). What was actually applied is in alloc_report().
  Grid3D(LayoutT layout, const MemoryPolicy& policy, const FirstTouchFn& first_touch = {})
      : layout_(std::move(layout)),
        data_(layout_.required_capacity(), policy, first_touch) {}

  /// Convenience: construct the layout from extents.
  explicit Grid3D(const Extents3D& e) : Grid3D(LayoutT(e)) {}

  /// Element access (unchecked in release builds).
  [[nodiscard]] T& at(std::uint32_t i, std::uint32_t j, std::uint32_t k) noexcept {
    assert(layout_.extents().contains(i, j, k));
    return data_[layout_.index(i, j, k)];
  }
  [[nodiscard]] const T& at(std::uint32_t i, std::uint32_t j, std::uint32_t k) const noexcept {
    assert(layout_.extents().contains(i, j, k));
    return data_[layout_.index(i, j, k)];
  }
  [[nodiscard]] T& operator()(std::uint32_t i, std::uint32_t j, std::uint32_t k) noexcept {
    return at(i, j, k);
  }
  [[nodiscard]] const T& operator()(std::uint32_t i, std::uint32_t j,
                                    std::uint32_t k) const noexcept {
    return at(i, j, k);
  }

  /// Border-clamped access: out-of-range coordinates are clamped to the
  /// nearest edge voxel (the boundary policy both kernels use).
  [[nodiscard]] const T& at_clamped(std::int64_t i, std::int64_t j,
                                    std::int64_t k) const noexcept {
    const auto& e = layout_.extents();
    const auto ci = static_cast<std::uint32_t>(std::clamp<std::int64_t>(i, 0, e.nx - 1));
    const auto cj = static_cast<std::uint32_t>(std::clamp<std::int64_t>(j, 0, e.ny - 1));
    const auto ck = static_cast<std::uint32_t>(std::clamp<std::int64_t>(k, 0, e.nz - 1));
    return data_[layout_.index(ci, cj, ck)];
  }

  [[nodiscard]] const LayoutT& layout() const noexcept { return layout_; }
  [[nodiscard]] const Extents3D& extents() const noexcept { return layout_.extents(); }
  [[nodiscard]] std::size_t size() const noexcept { return layout_.extents().size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return data_.size(); }

  /// Raw storage (includes layout padding). Needed by IO and by the traced
  /// views, which must know the base address to model cache behaviour.
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  /// What the allocation actually did (huge-page / first-touch outcome).
  [[nodiscard]] const AllocReport& alloc_report() const noexcept { return data_.report(); }

  /// Invokes fn(i, j, k) for every logical element in array-order
  /// (x fastest). Iteration order is independent of the storage layout.
  template <class Fn>
  void for_each_index(Fn&& fn) const {
    const auto& e = layout_.extents();
    for (std::uint32_t k = 0; k < e.nz; ++k) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          fn(i, j, k);
        }
      }
    }
  }

  /// Fills every logical element from fn(i, j, k) -> T.
  template <class Fn>
  void fill_from(Fn&& fn) {
    for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
      at(i, j, k) = fn(i, j, k);
    });
  }

  /// Copies logical contents from any readable volume backend (a grid with
  /// any other layout, or an out-of-core BrickedVolume). Extents must match.
  template <class SrcT>
    requires requires(const SrcT& s) {
      s.at(std::uint32_t{}, std::uint32_t{}, std::uint32_t{});
      s.extents();
    }
  void copy_from(const SrcT& other) {
    assert(extents() == other.extents());
    for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
      at(i, j, k) = other.at(i, j, k);
    });
  }

 private:
  LayoutT layout_{};
  AlignedBuffer<T> data_;
};

/// Builds a grid of `DstLayoutT` holding the same logical contents as `src`.
template <Layout3D DstLayoutT, class T, Layout3D SrcLayoutT>
[[nodiscard]] Grid3D<T, DstLayoutT> convert_layout(const Grid3D<T, SrcLayoutT>& src) {
  Grid3D<T, DstLayoutT> dst{DstLayoutT(src.extents())};
  dst.copy_from(src);
  return dst;
}

}  // namespace sfcvis::core
