#include "sfcvis/core/gmorton.hpp"

#include <algorithm>
#include <stdexcept>

namespace sfcvis::core {

namespace {

unsigned axis_of(char c) {
  switch (c) {
    case 'x': return 0;
    case 'y': return 1;
    case 'z': return 2;
    default: return 3;
  }
}

}  // namespace

InterleavePattern::InterleavePattern(Trusted, std::string str, const Extents3D& padded)
    : str_(std::move(str)), padded_(padded) {
  // Private trusted constructor: assign bit positions. Characters are
  // MSB-first, so walk from the back of the string upward; the n-th
  // occurrence of an axis character from the right is that axis'
  // bit-plane n.
  unsigned out = 0;
  for (auto it = str_.rbegin(); it != str_.rend(); ++it, ++out) {
    const unsigned axis = axis_of(*it);
    bitpos_[axis][bits_[axis]++] = out;
  }
}

InterleavePattern::InterleavePattern(std::string_view pattern, const Extents3D& extents) {
  validate_extents(extents);
  padded_ = padded_pow2(extents);
  const unsigned want[3] = {log2_pow2(padded_.nx), log2_pow2(padded_.ny),
                            log2_pow2(padded_.nz)};
  unsigned have[3] = {0, 0, 0};
  for (const char c : pattern) {
    const unsigned axis = axis_of(c);
    if (axis > 2) {
      throw std::invalid_argument(
          "InterleavePattern: invalid character '" + std::string(1, c) +
          "' in \"" + std::string(pattern) + "\" (only 'x', 'y', 'z' are allowed)");
    }
    ++have[axis];
  }
  if (have[0] != want[0] || have[1] != want[1] || have[2] != want[2]) {
    throw std::invalid_argument(
        "InterleavePattern: \"" + std::string(pattern) + "\" has " +
        std::to_string(have[0]) + "x/" + std::to_string(have[1]) + "y/" +
        std::to_string(have[2]) + "z bits but extents " + std::to_string(extents.nx) +
        "x" + std::to_string(extents.ny) + "x" + std::to_string(extents.nz) +
        " (padded " + std::to_string(padded_.nx) + "x" + std::to_string(padded_.ny) +
        "x" + std::to_string(padded_.nz) + ") need " + std::to_string(want[0]) + "x/" +
        std::to_string(want[1]) + "y/" + std::to_string(want[2]) + "z");
  }
  *this = InterleavePattern(Trusted{}, std::string(pattern), padded_);
}

InterleavePattern InterleavePattern::canonical(const Extents3D& extents) {
  validate_extents(extents);
  const Extents3D p = padded_pow2(extents);
  const unsigned bits[3] = {log2_pow2(p.nx), log2_pow2(p.ny), log2_pow2(p.nz)};
  // Same assignment as ZOrderTables: round-robin x, y, z per bit-plane
  // while an axis still has bits left, LSB upward — built here as the
  // LSB-first character sequence and then reversed into MSB-first form.
  std::string lsb_first;
  const unsigned max_bits = std::max(bits[0], std::max(bits[1], bits[2]));
  for (unsigned plane = 0; plane < max_bits; ++plane) {
    for (unsigned axis = 0; axis < 3; ++axis) {
      if (plane < bits[axis]) {
        lsb_first.push_back("xyz"[axis]);
      }
    }
  }
  std::reverse(lsb_first.begin(), lsb_first.end());
  return InterleavePattern(Trusted{}, std::move(lsb_first), p);
}

InterleavePattern InterleavePattern::array_order(const Extents3D& extents) {
  validate_extents(extents);
  const Extents3D p = padded_pow2(extents);
  std::string msb_first;
  msb_first.append(log2_pow2(p.nz), 'z');
  msb_first.append(log2_pow2(p.ny), 'y');
  msb_first.append(log2_pow2(p.nx), 'x');
  return InterleavePattern(Trusted{}, std::move(msb_first), p);
}

InterleavePattern InterleavePattern::tiled(const Extents3D& extents, std::uint32_t bx,
                                           std::uint32_t by, std::uint32_t bz) {
  validate_extents(extents);
  const Extents3D p = padded_pow2(extents);
  const unsigned bits[3] = {log2_pow2(p.nx), log2_pow2(p.ny), log2_pow2(p.nz)};
  if (!std::has_single_bit(bx) || !std::has_single_bit(by) || !std::has_single_bit(bz)) {
    throw std::invalid_argument("InterleavePattern::tiled: tile dims must be powers of two");
  }
  const unsigned tile_bits[3] = {std::min(bits[0], log2_pow2(bx)),
                                 std::min(bits[1], log2_pow2(by)),
                                 std::min(bits[2], log2_pow2(bz))};
  // LSB-first: row-major within the tile, then row-major over tiles.
  std::string lsb_first;
  for (unsigned axis = 0; axis < 3; ++axis) {
    lsb_first.append(tile_bits[axis], "xyz"[axis]);
  }
  for (unsigned axis = 0; axis < 3; ++axis) {
    lsb_first.append(bits[axis] - tile_bits[axis], "xyz"[axis]);
  }
  std::reverse(lsb_first.begin(), lsb_first.end());
  return InterleavePattern(Trusted{}, std::move(lsb_first), p);
}

GMortonTables::GMortonTables(const Extents3D& logical, const InterleavePattern& pattern)
    : pattern_(pattern) {
  validate_extents(logical);
  if (padded_pow2(logical) != pattern.padded()) {
    throw std::invalid_argument("GMortonTables: pattern was built for different extents");
  }
  capacity_ = pattern.padded().size();

  auto build = [this](unsigned axis, std::uint32_t n) {
    std::vector<std::uint64_t> tab(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      std::uint64_t deposited = 0;
      for (unsigned plane = 0; plane < pattern_.axis_bits(axis); ++plane) {
        if ((v >> plane) & 1u) {
          deposited |= std::uint64_t{1} << pattern_.bit_position(axis, plane);
        }
      }
      tab[v] = deposited;
    }
    return tab;
  };
  xtab_ = build(0, pattern.padded().nx);
  ytab_ = build(1, pattern.padded().ny);
  ztab_ = build(2, pattern.padded().nz);
  for (unsigned axis = 0; axis < 3; ++axis) {
    for (unsigned plane = 0; plane < pattern_.axis_bits(axis); ++plane) {
      mask_[axis] |= std::uint64_t{1} << pattern_.bit_position(axis, plane);
    }
  }
}

Coord3D GMortonTables::decode(std::size_t index) const noexcept {
  Coord3D c;
  std::uint32_t* comp[3] = {&c.i, &c.j, &c.k};
  for (unsigned axis = 0; axis < 3; ++axis) {
    std::uint32_t v = 0;
    for (unsigned plane = 0; plane < pattern_.axis_bits(axis); ++plane) {
      v |= static_cast<std::uint32_t>((index >> pattern_.bit_position(axis, plane)) & 1u)
           << plane;
    }
    *comp[axis] = v;
  }
  return c;
}

}  // namespace sfcvis::core
