#include "sfcvis/core/volume.hpp"

#include <stdexcept>
#include <string>

namespace sfcvis::core {

const char* to_string(LayoutKind kind) noexcept {
  // Kept in sync with each Layout::name(); static_asserts below pin them.
  switch (kind) {
    case LayoutKind::kArray:
      return "array-order";
    case LayoutKind::kZOrder:
      return "z-order";
    case LayoutKind::kTiled:
      return "tiled";
    case LayoutKind::kHilbert:
      return "hilbert";
    case LayoutKind::kGMorton:
      return "gmorton";
    case LayoutKind::kBricked:
      return "bricked";
  }
  return "?";
}

static_assert(ArrayOrderLayout::name() == std::string_view{"array-order"});
static_assert(ZOrderLayout::name() == std::string_view{"z-order"});
static_assert(TiledLayout::name() == std::string_view{"tiled"});
static_assert(HilbertLayout::name() == std::string_view{"hilbert"});
static_assert(GeneralizedMortonLayout::name() == std::string_view{"gmorton"});

namespace {

[[noreturn]] void throw_unknown_layout(std::string_view name) {
  std::string msg = "unknown layout kind: \"" + std::string(name) + "\" (valid:";
  for (const LayoutKind kind : kAllLayoutKinds) {
    msg += ' ';
    msg += to_string(kind);
  }
  msg +=
      "; generalized Morton also accepts an explicit interleave pattern as "
      "\"gmorton:<pattern>\", e.g. \"gmorton:zyxzyxzzyyxx\" — MSB-first, one "
      "'x'/'y'/'z' per padded coordinate bit)";
  throw std::invalid_argument(msg);
}

}  // namespace

LayoutKind parse_layout_kind(std::string_view name) {
  if (name == "array-order" || name == "array" || name == "a-order") {
    return LayoutKind::kArray;
  }
  if (name == "z-order" || name == "zorder" || name == "morton") {
    return LayoutKind::kZOrder;
  }
  if (name == "tiled") {
    return LayoutKind::kTiled;
  }
  if (name == "hilbert") {
    return LayoutKind::kHilbert;
  }
  if (name == "gmorton" || name == "generalized-morton") {
    return LayoutKind::kGMorton;
  }
  if (name == "bricked") {
    return LayoutKind::kBricked;
  }
  throw_unknown_layout(name);
}

LayoutSpec parse_layout_spec(std::string_view spec) {
  LayoutSpec out;
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos) {
    out.kind = parse_layout_kind(spec);
    return out;
  }
  const std::string_view name = spec.substr(0, colon);
  const std::string_view arg = spec.substr(colon + 1);
  out.kind = parse_layout_kind(name);
  if (out.kind != LayoutKind::kGMorton) {
    throw std::invalid_argument("layout \"" + std::string(name) +
                                "\" takes no \":<pattern>\" argument (only gmorton does)");
  }
  if (arg.empty()) {
    throw std::invalid_argument(
        "gmorton: empty interleave pattern after ':' (use plain \"gmorton\" for the "
        "canonical pattern)");
  }
  out.interleave = std::string(arg);
  return out;
}

AnyVolume make_volume(LayoutKind kind, const Extents3D& extents, const VolumeOpts& opts) {
  switch (kind) {
    case LayoutKind::kArray:
      return AnyVolume(
          ArrayVolume(ArrayOrderLayout(extents), opts.memory, opts.first_touch));
    case LayoutKind::kZOrder:
      return AnyVolume(ZOrderVolume(ZOrderLayout(extents), opts.memory, opts.first_touch));
    case LayoutKind::kTiled:
      return AnyVolume(
          TiledVolume(TiledLayout(extents, opts.tile), opts.memory, opts.first_touch));
    case LayoutKind::kHilbert:
      return AnyVolume(
          HilbertVolume(HilbertLayout(extents), opts.memory, opts.first_touch));
    case LayoutKind::kGMorton: {
      const InterleavePattern pattern =
          opts.interleave.empty() ? InterleavePattern::canonical(extents)
                                  : InterleavePattern(opts.interleave, extents);
      return AnyVolume(GMortonVolume(GeneralizedMortonLayout(extents, pattern), opts.memory,
                                     opts.first_touch));
    }
    case LayoutKind::kBricked:
      throw std::invalid_argument(
          "make_volume: \"bricked\" volumes cannot be allocated blank — pack a brick "
          "file (core::pack_brick_file or tools/brick_pack) and open it with "
          "core::BrickedVolume::open / exec::ExecutionContext::open_bricked");
  }
  throw std::invalid_argument("unknown LayoutKind");
}

AnyVolume AnyVolume::convert_to(LayoutKind kind, const VolumeOpts& opts) const {
  AnyVolume dst = make_volume(kind, extents(), opts);
  dst.copy_from(*this);
  return dst;
}

}  // namespace sfcvis::core
