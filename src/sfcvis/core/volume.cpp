#include "sfcvis/core/volume.hpp"

#include <stdexcept>
#include <string>

namespace sfcvis::core {

const char* to_string(LayoutKind kind) noexcept {
  // Kept in sync with each Layout::name(); static_asserts below pin them.
  switch (kind) {
    case LayoutKind::kArray:
      return "array-order";
    case LayoutKind::kZOrder:
      return "z-order";
    case LayoutKind::kTiled:
      return "tiled";
    case LayoutKind::kHilbert:
      return "hilbert";
  }
  return "?";
}

static_assert(ArrayOrderLayout::name() == std::string_view{"array-order"});
static_assert(ZOrderLayout::name() == std::string_view{"z-order"});
static_assert(TiledLayout::name() == std::string_view{"tiled"});
static_assert(HilbertLayout::name() == std::string_view{"hilbert"});

LayoutKind parse_layout_kind(std::string_view name) {
  if (name == "array-order" || name == "array" || name == "a-order") {
    return LayoutKind::kArray;
  }
  if (name == "z-order" || name == "zorder" || name == "morton") {
    return LayoutKind::kZOrder;
  }
  if (name == "tiled") {
    return LayoutKind::kTiled;
  }
  if (name == "hilbert") {
    return LayoutKind::kHilbert;
  }
  throw std::invalid_argument("unknown layout kind: " + std::string(name));
}

AnyVolume make_volume(LayoutKind kind, const Extents3D& extents, const VolumeOpts& opts) {
  switch (kind) {
    case LayoutKind::kArray:
      return AnyVolume(
          ArrayVolume(ArrayOrderLayout(extents), opts.memory, opts.first_touch));
    case LayoutKind::kZOrder:
      return AnyVolume(ZOrderVolume(ZOrderLayout(extents), opts.memory, opts.first_touch));
    case LayoutKind::kTiled:
      return AnyVolume(
          TiledVolume(TiledLayout(extents, opts.tile), opts.memory, opts.first_touch));
    case LayoutKind::kHilbert:
      return AnyVolume(
          HilbertVolume(HilbertLayout(extents), opts.memory, opts.first_touch));
  }
  throw std::invalid_argument("unknown LayoutKind");
}

AnyVolume AnyVolume::convert_to(LayoutKind kind, const VolumeOpts& opts) const {
  AnyVolume dst = make_volume(kind, extents(), opts);
  dst.copy_from(*this);
  return dst;
}

}  // namespace sfcvis::core
