// Range queries on the Z-order curve: the BIGMIN/LITMAX machinery of
// Tropf & Herzog (1981) that every production Z-order index needs to skip
// curve segments lying outside an axis-aligned query box, plus
// curve-ordered traversal of a (possibly padded) grid built on top of it.
//
// Why it is here: the layouts pad non-power-of-two extents (paper Sec. V),
// so "visit every logical voxel in storage order" — the most
// cache-friendly sweep a kernel can make over a Z-order grid — is exactly
// a box query for the logical extents inside the padded curve.
#pragma once

#include <cstdint>

#include "sfcvis/core/extents.hpp"
#include "sfcvis/core/morton.hpp"
#include "sfcvis/core/zorder_tables.hpp"

namespace sfcvis::core {

/// True when Morton code `z` decodes to a point inside the inclusive box
/// [lo, hi] (componentwise).
[[nodiscard]] bool morton_in_box_3d(std::uint64_t z, const Coord3D& lo,
                                    const Coord3D& hi) noexcept;

/// BIGMIN: the smallest Morton code that is (a) strictly greater than `z`
/// and (b) inside the box spanned by codes [zmin, zmax] (which must be the
/// codes of the box's min and max corners). Precondition: z < zmax.
/// Returns the in-box successor used to skip dead curve segments.
[[nodiscard]] std::uint64_t morton_bigmin_3d(std::uint64_t z, std::uint64_t zmin,
                                             std::uint64_t zmax) noexcept;

/// LITMAX: the largest Morton code that is (a) strictly smaller than `z`
/// and (b) inside the box [zmin, zmax]. Precondition: z > zmin. The
/// backward-scan dual of BIGMIN.
[[nodiscard]] std::uint64_t morton_litmax_3d(std::uint64_t z, std::uint64_t zmin,
                                             std::uint64_t zmax) noexcept;

/// True when every 2^block_log2-aligned cube block of the (possibly
/// anisotropic) table curve occupies a contiguous index range — i.e. the
/// low 3*block_log2 index bits are exactly the low block_log2 bits of each
/// axis. Holds whenever every padded axis is at least 2^block_log2 wide
/// (the generator interleaves bit-planes while all axes have bits left).
/// When true, the block with origin (i0, j0, k0) spans indices
/// [tables.index(i0, j0, k0), +2^(3*block_log2)) — a linear scan of the
/// grid's storage, which is how layout-aware block summaries are built.
[[nodiscard]] bool zorder_blocks_contiguous(const ZOrderTables& tables,
                                            unsigned block_log2) noexcept;

/// Visits every lattice point of the inclusive box [lo, hi] in Z-curve
/// order, skipping out-of-box curve segments via BIGMIN (never scanning
/// more than one dead code per in-box run). fn receives (code, coord).
template <class Fn>
void for_each_morton_in_box(const Coord3D& lo, const Coord3D& hi, Fn&& fn) {
  const std::uint64_t zmin = morton_encode_3d(lo.i, lo.j, lo.k);
  const std::uint64_t zmax = morton_encode_3d(hi.i, hi.j, hi.k);
  std::uint64_t z = zmin;
  while (true) {
    if (morton_in_box_3d(z, lo, hi)) {
      const auto c = morton_decode_3d(z);
      fn(z, Coord3D{c.x, c.y, c.z});
      if (z == zmax) {
        return;
      }
      ++z;
    } else {
      if (z >= zmax) {
        return;
      }
      z = morton_bigmin_3d(z, zmin, zmax);
    }
  }
}

/// Visits every *logical* voxel of `extents` in Z-curve (storage) order —
/// the padded positions are skipped, so consecutive visits touch
/// monotonically increasing storage offsets of a ZOrderLayout grid.
/// fn receives (i, j, k).
template <class Fn>
void for_each_zorder(const Extents3D& extents, Fn&& fn) {
  // Note: valid only for cubic-pow2-equivalent interleave; the generic
  // anisotropic ZOrderTables curve coincides with plain Morton whenever
  // all padded extents are equal. For anisotropic extents we traverse via
  // decode on the compact table curve instead.
  const Extents3D padded = padded_pow2(extents);
  if (padded.nx == padded.ny && padded.ny == padded.nz) {
    for_each_morton_in_box(Coord3D{0, 0, 0},
                           Coord3D{extents.nx - 1, extents.ny - 1, extents.nz - 1},
                           [&](std::uint64_t, const Coord3D& c) { fn(c.i, c.j, c.k); });
    return;
  }
  const ZOrderTables tables(extents);
  for (std::size_t idx = 0; idx < tables.capacity(); ++idx) {
    const Coord3D c = tables.decode(idx);
    if (extents.contains(c.i, c.j, c.k)) {
      fn(c.i, c.j, c.k);
    }
  }
}

}  // namespace sfcvis::core
