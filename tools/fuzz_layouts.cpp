// Differential layout-oracle fuzz driver (see src/sfcvis/verify/fuzz.hpp).
//
// Runs seeds [start-seed, start-seed + seeds): each seed generates a volume
// shape, contents, and kernel configurations, runs every kernel across all
// four layouts, and checks cross-layout bit-identity (plus documented
// approximation tiers against the serial references). Every few seeds a
// metamorphic raycaster case (mirror-flip and macrocell-identity
// invariants) runs as well.
//
// Exit status is 0 iff every oracle comparison passed. On failure the
// first DiffReports are printed and, with --out, a repro file is written
// containing one line per failing seed — re-run any of them standalone
// with --start-seed=<seed> --seeds=1.
//
// Usage:
//   fuzz_layouts [--seeds=N] [--start-seed=N] [--quick|--full]
//                [--metamorphic-every=N] [--out=FILE] [--verbose]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sfcvis/verify/fuzz.hpp"

namespace verify = sfcvis::verify;

namespace {

struct Options {
  std::uint64_t seeds = 50;
  std::uint64_t start_seed = 0;
  bool quick = true;
  std::uint64_t metamorphic_every = 4;  ///< 0 disables metamorphic cases
  std::string out;
  bool verbose = false;
};

bool parse_u64(const char* arg, const char* prefix, std::uint64_t& value) {
  const std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) {
    return false;
  }
  value = std::strtoull(arg + n, nullptr, 10);
  return true;
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds=N] [--start-seed=N] [--quick|--full]\n"
               "          [--metamorphic-every=N] [--out=FILE] [--verbose]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    if (parse_u64(arg, "--seeds=", opt.seeds) ||
        parse_u64(arg, "--start-seed=", opt.start_seed) ||
        parse_u64(arg, "--metamorphic-every=", opt.metamorphic_every)) {
      continue;
    }
    if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(arg, "--full") == 0) {
      opt.quick = false;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opt.out = arg + 6;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      opt.verbose = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  const verify::FuzzOptions fuzz_opts{.quick = opt.quick};
  std::uint64_t total_checks = 0;
  std::uint64_t failed_checks = 0;
  std::vector<std::string> repro_lines;
  std::uint64_t printed = 0;
  constexpr std::uint64_t kMaxPrintedFailures = 20;

  const auto consume = [&](const verify::FuzzSummary& summary, const char* kind) {
    total_checks += summary.checks;
    if (opt.verbose) {
      std::printf("seed %llu (%s): %s — %u checks, %zu failures\n",
                  static_cast<unsigned long long>(summary.seed), kind,
                  summary.description.c_str(), summary.checks, summary.failures.size());
    }
    if (summary.ok()) {
      return;
    }
    failed_checks += summary.failures.size();
    std::string line = "seed=" + std::to_string(summary.seed) + " kind=" + kind +
                       " desc=" + summary.description;
    for (const auto& failure : summary.failures) {
      if (printed < kMaxPrintedFailures) {
        std::fprintf(stderr, "seed %llu (%s): %s\n",
                     static_cast<unsigned long long>(summary.seed), kind,
                     failure.to_string().c_str());
        ++printed;
      }
      line += "\n  " + failure.to_string();
    }
    repro_lines.push_back(std::move(line));
  };

  for (std::uint64_t s = 0; s < opt.seeds; ++s) {
    const std::uint64_t seed = opt.start_seed + s;
    consume(verify::run_fuzz_case(seed, fuzz_opts), "fuzz");
    if (opt.metamorphic_every != 0 && s % opt.metamorphic_every == 0) {
      consume(verify::run_metamorphic_case(seed, fuzz_opts), "metamorphic");
    }
  }

  if (!repro_lines.empty() && !opt.out.empty()) {
    std::ofstream out(opt.out);
    out << "# fuzz_layouts failing seeds (" << (opt.quick ? "--quick" : "--full")
        << "); re-run one with --start-seed=<seed> --seeds=1\n";
    for (const auto& line : repro_lines) {
      out << line << "\n";
    }
    std::fprintf(stderr, "wrote %zu failing repro(s) to %s\n", repro_lines.size(),
                 opt.out.c_str());
  }

  std::printf("fuzz_layouts: %llu seeds starting at %llu (%s): %llu checks, %llu failed\n",
              static_cast<unsigned long long>(opt.seeds),
              static_cast<unsigned long long>(opt.start_seed),
              opt.quick ? "quick" : "full",
              static_cast<unsigned long long>(total_checks),
              static_cast<unsigned long long>(failed_checks));
  return failed_checks == 0 ? 0 : 1;
}
