// Differential layout-oracle fuzz driver (see src/sfcvis/verify/fuzz.hpp).
//
// Runs seeds [start-seed, start-seed + seeds): each seed generates a volume
// shape, contents, and kernel configurations, runs every kernel across all
// four layouts, and checks cross-layout bit-identity (plus documented
// approximation tiers against the serial references). Every few seeds a
// metamorphic raycaster case (mirror-flip and macrocell-identity
// invariants) runs as well.
//
// Exit status is 0 iff every oracle comparison passed. On failure the
// first DiffReports are printed and, with --out, a repro file is written
// containing one line per failing seed — re-run any of them standalone
// with --start-seed=<seed> --seeds=1.
//
// Usage:
//   fuzz_layouts [--seeds=N] [--start-seed=N] [--quick|--full]
//                [--metamorphic-every=N] [--out=FILE] [--verbose]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sfcvis/trace/export.hpp"
#include "sfcvis/trace/trace.hpp"
#include "sfcvis/verify/fuzz.hpp"

namespace trace = sfcvis::trace;
namespace verify = sfcvis::verify;

namespace {

struct Options {
  std::uint64_t seeds = 50;
  std::uint64_t start_seed = 0;
  bool quick = true;
  std::uint64_t metamorphic_every = 4;  ///< 0 disables metamorphic cases
  std::string out;
  bool verbose = false;
};

bool parse_u64(const char* arg, const char* prefix, std::uint64_t& value) {
  const std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) {
    return false;
  }
  value = std::strtoull(arg + n, nullptr, 10);
  return true;
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds=N] [--start-seed=N] [--quick|--full]\n"
               "          [--metamorphic-every=N] [--out=FILE] [--verbose]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    if (parse_u64(arg, "--seeds=", opt.seeds) ||
        parse_u64(arg, "--start-seed=", opt.start_seed) ||
        parse_u64(arg, "--metamorphic-every=", opt.metamorphic_every)) {
      continue;
    }
    if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(arg, "--full") == 0) {
      opt.quick = false;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opt.out = arg + 6;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      opt.verbose = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  const verify::FuzzOptions fuzz_opts{.quick = opt.quick};
  std::uint64_t total_checks = 0;
  std::uint64_t failed_checks = 0;
  struct Repro {
    std::uint64_t seed;
    bool metamorphic;
    std::string line;
  };
  std::vector<Repro> repros;
  std::uint64_t printed = 0;
  constexpr std::uint64_t kMaxPrintedFailures = 20;

  const auto consume = [&](const verify::FuzzSummary& summary, const char* kind) {
    total_checks += summary.checks;
    if (opt.verbose) {
      std::printf("seed %llu (%s): %s — %u checks, %zu failures\n",
                  static_cast<unsigned long long>(summary.seed), kind,
                  summary.description.c_str(), summary.checks, summary.failures.size());
    }
    if (summary.ok()) {
      return;
    }
    failed_checks += summary.failures.size();
    std::string line = "seed=" + std::to_string(summary.seed) + " kind=" + kind +
                       " desc=" + summary.description;
    for (const auto& failure : summary.failures) {
      if (printed < kMaxPrintedFailures) {
        std::fprintf(stderr, "seed %llu (%s): %s\n",
                     static_cast<unsigned long long>(summary.seed), kind,
                     failure.to_string().c_str());
        ++printed;
      }
      line += "\n  " + failure.to_string();
    }
    repros.push_back(Repro{summary.seed, std::strcmp(kind, "metamorphic") == 0,
                           std::move(line)});
  };

  for (std::uint64_t s = 0; s < opt.seeds; ++s) {
    const std::uint64_t seed = opt.start_seed + s;
    consume(verify::run_fuzz_case(seed, fuzz_opts), "fuzz");
    if (opt.metamorphic_every != 0 && s % opt.metamorphic_every == 0) {
      consume(verify::run_metamorphic_case(seed, fuzz_opts), "metamorphic");
    }
  }

  if (!repros.empty() && !opt.out.empty()) {
    std::ofstream out(opt.out);
    out << "# fuzz_layouts failing seeds (" << (opt.quick ? "--quick" : "--full")
        << "); re-run one with --start-seed=<seed> --seeds=1\n";
    for (const auto& repro : repros) {
      out << repro.line << "\n";
    }
    // Re-run the first few failing seeds with span tracing live and embed
    // each run report, so the repro file carries the failing case's phase
    // timings and metrics (which kernels ran, per-thread split) without
    // needing a second traced reproduction by hand.
    constexpr std::size_t kMaxTracedRepros = 3;
    auto& tracer = trace::Tracer::instance();
    for (std::size_t n = 0; n < repros.size() && n < kMaxTracedRepros; ++n) {
      const Repro& repro = repros[n];
      tracer.enable();
      (void)(repro.metamorphic ? verify::run_metamorphic_case(repro.seed, fuzz_opts)
                               : verify::run_fuzz_case(repro.seed, fuzz_opts));
      const trace::TraceSnapshot snap = tracer.snapshot();
      const trace::MetricsSnapshot metrics = tracer.metrics_snapshot();
      tracer.disable();
      out << "# --- run report: seed " << repro.seed
          << (repro.metamorphic ? " (metamorphic)" : " (fuzz)")
          << ", one JSON document per line ---\n";
      out << trace::run_report_json(snap, metrics) << "\n";
    }
    std::fprintf(stderr, "wrote %zu failing repro(s) to %s\n", repros.size(),
                 opt.out.c_str());
  }

  std::printf("fuzz_layouts: %llu seeds starting at %llu (%s): %llu checks, %llu failed\n",
              static_cast<unsigned long long>(opt.seeds),
              static_cast<unsigned long long>(opt.start_seed),
              opt.quick ? "quick" : "full",
              static_cast<unsigned long long>(total_checks),
              static_cast<unsigned long long>(failed_checks));
  return failed_checks == 0 ? 0 : 1;
}
