// locality_report: run the locality observatory over one kernel and a list
// of layouts and print the full reuse-distance picture — working sets,
// cache-line utilization, the exact miss-ratio curve at every pinned
// capacity, the page/TLB-reach curve, and the SHARDS sampling error.
//
//   locality_report --kernel=bilateral --size=256 \
//                   --layouts=array-order,z-order,tuned --report-out=loc.json
//
// "tuned" in --layouts resolves to the tuner's deterministic quick-search
// winner for the kernel/shape. With --report-out the profiles also land in
// the run report's "locality" section (tools/trace_summary.py summarizes
// and validates it; tools/report_diff.py diffs two such reports).
#include <cstdio>
#include <string>
#include <vector>

#include "sfcvis/bench_util/options.hpp"
#include "sfcvis/exec/trace_session.hpp"
#include "sfcvis/locality/profile.hpp"
#include "sfcvis/tuner/tuner.hpp"

namespace {

using namespace sfcvis;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) {
      out.push_back(csv.substr(begin, end - begin));
    }
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return out;
}

std::string human_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof buf, "%.1fMB", static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof buf, "%.0fKB", static_cast<double>(bytes) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof buf, "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

void print_curve(const char* label, const trace::LocalityGranularity& g) {
  std::printf("    %s:", label);
  for (const trace::LocalityMissPoint& p : g.mrc) {
    std::printf(" %s %.3f |", human_bytes(p.capacity_bytes).c_str(), p.miss_ratio);
  }
  std::printf("\n");
}

double shards_error(const trace::LocalityProfile& p) {
  double worst = 0.0;
  for (const trace::LocalityMissPoint& exact : p.line.mrc) {
    for (const trace::LocalityMissPoint& sampled : p.sampled.mrc) {
      if (sampled.capacity_bytes == exact.capacity_bytes) {
        worst = std::max(worst, std::abs(exact.miss_ratio - sampled.miss_ratio));
      }
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const bench_util::Options opts(argc, argv);
    locality::WorkloadConfig workload;
    workload.kernel = opts.get_string("kernel", "bilateral");
    workload.threads = opts.get_u32("threads-model", 4);
    workload.trace_items = opts.get_u32("trace-items", 64);
    workload.trace_image = opts.get_u32("trace-image", 32);
    const std::uint32_t size = opts.get_u32("size", 64);
    const core::Extents3D extents{opts.get_u32("nx", size), opts.get_u32("ny", size),
                                  opts.get_u32("nz", size)};
    locality::LocalityConfig lconfig;
    lconfig.sample_rate_log2 = opts.get_u32("sample-log2", 6);
    const std::vector<std::string> layouts =
        split_list(opts.get_string("layouts", "array-order,z-order,gmorton"));

    exec::TraceSession session(opts.get_string("trace-out", ""),
                               opts.get_string("report-out", ""), opts.get_flag("trace"));

    std::printf("== locality_report: %s at %ux%ux%u ==\n", workload.kernel.c_str(),
                extents.nx, extents.ny, extents.nz);
    std::printf("replay: %zu items, %u modeled threads  |  SHARDS rate 1/%llu\n\n",
                workload.trace_items, workload.threads,
                static_cast<unsigned long long>(1ull << lconfig.sample_rate_log2));

    for (const std::string& name : layouts) {
      std::string spec_string = name;
      if (name == "tuned") {
        const tuner::TunerResult tuned = tuner::quick_search(workload.kernel, extents);
        spec_string = "gmorton:" + tuned.best.pattern;
        std::printf("tuned -> \"%s\"\n", spec_string.c_str());
      }
      const core::LayoutSpec spec = core::parse_layout_spec(spec_string);
      core::VolumeOpts vopts;
      vopts.interleave = spec.interleave;
      core::AnyVolume volume = core::make_volume(spec.kind, extents, vopts);
      locality::fill_workload_volume(volume, workload.kernel);
      const trace::LocalityProfile p =
          locality::profile_workload(volume, spec_string, workload, lconfig);

      std::printf("layout %s: %llu accesses (%s requested)\n", name.c_str(),
                  static_cast<unsigned long long>(p.accesses),
                  human_bytes(p.bytes).c_str());
      std::printf("  line (%uB): working set %llu lines (%s), cold %llu, util %.3f\n",
                  p.line.granule_bytes, static_cast<unsigned long long>(p.line.distinct),
                  human_bytes(p.line.distinct * p.line.granule_bytes).c_str(),
                  static_cast<unsigned long long>(p.line.cold), p.line.utilization);
      print_curve("MRC", p.line);
      std::printf("  page (%uB): working set %llu pages (%s), cold %llu\n",
                  p.page.granule_bytes, static_cast<unsigned long long>(p.page.distinct),
                  human_bytes(p.page.distinct * p.page.granule_bytes).c_str(),
                  static_cast<unsigned long long>(p.page.cold));
      print_curve("TLB reach", p.page);
      if (p.sampled_available) {
        std::printf("  sampled (1/%llu): est. working set %llu lines, max |exact-sampled| "
                    "%.4f\n",
                    static_cast<unsigned long long>(1ull << p.sample_rate_log2),
                    static_cast<unsigned long long>(p.sampled.distinct), shards_error(p));
      }
      std::printf("\n");
      locality::publish_profile(p);
    }
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "locality_report: %s\n", ex.what());
    return 1;
  }
}
