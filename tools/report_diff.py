#!/usr/bin/env python3
"""Diff two sfcvis run reports (or bench_gate snapshots) section by section.

Compares every comparable cell between a "base" and a "current" JSON:
result tables (cell-by-cell relative deltas), the top-down slot breakdown,
the brick-cache metric totals, and the locality section's miss-ratio
curves / utilization / working sets. Prints one line per moved cell and
exits nonzero when any delta exceeds its threshold — the CI artifact diff
and local "what did my change do to locality" loop both run through here.

Inputs are auto-detected per file:
  * run report        — top-level "sfcvis_run_report" (trace/export.cpp)
  * bench_gate snapshot — top-level "tables" + "directions"
    (tools/bench_gate.py BENCH_<sha>.json / bench/BENCH_baseline.json)
A report can be diffed against a snapshot: only the table names present
in both participate.

Thresholds: --threshold (default 0.15) applies everywhere; override a
single table with --table-threshold NAME=FRACTION (repeatable). Cells
whose base magnitude is below the absolute floor compare absolutely.
Wall-clock tables are as noisy here as in bench_gate, so thresholds are
yours to pick; --advisory reports everything but always exits 0 (CI uses
this for the cross-era artifact diff, where drift is information, not
failure).

Usage:
  tools/report_diff.py base.json current.json [--threshold=0.15]
      [--table-threshold abl_locality_mrc.csv=0.05] [--advisory]
      [--out=diff.txt]

Exit codes: 0 no delta beyond threshold (or --advisory), 1 threshold
exceeded, 2 usage / unreadable input. A self-diff is always exit 0.
"""

import argparse
import json
import sys

# Base cells below this magnitude are compared absolutely — a relative
# delta against ~0 is meaningless. Matches tools/bench_gate.py.
ABS_FLOOR = 1e-9


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        sys.exit(2)


def extract(doc, path):
    """Normalizes either input kind into {tables, topdown, brick, locality}.

    tables:   name -> {rows, cols, cells}
    topdown:  name -> topdown section (run report: single "" key)
    brick:    metric name -> total
    locality: "kernel/layout" -> profile
    """
    if "sfcvis_run_report" in doc:
        tables = {t["name"] + ".csv": t for t in doc.get("tables", [])}
        td = doc.get("topdown")
        topdown = {"": td} if td and td.get("available") else {}
        brick = {m["name"]: m["total"] for m in doc.get("metrics", [])
                 if m["name"].startswith("bricked.")}
        loc = doc.get("locality") or {}
        locality = {f"{p['kernel']}/{p['layout']}": p
                    for p in loc.get("profiles", [])} if loc.get("available") \
            else {}
        return {"tables": tables, "topdown": topdown, "brick": brick,
                "locality": locality}
    if "tables" in doc and "directions" in doc:
        topdown = {name: td for name, td in doc.get("topdown", {}).items()
                   if td.get("available")}
        return {"tables": doc["tables"], "topdown": topdown, "brick": {},
                "locality": {}}
    print(f"error: {path}: neither a run report nor a bench_gate snapshot",
          file=sys.stderr)
    sys.exit(2)


class Diff:
    """Collects per-cell deltas and tracks the worst exceedance."""

    def __init__(self, default_threshold, table_thresholds):
        self.default_threshold = default_threshold
        self.table_thresholds = table_thresholds
        self.lines = []
        self.exceeded = 0
        self.compared = 0

    def threshold_for(self, table):
        return self.table_thresholds.get(table, self.default_threshold)

    def cell(self, table, label, base, cur, threshold=None):
        """Records one numeric comparison; None on either side is skipped."""
        if base is None or cur is None:
            return
        self.compared += 1
        if threshold is None:
            threshold = self.threshold_for(table)
        if abs(base) < ABS_FLOOR:
            moved = abs(cur - base) > ABS_FLOOR
            desc = f"{base:.6g} -> {cur:.6g} (base ~0)"
        else:
            rel = (cur - base) / abs(base)
            moved = abs(rel) > threshold
            desc = f"{base:.6g} -> {cur:.6g} ({rel:+.1%})"
        if moved:
            self.exceeded += 1
            self.lines.append(f"  {table} [{label}]: {desc}")

    def note(self, line):
        self.lines.append(f"  {line}")


def diff_tables(base, cur, diff):
    shared = sorted(set(base) & set(cur))
    for name in sorted(set(base) ^ set(cur)):
        side = "base" if name in base else "current"
        diff.note(f"{name}: only in {side} (skipped)")
    for name in shared:
        b, c = base[name], cur[name]
        if b["rows"] != c["rows"] or b["cols"] != c["cols"]:
            diff.exceeded += 1
            diff.note(f"{name}: table shape changed "
                      f"({len(b['rows'])}x{len(b['cols'])} -> "
                      f"{len(c['rows'])}x{len(c['cols'])})")
            continue
        for r, row in enumerate(b["rows"]):
            for col_n, col in enumerate(b["cols"]):
                diff.cell(name, f"{row} | {col}",
                          b["cells"][r][col_n], c["cells"][r][col_n])


TOPDOWN_RATIOS = ("retiring", "frontend_bound", "backend_bound",
                  "bad_speculation")


def diff_topdown(base, cur, diff):
    for name in sorted(set(base) & set(cur)):
        b, c = base[name], cur[name]
        label = f"topdown[{name}]" if name else "topdown"
        for key in TOPDOWN_RATIOS:
            diff.cell(label, key, b.get(key), c.get(key))
    for name in sorted(set(base) ^ set(cur)):
        side = "base" if name in base else "current"
        label = f"topdown[{name}]" if name else "topdown"
        diff.note(f"{label}: only available in {side} (skipped)")


def diff_brick(base, cur, diff):
    for name in sorted(set(base) & set(cur)):
        diff.cell("brick-cache", name, base[name], cur[name])
    for name in sorted(set(base) ^ set(cur)):
        side = "base" if name in base else "current"
        diff.note(f"brick-cache {name}: only in {side} (skipped)")


def diff_locality_granularity(who, base, cur, diff):
    for key in ("distinct", "cold"):
        diff.cell(who, key, base[key], cur[key])
    diff.cell(who, "utilization", base["utilization"], cur["utilization"])
    base_mrc = {p["capacity_bytes"]: p["miss_ratio"] for p in base["mrc"]}
    cur_mrc = {p["capacity_bytes"]: p["miss_ratio"] for p in cur["mrc"]}
    for cap in sorted(set(base_mrc) & set(cur_mrc)):
        label = f"miss@{cap // 1024}KB" if cap < (1 << 20) else \
            f"miss@{cap // (1 << 20)}MB"
        diff.cell(who, label, base_mrc[cap], cur_mrc[cap])


def diff_locality(base, cur, diff):
    for key in sorted(set(base) & set(cur)):
        b, c = base[key], cur[key]
        who = f"locality[{key}]"
        diff.cell(who, "accesses", b["accesses"], c["accesses"])
        diff_locality_granularity(who + " line", b["line"], c["line"], diff)
        diff_locality_granularity(who + " page", b["page"], c["page"], diff)
        if b["sampled"] is not None and c["sampled"] is not None:
            diff_locality_granularity(who + " sampled", b["sampled"],
                                      c["sampled"], diff)
    for key in sorted(set(base) ^ set(cur)):
        side = "base" if key in base else "current"
        diff.note(f"locality[{key}]: only in {side} (skipped)")


def parse_table_threshold(spec):
    name, _, value = spec.partition("=")
    if not name or not value:
        raise argparse.ArgumentTypeError(
            f"expected NAME=FRACTION, got '{spec}'")
    try:
        return name, float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad threshold in '{spec}'")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("base", help="base run report / bench snapshot JSON")
    parser.add_argument("current", help="current JSON to compare against base")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative delta that counts as moved "
                             "(default 0.15)")
    parser.add_argument("--table-threshold", action="append", default=[],
                        type=parse_table_threshold, metavar="NAME=FRACTION",
                        help="per-table threshold override (repeatable)")
    parser.add_argument("--advisory", action="store_true",
                        help="report all deltas but always exit 0")
    parser.add_argument("--out", default=None,
                        help="also write the diff text to this file "
                             "(CI uploads it as an artifact)")
    args = parser.parse_args()

    base = extract(load(args.base), args.base)
    cur = extract(load(args.current), args.current)
    diff = Diff(args.threshold, dict(args.table_threshold))

    diff_tables(base["tables"], cur["tables"], diff)
    diff_topdown(base["topdown"], cur["topdown"], diff)
    diff_brick(base["brick"], cur["brick"], diff)
    diff_locality(base["locality"], cur["locality"], diff)

    verdict = "OK" if not diff.exceeded or args.advisory else "FAIL"
    head = (f"[report_diff] {verdict}: {diff.exceeded} of {diff.compared} "
            f"compared cells moved beyond threshold "
            f"({args.base} vs {args.current})")
    body = "\n".join([head, *diff.lines])
    print(body)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as f:
                f.write(body + "\n")
        except OSError as e:
            print(f"error: {args.out}: {e}", file=sys.stderr)
            return 2
    return 1 if diff.exceeded and not args.advisory else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `report_diff.py ... | head`
        sys.exit(0)
