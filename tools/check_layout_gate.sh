#!/usr/bin/env bash
# Layout-dispatch gate: the five concrete Grid3D<float, ...Layout>
# instantiations may only be spelled inside src/sfcvis/core/ (the
# AnyVolume facade — the single dispatch point) and tests/. Everything
# else must go through core::AnyVolume / core::make_volume, or stay
# templated over the layout.
#
# Usage: check_layout_gate.sh [repo-root]   (defaults to the script's repo)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
pattern='Grid3D<float,[[:space:]]*(sfcvis::)?(core::)?(ArrayOrder|ZOrder|Tiled|Hilbert|GeneralizedMorton)Layout'

violations=$(grep -rnE "$pattern" \
  "$root/src" "$root/bench" "$root/examples" "$root/tools" 2>/dev/null \
  | grep -v "^$root/src/sfcvis/core/")

if [ -n "$violations" ]; then
  echo "layout gate FAILED: concrete Grid3D<float, ...Layout> instantiations"
  echo "outside src/sfcvis/core/ — route these through core::AnyVolume /"
  echo "core::make_volume (or keep them templated over the layout):"
  echo
  echo "$violations"
  exit 1
fi

echo "layout gate OK: no concrete layout instantiations outside src/sfcvis/core/"
exit 0
