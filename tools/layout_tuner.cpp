// layout_tuner: search the generalized-Morton family for the cheapest
// interleave pattern per (kernel, shape, machine) and record winners in a
// JSON registry ExecutionContext::resolve_layout() consults.
//
//   layout_tuner --kernel=bilateral --size=64 --generations=8 --seed=1 \
//                --registry-out=tuned_layouts.json
//
// Fitness is a deterministic traced replay, so a given flag set reproduces
// the identical search everywhere: --fitness=memsim (default) models the
// full cache hierarchy (same platform model and counters as the ablation
// benches); --fitness=sampled-mrc ranks candidates by the SHARDS-sampled
// miss-ratio curve instead — the same ordering signal at a fraction of the
// cost. --validate re-times the winner against canonical Z-order on real
// hardware before the entry is written.
#include <cstdio>
#include <string>

#include "sfcvis/bench_util/options.hpp"
#include "sfcvis/exec/layout_registry.hpp"
#include "sfcvis/tuner/tuner.hpp"

namespace {

using namespace sfcvis;

void print_candidate(const char* label, const tuner::Candidate& c, double baseline) {
  std::printf("  %-14s %-24s fitness %12.0f  escapes %8llu  vs canonical %.3fx\n", label,
              ("\"" + c.pattern + "\"").c_str(), c.fitness,
              static_cast<unsigned long long>(c.escapes),
              c.fitness > 0 ? baseline / c.fitness : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const bench_util::Options opts(argc, argv);

  tuner::TunerConfig config;
  config.kernel = opts.get_string("kernel", "bilateral");
  const std::uint32_t size = opts.get_u32("size", 64);
  config.extents = core::Extents3D{opts.get_u32("nx", size), opts.get_u32("ny", size),
                                   opts.get_u32("nz", size)};
  config.platform_name = opts.get_string("platform", "ivybridge");
  config.cache_scale = opts.get_u32("cache-scale", 16);
  config.threads = opts.get_u32("threads", 4);
  config.trace_items = opts.get_u32("trace-items", 64);
  config.trace_image = opts.get_u32("trace-image", 32);
  config.population = opts.get_u32("population", 12);
  config.survivors = opts.get_u32("survivors", 4);
  config.generations = opts.get_u32("generations", 8);
  config.seed = opts.get_u32("seed", 1);
  config.fitness = opts.get_string("fitness", "memsim");
  const std::string registry_out = opts.get_string("registry-out", "");
  const bool validate = opts.get_flag("validate");
  const unsigned validate_reps = opts.get_u32("validate-reps", 3);
  const unsigned validate_threads = opts.get_u32("validate-threads", config.threads);

  std::printf("layout_tuner: kernel=%s shape=%s platform=%s/%ux threads=%u fitness=%s\n",
              config.kernel.c_str(), exec::shape_key(config.extents).c_str(),
              config.platform_name.c_str(), config.cache_scale, config.threads,
              config.fitness.c_str());
  std::printf("  search: population=%u survivors=%u generations=%u seed=%llu "
              "trace-items=%zu\n",
              config.population, config.survivors, config.generations,
              static_cast<unsigned long long>(config.seed), config.trace_items);

  tuner::TunerResult result;
  try {
    result = tuner::search(config, [](const std::string& line) {
      std::printf("  %s\n", line.c_str());
    });
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "layout_tuner: %s\n", ex.what());
    return 1;
  }

  std::printf("search done after %zu evaluations:\n", result.evaluations);
  print_candidate("canonical z", result.canonical_z, result.canonical_z.fitness);
  print_candidate("best canonical", result.best_canonical, result.canonical_z.fitness);
  print_candidate("winner", result.best, result.canonical_z.fitness);

  if (result.best.fitness > result.best_canonical.fitness) {
    std::fprintf(stderr,
                 "layout_tuner: search regressed below the canonical seeds — this "
                 "cannot happen with elitist selection; refusing to write a registry\n");
    return 1;
  }

  if (validate) {
    const double tuned_s = tuner::measure_wallclock(
        config, core::LayoutKind::kGMorton, result.best.pattern, validate_threads,
        validate_reps);
    const double canon_s = tuner::measure_wallclock(config, core::LayoutKind::kZOrder, "",
                                                    validate_threads, validate_reps);
    std::printf("hardware validation (%u threads, min of %u): tuned %.4fs canonical "
                "%.4fs -> %.3fx\n",
                validate_threads, validate_reps, tuned_s, canon_s, canon_s / tuned_s);
  }

  if (!registry_out.empty()) {
    exec::LayoutRegistry registry;
    try {
      registry = exec::LayoutRegistry::load(registry_out);
      std::printf("merging into existing registry %s (%zu entries)\n",
                  registry_out.c_str(), registry.size());
    } catch (const std::exception&) {
      // Start a fresh registry when the file does not exist yet.
    }
    registry.add(tuner::to_registry_entry(config, result));
    try {
      registry.save(registry_out);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "layout_tuner: %s\n", ex.what());
      return 1;
    }
    std::printf("wrote %s (%zu entries)\n", registry_out.c_str(), registry.size());
  }
  return 0;
}
