#!/usr/bin/env bash
# Dispatch gate: the raw threads::parallel_for* primitives may only be
# called from src/sfcvis/exec/ (the ExecutionContext / JobGraph dispatch
# layer) and src/sfcvis/threads/ (their home). Every kernel driver must
# go through an exec::KernelJob (filters/kernels_common.hpp builders) or,
# for structure builds, the ctx.parallel_* methods — never the free
# functions. tests/ are exempt (they unit-test the primitives), and
# bench/abl_scheduler.cpp is allowlisted: it deliberately benchmarks the
# raw pool/OpenMP primitives against each other (DESIGN.md Sec. 6).
#
# Usage: check_dispatch_gate.sh [repo-root]   (defaults to the script's repo)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
pattern='parallel_for(_static(_state)?|_dynamic|_omp_static|_omp_dynamic)?[[:space:]]*\('

violations=$(grep -rnE "$pattern" \
  "$root/src" "$root/bench" "$root/examples" "$root/tools" 2>/dev/null \
  | grep -v "^$root/src/sfcvis/exec/" \
  | grep -v "^$root/src/sfcvis/threads/" \
  | grep -v "^$root/bench/abl_scheduler.cpp:" \
  | grep -v "^$root/tools/check_dispatch_gate.sh:")

if [ -n "$violations" ]; then
  echo "dispatch gate FAILED: direct threads::parallel_for* calls outside"
  echo "src/sfcvis/exec/ and src/sfcvis/threads/ — build an exec::KernelJob"
  echo "and submit it through ExecutionContext::jobs() (or use the"
  echo "ctx.parallel_* methods for structure builds):"
  echo
  echo "$violations"
  exit 1
fi

echo "dispatch gate OK: no direct parallel_for calls outside exec/ and threads/"
exit 0
