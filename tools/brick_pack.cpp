// brick_pack: packs a volume into the SFCBRK01 out-of-core brick format
// (core/brick_file.hpp) that core::BrickedVolume /
// exec::ExecutionContext::open_bricked consume.
//
//   brick_pack --out=vol.sfcbrk --synthetic=phantom --size=128 \
//              --brick-edge=16 --inner=z-order
//   brick_pack --out=vol.sfcbrk --in=volume.bov --brick-edge=32 \
//              --inner=gmorton:zyxzyxzzyyxx
//   brick_pack --info=vol.sfcbrk
//
// Sources: --in reads a BOV header + float payload (data/volume_io.hpp);
// --synthetic generates one of the built-in fields (phantom, combustion,
// marschner-lobb) at --size (or --nx/--ny/--nz). --info prints and
// validates the header of an existing brick file (including the exact
// file-size check) without touching the payload.
#include <cstdio>
#include <exception>
#include <string>

#include "sfcvis/bench_util/options.hpp"
#include "sfcvis/core/brick_file.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/data/combustion.hpp"
#include "sfcvis/data/marschner_lobb.hpp"
#include "sfcvis/data/phantom.hpp"
#include "sfcvis/data/volume_io.hpp"

namespace {

using namespace sfcvis;

void print_info(const char* path, const core::BrickFileInfo& info) {
  const core::Extents3D grid = info.brick_grid();
  std::printf("%s:\n", path);
  std::printf("  extents      %u x %u x %u (%zu voxels)\n", info.extents.nx,
              info.extents.ny, info.extents.nz, info.extents.size());
  std::printf("  brick edge   %u (%zu floats, %zu bytes per brick)\n", info.brick_edge,
              info.brick_elems(), info.brick_bytes());
  std::printf("  brick grid   %u x %u x %u (%llu bricks, Morton order)\n", grid.nx,
              grid.ny, grid.nz, static_cast<unsigned long long>(info.brick_count));
  std::printf("  inner layout %s", core::to_string(info.inner_kind));
  if (info.inner_kind == core::LayoutKind::kTiled) {
    std::printf(" (tile %u)", info.inner_tile);
  }
  if (info.inner_kind == core::LayoutKind::kGMorton && !info.interleave.empty()) {
    std::printf(" (\"%s\")", info.interleave.c_str());
  }
  std::printf("\n  payload      %llu bytes at offset %llu\n",
              static_cast<unsigned long long>(info.expected_file_size() -
                                              info.payload_offset),
              static_cast<unsigned long long>(info.payload_offset));
}

}  // namespace

int main(int argc, char** argv) {
  const bench_util::Options opts(argc, argv);
  try {
    const std::string info_path = opts.get_string("info", "");
    if (!info_path.empty()) {
      print_info(info_path.c_str(), core::read_brick_file_header(info_path));
      return 0;
    }

    const std::string out = opts.get_string("out", "");
    if (out.empty()) {
      std::fprintf(stderr,
                   "brick_pack: --out=<file> required (or --info=<file>); see the "
                   "header comment for usage\n");
      return 2;
    }

    core::AnyVolume src;
    const std::string in = opts.get_string("in", "");
    if (!in.empty()) {
      const data::RawVolume raw = data::load_bov(in);
      src = core::make_volume(core::LayoutKind::kArray, raw.extents);
      std::size_t cursor = 0;
      src.fill_from([&](std::uint32_t, std::uint32_t, std::uint32_t) {
        return raw.samples[cursor++];
      });
      std::printf("brick_pack: loaded %s (%u x %u x %u)\n", in.c_str(), raw.extents.nx,
                  raw.extents.ny, raw.extents.nz);
    } else {
      const std::uint32_t size = opts.get_u32("size", 64);
      const core::Extents3D e{opts.get_u32("nx", size), opts.get_u32("ny", size),
                              opts.get_u32("nz", size)};
      const std::string field = opts.get_string("synthetic", "phantom");
      src = core::make_volume(core::LayoutKind::kArray, e);
      if (field == "phantom") {
        data::fill_mri_phantom(src);
      } else if (field == "combustion") {
        data::fill_combustion(src);
      } else if (field == "marschner-lobb" || field == "ml") {
        data::fill_marschner_lobb(src);
      } else {
        std::fprintf(stderr,
                     "brick_pack: unknown --synthetic=%s (valid: phantom, combustion, "
                     "marschner-lobb)\n",
                     field.c_str());
        return 2;
      }
      std::printf("brick_pack: generated %s at %u x %u x %u\n", field.c_str(), e.nx,
                  e.ny, e.nz);
    }

    core::BrickPackOptions popts;
    popts.brick_edge = opts.get_u32("brick-edge", 16);
    const core::LayoutSpec inner =
        core::parse_layout_spec(opts.get_string("inner", "z-order"));
    popts.inner_kind = inner.kind;
    popts.interleave = inner.interleave;
    popts.inner_tile = opts.get_u32("inner-tile", 8);

    const core::BrickFileInfo info = core::pack_brick_file(out, src, popts);
    print_info(out.c_str(), info);
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "brick_pack: %s\n", ex.what());
    return 1;
  }
}
