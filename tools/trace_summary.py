#!/usr/bin/env python3
"""Summarize (or validate) sfcvis trace artifacts.

Takes the JSON files written by a traced run (bench binaries with
--trace-out=/--report-out=, see bench/common.hpp) and either prints a
human-readable breakdown or — with --validate — checks structural
invariants and exits nonzero on the first violation, which is how CI's
trace-smoke job and the unit tests consume it.

File kinds are auto-detected:
  * run report    — top-level key "sfcvis_run_report" (run_report_json).
    Summary: per-phase table (count, total, mean, max, load imbalance,
    cache misses when hardware counters were live), per-thread span/drop
    counts, metrics registry totals, histogram shapes.
  * Chrome trace  — top-level key "traceEvents" (chrome_trace_json,
    loadable in Perfetto). Summary: event counts per name; validation
    checks every duration event carries the Perfetto-required keys.

Usage:
  tools/trace_summary.py report.json [trace.json ...]
  tools/trace_summary.py --validate report.json trace.json

Exit codes: 0 OK, 1 validation failure, 2 usage / unreadable input.
"""

import argparse
import json
import sys

# Keys Perfetto's trace-event importer needs on every duration event.
DURATION_EVENT_KEYS = ("ph", "ts", "pid", "tid", "name")

RUN_REPORT_REQUIRED = (
    "sfcvis_run_report",
    "span_tracing",
    "dropped_spans",
    "hw_counters",
    "topdown",
    "locality",
    "jobs",
    "threads",
    "phases",
    "metrics",
    "histograms",
    "tables",
)

# Slot-ratio keys an available top-down section must carry beyond the raw
# counts; the stall-derived ratios additionally require has_stalls.
TOPDOWN_AVAILABLE_KEYS = ("cycles", "instructions", "has_stalls", "retiring")
TOPDOWN_STALL_KEYS = ("frontend_bound", "backend_bound", "bad_speculation",
                      "stalled_cycles_frontend", "stalled_cycles_backend")


class ValidationError(Exception):
    pass


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        sys.exit(2)


def detect_kind(doc):
    if isinstance(doc, dict) and "sfcvis_run_report" in doc:
        return "report"
    if isinstance(doc, dict) and "traceEvents" in doc:
        return "trace"
    return None


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def validate_trace(doc, path):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValidationError(f"{path}: traceEvents is not a list")
    if not events:
        raise ValidationError(f"{path}: traceEvents is empty")
    for n, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValidationError(f"{path}: traceEvents[{n}] is not an object")
        if ev.get("ph") == "M":
            continue  # metadata events carry name/pid/tid but no ts by contract
        for key in DURATION_EVENT_KEYS:
            if key not in ev:
                raise ValidationError(
                    f"{path}: traceEvents[{n}] ({ev.get('name', '?')}) "
                    f"missing required key '{key}'")
        if ev["ph"] == "X" and "dur" not in ev:
            raise ValidationError(
                f"{path}: traceEvents[{n}] is a complete event without 'dur'")
    if not any(ev.get("ph") == "X" for ev in events):
        raise ValidationError(f"{path}: no duration ('X') events recorded")


def validate_report(doc, path):
    for key in RUN_REPORT_REQUIRED:
        if key not in doc:
            raise ValidationError(f"{path}: missing required key '{key}'")
    hw = doc["hw_counters"]
    if not isinstance(hw, dict) or "available" not in hw or "source" not in hw:
        raise ValidationError(f"{path}: hw_counters must carry available + source")
    if hw["available"] and doc.get("run_totals") is None:
        raise ValidationError(
            f"{path}: hw counters reported available but run_totals is null")
    td = doc["topdown"]
    if not isinstance(td, dict) or "available" not in td or "source" not in td:
        raise ValidationError(f"{path}: topdown must carry available + source")
    if td["available"]:
        for key in TOPDOWN_AVAILABLE_KEYS:
            if key not in td:
                raise ValidationError(
                    f"{path}: available topdown section missing '{key}'")
        if td["has_stalls"]:
            for key in TOPDOWN_STALL_KEYS:
                if key not in td:
                    raise ValidationError(
                        f"{path}: topdown with stalls missing '{key}'")
        total = td["retiring"] + sum(
            td.get(k, 0.0)
            for k in ("frontend_bound", "backend_bound", "bad_speculation"))
        if not 0.0 <= td["retiring"] or (td["has_stalls"] and total > 3.0):
            # Ratios are approximations; be loose, but catch garbage.
            raise ValidationError(
                f"{path}: topdown slot ratios out of range (sum {total:.3f})")
    for phase in doc["phases"]:
        for key in ("name", "count", "total_ms", "mean_us", "max_us", "per_thread"):
            if key not in phase:
                raise ValidationError(
                    f"{path}: phase {phase.get('name', '?')} missing '{key}'")
        if phase["count"] <= 0:
            raise ValidationError(
                f"{path}: phase {phase['name']} has non-positive count")
    for table in doc["tables"]:
        rows, cols = len(table.get("rows", [])), len(table.get("cols", []))
        cells = table.get("cells", [])
        if len(cells) != rows or any(len(r) != cols for r in cells):
            raise ValidationError(
                f"{path}: table {table.get('name', '?')} cells do not match "
                f"its row/col labels ({rows}x{cols})")
    validate_brick_cache(doc, path, required=False)
    validate_locality(doc, path, required=False)
    validate_jobs(doc, path, required=False)


def brick_cache_totals(doc):
    """The report's 'bricked.*' metric totals (exec::publish_brick_cache_
    metrics), or an empty dict when the run had no bricked volume."""
    return {m["name"]: m["total"] for m in doc.get("metrics", [])
            if m["name"].startswith("bricked.")}


def validate_brick_cache(doc, path, required):
    """Checks the out-of-core brick-cache section of a run report.

    When any 'bricked.*' counter is present, the hit/miss pair must both
    exist (a publish always writes the full set) and a prefetch hit must
    imply an issued prefetch. With required=True (CI's out-of-core smoke
    job), a report without the section fails outright.
    """
    brick = brick_cache_totals(doc)
    if not brick:
        if required:
            raise ValidationError(
                f"{path}: no bricked.* metrics — the run never published "
                f"brick-cache counters (exec::publish_brick_cache_metrics)")
        return
    for key in ("bricked.cache_hit", "bricked.cache_miss"):
        if key not in brick:
            raise ValidationError(
                f"{path}: brick-cache section incomplete: missing '{key}'")
    if brick.get("bricked.prefetch_hits", 0) > 0 and \
            brick.get("bricked.prefetch_issued", 0) == 0:
        raise ValidationError(
            f"{path}: brick-cache reports prefetch hits without any issued "
            f"prefetches")
    if required and brick["bricked.cache_hit"] + brick["bricked.cache_miss"] == 0:
        raise ValidationError(
            f"{path}: brick-cache section present but never touched "
            f"(0 hits + 0 misses)")


LOCALITY_PROFILE_KEYS = ("kernel", "layout", "accesses", "bytes", "line",
                         "page", "sample_rate_log2", "sampled")
LOCALITY_GRANULARITY_KEYS = ("granule_bytes", "accesses", "distinct", "cold",
                             "utilization", "reuse_log2", "mrc")


def validate_locality_granularity(gran, path, who):
    for key in LOCALITY_GRANULARITY_KEYS:
        if key not in gran:
            raise ValidationError(f"{path}: {who} missing '{key}'")
    gb = gran["granule_bytes"]
    if gb <= 0 or gb & (gb - 1):
        raise ValidationError(
            f"{path}: {who} granule_bytes {gb} is not a power of two")
    if gran["distinct"] > gran["accesses"] or gran["cold"] > gran["accesses"]:
        raise ValidationError(
            f"{path}: {who} counts inconsistent (distinct/cold > accesses)")
    util = gran["utilization"]
    if util is not None and not 0.0 <= util <= 1.0:
        raise ValidationError(
            f"{path}: {who} utilization {util} outside [0, 1]")
    prev_capacity, prev_ratio = 0, 1.0
    for point in gran["mrc"]:
        cap, ratio = point["capacity_bytes"], point["miss_ratio"]
        if cap <= prev_capacity:
            raise ValidationError(
                f"{path}: {who} MRC capacities not strictly ascending at {cap}")
        if not 0.0 <= ratio <= 1.0:
            raise ValidationError(
                f"{path}: {who} miss ratio {ratio} at {cap}B outside [0, 1]")
        # An LRU miss-ratio curve over a fixed trace can only fall (or hold)
        # as the modeled cache grows; allow float-rounding slack.
        if ratio > prev_ratio + 1e-9:
            raise ValidationError(
                f"{path}: {who} MRC not monotone nonincreasing at {cap}B "
                f"({prev_ratio} -> {ratio})")
        prev_capacity, prev_ratio = cap, ratio


def validate_locality(doc, path, required):
    """Checks the 'locality' run-report section (reuse-distance profiles).

    The section is always present; available=False carries a reason in
    'source'. An available section must hold at least one profile, and each
    profile's miss-ratio curves must be well-formed: strictly ascending
    capacities, ratios in [0, 1], monotone nonincreasing (a bigger modeled
    LRU cache can only hit more). With required=True (CI's locality smoke),
    an unavailable section fails outright.
    """
    loc = doc.get("locality")
    if not isinstance(loc, dict) or "available" not in loc or "source" not in loc:
        raise ValidationError(f"{path}: locality must carry available + source")
    if not loc["available"]:
        if required:
            raise ValidationError(
                f"{path}: locality section unavailable ({loc['source']}) but "
                f"--require-locality was given")
        return
    profiles = loc.get("profiles")
    if not profiles:
        raise ValidationError(
            f"{path}: locality reported available with no profiles")
    for n, profile in enumerate(profiles):
        who = f"locality profile [{n}]"
        for key in LOCALITY_PROFILE_KEYS:
            if key not in profile:
                raise ValidationError(f"{path}: {who} missing '{key}'")
        who = (f"locality[{profile['kernel']}/{profile['layout']}]")
        if profile["accesses"] <= 0:
            raise ValidationError(f"{path}: {who} recorded no accesses")
        validate_locality_granularity(profile["line"], path, who + " line")
        validate_locality_granularity(profile["page"], path, who + " page")
        if profile["line"]["granule_bytes"] > profile["page"]["granule_bytes"]:
            raise ValidationError(
                f"{path}: {who} line granule larger than page granule")
        if profile["sampled"] is not None:
            validate_locality_granularity(profile["sampled"], path,
                                          who + " sampled")


JOB_ENTRY_KEYS = ("id", "kernel", "state", "tiles", "tiles_run",
                  "queue_wait_ns", "run_ns", "deadline_ns", "deadline_missed",
                  "structure_cache_hits", "structure_cache_misses")
JOB_STATES = ("done", "cancelled")


def validate_jobs(doc, path, required):
    """Checks the 'jobs' run-report section (exec::JobGraph dispatch).

    The section is always present; available=False carries a reason in
    'source'. An available section must hold at least one job entry, each
    with the full per-job accounting set: unique positive ids, a terminal
    state, tiles_run consistent with the state (a done job ran every tile;
    only cancellation cuts a job short), and a deadline miss only ever
    flagged against a real deadline. With required=True (CI's trace-smoke
    job on the job-overhead bench), an unavailable section fails outright.
    """
    jobs = doc.get("jobs")
    if not isinstance(jobs, dict) or "available" not in jobs or "source" not in jobs:
        raise ValidationError(f"{path}: jobs must carry available + source")
    if not jobs["available"]:
        if required:
            raise ValidationError(
                f"{path}: jobs section unavailable ({jobs['source']}) but "
                f"--require-jobs was given")
        return
    entries = jobs.get("jobs")
    if not entries:
        raise ValidationError(f"{path}: jobs reported available with no entries")
    seen_ids = set()
    for n, job in enumerate(entries):
        who = f"job [{n}]"
        for key in JOB_ENTRY_KEYS:
            if key not in job:
                raise ValidationError(f"{path}: {who} missing '{key}'")
        who = f"job {job['id']} ({job['kernel']})"
        if job["id"] <= 0 or job["id"] in seen_ids:
            raise ValidationError(f"{path}: {who} id not unique and positive")
        seen_ids.add(job["id"])
        if job["state"] not in JOB_STATES:
            raise ValidationError(
                f"{path}: {who} state '{job['state']}' not terminal "
                f"(expected one of {JOB_STATES})")
        if job["tiles_run"] > job["tiles"]:
            raise ValidationError(
                f"{path}: {who} ran more tiles than decomposed "
                f"({job['tiles_run']} > {job['tiles']})")
        if job["state"] == "done" and job["tiles_run"] != job["tiles"]:
            raise ValidationError(
                f"{path}: {who} done with {job['tiles_run']}/{job['tiles']} "
                f"tiles — only cancellation may cut a job short")
        if job["deadline_missed"] and job["deadline_ns"] == 0:
            raise ValidationError(
                f"{path}: {who} flags a deadline miss without a deadline")


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------

def fmt_count(v):
    return f"{v:,}"


def phase_label(phase):
    tag = phase.get("tag")
    return f"{phase['name']} [{tag}]" if tag else phase["name"]


def summarize_report(doc, path):
    hw = doc["hw_counters"]
    print(f"== run report: {path} ==")
    print(f"span tracing: {'on' if doc['span_tracing'] else 'off'}  |  "
          f"counters: {hw['source']}  |  dropped spans: {doc['dropped_spans']}")

    td = doc.get("topdown")
    if td:
        if td.get("available"):
            line = f"top-down: retiring {td['retiring']:.1%}"
            if td.get("has_stalls"):
                line += (f"  frontend-bound {td['frontend_bound']:.1%}"
                         f"  backend-bound {td['backend_bound']:.1%}"
                         f"  bad-speculation {td['bad_speculation']:.1%}")
            else:
                line += "  (stall counters unavailable; level-1 split omitted)"
            print(line)
        else:
            print(f"top-down: unavailable ({td.get('source', '?')})")

    if doc["phases"]:
        have_hw = any(p.get("counters") for p in doc["phases"])
        head = (f"{'phase':<34} {'count':>8} {'total ms':>10} {'mean us':>10} "
                f"{'max us':>10} {'imbal':>6}")
        if have_hw:
            head += f" {'cache miss':>12}"
        print("\n" + head)
        for phase in doc["phases"]:
            line = (f"{phase_label(phase):<34} {fmt_count(phase['count']):>8} "
                    f"{phase['total_ms']:>10.3f} {phase['mean_us']:>10.1f} "
                    f"{phase['max_us']:>10.1f} {phase.get('imbalance', 0.0):>6.2f}")
            if have_hw:
                misses = (phase.get("counters") or {}).get("cache_misses")
                line += f" {fmt_count(misses):>12}" if misses is not None else \
                    f" {'-':>12}"
            print(line)

    threads = doc["threads"]
    if threads:
        print(f"\nthreads ({len(threads)}):")
        for t in threads:
            who = f"worker {t['worker']}" if t.get("worker") is not None else \
                f"thread {t['tid']}"
            drop = f", dropped {fmt_count(t['dropped'])}" if t["dropped"] else ""
            print(f"  {who:<12} {fmt_count(t['spans'])} spans{drop}")

    brick = brick_cache_totals(doc)
    if brick:
        hits = brick.get("bricked.cache_hit", 0)
        misses = brick.get("bricked.cache_miss", 0)
        total = hits + misses
        rate = f"{hits / total:.1%}" if total else "n/a"
        print(f"\nbrick cache: {fmt_count(hits)} hits / {fmt_count(misses)} "
              f"misses (hit rate {rate})")
        print(f"  evictions {fmt_count(brick.get('bricked.evictions', 0))}  "
              f"overflow {fmt_count(brick.get('bricked.overflow_bricks', 0))}  "
              f"prefetch {fmt_count(brick.get('bricked.prefetch_hits', 0))}/"
              f"{fmt_count(brick.get('bricked.prefetch_issued', 0))} hit/issued")

    loc = doc.get("locality")
    if loc:
        if loc.get("available"):
            print(f"\nlocality ({len(loc['profiles'])} profiles):")
            for p in loc["profiles"]:
                line, page = p["line"], p["page"]
                util = line["utilization"]
                util_s = f"{util:.3f}" if util is not None else "n/a"
                mrc = line["mrc"]
                first, last = mrc[0], mrc[-1]
                print(f"  {p['kernel']}/{p['layout']:<28} "
                      f"{fmt_count(p['accesses'])} accesses  "
                      f"WS {fmt_count(line['distinct'])} lines / "
                      f"{fmt_count(page['distinct'])} pages  util {util_s}")
                print(f"    MRC {first['capacity_bytes'] // 1024}KB "
                      f"{first['miss_ratio']:.4f} .. "
                      f"{last['capacity_bytes'] // (1 << 20)}MB "
                      f"{last['miss_ratio']:.4f}"
                      + ("" if p["sampled"] is None else
                         f"  (SHARDS rate 1/{1 << p['sample_rate_log2']})"))
        else:
            print(f"\nlocality: unavailable ({loc.get('source', '?')})")

    jobs = doc.get("jobs")
    if jobs:
        if jobs.get("available"):
            entries = jobs["jobs"]
            print(f"\njobs ({len(entries)}):")
            for j in entries:
                cache = ""
                if j["structure_cache_hits"] or j["structure_cache_misses"]:
                    cache = (f"  cache {j['structure_cache_hits']}h/"
                             f"{j['structure_cache_misses']}m")
                miss = "  DEADLINE MISSED" if j["deadline_missed"] else ""
                print(f"  #{j['id']:<4} {j['kernel']:<26} {j['state']:<10} "
                      f"{fmt_count(j['tiles_run'])}/{fmt_count(j['tiles'])} tiles  "
                      f"wait {j['queue_wait_ns'] / 1e6:.3f} ms  "
                      f"run {j['run_ns'] / 1e6:.3f} ms{cache}{miss}")
        else:
            print(f"\njobs: unavailable ({jobs.get('source', '?')})")

    if doc["metrics"]:
        print("\nmetrics:")
        for m in doc["metrics"]:
            imbal = m.get("imbalance", 0.0)
            print(f"  {m['name']:<34} total {fmt_count(m['total']):>14}  "
                  f"imbal {imbal:.2f}")
    if doc["histograms"]:
        print("\nhistograms (log2 buckets):")
        for h in doc["histograms"]:
            print(f"  {h['name']:<34} n={fmt_count(h['count'])} "
                  f"mean={h['mean']:.2f} min={h['min']} max={h['max']}")
    if doc["tables"]:
        names = ", ".join(t["name"] for t in doc["tables"])
        print(f"\ntables: {names}")
    print()


def summarize_trace(doc, path):
    events = doc.get("traceEvents", [])
    spans = [ev for ev in events if ev.get("ph") == "X"]
    print(f"== chrome trace: {path} ==")
    print(f"{len(events)} events, {len(spans)} spans")
    by_name = {}
    for ev in spans:
        agg = by_name.setdefault(ev["name"], [0, 0.0])
        agg[0] += 1
        agg[1] += ev.get("dur", 0.0)
    for name in sorted(by_name, key=lambda n: -by_name[n][1]):
        count, dur = by_name[name]
        print(f"  {name:<34} {fmt_count(count):>10} spans {dur / 1e3:>10.3f} ms")
    print()


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="run report / trace JSON files")
    parser.add_argument("--validate", action="store_true",
                        help="check structure instead of printing a summary")
    parser.add_argument("--require-brick-cache", action="store_true",
                        help="with --validate: fail a run report that carries "
                             "no (or an untouched) bricked.* cache section")
    parser.add_argument("--require-locality", action="store_true",
                        help="with --validate: fail a run report whose "
                             "locality section is unavailable (no reuse-"
                             "distance profiles were published)")
    parser.add_argument("--require-jobs", action="store_true",
                        help="with --validate: fail a run report whose jobs "
                             "section is unavailable (no exec::JobGraph job "
                             "ran while the trace session was active)")
    args = parser.parse_args()

    failures = 0
    for path in args.files:
        doc = load(path)
        kind = detect_kind(doc)
        if kind is None:
            print(f"error: {path}: neither a run report nor a Chrome trace",
                  file=sys.stderr)
            sys.exit(2)
        if args.validate:
            try:
                (validate_report if kind == "report" else validate_trace)(doc, path)
                if args.require_brick_cache and kind == "report":
                    validate_brick_cache(doc, path, required=True)
                if args.require_locality and kind == "report":
                    validate_locality(doc, path, required=True)
                if args.require_jobs and kind == "report":
                    validate_jobs(doc, path, required=True)
                print(f"[trace_summary] OK: {path} ({kind})")
            except ValidationError as e:
                print(f"[trace_summary] FAIL: {e}", file=sys.stderr)
                failures += 1
        else:
            (summarize_report if kind == "report" else summarize_trace)(doc, path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
