#!/usr/bin/env python3
"""Render the bench harness's CSV tables as terminal heat-tables.

The fig*/abl_* binaries write one CSV per table when run with
`--csv-dir=DIR`. This script recreates the paper's figure style in the
terminal: green shades where Z-order wins (positive ds), red where array
order wins, intensity by magnitude.

Usage:
    tools/plot_results.py results/                 # all tables
    tools/plot_results.py results/volrend_ivybridge_counter_ds.csv
"""

import csv
import math
import pathlib
import sys


def shade(value: float, lo: float, hi: float) -> str:
    """ANSI background for one cell: green positive, red negative."""
    if value >= 0:
        level = 0 if hi <= 0 else min(1.0, value / hi)
        code = 22 + int(level * 3) * 36  # dark greens 22, 58... use 256-color greens
        green = [0, 22, 28, 34, 40][min(4, int(level * 4) + (1 if level > 0 else 0))]
        return f"\033[48;5;{green}m" if green else ""
    level = 0 if lo >= 0 else min(1.0, value / lo)
    red = [0, 52, 88, 124, 160][min(4, int(level * 4) + (1 if level > 0 else 0))]
    return f"\033[48;5;{red}m" if red else ""


def render(path: pathlib.Path) -> None:
    with path.open() as handle:
        rows = list(csv.reader(handle))
    if not rows or len(rows) < 2:
        print(f"{path}: empty table")
        return
    header, body = rows[0], rows[1:]
    values = [[float(cell) for cell in row[1:]] for row in body]
    flat = [v for row in values for v in row if not math.isnan(v)]
    lo, hi = min(flat), max(flat)
    label_width = max(len(row[0]) for row in body + [header])
    cell_width = max(7, max(len(h) for h in header[1:]) + 1)

    print(f"\n== {path.name} ==")
    print(" " * label_width + "".join(h.rjust(cell_width) for h in header[1:]))
    reset = "\033[0m"
    for row, vals in zip(body, values):
        line = row[0].ljust(label_width)
        for v in vals:
            line += shade(v, lo, hi) + f"{v:{cell_width}.2f}" + reset
        print(line)


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    target = pathlib.Path(sys.argv[1])
    paths = sorted(target.glob("*.csv")) if target.is_dir() else [target]
    if not paths:
        print(f"no CSV tables under {target}")
        return 1
    for path in paths:
        render(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
