#!/usr/bin/env python3
"""Validate (or summarize) a tuned-layout registry JSON file.

The registry is written by tools/layout_tuner and consumed by
exec::ExecutionContext::resolve_layout (format: DESIGN.md Sec. 9). This
checker is how CI's tuner-smoke job proves the emitted file is a registry
ExecutionContext will actually accept:

  * top-level "sfcvis_layout_registry" version is 1;
  * every entry carries kernel / shape / platform / interleave;
  * shape parses as "NXxNYxNZ" with positive extents;
  * the interleave string is valid for the shape: only 'x'/'y'/'z'
    characters, exactly ceil(log2(axis)) of each (the padded bit count) —
    the same rule core::InterleavePattern enforces;
  * fitness <= baseline_fitness (a tuner winner must not be worse than
    canonical Z-order: the search seeds with it, so a regression here
    means the registry was edited by hand or the tuner is broken);
  * no duplicate (kernel, shape, platform) keys.

Usage:
  tools/registry_check.py tuned_layouts.json [more.json ...]
  tools/registry_check.py --summary tuned_layouts.json

Exit codes: 0 OK, 1 validation failure, 2 usage / unreadable input.
"""

import argparse
import json
import sys

REQUIRED_KEYS = ("kernel", "shape", "platform", "interleave")
KNOWN_KERNELS = ("bilateral", "raycast")


def fail(path, msg):
    print(f"registry_check: {path}: {msg}", file=sys.stderr)
    return False


def padded_bits(n):
    """ceil(log2(n)) — bits of the power-of-two-padded axis."""
    return max(0, (int(n) - 1).bit_length())


def check_entry(path, i, entry):
    where = f"entries[{i}]"
    if not isinstance(entry, dict):
        return fail(path, f"{where}: not an object")
    for key in REQUIRED_KEYS:
        if not isinstance(entry.get(key), str) or not entry[key]:
            return fail(path, f"{where}: missing or empty \"{key}\"")
    if entry["kernel"] not in KNOWN_KERNELS:
        return fail(
            path,
            f"{where}: unknown kernel \"{entry['kernel']}\" (want one of {KNOWN_KERNELS})",
        )

    parts = entry["shape"].split("x")
    if len(parts) != 3 or not all(p.isdigit() and int(p) > 0 for p in parts):
        return fail(path, f"{where}: malformed shape \"{entry['shape']}\" (want NXxNYxNZ)")
    nx, ny, nz = (int(p) for p in parts)

    pattern = entry["interleave"]
    bad = set(pattern) - set("xyz")
    if bad:
        return fail(path, f"{where}: invalid interleave characters {sorted(bad)}")
    want = {"x": padded_bits(nx), "y": padded_bits(ny), "z": padded_bits(nz)}
    have = {c: pattern.count(c) for c in "xyz"}
    if have != want:
        return fail(
            path,
            f"{where}: interleave \"{pattern}\" has {have} bits but shape "
            f"{entry['shape']} needs {want}",
        )

    fitness = entry.get("fitness")
    baseline = entry.get("baseline_fitness")
    for name, v in (("fitness", fitness), ("baseline_fitness", baseline)):
        if v is not None and (not isinstance(v, (int, float)) or v < 0):
            return fail(path, f"{where}: {name} must be a non-negative number")
    if fitness is not None and baseline is not None and baseline > 0:
        if fitness > baseline:
            return fail(
                path,
                f"{where}: tuned fitness {fitness} is worse than canonical "
                f"baseline {baseline} — a regressed winner must not ship",
            )
    return True


def check_file(path, summary):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as ex:
        print(f"registry_check: {path}: unreadable: {ex}", file=sys.stderr)
        return 2

    if not isinstance(doc, dict) or doc.get("sfcvis_layout_registry") != 1:
        fail(path, 'missing or unsupported "sfcvis_layout_registry" version (want 1)')
        return 1
    entries = doc.get("entries")
    if not isinstance(entries, list):
        fail(path, '"entries" must be an array')
        return 1

    ok = True
    seen = {}
    for i, entry in enumerate(entries):
        if not check_entry(path, i, entry):
            ok = False
            continue
        key = (entry["kernel"], entry["shape"], entry["platform"])
        if key in seen:
            ok = fail(path, f"entries[{i}]: duplicate key {key} (also entries[{seen[key]}])")
            continue
        seen[key] = i

    if not ok:
        return 1
    if summary:
        print(f"{path}: {len(entries)} tuned layout(s)")
        for entry in entries:
            gain = ""
            if entry.get("baseline_fitness") and entry.get("fitness"):
                gain = f"  {entry['baseline_fitness'] / entry['fitness']:.3f}x vs canonical"
            print(
                f"  ({entry['kernel']}, {entry['shape']}, {entry['platform']}) -> "
                f"\"{entry['interleave']}\"{gain}"
            )
    else:
        print(f"{path}: OK ({len(entries)} entries)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="registry JSON files to check")
    parser.add_argument("--summary", action="store_true", help="print per-entry details")
    args = parser.parse_args()

    worst = 0
    for path in args.files:
        worst = max(worst, check_file(path, args.summary))
    return worst


if __name__ == "__main__":
    sys.exit(main())
