#!/usr/bin/env python3
"""Perf-regression gate over the --quick ablation benches.

Runs a fixed set of bench binaries in quick mode, collects their CSV
tables, writes a BENCH_<sha>.json snapshot, and compares the
*deterministic* tables (memsim counters / modeled cycles — bit-stable
across runs and machines) against the committed baseline
bench/BENCH_baseline.json. A gated cell that moves more than the
threshold (default 15%) in the bad direction fails the gate.

Wall-clock tables are collected and reported too, but never gate: CI
machines are too noisy for sub-2x timing comparisons to mean anything.

Tables are collected from each bench's CSV output by default; with
--from-report they are read from the machine-readable run-report JSON
instead (the bench runs with --report-out=, see bench/common.hpp and
src/sfcvis/trace/export.hpp). Both sources carry the same cells, so the
two modes gate identically against the same baseline. --from-report also
picks up each run's whole-run top-down slot breakdown and gates the
retiring fraction (direction: higher): a drop past the threshold vs the
baseline fails. The gate only fires when a PMU was live in *both* runs —
missing counters (VMs without vPMU) downgrade to an advisory skip.

Usage:
  tools/bench_gate.py [--build-dir=build] [--threshold=0.15]
                      [--baseline=bench/BENCH_baseline.json]
                      [--out-dir=<build-dir>] [--update-baseline]
                      [--from-report]

Exit codes: 0 gate passed (or baseline updated), 1 regression detected,
2 usage / environment error.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Bench binaries to run (all in --quick mode) and, per binary, which of
# their CSV tables gate and in which direction.
#   "lower"  — regression is an increase  (misses, cycles)
#   "higher" — regression is a decrease   (skip rate)
#   "advisory" — record + report, never fail (wall-clock)
BENCHES = [
    {
        "binary": "abl_traversal",
        "args": ["--quick"],
        "tables": {
            "abl_traversal_escapes.csv": "lower",
            "abl_traversal_cycles.csv": "lower",
        },
    },
    {
        "binary": "abl_empty_space",
        "args": ["--quick"],
        "tables": {
            "abl_empty_fills.csv": "lower",
            "abl_empty_skiprate.csv": "higher",
            "abl_empty_runtime.csv": "advisory",
            "abl_empty_speedup.csv": "advisory",
        },
    },
    {
        "binary": "abl_layout_compare",
        "args": ["--quick"],
        "tables": {
            # The main layout tables mix wall clock (noisy) with memsim rows,
            # so they only advise; the tuned-vs-canonical-Z restatement is
            # pure memsim and gates: the quick_search winner must keep
            # beating (or matching) canonical Z-order on modeled cost.
            "abl_layout_bilateral.csv": "advisory",
            "abl_layout_volrend.csv": "advisory",
            "abl_layout_tuned_cycles.csv": "lower",
        },
    },
    {
        "binary": "abl_simd",
        "args": ["--quick"],
        "tables": {
            # Sample counts are deterministic by the packet bit-identity
            # contract; any growth means the traversal stopped matching the
            # scalar sample set.
            "abl_simd_samples.csv": "lower",
            "abl_simd_raycast_ms.csv": "advisory",
            "abl_simd_raycast_speedup.csv": "advisory",
            "abl_simd_bilateral_ms.csv": "advisory",
        },
    },
    {
        "binary": "abl_out_of_core",
        "args": ["--quick"],
        "tables": {
            # Deterministic LRU replay of a stencil sweep at working set =
            # 4x cache budget: demand faults / codec ops / modeled cost of
            # SFC brick hops + curve-order prefetch vs decode-recompute.
            "abl_ooc_sim.csv": "lower",
            # Live brick-cache counters and wall clock depend on thread
            # interleaving and the machine: record, never gate.
            "abl_ooc_brickcache.csv": "advisory",
            "abl_ooc_runtime.csv": "advisory",
        },
    },
    {
        "binary": "abl_job_overhead",
        "args": ["--quick"],
        "tables": {
            # Job-path replay counters must equal the direct loop's exactly
            # (the ratio row is pinned at 1.0), and the second queued
            # raycast must keep hitting the shared macrocell grid. Both are
            # deterministic; the binary additionally hard-fails on any
            # divergence. Wall-clock dispatch overhead only advises.
            "abl_job_model.csv": "lower",
            "abl_job_cache.csv": "higher",
            "abl_job_walltime.csv": "advisory",
        },
    },
    {
        "binary": "abl_locality",
        "args": ["--quick"],
        "tables": {
            # Locality observatory over the traced bilateral replay.
            # TracedView rebases every address to a synthetic origin, so
            # miss-ratio curve, line utilization, and SHARDS error are all
            # pure functions of (layout, kernel) — bit-stable, fully gated.
            "abl_locality_mrc.csv": "lower",
            "abl_locality_util.csv": "higher",
            "abl_locality_shards_err.csv": "lower",
            # Working-set counts shift legitimately whenever a layout's
            # padding rules change: record, never gate.
            "abl_locality_ws.csv": "advisory",
        },
    },
]

# Baseline cells with magnitude below this are compared absolutely (a
# relative delta against ~0 is meaningless).
ABS_FLOOR = 1e-9


def read_csv_table(path):
    """Parses a ResultTable CSV: header `row,<col>...`, one line per row."""
    with open(path, "r", encoding="utf-8") as f:
        lines = [ln.rstrip("\n") for ln in f if ln.strip()]
    cols = lines[0].split(",")[1:]
    rows, cells = [], []
    for ln in lines[1:]:
        parts = ln.split(",")
        rows.append(parts[0])
        cells.append([float(v) for v in parts[1:]])
    return {"cols": cols, "rows": rows, "cells": cells}


def git_sha(repo_root):
    try:
        out = subprocess.run(
            ["git", "-C", repo_root, "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def read_report_tables(path):
    """Reads run-report JSON tables, keyed like their CSV twins.

    Returns (tables, topdown): the result tables plus the report's
    top-down microarchitecture section (always present; available=False
    with a reason when the PMU could not be opened).
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "sfcvis_run_report" not in doc:
        print(f"error: {path} is not a run report", file=sys.stderr)
        sys.exit(2)
    tables = {
        t["name"] + ".csv": {"cols": t["cols"], "rows": t["rows"],
                             "cells": t["cells"]}
        for t in doc.get("tables", [])
    }
    return tables, doc.get("topdown")


def run_benches(build_dir, from_report=False):
    """Runs every bench, collecting its tables via CSV or run report.

    Returns (tables, directions, topdowns); topdowns maps bench binary ->
    its run report's top-down section (only populated with --from-report).
    """
    tables = {}
    directions = {}
    topdowns = {}
    with tempfile.TemporaryDirectory(prefix="bench_gate_") as work_dir:
        for bench in BENCHES:
            binary = os.path.join(build_dir, "bench", bench["binary"])
            if not os.path.exists(binary):
                print(f"error: bench binary not found: {binary}", file=sys.stderr)
                print("       (build with -DSFCVIS_BUILD_BENCH=ON)", file=sys.stderr)
                sys.exit(2)
            if from_report:
                report = os.path.join(work_dir, bench["binary"] + "_report.json")
                cmd = [binary, *bench["args"], f"--report-out={report}"]
            else:
                cmd = [binary, *bench["args"], f"--csv-dir={work_dir}"]
            print(f"[bench_gate] running {' '.join(cmd)}")
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                print(proc.stdout, file=sys.stderr)
                print(proc.stderr, file=sys.stderr)
                print(f"error: {bench['binary']} exited {proc.returncode}",
                      file=sys.stderr)
                sys.exit(2)
            found = None
            if from_report:
                found, topdown = read_report_tables(report)
                if topdown is not None:
                    topdowns[bench["binary"]] = topdown
            for name, direction in bench["tables"].items():
                if from_report:
                    if name not in found:
                        print(f"error: {bench['binary']} run report lacks "
                              f"table {name}", file=sys.stderr)
                        sys.exit(2)
                    tables[name] = found[name]
                else:
                    path = os.path.join(work_dir, name)
                    if not os.path.exists(path):
                        print(f"error: {bench['binary']} did not write {name}",
                              file=sys.stderr)
                        sys.exit(2)
                    tables[name] = read_csv_table(path)
                directions[name] = direction
    return tables, directions, topdowns


def compare_topdown(baseline, topdowns, threshold):
    """Gates the whole-run retiring fraction (direction: higher is better).

    The gate only fires when both the baseline and the current run carry an
    *available* top-down section (a PMU was live in both); every other
    combination is an advisory skip — absence of counters must never fail
    CI, but a measured drop in retired-slot fraction beyond the threshold
    means the new code spends more pipeline slots on stalls or wasted
    speculation for the same work.
    """
    regressions, advisories = [], []
    base_tds = baseline.get("topdown", {})
    for binary, td in sorted(topdowns.items()):
        base = base_tds.get(binary)
        if not td.get("available"):
            advisories.append(
                f"topdown[{binary}]: unavailable this run "
                f"({td.get('source', '?')}); retiring gate skipped")
            continue
        if not base or not base.get("available"):
            advisories.append(
                f"topdown[{binary}]: no available baseline; retiring gate skipped")
            continue
        b, v = base["retiring"], td["retiring"]
        if b <= 0.0:
            advisories.append(
                f"topdown[{binary}]: baseline retiring is 0; gate skipped")
            continue
        rel = (v - b) / b
        desc = f"topdown[{binary}]: retiring {b:.4f} -> {v:.4f} ({rel:+.1%})"
        if -rel > threshold:
            regressions.append(desc)
        elif abs(rel) > threshold:
            advisories.append(desc)
    return regressions, advisories


def compare(baseline, current, directions, threshold):
    """Returns (regressions, advisories): lists of human-readable lines."""
    regressions, advisories = [], []
    for name, direction in sorted(directions.items()):
        if name not in baseline.get("tables", {}):
            advisories.append(f"{name}: not in baseline (new table; gate skipped)")
            continue
        base = baseline["tables"][name]
        cur = current[name]
        if base["rows"] != cur["rows"] or base["cols"] != cur["cols"]:
            regressions.append(
                f"{name}: table shape changed vs baseline "
                f"(rows/cols differ); rerun with --update-baseline if intended")
            continue
        for r, row in enumerate(base["rows"]):
            for c, col in enumerate(base["cols"]):
                b, v = base["cells"][r][c], cur["cells"][r][c]
                if abs(b) < ABS_FLOOR:
                    delta = abs(v - b)
                    regressed = direction != "advisory" and delta > ABS_FLOOR
                    desc = f"{b:.6g} -> {v:.6g} (baseline ~0)"
                else:
                    rel = (v - b) / abs(b)
                    if direction == "lower":
                        regressed = rel > threshold
                    elif direction == "higher":
                        regressed = -rel > threshold
                    else:
                        regressed = False
                    desc = f"{b:.6g} -> {v:.6g} ({rel:+.1%})"
                line = f"{name} [{row} | {col}]: {desc}"
                if regressed:
                    regressions.append(line)
                elif direction == "advisory" and abs(b) >= ABS_FLOOR and \
                        abs(v - b) / abs(b) > threshold:
                    advisories.append(line)
    return regressions, advisories


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression threshold (default 0.15)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON (default <repo>/bench/BENCH_baseline.json)")
    parser.add_argument("--out-dir", default=None,
                        help="where BENCH_<sha>.json is written (default build dir)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run and exit 0")
    parser.add_argument("--from-report", action="store_true",
                        help="collect tables from run-report JSON "
                             "(--report-out) instead of CSV files")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = args.baseline or os.path.join(repo_root, "bench",
                                                  "BENCH_baseline.json")
    out_dir = args.out_dir or args.build_dir

    tables, directions, topdowns = run_benches(args.build_dir, args.from_report)
    sha = git_sha(repo_root)
    snapshot = {
        "sha": sha,
        "threshold": args.threshold,
        "directions": directions,
        "tables": tables,
        "topdown": topdowns,
    }
    os.makedirs(out_dir, exist_ok=True)
    out_path = os.path.join(out_dir, f"BENCH_{sha}.json")
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(snapshot, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"[bench_gate] wrote {out_path}")

    if args.update_baseline:
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(snapshot, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"[bench_gate] baseline updated: {baseline_path}")
        return 0

    if not os.path.exists(baseline_path):
        print(f"error: no baseline at {baseline_path}; create one with "
              f"--update-baseline on a known-good commit", file=sys.stderr)
        return 2
    with open(baseline_path, "r", encoding="utf-8") as f:
        baseline = json.load(f)

    regressions, advisories = compare(baseline, tables, directions,
                                      args.threshold)
    td_regressions, td_advisories = compare_topdown(baseline, topdowns,
                                                    args.threshold)
    regressions += td_regressions
    advisories += td_advisories
    for line in advisories:
        print(f"[bench_gate] advisory: {line}")
    if regressions:
        print(f"[bench_gate] FAIL: {len(regressions)} gated cell(s) regressed "
              f"more than {args.threshold:.0%} vs baseline "
              f"{baseline.get('sha', '?')}:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        print("  (if the change is an intended tradeoff, rerun with "
              "--update-baseline and commit the new baseline)", file=sys.stderr)
        return 1
    print(f"[bench_gate] OK: all gated tables within {args.threshold:.0%} of "
          f"baseline {baseline.get('sha', '?')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
