// Quantitative version of the paper's Fig. 1 cartoon: how well do rays
// align with the memory layout?
//
// For each orbit viewpoint we cast the center row of image rays and count
// the number of *distinct 64-byte cache lines* each ray touches while
// sampling, per layout. Under array order that count is small when rays
// run along x (viewpoints 0, 4) and large when they run along z
// (viewpoints 2, 6); under Z-order it is nearly viewpoint-independent —
// exactly the picture Fig. 1 draws.
#include <unordered_set>

#include "common.hpp"
#include "sfcvis/render/raycast.hpp"

namespace {

using namespace sfcvis;

/// AccessSink collecting the set of distinct cache lines touched.
struct LineSetSink {
  std::unordered_set<std::uint64_t> lines;
  void access(std::uint64_t addr, std::uint32_t) { lines.insert(addr >> 6); }
};

template <core::Layout3D L>
double mean_lines_per_ray(const core::Grid3D<float, L>& volume, unsigned viewpoint,
                          std::uint32_t image, const render::TransferFunction& tf) {
  const auto fsize = static_cast<float>(volume.extents().nx);
  const auto camera = render::orbit_camera(viewpoint, 8, fsize, fsize, fsize);
  const render::RenderConfig config{image, image, 32, 0.5f, 1.1f};  // no early out
  double total = 0;
  for (std::uint32_t px = 0; px < image; ++px) {
    LineSetSink sink;
    const core::TracedView<float, L, LineSetSink> view(volume, sink);
    const auto ray = camera.ray_for_pixel(px, image / 2, image, image);
    (void)render::trace_ray(view, ray, tf, config);
    total += static_cast<double>(sink.lines.size());
  }
  return total / image;
}

}  // namespace

int main(int argc, char** argv) {
  const bench_util::Options opts(argc, argv);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 32 : 64);
  const std::uint32_t image = opts.get_u32("image", quick ? 32 : 96);

  std::printf("== Fig. 1 (quantified): distinct cache lines touched per ray ==\n");
  std::printf("volume: %u^3, %u center-row rays per viewpoint\n\n", size, image);

  const bench::VolumePair pair = bench::make_combustion_pair(size);
  const auto tf = render::TransferFunction::flame();

  std::vector<std::string> cols;
  for (unsigned v = 0; v < 8; ++v) {
    cols.push_back(std::to_string(v));
  }
  bench_util::ResultTable table("mean distinct 64B lines per ray, by viewpoint",
                                {"a-order", "z-order"}, cols);
  for (unsigned v = 0; v < 8; ++v) {
    table.set(0, v, mean_lines_per_ray(pair.array.as<core::ArrayOrderLayout>(), v, image, tf));
    table.set(1, v, mean_lines_per_ray(pair.z.as<core::ZOrderLayout>(), v, image, tf));
  }
  bench::emit_table(table, opts, "fig1_lines_per_ray.csv", 1);

  // Summary statistic: max/min across viewpoints, per layout — the
  // "alignment sensitivity" the cartoon illustrates.
  auto sensitivity = [&](std::size_t row) {
    double lo = 1e300, hi = 0;
    for (unsigned v = 0; v < 8; ++v) {
      lo = std::min(lo, table.at(row, v));
      hi = std::max(hi, table.at(row, v));
    }
    return hi / lo;
  };
  std::printf("viewpoint sensitivity (max/min lines per ray): a-order %.2fx, z-order %.2fx\n",
              sensitivity(0), sensitivity(1));
  return 0;
}
