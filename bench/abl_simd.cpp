// Ablation G: explicit SIMD — ray packets and vector tap loops.
//
// Two kernels gained explicit-width SIMD paths (core/simd.hpp):
//   * the raycaster traverses 4- or 8-ray packets per tile row
//     (RenderConfig::packet_size, render/raycast_packet.hpp), masked
//     sampling + compositing, bit-identical to the scalar path;
//   * the bilateral gather fast path runs its range/spatial tap loops
//     through vfloat batches (BilateralParams::simd_taps).
//
// This bench sweeps packet width x layout for the raycaster (composite +
// shaded, macrocells on — the configuration the paper's volrend figures
// use) and scalar-vs-simd taps for the bilateral filter, reporting wall
// time and speedups. Sample counts ride along as a *deterministic* gated
// table: the packet contract says the traversal evaluates exactly the
// scalar sample set, so any count drift is a correctness bug, not noise.
// Every packet image is also compared bit-for-bit against the scalar
// render in-process.
#include <cstring>

#include "common.hpp"
#include "sfcvis/core/simd.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/render/raycast.hpp"

namespace {

bool images_identical(const sfcvis::render::Image& a, const sfcvis::render::Image& b) {
  const auto& pa = a.pixels();
  const auto& pb = b.pixels();
  return pa.size() == pb.size() &&
         std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(sfcvis::render::Rgba)) == 0;
}

std::uint64_t samples_total() {
  const auto metrics = sfcvis::trace::Tracer::instance().metrics_snapshot();
  return metrics.total("raycast.samples_taken");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfcvis;
  const bench_util::Options opts(argc, argv);
  bench::TraceSession trace_session(opts);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 32 : 128);
  const std::uint32_t image = opts.get_u32("image", quick ? 64 : 256);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const unsigned reps = opts.get_u32("reps", quick ? 1 : 3);
  const std::uint32_t radius = opts.get_u32("radius", 1);

  const auto platform = memsim::ivybridge();
  bench::print_preamble("Ablation G: explicit SIMD (ray packets + vector taps)", size,
                        platform);
  std::printf("simd: active ISA %s  |  image %ux%u  |  threads %u  |  reps (min-of) %u\n\n",
              simd::active_isa(), image, image, nthreads, reps);

  exec::ExecutionContext pool(nthreads);
  const bench::VolumePair pair = bench::make_combustion_pair(size);
  const render::TransferFunction tf = render::TransferFunction::flame();
  const render::Camera camera = render::orbit_camera(
      1, 8, static_cast<float>(size), static_cast<float>(size), static_cast<float>(size));

  int failures = 0;
  const std::vector<std::uint32_t> packets = {1, 4, 8};
  const std::vector<std::string> packet_cols = {"scalar", "packet-4", "packet-8"};
  const std::vector<std::string> layout_rows = {"a-order", "z-order"};

  // --- Raycaster: packet width x layout -------------------------------
  char title[96];
  std::snprintf(title, sizeof(title), "raycast wall seconds, %u^3 shaded (min of %u)", size,
                reps);
  bench_util::ResultTable ray_ms(title, layout_rows, packet_cols);
  std::snprintf(title, sizeof(title), "packet speedup over scalar, %u^3", size);
  bench_util::ResultTable ray_speedup(title, layout_rows, {"packet-4", "packet-8"});
  std::snprintf(title, sizeof(title), "samples taken (deterministic), %u^3", size);
  bench_util::ResultTable ray_samples(title, layout_rows, packet_cols);

  render::RenderConfig config;
  config.image_width = image;
  config.image_height = image;
  config.mode = render::RenderMode::kComposite;
  config.shade = true;
  config.use_macrocells = true;

  for (std::size_t row = 0; row < layout_rows.size(); ++row) {
    const core::AnyVolume& volume = row == 0 ? pair.array : pair.z;
    std::optional<render::Image> scalar_image;
    for (std::size_t col = 0; col < packets.size(); ++col) {
      config.packet_size = packets[col];
      const std::uint64_t before = samples_total();
      render::Image out = render::raycast_parallel(volume, camera, tf, config, pool,
                                                   nullptr, /*collect_stats=*/true);
      ray_samples.set(row, col, static_cast<double>(samples_total() - before));
      const double secs = bench_util::min_time_of(reps, [&] {
        out = render::raycast_parallel(volume, camera, tf, config, pool);
      });
      ray_ms.set(row, col, secs);
      if (col == 0) {
        scalar_image = std::move(out);
      } else {
        ray_speedup.set(row, col - 1, ray_ms.at(row, 0) / secs);
        if (!images_identical(*scalar_image, out)) {
          std::printf("FAIL: %s packet-%u image differs from scalar (bit-identity "
                      "contract broken)\n",
                      layout_rows[row].c_str(), packets[col]);
          ++failures;
        }
      }
    }
  }
  bench::emit_table(ray_ms, opts, "abl_simd_raycast_ms.csv", 4);
  bench::emit_table(ray_speedup, opts, "abl_simd_raycast_speedup.csv", 2);
  bench::emit_table(ray_samples, opts, "abl_simd_samples.csv", 0);

  // --- Bilateral: scalar vs simd tap loops ----------------------------
  std::snprintf(title, sizeof(title), "bilateral gather wall seconds, %u^3 r%u (min of %u)",
                size, radius, reps);
  bench_util::ResultTable bi_ms(title, layout_rows, {"scalar taps", "simd taps", "speedup"});
  core::ArrayVolume dst(core::Extents3D::cube(size));
  for (std::size_t row = 0; row < layout_rows.size(); ++row) {
    const core::AnyVolume& volume = row == 0 ? pair.array : pair.z;
    filters::BilateralParams params;
    params.radius = radius;
    params.use_gather = true;
    params.simd_taps = false;
    const double scalar = bench_util::min_time_of(
        reps, [&] { filters::bilateral_parallel(volume, dst, params, pool); });
    params.simd_taps = true;
    const double simd = bench_util::min_time_of(
        reps, [&] { filters::bilateral_parallel(volume, dst, params, pool); });
    bi_ms.set(row, 0, scalar);
    bi_ms.set(row, 1, simd);
    bi_ms.set(row, 2, scalar / simd);
  }
  bench::emit_table(bi_ms, opts, "abl_simd_bilateral_ms.csv", 4);

  if (failures != 0) {
    std::printf("%d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("reading: the speedup columns show the explicit-SIMD gain per layout; the\n"
              "samples table must be constant across packet widths (the packet traversal\n"
              "evaluates exactly the scalar sample set). Run with --report-out= to also\n"
              "record the top-down slot breakdown for the whole sweep.\n");
  return 0;
}
