// Ablation B: cost of computing a Z-order index, across codec strategies.
//
// The paper's method (Sec. III-C) equalizes index cost between layouts via
// per-axis tables (three loads + two adds/ORs). This microbenchmark puts
// that choice in context against magic-bits, byte-LUT, and (when compiled
// in) BMI2 PDEP codecs, the closed-form array-order computation, and the
// Hilbert codec whose cost Reissmann et al. 2014 found to cancel its
// locality gains.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "sfcvis/core/hilbert.hpp"
#include "sfcvis/core/indexer.hpp"
#include "sfcvis/core/layout.hpp"
#include "sfcvis/core/morton.hpp"

namespace {

using namespace sfcvis;

constexpr std::uint32_t kN = 512;  // the paper's volume edge

std::vector<core::Coord3D> random_coords(std::size_t count) {
  std::mt19937 rng(12345);
  std::uniform_int_distribution<std::uint32_t> dist(0, kN - 1);
  std::vector<core::Coord3D> coords(count);
  for (auto& c : coords) {
    c = {dist(rng), dist(rng), dist(rng)};
  }
  return coords;
}

const std::vector<core::Coord3D>& coords() {
  static const auto c = random_coords(4096);
  return c;
}

void BM_ArrayOrderClosedForm(benchmark::State& state) {
  const core::ArrayOrderLayout layout(core::Extents3D::cube(kN));
  for (auto _ : state) {
    for (const auto& c : coords()) {
      benchmark::DoNotOptimize(layout.index(c.i, c.j, c.k));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(coords().size()));
}
BENCHMARK(BM_ArrayOrderClosedForm);

void BM_MortonMagicBits(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& c : coords()) {
      benchmark::DoNotOptimize(core::morton_encode_3d(c.i, c.j, c.k));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(coords().size()));
}
BENCHMARK(BM_MortonMagicBits);

void BM_MortonByteLut(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& c : coords()) {
      benchmark::DoNotOptimize(core::morton_encode_3d_lut(c.i, c.j, c.k));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(coords().size()));
}
BENCHMARK(BM_MortonByteLut);

#if defined(__BMI2__)
void BM_MortonBmi2(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& c : coords()) {
      benchmark::DoNotOptimize(core::morton_encode_3d_bmi2(c.i, c.j, c.k));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(coords().size()));
}
BENCHMARK(BM_MortonBmi2);
#endif

void BM_ZOrderAxisTables(benchmark::State& state) {
  // The paper's scheme: precomputed per-axis tables, combined with adds.
  const core::ZOrderLayout layout(core::Extents3D::cube(kN));
  for (auto _ : state) {
    for (const auto& c : coords()) {
      benchmark::DoNotOptimize(layout.index(c.i, c.j, c.k));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(coords().size()));
}
BENCHMARK(BM_ZOrderAxisTables);

void BM_IndexerUnifiedArray(benchmark::State& state) {
  const core::Indexer idx(core::Order::kArray, core::Extents3D::cube(kN));
  for (auto _ : state) {
    for (const auto& c : coords()) {
      benchmark::DoNotOptimize(idx.getIndex(c.i, c.j, c.k));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(coords().size()));
}
BENCHMARK(BM_IndexerUnifiedArray);

void BM_IndexerUnifiedZ(benchmark::State& state) {
  const core::Indexer idx(core::Order::kZ, core::Extents3D::cube(kN));
  for (auto _ : state) {
    for (const auto& c : coords()) {
      benchmark::DoNotOptimize(idx.getIndex(c.i, c.j, c.k));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(coords().size()));
}
BENCHMARK(BM_IndexerUnifiedZ);

void BM_HilbertEncode(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& c : coords()) {
      benchmark::DoNotOptimize(core::hilbert_encode_3d(c.i, c.j, c.k, 9));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(coords().size()));
}
BENCHMARK(BM_HilbertEncode);

void BM_MortonDecodeMagicBits(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& c : coords()) {
      benchmark::DoNotOptimize(core::morton_decode_3d(core::morton_encode_3d(c.i, c.j, c.k)));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(coords().size()));
}
BENCHMARK(BM_MortonDecodeMagicBits);

void BM_MortonNeighborStep(benchmark::State& state) {
  // Incrementing one axis directly on the interleaved form vs decode +
  // re-encode: the win stencil sweeps on the Z-curve rely on.
  std::uint64_t m = core::morton_encode_3d(5, 6, 7);
  for (auto _ : state) {
    for (std::size_t s = 0; s < coords().size(); ++s) {
      m = core::morton_inc_x(m);
      benchmark::DoNotOptimize(m);
    }
    m = core::morton_encode_3d(5, 6, 7);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(coords().size()));
}
BENCHMARK(BM_MortonNeighborStep);

}  // namespace

BENCHMARK_MAIN();
