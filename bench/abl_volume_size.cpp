// Ablation I: where the layout effect switches on.
//
// The Z-order advantage appears once the traversal's working set exceeds
// the private caches. This bench sweeps the volume edge at a fixed
// modeled hierarchy and reports ds(L2 escapes) for the against-the-grain
// bilateral configuration — locating the crossover the paper's fixed
// 512^3 size sits far beyond.
#include "common.hpp"
#include "sfcvis/filters/bilateral.hpp"

int main(int argc, char** argv) {
  using namespace sfcvis;
  const bench_util::Options opts(argc, argv);
  const bool quick = opts.get_flag("quick");
  const auto sizes = opts.get_u32_list(
      "sizes", quick ? std::vector<std::uint32_t>{8, 16, 32}
                     : std::vector<std::uint32_t>{8, 16, 24, 32, 48, 64});
  const unsigned nthreads = opts.get_u32("threads", 4);
  const std::uint32_t cache_scale = opts.get_u32("cache-scale", 64);
  const unsigned radius = opts.get_u32("radius", 3);

  const auto platform = memsim::scaled(memsim::ivybridge(), cache_scale);
  bench::print_preamble("Ablation I: volume-size sweep (bilateral r3 pz zyx)",
                        sizes.back(), platform);

  std::vector<std::string> cols;
  for (const auto s : sizes) {
    cols.push_back(std::to_string(s) + "^3");
  }
  bench_util::ResultTable table("ds by volume size", {"ds(L2 escapes)", "ds(modeled cycles)"},
                                cols);

  for (std::size_t c = 0; c < sizes.size(); ++c) {
    const std::uint32_t size = sizes[c];
    const bench::VolumePair pair = bench::make_mri_pair(size);
    core::ArrayVolume dst(core::Extents3D::cube(size));
    const filters::BilateralParams params{radius, 1.5f, 0.1f, filters::PencilAxis::kZ,
                                          filters::LoopOrder::kZYX};
    // Full traces at small sizes; capped at larger ones for bounded cost.
    const std::size_t items = size <= 32 ? SIZE_MAX : 256;
    memsim::Hierarchy ha(platform, nthreads);
    filters::bilateral_traced(pair.array, dst, params, ha, items);
    memsim::Hierarchy hz(platform, nthreads);
    filters::bilateral_traced(pair.z, dst, params, hz, items);
    table.set(0, c,
              bench_util::scaled_relative_difference(
                  static_cast<double>(ha.counter("L2_DATA_READ_MISS_MEM_FILL")),
                  static_cast<double>(hz.counter("L2_DATA_READ_MISS_MEM_FILL"))));
    table.set(1, c,
              bench_util::scaled_relative_difference(
                  static_cast<double>(ha.modeled_cycles_max()),
                  static_cast<double>(hz.modeled_cycles_max())));
  }
  bench::emit_table(table, opts, "abl_volume_size.csv");
  std::printf("reading: ds ~ 0 while the volume fits the modeled caches; the crossover\n"
              "is where the against-the-grain working set first exceeds L2.\n");
  return 0;
}
