// Ablation D: the full pencil-axis x loop-order cross for the bilateral
// filter. The paper (Sec. III-A) notes that "the choice of width, height,
// or depth row assignment of voxels to threads is significant"; its
// figures show only the two extreme configurations (px xyz, pz zyx). This
// bench fills in the whole grid so the transition is visible, reporting
// ds = (a - z)/z of the modeled stall cycles and of the L2-escape count.
#include "common.hpp"
#include "sfcvis/filters/bilateral.hpp"

int main(int argc, char** argv) {
  using namespace sfcvis;
  const bench_util::Options opts(argc, argv);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 24 : 48);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const std::uint32_t cache_scale = opts.get_u32("cache-scale", 16);
  const std::size_t trace_items = opts.get_u32("trace-items", quick ? 64 : 256);
  const unsigned radius = opts.get_u32("radius", 3);

  const auto platform = memsim::scaled(memsim::ivybridge(), cache_scale);
  bench::print_preamble("Ablation D: pencil axis x loop order cross (bilateral)", size,
                        platform);

  const bench::VolumePair pair = bench::make_mri_pair(size);
  core::ArrayVolume dst(core::Extents3D::cube(size));

  const filters::PencilAxis axes[] = {filters::PencilAxis::kX, filters::PencilAxis::kY,
                                      filters::PencilAxis::kZ};
  const filters::LoopOrder orders[] = {filters::LoopOrder::kXYZ, filters::LoopOrder::kZYX};

  std::vector<std::string> rows;
  for (const auto a : axes) {
    for (const auto o : orders) {
      rows.push_back(std::string(filters::to_string(a)) + " " +
                     std::string(filters::to_string(o)));
    }
  }
  bench_util::ResultTable table(
      "ds per configuration (radius " + std::to_string(radius) + ")", rows,
      {"modeled cycles", "L2 escapes"});

  std::size_t row = 0;
  for (const auto axis : axes) {
    for (const auto order : orders) {
      const filters::BilateralParams params{radius, 1.5f, 0.1f, axis, order};
      memsim::Hierarchy ha(platform, nthreads);
      filters::bilateral_traced(pair.array, dst, params, ha, trace_items);
      memsim::Hierarchy hz(platform, nthreads);
      filters::bilateral_traced(pair.z, dst, params, hz, trace_items);
      table.set(row, 0,
                bench_util::scaled_relative_difference(
                    static_cast<double>(ha.modeled_cycles_max()),
                    static_cast<double>(hz.modeled_cycles_max())));
      table.set(row, 1,
                bench_util::scaled_relative_difference(
                    static_cast<double>(ha.counter("L2_DATA_READ_MISS_MEM_FILL")),
                    static_cast<double>(hz.counter("L2_DATA_READ_MISS_MEM_FILL"))));
      ++row;
    }
  }

  bench::emit_table(table, opts, "abl_pencil_order.csv");
  return 0;
}
