// Ablation J: the memory-locality observatory.
//
// Answers *why* a layout wins with numbers the perf gate can pin: exact
// reuse-distance profiles of the against-the-grain bilateral replay per
// layout, folded into miss-ratio curves at the pinned capacity ladder,
// cache-line utilization, and the exact-vs-SHARDS sampling error. Every
// cell is a pure function of (layout, kernel) — TracedView rebases
// addresses to a synthetic origin — so all tables are bit-stable and
// bench_gate.py gates them like the memsim tables.
//
//   abl_locality [--size=N] [--trace-items=N] [--threads-model=N]
//                [--sample-log2=K] [--quick] [--csv-dir=...] [--report-out=...]
//
// The gm-tuned row uses the tuner's deterministic quick search, so this
// bench also demonstrates the observatory explaining a tuned layout.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "sfcvis/locality/profile.hpp"
#include "sfcvis/tuner/tuner.hpp"

namespace {

using namespace sfcvis;

/// Miss ratio at one pinned capacity; throws if the point is missing so a
/// ladder change can never silently shift the gated columns.
double miss_at(const trace::LocalityGranularity& g, std::uint64_t capacity_bytes) {
  for (const trace::LocalityMissPoint& p : g.mrc) {
    if (p.capacity_bytes == capacity_bytes) {
      return p.miss_ratio;
    }
  }
  throw std::runtime_error("abl_locality: capacity missing from the pinned MRC ladder");
}

/// Max |exact - sampled| miss-ratio over the shared capacity ladder.
double shards_error(const trace::LocalityProfile& p) {
  double worst = 0.0;
  for (const trace::LocalityMissPoint& exact : p.line.mrc) {
    for (const trace::LocalityMissPoint& sampled : p.sampled.mrc) {
      if (sampled.capacity_bytes == exact.capacity_bytes) {
        worst = std::max(worst, std::abs(exact.miss_ratio - sampled.miss_ratio));
      }
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const bench_util::Options opts(argc, argv);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 32 : 64);
  const std::size_t trace_items = opts.get_u32("trace-items", quick ? 48 : 64);
  const unsigned threads_model = opts.get_u32("threads-model", 4);
  const std::uint32_t sample_log2 = opts.get_u32("sample-log2", 6);
  bench::TraceSession session(opts);

  const core::Extents3D extents = core::Extents3D::cube(size);
  std::printf("== Ablation J: memory-locality observatory ==\n");
  std::printf("volume: %u^3 float  |  kernel: bilateral (against-the-grain replay, "
              "%zu pencils, %u modeled threads)  |  SHARDS rate 1/%llu\n\n",
              size, trace_items, threads_model,
              static_cast<unsigned long long>(1ull << sample_log2));

  // The tuned row: same deterministic quick search the tuner smoke runs.
  const tuner::TunerResult tuned = tuner::quick_search("bilateral", extents);
  std::printf("gm-tuned pattern (quick search): \"%s\"\n\n", tuned.best.pattern.c_str());

  const std::vector<std::pair<std::string, std::string>> layouts = {
      {"array-order", "array-order"},
      {"z-order", "z-order"},
      {"tiled 8", "tiled"},
      {"gm-tuned", "gmorton:" + tuned.best.pattern},
  };
  const std::vector<std::pair<std::string, std::uint64_t>> capacities = {
      {"4KB", 4ull << 10},   {"32KB", 32ull << 10}, {"256KB", 256ull << 10},
      {"2MB", 2ull << 20},   {"16MB", 16ull << 20},
  };

  std::vector<std::string> row_labels;
  std::vector<std::string> mrc_cols;
  for (const auto& [label, spec] : layouts) {
    (void)spec;
    row_labels.push_back(label);
  }
  for (const auto& [label, bytes] : capacities) {
    (void)bytes;
    mrc_cols.push_back(label);
  }
  bench_util::ResultTable mrc("Exact line miss-ratio curve (64B lines, LRU model)",
                              row_labels, mrc_cols);
  bench_util::ResultTable util("Cache-line utilization", row_labels,
                               {"bytes-used/fetched"});
  bench_util::ResultTable shards("SHARDS sampling error", row_labels,
                                 {"max |exact-sampled|"});
  bench_util::ResultTable ws("Working set & cold misses", row_labels,
                             {"distinct lines", "distinct pages", "cold misses"});

  locality::WorkloadConfig workload;
  workload.kernel = "bilateral";
  workload.threads = threads_model;
  workload.trace_items = trace_items;
  locality::LocalityConfig lconfig;
  lconfig.sample_rate_log2 = sample_log2;

  for (std::size_t row = 0; row < layouts.size(); ++row) {
    const core::LayoutSpec spec = core::parse_layout_spec(layouts[row].second);
    core::VolumeOpts vopts;
    vopts.interleave = spec.interleave;
    core::AnyVolume volume = core::make_volume(spec.kind, extents, vopts);
    locality::fill_workload_volume(volume, workload.kernel);
    trace::LocalityProfile profile =
        locality::profile_workload(volume, layouts[row].second, workload, lconfig);
    for (std::size_t col = 0; col < capacities.size(); ++col) {
      mrc.set(row, col, miss_at(profile.line, capacities[col].second));
    }
    util.set(row, 0, profile.line.utilization);
    shards.set(row, 0, shards_error(profile));
    ws.set(row, 0, static_cast<double>(profile.line.distinct));
    ws.set(row, 1, static_cast<double>(profile.page.distinct));
    ws.set(row, 2, static_cast<double>(profile.line.cold));
    locality::publish_profile(std::move(profile));
  }

  bench::emit_table(mrc, opts, "abl_locality_mrc.csv", 4);
  bench::emit_table(util, opts, "abl_locality_util.csv", 4);
  bench::emit_table(shards, opts, "abl_locality_shards_err.csv", 4);
  bench::emit_table(ws, opts, "abl_locality_ws.csv", 0);
  return 0;
}
