// Ablation F: sliding-window gather fast path for the bilateral filter.
//
// The legacy pencil kernel pays one layout index computation per stencil
// tap — W^3 per voxel at stencil width W = 2r+1. The gather path
// (filters/bilateral.hpp, BilateralParams::use_gather) keeps a ring of W
// contiguous scratch planes and gathers one W^2 plane per voxel advance,
// amortizing index cost by ~1/W and letting the tap loops vectorize over
// dense rows. This bench sweeps radius x layout x volume size and reports
// wall time and the gather:legacy speedup; it also verifies the fast-path
// output against the legacy kernel (1e-5 tolerance, the fast-exp contract)
// and asserts that the zsweep drivers no longer materialize their
// 12-byte/voxel curve-order vector (peak-RSS delta measured around a
// sweep; the old vector would dominate it).
#include <sys/resource.h>

#include "common.hpp"
#include "sfcvis/filters/bilateral.hpp"

namespace {

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

float max_abs_diff(const sfcvis::core::ArrayVolume& a, const sfcvis::core::ArrayVolume& b) {
  float worst = 0.0f;
  for (std::size_t n = 0; n < a.size(); ++n) {
    const float d = std::abs(a.data()[n] - b.data()[n]);
    worst = d > worst ? d : worst;
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfcvis;
  const bench_util::Options opts(argc, argv);
  bench::TraceSession trace_session(opts);
  const bool quick = opts.get_flag("quick");
  const std::vector<std::uint32_t> sizes =
      opts.has("size") ? std::vector<std::uint32_t>{opts.get_u32("size", 0)}
                       : opts.get_u32_list("sizes", quick ? std::vector<std::uint32_t>{32}
                                                          : std::vector<std::uint32_t>{64, 128});
  const std::vector<std::uint32_t> radii =
      opts.get_u32_list("radii", quick ? std::vector<std::uint32_t>{1, 3}
                                       : std::vector<std::uint32_t>{1, 3, 5});
  const unsigned nthreads = opts.get_u32("threads", 4);
  const unsigned reps = opts.get_u32("reps", quick ? 1 : 2);
  // z-pencils advance along z, so the gathered stencil planes are (x, y)
  // slabs whose rows run along x — single memcpys on array order, the
  // longest contiguous runs on Z-order. That is the orientation the fast
  // path is designed around; --pencil=x/y shows the against-the-grain cost.
  const std::string pencil_name = opts.get_string("pencil", "z");
  const filters::PencilAxis pencil_axis =
      pencil_name == "x"   ? filters::PencilAxis::kX
      : pencil_name == "y" ? filters::PencilAxis::kY
                           : filters::PencilAxis::kZ;

  const auto platform = memsim::ivybridge();
  bench::print_preamble("Ablation F: stencil gather fast path (bilateral)", sizes.front(),
                        platform);
  std::printf("threads: %u  reps (min-of): %u\n\n", nthreads, reps);

  exec::ExecutionContext pool(nthreads);
  int failures = 0;

  for (const std::uint32_t size : sizes) {
    const bench::VolumePair pair = bench::make_mri_pair(size);
    core::ArrayVolume dst_legacy(core::Extents3D::cube(size));
    core::ArrayVolume dst_gather(core::Extents3D::cube(size));

    std::vector<std::string> rows;
    rows.reserve(radii.size());
    for (const std::uint32_t r : radii) {
      rows.push_back("r" + std::to_string(r));
    }
    char title[96];
    std::snprintf(title, sizeof(title), "wall seconds, %u^3 (min of %u)", size, reps);
    bench_util::ResultTable times(title, rows,
                                  {"a legacy", "a gather", "z legacy", "z gather"});
    std::snprintf(title, sizeof(title), "gather speedup over legacy, %u^3", size);
    bench_util::ResultTable speedup(title, rows, {"a-order", "z-order"});

    for (std::size_t row = 0; row < radii.size(); ++row) {
      filters::BilateralParams params;
      params.radius = radii[row];
      params.pencil = pencil_axis;
      const auto run_pair = [&](const auto& volume, std::size_t col) {
        params.use_gather = false;
        const double legacy = bench_util::min_time_of(
            reps, [&] { filters::bilateral_parallel(volume, dst_legacy, params, pool); });
        params.use_gather = true;
        const double gather = bench_util::min_time_of(
            reps, [&] { filters::bilateral_parallel(volume, dst_gather, params, pool); });
        times.set(row, col, legacy);
        times.set(row, col + 1, gather);
        speedup.set(row, col / 2, legacy / gather);
        const float diff = max_abs_diff(dst_legacy, dst_gather);
        if (diff > 1e-5f) {
          std::printf("FAIL: r%u %u^3 col %zu gather-vs-legacy max abs diff %.3g > 1e-5\n",
                      radii[row], size, col, static_cast<double>(diff));
          ++failures;
        }
      };
      run_pair(pair.array, 0);
      run_pair(pair.z, 2);
    }

    char csv[64];
    std::snprintf(csv, sizeof(csv), "abl_stencil_gather_times_%u.csv", size);
    bench::emit_table(times, opts, csv, 4);
    std::snprintf(csv, sizeof(csv), "abl_stencil_gather_speedup_%u.csv", size);
    bench::emit_table(speedup, opts, csv, 2);

    // Satellite check: bilateral_zsweep decodes curve chunks on the fly.
    // Everything the sweep touches is already resident (the timed runs
    // above touched src and dst), so any peak-RSS growth here is transient
    // allocation inside the sweep. The old implementation materialized a
    // 12-byte/voxel (i,j,k) order vector; assert the delta stays under
    // half of that.
    filters::BilateralParams zparams;
    zparams.radius = 1;
    const long rss_before_kb = peak_rss_kb();
    filters::bilateral_zsweep(pair.z, dst_legacy, zparams, pool);
    const long delta_kb = peak_rss_kb() - rss_before_kb;
    const double voxels = static_cast<double>(size) * size * size;
    const double order_vector_kb = 12.0 * voxels / 1024.0;
    std::printf("zsweep peak-RSS delta: %ld KB (materialized order vector would be "
                "%.0f KB)\n\n",
                delta_kb, order_vector_kb);
    if (static_cast<double>(delta_kb) > order_vector_kb / 2.0) {
      std::printf("FAIL: zsweep transient memory suggests a materialized order vector\n");
      ++failures;
    }
  }

  if (failures != 0) {
    std::printf("%d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("reading: speedup columns show the gather fast path's gain; the target\n"
              "configuration (r5, 256^3: --sizes=256 --radii=5) should clear 2x on both\n"
              "layouts.\n");
  return 0;
}
