// Ablation G: traversal order matched to the layout.
//
// The paper varies the layout but keeps axis-aligned pencil traversals.
// The natural extension (Bader 2013 does it for matrices) is to also walk
// the *output* in Z-curve order so a Z-order source is read in nearly
// monotone storage order. This bench compares, for both layouts:
//   pencil sweep (px xyz)   — the paper's with-the-grain traversal,
//   pencil sweep (pz zyx)   — the against-the-grain traversal,
//   curve-order sweep       — bilateral_zsweep.
#include "common.hpp"
#include "sfcvis/filters/bilateral.hpp"

int main(int argc, char** argv) {
  using namespace sfcvis;
  const bench_util::Options opts(argc, argv);
  bench::TraceSession trace_session(opts);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 24 : 48);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const unsigned radius = opts.get_u32("radius", 3);
  const std::uint32_t cache_scale = opts.get_u32("cache-scale", 64);
  const std::size_t trace_items = opts.get_u32("trace-items", quick ? 32 : 128);

  const auto platform = memsim::scaled(memsim::ivybridge(), cache_scale);
  bench::print_preamble("Ablation G: traversal order x layout (bilateral)", size, platform);

  const bench::VolumePair pair = bench::make_mri_pair(size);
  core::ArrayVolume dst(core::Extents3D::cube(size));

  // Traced escape counts per (traversal, layout) cell.
  auto pencil_escapes = [&](const auto& volume, filters::PencilAxis axis,
                            filters::LoopOrder order) {
    const filters::BilateralParams params{radius, 1.5f, 0.1f, axis, order};
    memsim::Hierarchy h(platform, nthreads);
    filters::bilateral_traced(volume, dst, params, h, trace_items);
    return std::pair{static_cast<double>(h.counter("L2_DATA_READ_MISS_MEM_FILL")) /
                         static_cast<double>(h.total_accesses()),
                     static_cast<double>(h.modeled_cycles_max()) /
                         static_cast<double>(h.total_accesses())};
  };
  auto zsweep_escapes = [&](const auto& volume) {
    const filters::BilateralParams params{radius, 1.5f, 0.1f};
    memsim::Hierarchy h(platform, nthreads);
    filters::bilateral_zsweep_traced(volume, dst, params, h, trace_items);
    return std::pair{static_cast<double>(h.counter("L2_DATA_READ_MISS_MEM_FILL")) /
                         static_cast<double>(h.total_accesses()),
                     static_cast<double>(h.modeled_cycles_max()) /
                         static_cast<double>(h.total_accesses())};
  };

  bench_util::ResultTable escapes("L2 escapes per access (lower = better locality)",
                                  {"pencil px xyz", "pencil pz zyx", "curve sweep"},
                                  {"a-order", "z-order"});
  bench_util::ResultTable cycles("modeled stall cycles per access",
                                 {"pencil px xyz", "pencil pz zyx", "curve sweep"},
                                 {"a-order", "z-order"});

  const auto a_px = pencil_escapes(pair.array, filters::PencilAxis::kX, filters::LoopOrder::kXYZ);
  const auto z_px = pencil_escapes(pair.z, filters::PencilAxis::kX, filters::LoopOrder::kXYZ);
  const auto a_pz = pencil_escapes(pair.array, filters::PencilAxis::kZ, filters::LoopOrder::kZYX);
  const auto z_pz = pencil_escapes(pair.z, filters::PencilAxis::kZ, filters::LoopOrder::kZYX);
  const auto a_zs = zsweep_escapes(pair.array);
  const auto z_zs = zsweep_escapes(pair.z);

  escapes.set(0, 0, a_px.first);
  escapes.set(0, 1, z_px.first);
  escapes.set(1, 0, a_pz.first);
  escapes.set(1, 1, z_pz.first);
  escapes.set(2, 0, a_zs.first);
  escapes.set(2, 1, z_zs.first);
  cycles.set(0, 0, a_px.second);
  cycles.set(0, 1, z_px.second);
  cycles.set(1, 0, a_pz.second);
  cycles.set(1, 1, z_pz.second);
  cycles.set(2, 0, a_zs.second);
  cycles.set(2, 1, z_zs.second);

  bench::emit_table(escapes, opts, "abl_traversal_escapes.csv", 4);
  bench::emit_table(cycles, opts, "abl_traversal_cycles.csv", 2);
  std::printf("reading: the curve sweep column shows whether matching traversal to the\n"
              "z-order layout beats the best axis-aligned configuration.\n");
  return 0;
}
