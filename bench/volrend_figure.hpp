// Shared harness for the volume-rendering figures (Fig. 4: viewpoint line
// plot; Fig. 5: Ivy Bridge ds tables; Fig. 6: MIC ds tables).
//
// Workload follows the paper Sec. IV-B4: a combustion-like volume rendered
// with perspective projection from 8 viewpoints orbiting the dataset
// center; the output image decomposed into tiles consumed by a dynamic
// worker pool. Viewpoints 0 and 4 align the rays with the array-order fast
// axis; 2 and 6 are the against-the-grain views.
#pragma once

#include <string>
#include <vector>

#include "common.hpp"
#include "sfcvis/render/raycast.hpp"
#include "sfcvis/exec/execution_context.hpp"

namespace sfcvis::bench {

struct VolrendFigure {
  const char* figure;
  const char* platform;
  const char* counter;
  std::vector<std::uint32_t> default_threads;
  std::uint32_t default_size = 64;        ///< volume edge (paper: 512)
  std::uint32_t default_image = 192;      ///< native-run image edge
  std::uint32_t default_trace_image = 96;  ///< counter-run image edge
  std::uint32_t default_trace_tile = 16;   ///< counter-run tile edge
  std::uint32_t default_cache_scale = 16;
  unsigned num_viewpoints = 8;
  unsigned cores = 0;  ///< physical cores for SMT cache sharing (0 = off)
};

/// Figs. 5 / 6: rows = viewpoints, cols = concurrency; ds tables for
/// native runtime, modeled runtime, and the platform counter.
inline int run_volrend_ds_figure(const VolrendFigure& figure, int argc,
                                 const char* const* argv) {
  const bench_util::Options opts(argc, argv);
  bench::TraceSession trace_session(opts);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 32 : figure.default_size);
  const std::uint32_t image = opts.get_u32("image", quick ? 64 : figure.default_image);
  const std::uint32_t trace_image =
      opts.get_u32("trace-image", quick ? 48 : figure.default_trace_image);
  const std::uint32_t trace_tile = opts.get_u32("trace-tile", figure.default_trace_tile);
  const auto thread_counts = opts.get_u32_list(
      "threads", quick ? std::vector<std::uint32_t>{2, 4} : figure.default_threads);
  const unsigned reps = opts.get_u32("reps", 1);
  const std::uint32_t cache_scale = opts.get_u32("cache-scale", figure.default_cache_scale);

  const auto platform =
      memsim::scaled(memsim::platform_by_name(figure.platform), cache_scale);
  print_preamble(figure.figure, size, platform);

  std::vector<std::string> row_labels, col_labels;
  for (unsigned v = 0; v < figure.num_viewpoints; ++v) {
    row_labels.push_back(std::to_string(v));
  }
  for (const auto t : thread_counts) {
    col_labels.push_back(std::to_string(t));
  }
  bench_util::ResultTable runtime_ds("ds(runtime), native  [positive = z-order faster]",
                                     row_labels, col_labels);
  bench_util::ResultTable modeled_ds("ds(runtime), modeled memory-stall cycles", row_labels,
                                     col_labels);
  bench_util::ResultTable counter_ds("ds(" + std::string(figure.counter) + ")", row_labels,
                                     col_labels);

  const VolumePair pair = make_combustion_pair(size);
  const auto tf = render::TransferFunction::flame();
  const render::RenderConfig native_config{image, image, 32, 0.5f, 0.98f};
  const render::RenderConfig trace_config{trace_image, trace_image, trace_tile, 0.5f, 0.98f};
  const auto fsize = static_cast<float>(size);

  for (std::size_t col = 0; col < thread_counts.size(); ++col) {
    const unsigned nthreads = thread_counts[col];
    exec::ExecutionContext pool(nthreads);
    const unsigned tpc =
        (figure.cores != 0 && nthreads % figure.cores == 0) ? nthreads / figure.cores : 1;
    for (unsigned v = 0; v < figure.num_viewpoints; ++v) {
      const auto camera = render::orbit_camera(v, figure.num_viewpoints, fsize, fsize, fsize);

      const double ta = bench_util::min_time_of(reps, [&] {
        (void)render::raycast_parallel(pair.array, camera, tf, native_config, pool);
      });
      const double tz = bench_util::min_time_of(reps, [&] {
        (void)render::raycast_parallel(pair.z, camera, tf, native_config, pool);
      });
      runtime_ds.set(v, col, bench_util::scaled_relative_difference(ta, tz));

      memsim::Hierarchy ha(platform, nthreads, tpc);
      (void)render::raycast_traced(pair.array, camera, tf, trace_config, ha);
      memsim::Hierarchy hz(platform, nthreads, tpc);
      (void)render::raycast_traced(pair.z, camera, tf, trace_config, hz);
      modeled_ds.set(v, col,
                     bench_util::scaled_relative_difference(
                         static_cast<double>(ha.modeled_cycles_max()),
                         static_cast<double>(hz.modeled_cycles_max())));
      counter_ds.set(v, col,
                     bench_util::scaled_relative_difference(
                         static_cast<double>(ha.counter(figure.counter)),
                         static_cast<double>(hz.counter(figure.counter))));
    }
    std::printf("  [%u threads] done\n", nthreads);
    std::fflush(stdout);
  }
  std::printf("\n");

  const std::string stem = std::string("volrend_") + figure.platform;
  emit_table(runtime_ds, opts, stem + "_runtime_ds.csv");
  emit_table(modeled_ds, opts, stem + "_modeled_ds.csv");
  emit_table(counter_ds, opts, stem + "_counter_ds.csv");
  return 0;
}

/// Fig. 4: absolute runtime and counter values per viewpoint for both
/// orders at one fixed concurrency — the line-plot view of the same data.
inline int run_volrend_absolute_figure(const VolrendFigure& figure, int argc,
                                       const char* const* argv) {
  const bench_util::Options opts(argc, argv);
  bench::TraceSession trace_session(opts);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 32 : figure.default_size);
  const std::uint32_t image = opts.get_u32("image", quick ? 64 : figure.default_image);
  const std::uint32_t trace_image =
      opts.get_u32("trace-image", quick ? 48 : figure.default_trace_image);
  const std::uint32_t trace_tile = opts.get_u32("trace-tile", figure.default_trace_tile);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const unsigned reps = opts.get_u32("reps", 1);
  const std::uint32_t cache_scale = opts.get_u32("cache-scale", figure.default_cache_scale);

  const auto platform =
      memsim::scaled(memsim::platform_by_name(figure.platform), cache_scale);
  print_preamble(figure.figure, size, platform);
  std::printf("fixed concurrency: %u threads\n\n", nthreads);

  std::vector<std::string> col_labels;
  for (unsigned v = 0; v < figure.num_viewpoints; ++v) {
    col_labels.push_back(std::to_string(v));
  }
  bench_util::ResultTable runtime_abs("runtime (seconds) per viewpoint",
                                      {"a-order", "z-order"}, col_labels);
  bench_util::ResultTable counter_abs(std::string(figure.counter) + " per viewpoint",
                                      {"a-order", "z-order"}, col_labels);

  const VolumePair pair = make_combustion_pair(size);
  const auto tf = render::TransferFunction::flame();
  const render::RenderConfig native_config{image, image, 32, 0.5f, 0.98f};
  const render::RenderConfig trace_config{trace_image, trace_image, trace_tile, 0.5f, 0.98f};
  const auto fsize = static_cast<float>(size);
  exec::ExecutionContext pool(nthreads);

  for (unsigned v = 0; v < figure.num_viewpoints; ++v) {
    const auto camera = render::orbit_camera(v, figure.num_viewpoints, fsize, fsize, fsize);
    runtime_abs.set(0, v, bench_util::min_time_of(reps, [&] {
      (void)render::raycast_parallel(pair.array, camera, tf, native_config, pool);
    }));
    runtime_abs.set(1, v, bench_util::min_time_of(reps, [&] {
      (void)render::raycast_parallel(pair.z, camera, tf, native_config, pool);
    }));
    memsim::Hierarchy ha(platform, nthreads);
    (void)render::raycast_traced(pair.array, camera, tf, trace_config, ha);
    memsim::Hierarchy hz(platform, nthreads);
    (void)render::raycast_traced(pair.z, camera, tf, trace_config, hz);
    counter_abs.set(0, v, static_cast<double>(ha.counter(figure.counter)));
    counter_abs.set(1, v, static_cast<double>(hz.counter(figure.counter)));
    std::printf("  [viewpoint %u] done\n", v);
    std::fflush(stdout);
  }
  std::printf("\n");

  emit_table(runtime_abs, opts, "volrend_viewpoint_runtime.csv", 4);
  emit_table(counter_abs, opts, "volrend_viewpoint_counter.csv", 0);
  return 0;
}

}  // namespace sfcvis::bench
