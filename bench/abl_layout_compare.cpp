// Ablation C: Z-order vs the other layouts the literature compares
// against — array order (control), tiled/blocked (Pascucci & Frank's "3D
// blocking"), Hilbert (Reissmann et al. 2014) — plus the generalized-Morton
// family (Swatman et al. 2023): its canonical member (must match Z-order
// bit-for-bit in cost) and the auto-tuner's winner for each workload.
//
// Two workloads, both in their against-the-grain configuration where
// layout matters most:
//   * bilateral r3, pz pencils, zyx order;
//   * volume rendering at orbit viewpoint 2 (rays along z).
// Reported per layout: modeled memory-stall cycles and private-stack
// escapes, normalized to array order (value < 1 = better than array
// order), plus the native wall time, which for Hilbert includes its
// per-access index cost — the trade-off Reissmann et al. observed.
//
// The tuned row's interleave comes from, in order of precedence:
//   --tuned=<pattern>     an explicit interleave (both workloads);
//   --registry=<path>     ExecutionContext::resolve_layout() against a
//                         tuned-layout registry (tools/layout_tuner output);
//   otherwise             a deterministic tuner::quick_search per workload.
// A fourth table, abl_layout_tuned_cycles.csv, restates the tuned row's
// memsim columns against canonical Z-order — fully deterministic, so
// tools/bench_gate.py gates it ("lower": the tuned layout must keep
// beating, or at least matching, canonical Z on modeled cost).
#include "common.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/render/raycast.hpp"
#include "sfcvis/tuner/tuner.hpp"

namespace {

using namespace sfcvis;

struct Metrics {
  double native_seconds = 0;
  double modeled_cycles = 0;
  double escapes = 0;
};

Metrics measure_bilateral(const core::AnyVolume& volume,
                          const memsim::PlatformSpec& platform, unsigned nthreads,
                          std::size_t trace_items, unsigned reps) {
  const filters::BilateralParams params{3, 1.5f, 0.1f, filters::PencilAxis::kZ,
                                        filters::LoopOrder::kZYX};
  core::ArrayVolume dst(volume.extents());
  exec::ExecutionContext pool(nthreads);
  Metrics m;
  m.native_seconds = bench_util::min_time_of(
      reps, [&] { filters::bilateral_parallel(volume, dst, params, pool); });
  memsim::Hierarchy hierarchy(platform, nthreads);
  filters::bilateral_traced(volume, dst, params, hierarchy, trace_items);
  m.modeled_cycles = static_cast<double>(hierarchy.modeled_cycles_max());
  m.escapes = static_cast<double>(hierarchy.counter("L2_DATA_READ_MISS_MEM_FILL"));
  return m;
}

Metrics measure_volrend(const core::AnyVolume& volume,
                        const memsim::PlatformSpec& platform, unsigned nthreads,
                        std::uint32_t image, std::uint32_t trace_image, unsigned reps) {
  const auto tf = render::TransferFunction::flame();
  const auto fsize = static_cast<float>(volume.extents().nx);
  const auto camera = render::orbit_camera(2, 8, fsize, fsize, fsize);
  exec::ExecutionContext pool(nthreads);
  Metrics m;
  const render::RenderConfig native_config{image, image, 32, 0.5f, 0.98f};
  m.native_seconds = bench_util::min_time_of(reps, [&] {
    (void)render::raycast_parallel(volume, camera, tf, native_config, pool);
  });
  const render::RenderConfig trace_config{trace_image, trace_image, 16, 0.5f, 0.98f};
  memsim::Hierarchy hierarchy(platform, nthreads);
  (void)render::raycast_traced(volume, camera, tf, trace_config, hierarchy);
  m.modeled_cycles = static_cast<double>(hierarchy.modeled_cycles_max());
  m.escapes = static_cast<double>(hierarchy.counter("L2_DATA_READ_MISS_MEM_FILL"));
  return m;
}

void emit(const char* workload, const std::vector<std::pair<std::string, Metrics>>& results,
          const bench_util::Options& opts, const std::string& csv) {
  bench_util::ResultTable table(
      std::string(workload) + "  [normalized to array-order; < 1.00 = better]",
      {"native runtime", "modeled cycles", "L2 escapes"},
      [&] {
        std::vector<std::string> labels;
        for (const auto& r : results) {
          labels.push_back(r.first);
        }
        return labels;
      }());
  const Metrics& base = results.front().second;
  for (std::size_t c = 0; c < results.size(); ++c) {
    table.set(0, c, results[c].second.native_seconds / base.native_seconds);
    table.set(1, c, results[c].second.modeled_cycles / base.modeled_cycles);
    table.set(2, c, results[c].second.escapes / base.escapes);
  }
  sfcvis::bench::emit_table(table, opts, csv);
}

/// The interleave pattern the tuned row uses for `kernel`, with a
/// provenance line for the log. Precedence: --tuned, --registry (through
/// ExecutionContext::resolve_layout, reporting its fallback note when the
/// registry has no matching entry), deterministic quick_search.
std::string tuned_pattern(const std::string& kernel, const core::Extents3D& e,
                          const bench_util::Options& opts) {
  const std::string explicit_pattern = opts.get_string("tuned", "");
  if (!explicit_pattern.empty()) {
    std::printf("tuned[%s]: \"%s\" (--tuned)\n", kernel.c_str(),
                explicit_pattern.c_str());
    return explicit_pattern;
  }
  const std::string registry = opts.get_string("registry", "");
  if (!registry.empty()) {
    exec::ExecOptions eo;
    eo.threads = 1;
    eo.layout_registry = registry;
    exec::ExecutionContext ctx(eo);
    const exec::ResolvedLayout resolved = ctx.resolve_layout(kernel, e);
    std::printf("tuned[%s]: %s\n", kernel.c_str(), resolved.note.c_str());
    if (resolved.tuned) {
      return resolved.interleave;
    }
    // Fall through to the deterministic search when the registry misses.
  }
  const tuner::TunerResult r = tuner::quick_search(kernel, e);
  std::printf("tuned[%s]: \"%s\" (quick_search, fitness %.0f vs canonical %.0f)\n",
              kernel.c_str(), r.best.pattern.c_str(), r.best.fitness,
              r.canonical_z.fitness);
  return r.best.pattern;
}

}  // namespace

int main(int argc, char** argv) {
  const bench_util::Options opts(argc, argv);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 24 : 48);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const unsigned reps = opts.get_u32("reps", 1);
  const std::uint32_t cache_scale = opts.get_u32("cache-scale", 16);
  const std::size_t trace_items = opts.get_u32("trace-items", quick ? 64 : 256);
  const std::uint32_t image = opts.get_u32("image", quick ? 48 : 128);
  const std::uint32_t trace_image = opts.get_u32("trace-image", quick ? 32 : 64);

  const auto platform = memsim::scaled(memsim::ivybridge(), cache_scale);
  sfcvis::bench::print_preamble(
      "Ablation C: layout comparison (A / Z / tiled / Hilbert / tuned gmorton)", size,
      platform);

  const core::Extents3D e = core::Extents3D::cube(size);
  const std::string tuned_bilateral = tuned_pattern("bilateral", e, opts);
  const std::string tuned_volrend = tuned_pattern("raycast", e, opts);
  std::printf("\n");

  core::VolumeOpts tuned_opts;
  core::AnyVolume mri_a = core::make_volume(core::LayoutKind::kArray, e);
  mri_a.visit([](auto& g) { data::fill_mri_phantom(g); });
  const auto mri_z = mri_a.convert_to(core::LayoutKind::kZOrder);
  const auto mri_t = mri_a.convert_to(core::LayoutKind::kTiled);
  const auto mri_h = mri_a.convert_to(core::LayoutKind::kHilbert);
  const auto mri_g = mri_a.convert_to(core::LayoutKind::kGMorton);  // canonical
  tuned_opts.interleave = tuned_bilateral;
  const auto mri_tuned = mri_a.convert_to(core::LayoutKind::kGMorton, tuned_opts);

  const Metrics bi_z = measure_bilateral(mri_z, platform, nthreads, trace_items, reps);
  const Metrics bi_tuned =
      measure_bilateral(mri_tuned, platform, nthreads, trace_items, reps);
  emit("bilateral r3 pz zyx",
       {{"array", measure_bilateral(mri_a, platform, nthreads, trace_items, reps)},
        {"z-order", bi_z},
        {"tiled 8^3", measure_bilateral(mri_t, platform, nthreads, trace_items, reps)},
        {"hilbert", measure_bilateral(mri_h, platform, nthreads, trace_items, reps)},
        {"gmorton canon", measure_bilateral(mri_g, platform, nthreads, trace_items, reps)},
        {"gmorton tuned", bi_tuned}},
       opts, "abl_layout_bilateral.csv");

  core::AnyVolume comb_a = core::make_volume(core::LayoutKind::kArray, e);
  comb_a.visit([](auto& g) { data::fill_combustion(g); });
  const auto comb_z = comb_a.convert_to(core::LayoutKind::kZOrder);
  const auto comb_t = comb_a.convert_to(core::LayoutKind::kTiled);
  const auto comb_h = comb_a.convert_to(core::LayoutKind::kHilbert);
  const auto comb_g = comb_a.convert_to(core::LayoutKind::kGMorton);  // canonical
  tuned_opts.interleave = tuned_volrend;
  const auto comb_tuned = comb_a.convert_to(core::LayoutKind::kGMorton, tuned_opts);

  const Metrics vr_z = measure_volrend(comb_z, platform, nthreads, image, trace_image, reps);
  const Metrics vr_tuned =
      measure_volrend(comb_tuned, platform, nthreads, image, trace_image, reps);
  emit("volrend viewpoint 2",
       {{"array", measure_volrend(comb_a, platform, nthreads, image, trace_image, reps)},
        {"z-order", vr_z},
        {"tiled 8^3", measure_volrend(comb_t, platform, nthreads, image, trace_image, reps)},
        {"hilbert", measure_volrend(comb_h, platform, nthreads, image, trace_image, reps)},
        {"gmorton canon", measure_volrend(comb_g, platform, nthreads, image, trace_image, reps)},
        {"gmorton tuned", vr_tuned}},
       opts, "abl_layout_volrend.csv");

  // Deterministic gate table: the tuned layout against canonical Z-order on
  // the memsim columns only (wall clock never gates). Both cells per row
  // should stay <= ~1.0; bench_gate.py fails the build if either drifts up
  // past the threshold — i.e. if a code change makes the tuned layout stop
  // paying for itself.
  bench_util::ResultTable tuned_table(
      "tuned gmorton vs canonical z-order  [deterministic; < 1.00 = tuned wins]",
      {"bilateral", "volrend"}, {"modeled cycles", "L2 escapes"});
  tuned_table.set(0, 0, bi_tuned.modeled_cycles / bi_z.modeled_cycles);
  tuned_table.set(0, 1, bi_z.escapes > 0 ? bi_tuned.escapes / bi_z.escapes : 1.0);
  tuned_table.set(1, 0, vr_tuned.modeled_cycles / vr_z.modeled_cycles);
  tuned_table.set(1, 1, vr_z.escapes > 0 ? vr_tuned.escapes / vr_z.escapes : 1.0);
  sfcvis::bench::emit_table(tuned_table, opts, "abl_layout_tuned_cycles.csv");
  return 0;
}
