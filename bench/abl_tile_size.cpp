// Ablation A: sensitivity of the renderer to the image-tile size.
//
// The paper fixes 32x32 tiles, citing Bethel & Howison 2012's finding that
// the choice has a profound runtime impact and that 32x32 was consistently
// good. This bench sweeps the tile edge for both layouts at an
// against-the-grain viewpoint.
#include "common.hpp"
#include "sfcvis/render/raycast.hpp"

int main(int argc, char** argv) {
  using namespace sfcvis;
  const bench_util::Options opts(argc, argv);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 32 : 64);
  const std::uint32_t image = opts.get_u32("image", quick ? 64 : 128);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const unsigned reps = opts.get_u32("reps", 1);
  const std::uint32_t cache_scale = opts.get_u32("cache-scale", 16);
  const auto tile_sizes = opts.get_u32_list("tiles", {8, 16, 32, 64});

  const auto platform = memsim::scaled(memsim::ivybridge(), cache_scale);
  bench::print_preamble("Ablation A: image-tile size (paper fixes 32x32)", size, platform);

  const bench::VolumePair pair = bench::make_combustion_pair(size);
  const auto tf = render::TransferFunction::flame();
  const auto fsize = static_cast<float>(size);
  const auto camera = render::orbit_camera(2, 8, fsize, fsize, fsize);
  exec::ExecutionContext pool(nthreads);

  std::vector<std::string> cols;
  for (const auto t : tile_sizes) {
    cols.push_back(std::to_string(t) + "x" + std::to_string(t));
  }
  bench_util::ResultTable runtime("native runtime (seconds) by tile size",
                                  {"a-order", "z-order"}, cols);
  bench_util::ResultTable escapes("L2 escapes (traced) by tile size",
                                  {"a-order", "z-order"}, cols);

  for (std::size_t c = 0; c < tile_sizes.size(); ++c) {
    const render::RenderConfig config{image, image, tile_sizes[c], 0.5f, 0.98f};
    runtime.set(0, c, bench_util::min_time_of(reps, [&] {
      (void)render::raycast_parallel(pair.array, camera, tf, config, pool);
    }));
    runtime.set(1, c, bench_util::min_time_of(reps, [&] {
      (void)render::raycast_parallel(pair.z, camera, tf, config, pool);
    }));
    memsim::Hierarchy ha(platform, nthreads);
    (void)render::raycast_traced(pair.array, camera, tf, config, ha);
    escapes.set(0, c, static_cast<double>(ha.counter("L2_DATA_READ_MISS_MEM_FILL")));
    memsim::Hierarchy hz(platform, nthreads);
    (void)render::raycast_traced(pair.z, camera, tf, config, hz);
    escapes.set(1, c, static_cast<double>(hz.counter("L2_DATA_READ_MISS_MEM_FILL")));
  }

  bench::emit_table(runtime, opts, "abl_tile_runtime.csv", 4);
  bench::emit_table(escapes, opts, "abl_tile_escapes.csv", 0);
  return 0;
}
