// Regenerates the paper's Fig. 5: volrend on Ivy Bridge — scaled relative
// differences of runtime and PAPI_L3_TCA; rows = 8 orbit viewpoints,
// columns = concurrency {2,4,6,8,10,12,18,24}.
//
// Expected shape (paper): ds(runtime) ~ 0 at viewpoints 0 and 4, ~ +0.13
// to +0.34 elsewhere; ds(L3_TCA) ~ +0.8 at 0/4 and ~ +3 to +4 elsewhere.
#include "volrend_figure.hpp"

int main(int argc, char** argv) {
  const sfcvis::bench::VolrendFigure figure{
      .figure = "Fig. 5: volrend ds tables, Ivy Bridge",
      .platform = "ivybridge",
      .counter = "PAPI_L3_TCA",
      .default_threads = {2, 4, 6, 8, 10, 12, 18, 24},
  };
  return sfcvis::bench::run_volrend_ds_figure(figure, argc, argv);
}
