// Shared harness for the bilateral-filter figures (Fig. 2: Ivy Bridge,
// Fig. 3: MIC). Rows and semantics follow the paper exactly:
//
//   rows:    r1/r3/r5 stencils x {px xyz, pz zyx} configurations
//   columns: the platform's concurrency sweep
//   cells:   scaled relative difference ds = (a - z) / z   (Eq. 4)
//
// Three tables are produced per figure:
//   1. native runtime   — wall-clock of the actual threaded kernel on this
//                         host (compute-bound at container-scale volumes;
//                         see EXPERIMENTS.md),
//   2. modeled runtime  — memory-stall cycles from the cache model (the
//                         memory-bound shape the paper's runtimes show),
//   3. the platform's counter (PAPI_L3_TCA / L2_DATA_READ_MISS_MEM_FILL).
#pragma once

#include <string>
#include <vector>

#include "common.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/exec/execution_context.hpp"

namespace sfcvis::bench {

struct BilateralFigure {
  const char* figure;                        ///< e.g. "Fig. 2: bilateral3d, Ivy Bridge"
  const char* platform;                      ///< memsim platform name
  const char* counter;                       ///< memsim counter name
  std::vector<std::uint32_t> default_threads;
  std::uint32_t default_size = 48;
  std::uint32_t default_cache_scale = 16;
  std::uint32_t default_trace_items = 256;  ///< pencils replayed per counter run
  unsigned cores = 0;  ///< physical cores: thread counts that are a multiple
                       ///< share private caches SMT-style (0 = 1 thread/core)
};

inline int run_bilateral_figure(const BilateralFigure& figure, int argc,
                                const char* const* argv) {
  const bench_util::Options opts(argc, argv);
  bench::TraceSession trace_session(opts);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 24 : figure.default_size);
  const auto thread_counts = opts.get_u32_list(
      "threads", quick ? std::vector<std::uint32_t>{2, 4} : figure.default_threads);
  const unsigned reps = opts.get_u32("reps", 1);
  const std::uint32_t cache_scale = opts.get_u32("cache-scale", figure.default_cache_scale);
  const std::uint32_t trace_items =
      opts.get_u32("trace-items", quick ? 64 : figure.default_trace_items);

  const auto platform = memsim::scaled(memsim::platform_by_name(figure.platform), cache_scale);
  print_preamble(figure.figure, size, platform);

  struct Row {
    unsigned radius;
    filters::PencilAxis pencil;
    filters::LoopOrder order;
    const char* label;
  };
  // The paper's six rows: radius "rN" names the stencil half-width.
  const std::vector<Row> rows = {
      {1, filters::PencilAxis::kX, filters::LoopOrder::kXYZ, "r1 px xyz"},
      {1, filters::PencilAxis::kZ, filters::LoopOrder::kZYX, "r1 pz zyx"},
      {3, filters::PencilAxis::kX, filters::LoopOrder::kXYZ, "r3 px xyz"},
      {3, filters::PencilAxis::kZ, filters::LoopOrder::kZYX, "r3 pz zyx"},
      {5, filters::PencilAxis::kX, filters::LoopOrder::kXYZ, "r5 px xyz"},
      {5, filters::PencilAxis::kZ, filters::LoopOrder::kZYX, "r5 pz zyx"},
  };

  std::vector<std::string> row_labels, col_labels;
  for (const auto& r : rows) {
    row_labels.push_back(r.label);
  }
  for (const auto t : thread_counts) {
    col_labels.push_back(std::to_string(t));
  }

  bench_util::ResultTable runtime_ds("ds(runtime), native  [positive = z-order faster]",
                                     row_labels, col_labels);
  bench_util::ResultTable modeled_ds("ds(runtime), modeled memory-stall cycles", row_labels,
                                     col_labels);
  bench_util::ResultTable counter_ds("ds(" + std::string(figure.counter) + ")", row_labels,
                                     col_labels);

  const VolumePair pair = make_mri_pair(size);
  core::ArrayVolume dst(core::Extents3D::cube(size));

  for (std::size_t col = 0; col < thread_counts.size(); ++col) {
    const unsigned nthreads = thread_counts[col];
    exec::ExecutionContext pool(nthreads);
    const unsigned tpc =
        (figure.cores != 0 && nthreads % figure.cores == 0) ? nthreads / figure.cores : 1;
    for (std::size_t row = 0; row < rows.size(); ++row) {
      const auto& r = rows[row];
      const filters::BilateralParams params{r.radius, 1.5f, 0.1f, r.pencil, r.order};

      const double ta = bench_util::min_time_of(
          reps, [&] { filters::bilateral_parallel(pair.array, dst, params, pool); });
      const double tz = bench_util::min_time_of(
          reps, [&] { filters::bilateral_parallel(pair.z, dst, params, pool); });
      runtime_ds.set(row, col, bench_util::scaled_relative_difference(ta, tz));

      memsim::Hierarchy ha(platform, nthreads, tpc);
      filters::bilateral_traced(pair.array, dst, params, ha, trace_items);
      memsim::Hierarchy hz(platform, nthreads, tpc);
      filters::bilateral_traced(pair.z, dst, params, hz, trace_items);
      modeled_ds.set(row, col,
                     bench_util::scaled_relative_difference(
                         static_cast<double>(ha.modeled_cycles_max()),
                         static_cast<double>(hz.modeled_cycles_max())));
      counter_ds.set(row, col,
                     bench_util::scaled_relative_difference(
                         static_cast<double>(ha.counter(figure.counter)),
                         static_cast<double>(hz.counter(figure.counter))));
      std::printf("  [%s, %u threads] done\n", r.label, nthreads);
      std::fflush(stdout);
    }
  }
  std::printf("\n");

  const std::string stem = std::string(figure.platform);
  emit_table(runtime_ds, opts, "bilateral_" + stem + "_runtime_ds.csv");
  emit_table(modeled_ds, opts, "bilateral_" + stem + "_modeled_ds.csv");
  emit_table(counter_ds, opts, "bilateral_" + stem + "_counter_ds.csv");
  return 0;
}

}  // namespace sfcvis::bench
