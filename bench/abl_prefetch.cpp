// Ablation E: does a next-line prefetcher rescue array order?
//
// The paper measures demand locality; real CPUs also prefetch. Array
// order's with-the-grain sweeps are exactly the unit-stride pattern a
// next-line prefetcher accelerates, so the fair question is how much of
// the Z-order advantage survives with prefetching on. (Against-the-grain
// sweeps stride by whole rows/planes, which a next-line prefetcher cannot
// follow — the Z-order advantage there is expected to persist.)
#include "common.hpp"
#include "sfcvis/filters/bilateral.hpp"

int main(int argc, char** argv) {
  using namespace sfcvis;
  const bench_util::Options opts(argc, argv);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 24 : 48);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const std::uint32_t cache_scale = opts.get_u32("cache-scale", 64);
  const std::size_t trace_items = opts.get_u32("trace-items", quick ? 64 : 256);

  auto platform = memsim::scaled(memsim::ivybridge(), cache_scale);
  bench::print_preamble("Ablation E: next-line prefetcher vs the layout gap", size,
                        platform);

  const bench::VolumePair pair = bench::make_mri_pair(size);
  core::ArrayVolume dst(core::Extents3D::cube(size));

  struct Config {
    unsigned radius;
    filters::PencilAxis pencil;
    filters::LoopOrder order;
    const char* label;
  };
  const Config configs[] = {
      {3, filters::PencilAxis::kX, filters::LoopOrder::kXYZ, "r3 px xyz"},
      {3, filters::PencilAxis::kZ, filters::LoopOrder::kZYX, "r3 pz zyx"},
      {5, filters::PencilAxis::kX, filters::LoopOrder::kXYZ, "r5 px xyz"},
      {5, filters::PencilAxis::kZ, filters::LoopOrder::kZYX, "r5 pz zyx"},
  };

  std::vector<std::string> rows;
  for (const auto& c : configs) {
    rows.push_back(c.label);
  }
  bench_util::ResultTable table("ds(modeled cycles): demand-only vs next-line prefetch",
                                rows, {"prefetch off", "prefetch on"});

  for (int prefetch = 0; prefetch < 2; ++prefetch) {
    platform.prefetch_next_line = (prefetch == 1);
    std::size_t row = 0;
    for (const auto& c : configs) {
      const filters::BilateralParams params{c.radius, 1.5f, 0.1f, c.pencil, c.order};
      memsim::Hierarchy ha(platform, nthreads);
      filters::bilateral_traced(pair.array, dst, params, ha, trace_items);
      memsim::Hierarchy hz(platform, nthreads);
      filters::bilateral_traced(pair.z, dst, params, hz, trace_items);
      table.set(row++, static_cast<std::size_t>(prefetch),
                bench_util::scaled_relative_difference(
                    static_cast<double>(ha.modeled_cycles_max()),
                    static_cast<double>(hz.modeled_cycles_max())));
    }
  }

  bench::emit_table(table, opts, "abl_prefetch.csv");
  std::printf("reading: a shrinking ds from 'off' to 'on' is the share of the\n"
              "z-order advantage a next-line prefetcher recovers for array order.\n");
  return 0;
}
