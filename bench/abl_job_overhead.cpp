// Ablation J: job-dispatch overhead and queued-job StructureCache sharing.
//
// The kernel drivers build exec::KernelJobs and submit them through
// ExecutionContext::jobs() instead of calling the thread primitives
// directly (DESIGN.md Sec. 12). This bench pins the cost of that
// indirection three ways:
//   1. modeled counters — the traced bilateral replay through the job path
//      must drive exactly the access stream of the pre-job direct replay
//      loop (hand-rolled here). Deterministic memsim counters; the
//      job/direct ratio row gates at exactly 1.0 — the job layer adds
//      zero modeled work.
//   2. wall clock — the gradient driver (job path) vs the identical tile
//      body dispatched straight on ctx.parallel_static_state. The delta
//      is pure dispatch bookkeeping (registry lookup, record, span,
//      metrics); the acceptance target is <= 2% overhead. Advisory:
//      wall clock never gates in CI.
//   3. cache sharing — two macrocell raycasts queued back-to-back on one
//      context: job #1 must build the grid (1 miss), job #2 must reuse it
//      (>= 1 hit, 0 misses), attributed per job in the run report.
//
// The binary hard-fails (exit 1) when the deterministic invariants break,
// so the gate catches regressions even before table comparison.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "sfcvis/core/traced_view.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/filters/gradient.hpp"
#include "sfcvis/memsim/hierarchy.hpp"
#include "sfcvis/render/raycast.hpp"
#include "sfcvis/threads/schedulers.hpp"
#include "sfcvis/verify/diff.hpp"

int main(int argc, char** argv) {
  using namespace sfcvis;
  const bench_util::Options opts(argc, argv);
  const bench::TraceSession trace_session(opts);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 32 : 64);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const unsigned reps = opts.get_u32("reps", quick ? 3 : 5);
  const std::size_t trace_items = opts.get_u32("trace-items", quick ? 32 : 128);
  const std::uint32_t cache_scale = opts.get_u32("cache-scale", 64);
  const std::uint32_t image = opts.get_u32("image", quick ? 64 : 128);

  const auto platform = memsim::scaled(memsim::ivybridge(), cache_scale);
  bench::print_preamble("Ablation J: job dispatch overhead", size, platform);

  const bench::VolumePair pair = bench::make_mri_pair(size);
  const core::Extents3D e = core::Extents3D::cube(size);

  // -- 1. Deterministic replay: job path vs pre-job direct loop ------------
  const filters::BilateralParams params{1, 1.5f, 0.1f};
  core::ArrayVolume dst_direct(e);
  core::ArrayVolume dst_job(e);

  memsim::Hierarchy h_direct(platform, nthreads);
  pair.z.visit([&](const auto& grid) {
    // The pre-refactor driver body: materialize the round-robin schedule
    // and replay it serially through per-thread sinks.
    const filters::BilateralWeights weights(params.radius, params.sigma_spatial);
    const std::size_t pencils = filters::pencil_count(grid.extents(), params.pencil);
    const threads::StaticRoundRobin rr(pencils, nthreads);
    const std::vector<threads::Assignment> order = rr.replay_order();
    std::vector<memsim::ThreadSink> sinks;
    sinks.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t) {
      sinks.push_back(h_direct.sink(t));
    }
    const std::size_t items = std::min(trace_items, order.size());
    for (std::size_t i = 0; i < items; ++i) {
      const threads::Assignment& a = order[i];
      const auto view = core::make_traced_view(grid, sinks[a.tid]);
      filters::bilateral_pencil(view, dst_direct, weights, params, a.item);
    }
  });

  memsim::Hierarchy h_job(platform, nthreads);
  filters::bilateral_traced(pair.z, dst_job, params, h_job, trace_items);

  const auto direct_acc = static_cast<double>(h_direct.total_accesses());
  const auto direct_fill =
      static_cast<double>(h_direct.counter("L2_DATA_READ_MISS_MEM_FILL"));
  const auto direct_cyc = static_cast<double>(h_direct.modeled_cycles_max());
  const auto job_acc = static_cast<double>(h_job.total_accesses());
  const auto job_fill = static_cast<double>(h_job.counter("L2_DATA_READ_MISS_MEM_FILL"));
  const auto job_cyc = static_cast<double>(h_job.modeled_cycles_max());

  bench_util::ResultTable model("traced bilateral replay: job path vs direct loop",
                                {"direct loop", "job path", "job / direct"},
                                {"accesses", "mem fills", "modeled cycles"});
  model.set(0, 0, direct_acc);
  model.set(0, 1, direct_fill);
  model.set(0, 2, direct_cyc);
  model.set(1, 0, job_acc);
  model.set(1, 1, job_fill);
  model.set(1, 2, job_cyc);
  model.set(2, 0, job_acc / direct_acc);
  model.set(2, 1, direct_fill > 0.0 ? job_fill / direct_fill : 1.0);
  model.set(2, 2, job_cyc / direct_cyc);
  bench::emit_table(model, opts, "abl_job_model.csv", 4);

  if (h_job.total_accesses() != h_direct.total_accesses() ||
      h_job.counter("L2_DATA_READ_MISS_MEM_FILL") !=
          h_direct.counter("L2_DATA_READ_MISS_MEM_FILL") ||
      h_job.modeled_cycles_max() != h_direct.modeled_cycles_max()) {
    std::fprintf(stderr,
                 "FAIL: job-path replay counters diverge from the direct loop\n");
    return 1;
  }
  const auto out_diff =
      verify::compare_grids(dst_direct, dst_job, verify::Tolerance::bit_identical(),
                            "job vs direct replay output");
  if (!out_diff.ok) {
    std::fprintf(stderr, "FAIL: %s\n", out_diff.to_string().c_str());
    return 1;
  }
  std::printf("replay parity: counters identical, output bit-identical\n\n");

  // -- 2. Wall clock: gradient via job path vs raw ctx dispatch ------------
  exec::ExecOptions eopts;
  eopts.threads = nthreads;
  eopts.layout_registry.clear();
  exec::ExecutionContext ctx(eopts);

  core::ArrayVolume gdst(e);
  const double t_job = bench_util::min_time_of(
      reps, [&] { filters::gradient_magnitude(pair.z, gdst, ctx); });
  const double t_direct = bench_util::min_time_of(reps, [&] {
    pair.z.visit([&](const auto& grid) {
      // The gradient job's exact decomposition and body, dispatched on the
      // context's backend without the JobGraph in between.
      const core::Extents3D ge = grid.extents();
      const std::size_t pencils = static_cast<std::size_t>(ge.ny) * ge.nz;
      ctx.parallel_static_state(
          pencils, [&grid](unsigned) { return core::make_read_view(grid); },
          [&](const auto& view, std::size_t p, unsigned) {
            const auto j = static_cast<std::uint32_t>(p % ge.ny);
            const auto k = static_cast<std::uint32_t>(p / ge.ny);
            for (std::uint32_t i = 0; i < ge.nx; ++i) {
              const auto g = filters::gradient_voxel(view, i, j, k);
              gdst.at(i, j, k) = std::sqrt(g[0] * g[0] + g[1] * g[1] + g[2] * g[2]);
            }
          });
    });
  });

  bench_util::ResultTable wall("gradient dispatch wall time (target: job <= 1.02x)",
                               {"direct ctx dispatch", "job path"},
                               {"seconds", "vs direct"});
  wall.set(0, 0, t_direct);
  wall.set(0, 1, 1.0);
  wall.set(1, 0, t_job);
  wall.set(1, 1, t_job / t_direct);
  bench::emit_table(wall, opts, "abl_job_walltime.csv", 4);

  // -- 3. Queued raycasts share one StructureCache entry -------------------
  const bench::VolumePair cpair = bench::make_combustion_pair(size);
  render::RenderConfig rconfig{image, image, 32, 0.5f, 0.98f};
  rconfig.use_macrocells = true;
  const auto fsize = static_cast<float>(size);
  const auto camera = render::orbit_camera(1, 8, fsize, fsize, fsize);
  const auto tf = render::TransferFunction::flame();
  render::Image img1(image, image);
  render::Image img2(image, image);

  exec::ExecutionContext rctx(eopts);  // fresh context -> cold StructureCache
  exec::JobGraph& graph = rctx.jobs();
  const exec::JobId id1 =
      graph.submit(render::raycast_job(cpair.z, camera, tf, rconfig, img1));
  const exec::JobId id2 =
      graph.submit(render::raycast_job(cpair.z, camera, tf, rconfig, img2));
  graph.run_all();
  const auto rec1 = graph.find_record(id1);
  const auto rec2 = graph.find_record(id2);
  if (!rec1 || !rec2) {
    std::fprintf(stderr, "FAIL: queued raycast records missing\n");
    return 1;
  }

  bench_util::ResultTable cache("queued raycasts on one volume: macrocell cache",
                                {"raycast #1", "raycast #2"},
                                {"cache hits", "cache misses"});
  cache.set(0, 0, static_cast<double>(rec1->structure_cache_hits));
  cache.set(0, 1, static_cast<double>(rec1->structure_cache_misses));
  cache.set(1, 0, static_cast<double>(rec2->structure_cache_hits));
  cache.set(1, 1, static_cast<double>(rec2->structure_cache_misses));
  bench::emit_table(cache, opts, "abl_job_cache.csv", 0);

  if (rec1->structure_cache_misses != 1 || rec1->structure_cache_hits != 0 ||
      rec2->structure_cache_hits < 1 || rec2->structure_cache_misses != 0) {
    std::fprintf(stderr,
                 "FAIL: expected raycast #1 to build the macrocell grid "
                 "(1 miss) and #2 to reuse it (>= 1 hit, 0 misses)\n");
    return 1;
  }
  const auto img_diff = verify::compare_images(img1, img2,
                                               verify::Tolerance::bit_identical(),
                                               "queued raycast images");
  if (!img_diff.ok) {
    std::fprintf(stderr, "FAIL: %s\n", img_diff.to_string().c_str());
    return 1;
  }
  std::printf("cache sharing: #1 built the grid, #2 reused it; images identical\n");
  return 0;
}
