// Regenerates the paper's Fig. 2: bilateral3d on the Ivy Bridge platform —
// scaled relative differences of runtime and total L3 cache accesses
// (PAPI_L3_TCA), rows r1/r3/r5 x {px xyz, pz zyx}, concurrency
// {2,4,6,8,10,12,18,24}.
//
// Expected shape (paper): ds(runtime) slightly negative only for r1 px
// xyz; strongly positive for every pz zyx row; ds(L3_TCA) negative for
// r1 px xyz and very large (tens of x) for r3/r5.
#include "bilateral_figure.hpp"

int main(int argc, char** argv) {
  const sfcvis::bench::BilateralFigure figure{
      .figure = "Fig. 2: bilateral3d, Ivy Bridge (paper: 512^3, Edison node)",
      .platform = "ivybridge",
      .counter = "PAPI_L3_TCA",
      .default_threads = {2, 4, 6, 8, 10, 12, 18, 24},
      .default_cache_scale = 64,
  };
  return sfcvis::bench::run_bilateral_figure(figure, argc, argv);
}
