// Ablation F: work-assignment strategies for the renderer.
//
// The paper justifies raw threads over OpenMP by the superiority of the
// dynamic worker-pool model for raycasting, whose tile costs are wildly
// uneven (empty-space tiles finish early, flame-sheet tiles are slow).
// This bench measures the identical render under four schedulers:
//   pool static   — round-robin pencil-style assignment,
//   pool dynamic  — the worker-pool model (the paper's best),
//   omp static    — #pragma omp for schedule(static),
//   omp dynamic   — #pragma omp for schedule(dynamic, 1).
#include "common.hpp"
#include "sfcvis/render/raycast.hpp"
#include "sfcvis/threads/omp_executor.hpp"

int main(int argc, char** argv) {
  using namespace sfcvis;
  const bench_util::Options opts(argc, argv);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 32 : 64);
  const std::uint32_t image = opts.get_u32("image", quick ? 96 : 256);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const unsigned reps = opts.get_u32("reps", 3);

  std::printf("== Ablation F: scheduler comparison (renderer, %u threads) ==\n", nthreads);
  std::printf("volume %u^3, image %ux%u; OpenMP %s\n\n", size, image, image,
              threads::openmp_available() ? "available" : "NOT available (omp rows skipped)");

  const bench::VolumePair pair = bench::make_combustion_pair(size);
  const auto tf = render::TransferFunction::flame();
  const render::RenderConfig config{image, image, 32, 0.5f, 0.98f};
  const auto fsize = static_cast<float>(size);
  // Viewpoint 1: oblique view -> strongly uneven tile costs.
  const auto camera = render::orbit_camera(1, 8, fsize, fsize, fsize);
  const render::TileDecomposition tiles(image, image, config.tile_size);
  const core::PlainView<float, core::ZOrderLayout> view(pair.z.as<core::ZOrderLayout>());

  render::Image img(image, image);
  auto tile_job = [&](std::size_t t, unsigned) {
    render::render_tile(view, camera, tf, config, img, tiles.bounds(t));
  };

  threads::Pool pool(nthreads);
  std::vector<std::string> rows;
  std::vector<double> times;

  rows.push_back("pool static");
  times.push_back(bench_util::min_time_of(
      reps, [&] { threads::parallel_for_static(pool, tiles.count(), tile_job); }));
  rows.push_back("pool dynamic");
  times.push_back(bench_util::min_time_of(
      reps, [&] { threads::parallel_for_dynamic(pool, tiles.count(), tile_job); }));
  if (threads::openmp_available()) {
    rows.push_back("omp static");
    times.push_back(bench_util::min_time_of(reps, [&] {
      (void)threads::parallel_for_omp_static(nthreads, tiles.count(), tile_job);
    }));
    rows.push_back("omp dynamic");
    times.push_back(bench_util::min_time_of(reps, [&] {
      (void)threads::parallel_for_omp_dynamic(nthreads, tiles.count(), tile_job);
    }));
  }

  bench_util::ResultTable table("render wall time by scheduler", rows,
                                {"seconds", "vs pool dynamic"});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    table.set(r, 0, times[r]);
    table.set(r, 1, times[r] / times[1]);
  }
  bench::emit_table(table, opts, "abl_scheduler.csv", 4);
  return 0;
}
