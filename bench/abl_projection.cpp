// Ablation H: orthographic vs perspective projection.
//
// The paper classifies the raycaster as "semi-structured" *because* of
// perspective projection: every ray gets its own slope (Sec. III-B). With
// orthographic projection all rays share one slope, making the access
// pattern structured and maximally favorable to array order at aligned
// viewpoints. This bench measures both projections at an aligned (0) and
// a cross (2) viewpoint, for both layouts.
#include "common.hpp"
#include "sfcvis/render/raycast.hpp"

int main(int argc, char** argv) {
  using namespace sfcvis;
  const bench_util::Options opts(argc, argv);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 32 : 64);
  const std::uint32_t trace_image = opts.get_u32("trace-image", quick ? 48 : 96);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const std::uint32_t cache_scale = opts.get_u32("cache-scale", 16);

  const auto platform = memsim::scaled(memsim::ivybridge(), cache_scale);
  bench::print_preamble("Ablation H: orthographic vs perspective projection", size,
                        platform);

  const bench::VolumePair pair = bench::make_combustion_pair(size);
  const auto tf = render::TransferFunction::flame();
  const render::RenderConfig config{trace_image, trace_image, 16, 0.5f, 0.98f};
  const auto fsize = static_cast<float>(size);

  auto escapes = [&](const auto& volume, unsigned viewpoint, render::Projection proj) {
    const auto camera = render::orbit_camera(viewpoint, 8, fsize, fsize, fsize, proj);
    memsim::Hierarchy h(platform, nthreads);
    (void)render::raycast_traced(volume, camera, tf, config, h);
    return static_cast<double>(h.counter("PAPI_L3_TCA"));
  };

  bench_util::ResultTable table(
      "PAPI_L3_TCA by projection and viewpoint",
      {"ortho view 0", "ortho view 2", "persp view 0", "persp view 2"},
      {"a-order", "z-order", "ds"});
  const struct {
    unsigned view;
    render::Projection proj;
  } rows[] = {{0, render::Projection::kOrthographic},
              {2, render::Projection::kOrthographic},
              {0, render::Projection::kPerspective},
              {2, render::Projection::kPerspective}};
  for (std::size_t r = 0; r < 4; ++r) {
    const double a = escapes(pair.array, rows[r].view, rows[r].proj);
    const double z = escapes(pair.z, rows[r].view, rows[r].proj);
    table.set(r, 0, a);
    table.set(r, 1, z);
    table.set(r, 2, bench_util::scaled_relative_difference(a, z));
  }
  bench::emit_table(table, opts, "abl_projection.csv", 1);
  std::printf("reading: orthographic view 0 is array order's structured best case; the\n"
              "paper's semi-structured claim is the perspective rows' larger ds.\n");
  return 0;
}
