// Regenerates the paper's Fig. 4: absolute runtime and PAPI_L3_TCA per
// orbit viewpoint for array-order vs Z-order, Ivy Bridge platform.
//
// Expected shape (paper): the a-order series is lowest at viewpoints 0 and
// 4 (rays aligned with memory) and rises in between; the z-order series is
// flat — uncorrelated with viewpoint.
#include "volrend_figure.hpp"

int main(int argc, char** argv) {
  const sfcvis::bench::VolrendFigure figure{
      .figure = "Fig. 4: volrend viewpoint sweep, Ivy Bridge (paper: 512^3 combustion)",
      .platform = "ivybridge",
      .counter = "PAPI_L3_TCA",
      .default_threads = {},  // fixed-concurrency figure; use --threads=N
  };
  return sfcvis::bench::run_volrend_absolute_figure(figure, argc, argv);
}
