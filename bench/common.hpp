// Shared harness code for the per-figure bench binaries.
//
// Every binary accepts the same core knobs:
//   --size=N          volume edge length (default per figure; paper: 512)
//   --threads=a,b,c   concurrency sweep (defaults match the paper's)
//   --reps=N          timing repetitions (min-of-N)
//   --cache-scale=N   divide modeled cache capacities by N (see DESIGN.md:
//                     keeps the paper's cache:working-set ratio at small
//                     volume sizes)
//   --trace-items=N   replay prefix length for counter runs
//   --csv-dir=PATH    also write each table as CSV
//   --quick           shrink everything for a smoke run
//   --trace           enable span tracing for the whole run
//   --trace-out=PATH  write a Chrome trace-event JSON (Perfetto-loadable);
//                     implies --trace
//   --report-out=PATH write the machine-readable run report JSON (consumed
//                     by tools/trace_summary.py and tools/bench_gate.py
//                     --from-report); implies --trace
//
// Output: the same tables as the paper's figures — scaled relative
// differences (Eq. 4), positive = Z-order better.
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "sfcvis/bench_util/options.hpp"
#include "sfcvis/bench_util/stats.hpp"
#include "sfcvis/bench_util/table.hpp"
#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/layout.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/data/combustion.hpp"
#include "sfcvis/data/phantom.hpp"
#include "sfcvis/exec/trace_session.hpp"
#include "sfcvis/memsim/platforms.hpp"
#include "sfcvis/perfmon/perf_events.hpp"
#include "sfcvis/trace/export.hpp"
#include "sfcvis/trace/trace.hpp"

namespace sfcvis::bench {

/// Scoped tracing for one bench run: construct after parsing options,
/// and span recording is on for the binary's lifetime whenever --trace,
/// --trace-out or --report-out was given. All mechanics live in
/// exec::TraceSession; this subclass only adds the command-line plumbing.
/// Tables passed through emit_table while a session is active ride along
/// in the run report. A no-op when none of the tracing options are present.
class TraceSession : public exec::TraceSession {
 public:
  explicit TraceSession(const bench_util::Options& opts)
      : exec::TraceSession(opts.get_string("trace-out", ""),
                           opts.get_string("report-out", ""), opts.get_flag("trace")) {}
};

/// A pair of identical-content volumes in the two layouts under study,
/// behind the runtime facade.
struct VolumePair {
  core::AnyVolume array;
  core::AnyVolume z;
};

/// MRI-phantom pair (bilateral-filter input; stands in for the paper's
/// UC Davis MRI dataset).
inline VolumePair make_mri_pair(std::uint32_t size) {
  const core::Extents3D e = core::Extents3D::cube(size);
  VolumePair pair{core::make_volume(core::LayoutKind::kArray, e),
                  core::make_volume(core::LayoutKind::kZOrder, e)};
  pair.array.visit([](auto& grid) { data::fill_mri_phantom(grid); });
  pair.z.copy_from(pair.array);
  return pair;
}

/// Combustion-field pair (raycaster input; stands in for the paper's
/// combustion-simulation dataset).
inline VolumePair make_combustion_pair(std::uint32_t size) {
  const core::Extents3D e = core::Extents3D::cube(size);
  VolumePair pair{core::make_volume(core::LayoutKind::kArray, e),
                  core::make_volume(core::LayoutKind::kZOrder, e)};
  pair.array.visit([](auto& grid) { data::fill_combustion(grid); });
  pair.z.copy_from(pair.array);
  return pair;
}

/// Prints one figure table and optionally mirrors it to CSV.
inline void emit_table(const bench_util::ResultTable& table,
                       const bench_util::Options& opts, const std::string& csv_name,
                       int precision = 2) {
  std::fputs(table.to_text(precision).c_str(), stdout);
  std::fputs("\n", stdout);
  const std::string dir = opts.get_string("csv-dir", "");
  if (!dir.empty()) {
    table.write_csv(std::filesystem::path(dir) / csv_name);
    std::printf("  [csv] %s/%s\n\n", dir.c_str(), csv_name.c_str());
  }
  if (exec::TraceSession* session = exec::TraceSession::current()) {
    trace::ReportTable rt;
    rt.name = std::filesystem::path(csv_name).stem().string();
    rt.title = table.title();
    rt.rows = table.row_labels();
    rt.cols = table.col_labels();
    rt.cells.resize(table.rows());
    for (std::size_t r = 0; r < table.rows(); ++r) {
      rt.cells[r].resize(table.cols());
      for (std::size_t c = 0; c < table.cols(); ++c) {
        rt.cells[r][c] = table.at(r, c);
      }
    }
    session->add_table(std::move(rt));
  }
}

/// Standard preamble: echoes the effective configuration and whether
/// hardware counters are available (they are reported alongside the memsim
/// counters when they are).
inline void print_preamble(const char* figure, std::uint32_t size,
                           const memsim::PlatformSpec& spec) {
  std::printf("== %s ==\n", figure);
  std::printf("volume: %u^3 float  |  modeled platform: %s (", size, spec.name.c_str());
  for (std::size_t l = 0; l < spec.private_levels.size(); ++l) {
    std::printf("%s%s %lluKB", l ? ", " : "", spec.private_levels[l].name.c_str(),
                static_cast<unsigned long long>(spec.private_levels[l].size_bytes / 1024));
  }
  if (spec.shared_llc) {
    std::printf(", shared %s %lluKB", spec.shared_llc->name.c_str(),
                static_cast<unsigned long long>(spec.shared_llc->size_bytes / 1024));
  }
  std::printf(")\n");
  std::printf("hardware counters: %s\n\n",
              perfmon::PerfCounter::available()
                  ? "available (reported as extra columns)"
                  : "unavailable here; using memsim counters (see DESIGN.md)");
}

}  // namespace sfcvis::bench
