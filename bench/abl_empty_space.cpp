// Ablation E: empty-space skipping with the macrocell min-max grid.
//
// The flame transfer function classifies most of the combustion volume to
// zero opacity, so a large fraction of the raycaster's trilinear taps are
// provably wasted. This bench quantifies what the macrocell DDA recovers:
// for each macrocell block size and orbit viewpoint it reports dense vs
// skipping runtime, the speedup, and the fraction of samples skipped —
// for both layouts, since the skip path changes the access pattern the
// layouts are competing on (surviving samples cluster around the flame
// sheet instead of marching the whole ray).
//
// Extra knobs: --blocks=a,b,c (macrocell edge), --views=a,b,c (orbit
// stops of 8). Grid build happens once per layout/block outside the
// timing loop; build seconds are printed separately.
#include "common.hpp"
#include "sfcvis/render/macrocell.hpp"
#include "sfcvis/render/raycast.hpp"

int main(int argc, char** argv) {
  using namespace sfcvis;
  const bench_util::Options opts(argc, argv);
  bench::TraceSession trace_session(opts);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 32 : 64);
  const std::uint32_t image = opts.get_u32("image", quick ? 64 : 128);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const unsigned reps = opts.get_u32("reps", quick ? 1 : 3);
  const std::uint32_t cache_scale = opts.get_u32("cache-scale", 16);
  const auto blocks = opts.get_u32_list("blocks", quick ? std::vector<std::uint32_t>{8}
                                                        : std::vector<std::uint32_t>{4, 8, 16});
  const auto views = opts.get_u32_list("views", {0, 2, 5});

  const auto platform = memsim::scaled(memsim::ivybridge(), cache_scale);
  bench::print_preamble("Ablation E: empty-space skipping (macrocell min-max grid)", size,
                        platform);

  const bench::VolumePair pair = bench::make_combustion_pair(size);
  const auto tf = render::TransferFunction::flame();
  const auto fsize = static_cast<float>(size);
  exec::ExecutionContext pool(nthreads);

  std::vector<std::string> view_cols;
  view_cols.reserve(views.size());
  for (const auto v : views) {
    view_cols.push_back("view " + std::to_string(v));
  }

  // Row sets: one dense row plus one per block size, for each layout.
  std::vector<std::string> runtime_rows;
  std::vector<std::string> gain_rows;
  for (const char* layout : {"a-order", "z-order"}) {
    runtime_rows.push_back(std::string(layout) + " dense");
    for (const auto b : blocks) {
      runtime_rows.push_back(std::string(layout) + " skip b=" + std::to_string(b));
      gain_rows.push_back(std::string(layout) + " b=" + std::to_string(b));
    }
  }
  bench_util::ResultTable runtime("native runtime (seconds) by viewpoint", runtime_rows,
                                  view_cols);
  bench_util::ResultTable speedup("speedup over dense (x)", gain_rows, view_cols);
  bench_util::ResultTable skiprate("samples skipped (%)", gain_rows, view_cols);

  const std::size_t per_layout = 1 + blocks.size();
  const auto run_layout = [&](const auto& volume, std::size_t layout_idx) {
    // Grids are view-independent: build once per block size, off the clock.
    std::vector<render::MacrocellGrid> grids;
    grids.reserve(blocks.size());
    for (const auto b : blocks) {
      const double t0 = bench_util::min_time_of(1, [&] {
        grids.push_back(render::MacrocellGrid::build(volume, b, &pool));
      });
      std::printf("  [build] %s b=%u: %.4fs\n", layout_idx == 0 ? "a-order" : "z-order", b,
                  t0);
    }
    for (std::size_t c = 0; c < views.size(); ++c) {
      const auto camera = render::orbit_camera(views[c], 8, fsize, fsize, fsize);
      render::RenderConfig config;
      config.image_width = image;
      config.image_height = image;
      const std::size_t row0 = layout_idx * per_layout;
      const double dense = bench_util::min_time_of(reps, [&] {
        (void)render::raycast_parallel(volume, camera, tf, config, pool);
      });
      runtime.set(row0, c, dense);
      config.use_macrocells = true;
      for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
        config.macrocell_size = blocks[bi];
        const double accel = bench_util::min_time_of(reps, [&] {
          (void)render::raycast_parallel(volume, camera, tf, config, pool, &grids[bi]);
        });
        runtime.set(row0 + 1 + bi, c, accel);
        const std::size_t gain_row = layout_idx * blocks.size() + bi;
        speedup.set(gain_row, c, accel > 0.0 ? dense / accel : 0.0);
        trace::Tracer::instance().reset_metrics();
        (void)render::raycast_parallel(volume, camera, tf, config, pool, &grids[bi],
                                       /*collect_stats=*/true);
        const auto metrics = trace::Tracer::instance().metrics_snapshot();
        skiprate.set(gain_row, c, 100.0 * render::skip_rate(metrics));
      }
    }
  };
  run_layout(pair.array, 0);
  run_layout(pair.z, 1);
  std::printf("\n");

  bench::emit_table(runtime, opts, "abl_empty_runtime.csv", 4);
  bench::emit_table(speedup, opts, "abl_empty_speedup.csv", 2);
  bench::emit_table(skiprate, opts, "abl_empty_skiprate.csv", 1);

  // Counter view: the skipped samples never reach the modeled hierarchy,
  // so the traced access stream (and its L2 escapes) shrinks with them.
  const std::uint32_t trace_block = blocks[blocks.size() / 2];
  bench_util::ResultTable fills("L2 escapes (traced), dense vs skip b=" +
                                    std::to_string(trace_block),
                                {"a-order dense", "a-order skip", "z-order dense",
                                 "z-order skip"},
                                view_cols);
  const auto trace_layout = [&](const auto& volume, std::size_t row0) {
    for (std::size_t c = 0; c < views.size(); ++c) {
      const auto camera = render::orbit_camera(views[c], 8, fsize, fsize, fsize);
      render::RenderConfig config;
      config.image_width = image;
      config.image_height = image;
      memsim::Hierarchy dense_h(platform, nthreads);
      (void)render::raycast_traced(volume, camera, tf, config, dense_h);
      fills.set(row0, c, static_cast<double>(dense_h.counter("L2_DATA_READ_MISS_MEM_FILL")));
      config.use_macrocells = true;
      config.macrocell_size = trace_block;
      memsim::Hierarchy accel_h(platform, nthreads);
      (void)render::raycast_traced(volume, camera, tf, config, accel_h);
      fills.set(row0 + 1, c,
                static_cast<double>(accel_h.counter("L2_DATA_READ_MISS_MEM_FILL")));
    }
  };
  trace_layout(pair.array, 0);
  trace_layout(pair.z, 2);
  bench::emit_table(fills, opts, "abl_empty_fills.csv", 0);
  return 0;
}
