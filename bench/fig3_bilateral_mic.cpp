// Regenerates the paper's Fig. 3: bilateral3d on the MIC (Knights Corner)
// platform — scaled relative differences of runtime and
// L2_DATA_READ_MISS_MEM_FILL, concurrency {59,118,177,236} (59 usable
// cores x up to 4 hardware threads).
//
// Expected shape (paper): Z-order faster in all but ~one small-stencil
// configuration; the miss-count differences grow strongly with stencil
// size and are largest for r5 pz zyx.
#include "bilateral_figure.hpp"

int main(int argc, char** argv) {
  const sfcvis::bench::BilateralFigure figure{
      .figure = "Fig. 3: bilateral3d, Intel MIC/KNC (paper: Babbage 5110P)",
      .platform = "mic",
      .counter = "L2_DATA_READ_MISS_MEM_FILL",
      .default_threads = {59, 118, 177, 236},
      .default_cache_scale = 64,
      .default_trace_items = 472,  // 2 full round-robin rounds at 236 threads
      .cores = 59,
  };
  return sfcvis::bench::run_bilateral_figure(figure, argc, argv);
}
