// Ablation I: out-of-core bricked volumes — does SFC machinery still pay
// when the volume does not fit in memory?
//
// Two claims from the bricked design (core/bricked.hpp) are measured with
// the working set held at >= 4x the brick-cache budget:
//
//  1. Neighbour-finding: a stencil sweep locates the adjacent brick with
//     one masked ripple-add on the brick-grid Morton code (morton_step_*)
//     instead of decoding and re-encoding the full coordinate.
//  2. Prefetch: bricks are stored in curve order, so "the next bricks in
//     the file" is exactly the sweep's future — depth-d prefetch behind
//     each demand miss converts misses into overlapped loads.
//
// The gated table is a deterministic replay: the brick-granular reference
// string of a 6-point-stencil sweep in curve order is pushed through an
// explicit LRU cache simulation twice — decode-recompute without prefetch
// vs SFC hops with depth-2 prefetch — counting demand faults, codec
// operations, and a modeled cost. Pure function of the brick-grid
// geometry: bit-stable across runs and machines (the same discipline as
// the memsim tables, see DESIGN.md).
//
// The advisory tables run the REAL BrickedVolume over a packed temp file
// (live cache counters, wall clock); the bench also asserts the bricked
// kernel output is bit-identical to in-core before reporting anything.
#include <cassert>
#include <cstdint>
#include <filesystem>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "sfcvis/core/brick_file.hpp"
#include "sfcvis/core/bricked.hpp"
#include "sfcvis/core/morton.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/filters/gradient.hpp"

namespace {

using namespace sfcvis;

// --- deterministic LRU replay ----------------------------------------------

/// Explicit LRU brick cache over 64-bit brick codes: stamp-based LRU,
/// `capacity` resident bricks, optional curve-order prefetch.
class LruSim {
 public:
  LruSim(std::size_t capacity, const std::vector<std::uint64_t>& codes)
      : capacity_(capacity) {
    for (std::size_t r = 0; r < codes.size(); ++r) {
      rank_of_[codes[r]] = r;
    }
    codes_ = &codes;
  }

  std::uint64_t faults = 0;          ///< demand loads from "disk"
  std::uint64_t prefetch_hits = 0;   ///< demand accesses served by a prefetch
  std::uint64_t prefetch_issued = 0; ///< bricks loaded ahead of demand

  /// One demand access; with depth > 0 also prefetches the next bricks in
  /// file (curve) order behind a miss, mirroring BrickedVolume's policy.
  void access(std::uint64_t code, unsigned depth) {
    auto it = resident_.find(code);
    if (it != resident_.end()) {
      if (it->second.prefetched) {
        ++prefetch_hits;
        it->second.prefetched = false;
      }
      it->second.stamp = ++clock_;
      return;
    }
    ++faults;
    insert(code, false);
    if (depth > 0) {
      const std::size_t rank = rank_of_.at(code);
      for (unsigned d = 1; d <= depth && rank + d < codes_->size(); ++d) {
        const std::uint64_t next = (*codes_)[rank + d];
        if (resident_.find(next) == resident_.end()) {
          ++prefetch_issued;
          insert(next, true);
        }
      }
    }
  }

 private:
  struct Slot {
    std::uint64_t stamp = 0;
    bool prefetched = false;
  };

  void insert(std::uint64_t code, bool prefetched) {
    if (resident_.size() >= capacity_) {
      auto victim = resident_.begin();
      for (auto it = resident_.begin(); it != resident_.end(); ++it) {
        if (it->second.stamp < victim->second.stamp) {
          victim = it;
        }
      }
      resident_.erase(victim);
    }
    resident_[code] = Slot{++clock_, prefetched};
  }

  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  std::unordered_map<std::uint64_t, Slot> resident_;
  std::unordered_map<std::uint64_t, std::size_t> rank_of_;
  const std::vector<std::uint64_t>* codes_;
};

/// Result of replaying the stencil sweep through one neighbour-finding
/// strategy. Codec ops: an SFC hop is one masked ripple-add; the
/// decode-recompute baseline pays a full compact (3 axes) plus a full
/// re-dilation (3 axes) per neighbour lookup — 6 primitive bit-codec
/// passes where the hop pays 1.
struct ReplayResult {
  std::uint64_t faults = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t codec_ops = 0;
  /// Modeled cost in codec-op units: a demand fault stalls for a brick
  /// load (512 ops — I/O is ~two orders above arithmetic), a prefetch-hit
  /// pays the residual overlap (64), codec ops cost 1 each.
  [[nodiscard]] double modeled_cost() const {
    return 512.0 * static_cast<double>(faults) +
           64.0 * static_cast<double>(prefetch_hits) +
           static_cast<double>(codec_ops);
  }
};

/// Replays a 6-point-stencil sweep over the brick grid in curve order:
/// each brick visit touches the brick and its in-grid face neighbours once
/// per brick slice (`edge` repetitions — the per-slice halo of the real
/// sweep, amortized to brick granularity).
ReplayResult replay_sweep(const core::Extents3D& grid, std::uint32_t edge,
                          std::size_t cache_bricks, bool sfc_hops, unsigned depth) {
  const std::vector<std::uint64_t> codes = core::detail::brick_codes(grid);
  LruSim sim(cache_bricks, codes);
  ReplayResult out;
  for (const std::uint64_t code : codes) {
    const core::MortonCoord3D c = core::morton_decode_3d(code);
    // The neighbour codes this brick's halo needs, found either way.
    std::vector<std::uint64_t> halo;
    halo.push_back(code);
    struct Dir {
      std::int32_t dx, dy, dz;
    };
    const Dir dirs[] = {{-1, 0, 0}, {1, 0, 0}, {0, -1, 0},
                        {0, 1, 0},  {0, 0, -1}, {0, 0, 1}};
    for (const Dir& d : dirs) {
      const std::int64_t nx = static_cast<std::int64_t>(c.x) + d.dx;
      const std::int64_t ny = static_cast<std::int64_t>(c.y) + d.dy;
      const std::int64_t nz = static_cast<std::int64_t>(c.z) + d.dz;
      if (nx < 0 || ny < 0 || nz < 0 || nx >= grid.nx || ny >= grid.ny ||
          nz >= grid.nz) {
        continue;
      }
      if (sfc_hops) {
        // One masked ripple-add on the interleaved code.
        std::uint64_t m = code;
        if (d.dx != 0) {
          m = core::morton_step_x(m, d.dx);
        } else if (d.dy != 0) {
          m = core::morton_step_y(m, d.dy);
        } else {
          m = core::morton_step_z(m, d.dz);
        }
        out.codec_ops += 1;
        halo.push_back(m);
      } else {
        // Decode-recompute: compact all three axes out of the code, then
        // re-dilate the adjusted coordinate — 6 codec passes.
        out.codec_ops += 6;
        halo.push_back(core::morton_encode_3d(static_cast<std::uint32_t>(nx),
                                              static_cast<std::uint32_t>(ny),
                                              static_cast<std::uint32_t>(nz)));
      }
    }
    for (std::uint32_t slice = 0; slice < edge; ++slice) {
      for (const std::uint64_t h : halo) {
        sim.access(h, depth);
      }
    }
  }
  out.faults = sim.faults;
  out.prefetch_hits = sim.prefetch_hits;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  const bench_util::Options opts(argc, argv);
  const bool quick = opts.get_flag("quick");
  const std::uint32_t size = opts.get_u32("size", quick ? 48 : 128);
  const std::uint32_t edge = opts.get_u32("brick-edge", 8);
  const unsigned nthreads = opts.get_u32("threads", 4);
  const unsigned reps = opts.get_u32("reps", quick ? 2 : 5);
  bench::TraceSession session(opts);

  std::printf("== Ablation I: out-of-core bricked volumes ==\n");
  std::printf("volume: %u^3 float, brick edge %u; cache budget = working set / 4\n\n",
              size, edge);

  // --- gated: deterministic LRU replay ------------------------------------
  const core::Extents3D extents = core::Extents3D::cube(size);
  const core::Extents3D grid{(size + edge - 1) / edge, (size + edge - 1) / edge,
                             (size + edge - 1) / edge};
  const std::size_t total_bricks =
      static_cast<std::size_t>(grid.nx) * grid.ny * grid.nz;
  const std::size_t cache_bricks = std::max<std::size_t>(1, total_bricks / 4);

  bench_util::ResultTable sim_table(
      "stencil sweep, working set 4x cache: demand faults / codec ops / modeled cost",
      {"decode-recompute", "sfc-hop+prefetch2"},
      {"demand faults", "prefetch hits", "codec ops", "modeled cost"});
  const ReplayResult base = replay_sweep(grid, edge, cache_bricks, false, 0);
  const ReplayResult sfc = replay_sweep(grid, edge, cache_bricks, true, 2);
  for (int row = 0; row < 2; ++row) {
    const ReplayResult& r = row == 0 ? base : sfc;
    sim_table.set(static_cast<std::size_t>(row), 0, static_cast<double>(r.faults));
    sim_table.set(static_cast<std::size_t>(row), 1,
                  static_cast<double>(r.prefetch_hits));
    sim_table.set(static_cast<std::size_t>(row), 2, static_cast<double>(r.codec_ops));
    sim_table.set(static_cast<std::size_t>(row), 3, r.modeled_cost());
  }
  bench::emit_table(sim_table, opts, "abl_ooc_sim.csv");
  std::printf("reading: the sfc row must stay below the decode-recompute row on\n"
              "modeled cost — hops cost 1 codec op where recompute costs 6, and\n"
              "curve-order prefetch overlaps the faults the LRU cannot avoid.\n\n");

  // --- advisory: the real backend over a packed temp file -----------------
  const fs::path path =
      fs::temp_directory_path() / ("sfcvis_abl_ooc_" + std::to_string(::getpid()) + ".sfcbrk");
  core::AnyVolume src = core::make_volume(core::LayoutKind::kZOrder, extents);
  src.visit([](auto& g) { data::fill_mri_phantom(g); });
  core::BrickPackOptions popts;
  popts.brick_edge = edge;
  popts.inner_kind = core::LayoutKind::kZOrder;
  const core::BrickFileInfo info = core::pack_brick_file(path.string(), src, popts);

  exec::ExecutionContext ctx(nthreads);
  const std::size_t budget = cache_bricks * info.brick_bytes();

  core::BrickOpenOptions mmap_opts;
  core::BrickOpenOptions stream_opts;
  stream_opts.force_stream = true;
  stream_opts.cache_bytes = budget;
  core::BrickOpenOptions stream_pf_opts = stream_opts;
  stream_pf_opts.prefetch_depth = 2;

  // Bit-identity gate before any numbers: every access mode must match the
  // in-core kernel output exactly.
  const filters::BilateralParams params{2, 1.5f, 0.1f};
  core::ArrayVolume want(extents);
  filters::bilateral_parallel(src, want, params, ctx);
  for (const core::BrickOpenOptions& o : {mmap_opts, stream_opts, stream_pf_opts}) {
    const core::BrickedVolume vol = core::BrickedVolume::open(path.string(), o);
    core::ArrayVolume got(extents);
    filters::bilateral_parallel(vol, got, params, ctx);
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (got.data()[i] != want.data()[i]) {
        std::fprintf(stderr, "FATAL: bricked output diverged from in-core\n");
        fs::remove(path);
        return 1;
      }
    }
  }
  std::printf("bit-identity: bricked (mmap, stream, stream+prefetch) == in-core: yes\n\n");

  bench_util::ResultTable cache_table(
      "live brick-cache counters, bilateral r2 (stream budget = 1/4 working set)",
      {"stream/4", "stream/4 + pf2"},
      {"hits", "misses", "evictions", "prefetch hits"});
  bench_util::ResultTable time_table(
      "wall clock seconds, min-of-" + std::to_string(reps) + " (advisory)",
      {"in-core z-order", "bricked mmap", "bricked stream/4"}, {"bilateral r2"});

  std::size_t row = 0;
  for (const core::BrickOpenOptions& o : {stream_opts, stream_pf_opts}) {
    const core::BrickedVolume vol = core::BrickedVolume::open(path.string(), o);
    core::ArrayVolume dst(extents);
    filters::bilateral_parallel(vol, dst, params, ctx);
    const core::BrickCacheReport rep = vol.cache_report();
    cache_table.set(row, 0, static_cast<double>(rep.hits));
    cache_table.set(row, 1, static_cast<double>(rep.misses));
    cache_table.set(row, 2, static_cast<double>(rep.evictions));
    cache_table.set(row, 3, static_cast<double>(rep.prefetch_hits));
    ++row;
  }
  bench::emit_table(cache_table, opts, "abl_ooc_brickcache.csv");

  {
    core::ArrayVolume dst(extents);
    time_table.set(0, 0, bench_util::min_time_of(reps, [&] {
      filters::bilateral_parallel(src, dst, params, ctx);
    }));
    const core::BrickedVolume mm = core::BrickedVolume::open(path.string(), mmap_opts);
    time_table.set(1, 0, bench_util::min_time_of(reps, [&] {
      filters::bilateral_parallel(mm, dst, params, ctx);
    }));
    const core::BrickedVolume st = core::BrickedVolume::open(path.string(), stream_opts);
    time_table.set(2, 0, bench_util::min_time_of(reps, [&] {
      filters::bilateral_parallel(st, dst, params, ctx);
    }));
  }
  bench::emit_table(time_table, opts, "abl_ooc_runtime.csv");

  fs::remove(path);
  return 0;
}
