// Regenerates the paper's Fig. 6: volrend on the MIC platform — scaled
// relative differences of runtime and L2_DATA_READ_MISS_MEM_FILL;
// rows = 8 orbit viewpoints, columns = concurrency {59,118,177,236}.
//
// Expected shape (paper): runtime differences smallest at viewpoints 0 and
// 4; the miss-count metric uniformly favors Z-order and is highest at the
// lowest thread count, dropping as threads per core increase.
#include "volrend_figure.hpp"

int main(int argc, char** argv) {
  const sfcvis::bench::VolrendFigure figure{
      .figure = "Fig. 6: volrend ds tables, Intel MIC/KNC",
      .platform = "mic",
      .counter = "L2_DATA_READ_MISS_MEM_FILL",
      .default_threads = {59, 118, 177, 236},
      .cores = 59,
  };
  return sfcvis::bench::run_volrend_ds_figure(figure, argc, argv);
}
