# Empty dependencies file for denoise_image.
# This may be replaced when dependencies are built.
