file(REMOVE_RECURSE
  "CMakeFiles/denoise_image.dir/denoise_image.cpp.o"
  "CMakeFiles/denoise_image.dir/denoise_image.cpp.o.d"
  "denoise_image"
  "denoise_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denoise_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
