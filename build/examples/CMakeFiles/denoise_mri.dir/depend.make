# Empty dependencies file for denoise_mri.
# This may be replaced when dependencies are built.
