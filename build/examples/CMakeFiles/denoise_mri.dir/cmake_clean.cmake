file(REMOVE_RECURSE
  "CMakeFiles/denoise_mri.dir/denoise_mri.cpp.o"
  "CMakeFiles/denoise_mri.dir/denoise_mri.cpp.o.d"
  "denoise_mri"
  "denoise_mri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denoise_mri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
