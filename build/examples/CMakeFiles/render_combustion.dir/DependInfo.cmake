
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/render_combustion.cpp" "examples/CMakeFiles/render_combustion.dir/render_combustion.cpp.o" "gcc" "examples/CMakeFiles/render_combustion.dir/render_combustion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sfcvis/perfmon/CMakeFiles/sfcvis_perfmon.dir/DependInfo.cmake"
  "/root/repo/build/src/sfcvis/data/CMakeFiles/sfcvis_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sfcvis/filters/CMakeFiles/sfcvis_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/sfcvis/render/CMakeFiles/sfcvis_render.dir/DependInfo.cmake"
  "/root/repo/build/src/sfcvis/memsim/CMakeFiles/sfcvis_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfcvis/threads/CMakeFiles/sfcvis_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/sfcvis/bench_util/CMakeFiles/sfcvis_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sfcvis/core/CMakeFiles/sfcvis_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
