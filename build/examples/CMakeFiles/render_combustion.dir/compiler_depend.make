# Empty compiler generated dependencies file for render_combustion.
# This may be replaced when dependencies are built.
