file(REMOVE_RECURSE
  "CMakeFiles/render_combustion.dir/render_combustion.cpp.o"
  "CMakeFiles/render_combustion.dir/render_combustion.cpp.o.d"
  "render_combustion"
  "render_combustion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_combustion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
