# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_layout_explorer "/root/repo/build/examples/layout_explorer" "--n=8")
set_tests_properties(example_layout_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_denoise_mri "/root/repo/build/examples/denoise_mri" "--size=32" "--threads=2")
set_tests_properties(example_denoise_mri PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_render_combustion "/root/repo/build/examples/render_combustion" "--size=32" "--image=64" "--threads=2")
set_tests_properties(example_render_combustion PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_denoise_image "/root/repo/build/examples/denoise_image" "--size=96" "--threads=2")
set_tests_properties(example_denoise_image PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
