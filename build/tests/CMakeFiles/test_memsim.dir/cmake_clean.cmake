file(REMOVE_RECURSE
  "CMakeFiles/test_memsim.dir/test_memsim.cpp.o"
  "CMakeFiles/test_memsim.dir/test_memsim.cpp.o.d"
  "test_memsim"
  "test_memsim.pdb"
  "test_memsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
