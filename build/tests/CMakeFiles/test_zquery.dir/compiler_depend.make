# Empty compiler generated dependencies file for test_zquery.
# This may be replaced when dependencies are built.
