file(REMOVE_RECURSE
  "CMakeFiles/test_zquery.dir/test_zquery.cpp.o"
  "CMakeFiles/test_zquery.dir/test_zquery.cpp.o.d"
  "test_zquery"
  "test_zquery.pdb"
  "test_zquery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
