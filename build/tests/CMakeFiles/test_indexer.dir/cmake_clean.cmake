file(REMOVE_RECURSE
  "CMakeFiles/test_indexer.dir/test_indexer.cpp.o"
  "CMakeFiles/test_indexer.dir/test_indexer.cpp.o.d"
  "test_indexer"
  "test_indexer.pdb"
  "test_indexer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_indexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
