# Empty dependencies file for test_indexer.
# This may be replaced when dependencies are built.
