file(REMOVE_RECURSE
  "CMakeFiles/test_hilbert.dir/test_hilbert.cpp.o"
  "CMakeFiles/test_hilbert.dir/test_hilbert.cpp.o.d"
  "test_hilbert"
  "test_hilbert.pdb"
  "test_hilbert[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hilbert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
