# Empty dependencies file for test_hilbert.
# This may be replaced when dependencies are built.
