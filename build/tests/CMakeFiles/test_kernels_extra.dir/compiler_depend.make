# Empty compiler generated dependencies file for test_kernels_extra.
# This may be replaced when dependencies are built.
