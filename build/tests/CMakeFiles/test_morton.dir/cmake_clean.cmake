file(REMOVE_RECURSE
  "CMakeFiles/test_morton.dir/test_morton.cpp.o"
  "CMakeFiles/test_morton.dir/test_morton.cpp.o.d"
  "test_morton"
  "test_morton.pdb"
  "test_morton[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_morton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
