# Empty compiler generated dependencies file for test_morton.
# This may be replaced when dependencies are built.
