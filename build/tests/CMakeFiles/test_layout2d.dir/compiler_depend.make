# Empty compiler generated dependencies file for test_layout2d.
# This may be replaced when dependencies are built.
