file(REMOVE_RECURSE
  "CMakeFiles/test_layout2d.dir/test_layout2d.cpp.o"
  "CMakeFiles/test_layout2d.dir/test_layout2d.cpp.o.d"
  "test_layout2d"
  "test_layout2d.pdb"
  "test_layout2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
