file(REMOVE_RECURSE
  "CMakeFiles/test_filters.dir/test_filters.cpp.o"
  "CMakeFiles/test_filters.dir/test_filters.cpp.o.d"
  "test_filters"
  "test_filters.pdb"
  "test_filters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
