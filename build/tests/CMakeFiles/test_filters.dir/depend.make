# Empty dependencies file for test_filters.
# This may be replaced when dependencies are built.
