# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_morton[1]_include.cmake")
include("/root/repo/build/tests/test_hilbert[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_indexer[1]_include.cmake")
include("/root/repo/build/tests/test_memsim[1]_include.cmake")
include("/root/repo/build/tests/test_threads[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_filters[1]_include.cmake")
include("/root/repo/build/tests/test_render[1]_include.cmake")
include("/root/repo/build/tests/test_bench_util[1]_include.cmake")
include("/root/repo/build/tests/test_zquery[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_extra[1]_include.cmake")
include("/root/repo/build/tests/test_layout2d[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_regression[1]_include.cmake")
