# Empty compiler generated dependencies file for sfcvis_perfmon.
# This may be replaced when dependencies are built.
