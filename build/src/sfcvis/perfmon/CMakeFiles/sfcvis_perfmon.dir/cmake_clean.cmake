file(REMOVE_RECURSE
  "CMakeFiles/sfcvis_perfmon.dir/perf_events.cpp.o"
  "CMakeFiles/sfcvis_perfmon.dir/perf_events.cpp.o.d"
  "libsfcvis_perfmon.a"
  "libsfcvis_perfmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcvis_perfmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
