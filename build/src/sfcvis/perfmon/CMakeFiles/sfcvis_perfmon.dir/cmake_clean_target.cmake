file(REMOVE_RECURSE
  "libsfcvis_perfmon.a"
)
