# Empty dependencies file for sfcvis_memsim.
# This may be replaced when dependencies are built.
