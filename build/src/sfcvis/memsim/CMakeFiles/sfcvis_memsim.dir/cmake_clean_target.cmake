file(REMOVE_RECURSE
  "libsfcvis_memsim.a"
)
