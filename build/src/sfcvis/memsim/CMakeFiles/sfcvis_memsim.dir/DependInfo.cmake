
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfcvis/memsim/cache.cpp" "src/sfcvis/memsim/CMakeFiles/sfcvis_memsim.dir/cache.cpp.o" "gcc" "src/sfcvis/memsim/CMakeFiles/sfcvis_memsim.dir/cache.cpp.o.d"
  "/root/repo/src/sfcvis/memsim/hierarchy.cpp" "src/sfcvis/memsim/CMakeFiles/sfcvis_memsim.dir/hierarchy.cpp.o" "gcc" "src/sfcvis/memsim/CMakeFiles/sfcvis_memsim.dir/hierarchy.cpp.o.d"
  "/root/repo/src/sfcvis/memsim/platforms.cpp" "src/sfcvis/memsim/CMakeFiles/sfcvis_memsim.dir/platforms.cpp.o" "gcc" "src/sfcvis/memsim/CMakeFiles/sfcvis_memsim.dir/platforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sfcvis/core/CMakeFiles/sfcvis_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
