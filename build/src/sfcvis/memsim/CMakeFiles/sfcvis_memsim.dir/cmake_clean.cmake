file(REMOVE_RECURSE
  "CMakeFiles/sfcvis_memsim.dir/cache.cpp.o"
  "CMakeFiles/sfcvis_memsim.dir/cache.cpp.o.d"
  "CMakeFiles/sfcvis_memsim.dir/hierarchy.cpp.o"
  "CMakeFiles/sfcvis_memsim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/sfcvis_memsim.dir/platforms.cpp.o"
  "CMakeFiles/sfcvis_memsim.dir/platforms.cpp.o.d"
  "libsfcvis_memsim.a"
  "libsfcvis_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcvis_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
