# Empty compiler generated dependencies file for sfcvis_threads.
# This may be replaced when dependencies are built.
