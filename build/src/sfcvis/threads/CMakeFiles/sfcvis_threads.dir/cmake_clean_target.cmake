file(REMOVE_RECURSE
  "libsfcvis_threads.a"
)
