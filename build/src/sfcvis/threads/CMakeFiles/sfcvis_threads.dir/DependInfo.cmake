
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfcvis/threads/omp_executor.cpp" "src/sfcvis/threads/CMakeFiles/sfcvis_threads.dir/omp_executor.cpp.o" "gcc" "src/sfcvis/threads/CMakeFiles/sfcvis_threads.dir/omp_executor.cpp.o.d"
  "/root/repo/src/sfcvis/threads/pool.cpp" "src/sfcvis/threads/CMakeFiles/sfcvis_threads.dir/pool.cpp.o" "gcc" "src/sfcvis/threads/CMakeFiles/sfcvis_threads.dir/pool.cpp.o.d"
  "/root/repo/src/sfcvis/threads/schedulers.cpp" "src/sfcvis/threads/CMakeFiles/sfcvis_threads.dir/schedulers.cpp.o" "gcc" "src/sfcvis/threads/CMakeFiles/sfcvis_threads.dir/schedulers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
