file(REMOVE_RECURSE
  "CMakeFiles/sfcvis_threads.dir/omp_executor.cpp.o"
  "CMakeFiles/sfcvis_threads.dir/omp_executor.cpp.o.d"
  "CMakeFiles/sfcvis_threads.dir/pool.cpp.o"
  "CMakeFiles/sfcvis_threads.dir/pool.cpp.o.d"
  "CMakeFiles/sfcvis_threads.dir/schedulers.cpp.o"
  "CMakeFiles/sfcvis_threads.dir/schedulers.cpp.o.d"
  "libsfcvis_threads.a"
  "libsfcvis_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcvis_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
