
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfcvis/data/combustion.cpp" "src/sfcvis/data/CMakeFiles/sfcvis_data.dir/combustion.cpp.o" "gcc" "src/sfcvis/data/CMakeFiles/sfcvis_data.dir/combustion.cpp.o.d"
  "/root/repo/src/sfcvis/data/noise.cpp" "src/sfcvis/data/CMakeFiles/sfcvis_data.dir/noise.cpp.o" "gcc" "src/sfcvis/data/CMakeFiles/sfcvis_data.dir/noise.cpp.o.d"
  "/root/repo/src/sfcvis/data/phantom.cpp" "src/sfcvis/data/CMakeFiles/sfcvis_data.dir/phantom.cpp.o" "gcc" "src/sfcvis/data/CMakeFiles/sfcvis_data.dir/phantom.cpp.o.d"
  "/root/repo/src/sfcvis/data/volume_io.cpp" "src/sfcvis/data/CMakeFiles/sfcvis_data.dir/volume_io.cpp.o" "gcc" "src/sfcvis/data/CMakeFiles/sfcvis_data.dir/volume_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sfcvis/core/CMakeFiles/sfcvis_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
