file(REMOVE_RECURSE
  "libsfcvis_data.a"
)
