# Empty compiler generated dependencies file for sfcvis_data.
# This may be replaced when dependencies are built.
