file(REMOVE_RECURSE
  "CMakeFiles/sfcvis_data.dir/combustion.cpp.o"
  "CMakeFiles/sfcvis_data.dir/combustion.cpp.o.d"
  "CMakeFiles/sfcvis_data.dir/noise.cpp.o"
  "CMakeFiles/sfcvis_data.dir/noise.cpp.o.d"
  "CMakeFiles/sfcvis_data.dir/phantom.cpp.o"
  "CMakeFiles/sfcvis_data.dir/phantom.cpp.o.d"
  "CMakeFiles/sfcvis_data.dir/volume_io.cpp.o"
  "CMakeFiles/sfcvis_data.dir/volume_io.cpp.o.d"
  "libsfcvis_data.a"
  "libsfcvis_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcvis_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
