file(REMOVE_RECURSE
  "CMakeFiles/sfcvis_bench_util.dir/options.cpp.o"
  "CMakeFiles/sfcvis_bench_util.dir/options.cpp.o.d"
  "CMakeFiles/sfcvis_bench_util.dir/table.cpp.o"
  "CMakeFiles/sfcvis_bench_util.dir/table.cpp.o.d"
  "libsfcvis_bench_util.a"
  "libsfcvis_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcvis_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
