# Empty dependencies file for sfcvis_bench_util.
# This may be replaced when dependencies are built.
