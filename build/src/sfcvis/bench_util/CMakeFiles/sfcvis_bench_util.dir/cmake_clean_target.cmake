file(REMOVE_RECURSE
  "libsfcvis_bench_util.a"
)
