
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfcvis/bench_util/options.cpp" "src/sfcvis/bench_util/CMakeFiles/sfcvis_bench_util.dir/options.cpp.o" "gcc" "src/sfcvis/bench_util/CMakeFiles/sfcvis_bench_util.dir/options.cpp.o.d"
  "/root/repo/src/sfcvis/bench_util/table.cpp" "src/sfcvis/bench_util/CMakeFiles/sfcvis_bench_util.dir/table.cpp.o" "gcc" "src/sfcvis/bench_util/CMakeFiles/sfcvis_bench_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sfcvis/core/CMakeFiles/sfcvis_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
