
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfcvis/core/hilbert.cpp" "src/sfcvis/core/CMakeFiles/sfcvis_core.dir/hilbert.cpp.o" "gcc" "src/sfcvis/core/CMakeFiles/sfcvis_core.dir/hilbert.cpp.o.d"
  "/root/repo/src/sfcvis/core/indexer.cpp" "src/sfcvis/core/CMakeFiles/sfcvis_core.dir/indexer.cpp.o" "gcc" "src/sfcvis/core/CMakeFiles/sfcvis_core.dir/indexer.cpp.o.d"
  "/root/repo/src/sfcvis/core/morton.cpp" "src/sfcvis/core/CMakeFiles/sfcvis_core.dir/morton.cpp.o" "gcc" "src/sfcvis/core/CMakeFiles/sfcvis_core.dir/morton.cpp.o.d"
  "/root/repo/src/sfcvis/core/zorder_tables.cpp" "src/sfcvis/core/CMakeFiles/sfcvis_core.dir/zorder_tables.cpp.o" "gcc" "src/sfcvis/core/CMakeFiles/sfcvis_core.dir/zorder_tables.cpp.o.d"
  "/root/repo/src/sfcvis/core/zquery.cpp" "src/sfcvis/core/CMakeFiles/sfcvis_core.dir/zquery.cpp.o" "gcc" "src/sfcvis/core/CMakeFiles/sfcvis_core.dir/zquery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
