# Empty dependencies file for sfcvis_core.
# This may be replaced when dependencies are built.
