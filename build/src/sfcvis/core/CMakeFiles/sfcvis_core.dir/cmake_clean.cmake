file(REMOVE_RECURSE
  "CMakeFiles/sfcvis_core.dir/hilbert.cpp.o"
  "CMakeFiles/sfcvis_core.dir/hilbert.cpp.o.d"
  "CMakeFiles/sfcvis_core.dir/indexer.cpp.o"
  "CMakeFiles/sfcvis_core.dir/indexer.cpp.o.d"
  "CMakeFiles/sfcvis_core.dir/morton.cpp.o"
  "CMakeFiles/sfcvis_core.dir/morton.cpp.o.d"
  "CMakeFiles/sfcvis_core.dir/zorder_tables.cpp.o"
  "CMakeFiles/sfcvis_core.dir/zorder_tables.cpp.o.d"
  "CMakeFiles/sfcvis_core.dir/zquery.cpp.o"
  "CMakeFiles/sfcvis_core.dir/zquery.cpp.o.d"
  "libsfcvis_core.a"
  "libsfcvis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcvis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
