file(REMOVE_RECURSE
  "libsfcvis_core.a"
)
