file(REMOVE_RECURSE
  "libsfcvis_filters.a"
)
