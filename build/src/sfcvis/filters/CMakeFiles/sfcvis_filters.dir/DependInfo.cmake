
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfcvis/filters/bilateral.cpp" "src/sfcvis/filters/CMakeFiles/sfcvis_filters.dir/bilateral.cpp.o" "gcc" "src/sfcvis/filters/CMakeFiles/sfcvis_filters.dir/bilateral.cpp.o.d"
  "/root/repo/src/sfcvis/filters/gaussian.cpp" "src/sfcvis/filters/CMakeFiles/sfcvis_filters.dir/gaussian.cpp.o" "gcc" "src/sfcvis/filters/CMakeFiles/sfcvis_filters.dir/gaussian.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sfcvis/core/CMakeFiles/sfcvis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sfcvis/memsim/CMakeFiles/sfcvis_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfcvis/threads/CMakeFiles/sfcvis_threads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
