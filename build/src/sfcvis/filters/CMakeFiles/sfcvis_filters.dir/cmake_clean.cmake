file(REMOVE_RECURSE
  "CMakeFiles/sfcvis_filters.dir/bilateral.cpp.o"
  "CMakeFiles/sfcvis_filters.dir/bilateral.cpp.o.d"
  "CMakeFiles/sfcvis_filters.dir/gaussian.cpp.o"
  "CMakeFiles/sfcvis_filters.dir/gaussian.cpp.o.d"
  "libsfcvis_filters.a"
  "libsfcvis_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcvis_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
