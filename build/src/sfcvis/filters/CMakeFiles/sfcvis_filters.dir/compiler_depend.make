# Empty compiler generated dependencies file for sfcvis_filters.
# This may be replaced when dependencies are built.
