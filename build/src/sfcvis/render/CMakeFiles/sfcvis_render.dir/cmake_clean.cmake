file(REMOVE_RECURSE
  "CMakeFiles/sfcvis_render.dir/camera.cpp.o"
  "CMakeFiles/sfcvis_render.dir/camera.cpp.o.d"
  "CMakeFiles/sfcvis_render.dir/image.cpp.o"
  "CMakeFiles/sfcvis_render.dir/image.cpp.o.d"
  "CMakeFiles/sfcvis_render.dir/raycast.cpp.o"
  "CMakeFiles/sfcvis_render.dir/raycast.cpp.o.d"
  "CMakeFiles/sfcvis_render.dir/transfer.cpp.o"
  "CMakeFiles/sfcvis_render.dir/transfer.cpp.o.d"
  "libsfcvis_render.a"
  "libsfcvis_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcvis_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
