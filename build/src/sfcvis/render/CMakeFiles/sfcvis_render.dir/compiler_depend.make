# Empty compiler generated dependencies file for sfcvis_render.
# This may be replaced when dependencies are built.
