file(REMOVE_RECURSE
  "libsfcvis_render.a"
)
