
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfcvis/render/camera.cpp" "src/sfcvis/render/CMakeFiles/sfcvis_render.dir/camera.cpp.o" "gcc" "src/sfcvis/render/CMakeFiles/sfcvis_render.dir/camera.cpp.o.d"
  "/root/repo/src/sfcvis/render/image.cpp" "src/sfcvis/render/CMakeFiles/sfcvis_render.dir/image.cpp.o" "gcc" "src/sfcvis/render/CMakeFiles/sfcvis_render.dir/image.cpp.o.d"
  "/root/repo/src/sfcvis/render/raycast.cpp" "src/sfcvis/render/CMakeFiles/sfcvis_render.dir/raycast.cpp.o" "gcc" "src/sfcvis/render/CMakeFiles/sfcvis_render.dir/raycast.cpp.o.d"
  "/root/repo/src/sfcvis/render/transfer.cpp" "src/sfcvis/render/CMakeFiles/sfcvis_render.dir/transfer.cpp.o" "gcc" "src/sfcvis/render/CMakeFiles/sfcvis_render.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sfcvis/core/CMakeFiles/sfcvis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sfcvis/memsim/CMakeFiles/sfcvis_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfcvis/threads/CMakeFiles/sfcvis_threads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
