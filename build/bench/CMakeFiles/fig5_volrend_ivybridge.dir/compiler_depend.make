# Empty compiler generated dependencies file for fig5_volrend_ivybridge.
# This may be replaced when dependencies are built.
