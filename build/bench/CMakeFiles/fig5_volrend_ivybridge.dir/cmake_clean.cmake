file(REMOVE_RECURSE
  "CMakeFiles/fig5_volrend_ivybridge.dir/fig5_volrend_ivybridge.cpp.o"
  "CMakeFiles/fig5_volrend_ivybridge.dir/fig5_volrend_ivybridge.cpp.o.d"
  "fig5_volrend_ivybridge"
  "fig5_volrend_ivybridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_volrend_ivybridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
