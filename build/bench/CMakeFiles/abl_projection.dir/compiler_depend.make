# Empty compiler generated dependencies file for abl_projection.
# This may be replaced when dependencies are built.
