file(REMOVE_RECURSE
  "CMakeFiles/abl_projection.dir/abl_projection.cpp.o"
  "CMakeFiles/abl_projection.dir/abl_projection.cpp.o.d"
  "abl_projection"
  "abl_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
