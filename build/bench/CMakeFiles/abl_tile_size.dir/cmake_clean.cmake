file(REMOVE_RECURSE
  "CMakeFiles/abl_tile_size.dir/abl_tile_size.cpp.o"
  "CMakeFiles/abl_tile_size.dir/abl_tile_size.cpp.o.d"
  "abl_tile_size"
  "abl_tile_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tile_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
