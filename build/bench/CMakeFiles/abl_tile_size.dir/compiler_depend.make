# Empty compiler generated dependencies file for abl_tile_size.
# This may be replaced when dependencies are built.
