# Empty dependencies file for abl_scheduler.
# This may be replaced when dependencies are built.
