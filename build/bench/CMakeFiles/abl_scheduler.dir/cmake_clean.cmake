file(REMOVE_RECURSE
  "CMakeFiles/abl_scheduler.dir/abl_scheduler.cpp.o"
  "CMakeFiles/abl_scheduler.dir/abl_scheduler.cpp.o.d"
  "abl_scheduler"
  "abl_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
