# Empty compiler generated dependencies file for fig4_volrend_viewpoints.
# This may be replaced when dependencies are built.
