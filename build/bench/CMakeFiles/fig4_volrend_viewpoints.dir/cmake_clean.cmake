file(REMOVE_RECURSE
  "CMakeFiles/fig4_volrend_viewpoints.dir/fig4_volrend_viewpoints.cpp.o"
  "CMakeFiles/fig4_volrend_viewpoints.dir/fig4_volrend_viewpoints.cpp.o.d"
  "fig4_volrend_viewpoints"
  "fig4_volrend_viewpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_volrend_viewpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
