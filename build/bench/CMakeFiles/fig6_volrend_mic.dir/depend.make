# Empty dependencies file for fig6_volrend_mic.
# This may be replaced when dependencies are built.
