file(REMOVE_RECURSE
  "CMakeFiles/fig6_volrend_mic.dir/fig6_volrend_mic.cpp.o"
  "CMakeFiles/fig6_volrend_mic.dir/fig6_volrend_mic.cpp.o.d"
  "fig6_volrend_mic"
  "fig6_volrend_mic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_volrend_mic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
