file(REMOVE_RECURSE
  "CMakeFiles/abl_volume_size.dir/abl_volume_size.cpp.o"
  "CMakeFiles/abl_volume_size.dir/abl_volume_size.cpp.o.d"
  "abl_volume_size"
  "abl_volume_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_volume_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
