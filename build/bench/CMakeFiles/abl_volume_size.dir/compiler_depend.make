# Empty compiler generated dependencies file for abl_volume_size.
# This may be replaced when dependencies are built.
