file(REMOVE_RECURSE
  "CMakeFiles/abl_traversal.dir/abl_traversal.cpp.o"
  "CMakeFiles/abl_traversal.dir/abl_traversal.cpp.o.d"
  "abl_traversal"
  "abl_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
