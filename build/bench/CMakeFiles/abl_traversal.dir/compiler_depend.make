# Empty compiler generated dependencies file for abl_traversal.
# This may be replaced when dependencies are built.
