# Empty compiler generated dependencies file for abl_prefetch.
# This may be replaced when dependencies are built.
