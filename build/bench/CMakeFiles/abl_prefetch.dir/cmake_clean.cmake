file(REMOVE_RECURSE
  "CMakeFiles/abl_prefetch.dir/abl_prefetch.cpp.o"
  "CMakeFiles/abl_prefetch.dir/abl_prefetch.cpp.o.d"
  "abl_prefetch"
  "abl_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
