file(REMOVE_RECURSE
  "CMakeFiles/abl_pencil_order.dir/abl_pencil_order.cpp.o"
  "CMakeFiles/abl_pencil_order.dir/abl_pencil_order.cpp.o.d"
  "abl_pencil_order"
  "abl_pencil_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pencil_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
