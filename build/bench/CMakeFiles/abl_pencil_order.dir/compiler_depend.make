# Empty compiler generated dependencies file for abl_pencil_order.
# This may be replaced when dependencies are built.
