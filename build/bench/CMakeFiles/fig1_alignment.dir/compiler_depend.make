# Empty compiler generated dependencies file for fig1_alignment.
# This may be replaced when dependencies are built.
