file(REMOVE_RECURSE
  "CMakeFiles/fig1_alignment.dir/fig1_alignment.cpp.o"
  "CMakeFiles/fig1_alignment.dir/fig1_alignment.cpp.o.d"
  "fig1_alignment"
  "fig1_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
