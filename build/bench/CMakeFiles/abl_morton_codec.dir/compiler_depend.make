# Empty compiler generated dependencies file for abl_morton_codec.
# This may be replaced when dependencies are built.
