file(REMOVE_RECURSE
  "CMakeFiles/abl_morton_codec.dir/abl_morton_codec.cpp.o"
  "CMakeFiles/abl_morton_codec.dir/abl_morton_codec.cpp.o.d"
  "abl_morton_codec"
  "abl_morton_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_morton_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
